package main

import (
	"strings"
	"testing"

	"tsteiner/internal/check"
)

// TestSmoke builds the clock-calibration reporter and runs it on one
// benchmark at miniature scale.
func TestSmoke(t *testing.T) {
	bin := check.GoBuild(t, "tsteiner/cmd/calibrate")
	dir := t.TempDir()

	help := check.RunOK(t, dir, bin, "-h")
	if !strings.Contains(help, "-scale") {
		t.Fatalf("help output lacks flag listing:\n%s", help)
	}

	out := check.RunMain(t, dir, main, "-designs", "spm", "-scale", "0.1")
	if !strings.Contains(out, "spm") || !strings.Contains(out, "WNS") {
		t.Fatalf("calibration output lacks benchmark row:\n%s", out)
	}
}
