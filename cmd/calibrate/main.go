// Command calibrate reports the endpoint arrival-time distribution of a
// benchmark under the baseline flow — the numbers used to choose each
// design's clock constraint (see DESIGN.md §6.6) and useful when adding
// new benchmarks or retuning the technology.
//
// Usage:
//
//	calibrate [-scale 1.0] [-designs a,b,c] [-workers N]
//	          [-obs-out trace.ndjson] [-cpuprofile cpu.out] [-memprofile mem.out]
//	          [-deadline 10m]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"tsteiner/internal/flow"
	"tsteiner/internal/guard"
	"tsteiner/internal/lib"
	"tsteiner/internal/metrics"
	"tsteiner/internal/obs"
	"tsteiner/internal/report"
	"tsteiner/internal/synth"
)

func main() {
	var (
		scale   = flag.Float64("scale", 1.0, "benchmark scale factor")
		designs = flag.String("designs", "", "comma-separated subset (default: all)")
	)
	shared := obs.RegisterFlags(flag.CommandLine)
	flag.Parse()
	sink, closeObs, err := shared.Setup(nil)
	if err != nil {
		log.Fatal(err)
	}
	defer closeObs()

	manifest := shared.Manifest("calibrate", flag.CommandLine)
	manifest.LibFingerprint = lib.Default().Fingerprint()
	manifest.Emit(sink)
	if shared.Out != "" {
		if err := manifest.WriteNextTo(shared.Out); err != nil {
			log.Fatal(err)
		}
	}

	specs := synth.Benchmarks()
	if *designs != "" {
		want := map[string]bool{}
		for _, n := range strings.Split(*designs, ",") {
			want[n] = true
		}
		var sel []synth.Spec
		for _, s := range specs {
			if want[s.Name] {
				sel = append(sel, s)
			}
		}
		specs = sel
	}

	t := report.Table{
		Title: "endpoint arrival distribution (baseline flow)",
		Header: []string{"Benchmark", "clock", "endpoints", "max", "p90", "p60",
			"p40", "WNS", "vio%"},
	}
	cfg := flow.DefaultConfig()
	cfg.Workers = shared.Workers
	cfg.Obs = sink
	if shared.Deadline > 0 {
		cfg.Budget = &guard.Budget{Wall: shared.Deadline}
		cfg.Budget.Start()
	}
	for _, spec := range specs {
		log.Printf("running %s", spec.Name)
		p, err := flow.PrepareBenchmark(spec.Name, *scale, cfg)
		if err != nil {
			log.Fatal(err)
		}
		rep, timing, err := flow.SignoffTiming(p, p.Forest)
		if err != nil {
			log.Fatal(err)
		}
		arr := timing.EndpointArrival
		vioPct := 100 * float64(rep.Vios) / float64(len(arr))
		t.AddRow(spec.Name,
			report.F(p.Design.ClockPeriod, 2),
			report.I(len(arr)),
			report.F(metrics.Quantile(arr, 1.0), 2),
			report.F(metrics.Quantile(arr, 0.9), 2),
			report.F(metrics.Quantile(arr, 0.6), 2),
			report.F(metrics.Quantile(arr, 0.4), 2),
			report.F(rep.WNS, 3),
			report.F(vioPct, 1))
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nguideline: set each clock near p60 so 30-60% of endpoints violate,")
	fmt.Println("matching the violation ratios of the paper's Table II designs.")
}
