package main

import (
	"bufio"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"tsteiner/internal/check"
	"tsteiner/internal/designio"
	"tsteiner/internal/lib"
	"tsteiner/internal/serve"
	"tsteiner/internal/synth"
)

func writeTestDesign(t *testing.T, path string) {
	t.Helper()
	d, err := synth.Generate(synth.Spec{
		Name: "clismoke", Seed: 3, Cells: 30, Endpoints: 6, PIs: 3, Depth: 4, ClockNS: 1.0,
	}, lib.Default())
	if err != nil {
		t.Fatal(err)
	}
	if err := designio.WriteJSONFile(path, d); err != nil {
		t.Fatal(err)
	}
}

// TestServeClientMisuseExitCodes asserts that every server/client flag
// misuse exits non-zero through the compiled binary.
func TestServeClientMisuseExitCodes(t *testing.T) {
	bin := check.GoBuild(t, "tsteiner/cmd/tsteiner")
	dir := t.TempDir()
	design := filepath.Join(dir, "design.json")
	writeTestDesign(t, design)

	// Conflicting modes.
	out := check.RunFail(t, dir, bin, "-serve", "127.0.0.1:0", "-submit", "http://127.0.0.1:1")
	if !strings.Contains(out, "mutually exclusive") {
		t.Errorf("conflict misuse lacks diagnosis:\n%s", out)
	}
	// Unbindable listen address.
	check.RunFail(t, dir, bin, "-serve", "256.256.256.256:99999")
	// Client mode without a design.
	out = check.RunFail(t, dir, bin, "-submit", "http://127.0.0.1:1")
	if !strings.Contains(out, "-job-design") {
		t.Errorf("missing-design misuse lacks diagnosis:\n%s", out)
	}
	// Missing design file.
	check.RunFail(t, dir, bin, "-submit", "http://127.0.0.1:1", "-job-design", filepath.Join(dir, "absent.json"))
	// Bad kind (rejected client-side before any connection).
	check.RunFail(t, dir, bin, "-submit", "http://127.0.0.1:1", "-job-design", design, "-kind", "bogus")
	// No daemon listening: retries exhaust, then a non-zero exit.
	check.RunFail(t, dir, bin, "-submit", "http://127.0.0.1:1", "-job-design", design, "-kind", "signoff", "-retries", "2")
}

// TestServeClientJobRoundtrip runs the client mode in-process (for
// coverage) against an in-process daemon: submit, wait, artifact
// download, and idempotent resubmission.
func TestServeClientJobRoundtrip(t *testing.T) {
	dir := t.TempDir()
	design := filepath.Join(dir, "design.json")
	writeTestDesign(t, design)

	s, err := serve.New(serve.Options{SpoolDir: filepath.Join(dir, "spool")})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}

	forest := filepath.Join(dir, "refined.json")
	args := []string{
		"-submit", s.URL(), "-job-design", design, "-job-id", "cli-1",
		"-kind", "refine", "-epochs", "2", "-iters", "2", "-wait", "2m",
		"-save-forest", forest,
	}
	out := check.RunMain(t, dir, main, args...)
	if !strings.Contains(out, `"State": "done"`) {
		t.Fatalf("client wait did not report a done job:\n%s", out)
	}
	if !strings.Contains(out, "refined forest written") {
		t.Fatalf("client did not download the forest artifact:\n%s", out)
	}
	// Resubmitting the identical job is a dedupe, not a re-run.
	out = check.RunMain(t, dir, main, args...)
	if !strings.Contains(out, `"Attempts": 1`) {
		t.Fatalf("resubmit re-ran the job:\n%s", out)
	}
}

// TestServeDaemonSIGTERMDrain drives the compiled binary end to end: boot
// the daemon, scrape /metrics over its advertised URL, submit a job via
// client mode, then SIGTERM and require a clean drain (exit 0).
func TestServeDaemonSIGTERMDrain(t *testing.T) {
	bin := check.GoBuild(t, "tsteiner/cmd/tsteiner")
	dir := t.TempDir()
	design := filepath.Join(dir, "design.json")
	writeTestDesign(t, design)

	cmd := exec.Command(bin, "-serve", "127.0.0.1:0", "-spool", filepath.Join(dir, "spool"))
	cmd.Dir = dir
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The first stdout line advertises the bound URL.
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatal("daemon wrote no handshake line")
	}
	fields := strings.Fields(sc.Text())
	url := fields[len(fields)-1]
	if !strings.HasPrefix(url, "http://") {
		t.Fatalf("unexpected handshake line %q", sc.Text())
	}

	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: HTTP %d", resp.StatusCode)
	}

	subOut := check.RunOK(t, dir, bin,
		"-submit", url, "-job-design", design, "-job-id", "drain-smoke",
		"-kind", "signoff", "-wait", "2m")
	if !strings.Contains(subOut, `"State": "done"`) {
		t.Fatalf("submitted job did not finish:\n%s", subOut)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon did not drain cleanly: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
}
