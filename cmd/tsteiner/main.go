// Command tsteiner runs the full physical-design flow on one benchmark,
// with or without TSteiner refinement, and prints the sign-off comparison.
//
// Usage:
//
//	tsteiner -design spm [-scale 1.0] [-baseline-only]
//	         [-epochs 150] [-iters 25] [-model model.json] [-seed 2023]
//	         [-workers N] [-obs-out trace.ndjson] [-cpuprofile cpu.out] [-memprofile mem.out]
//	         [-checkpoint-dir dir] [-resume] [-deadline 10m]
//
// Sharded incremental refinement on a scaled-up design (see
// internal/shard): tiles -scaleup seeded copies of the benchmark,
// then refines with incremental rerouting and windowed re-timing:
//
//	tsteiner -design spm -scaleup 10 -shards 4 [-rounds 8] [-workers N]
//
// Multi-corner sign-off (-corners) runs STA at every listed corner and
// prints the corner matrix; with refinement it also optimizes the
// matrix penalty under the fast-corner hold guard:
//
//	tsteiner -design spm -corners default
//	tsteiner -design spm -corners fast,typical,slow -scaleup 10 -shards 4
//
// Server mode (tsteinerd, see internal/serve) and client mode:
//
//	tsteiner -serve 127.0.0.1:8080 [-spool dir] [-queue-depth 8] [-job-workers 1]
//	tsteiner -submit http://127.0.0.1:8080 -job-design design.json
//	         [-kind signoff|train|refine] [-job-id id] [-wait 10m]
//	         [-job-shards 4] [-save-forest refined.json] [-deadline 5m]
//
// When -model names an existing file the evaluator is loaded from it;
// otherwise a fresh evaluator is trained on this design (plus perturbed
// variants) before refinement.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"

	"tsteiner/internal/core"
	"tsteiner/internal/designio"
	"tsteiner/internal/flow"
	"tsteiner/internal/gnn"
	"tsteiner/internal/guard"
	"tsteiner/internal/lib"
	"tsteiner/internal/obs"
	"tsteiner/internal/report"
	"tsteiner/internal/shard"
	"tsteiner/internal/sta"
	"tsteiner/internal/synth"
	"tsteiner/internal/train"
	"tsteiner/internal/viz"
)

// manifest carries this run's provenance record; every artifact write
// drops a <artifact>.manifest.json beside its output through saveManifest.
var manifest *obs.Manifest

func saveManifest(artifactPath string) {
	if err := manifest.WriteNextTo(artifactPath); err != nil {
		log.Fatal(err)
	}
}

func main() {
	var (
		design       = flag.String("design", "spm", "benchmark name (see internal/synth)")
		scale        = flag.Float64("scale", 1.0, "benchmark scale factor")
		baselineOnly = flag.Bool("baseline-only", false, "run only the baseline flow")
		epochs       = flag.Int("epochs", 150, "evaluator training epochs")
		iters        = flag.Int("iters", 25, "max refinement iterations N")
		lanes        = flag.Int("lanes", 0, "line-search candidates per fused batched forward (0 = sequential)")
		rounds       = flag.Int("rounds", 1, "successive refinement rounds (re-anchored trust region)")
		modelPath    = flag.String("model", "", "load/save the evaluator at this path")
		seed         = flag.Int64("seed", 2023, "random seed")
		svgPath      = flag.String("svg", "", "write a layout SVG (refined trees) to this path")
		forestPath   = flag.String("save-forest", "", "write the refined Steiner forest JSON to this path")
		designPath   = flag.String("save-design", "", "write the design JSON to this path")
		verilogPath  = flag.String("save-verilog", "", "write a structural Verilog view to this path")
		trace        = flag.Bool("trace", false, "print the per-iteration refinement trace")
		cornersSpec  = flag.String("corners", "", `multi-corner sign-off: comma-separated presets fast|typical|slow, "default", or name:delayScale:slewScale:clockScale (empty = typical only)`)
		shards       = flag.Int("shards", 0, "run sharded incremental refinement with this many proposal shards (0 = GNN flow)")
		scaleup      = flag.Int("scaleup", 1, "tile this many seeded copies of the benchmark into one design (with -shards)")

		serveAddr  = flag.String("serve", "", "run as the tsteinerd daemon on this host:port (port 0 picks one) until SIGTERM")
		spoolDir   = flag.String("spool", "tsteinerd-spool", "daemon spool directory for crash-safe job state (server mode)")
		queueDepth = flag.Int("queue-depth", 8, "daemon admission-queue depth; a full queue answers 429 + Retry-After (server mode)")
		jobWorkers = flag.Int("job-workers", 1, "jobs executed concurrently by the daemon (server mode)")
		submitURL  = flag.String("submit", "", "submit a job to the tsteinerd at this base URL instead of running locally (client mode)")
		jobDesign  = flag.String("job-design", "", "designio JSON file to submit (client mode)")
		jobID      = flag.String("job-id", "", "idempotency key for the submitted job (client mode; default: digest of the design bytes)")
		jobKind    = flag.String("kind", "refine", "submitted job kind: signoff|train|refine (client mode)")
		jobWait    = flag.Duration("wait", 0, "wait up to this long for the submitted job to finish (client mode; 0 = submit only)")
		jobRetries = flag.Int("retries", 8, "submit attempts before giving up on 429/503/connection errors (client mode)")
		jobShards  = flag.Int("job-shards", 0, "run a refine job through the sharded incremental engine with this many shards; -iters becomes the round budget (client mode; 0 = GNN refinement)")
	)
	shared := obs.RegisterFlags(flag.CommandLine)
	flag.Parse()
	sink, closeObs, err := shared.Setup(nil)
	if err != nil {
		log.Fatal(err)
	}
	defer closeObs()
	workers := &shared.Workers

	var corners []sta.Corner
	if *cornersSpec != "" {
		if corners, err = sta.ParseCorners(*cornersSpec); err != nil {
			log.Fatal(err)
		}
	}

	if *serveAddr != "" || *submitURL != "" {
		if err := runService(serviceConfig{
			serveAddr: *serveAddr, spool: *spoolDir,
			queueDepth: *queueDepth, jobWorkers: *jobWorkers,
			submitURL: *submitURL, designFile: *jobDesign,
			jobID: *jobID, kind: *jobKind, wait: *jobWait, retries: *jobRetries,
			forestOut: *forestPath,
			seed:      *seed, epochs: *epochs, iters: *iters, lanes: *lanes,
			jobShards: *jobShards, corners: corners,
			workers: *workers, deadlineWall: shared.Deadline,
		}, sink); err != nil {
			log.Fatal(err)
		}
		return
	}

	manifest = shared.Manifest("tsteiner", flag.CommandLine)
	manifest.Seed = *seed
	manifest.Lanes = *lanes
	manifest.LibFingerprint = lib.Default().Fingerprint()
	manifest.Emit(sink)
	if shared.Out != "" {
		saveManifest(shared.Out)
	}

	var budget *guard.Budget
	if shared.Deadline > 0 {
		budget = &guard.Budget{Wall: shared.Deadline}
		budget.Start()
	}
	if shared.CheckpointDir != "" {
		if err := os.MkdirAll(shared.CheckpointDir, 0o755); err != nil {
			log.Fatal(err)
		}
		if err := manifest.WriteFile(filepath.Join(shared.CheckpointDir, "manifest.json")); err != nil {
			log.Fatal(err)
		}
	}

	if *shards > 0 {
		if err := runSharded(*design, *scaleup, *shards, *rounds, *workers, corners, sink, budget); err != nil {
			log.Fatal(err)
		}
		return
	}

	log.Printf("running baseline flow on %s (scale %.2f)", *design, *scale)
	fcfg := flow.DefaultConfig()
	fcfg.Workers = *workers
	fcfg.Obs = sink
	fcfg.Budget = budget
	fcfg.Corners = corners
	smp, err := train.BuildSample(*design, *scale, true, fcfg)
	if err != nil {
		log.Fatal(err)
	}
	printReport("baseline", smp.Baseline)
	if *designPath != "" {
		if err := writeFile(*designPath, func(w io.Writer) error {
			return designio.WriteJSON(w, smp.Prepared.Design)
		}); err != nil {
			log.Fatal(err)
		}
		saveManifest(*designPath)
		log.Printf("design written to %s", *designPath)
	}
	if *verilogPath != "" {
		if err := writeFile(*verilogPath, func(w io.Writer) error {
			return designio.WriteVerilog(w, smp.Prepared.Design)
		}); err != nil {
			log.Fatal(err)
		}
		saveManifest(*verilogPath)
		log.Printf("verilog written to %s", *verilogPath)
	}
	if *baselineOnly {
		return
	}

	var m *gnn.Model
	if *modelPath != "" {
		if loaded, err := gnn.Load(*modelPath); err == nil {
			log.Printf("loaded evaluator from %s", *modelPath)
			m = loaded
		}
	}
	if m == nil {
		log.Printf("training evaluator (%d epochs)", *epochs)
		samples := []*train.Sample{smp}
		aug, err := train.Augment(smp, 2, 10, *seed, *workers)
		if err != nil {
			log.Fatal(err)
		}
		samples = append(samples, aug...)
		m = gnn.NewModel(gnn.DefaultConfig(), *seed)
		opt := train.DefaultOptions()
		opt.Epochs = *epochs
		opt.Seed = *seed
		opt.Workers = *workers
		opt.Obs = sink
		opt.Budget = budget
		if shared.CheckpointDir != "" {
			opt.CheckpointPath = filepath.Join(shared.CheckpointDir, "train.ckpt")
			opt.Resume = shared.Resume
		}
		if _, err := train.Train(m, samples, opt); err != nil {
			log.Fatal(err)
		}
		if *modelPath != "" {
			if err := m.Save(*modelPath); err != nil {
				log.Fatal(err)
			}
			manifest.ModelHash = m.Hash()
			saveManifest(*modelPath)
			log.Printf("saved evaluator to %s", *modelPath)
		}
	}
	manifest.ModelHash = m.Hash()
	if shared.CheckpointDir != "" {
		if err := manifest.WriteFile(filepath.Join(shared.CheckpointDir, "manifest.json")); err != nil {
			log.Fatal(err)
		}
	}
	sc, err := train.Evaluate(m, smp)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("evaluator R²: all-pins %.4f, endpoints %.4f", sc.ArrivalAll, sc.ArrivalEnds)
	sink.Event("train.eval",
		obs.KV{K: "design", V: *design},
		obs.KV{K: "r2_all", V: sc.ArrivalAll}, obs.KV{K: "r2_ends", V: sc.ArrivalEnds})

	opt := core.DefaultOptions()
	opt.N = *iters
	opt.CandidateLanes = *lanes
	opt.Budget = budget
	if len(corners) > 0 {
		opt.Corners = core.CornerTermsFor(corners)
		opt.HoldGuard = true
	}
	if shared.CheckpointDir != "" {
		opt.CheckpointPath = filepath.Join(shared.CheckpointDir, "refine.ckpt")
		opt.Resume = shared.Resume
	}
	ref, err := core.NewRefiner(m, smp.Batch, smp.Prepared, opt)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("refining Steiner points (N=%d, rounds=%d)", opt.N, *rounds)
	res, err := ref.RefineRounds(*rounds)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("refinement: %d iterations in %.1fs, evaluator WNS %.3f→%.3f TNS %.1f→%.1f",
		res.Iterations, res.RuntimeSec, res.InitWNS, res.BestWNS, res.InitTNS, res.BestTNS)
	if res.Cutoff != "" {
		log.Printf("refinement cut off (%s); keeping best solution so far", res.Cutoff)
	}
	if res.Degraded {
		log.Printf("refinement degraded after %d numerical recoveries; keeping best solution so far", res.Recoveries)
	}
	if *trace {
		tt := report.Table{
			Title:  "refinement trace (evaluator metrics per iteration)",
			Header: []string{"iter", "WNS", "TNS", "theta", "accepted"},
		}
		for i, h := range res.History {
			acc := ""
			if h.Accepted {
				acc = "yes"
			}
			tt.AddRow(report.I(i+1), report.F(h.WNS, 4), report.F(h.TNS, 2),
				report.F(h.Theta, 3), acc)
		}
		if err := tt.Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}

	rep, err := flow.Signoff(smp.Prepared, res.Forest)
	if err != nil {
		log.Fatal(err)
	}
	rep.TSteinerSec = res.RuntimeSec
	printReport("tsteiner", rep)

	t := report.Table{
		Title:  "sign-off comparison",
		Header: []string{"flow", "WNS", "TNS", "#Vios", "WL", "#Vias", "#DRV"},
	}
	t.AddRow("baseline", report.F(smp.Baseline.WNS, 3), report.F(smp.Baseline.TNS, 1),
		report.I(smp.Baseline.Vios), fmt.Sprint(smp.Baseline.WirelengthDBU),
		report.I(smp.Baseline.Vias), report.I(smp.Baseline.DRVs))
	t.AddRow("tsteiner", report.F(rep.WNS, 3), report.F(rep.TNS, 1),
		report.I(rep.Vios), fmt.Sprint(rep.WirelengthDBU),
		report.I(rep.Vias), report.I(rep.DRVs))
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	if *svgPath != "" {
		if err := writeFile(*svgPath, func(w io.Writer) error {
			return viz.WriteLayoutSVG(w, smp.Prepared.Design, res.Forest, viz.DefaultLayoutOptions())
		}); err != nil {
			log.Fatal(err)
		}
		saveManifest(*svgPath)
		log.Printf("layout SVG written to %s", *svgPath)
	}
	if *forestPath != "" {
		if err := writeFile(*forestPath, func(w io.Writer) error {
			return designio.WriteForestJSON(w, res.Forest)
		}); err != nil {
			log.Fatal(err)
		}
		saveManifest(*forestPath)
		log.Printf("refined forest written to %s", *forestPath)
	}
}

// runSharded is the -shards path: tile the benchmark -scaleup times,
// prepare it, refine through internal/shard and print the sign-off
// movement. The result is byte-identical at any shard/worker count.
func runSharded(name string, factor, shards, rounds, workers int, corners []sta.Corner, sink *obs.Sink, budget *guard.Budget) error {
	spec, err := synth.BenchmarkByName(name)
	if err != nil {
		return err
	}
	l := lib.Default()
	log.Printf("generating %s ×%d", name, factor)
	d, err := synth.GenerateScaled(spec, factor, l)
	if err != nil {
		return err
	}
	cfg := flow.ScaledConfig()
	cfg.Workers = workers
	cfg.Obs = sink
	cfg.Budget = budget
	p, err := flow.Prepare(d, l, cfg)
	if err != nil {
		return err
	}
	st := d.Stats()
	log.Printf("prepared %s: %d cells, %d nets, %d endpoints (%.1fs)",
		d.Name, st.CellNodes, len(d.Nets), st.Endpoints, p.PrepSec)

	opt := shard.DefaultOptions()
	opt.Shards = shards
	opt.Workers = workers
	opt.Rounds = rounds
	opt.Corners = corners
	log.Printf("sharded refinement: %d shards, %d rounds", opt.Shards, opt.Rounds)
	res, err := shard.Refine(p, opt)
	if err != nil {
		return err
	}
	log.Printf("refined: %d/%d rounds accepted, %d nets moved, %d nets re-timed (init %.1fs, refine %.1fs)",
		res.Accepted, res.Rounds, res.MovedNets, res.RetimedNets, res.InitSec, res.RefineSec)

	t := report.Table{
		Title:  "sharded refinement sign-off",
		Header: []string{"state", "WNS", "TNS", "#Vios", "WL", "#Vias", "overflow"},
	}
	t.AddRow("initial", report.F(res.InitWNS, 3), report.F(res.InitTNS, 1),
		report.I(res.InitVios), "-", "-", "-")
	t.AddRow("refined", report.F(res.WNS, 3), report.F(res.TNS, 1),
		report.I(res.Vios), fmt.Sprint(res.WirelengthDBU),
		report.I(res.Vias), report.I(res.Overflow))
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	if len(res.Corners) > 0 {
		if err := report.CornerMatrix("initial corner matrix", res.InitCorners).Render(os.Stdout); err != nil {
			return err
		}
		return report.CornerMatrix("refined corner matrix", res.Corners).Render(os.Stdout)
	}
	return nil
}

// writeFile renders through guard.AtomicWriteFunc so an interrupted run
// never leaves a half-written artifact behind.
func writeFile(path string, fn func(io.Writer) error) error {
	return guard.AtomicWriteFunc(path, fn)
}

func printReport(name string, r *flow.Report) {
	log.Printf("%s: WNS %.3f ns, TNS %.1f ns, %d violations, WL %d DBU, %d vias, %d DRVs (GR %.1fs, DR %.1fs)",
		name, r.WNS, r.TNS, r.Vios, r.WirelengthDBU, r.Vias, r.DRVs, r.GRSec, r.DRSec)
	if len(r.Corners) > 0 {
		if err := report.CornerMatrix(name+" corner matrix", r.Corners).Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
}
