package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tsteiner/internal/check"
	"tsteiner/internal/obs"
)

// TestSmoke exercises help and the misuse path through a compiled
// binary, and a miniature end-to-end run (train 2 epochs, refine 2
// iterations at reduced scale, every artifact kind) through main() in
// process, so `go test -cover` attributes the executed lines.
func TestSmoke(t *testing.T) {
	bin := check.GoBuild(t, "tsteiner/cmd/tsteiner")
	dir := t.TempDir()

	help := check.RunOK(t, dir, bin, "-h")
	if !strings.Contains(help, "-design") {
		t.Fatalf("help output lacks flag listing:\n%s", help)
	}

	out := check.RunMain(t, dir, main,
		"-design", "spm", "-scale", "0.12", "-epochs", "2", "-iters", "2",
		"-svg", filepath.Join(dir, "layout.svg"),
		"-save-design", filepath.Join(dir, "design.json"),
		"-save-verilog", filepath.Join(dir, "design.v"),
		"-save-forest", filepath.Join(dir, "forest.json"))
	if !strings.Contains(out, "WNS") {
		t.Fatalf("run output lacks sign-off metrics:\n%s", out)
	}
	for _, f := range []string{"layout.svg", "design.json", "design.v", "forest.json"} {
		st, err := os.Stat(filepath.Join(dir, f))
		if err != nil {
			t.Fatalf("artifact %s: %v", f, err)
		}
		if st.Size() == 0 {
			t.Fatalf("artifact %s is empty", f)
		}
		// Every artifact carries its provenance record alongside.
		raw, err := os.ReadFile(filepath.Join(dir, f+".manifest.json"))
		if err != nil {
			t.Fatalf("artifact %s has no manifest: %v", f, err)
		}
		var m obs.Manifest
		if err := json.Unmarshal(raw, &m); err != nil {
			t.Fatalf("manifest for %s corrupt: %v", f, err)
		}
		if m.Tool != "tsteiner" || m.Seed != 2023 || m.LibFingerprint == "" {
			t.Fatalf("manifest for %s incomplete: %+v", f, m)
		}
	}

	check.RunFail(t, dir, bin, "-design", "no_such_benchmark")
}
