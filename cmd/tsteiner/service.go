package main

// Server and client modes: `tsteiner -serve` turns the binary into
// tsteinerd (the refinement-as-a-service daemon of internal/serve);
// `tsteiner -submit` sends one job to a running daemon and optionally
// waits for its artifacts. Both modes exit non-zero on misuse so scripts
// can gate on the status code.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tsteiner/internal/guard"
	"tsteiner/internal/obs"
	"tsteiner/internal/serve"
	"tsteiner/internal/sta"
)

type serviceConfig struct {
	serveAddr  string
	spool      string
	queueDepth int
	jobWorkers int

	submitURL  string
	designFile string
	jobID      string
	kind       string
	wait       time.Duration
	retries    int
	forestOut  string

	seed         int64
	epochs       int
	iters        int
	lanes        int
	jobShards    int
	corners      []sta.Corner
	workers      int
	deadlineWall time.Duration
}

// runService dispatches to daemon or client mode; exactly one of
// serveAddr/submitURL must be set (main only calls it when at least one
// is).
func runService(cfg serviceConfig, sink *obs.Sink) error {
	if cfg.serveAddr != "" && cfg.submitURL != "" {
		return fmt.Errorf("tsteiner: -serve and -submit are mutually exclusive")
	}
	if cfg.serveAddr != "" {
		return runDaemon(cfg, sink)
	}
	return runSubmit(cfg)
}

// runDaemon runs tsteinerd until SIGINT/SIGTERM, then drains gracefully:
// in-flight jobs finish, queued jobs stay spooled for the next daemon
// over the same spool.
func runDaemon(cfg serviceConfig, sink *obs.Sink) error {
	if sink == nil {
		// The daemon always aggregates: /metrics must answer scrapes even
		// when no -obs-out trace was requested.
		sink = obs.New(nil)
		sink.EnableRing(obs.DefaultRingSize)
	}
	s, err := serve.New(serve.Options{
		SpoolDir:   cfg.spool,
		QueueDepth: cfg.queueDepth,
		JobWorkers: cfg.jobWorkers,
		Obs:        sink,
	})
	if err != nil {
		return err
	}
	if err := s.Serve(cfg.serveAddr); err != nil {
		return err
	}
	// The URL line is the machine-readable handshake: scripts read it to
	// find the bound port when -serve used port 0.
	fmt.Printf("tsteinerd listening on %s\n", s.URL())
	log.Printf("tsteinerd: spool %s, queue depth %d, %d job workers", cfg.spool, cfg.queueDepth, cfg.jobWorkers)

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	sig := <-ch
	log.Printf("tsteinerd: %s received, draining", sig)
	return s.Close()
}

// runSubmit sends one job. The design file is inlined into the request;
// the job ID defaults to a digest of the design bytes plus the kind, so
// re-running the same submission is idempotent end to end.
func runSubmit(cfg serviceConfig) error {
	if cfg.designFile == "" {
		return fmt.Errorf("tsteiner: -submit requires -job-design")
	}
	raw, err := os.ReadFile(cfg.designFile)
	if err != nil {
		return fmt.Errorf("tsteiner: %w", err)
	}
	if !json.Valid(raw) {
		return fmt.Errorf("tsteiner: %s is not valid JSON", cfg.designFile)
	}
	id := cfg.jobID
	if id == "" {
		sum := sha256.Sum256(raw)
		id = cfg.kind + "-" + hex.EncodeToString(sum[:])[:12]
	}
	req := &serve.JobRequest{
		ID:         id,
		Kind:       cfg.kind,
		Design:     raw,
		Seed:       cfg.seed,
		Epochs:     cfg.epochs,
		Iters:      cfg.iters,
		Lanes:      cfg.lanes,
		Shards:     cfg.jobShards,
		Corners:    cfg.corners,
		Workers:    cfg.workers,
		DeadlineMS: cfg.deadlineWall.Milliseconds(),
	}
	c := &serve.Client{Base: cfg.submitURL, Retries: cfg.retries}
	st, err := c.Submit(req)
	if err != nil {
		return err
	}
	log.Printf("job %s submitted: %s", st.ID, st.State)
	if cfg.wait > 0 {
		st, err = c.Wait(id, cfg.wait)
		if err != nil {
			return err
		}
		if st.State != serve.StateDone {
			return fmt.Errorf("tsteiner: job %s %s: %s", id, st.State, st.Error)
		}
		if cfg.forestOut != "" {
			forest, err := c.Forest(id)
			if err != nil {
				return err
			}
			if err := guard.AtomicWriteFile(cfg.forestOut, forest, 0o644); err != nil {
				return err
			}
			log.Printf("refined forest written to %s", cfg.forestOut)
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", " ")
	return enc.Encode(st)
}
