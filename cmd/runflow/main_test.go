package main

import (
	"path/filepath"
	"strings"
	"testing"

	"tsteiner/internal/check"
	"tsteiner/internal/designio"
	"tsteiner/internal/lib"
	"tsteiner/internal/synth"
)

// TestSmoke builds runflow and pushes a tiny generated design JSON
// through the sign-off flow; the required-flag misuse path must fail.
func TestSmoke(t *testing.T) {
	bin := check.GoBuild(t, "tsteiner/cmd/runflow")
	dir := t.TempDir()

	help := check.RunOK(t, dir, bin, "-h")
	if !strings.Contains(help, "-design") {
		t.Fatalf("help output lacks flag listing:\n%s", help)
	}

	d, err := synth.Generate(synth.Spec{
		Name: "smoke", Seed: 5, Cells: 40, Endpoints: 8, PIs: 4, Depth: 5, ClockNS: 1.0,
	}, lib.Default())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "design.json")
	if err := designio.WriteJSONFile(path, d); err != nil {
		t.Fatal(err)
	}
	out := check.RunMain(t, dir, main, "-design", path)
	if !strings.Contains(out, "WNS") {
		t.Fatalf("flow output lacks sign-off metrics:\n%s", out)
	}

	check.RunFail(t, dir, bin) // -design is required
	check.RunFail(t, dir, bin, "-design", filepath.Join(dir, "missing.json"))
}
