// Command runflow executes the physical-design pipeline on a user-supplied
// design (JSON, as written by designio/cmd tsteiner -save-design) instead
// of a bundled benchmark: placement (unless the file carries positions),
// Steiner construction, optional buffering, routing and sign-off STA.
//
// Usage:
//
//	runflow -design mydesign.json [-replace] [-buffer] [-svg out.svg] [-workers N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"

	"tsteiner/internal/bufins"
	"tsteiner/internal/designio"
	"tsteiner/internal/flow"
	"tsteiner/internal/lib"
	"tsteiner/internal/netlist"
	"tsteiner/internal/viz"
)

func main() {
	var (
		path    = flag.String("design", "", "design JSON path (required)")
		replace = flag.Bool("replace", false, "re-place the design even if it carries positions")
		buffer  = flag.Bool("buffer", false, "apply fanout-driven buffer insertion first")
		svgPath = flag.String("svg", "", "write the layout SVG here")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "parallel workers (1 = serial; results are identical either way)")
	)
	flag.Parse()
	if *path == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*path)
	if err != nil {
		log.Fatal(err)
	}
	l := lib.Default()
	d, err := designio.ReadJSON(f, l)
	f.Close()
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("loaded %s: %d cells, %d nets, %d endpoints",
		d.Name, len(d.Cells), len(d.Nets), len(d.Endpoints()))

	if *buffer {
		buffered, st, err := bufins.Insert(d, bufins.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("buffered %d nets with %d buffers (max tree depth %d)",
			st.NetsBuffered, st.BuffersInserted, st.TreeDepthMax)
		d = buffered
	}

	cfg := flow.DefaultConfig()
	cfg.Workers = *workers
	var prepared *flow.Prepared
	if *replace || !hasPlacement(d) {
		prepared, err = flow.Prepare(d, l, cfg)
	} else {
		// Keep the file's placement: skip the placer by preparing with
		// the existing positions (Prepare always places, so build the
		// forest directly through a placement-preserving config).
		prepared, err = flow.PrepareKeepPlacement(d, l, cfg)
	}
	if err != nil {
		log.Fatal(err)
	}

	rep, err := flow.Signoff(prepared, prepared.Forest)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sign-off: WNS %.3f ns, TNS %.2f ns, %d violations\n", rep.WNS, rep.TNS, rep.Vios)
	fmt.Printf("routing:  WL %d DBU, %d vias, %d DRVs, overflow %d\n",
		rep.WirelengthDBU, rep.Vias, rep.DRVs, rep.Overflow)

	if *svgPath != "" {
		out, err := os.Create(*svgPath)
		if err != nil {
			log.Fatal(err)
		}
		defer out.Close()
		if err := viz.WriteLayoutSVG(out, prepared.Design, prepared.Forest, viz.DefaultLayoutOptions()); err != nil {
			log.Fatal(err)
		}
		log.Printf("layout written to %s", *svgPath)
	}
}

// hasPlacement reports whether any cell carries a non-origin position.
func hasPlacement(d *netlist.Design) bool {
	if d.Die.Empty() || d.Die.Width() == 0 {
		return false
	}
	for ci := range d.Cells {
		p := d.Cells[ci].Pos
		if p.X != 0 || p.Y != 0 {
			return true
		}
	}
	return false
}
