// Command runflow executes the physical-design pipeline on a user-supplied
// design (JSON, as written by designio/cmd tsteiner -save-design) instead
// of a bundled benchmark: placement (unless the file carries positions),
// Steiner construction, optional buffering, routing and sign-off STA.
// With -refine it additionally trains the timing evaluator on the design
// and runs TSteiner Steiner-point refinement before the final sign-off.
//
// Usage:
//
//	runflow -design mydesign.json [-replace] [-buffer] [-svg out.svg]
//	        [-refine] [-epochs 60] [-iters 25] [-seed 2023]
//	        [-corners fast,typical,slow]
//	        [-workers N] [-obs-out trace.ndjson] [-cpuprofile cpu.out] [-memprofile mem.out]
//	        [-checkpoint-dir dir] [-resume] [-deadline 10m]
//
// Large designs: -stream loads the file through the token-wise streaming
// decoder (internal/designio.StreamDesignFile), so the JSON is never
// materialized alongside the netlist; -shards N runs sharded incremental
// refinement (internal/shard) instead of the GNN refiner:
//
//	runflow -design big.json -stream -shards 4 [-rounds 8]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"tsteiner/internal/bufins"
	"tsteiner/internal/core"
	"tsteiner/internal/designio"
	"tsteiner/internal/flow"
	"tsteiner/internal/gnn"
	"tsteiner/internal/guard"
	"tsteiner/internal/lib"
	"tsteiner/internal/netlist"
	"tsteiner/internal/obs"
	"tsteiner/internal/report"
	"tsteiner/internal/shard"
	"tsteiner/internal/sta"
	"tsteiner/internal/train"
	"tsteiner/internal/viz"
)

func main() {
	var (
		path    = flag.String("design", "", "design JSON path (required)")
		replace = flag.Bool("replace", false, "re-place the design even if it carries positions")
		buffer  = flag.Bool("buffer", false, "apply fanout-driven buffer insertion first")
		svgPath = flag.String("svg", "", "write the layout SVG here")
		refine  = flag.Bool("refine", false, "train an evaluator and refine Steiner points before sign-off")
		epochs  = flag.Int("epochs", 60, "evaluator training epochs (-refine)")
		iters   = flag.Int("iters", 25, "max refinement iterations N (-refine)")
		lanes   = flag.Int("lanes", 0, "line-search candidates per fused batched forward (0 = sequential; -refine)")
		seed    = flag.Int64("seed", 2023, "random seed (-refine)")
		stream  = flag.Bool("stream", false, "load the design through the streaming decoder (constant decode memory)")
		shards  = flag.Int("shards", 0, "run sharded incremental refinement with this many proposal shards (0 = off)")
		rounds  = flag.Int("rounds", 8, "sharded refinement rounds (-shards)")
		cspec   = flag.String("corners", "", `multi-corner sign-off: comma-separated presets fast|typical|slow, "default", or name:delayScale:slewScale:clockScale (empty = typical only)`)
	)
	shared := obs.RegisterFlags(flag.CommandLine)
	flag.Parse()
	if *path == "" {
		flag.Usage()
		os.Exit(2)
	}
	sink, closeObs, err := shared.Setup(nil)
	if err != nil {
		log.Fatal(err)
	}
	defer closeObs()

	var corners []sta.Corner
	if *cspec != "" {
		if corners, err = sta.ParseCorners(*cspec); err != nil {
			log.Fatal(err)
		}
	}

	manifest := shared.Manifest("runflow", flag.CommandLine)
	manifest.Seed = *seed
	manifest.Lanes = *lanes
	manifest.LibFingerprint = lib.Default().Fingerprint()
	manifest.Emit(sink)
	if shared.Out != "" {
		if err := manifest.WriteNextTo(shared.Out); err != nil {
			log.Fatal(err)
		}
	}

	var budget *guard.Budget
	if shared.Deadline > 0 {
		budget = &guard.Budget{Wall: shared.Deadline}
		budget.Start()
	}
	if shared.CheckpointDir != "" {
		if err := os.MkdirAll(shared.CheckpointDir, 0o755); err != nil {
			log.Fatal(err)
		}
		if err := manifest.WriteFile(filepath.Join(shared.CheckpointDir, "manifest.json")); err != nil {
			log.Fatal(err)
		}
	}

	l := lib.Default()
	// Both loaders reject truncated or corrupt design files with a typed
	// error instead of decoding a partial design; the streaming one never
	// holds the decoded JSON and the netlist at the same time.
	var d *netlist.Design
	if *stream {
		d, err = designio.StreamDesignFile(*path, l)
	} else {
		d, err = designio.ReadJSONFile(*path, l)
	}
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("loaded %s: %d cells, %d nets, %d endpoints",
		d.Name, len(d.Cells), len(d.Nets), len(d.Endpoints()))

	if *buffer {
		buffered, st, err := bufins.Insert(d, bufins.DefaultOptions())
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("buffered %d nets with %d buffers (max tree depth %d)",
			st.NetsBuffered, st.BuffersInserted, st.TreeDepthMax)
		d = buffered
	}

	cfg := flow.DefaultConfig()
	cfg.Workers = shared.Workers
	cfg.Obs = sink
	cfg.Budget = budget
	cfg.Corners = corners
	var prepared *flow.Prepared
	if *replace || !hasPlacement(d) {
		prepared, err = flow.Prepare(d, l, cfg)
	} else {
		// Keep the file's placement: skip the placer by preparing with
		// the existing positions (Prepare always places, so build the
		// forest directly through a placement-preserving config).
		prepared, err = flow.PrepareKeepPlacement(d, l, cfg)
	}
	if err != nil {
		log.Fatal(err)
	}

	rep, timing, err := flow.SignoffTiming(prepared, prepared.Forest)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sign-off: WNS %.3f ns, TNS %.2f ns, %d violations\n", rep.WNS, rep.TNS, rep.Vios)
	fmt.Printf("routing:  WL %d DBU, %d vias, %d DRVs, overflow %d\n",
		rep.WirelengthDBU, rep.Vias, rep.DRVs, rep.Overflow)
	if len(rep.Corners) > 0 {
		if err := report.CornerMatrix("sign-off corner matrix", rep.Corners).Render(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}

	finalForest := prepared.Forest
	if *shards > 0 {
		sopt := shard.DefaultOptions()
		sopt.Shards = *shards
		sopt.Workers = shared.Workers
		sopt.Rounds = *rounds
		sopt.Corners = corners
		log.Printf("sharded refinement: %d shards, %d rounds", sopt.Shards, sopt.Rounds)
		res, err := shard.Refine(prepared, sopt)
		if err != nil {
			log.Fatal(err)
		}
		finalForest = res.Forest
		log.Printf("refined: %d/%d rounds accepted, %d nets moved, %d nets re-timed (init %.1fs, refine %.1fs)",
			res.Accepted, res.Rounds, res.MovedNets, res.RetimedNets, res.InitSec, res.RefineSec)
		fmt.Printf("sharded:  WNS %.3f ns, TNS %.2f ns, %d violations (from WNS %.3f, TNS %.2f)\n",
			res.WNS, res.TNS, res.Vios, res.InitWNS, res.InitTNS)
		if len(res.Corners) > 0 {
			if err := report.CornerMatrix("sharded corner matrix", res.Corners).Render(os.Stdout); err != nil {
				log.Fatal(err)
			}
		}
	}
	if *refine {
		res, err := refineDesign(prepared, timing, rep, *epochs, *iters, *lanes, *seed, corners, shared, budget, sink, manifest)
		if err != nil {
			log.Fatal(err)
		}
		if res.Cutoff != "" {
			log.Printf("refinement cut off (%s); keeping best solution so far", res.Cutoff)
		}
		if res.Degraded {
			log.Printf("refinement degraded after %d numerical recoveries; keeping best solution so far", res.Recoveries)
		}
		finalForest = res.Forest
		rep2, err := flow.Signoff(prepared, res.Forest)
		if err != nil {
			log.Fatal(err)
		}
		rep2.TSteinerSec = res.RuntimeSec
		fmt.Printf("refined:  WNS %.3f ns, TNS %.2f ns, %d violations (evaluator WNS %.3f→%.3f, %d iterations)\n",
			rep2.WNS, rep2.TNS, rep2.Vios, res.InitWNS, res.BestWNS, res.Iterations)
		if len(rep2.Corners) > 0 {
			if err := report.CornerMatrix("refined corner matrix", rep2.Corners).Render(os.Stdout); err != nil {
				log.Fatal(err)
			}
		}
	}

	if *svgPath != "" {
		out, err := os.Create(*svgPath)
		if err != nil {
			log.Fatal(err)
		}
		defer out.Close()
		if err := viz.WriteLayoutSVG(out, prepared.Design, finalForest, viz.DefaultLayoutOptions()); err != nil {
			log.Fatal(err)
		}
		if err := manifest.WriteNextTo(*svgPath); err != nil {
			log.Fatal(err)
		}
		log.Printf("layout written to %s", *svgPath)
	}
}

// refineDesign trains an evaluator on this design (plus perturbed
// variants) and runs TSteiner refinement — the same recipe cmd/tsteiner
// applies to bundled benchmarks, for loaded designs.
func refineDesign(p *flow.Prepared, timing *sta.Result, baseline *flow.Report, epochs, iters, lanes int, seed int64, corners []sta.Corner, shared *obs.Flags, budget *guard.Budget, sink *obs.Sink, manifest *obs.Manifest) (*core.Result, error) {
	workers := shared.Workers
	batch, err := gnn.NewBatch(p.Design, p.Forest)
	if err != nil {
		return nil, err
	}
	smp := &train.Sample{
		Name:     p.Design.Name,
		Train:    true,
		Prepared: p,
		Batch:    batch,
		Forest:   p.Forest,
		Labels:   gnn.Labels(timing),
		Baseline: baseline,
	}
	log.Printf("training evaluator (%d epochs)", epochs)
	samples := []*train.Sample{smp}
	aug, err := train.Augment(smp, 2, 10, seed, workers)
	if err != nil {
		return nil, err
	}
	samples = append(samples, aug...)
	m := gnn.NewModel(gnn.DefaultConfig(), seed)
	topt := train.DefaultOptions()
	topt.Epochs = epochs
	topt.Seed = seed
	topt.Workers = workers
	topt.Obs = sink
	topt.Budget = budget
	if shared.CheckpointDir != "" {
		topt.CheckpointPath = filepath.Join(shared.CheckpointDir, "train.ckpt")
		topt.Resume = shared.Resume
	}
	if _, err := train.Train(m, samples, topt); err != nil {
		return nil, err
	}
	manifest.ModelHash = m.Hash()
	sc, err := train.Evaluate(m, smp)
	if err != nil {
		return nil, err
	}
	log.Printf("evaluator R²: all-pins %.4f, endpoints %.4f", sc.ArrivalAll, sc.ArrivalEnds)
	sink.Event("train.eval",
		obs.KV{K: "design", V: p.Design.Name},
		obs.KV{K: "r2_all", V: sc.ArrivalAll}, obs.KV{K: "r2_ends", V: sc.ArrivalEnds})

	ropt := core.DefaultOptions()
	ropt.N = iters
	ropt.CandidateLanes = lanes
	ropt.Budget = budget
	if len(corners) > 0 {
		ropt.Corners = core.CornerTermsFor(corners)
		ropt.HoldGuard = true
	}
	if shared.CheckpointDir != "" {
		ropt.CheckpointPath = filepath.Join(shared.CheckpointDir, "refine.ckpt")
		ropt.Resume = shared.Resume
	}
	ref, err := core.NewRefiner(m, batch, p, ropt)
	if err != nil {
		return nil, err
	}
	log.Printf("refining Steiner points (N=%d)", ropt.N)
	return ref.Refine()
}

// hasPlacement reports whether any cell carries a non-origin position.
func hasPlacement(d *netlist.Design) bool {
	if d.Die.Empty() || d.Die.Width() == 0 {
		return false
	}
	for ci := range d.Cells {
		p := d.Cells[ci].Pos
		if p.X != 0 || p.Y != 0 {
			return true
		}
	}
	return false
}
