package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tsteiner/internal/check"
	"tsteiner/internal/designio"
	"tsteiner/internal/lib"
	"tsteiner/internal/synth"
)

// writeDesign generates a small design JSON for the in-process flow runs.
func writeDesign(t *testing.T, dir string, seed int64) string {
	t.Helper()
	d, err := synth.Generate(synth.Spec{
		Name: "rf", Seed: seed, Cells: 40, Endpoints: 8, PIs: 4, Depth: 5, ClockNS: 1.0,
	}, lib.Default())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "design.json")
	if err := designio.WriteJSONFile(path, d); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestShardedStreamCorners drives the large-design path end to end:
// streaming decode, sharded refinement, and the multi-corner matrix
// tables for both the baseline and the sharded result.
func TestShardedStreamCorners(t *testing.T) {
	dir := t.TempDir()
	path := writeDesign(t, dir, 5)
	out := check.RunMain(t, dir, main,
		"-design", path, "-stream", "-shards", "2", "-rounds", "2",
		"-corners", "default")
	for _, want := range []string{"sign-off corner matrix", "sharded corner matrix",
		"fast", "typical", "slow", "sharded:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output lacks %q:\n%s", want, out)
		}
	}
}

// TestRefineCornersSVG drives the GNN refinement path with a corner
// matrix plus the buffer and SVG side outputs.
func TestRefineCornersSVG(t *testing.T) {
	dir := t.TempDir()
	path := writeDesign(t, dir, 7)
	svg := filepath.Join(dir, "layout.svg")
	out := check.RunMain(t, dir, main,
		"-design", path, "-replace", "-buffer", "-svg", svg,
		"-refine", "-epochs", "2", "-iters", "2", "-lanes", "2",
		"-corners", "fast,typical,slow")
	for _, want := range []string{"refined:", "refined corner matrix", "buffered"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output lacks %q:\n%s", want, out)
		}
	}
	if fi, err := os.Stat(svg); err != nil || fi.Size() == 0 {
		t.Fatalf("svg not written: %v", err)
	}
}

// TestCornerMisuse pins the misuse exit codes for the corner flag and
// corrupt design input.
func TestCornerMisuse(t *testing.T) {
	bin := check.GoBuild(t, "tsteiner/cmd/runflow")
	dir := t.TempDir()
	path := writeDesign(t, dir, 9)
	check.RunFail(t, dir, bin, "-design", path, "-corners", "warp9")
	check.RunFail(t, dir, bin, "-design", path, "-corners", "typical:0:1:1")
	check.RunFail(t, dir, bin, "-design", path, "-corners", "typical,typical")

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"Name": "x", "Cells": [`), 0o644); err != nil {
		t.Fatal(err)
	}
	check.RunFail(t, dir, bin, "-design", bad)
	check.RunFail(t, dir, bin, "-design", bad, "-stream")
}
