package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"tsteiner/internal/obs/export"
)

// trace is the aggregate view of one NDJSON event stream. Durations are
// kept in milliseconds (the unit the stream carries); histograms reuse
// the export bucket scheme so quantiles here match what /metrics served
// while the run was live.
type trace struct {
	Path   string
	Events int
	// Manifest is the first "manifest" event (run provenance), nil when
	// the trace predates manifests or was truncated before it.
	Manifest map[string]any
	// DroppedSpans counts span_start ids that never saw a span_end —
	// usually a run cut off mid-phase.
	DroppedSpans int

	Spans   map[string]*spanStat    // per span name, from span_end
	SpanDur map[string]*export.Hist // span_end dur_ms distributions
	// Values holds event-derived sample families: refine per-iteration
	// allocation counts and pool utilization, bucketed like the live sink.
	Values map[string]*export.Hist

	Iters  []iterRec  // core.iter convergence records, in stream order
	Epochs []epochRec // train.epoch records, in stream order
}

type spanStat struct {
	Count int64
	Total float64 // ms
	Max   float64 // ms
}

type iterRec struct {
	Iter     int
	Penalty  float64
	WNS, TNS float64
	Theta    float64
	Lane     int
	Accepted bool
	Allocs   float64
}

type epochRec struct {
	Epoch int
	Loss  float64
	DurMS float64
}

func parseFile(path string) (*trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	tr, err := parse(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	tr.Path = path
	return tr, nil
}

// parse folds an NDJSON stream into a trace. Unknown events only count
// toward Events — the analyzer must keep working as instrumentation
// grows. A malformed line is an error: traces are machine-written, so
// corruption means the file is not what the caller thinks it is.
func parse(r io.Reader) (*trace, error) {
	tr := &trace{
		Spans:   map[string]*spanStat{},
		SpanDur: map[string]*export.Hist{},
		Values:  map[string]*export.Hist{},
	}
	open := map[float64]bool{} // span id -> started, not yet ended
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := strings.TrimSpace(sc.Text())
		if raw == "" {
			continue
		}
		var ev map[string]any
		if err := json.Unmarshal([]byte(raw), &ev); err != nil {
			return nil, fmt.Errorf("line %d: %w", line, err)
		}
		tr.Events++
		name, _ := ev["ev"].(string)
		switch name {
		case "manifest":
			if tr.Manifest == nil {
				tr.Manifest = ev
			}
		case "span_start":
			open[num(ev, "span")] = true
		case "span_end":
			delete(open, num(ev, "span"))
			sn, _ := ev["name"].(string)
			dur := num(ev, "dur_ms")
			st := tr.Spans[sn]
			if st == nil {
				st = &spanStat{}
				tr.Spans[sn] = st
			}
			st.Count++
			st.Total += dur
			if dur > st.Max {
				st.Max = dur
			}
			observe(tr.SpanDur, sn, dur)
		case "core.iter":
			tr.Iters = append(tr.Iters, iterRec{
				Iter:     int(num(ev, "iter")),
				Penalty:  num(ev, "penalty"),
				WNS:      num(ev, "wns"),
				TNS:      num(ev, "tns"),
				Theta:    num(ev, "theta"),
				Lane:     int(num(ev, "lane")),
				Accepted: ev["accepted"] == true,
				Allocs:   num(ev, "allocs"),
			})
			observe(tr.Values, "core.iter_allocs", num(ev, "allocs"))
		case "train.epoch":
			tr.Epochs = append(tr.Epochs, epochRec{
				Epoch: int(num(ev, "epoch")),
				Loss:  num(ev, "loss"),
				DurMS: num(ev, "dur_ms"),
			})
			observe(tr.Values, "train.epoch_ms", num(ev, "dur_ms"))
		case "par.pool":
			observe(tr.Values, "par.pool_util", num(ev, "util"))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	tr.DroppedSpans = len(open)
	return tr, nil
}

func num(ev map[string]any, key string) float64 {
	v, _ := ev[key].(float64)
	return v
}

func observe(fam map[string]*export.Hist, name string, v float64) {
	h := fam[name]
	if h == nil {
		h = &export.Hist{Name: name}
		fam[name] = h
	}
	h.Observe(v)
}

// rollupRow is one span family with its self time: total minus the
// totals of its direct children (one more '/'-separated level).
type rollupRow struct {
	Name    string
	Count   int64
	TotalMS float64
	SelfMS  float64
	MaxMS   float64
}

// Rollup computes per-span self-vs-child time, largest total first
// (name-ordered on ties, so output is deterministic for a given trace).
func (tr *trace) Rollup() []rollupRow {
	childTotal := map[string]float64{}
	for name, st := range tr.Spans {
		if i := strings.LastIndex(name, "/"); i > 0 {
			childTotal[name[:i]] += st.Total
		}
	}
	rows := make([]rollupRow, 0, len(tr.Spans))
	for name, st := range tr.Spans {
		self := st.Total - childTotal[name]
		if self < 0 {
			self = 0
		}
		rows = append(rows, rollupRow{
			Name: name, Count: st.Count,
			TotalMS: st.Total, SelfMS: self, MaxMS: st.Max,
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].TotalMS != rows[j].TotalMS {
			return rows[i].TotalMS > rows[j].TotalMS
		}
		return rows[i].Name < rows[j].Name
	})
	return rows
}
