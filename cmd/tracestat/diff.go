package main

import (
	"fmt"
	"io"
	"sort"

	"tsteiner/internal/report"
)

// writeDiff renders the A/B comparison and returns how many regressions
// it flagged. A span regresses when its new total exceeds minMS and grew
// by more than timeRatio over the base; refine allocations regress when
// the mean per-iteration allocation count grew by more than allocRatio.
// Spans present on only one side are reported but never flagged — a
// phase that appeared or vanished is a structural change the reader must
// judge, not a timing regression.
func writeDiff(w io.Writer, a, b *trace, timeRatio, allocRatio, minMS float64) (int, error) {
	fmt.Fprintf(w, "base: %s (%d events)\nnew:  %s (%d events)\n", a.Path, a.Events, b.Path, b.Events)

	names := map[string]bool{}
	for n := range a.Spans {
		names[n] = true
	}
	for n := range b.Spans {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)

	regressions := 0
	t := report.Table{
		Title:  "span totals (ms)",
		Header: []string{"span", "base", "new", "ratio", "flag"},
	}
	for _, n := range sorted {
		sa, sb := a.Spans[n], b.Spans[n]
		switch {
		case sa == nil:
			t.AddRow(n, "-", report.F(sb.Total, 1), "-", "new")
		case sb == nil:
			t.AddRow(n, report.F(sa.Total, 1), "-", "-", "gone")
		default:
			ratio := 0.0
			if sa.Total > 0 {
				ratio = sb.Total / sa.Total
			}
			flag := ""
			if sb.Total >= minMS && sa.Total > 0 && ratio > timeRatio {
				flag = "REGRESSION"
				regressions++
			}
			t.AddRow(n, report.F(sa.Total, 1), report.F(sb.Total, 1), report.F(ratio, 2), flag)
		}
	}
	fmt.Fprintln(w)
	if err := t.Render(w); err != nil {
		return 0, err
	}

	ha, hb := a.Values["core.iter_allocs"], b.Values["core.iter_allocs"]
	if ha != nil && hb != nil && ha.Count > 0 && hb.Count > 0 {
		ratio := 0.0
		if ha.Mean() > 0 {
			ratio = hb.Mean() / ha.Mean()
		}
		flag := ""
		if ha.Mean() > 0 && ratio > allocRatio {
			flag = "  REGRESSION"
			regressions++
		}
		fmt.Fprintf(w, "\nrefine allocs/iter: base %.1f new %.1f (ratio %.2f)%s\n",
			ha.Mean(), hb.Mean(), ratio, flag)
	}
	return regressions, nil
}
