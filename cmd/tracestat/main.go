// Command tracestat analyzes NDJSON traces written with -obs-out and
// scrapes live -obs-listen endpoints: an offline companion to the obs
// layer that turns a raw event stream back into the tables an engineer
// asks for first — where did the time go (per-phase self vs child
// rollup), how bad are the tails (bucketed duration quantiles on the
// same log-bucket scheme /metrics serves), and did the run converge
// (per-iteration penalty/WNS/TNS/theta table).
//
// Usage:
//
//	tracestat trace.ndjson                    analyze one trace
//	tracestat -diff base.ndjson new.ndjson    A/B compare; exit 1 on regression
//	tracestat -scrape http://127.0.0.1:9090   validate a live /metrics endpoint
//
// Diff mode flags spans whose total time grew beyond -time-ratio (and
// -min-ms) and refine iterations whose mean allocation count grew beyond
// -alloc-ratio, and exits nonzero so verify gates can script it.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"

	"tsteiner/internal/obs/export"
	"tsteiner/internal/report"
)

func main() {
	var (
		diff       = flag.Bool("diff", false, "compare two traces: tracestat -diff base.ndjson new.ndjson")
		timeRatio  = flag.Float64("time-ratio", 1.5, "diff: flag spans whose total time grew by more than this factor")
		allocRatio = flag.Float64("alloc-ratio", 1.5, "diff: flag refine iterations whose mean allocs grew by more than this factor")
		minMS      = flag.Float64("min-ms", 5.0, "diff: ignore spans whose new total is below this (noise floor)")
		top        = flag.Int("top", 0, "limit the span rollup to the N largest totals (0 = all)")
		scrapeURL  = flag.String("scrape", "", "scrape a live -obs-listen endpoint (base URL) and validate its exposition")
		retries    = flag.Int("scrape-retries", 50, "scrape: connection attempts before giving up")
		waitMS     = flag.Int("scrape-wait", 100, "scrape: delay between attempts (ms)")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: tracestat [flags] trace.ndjson\n"+
				"       tracestat -diff base.ndjson new.ndjson\n"+
				"       tracestat -scrape http://host:port\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	log.SetFlags(0)
	log.SetPrefix("tracestat: ")

	switch {
	case *scrapeURL != "":
		if err := scrape(os.Stdout, *scrapeURL, *retries, *waitMS); err != nil {
			log.Fatal(err)
		}
	case *diff:
		if flag.NArg() != 2 {
			flag.Usage()
			os.Exit(2)
		}
		a, err := parseFile(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		b, err := parseFile(flag.Arg(1))
		if err != nil {
			log.Fatal(err)
		}
		regressions, err := writeDiff(os.Stdout, a, b, *timeRatio, *allocRatio, *minMS)
		if err != nil {
			log.Fatal(err)
		}
		if regressions > 0 {
			log.Printf("%d regression(s) detected", regressions)
			os.Exit(1)
		}
	default:
		if flag.NArg() != 1 {
			flag.Usage()
			os.Exit(2)
		}
		tr, err := parseFile(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		if err := writeAnalysis(os.Stdout, tr, *top); err != nil {
			log.Fatal(err)
		}
	}
}

// writeAnalysis renders the single-trace report: provenance, the span
// rollup, duration quantiles, event-derived histograms, the refinement
// convergence table and the training summary.
func writeAnalysis(w *os.File, tr *trace, top int) error {
	fmt.Fprintf(w, "%s: %d events", tr.Path, tr.Events)
	if tr.DroppedSpans > 0 {
		fmt.Fprintf(w, " (%d span_start without span_end)", tr.DroppedSpans)
	}
	fmt.Fprintln(w)
	if tr.Manifest != nil {
		fmt.Fprintf(w, "manifest: %s\n", manifestLine(tr.Manifest))
	}

	rollup := tr.Rollup()
	if top > 0 && top < len(rollup) {
		rollup = rollup[:top]
	}
	if len(rollup) > 0 {
		t := report.Table{
			Title:  "span rollup (self = total minus direct children)",
			Header: []string{"span", "count", "total_ms", "self_ms", "max_ms"},
		}
		for _, r := range rollup {
			t.AddRow(r.Name, report.I(int(r.Count)),
				report.F(r.TotalMS, 1), report.F(r.SelfMS, 1), report.F(r.MaxMS, 1))
		}
		fmt.Fprintln(w)
		if err := t.Render(w); err != nil {
			return err
		}
	}

	if hq := tr.histTable("span duration quantiles (ms, bucketed)", tr.SpanDur); hq != nil {
		fmt.Fprintln(w)
		if err := hq.Render(w); err != nil {
			return err
		}
	}
	if hq := tr.histTable("event-derived histograms", tr.Values); hq != nil {
		fmt.Fprintln(w)
		if err := hq.Render(w); err != nil {
			return err
		}
	}

	if len(tr.Iters) > 0 {
		t := report.Table{
			Title:  "refinement convergence (core.iter)",
			Header: []string{"iter", "penalty", "WNS", "TNS", "theta", "lane", "accepted"},
		}
		for _, it := range tr.Iters {
			acc := ""
			if it.Accepted {
				acc = "yes"
			}
			t.AddRow(report.I(it.Iter), report.F(it.Penalty, 4),
				report.F(it.WNS, 4), report.F(it.TNS, 2),
				report.F(it.Theta, 3), report.I(it.Lane), acc)
		}
		fmt.Fprintln(w)
		if err := t.Render(w); err != nil {
			return err
		}
	}

	if len(tr.Epochs) > 0 {
		first, last := tr.Epochs[0], tr.Epochs[len(tr.Epochs)-1]
		fmt.Fprintf(w, "\ntraining: %d epochs, loss %.6g -> %.6g\n",
			len(tr.Epochs), first.Loss, last.Loss)
	}
	return nil
}

// manifestLine flattens the run manifest event into one sorted k=v line.
func manifestLine(m map[string]any) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		if k == "t" || k == "ev" || k == "flags" {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := ""
	for i, k := range keys {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s=%v", k, m[k])
	}
	return s
}

// histTable renders one quantile table over a family of bucketed
// histograms, or nil when the family is empty.
func (tr *trace) histTable(title string, fam map[string]*export.Hist) *report.Table {
	if len(fam) == 0 {
		return nil
	}
	names := make([]string, 0, len(fam))
	for n := range fam {
		names = append(names, n)
	}
	sort.Strings(names)
	t := &report.Table{
		Title:  title,
		Header: []string{"name", "count", "mean", "p50", "p95", "p99", "max"},
	}
	for _, n := range names {
		h := fam[n]
		t.AddRow(n, report.I(int(h.Count)), report.F(h.Mean(), 3),
			report.F(h.Quantile(0.5), 3), report.F(h.Quantile(0.95), 3),
			report.F(h.Quantile(0.99), 3), report.F(h.Max, 3))
	}
	return t
}
