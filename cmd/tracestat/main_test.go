package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tsteiner/internal/check"
	"tsteiner/internal/obs"
)

func fixture(t *testing.T, name string) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Join(wd, "testdata", name)
}

// TestSmoke drives every tracestat mode: help and the misuse/regression
// exit codes through a compiled binary, the analyze / clean-diff / scrape
// paths through main() in process so coverage attributes them.
func TestSmoke(t *testing.T) {
	bin := check.GoBuild(t, "tsteiner/cmd/tracestat")
	dir := t.TempDir()
	a := fixture(t, "trace_a.ndjson")
	b := fixture(t, "trace_b.ndjson")

	help := check.RunOK(t, dir, bin, "-h")
	if !strings.Contains(help, "-diff") || !strings.Contains(help, "-scrape") {
		t.Fatalf("help output lacks mode flags:\n%s", help)
	}

	out := check.RunMain(t, dir, main, a)
	for _, want := range []string{
		"span rollup", "span duration quantiles",
		"refinement convergence", "manifest:", "tool=tsteiner",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("analysis lacks %q:\n%s", want, out)
		}
	}

	// Diffing a trace against itself must be regression-free (exit 0 —
	// RunMain requires a normal return).
	out = check.RunMain(t, dir, main, "-diff", a, a)
	if strings.Contains(out, "REGRESSION") {
		t.Fatalf("self-diff flagged a regression:\n%s", out)
	}

	// The committed B trace carries a seeded 30x span slowdown and a 20x
	// allocation inflation — diff must flag both and exit nonzero.
	out = check.RunFail(t, dir, bin, "-diff", "-min-ms", "1", a, b)
	if !strings.Contains(out, "REGRESSION") || !strings.Contains(out, "flow.signoff/sta") {
		t.Fatalf("seeded regression not flagged:\n%s", out)
	}
	if !strings.Contains(out, "refine allocs/iter") {
		t.Fatalf("alloc regression line missing:\n%s", out)
	}

	// Misuse: no input file, and diff with the wrong arity.
	check.RunFail(t, dir, bin)
	check.RunFail(t, dir, bin, "-diff", a)
	check.RunFail(t, dir, bin, filepath.Join(dir, "no_such_trace.ndjson"))
}

// TestScrape points -scrape at a real obs.Serve endpoint.
func TestScrape(t *testing.T) {
	sink := obs.New(nil)
	sink.Add("ops", 2)
	sink.Observe("v", 1.5)
	sv, err := obs.Serve("127.0.0.1:0", sink)
	if err != nil {
		t.Fatal(err)
	}
	defer sv.Close()

	dir := t.TempDir()
	out := check.RunMain(t, dir, main, "-scrape", sv.URL())
	if !strings.Contains(out, "scrape ok:") {
		t.Fatalf("scrape output: %s", out)
	}

	// An unreachable endpoint must fail fast and nonzero.
	bin := check.GoBuild(t, "tsteiner/cmd/tracestat")
	check.RunFail(t, dir, bin, "-scrape", "127.0.0.1:1", "-scrape-retries", "2", "-scrape-wait", "10")
}

// TestParseTruncatedSpan: a trace cut off mid-phase reports the open
// span instead of crashing or miscounting.
func TestParseTruncatedSpan(t *testing.T) {
	tr, err := parse(strings.NewReader(
		`{"t":1,"ev":"span_start","span":1,"name":"a"}` + "\n" +
			`{"t":2,"ev":"span_start","span":2,"name":"a/b"}` + "\n" +
			`{"t":3,"ev":"span_end","span":2,"name":"a/b","dur_ms":1.5}` + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tr.DroppedSpans != 1 {
		t.Fatalf("DroppedSpans = %d, want 1", tr.DroppedSpans)
	}
	if tr.Spans["a/b"] == nil || tr.Spans["a/b"].Count != 1 {
		t.Fatalf("spans: %+v", tr.Spans)
	}
	if _, err := parse(strings.NewReader("{not json}\n")); err == nil {
		t.Fatal("malformed line accepted")
	}
}

// TestRollupSelfTime: self = total minus direct children only.
func TestRollupSelfTime(t *testing.T) {
	tr := &trace{Spans: map[string]*spanStat{
		"p":     {Count: 1, Total: 10, Max: 10},
		"p/a":   {Count: 2, Total: 4, Max: 3},
		"p/a/x": {Count: 1, Total: 1, Max: 1},
		"p/b":   {Count: 1, Total: 3, Max: 3},
	}}
	rows := tr.Rollup()
	self := map[string]float64{}
	for _, r := range rows {
		self[r.Name] = r.SelfMS
	}
	if self["p"] != 3 { // 10 - (4 + 3); grandchild x must not double-count
		t.Fatalf("self(p) = %g, want 3", self["p"])
	}
	if self["p/a"] != 3 { // 4 - 1
		t.Fatalf("self(p/a) = %g, want 3", self["p/a"])
	}
	if rows[0].Name != "p" {
		t.Fatalf("rollup not sorted by total: %+v", rows)
	}
}
