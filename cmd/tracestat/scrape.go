package main

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"tsteiner/internal/obs/export"
)

// scrape validates a live -obs-listen endpoint: wait for /healthz to
// answer (the target run may still be starting), then fetch /metrics and
// run the exposition through the export grammar checker. Prints one
// summary line on success so shell gates can grep it.
func scrape(w io.Writer, base string, retries, waitMS int) error {
	base = strings.TrimRight(base, "/")
	if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
		base = "http://" + base
	}
	client := &http.Client{Timeout: 5 * time.Second}

	var lastErr error
	for i := 0; i < retries; i++ {
		if i > 0 {
			time.Sleep(time.Duration(waitMS) * time.Millisecond)
		}
		body, err := get(client, base+"/healthz")
		if err != nil {
			lastErr = err
			continue
		}
		if strings.TrimSpace(body) != "ok" {
			return fmt.Errorf("scrape: %s/healthz answered %q, want \"ok\"", base, strings.TrimSpace(body))
		}
		lastErr = nil
		break
	}
	if lastErr != nil {
		return fmt.Errorf("scrape: %s/healthz unreachable after %d attempts: %w", base, retries, lastErr)
	}

	metrics, err := get(client, base+"/metrics")
	if err != nil {
		return fmt.Errorf("scrape: %w", err)
	}
	samples, err := export.ValidateText(strings.NewReader(metrics))
	if err != nil {
		return fmt.Errorf("scrape: %s/metrics: %w", base, err)
	}
	fmt.Fprintf(w, "scrape ok: %d samples from %s/metrics\n", samples, base)
	return nil
}

func get(client *http.Client, url string) (string, error) {
	resp, err := client.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("%s: HTTP %d", url, resp.StatusCode)
	}
	return string(body), nil
}
