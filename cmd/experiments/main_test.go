package main

import (
	"strings"
	"testing"

	"tsteiner/internal/check"
)

// TestSmoke builds the experiment driver and regenerates one table on
// one benchmark at miniature scale.
func TestSmoke(t *testing.T) {
	bin := check.GoBuild(t, "tsteiner/cmd/experiments")
	dir := t.TempDir()

	help := check.RunOK(t, dir, bin, "-h")
	if !strings.Contains(help, "-table") {
		t.Fatalf("help output lacks flag listing:\n%s", help)
	}

	out := check.RunMain(t, dir, main,
		"-table", "1", "-designs", "spm", "-scale", "0.1",
		"-epochs", "2", "-iters", "2", "-q")
	if !strings.Contains(out, "spm") {
		t.Fatalf("table output lacks the requested benchmark:\n%s", out)
	}

	check.RunFail(t, dir, bin, "-table", "not-a-number")
}
