package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tsteiner/internal/check"
)

// TestCornerStudy regenerates the multi-corner sign-off table on one
// miniature benchmark, with the -out and -model side outputs exercised.
func TestCornerStudy(t *testing.T) {
	dir := t.TempDir()
	outFile := filepath.Join(dir, "results.txt")
	modelFile := filepath.Join(dir, "model.json")
	out := check.RunMain(t, dir, main,
		"-corners", "-designs", "spm", "-scale", "0.1",
		"-epochs", "2", "-iters", "2", "-q",
		"-out", outFile, "-model", modelFile)
	for _, want := range []string{"Multi-corner sign-off", "fast", "typical", "slow"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output lacks %q:\n%s", want, out)
		}
	}
	persisted, err := os.ReadFile(outFile)
	if err != nil || !strings.Contains(string(persisted), "Multi-corner sign-off") {
		t.Fatalf("-out file missing the table: %v", err)
	}
	if fi, err := os.Stat(modelFile); err != nil || fi.Size() == 0 {
		t.Fatalf("-model file not written: %v", err)
	}
}

// TestCornerStudySkipsWithoutSmallDesigns: the study runs on the
// small/medium set only; restricting -designs to a large benchmark
// must skip it cleanly instead of paying for a full sign-off.
func TestCornerStudySkipsWithoutSmallDesigns(t *testing.T) {
	dir := t.TempDir()
	out := check.RunMain(t, dir, main,
		"-corners", "-designs", "aes_cipher", "-scale", "0.1", "-q")
	if !strings.Contains(out, "corner study skipped") {
		t.Fatalf("study not skipped for large-only -designs:\n%s", out)
	}
}

// TestFiguresAndAblations covers the remaining single-selection paths:
// both figures and the ablation sweep at miniature scale.
func TestFiguresAndAblations(t *testing.T) {
	dir := t.TempDir()
	out := check.RunMain(t, dir, main,
		"-figure", "2", "-designs", "spm", "-scale", "0.1",
		"-trials", "2", "-epochs", "2", "-iters", "2", "-q")
	if !strings.Contains(out, "FIGURE 2") || !strings.Contains(out, "trials") {
		t.Fatalf("figure 2 output lacks the histogram:\n%s", out)
	}
	out = check.RunMain(t, dir, main,
		"-figure", "5", "-designs", "spm", "-scale", "0.1",
		"-epochs", "2", "-iters", "2", "-q")
	if !strings.Contains(out, "FIGURE 5") {
		t.Fatalf("figure 5 output lacks the figure:\n%s", out)
	}
	out = check.RunMain(t, dir, main,
		"-ablations", "-designs", "spm", "-scale", "0.1",
		"-epochs", "2", "-iters", "2", "-q")
	if !strings.Contains(out, "spm") {
		t.Fatalf("ablation output lacks the benchmark:\n%s", out)
	}
}
