// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-scale 1.0] [-designs a,b,c] [-out results.txt]
//	            [-table 1|2|3|4] [-figure 2|5] [-ablations] [-corners] [-all]
//	            [-trials 10] [-epochs 150] [-model model.json] [-workers N]
//	            [-obs-out trace.ndjson] [-cpuprofile cpu.out] [-memprofile mem.out]
//	            [-checkpoint-dir dir] [-resume] [-deadline 30m]
//
// Without -table/-figure/-ablations, -all is assumed. Results are written
// to stdout and, when -out is given, to the file as well.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"

	"tsteiner/internal/exp"
	"tsteiner/internal/guard"
	"tsteiner/internal/lib"
	"tsteiner/internal/obs"
)

func main() {
	var (
		scale     = flag.Float64("scale", 1.0, "benchmark scale factor (1.0 = paper sizes)")
		designs   = flag.String("designs", "", "comma-separated benchmark subset (default: all ten)")
		outPath   = flag.String("out", "", "also write results to this file")
		table     = flag.Int("table", 0, "regenerate one table (1-4)")
		figure    = flag.Int("figure", 0, "regenerate one figure (2 or 5)")
		ablations = flag.Bool("ablations", false, "run refinement ablations")
		studies   = flag.Bool("studies", false, "run the consistency and prior-work (PD) studies")
		cornerTab = flag.Bool("corners", false, "run the multi-corner sign-off study (fast/typical/slow matrix)")
		all       = flag.Bool("all", false, "run every table, figure, the ablations and the studies")
		trials    = flag.Int("trials", 10, "random-move trials per design (figures)")
		epochs    = flag.Int("epochs", 0, "override training epochs")
		iters     = flag.Int("iters", 0, "override max refinement iterations N")
		augment   = flag.Int("augment", -1, "override perturbed training variants per design")
		trust     = flag.Float64("trust", 0, "override trust radius (DBU)")
		modelPath = flag.String("model", "", "save the trained evaluator to this path")
		quiet     = flag.Bool("q", false, "suppress progress logging")
	)
	shared := obs.RegisterFlags(flag.CommandLine)
	flag.Parse()
	sink, closeObs, err := shared.Setup(nil)
	if err != nil {
		log.Fatal(err)
	}
	defer closeObs()

	cfg := exp.Default()
	cfg.Scale = *scale
	cfg.Workers = shared.Workers
	cfg.Obs = sink

	manifest := shared.Manifest("experiments", flag.CommandLine)
	manifest.Seed = cfg.Seed
	manifest.Lanes = cfg.Refine.CandidateLanes
	manifest.LibFingerprint = lib.Default().Fingerprint()
	manifest.Emit(sink)
	if shared.Out != "" {
		if err := manifest.WriteNextTo(shared.Out); err != nil {
			log.Fatal(err)
		}
	}
	if shared.Deadline > 0 {
		budget := &guard.Budget{Wall: shared.Deadline}
		budget.Start()
		cfg.Flow.Budget = budget
		cfg.Train.Budget = budget
		cfg.Refine.Budget = budget
	}
	if shared.CheckpointDir != "" {
		if err := os.MkdirAll(shared.CheckpointDir, 0o755); err != nil {
			log.Fatal(err)
		}
		if err := manifest.WriteFile(filepath.Join(shared.CheckpointDir, "manifest.json")); err != nil {
			log.Fatal(err)
		}
		cfg.CheckpointDir = shared.CheckpointDir
		cfg.Resume = shared.Resume
	}
	if *designs != "" {
		cfg.Designs = strings.Split(*designs, ",")
	}
	cfg.RandomTrials = *trials
	if *epochs > 0 {
		cfg.Train.Epochs = *epochs
	}
	if *iters > 0 {
		cfg.Refine.N = *iters
	}
	if *augment >= 0 {
		cfg.AugmentVariants = *augment
	}
	if *trust > 0 {
		cfg.Refine.TrustRadiusDBU = *trust
	}
	if !*quiet {
		cfg.Log = func(format string, args ...any) {
			log.Printf(format, args...)
		}
	}

	suite, err := exp.NewSuite(cfg)
	if err != nil {
		log.Fatal(err)
	}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		out = io.MultiWriter(os.Stdout, f)
		if err := manifest.WriteNextTo(*outPath); err != nil {
			log.Fatal(err)
		}
	}

	runAll := *all || (*table == 0 && *figure == 0 && !*ablations && !*studies && !*cornerTab)
	emit := func(name string, run func(io.Writer) error) {
		fmt.Fprintf(out, "\n")
		if err := run(out); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
	}

	if runAll || *table == 1 {
		emit("table 1", func(w io.Writer) error {
			r, err := suite.Table1()
			if err != nil {
				return err
			}
			return r.Render(w)
		})
	}
	if runAll || *table == 2 {
		emit("table 2", func(w io.Writer) error {
			r, err := suite.Table2()
			if err != nil {
				return err
			}
			return r.Render(w)
		})
	}
	if runAll || *table == 3 {
		emit("table 3", func(w io.Writer) error {
			r, err := suite.Table3()
			if err != nil {
				return err
			}
			return r.Render(w)
		})
	}
	if runAll || *table == 4 {
		emit("table 4", func(w io.Writer) error {
			r, err := suite.Table4()
			if err != nil {
				return err
			}
			return r.Render(w)
		})
	}
	if runAll || *figure == 2 {
		emit("figure 2", func(w io.Writer) error {
			r, err := suite.Figure2()
			if err != nil {
				return err
			}
			return r.Render(w)
		})
	}
	if runAll || *figure == 5 {
		emit("figure 5", func(w io.Writer) error {
			r, err := suite.Figure5()
			if err != nil {
				return err
			}
			return r.Render(w)
		})
	}
	if runAll || *ablations {
		emit("ablations", func(w io.Writer) error {
			// Ablate on small/medium designs to keep the sweep cheap.
			names := []string{"spm", "cic_decimator", "APU"}
			if len(cfg.Designs) > 0 {
				names = intersect(names, cfg.Designs)
			}
			if len(names) == 0 {
				fmt.Fprintln(w, "ablations skipped: no small designs in -designs")
				return nil
			}
			r, err := suite.Ablations(names)
			if err != nil {
				return err
			}
			return r.Render(w)
		})
	}

	if runAll || *cornerTab {
		emit("corner matrix", func(w io.Writer) error {
			// The derated sign-off doubles the routing work per design, so
			// the study runs on the same small/medium set as the ablations.
			names := []string{"spm", "cic_decimator", "APU"}
			if len(cfg.Designs) > 0 {
				names = intersect(names, cfg.Designs)
			}
			if len(names) == 0 {
				fmt.Fprintln(w, "corner study skipped: no small designs in -designs")
				return nil
			}
			r, err := suite.CornerMatrixStudy(names)
			if err != nil {
				return err
			}
			return r.Render(w)
		})
	}

	if runAll || *studies {
		names := []string{"spm", "cic_decimator", "APU"}
		if len(cfg.Designs) > 0 {
			names = intersect(names, cfg.Designs)
		}
		if len(names) > 0 {
			emit("consistency study", func(w io.Writer) error {
				r, err := suite.Consistency(names, 6)
				if err != nil {
					return err
				}
				return r.Render(w)
			})
			emit("pd comparison", func(w io.Writer) error {
				r, err := suite.PDComparison(names, []float64{0.3, 0.7})
				if err != nil {
					return err
				}
				return r.Render(w)
			})
			emit("timing-driven routing", func(w io.Writer) error {
				r, err := suite.TimingDrivenRoute(names)
				if err != nil {
					return err
				}
				return r.Render(w)
			})
			emit("steiner awareness", func(w io.Writer) error {
				r, err := suite.SteinerAwareness()
				if err != nil {
					return err
				}
				return r.Render(w)
			})
		}
	}

	if *modelPath != "" {
		m, err := suite.Model()
		if err != nil {
			log.Fatal(err)
		}
		if err := m.Save(*modelPath); err != nil {
			log.Fatal(err)
		}
		manifest.ModelHash = m.Hash()
		if err := manifest.WriteNextTo(*modelPath); err != nil {
			log.Fatal(err)
		}
		log.Printf("model saved to %s", *modelPath)
	}
}

func intersect(a, b []string) []string {
	set := map[string]bool{}
	for _, x := range b {
		set[x] = true
	}
	var out []string
	for _, x := range a {
		if set[x] {
			out = append(out, x)
		}
	}
	return out
}
