package tsteiner

// BenchmarkParallelSpeedup measures the wall-clock effect of the parallel
// execution layer (internal/par) on the two hottest fan-out loops — the
// Fig. 2 random-trial sign-off loop and the per-design baseline sample
// build — at 1 vs 4 workers, and records the result in BENCH_parallel.json
// next to the recorded experiment outputs. The outputs of both loops are
// byte-identical at every worker count (asserted by TestParallelDeterminism
// in internal/exp); only the wall clock changes, and only when the host
// actually has more than one CPU.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"tsteiner/internal/flow"
	"tsteiner/internal/par"
	"tsteiner/internal/rsmt"
	"tsteiner/internal/train"
)

type parallelBenchEntry struct {
	Name        string  `json:"name"`
	Workers1Sec float64 `json:"workers1Sec"`
	Workers4Sec float64 `json:"workers4Sec"`
	Speedup     float64 `json:"speedup"`
}

type parallelBenchFile struct {
	Recorded   string               `json:"recorded"`
	NumCPU     int                  `json:"numCPU"`
	GOMAXPROCS int                  `json:"gomaxprocs"`
	Note       string               `json:"note"`
	Entries    []parallelBenchEntry `json:"entries"`
}

// timeWorkload runs fn once per worker count and returns the two timings.
func timeWorkload(b *testing.B, fn func(workers int) error) (w1, w4 float64) {
	b.Helper()
	for _, w := range []int{1, 4} {
		t0 := time.Now()
		if err := fn(w); err != nil {
			b.Fatal(err)
		}
		sec := time.Since(t0).Seconds()
		if w == 1 {
			w1 = sec
		} else {
			w4 = sec
		}
	}
	return w1, w4
}

func BenchmarkParallelSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out := parallelBenchFile{
			Recorded:   time.Now().UTC().Format(time.RFC3339),
			NumCPU:     runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			Note: "workloads are byte-identical at every worker count; " +
				"speedup requires numCPU > 1 — on a single-CPU host the " +
				"4-worker timing only measures scheduling overhead",
		}

		// Fig. 2 trial loop: k pre-perturbed forests (drawn serially from
		// one seeded stream, like exp.(*Suite).RandomMoves), sign-off per
		// forest fanned out across workers.
		prep, err := flow.PrepareBenchmark("spm", 0.5, flow.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		const trials = 8
		rng := rand.New(rand.NewSource(2023))
		forests := make([]*rsmt.Forest, trials)
		for k := range forests {
			f := prep.Forest.Clone()
			rsmt.Perturb(f, rng, 10, prep.Design.Die)
			forests[k] = f
		}
		w1, w4 := timeWorkload(b, func(workers int) error {
			_, err := par.Map(workers, forests, func(_ int, f *rsmt.Forest) (*flow.Report, error) {
				return flow.Signoff(prep, f)
			})
			return err
		})
		out.Entries = append(out.Entries, parallelBenchEntry{
			Name: "fig2-trial-loop/spm@0.5x8", Workers1Sec: w1, Workers4Sec: w4, Speedup: w1 / w4,
		})
		b.ReportMetric(w1/w4, "fig2Speedup4w")

		// Suite build: per-design baseline flows fanned out across workers
		// (the loop behind exp.(*Suite).BuildSamples).
		designs := []string{"spm", "cic_decimator", "usb_cdc_core", "APU"}
		w1, w4 = timeWorkload(b, func(workers int) error {
			cfg := flow.DefaultConfig()
			cfg.Workers = workers
			_, err := par.Map(workers, designs, func(_ int, name string) (*train.Sample, error) {
				return train.BuildSample(name, benchScale, true, cfg)
			})
			return err
		})
		out.Entries = append(out.Entries, parallelBenchEntry{
			Name: fmt.Sprintf("suite-sample-build/%dx@%.2g", len(designs), benchScale),
			Workers1Sec: w1, Workers4Sec: w4, Speedup: w1 / w4,
		})
		b.ReportMetric(w1/w4, "suiteSpeedup4w")

		// RSMT construction: per-net tree build fan-out.
		w1, w4 = timeWorkload(b, func(workers int) error {
			opt := rsmt.DefaultOptions()
			opt.Workers = workers
			_, err := rsmt.BuildAll(prep.Design, opt)
			return err
		})
		out.Entries = append(out.Entries, parallelBenchEntry{
			Name: "rsmt-buildall/spm@0.5", Workers1Sec: w1, Workers4Sec: w4, Speedup: w1 / w4,
		})

		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile("BENCH_parallel.json", append(data, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
	}
}
