// Package tsteiner reproduces "Concurrent Sign-off Timing Optimization via
// Deep Steiner Points Refinement" (DAC 2023): a learning-assisted
// pre-routing optimizer that relocates Steiner points using gradients from
// a GNN sign-off timing evaluator, together with every substrate the paper
// depends on (benchmark synthesis, placement, Steiner construction, global
// routing, a detailed-routing surrogate, RC extraction, STA, and a
// reverse-mode autodiff engine).
//
// Entry points:
//
//   - cmd/tsteiner       — run the flow on one benchmark with/without refinement
//   - cmd/experiments    — regenerate every table and figure of the paper
//   - examples/          — runnable walkthroughs of the public API
//   - internal/core      — the TSteiner algorithm itself
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for measured
// results against the paper.
package tsteiner
