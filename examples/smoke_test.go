// Package examples_test compiles every example program and executes
// the fast ones end to end, so the documented entry points cannot rot.
package examples_test

import (
	"testing"

	"tsteiner/internal/check"
)

// exampleDirs lists every example; Run marks the ones cheap enough to
// execute in the test suite (the rest are compile-checked only), and
// Short marks the subset that also runs under -short.
var exampleDirs = []struct {
	Name  string
	Run   bool
	Short bool
}{
	{Name: "buffering", Run: true, Short: true},
	{Name: "custom_design", Run: true, Short: true},
	{Name: "mesh_array", Run: true, Short: true},
	{Name: "random_disturbance", Run: true, Short: true},
	{Name: "quickstart", Run: true, Short: true},
	{Name: "gradient_analysis", Run: true, Short: false}, // ~10s of training
	{Name: "train_evaluator", Run: false, Short: false},  // minutes of training
}

func TestExamples(t *testing.T) {
	for _, ex := range exampleDirs {
		t.Run(ex.Name, func(t *testing.T) {
			bin := check.GoBuild(t, "tsteiner/examples/"+ex.Name)
			if !ex.Run {
				return
			}
			if testing.Short() && !ex.Short {
				t.Skip("long example skipped under -short")
			}
			out := check.RunOK(t, t.TempDir(), bin)
			if len(out) == 0 {
				t.Fatal("example produced no output")
			}
		})
	}
}
