// Train the sign-off timing evaluator across several designs and report
// its generalization: R² on designs it saw during training versus designs
// held out entirely — a miniature of the paper's Table III protocol.
package main

import (
	"fmt"
	"log"
	"os"

	"tsteiner/internal/flow"
	"tsteiner/internal/gnn"
	"tsteiner/internal/report"
	"tsteiner/internal/train"
)

func main() {
	// Two training designs, one held-out test design, at reduced scale so
	// the example finishes quickly.
	const scale = 0.5
	specs := []struct {
		name  string
		train bool
	}{
		{"cic_decimator", true},
		{"usb_cdc_core", true},
		{"APU", false}, // never seen during training
	}

	var samples []*train.Sample
	for _, sp := range specs {
		log.Printf("building %s (scale %.1f)", sp.name, scale)
		s, err := train.BuildSample(sp.name, scale, sp.train, flow.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		samples = append(samples, s)
		if sp.train {
			aug, err := train.Augment(s, 2, 10, 11, 1)
			if err != nil {
				log.Fatal(err)
			}
			samples = append(samples, aug...)
		}
	}

	model := gnn.NewModel(gnn.DefaultConfig(), 11)
	log.Printf("training on %d samples", len(samples))
	loss, err := train.Train(model, samples, train.Options{Epochs: 120, LR: 5e-3, Seed: 1,
		Verbose: func(ep int, l float64) {
			if ep%30 == 0 {
				log.Printf("epoch %3d  loss %.5f", ep, l)
			}
		}})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("final loss %.5f", loss)

	t := report.Table{
		Title:  "evaluator R² per design",
		Header: []string{"design", "split", "arrival-all", "arrival-ends"},
	}
	for _, s := range samples {
		if s.Baseline == nil {
			continue // augmentation variants share the base design
		}
		sc, err := train.Evaluate(model, s)
		if err != nil {
			log.Fatal(err)
		}
		split := "held-out"
		if s.Train {
			split = "train"
		}
		t.AddRow(s.Name, split, fmt.Sprintf("%.4f", sc.ArrivalAll), fmt.Sprintf("%.4f", sc.ArrivalEnds))
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
