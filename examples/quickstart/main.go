// Quickstart: run the complete TSteiner pipeline on the smallest
// benchmark — baseline flow, evaluator training, Steiner refinement, and
// the final sign-off comparison — in under a minute.
package main

import (
	"fmt"
	"log"

	"tsteiner/internal/core"
	"tsteiner/internal/flow"
	"tsteiner/internal/gnn"
	"tsteiner/internal/train"
)

func main() {
	// 1. Baseline: generate + place the design, build Steiner trees, and
	//    run global routing → detailed routing → RC extraction → STA.
	sample, err := train.BuildSample("spm", 1.0, true, flow.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline sign-off: WNS %.3f ns, TNS %.1f ns, %d violating endpoints\n",
		sample.Baseline.WNS, sample.Baseline.TNS, sample.Baseline.Vios)

	// 2. Train the timing evaluator on this design plus two randomly
	//    perturbed variants (so it learns how timing responds to Steiner
	//    movement).
	samples := []*train.Sample{sample}
	aug, err := train.Augment(sample, 2, 10, 7, 1)
	if err != nil {
		log.Fatal(err)
	}
	samples = append(samples, aug...)
	model := gnn.NewModel(gnn.DefaultConfig(), 7)
	if _, err := train.Train(model, samples, train.Options{Epochs: 120, LR: 1e-2, Seed: 1}); err != nil {
		log.Fatal(err)
	}
	scores, err := train.Evaluate(model, sample)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("evaluator R²: %.3f (all pins), %.3f (endpoints)\n",
		scores.ArrivalAll, scores.ArrivalEnds)

	// 3. Refine Steiner points with Algorithm 1.
	refiner, err := core.NewRefiner(model, sample.Batch, sample.Prepared, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	result, err := refiner.Refine()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("refinement: %d iterations, evaluator TNS %.1f → %.1f\n",
		result.Iterations, result.InitTNS, result.BestTNS)

	// 4. Sign off the refined trees through the same routing flow.
	refined, err := flow.Signoff(sample.Prepared, result.Forest)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("refined sign-off:  WNS %.3f ns, TNS %.1f ns, %d violating endpoints\n",
		refined.WNS, refined.TNS, refined.Vios)
	fmt.Printf("TNS ratio vs baseline: %.3f (lower is better)\n",
		refined.TNS/sample.Baseline.TNS)
}
