// Run the structured (systolic-array) benchmark family through the flow:
// mesh designs have short, regular, register-bounded nets — the opposite
// stress profile of the random-cone OpenCores-style benchmarks — and make
// a good smoke test for routing and timing on locality-heavy layouts.
package main

import (
	"fmt"
	"log"

	"tsteiner/internal/flow"
	"tsteiner/internal/lib"
	"tsteiner/internal/synth"
)

func main() {
	l := lib.Default()
	spec := synth.MeshSpec{Name: "mesh12x12", Rows: 12, Cols: 12, ClockNS: 0.55}
	d, err := synth.GenerateMesh(spec, l)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d cells, %d nets, %d endpoints\n",
		d.Name, len(d.Cells), len(d.Nets), len(d.Endpoints()))

	prepared, err := flow.Prepare(d, l, flow.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("steiner: %d nodes over %d trees, total WL %.0f DBU\n",
		prepared.Forest.Stats().SteinerNodes, len(prepared.Forest.Trees),
		prepared.Forest.TotalWirelengthF())

	rep, err := flow.Signoff(prepared, prepared.Forest)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sign-off: WNS %.3f ns, TNS %.2f ns, %d violations\n", rep.WNS, rep.TNS, rep.Vios)
	fmt.Printf("routing:  WL %d DBU, %d vias, overflow %d, %d DRVs\n",
		rep.WirelengthDBU, rep.Vias, rep.Overflow, rep.DRVs)
	fmt.Printf("hold:     WHS %.3f ns (%d violations), %d max-transition violations\n",
		rep.WHS, rep.HoldVios, rep.SlewVios)
}
