// Inspect the sign-off timing gradients TSteiner steers by: train an
// evaluator, back-propagate the smoothed WNS/TNS penalty, rank Steiner
// points by gradient magnitude, and render the layout with the most
// timing-critical nets highlighted.
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"sort"

	"tsteiner/internal/core"
	"tsteiner/internal/flow"
	"tsteiner/internal/gnn"
	"tsteiner/internal/netlist"
	"tsteiner/internal/train"
	"tsteiner/internal/viz"
)

func main() {
	sample, err := train.BuildSample("APU", 0.5, true, flow.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	samples := []*train.Sample{sample}
	aug, err := train.Augment(sample, 2, 10, 3, 1)
	if err != nil {
		log.Fatal(err)
	}
	samples = append(samples, aug...)
	model := gnn.NewModel(gnn.DefaultConfig(), 3)
	log.Print("training evaluator...")
	if _, err := train.Train(model, samples, train.Options{Epochs: 120, LR: 5e-3, Seed: 1}); err != nil {
		log.Fatal(err)
	}

	refiner, err := core.NewRefiner(model, sample.Batch, sample.Prepared, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	gx, gy, err := refiner.Gradients(sample.Prepared.Forest)
	if err != nil {
		log.Fatal(err)
	}

	// Rank Steiner points by gradient magnitude.
	type ranked struct {
		idx int
		mag float64
	}
	var rs []ranked
	for i := range gx {
		rs = append(rs, ranked{i, math.Hypot(gx[i], gy[i])})
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].mag > rs[j].mag })

	_, _, index := sample.Prepared.Forest.SteinerPositions()
	highlight := map[netlist.NetID]bool{}
	fmt.Println("most timing-critical Steiner points (by |∇P|):")
	top := 10
	if top > len(rs) {
		top = len(rs)
	}
	for k := 0; k < top; k++ {
		r := rs[k]
		ref := index[r.idx]
		tree := sample.Prepared.Forest.Trees[ref.Tree]
		net := sample.Prepared.Design.Net(tree.Net)
		pos := tree.Nodes[ref.Node].Pos
		fmt.Printf("  #%2d net %-8s at (%6.1f, %6.1f)  |∇P| = %.4g\n",
			k+1, net.Name, pos.X, pos.Y, r.mag)
		highlight[tree.Net] = true
	}

	opt := viz.DefaultLayoutOptions()
	opt.Highlight = highlight
	opt.MaxNets = 800
	f, err := os.Create("gradient_layout.svg")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := viz.WriteLayoutSVG(f, sample.Prepared.Design, sample.Prepared.Forest, opt); err != nil {
		log.Fatal(err)
	}
	fmt.Println("layout with critical nets highlighted: gradient_layout.svg")
}
