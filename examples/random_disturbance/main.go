// Reproduce the paper's Fig. 2 observation on one design: randomly
// disturbing Steiner point positions measurably moves sign-off TNS, but
// with high variance and an expected ratio near 1.0 — the motivation for
// gradient-guided refinement instead of random search.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	"tsteiner/internal/flow"
	"tsteiner/internal/metrics"
	"tsteiner/internal/report"
	"tsteiner/internal/rsmt"
	"tsteiner/internal/train"
)

func main() {
	const (
		design  = "usb_cdc_core"
		trials  = 12
		maxDist = 12 // DBU of random displacement per axis
	)

	log.Printf("building baseline flow for %s", design)
	sample, err := train.BuildSample(design, 1.0, true, flow.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline TNS: %.1f ns over %d violations\n",
		sample.Baseline.TNS, sample.Baseline.Vios)

	rng := rand.New(rand.NewSource(99))
	var ratios []float64
	for i := 0; i < trials; i++ {
		forest := sample.Prepared.Forest.Clone()
		rsmt.Perturb(forest, rng, maxDist, sample.Prepared.Design.Die)
		rep, err := flow.Signoff(sample.Prepared, forest)
		if err != nil {
			log.Fatal(err)
		}
		ratio := rep.TNS / sample.Baseline.TNS
		ratios = append(ratios, ratio)
		fmt.Printf("trial %2d: TNS %.1f ns (ratio %.4f)\n", i+1, rep.TNS, ratio)
	}

	lo, hi := 0.95, 1.05
	for _, r := range ratios {
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
	}
	counts := metrics.Histogram(ratios, lo, hi, 8)
	if err := report.Histogram(os.Stdout, "\nTNS ratio distribution (cf. paper Fig. 2)", lo, hi, counts); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mean ratio %.4f — random movement visibly moves sign-off TNS\n", metrics.Mean(ratios))
	fmt.Println("but does not reliably improve it, which is why TSteiner derives")
	fmt.Println("a gradient to guide the moves instead.")
}
