// Build a design by hand with the netlist.Builder API — a small registered
// accumulate pipeline — then push it through placement, Steiner
// construction, routing and sign-off STA, and print the critical path.
// This is the path a downstream user takes to analyze their own netlist
// instead of the bundled synthetic benchmarks.
package main

import (
	"fmt"
	"log"

	"tsteiner/internal/flow"
	"tsteiner/internal/lib"
	"tsteiner/internal/netlist"
	"tsteiner/internal/rc"
	"tsteiner/internal/sta"
)

func main() {
	l := lib.Default()
	b := netlist.NewBuilder("pipeline8", l)
	b.SetClockPeriod(0.9)

	const bits = 8
	d := b.Design()

	// Ports and cells, stage by stage: s_i = DFF(XOR(a_i, b_i) AND prev).
	a := make([]netlist.PinID, bits)
	bIn := make([]netlist.PinID, bits)
	sOut := make([]netlist.PinID, bits)
	xor := make([]netlist.CellID, bits)
	and := make([]netlist.CellID, bits)
	dff := make([]netlist.CellID, bits)
	for i := 0; i < bits; i++ {
		a[i] = b.AddPI(fmt.Sprintf("a%d", i))
		bIn[i] = b.AddPI(fmt.Sprintf("b%d", i))
		sOut[i] = b.AddPO(fmt.Sprintf("s%d", i), 0.01)
		xor[i] = b.AddCell(fmt.Sprintf("x%d", i), "XOR2_X1")
		and[i] = b.AddCell(fmt.Sprintf("g%d", i), "AND2_X1")
		dff[i] = b.AddCell(fmt.Sprintf("r%d", i), "DFF_X1")
	}
	cin := b.AddPI("cin")

	// Wiring. The chain input of stage i>0 is the previous register's Q,
	// so every inter-stage path is register-bounded (no loops).
	for i := 0; i < bits; i++ {
		b.Connect(a[i], d.Cell(xor[i]).InputPins()[0])
		b.Connect(bIn[i], d.Cell(xor[i]).InputPins()[1])
		b.Connect(d.Cell(xor[i]).OutputPin(), d.Cell(and[i]).InputPins()[0])
		b.Connect(d.Cell(and[i]).OutputPin(), d.Cell(dff[i]).InputPins()[0])
		sinks := []netlist.PinID{sOut[i]}
		if i+1 < bits {
			sinks = append(sinks, d.Cell(and[i+1]).InputPins()[1])
		}
		b.Connect(d.Cell(dff[i]).OutputPin(), sinks...)
	}
	b.Connect(cin, d.Cell(and[0]).InputPins()[1])

	design, err := b.Finish()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built %s: %d cells, %d nets, %d pins, %d endpoints\n",
		design.Name, len(design.Cells), len(design.Nets), design.NumPins(),
		len(design.Endpoints()))

	// Physical flow: place, Steinerize, route, extract, analyze.
	prepared, err := flow.Prepare(design, l, flow.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	rep, err := flow.Signoff(prepared, prepared.Forest)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sign-off: WNS %.3f ns, TNS %.2f ns, %d violations, WL %d DBU, %d vias\n",
		rep.WNS, rep.TNS, rep.Vios, rep.WirelengthDBU, rep.Vias)

	// Pre-routing early estimate for comparison, plus the critical path.
	rcs, err := rc.ExtractFromTrees(design, prepared.Forest, l)
	if err != nil {
		log.Fatal(err)
	}
	timing, err := sta.Run(design, rcs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pre-routing estimate: WNS %.3f ns, TNS %.2f ns\n", timing.WNS, timing.TNS)
	fmt.Println("critical path (pre-routing view):")
	for _, pin := range timing.CriticalPath(design) {
		fmt.Printf("  %-12s arrival %.3f ns\n", design.Pin(pin).Name, timing.Arrival[pin])
	}
}
