// Demonstrate fanout-driven buffer insertion: synthetic designs carry
// reset/enable-style hub nets with hundreds of sinks, whose load dominates
// the timing profile. Buffering them through balanced fanout trees
// shortens the worst paths markedly — and leaves smaller, better-shaped
// Steiner trees for TSteiner to refine afterwards.
package main

import (
	"fmt"
	"log"

	"tsteiner/internal/bufins"
	"tsteiner/internal/lib"
	"tsteiner/internal/netlist"
	"tsteiner/internal/place"
	"tsteiner/internal/rc"
	"tsteiner/internal/rsmt"
	"tsteiner/internal/sta"
	"tsteiner/internal/synth"
)

func main() {
	l := lib.Default()
	spec, err := synth.BenchmarkByName("APU")
	if err != nil {
		log.Fatal(err)
	}
	design, err := synth.Generate(spec, l)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := place.Place(design, place.DefaultOptions()); err != nil {
		log.Fatal(err)
	}

	maxFan := 0
	for ni := range design.Nets {
		if f := len(design.Nets[ni].Sinks); f > maxFan {
			maxFan = f
		}
	}
	fmt.Printf("before: %d cells, max net fanout %d\n", len(design.Cells), maxFan)
	w0, t0 := quickTiming(design)
	fmt.Printf("before: WNS %.3f ns, TNS %.1f ns (pre-routing estimate)\n", w0, t0)

	buffered, stats, err := bufins.Insert(design, bufins.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("buffered %d nets with %d buffers (tree depth ≤ %d)\n",
		stats.NetsBuffered, stats.BuffersInserted, stats.TreeDepthMax)

	maxFan = 0
	for ni := range buffered.Nets {
		if f := len(buffered.Nets[ni].Sinks); f > maxFan {
			maxFan = f
		}
	}
	w1, t1 := quickTiming(buffered)
	fmt.Printf("after:  %d cells, max net fanout %d\n", len(buffered.Cells), maxFan)
	fmt.Printf("after:  WNS %.3f ns, TNS %.1f ns\n", w1, t1)
	if t1 > t0 {
		fmt.Printf("TNS improved by %.1f%%\n", 100*(1-t1/t0))
	}
}

// quickTiming runs the pre-routing (tree-geometry) STA.
func quickTiming(d *netlist.Design) (wns, tns float64) {
	f, err := rsmt.BuildAll(d, rsmt.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	rcs, err := rc.ExtractFromTrees(d, f, d.Lib)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sta.Run(d, rcs)
	if err != nil {
		log.Fatal(err)
	}
	return res.WNS, res.TNS
}
