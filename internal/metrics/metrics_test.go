package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestR2Perfect(t *testing.T) {
	g := []float64{1, 2, 3, 4}
	r, err := R2(g, g)
	if err != nil || math.Abs(r-1) > 1e-12 {
		t.Fatalf("R2(identity)=%g err=%v", r, err)
	}
}

func TestR2MeanPredictorIsZero(t *testing.T) {
	g := []float64{1, 2, 3, 4}
	y := []float64{2.5, 2.5, 2.5, 2.5}
	r, err := R2(g, y)
	if err != nil || math.Abs(r) > 1e-12 {
		t.Fatalf("R2(mean)=%g err=%v", r, err)
	}
}

func TestR2WorseThanMeanNegative(t *testing.T) {
	g := []float64{1, 2, 3, 4}
	y := []float64{4, 3, 2, 1}
	r, err := R2(g, y)
	if err != nil || r >= 0 {
		t.Fatalf("anti-correlated R2=%g", r)
	}
}

func TestR2AtMostOne(t *testing.T) {
	f := func(pairs []struct{ G, Y int16 }) bool {
		if len(pairs) < 2 {
			return true
		}
		var g, y []float64
		for _, p := range pairs {
			g = append(g, float64(p.G))
			y = append(y, float64(p.Y))
		}
		r, err := R2(g, y)
		if err != nil {
			return false
		}
		return r <= 1+1e-9 || math.IsInf(r, -1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestR2Errors(t *testing.T) {
	if _, err := R2([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := R2(nil, nil); err == nil {
		t.Fatal("empty input accepted")
	}
	// Constant truth, exact prediction.
	r, err := R2([]float64{2, 2}, []float64{2, 2})
	if err != nil || r != 1 {
		t.Fatalf("constant exact R2=%g", r)
	}
	// Constant truth, wrong prediction.
	r, _ = R2([]float64{2, 2}, []float64{3, 3})
	if !math.IsInf(r, -1) {
		t.Fatalf("constant wrong R2=%g want -Inf", r)
	}
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	if r, err := Pearson(x, x); err != nil || math.Abs(r-1) > 1e-12 {
		t.Fatalf("self correlation %g err=%v", r, err)
	}
	y := []float64{4, 3, 2, 1}
	if r, _ := Pearson(x, y); math.Abs(r+1) > 1e-12 {
		t.Fatalf("anti correlation %g", r)
	}
	flat := []float64{5, 5, 5, 5}
	if r, err := Pearson(x, flat); err != nil || r != 0 {
		t.Fatalf("constant series correlation %g err=%v", r, err)
	}
	if _, err := Pearson(x, x[:2]); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Pearson([]float64{1}, []float64{2}); err == nil {
		t.Fatal("single point accepted")
	}
	// Scale/shift invariance.
	var x2, y2 []float64
	for i := range x {
		x2 = append(x2, 3*x[i]+7)
		y2 = append(y2, -2*x[i]+1)
	}
	if r, _ := Pearson(x2, y2); math.Abs(r+1) > 1e-12 {
		t.Fatalf("affine anti correlation %g", r)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(3, 2) != 1.5 {
		t.Fatal("ratio broken")
	}
	if Ratio(5, 0) != 1 {
		t.Fatal("zero base must yield 1")
	}
}

func TestMeanQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 5, 4}
	if Mean(xs) != 3 {
		t.Fatalf("mean=%g", Mean(xs))
	}
	if Mean(nil) != 0 {
		t.Fatal("empty mean")
	}
	if Quantile(xs, 0) != 1 || Quantile(xs, 1) != 5 {
		t.Fatal("quantile extremes broken")
	}
	if Quantile(xs, 0.5) != 3 {
		t.Fatalf("median=%g", Quantile(xs, 0.5))
	}
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile")
	}
	// Original slice untouched.
	if xs[0] != 3 {
		t.Fatal("Quantile mutated input")
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0.1, 0.2, 0.9, 1.5, -0.5}
	h := Histogram(xs, 0, 1, 2)
	// -0.5 and 1.5 clamp into the edge bins.
	if h[0] != 3 || h[1] != 2 {
		t.Fatalf("histogram=%v", h)
	}
	if got := Histogram(xs, 1, 0, 3); got[0] != 0 {
		t.Fatal("inverted range should count nothing")
	}
	if got := Histogram(xs, 0, 1, 0); len(got) != 0 {
		t.Fatal("zero bins should be empty")
	}
	total := 0
	for _, c := range h {
		total += c
	}
	if total != len(xs) {
		t.Fatal("histogram loses samples")
	}
}
