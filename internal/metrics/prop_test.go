package metrics_test

import (
	"fmt"
	"math"
	"testing"

	"tsteiner/internal/check"
	"tsteiner/internal/metrics"
)

// TestPropMetricsIdentities pins the closed-form identities: a perfect
// prediction scores R²=1, affine relations score Pearson ±1, the mean
// stays inside [min, max], and Ratio(v,v)=1.
func TestPropMetricsIdentities(t *testing.T) {
	g := check.SliceOf(3, 40, check.Float(-50, 50))
	check.Run(t, g, func(xs []float64) error {
		if r2, err := metrics.R2(xs, xs); err != nil {
			return err
		} else if math.Abs(r2-1) > 1e-12 {
			return fmt.Errorf("R2(y,y) = %.15g", r2)
		}
		up := make([]float64, len(xs))
		down := make([]float64, len(xs))
		for i, v := range xs {
			up[i] = 2*v + 3
			down[i] = -v + 1
		}
		if degenerate(xs) {
			return nil // constant vector: correlation undefined
		}
		if p, err := metrics.Pearson(xs, up); err != nil {
			return err
		} else if math.Abs(p-1) > 1e-9 {
			return fmt.Errorf("Pearson(x, 2x+3) = %.12g", p)
		}
		if p, err := metrics.Pearson(xs, down); err != nil {
			return err
		} else if math.Abs(p+1) > 1e-9 {
			return fmt.Errorf("Pearson(x, -x+1) = %.12g", p)
		}
		lo, hi := xs[0], xs[0]
		for _, v := range xs {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		if m := metrics.Mean(xs); m < lo-1e-12 || m > hi+1e-12 {
			return fmt.Errorf("mean %.12g outside [%.12g, %.12g]", m, lo, hi)
		}
		if r := metrics.Ratio(xs[0], xs[0]); xs[0] != 0 && math.Abs(r-1) > 1e-12 {
			return fmt.Errorf("Ratio(v,v) = %.15g", r)
		}
		return nil
	})
}

func degenerate(xs []float64) bool {
	for _, v := range xs[1:] {
		if v != xs[0] {
			return false
		}
	}
	return true
}

// TestPropQuantileHistogram checks the order statistics: quantiles are
// monotone in q and bounded by the extremes, and every sample lands in
// exactly one histogram bin.
func TestPropQuantileHistogram(t *testing.T) {
	g := check.SliceOf(1, 60, check.Float(-20, 20))
	check.Run(t, g, func(xs []float64) error {
		lo, hi := xs[0], xs[0]
		for _, v := range xs {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		prev := math.Inf(-1)
		for _, q := range []float64{0, 0.25, 0.5, 0.9, 1} {
			v := metrics.Quantile(xs, q)
			if v < prev {
				return fmt.Errorf("quantile not monotone: q=%.2f gave %.12g after %.12g", q, v, prev)
			}
			if v < lo || v > hi {
				return fmt.Errorf("quantile %.2f = %.12g outside [%.12g, %.12g]", q, v, lo, hi)
			}
			prev = v
		}
		if metrics.Quantile(xs, 0) != lo || metrics.Quantile(xs, 1) != hi {
			return fmt.Errorf("extreme quantiles %g/%g != min/max %g/%g",
				metrics.Quantile(xs, 0), metrics.Quantile(xs, 1), lo, hi)
		}
		counts := metrics.Histogram(xs, -20, 20, 8)
		total := 0
		for _, c := range counts {
			if c < 0 {
				return fmt.Errorf("negative bin count %d", c)
			}
			total += c
		}
		if total != len(xs) {
			return fmt.Errorf("histogram mass %d != %d samples", total, len(xs))
		}
		return nil
	})
}
