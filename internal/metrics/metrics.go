// Package metrics provides the statistical helpers the experiments report:
// the R² coefficient of determination (paper Eq. 10), ratio aggregation for
// the normalized table rows, and simple distribution summaries for the
// random-disturbance figure.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// R2 computes the coefficient of determination between ground truth g and
// predictions y (paper Eq. 10). Returns an error for mismatched or empty
// inputs; a constant ground truth yields R² = −Inf unless predictions are
// exact, mirroring the standard definition.
func R2(g, y []float64) (float64, error) {
	if len(g) != len(y) {
		return 0, fmt.Errorf("metrics: %d truths vs %d predictions", len(g), len(y))
	}
	if len(g) == 0 {
		return 0, fmt.Errorf("metrics: empty input")
	}
	var mean float64
	for _, v := range g {
		mean += v
	}
	mean /= float64(len(g))
	var ssRes, ssTot float64
	for i := range g {
		d := g[i] - y[i]
		ssRes += d * d
		t := g[i] - mean
		ssTot += t * t
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1, nil
		}
		return math.Inf(-1), nil
	}
	return 1 - ssRes/ssTot, nil
}

// Pearson computes the Pearson correlation coefficient of two equal-length
// series. Returns an error on mismatched/short input; 0 when either series
// is constant.
func Pearson(x, y []float64) (float64, error) {
	if len(x) != len(y) {
		return 0, fmt.Errorf("metrics: %d vs %d points", len(x), len(y))
	}
	if len(x) < 2 {
		return 0, fmt.Errorf("metrics: need at least 2 points")
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx := x[i] - mx
		dy := y[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, nil
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// Ratio returns value/base, guarding the base==0 case with 1 (no change),
// the convention the paper's normalized "Average" rows use.
func Ratio(value, base float64) float64 {
	if base == 0 {
		return 1
	}
	return value / base
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) by nearest-rank on a copy.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	idx := int(q * float64(len(s)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// Histogram buckets xs into n equal-width bins over [lo, hi], the shape
// behind the Fig. 2 distribution plot.
func Histogram(xs []float64, lo, hi float64, n int) []int {
	counts := make([]int, n)
	if n == 0 || hi <= lo {
		return counts
	}
	w := (hi - lo) / float64(n)
	for _, v := range xs {
		b := int((v - lo) / w)
		if b < 0 {
			b = 0
		}
		if b >= n {
			b = n - 1
		}
		counts[b]++
	}
	return counts
}
