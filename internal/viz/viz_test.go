package viz

import (
	"bytes"
	"strings"
	"testing"

	"tsteiner/internal/grid"
	"tsteiner/internal/lib"
	"tsteiner/internal/netlist"
	"tsteiner/internal/place"
	"tsteiner/internal/rsmt"
	"tsteiner/internal/synth"
)

func fixture(t *testing.T) (*netlist.Design, *rsmt.Forest) {
	t.Helper()
	spec, err := synth.BenchmarkByName("spm")
	if err != nil {
		t.Fatal(err)
	}
	d, err := synth.Generate(spec, lib.Default())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := place.Place(d, place.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	f, err := rsmt.BuildAll(d, rsmt.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return d, f
}

func TestWriteLayoutSVG(t *testing.T) {
	d, f := fixture(t)
	var buf bytes.Buffer
	if err := WriteLayoutSVG(&buf, d, f, DefaultLayoutOptions()); err != nil {
		t.Fatal(err)
	}
	svg := buf.String()
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(strings.TrimSpace(svg), "</svg>") {
		t.Fatal("not a complete SVG document")
	}
	if strings.Count(svg, "<rect") < len(d.Cells) {
		t.Fatalf("fewer rects (%d) than cells (%d)", strings.Count(svg, "<rect"), len(d.Cells))
	}
	if !strings.Contains(svg, "<circle") {
		t.Fatal("ports missing")
	}
	if f.Stats().SteinerNodes > 0 && !strings.Contains(svg, "#dd8800") {
		t.Fatal("Steiner markers missing")
	}
}

func TestLayoutHighlightAndCap(t *testing.T) {
	d, f := fixture(t)
	opt := DefaultLayoutOptions()
	opt.MaxNets = 1
	opt.Highlight = map[netlist.NetID]bool{f.Trees[len(f.Trees)-1].Net: true}
	var buf bytes.Buffer
	if err := WriteLayoutSVG(&buf, d, f, opt); err != nil {
		t.Fatal(err)
	}
	svg := buf.String()
	if !strings.Contains(svg, "#dd3322") {
		t.Fatal("highlighted net not drawn despite net cap")
	}
	// Zero options are defaulted.
	var buf2 bytes.Buffer
	if err := WriteLayoutSVG(&buf2, d, f, LayoutOptions{}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteCongestionSVG(t *testing.T) {
	d, _ := fixture(t)
	g, err := grid.New(d.Die, 8, []int{0, 4, 4, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	g.AddH(1, 1, 20) // hot spot
	var buf bytes.Buffer
	if err := WriteCongestionSVG(&buf, g, 0); err != nil {
		t.Fatal(err)
	}
	svg := buf.String()
	if strings.Count(svg, "<rect") != g.W*g.H {
		t.Fatalf("rect count %d != %d GCells", strings.Count(svg, "<rect"), g.W*g.H)
	}
	// The saturated cell should be dark red-ish, idle ones white.
	if !strings.Contains(svg, "#ffffff") {
		t.Fatal("idle cells should render white")
	}
	if !strings.Contains(svg, "#9b0000") {
		t.Fatalf("hot spot color missing")
	}
}

func TestHeatRamp(t *testing.T) {
	if heat(0) != "#ffffff" {
		t.Fatalf("heat(0)=%s", heat(0))
	}
	if heat(0.5) != "#ffff00" {
		t.Fatalf("heat(0.5)=%s", heat(0.5))
	}
	if heat(1.0) != "#ff0000" {
		t.Fatalf("heat(1.0)=%s", heat(1.0))
	}
	if heat(99) != heat(1.5) {
		t.Fatal("heat must clamp")
	}
	if heat(-1) != heat(0) {
		t.Fatal("negative utilization must clamp to 0")
	}
}
