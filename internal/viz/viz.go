// Package viz renders layouts and congestion maps as SVG: die, cells,
// Steiner trees (pins, Steiner points, edges) and per-edge routing
// utilization heat. Useful for eyeballing what refinement did to a design.
package viz

import (
	"fmt"
	"io"
	"strings"

	"tsteiner/internal/grid"
	"tsteiner/internal/netlist"
	"tsteiner/internal/rsmt"
)

// LayoutOptions tunes the drawing.
type LayoutOptions struct {
	// PxPerDBU scales database units to SVG pixels.
	PxPerDBU float64
	// MaxNets bounds the number of trees drawn (0 = all); large designs
	// become unreadable (and huge files) beyond a few thousand edges.
	MaxNets int
	// Highlight marks these nets' trees in a standout color.
	Highlight map[netlist.NetID]bool
}

// DefaultLayoutOptions fits typical benchmark dies on a screen.
func DefaultLayoutOptions() LayoutOptions {
	return LayoutOptions{PxPerDBU: 2.0, MaxNets: 4000}
}

// WriteLayoutSVG draws the placed design and its Steiner forest.
func WriteLayoutSVG(w io.Writer, d *netlist.Design, f *rsmt.Forest, opt LayoutOptions) error {
	if opt.PxPerDBU <= 0 {
		opt.PxPerDBU = 2.0
	}
	s := opt.PxPerDBU
	px := func(v float64) float64 { return (v - float64(d.Die.XLo)) * s }
	py := func(v float64) float64 { return (float64(d.Die.YHi) - v) * s } // flip Y: SVG grows down
	width := float64(d.Die.Width()) * s
	height := float64(d.Die.Height()) * s

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		width+20, height+20, width+20, height+20)
	b.WriteString(`<g transform="translate(10,10)">` + "\n")
	fmt.Fprintf(&b, `<rect x="0" y="0" width="%.1f" height="%.1f" fill="#fcfcfc" stroke="#333"/>`+"\n", width, height)

	// Cells.
	for ci := range d.Cells {
		p := d.Cells[ci].Pos
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="#8888cc" fill-opacity="0.55"/>`+"\n",
			px(float64(p.X))-s, py(float64(p.Y))-s, 2*s, 2*s)
	}

	// Trees.
	drawn := 0
	for _, tr := range f.Trees {
		if opt.MaxNets > 0 && drawn >= opt.MaxNets && !opt.Highlight[tr.Net] {
			continue
		}
		drawn++
		color := "#44aa44"
		widthPx := 0.8
		if opt.Highlight[tr.Net] {
			color = "#dd3322"
			widthPx = 2.0
		}
		for _, e := range tr.Edges {
			a, c := tr.Nodes[e.A].Pos, tr.Nodes[e.B].Pos
			fmt.Fprintf(&b, `<path d="M %.1f %.1f L %.1f %.1f L %.1f %.1f" fill="none" stroke="%s" stroke-width="%.1f" stroke-opacity="0.7"/>`+"\n",
				px(a.X), py(a.Y), px(c.X), py(a.Y), px(c.X), py(c.Y), color, widthPx)
		}
		for _, n := range tr.Nodes {
			if n.Kind == rsmt.SteinerNode {
				x, y := px(n.Pos.X), py(n.Pos.Y)
				fmt.Fprintf(&b, `<path d="M %.1f %.1f L %.1f %.1f L %.1f %.1f Z" fill="#dd8800"/>`+"\n",
					x, y-2.5, x-2.2, y+1.8, x+2.2, y+1.8)
			}
		}
	}

	// Ports.
	for _, pid := range append(append([]netlist.PinID{}, d.PIs...), d.POs...) {
		p := d.Pin(pid).Pos
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="2.2" fill="#222"/>`+"\n",
			px(float64(p.X)), py(float64(p.Y)))
	}
	b.WriteString("</g>\n</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCongestionSVG draws per-GCell routing utilization as a heat map:
// white (idle) through yellow to red (over capacity).
func WriteCongestionSVG(w io.Writer, g *grid.Grid, pxPerGCell float64) error {
	if pxPerGCell <= 0 {
		pxPerGCell = 8
	}
	width := float64(g.W) * pxPerGCell
	height := float64(g.H) * pxPerGCell
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		width, height, width, height)
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			u := g.CongestionAt(g.Center(x, y))
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
				float64(x)*pxPerGCell, float64(g.H-1-y)*pxPerGCell, pxPerGCell, pxPerGCell, heat(u))
		}
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// heat maps utilization to a white→yellow→red color ramp.
func heat(u float64) string {
	if u < 0 {
		u = 0
	}
	if u > 1.5 {
		u = 1.5
	}
	switch {
	case u <= 0.5:
		// white → yellow
		t := u / 0.5
		return rgb(255, 255, int(255*(1-t)))
	case u <= 1.0:
		// yellow → red
		t := (u - 0.5) / 0.5
		return rgb(255, int(255*(1-t)), 0)
	default:
		// red → dark red
		t := (u - 1.0) / 0.5
		return rgb(int(255-100*t), 0, 0)
	}
}

func rgb(r, g, b int) string { return fmt.Sprintf("#%02x%02x%02x", r, g, b) }
