package geom

import (
	"testing"
	"testing/quick"
)

func TestManhattanDist(t *testing.T) {
	cases := []struct {
		a, b Point
		want int
	}{
		{Point{0, 0}, Point{0, 0}, 0},
		{Point{0, 0}, Point{3, 4}, 7},
		{Point{-2, -3}, Point{2, 3}, 10},
		{Point{5, 5}, Point{5, 9}, 4},
	}
	for _, c := range cases {
		if got := ManhattanDist(c.a, c.b); got != c.want {
			t.Errorf("ManhattanDist(%v,%v)=%d want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestManhattanDistSymmetric(t *testing.T) {
	f := func(ax, ay, bx, by int16) bool {
		a := Point{int(ax), int(ay)}
		b := Point{int(bx), int(by)}
		return ManhattanDist(a, b) == ManhattanDist(b, a) && ManhattanDist(a, b) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestManhattanTriangleInequality(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy int16) bool {
		a := Point{int(ax), int(ay)}
		b := Point{int(bx), int(by)}
		c := Point{int(cx), int(cy)}
		return ManhattanDist(a, c) <= ManhattanDist(a, b)+ManhattanDist(b, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFPointRound(t *testing.T) {
	cases := []struct {
		in   FPoint
		want Point
	}{
		{FPoint{0.4, 0.6}, Point{0, 1}},
		{FPoint{1.5, 2.5}, Point{2, 3}},
		{FPoint{-0.4, -0.6}, Point{0, -1}},
		{FPoint{-1.5, 1.49}, Point{-2, 1}},
	}
	for _, c := range cases {
		if got := c.in.Round(); got != c.want {
			t.Errorf("Round(%v)=%v want %v", c.in, got, c.want)
		}
	}
}

func TestRoundTripPointToF(t *testing.T) {
	f := func(x, y int16) bool {
		p := Point{int(x), int(y)}
		return p.ToF().Round() == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEmptyBBox(t *testing.T) {
	b := EmptyBBox()
	if !b.Empty() {
		t.Fatal("EmptyBBox should be empty")
	}
	if b.Width() != 0 || b.Height() != 0 || b.HalfPerimeter() != 0 {
		t.Fatal("empty box should have zero dimensions")
	}
	b = b.Expand(Point{3, 4})
	if b.Empty() {
		t.Fatal("box should be non-empty after Expand")
	}
	if !b.Contains(Point{3, 4}) {
		t.Fatal("box should contain its seed point")
	}
	if b.HalfPerimeter() != 0 {
		t.Fatal("single-point box has zero half-perimeter")
	}
}

func TestBBoxExpandContains(t *testing.T) {
	f := func(pts []struct{ X, Y int16 }) bool {
		b := EmptyBBox()
		var ps []Point
		for _, q := range pts {
			p := Point{int(q.X), int(q.Y)}
			ps = append(ps, p)
			b = b.Expand(p)
		}
		for _, p := range ps {
			if !b.Contains(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBBoxUnion(t *testing.T) {
	a := BBoxOf([]Point{{0, 0}, {2, 2}})
	b := BBoxOf([]Point{{5, -1}, {6, 7}})
	u := a.Union(b)
	for _, p := range []Point{{0, 0}, {2, 2}, {5, -1}, {6, 7}} {
		if !u.Contains(p) {
			t.Errorf("union should contain %v", p)
		}
	}
	if got := a.Union(EmptyBBox()); got != a {
		t.Errorf("union with empty should be identity, got %+v", got)
	}
	if got := EmptyBBox().Union(a); got != a {
		t.Errorf("empty union a should be a, got %+v", got)
	}
}

func TestBBoxClamp(t *testing.T) {
	b := BBox{0, 0, 10, 5}
	cases := []struct {
		in, want Point
	}{
		{Point{5, 3}, Point{5, 3}},
		{Point{-3, 2}, Point{0, 2}},
		{Point{12, 9}, Point{10, 5}},
		{Point{4, -1}, Point{4, 0}},
	}
	for _, c := range cases {
		if got := b.Clamp(c.in); got != c.want {
			t.Errorf("Clamp(%v)=%v want %v", c.in, got, c.want)
		}
	}
}

func TestBBoxClampIdempotentAndInside(t *testing.T) {
	b := BBox{-5, -5, 20, 13}
	f := func(x, y int16) bool {
		p := b.Clamp(Point{int(x), int(y)})
		return b.Contains(p) && b.Clamp(p) == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBBoxClampF(t *testing.T) {
	b := BBox{0, 0, 10, 10}
	p := b.ClampF(FPoint{-1.5, 11.2})
	if p.X != 0 || p.Y != 10 {
		t.Errorf("ClampF got %v", p)
	}
	q := b.ClampF(FPoint{3.3, 4.4})
	if q.X != 3.3 || q.Y != 4.4 {
		t.Errorf("interior point should be unchanged, got %v", q)
	}
}

func TestHananGrid(t *testing.T) {
	pts := []Point{{0, 0}, {2, 3}, {5, 1}}
	grid := HananGrid(pts)
	if len(grid) != 9 {
		t.Fatalf("expected 3x3=9 Hanan points, got %d", len(grid))
	}
	seen := map[Point]bool{}
	for _, g := range grid {
		seen[g] = true
	}
	// Every terminal must be on its own Hanan grid.
	for _, p := range pts {
		if !seen[p] {
			t.Errorf("terminal %v missing from Hanan grid", p)
		}
	}
	if !seen[(Point{0, 3})] || !seen[(Point{5, 3})] {
		t.Error("expected cross points on Hanan grid")
	}
}

func TestHananGridDedup(t *testing.T) {
	pts := []Point{{1, 1}, {1, 1}, {1, 2}}
	grid := HananGrid(pts)
	if len(grid) != 2 {
		t.Fatalf("expected 1x2=2 Hanan points with duplicate terminals, got %d", len(grid))
	}
}

func TestMedianMinimizesL1(t *testing.T) {
	pts := []Point{{0, 0}, {10, 0}, {0, 10}, {4, 4}, {6, 2}}
	m := Median(pts)
	sum := func(q Point) int {
		s := 0
		for _, p := range pts {
			s += ManhattanDist(p, q)
		}
		return s
	}
	best := sum(m)
	for _, h := range HananGrid(pts) {
		if sum(h) < best {
			t.Fatalf("median %v (cost %d) beaten by %v (cost %d)", m, best, h, sum(h))
		}
	}
}

func TestMedianEmpty(t *testing.T) {
	if got := Median(nil); got != (Point{}) {
		t.Errorf("median of empty set should be origin, got %v", got)
	}
}

func TestHalfPerimeter(t *testing.T) {
	b := BBoxOf([]Point{{1, 2}, {4, 7}})
	if got := b.HalfPerimeter(); got != 3+5 {
		t.Errorf("HalfPerimeter=%d want 8", got)
	}
}
