package geom_test

import (
	"fmt"
	"testing"

	"tsteiner/internal/check"
	"tsteiner/internal/geom"
)

var propBox = geom.BBox{XLo: -40, YLo: -40, XHi: 120, YHi: 90}

// TestPropManhattanMetric pins the metric axioms: symmetry, the
// triangle inequality, and d(p,q)=0 ⇔ p=q.
func TestPropManhattanMetric(t *testing.T) {
	g := check.PointsIn(propBox, 3, 3)
	check.Run(t, g, func(pts []geom.Point) error {
		p, q, r := pts[0], pts[1], pts[2]
		if geom.ManhattanDist(p, q) != geom.ManhattanDist(q, p) {
			return fmt.Errorf("asymmetric: d(%v,%v) != d(%v,%v)", p, q, q, p)
		}
		if geom.ManhattanDist(p, r) > geom.ManhattanDist(p, q)+geom.ManhattanDist(q, r) {
			return fmt.Errorf("triangle inequality violated via %v", q)
		}
		if d := geom.ManhattanDist(p, p); d != 0 {
			return fmt.Errorf("d(p,p) = %d", d)
		}
		if p != q && geom.ManhattanDist(p, q) == 0 {
			return fmt.Errorf("distinct points %v,%v at distance 0", p, q)
		}
		return nil
	})
}

// TestPropBBoxOfContains checks BBoxOf covers every input point and its
// half-perimeter is translation-invariant.
func TestPropBBoxOfContains(t *testing.T) {
	g := check.Two(check.PointsIn(propBox, 1, 12), check.PointIn(geom.BBox{XLo: -50, YLo: -50, XHi: 50, YHi: 50}))
	check.Run(t, g, func(in check.Pair[[]geom.Point, geom.Point]) error {
		pts, shift := in.A, in.B
		b := geom.BBoxOf(pts)
		for _, p := range pts {
			if !b.Contains(p) {
				return fmt.Errorf("bbox %+v misses member %v", b, p)
			}
		}
		moved := make([]geom.Point, len(pts))
		for i, p := range pts {
			moved[i] = geom.Point{X: p.X + shift.X, Y: p.Y + shift.Y}
		}
		if got, want := geom.BBoxOf(moved).HalfPerimeter(), b.HalfPerimeter(); got != want {
			return fmt.Errorf("HPWL changed under translation by %v: %d -> %d", shift, want, got)
		}
		return nil
	})
}

// TestPropHananGridCoversTerminals checks the Hanan grid contains every
// terminal, stays inside the terminal bbox, and has at most n² points.
func TestPropHananGridCoversTerminals(t *testing.T) {
	check.Run(t, check.PointsIn(propBox, 1, 8), func(pts []geom.Point) error {
		grid := geom.HananGrid(pts)
		if len(grid) > len(pts)*len(pts) {
			return fmt.Errorf("%d grid points for %d terminals", len(grid), len(pts))
		}
		b := geom.BBoxOf(pts)
		on := make(map[geom.Point]bool, len(grid))
		for _, gp := range grid {
			if !b.Contains(gp) {
				return fmt.Errorf("grid point %v outside terminal bbox %+v", gp, b)
			}
			on[gp] = true
		}
		for _, p := range pts {
			if !on[p] {
				return fmt.Errorf("terminal %v missing from its Hanan grid", p)
			}
		}
		return nil
	})
}

// TestPropMedianMinimizesL1 checks the coordinate-wise median is a true
// 1-median: no other candidate point has a smaller total Manhattan
// distance to the set.
func TestPropMedianMinimizesL1(t *testing.T) {
	g := check.Two(check.PointsIn(propBox, 1, 9), check.PointsIn(propBox, 4, 4))
	check.Run(t, g, func(in check.Pair[[]geom.Point, []geom.Point]) error {
		pts, rivals := in.A, in.B
		sum := func(c geom.Point) int {
			s := 0
			for _, p := range pts {
				s += geom.ManhattanDist(c, p)
			}
			return s
		}
		m := geom.Median(pts)
		best := sum(m)
		// Rivals: random points plus ±1 perturbations of the median.
		rivals = append(rivals,
			geom.Point{X: m.X + 1, Y: m.Y}, geom.Point{X: m.X - 1, Y: m.Y},
			geom.Point{X: m.X, Y: m.Y + 1}, geom.Point{X: m.X, Y: m.Y - 1})
		for _, r := range rivals {
			if s := sum(r); s < best {
				return fmt.Errorf("median %v (cost %d) beaten by %v (cost %d)", m, best, r, s)
			}
		}
		return nil
	})
}
