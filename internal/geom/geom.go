// Package geom provides rectilinear geometry primitives used across the
// physical-design substrates: integer points, bounding boxes, Manhattan
// metrics and Hanan-grid helpers.
//
// All routing-related coordinates in this repository are expressed in
// database units (DBU). One DBU corresponds to one detailed-routing track
// pitch; the global-routing grid groups DBU coordinates into GCells.
package geom

import (
	"fmt"
	"sort"
)

// Point is an integer point in DBU space.
type Point struct {
	X, Y int
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%d,%d)", p.X, p.Y) }

// FPoint is a floating-point point, used while Steiner coordinates are
// being optimized continuously before the final rounding post-process.
type FPoint struct {
	X, Y float64
}

// String implements fmt.Stringer.
func (p FPoint) String() string { return fmt.Sprintf("(%.3f,%.3f)", p.X, p.Y) }

// Round converts a continuous point to the nearest integer DBU point.
func (p FPoint) Round() Point {
	return Point{X: roundHalfAway(p.X), Y: roundHalfAway(p.Y)}
}

// ToF converts an integer point to its continuous representation.
func (p Point) ToF() FPoint { return FPoint{X: float64(p.X), Y: float64(p.Y)} }

func roundHalfAway(v float64) int {
	if v >= 0 {
		return int(v + 0.5)
	}
	return -int(-v + 0.5)
}

// ManhattanDist returns the L1 distance between two integer points.
func ManhattanDist(a, b Point) int {
	return abs(a.X-b.X) + abs(a.Y-b.Y)
}

// ManhattanDistF returns the L1 distance between two continuous points.
func ManhattanDistF(a, b FPoint) float64 {
	return absF(a.X-b.X) + absF(a.Y-b.Y)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func absF(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// BBox is an axis-aligned integer bounding box. It is inclusive on all
// sides: a point p is inside iff XLo <= p.X <= XHi and YLo <= p.Y <= YHi.
type BBox struct {
	XLo, YLo, XHi, YHi int
}

// EmptyBBox returns a box that contains nothing and absorbs any point on
// the first Expand call.
func EmptyBBox() BBox {
	const big = int(^uint(0) >> 1)
	return BBox{XLo: big, YLo: big, XHi: -big - 1, YHi: -big - 1}
}

// Empty reports whether the box contains no points.
func (b BBox) Empty() bool { return b.XLo > b.XHi || b.YLo > b.YHi }

// Expand grows the box to include p.
func (b BBox) Expand(p Point) BBox {
	if p.X < b.XLo {
		b.XLo = p.X
	}
	if p.X > b.XHi {
		b.XHi = p.X
	}
	if p.Y < b.YLo {
		b.YLo = p.Y
	}
	if p.Y > b.YHi {
		b.YHi = p.Y
	}
	return b
}

// Union returns the smallest box containing both operands.
func (b BBox) Union(o BBox) BBox {
	if b.Empty() {
		return o
	}
	if o.Empty() {
		return b
	}
	b = b.Expand(Point{o.XLo, o.YLo})
	b = b.Expand(Point{o.XHi, o.YHi})
	return b
}

// Contains reports whether p lies inside the (inclusive) box.
func (b BBox) Contains(p Point) bool {
	return p.X >= b.XLo && p.X <= b.XHi && p.Y >= b.YLo && p.Y <= b.YHi
}

// Clamp returns p moved to the nearest point inside the box.
func (b BBox) Clamp(p Point) Point {
	if p.X < b.XLo {
		p.X = b.XLo
	}
	if p.X > b.XHi {
		p.X = b.XHi
	}
	if p.Y < b.YLo {
		p.Y = b.YLo
	}
	if p.Y > b.YHi {
		p.Y = b.YHi
	}
	return p
}

// ClampF returns p moved to the nearest continuous point inside the box.
func (b BBox) ClampF(p FPoint) FPoint {
	if p.X < float64(b.XLo) {
		p.X = float64(b.XLo)
	}
	if p.X > float64(b.XHi) {
		p.X = float64(b.XHi)
	}
	if p.Y < float64(b.YLo) {
		p.Y = float64(b.YLo)
	}
	if p.Y > float64(b.YHi) {
		p.Y = float64(b.YHi)
	}
	return p
}

// Width returns the horizontal extent of the box (0 for a degenerate box).
func (b BBox) Width() int {
	if b.Empty() {
		return 0
	}
	return b.XHi - b.XLo
}

// Height returns the vertical extent of the box (0 for a degenerate box).
func (b BBox) Height() int {
	if b.Empty() {
		return 0
	}
	return b.YHi - b.YLo
}

// HalfPerimeter returns the half-perimeter wirelength of the box, the
// classic HPWL lower bound for the wirelength of a net.
func (b BBox) HalfPerimeter() int { return b.Width() + b.Height() }

// BBoxOf returns the bounding box of a point set.
func BBoxOf(pts []Point) BBox {
	b := EmptyBBox()
	for _, p := range pts {
		b = b.Expand(p)
	}
	return b
}

// HananGrid returns the Hanan grid of a terminal set: all points (x, y)
// where x is the abscissa of some terminal and y the ordinate of some
// (possibly different) terminal. A rectilinear Steiner minimum tree always
// has an embedding whose Steiner points lie on the Hanan grid, so Steiner
// candidate generation enumerates these points.
func HananGrid(pts []Point) []Point {
	xs := make([]int, 0, len(pts))
	ys := make([]int, 0, len(pts))
	for _, p := range pts {
		xs = append(xs, p.X)
		ys = append(ys, p.Y)
	}
	xs = dedupSorted(xs)
	ys = dedupSorted(ys)
	grid := make([]Point, 0, len(xs)*len(ys))
	for _, x := range xs {
		for _, y := range ys {
			grid = append(grid, Point{x, y})
		}
	}
	return grid
}

func dedupSorted(vs []int) []int {
	sort.Ints(vs)
	out := vs[:0]
	for i, v := range vs {
		if i == 0 || v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// Median returns the Manhattan median point of a point set: the component-
// wise median, which minimizes the total L1 distance to the set. For even
// counts the lower median is used, keeping the result on the Hanan grid.
func Median(pts []Point) Point {
	if len(pts) == 0 {
		return Point{}
	}
	xs := make([]int, len(pts))
	ys := make([]int, len(pts))
	for i, p := range pts {
		xs[i] = p.X
		ys[i] = p.Y
	}
	sort.Ints(xs)
	sort.Ints(ys)
	m := (len(pts) - 1) / 2
	return Point{xs[m], ys[m]}
}
