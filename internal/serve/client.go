package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"time"
)

// Client talks to a tsteinerd. Submit retries transient failures —
// connection errors, 429 queue-full, 503 draining — with exponential
// backoff plus seeded jitter, honoring the server's Retry-After hint.
// Because job IDs are idempotency keys, a retried submit that raced a
// success is answered with the existing job's status: a retry storm never
// double-runs work.
type Client struct {
	// Base is the server URL, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTPClient defaults to a fresh http.Client.
	HTTPClient *http.Client
	// Retries bounds submit attempts (0 = 8).
	Retries int
	// BaseDelay and MaxDelay shape the backoff (0 = 100ms / 5s).
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// JitterSeed seeds the backoff jitter so tests can fix the retry
	// schedule (0 = 1).
	JitterSeed int64
	// Sleep is the wait seam (nil = time.Sleep); tests substitute a
	// recorder so retry storms run instantly.
	Sleep func(time.Duration)

	rng *rand.Rand
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{}
	}
	return c.HTTPClient
}

func (c *Client) retries() int {
	if c.Retries <= 0 {
		return 8
	}
	return c.Retries
}

func (c *Client) sleep(d time.Duration) {
	if c.Sleep != nil {
		c.Sleep(d)
		return
	}
	time.Sleep(d)
}

// backoff computes the wait before attempt n (0-based): exponential from
// BaseDelay, capped at MaxDelay, with ±25% seeded jitter. A server
// Retry-After hint overrides the exponential part but keeps the jitter —
// if every client honored the hint exactly, they would all come back in
// the same instant they were turned away together.
func (c *Client) backoff(attempt int, retryAfter time.Duration) time.Duration {
	base, max := c.BaseDelay, c.MaxDelay
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if max <= 0 {
		max = 5 * time.Second
	}
	d := base << uint(attempt)
	if d > max || d <= 0 {
		d = max
	}
	if retryAfter > 0 {
		d = retryAfter
		if d > max {
			d = max
		}
	}
	if c.rng == nil {
		seed := c.JitterSeed
		if seed == 0 {
			seed = 1
		}
		c.rng = rand.New(rand.NewSource(seed))
	}
	jitter := 1 + (c.rng.Float64()-0.5)/2 // 0.75 .. 1.25
	return time.Duration(float64(d) * jitter)
}

// retryable reports whether a submit should be retried, and the server's
// Retry-After hint if it gave one.
func retryable(resp *http.Response) (bool, time.Duration) {
	switch resp.StatusCode {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		var hint time.Duration
		if v := resp.Header.Get("Retry-After"); v != "" {
			if secs, err := strconv.Atoi(v); err == nil && secs > 0 {
				hint = time.Duration(secs) * time.Second
			}
		}
		return true, hint
	}
	return false, 0
}

// Submit posts a job, retrying transient rejections. It returns the
// admitted (or already-known) job's status.
func (c *Client) Submit(req *JobRequest) (*JobStatus, error) {
	req.Normalize()
	if err := req.Validate(); err != nil {
		return nil, err
	}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("serve: client: encode request: %w", err)
	}
	var lastErr error
	for attempt := 0; attempt < c.retries(); attempt++ {
		if attempt > 0 {
			c.sleep(c.backoff(attempt-1, retryAfterOf(lastErr)))
		}
		resp, err := c.httpClient().Post(c.Base+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			lastErr = &transientError{err: fmt.Errorf("serve: client: submit %s: %w", req.ID, err)}
			continue
		}
		st, err := decodeStatusResponse(resp)
		if err == nil {
			return st, nil
		}
		if retry, hint := retryable(resp); retry {
			lastErr = &transientError{err: err, retryAfter: hint}
			continue
		}
		return nil, err
	}
	return nil, fmt.Errorf("serve: client: submit %s: gave up after %d attempts: %w", req.ID, c.retries(), unwrapTransient(lastErr))
}

// transientError carries a retryable failure plus the server's hint.
type transientError struct {
	err        error
	retryAfter time.Duration
}

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

func retryAfterOf(err error) time.Duration {
	if te, ok := err.(*transientError); ok {
		return te.retryAfter
	}
	return 0
}

func unwrapTransient(err error) error {
	if te, ok := err.(*transientError); ok {
		return te.err
	}
	if err == nil {
		return fmt.Errorf("no attempt made")
	}
	return err
}

// decodeStatusResponse turns a /jobs response into a JobStatus or an error
// carrying the server's message.
func decodeStatusResponse(resp *http.Response) (*JobStatus, error) {
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil, fmt.Errorf("serve: client: read response: %w", err)
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return nil, fmt.Errorf("serve: client: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(data))
	}
	st := new(JobStatus)
	if err := json.Unmarshal(data, st); err != nil {
		return nil, fmt.Errorf("serve: client: decode status: %w", err)
	}
	return st, nil
}

// Status fetches a job's current status.
func (c *Client) Status(id string) (*JobStatus, error) {
	resp, err := c.httpClient().Get(c.Base + "/jobs/" + url.PathEscape(id))
	if err != nil {
		return nil, fmt.Errorf("serve: client: status %s: %w", id, err)
	}
	return decodeStatusResponse(resp)
}

// Wait long-polls until the job reaches a state no further waiting will
// change on this server (done, failed, or interrupted), or until timeout
// (0 = wait indefinitely, in server-bounded slices).
func (c *Client) Wait(id string, timeout time.Duration) (*JobStatus, error) {
	deadline := time.Now().Add(timeout)
	for {
		slice := 2 * time.Second
		if timeout > 0 {
			if rem := time.Until(deadline); rem <= 0 {
				st, err := c.Status(id)
				if err != nil {
					return nil, err
				}
				return st, fmt.Errorf("serve: client: wait %s: timed out in state %s", id, st.State)
			} else if rem < slice {
				slice = rem
			}
		}
		resp, err := c.httpClient().Get(c.Base + "/jobs/" + url.PathEscape(id) + "?wait=" + slice.String())
		if err != nil {
			return nil, fmt.Errorf("serve: client: wait %s: %w", id, err)
		}
		st, err := decodeStatusResponse(resp)
		if err != nil {
			return nil, err
		}
		switch st.State {
		case StateDone, StateFailed, StateInterrupted:
			return st, nil
		}
	}
}

// Forest downloads a done job's refined-forest artifact (designio JSON
// bytes, byte-identical across equivalent runs).
func (c *Client) Forest(id string) ([]byte, error) {
	return c.fetch(id, "/forest")
}

// Trace downloads a job's NDJSON obs trace.
func (c *Client) Trace(id string) ([]byte, error) {
	return c.fetch(id, "/trace")
}

func (c *Client) fetch(id, suffix string) ([]byte, error) {
	resp, err := c.httpClient().Get(c.Base + "/jobs/" + url.PathEscape(id) + suffix)
	if err != nil {
		return nil, fmt.Errorf("serve: client: fetch %s%s: %w", id, suffix, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("serve: client: fetch %s%s: %w", id, suffix, err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("serve: client: fetch %s%s: HTTP %d: %s", id, suffix, resp.StatusCode, bytes.TrimSpace(data))
	}
	return data, nil
}
