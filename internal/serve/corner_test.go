package serve

import (
	"encoding/json"
	"testing"

	"tsteiner/internal/sta"
)

// TestJobRequestCornerValidation: the Corners field follows the package's
// request rules — per-corner validation, duplicate-name rejection, and
// the per-job corner cap.
func TestJobRequestCornerValidation(t *testing.T) {
	base := func() *JobRequest {
		return &JobRequest{ID: "c", Kind: KindSignoff, Design: json.RawMessage(`{}`)}
	}
	r := base()
	r.Corners = sta.DefaultCorners()
	r.Normalize()
	if err := r.Validate(); err != nil {
		t.Fatalf("default corners rejected: %v", err)
	}

	r = base()
	r.Corners = []sta.Corner{{Name: "", DelayScale: 1, SlewScale: 1, ClockScale: 1}}
	if err := r.Validate(); err == nil {
		t.Fatal("unnamed corner passed Validate")
	}

	r = base()
	r.Corners = []sta.Corner{sta.TypicalCorner(), sta.TypicalCorner()}
	if err := r.Validate(); err == nil {
		t.Fatal("duplicate corner passed Validate")
	}

	r = base()
	for i := 0; i <= maxCorners; i++ {
		c := sta.TypicalCorner()
		c.Name = string(rune('a' + i))
		r.Corners = append(r.Corners, c)
	}
	if err := r.Validate(); err == nil {
		t.Fatalf("%d corners passed Validate (max %d)", len(r.Corners), maxCorners)
	}
}

// TestServeCornerJobReportsMatrix runs a sharded refine job with the
// standard corner matrix through the runner and checks the result carries
// per-corner rows for both the baseline and refined forests, with the
// typical row bitwise equal to the headline metrics.
func TestServeCornerJobReportsMatrix(t *testing.T) {
	d := designJSON(t, 5)
	corners := sta.DefaultCorners()
	req := &JobRequest{ID: "corner-shard", Kind: KindRefine, Design: d,
		Seed: 7, Iters: 3, Shards: 2, Corners: corners}
	sp, _ := runSerial(t, []*JobRequest{req})
	res, err := sp.ReadResult("corner-shard")
	if err != nil || res == nil {
		t.Fatalf("result: %v", err)
	}
	check := func(label string, rows []sta.CornerMetrics, head Metrics) {
		if len(rows) != len(corners) {
			t.Fatalf("%s: %d corner rows, want %d", label, len(rows), len(corners))
		}
		for i, row := range rows {
			if row.Corner.Name != corners[i].Name {
				t.Fatalf("%s row %d named %q, want %q", label, i, row.Corner.Name, corners[i].Name)
			}
			if row.Corner.Name == "typical" && (row.WNS != head.WNS || row.TNS != head.TNS) {
				t.Fatalf("%s typical row (%v,%v) != headline (%v,%v)",
					label, row.WNS, row.TNS, head.WNS, head.TNS)
			}
		}
	}
	check("baseline", res.BaselineCorners, res.Baseline)
	if res.Refined == nil {
		t.Fatal("no refined metrics")
	}
	check("refined", res.RefinedCorners, *res.Refined)
}
