package serve

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestJobRequestShardsNormalizeValidate: the Shards knob follows the
// package's request rules — Normalize is idempotent (it runs again
// server-side after the JSON roundtrip) and Validate bounds the value.
func TestJobRequestShardsNormalizeValidate(t *testing.T) {
	r := &JobRequest{ID: "s", Kind: KindRefine, Design: json.RawMessage(`{}`), Shards: -3}
	r.Normalize()
	if r.Shards != 0 {
		t.Fatalf("negative Shards normalized to %d, want 0", r.Shards)
	}
	before := *r
	r.Normalize()
	if r.Shards != before.Shards || r.Seed != before.Seed || r.Epochs != before.Epochs ||
		r.Iters != before.Iters || r.AugmentVariants != before.AugmentVariants {
		t.Fatalf("Normalize not idempotent: %+v != %+v", *r, before)
	}
	if err := r.Validate(); err != nil {
		t.Fatalf("normalized request rejected: %v", err)
	}
	r.Shards = maxShards + 1
	if err := r.Validate(); err == nil {
		t.Fatal("Shards above the cap passed Validate")
	}
}

// TestServeShardedRefineShardCountInvariant extends the shard-count
// byte-identity contract to the job runner: two refine jobs differing
// only in Shards (and Workers) must produce byte-identical forest
// artifacts and identical refined metrics.
func TestServeShardedRefineShardCountInvariant(t *testing.T) {
	d := designJSON(t, 5)
	mk := func(id string, shards, workers int) *JobRequest {
		return &JobRequest{ID: id, Kind: KindRefine, Design: d,
			Seed: 7, Iters: 3, Shards: shards, Workers: workers}
	}
	sp, ref := runSerial(t, []*JobRequest{mk("shard-1", 1, 1), mk("shard-4", 4, 2)})
	f1, f4 := ref["shard-1"][1], ref["shard-4"][1]
	if !bytes.Equal(f1, f4) {
		t.Fatal("forest artifacts diverged across shard counts")
	}
	read := func(id string) *JobResult {
		r, err := sp.ReadResult(id)
		if err != nil || r == nil {
			t.Fatalf("result %s: %v", id, err)
		}
		return r
	}
	r1, r4 := read("shard-1"), read("shard-4")
	if r1.Refined == nil || r4.Refined == nil {
		t.Fatal("sharded refine job recorded no refined metrics")
	}
	if *r1.Refined != *r4.Refined {
		t.Fatalf("refined metrics diverged: %+v != %+v", *r1.Refined, *r4.Refined)
	}
	if r1.Iterations != r4.Iterations {
		t.Fatalf("rounds diverged: %d != %d", r1.Iterations, r4.Iterations)
	}
	if r1.ModelHash != "" || r4.ModelHash != "" {
		t.Fatal("sharded refine trained a model; it must not")
	}
}
