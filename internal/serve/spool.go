package serve

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"tsteiner/internal/guard"
	"tsteiner/internal/guard/fault"
)

// readJSONFile decodes one JSON file into v.
func readJSONFile(path string, v any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	return json.Unmarshal(data, v)
}

// Spool is the on-disk job store that makes jobs survive a process kill:
//
//	<root>/jobs/<id>/job.json     CRC-enveloped JobRequest (admission record)
//	<root>/jobs/<id>/status.json  lifecycle state (advisory; see Scan policy)
//	<root>/jobs/<id>/result.json  CRC-enveloped JobResult (terminal artifact)
//	<root>/jobs/<id>/forest.json  Steiner forest artifact (designio JSON)
//	<root>/jobs/<id>/train.ckpt   evaluator training checkpoint
//	<root>/jobs/<id>/refine.ckpt  refinement loop checkpoint
//	<root>/jobs/<id>/trace.ndjson per-job obs trace (side channel)
//	<root>/models/<family>.json   cached trained evaluators
//
// Every record that gates a decision (request, result) is written through
// guard.WriteCheckpoint, so a torn write is detected by CRC on read
// instead of being half-trusted; all other writes are atomic
// (temp + rename + directory fsync).
type Spool struct {
	root string
}

// OpenSpool creates (or reopens) a spool rooted at dir.
func OpenSpool(dir string) (*Spool, error) {
	for _, d := range []string{filepath.Join(dir, "jobs"), filepath.Join(dir, "models")} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("serve: spool: %w", err)
		}
	}
	return &Spool{root: dir}, nil
}

// Root returns the spool root directory.
func (s *Spool) Root() string { return s.root }

// ModelDir returns the trained-evaluator cache directory.
func (s *Spool) ModelDir() string { return filepath.Join(s.root, "models") }

// JobDir returns the directory of one job's records.
func (s *Spool) JobDir(id string) string { return filepath.Join(s.root, "jobs", id) }

func (s *Spool) requestPath(id string) string { return filepath.Join(s.JobDir(id), "job.json") }
func (s *Spool) statusPath(id string) string  { return filepath.Join(s.JobDir(id), "status.json") }
func (s *Spool) resultPath(id string) string  { return filepath.Join(s.JobDir(id), "result.json") }

// ForestPath is the job's Steiner-forest artifact.
func (s *Spool) ForestPath(id string) string { return filepath.Join(s.JobDir(id), "forest.json") }

// TracePath is the job's NDJSON obs trace.
func (s *Spool) TracePath(id string) string { return filepath.Join(s.JobDir(id), "trace.ndjson") }

// TrainCkptPath is the job's evaluator-training checkpoint.
func (s *Spool) TrainCkptPath(id string) string { return filepath.Join(s.JobDir(id), "train.ckpt") }

// RefineCkptPath is the job's refinement-loop checkpoint.
func (s *Spool) RefineCkptPath(id string) string { return filepath.Join(s.JobDir(id), "refine.ckpt") }

// Known reports whether a job directory exists (admitted at some point).
func (s *Spool) Known(id string) bool {
	_, err := os.Stat(s.JobDir(id))
	return err == nil
}

// WriteRequest admits a job: its request is sealed in a CRC envelope so a
// crash mid-admission can never leave a plausible-but-torn request that a
// restart would run against the wrong inputs. inj is the deterministic
// fault injector (nil in production); the "guard.ckpt.truncate" site
// exercises the torn-write path.
func (s *Spool) WriteRequest(req *JobRequest, inj *fault.Injector) error {
	if err := os.MkdirAll(s.JobDir(req.ID), 0o755); err != nil {
		return fmt.Errorf("serve: spool job %s: %w", req.ID, err)
	}
	return guard.WriteCheckpoint(s.requestPath(req.ID), req, inj)
}

// ReadRequest loads a spooled request. A missing record returns
// (nil, nil); a torn or tampered one returns a *guard.CorruptError.
func (s *Spool) ReadRequest(id string) (*JobRequest, error) {
	req := new(JobRequest)
	ok, err := guard.ReadCheckpoint(s.requestPath(id), req)
	if err != nil || !ok {
		return nil, err
	}
	return req, nil
}

// statusRecord is the on-disk lifecycle state. It is advisory: Scan
// trusts result.json (CRC-checked) over it, and treats a missing or
// unreadable status as "non-terminal, re-run" — re-running a finished
// job is byte-identical, trusting a torn status would not be.
type statusRecord struct {
	State    string
	Error    string `json:",omitempty"`
	Attempts int
}

// WriteStatus persists a job's lifecycle state atomically.
func (s *Spool) WriteStatus(id string, st statusRecord) error {
	return guard.AtomicWriteJSON(s.statusPath(id), st)
}

// ReadStatus loads a job's lifecycle state; missing or corrupt records
// come back as a zero value with ok=false.
func (s *Spool) ReadStatus(id string) (statusRecord, bool) {
	var st statusRecord
	if err := readJSONFile(s.statusPath(id), &st); err != nil {
		return statusRecord{}, false
	}
	return st, true
}

// WriteResult seals a job's deterministic outcome in a CRC envelope. The
// result file is the byte-identity artifact: identical payloads produce
// identical envelopes.
func (s *Spool) WriteResult(res *JobResult, inj *fault.Injector) error {
	return guard.WriteCheckpoint(s.resultPath(res.ID), res, inj)
}

// ReadResult loads a job's result. Missing returns (nil, nil); torn or
// tampered returns a *guard.CorruptError — Scan then re-runs the job
// rather than serving a lie.
func (s *Spool) ReadResult(id string) (*JobResult, error) {
	res := new(JobResult)
	ok, err := guard.ReadCheckpoint(s.resultPath(id), res)
	if err != nil || !ok {
		return nil, err
	}
	return res, nil
}

// Remove deletes a job's spool directory — the un-admission path when the
// queue turns a request away after it was provisionally spooled.
func (s *Spool) Remove(id string) error {
	return os.RemoveAll(s.JobDir(id))
}

// ListJobs returns every spooled job ID in sorted order, so restart
// recovery enqueues survivors deterministically.
func (s *Spool) ListJobs() ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(s.root, "jobs"))
	if err != nil {
		return nil, fmt.Errorf("serve: spool scan: %w", err)
	}
	var ids []string
	for _, e := range entries {
		if e.IsDir() {
			ids = append(ids, e.Name())
		}
	}
	sort.Strings(ids)
	return ids, nil
}
