package serve

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"time"

	"tsteiner/internal/core"
	"tsteiner/internal/designio"
	"tsteiner/internal/flow"
	"tsteiner/internal/gnn"
	"tsteiner/internal/guard"
	"tsteiner/internal/guard/fault"
	"tsteiner/internal/lib"
	"tsteiner/internal/netlist"
	"tsteiner/internal/obs"
	"tsteiner/internal/shard"
	"tsteiner/internal/train"
)

// Runner executes one job from its spooled request. It is the single
// execution path behind both the daemon's workers and the CLI's local
// job mode, which is what makes the byte-identity gate meaningful:
// "server concurrent" and "CLI serial" literally share this code.
//
// Fault sites (deterministic, nil injector = production):
//
//	serve.panic        panic inside the job body (containment test)
//	serve.stall        stall the job body (queue-saturation test)
//	serve.kill.train   stop mid-training with a checkpoint on disk,
//	                   returning ErrInterrupted (simulated process kill)
//	serve.kill.refine  same, mid-refinement
//
// plus every site of the substrates it drives ("flow.stall",
// "core.stall", "core.nan", "train.nan", "guard.ckpt.truncate").
type Runner struct {
	Spool *Spool
	Cache *ModelCache
	Fault *fault.Injector
	// Obs is the server-wide sink for runner counters (corrupt
	// checkpoints discarded, jobs degraded). Per-job telemetry goes to
	// the job's own trace file, not here. May be nil.
	Obs *obs.Sink
}

// NewRunner builds a runner over a spool. sink may be nil.
func NewRunner(sp *Spool, sink *obs.Sink, inj *fault.Injector) *Runner {
	return &Runner{
		Spool: sp,
		Cache: NewModelCache(sp.ModelDir(), sink),
		Fault: inj,
		Obs:   sink,
	}
}

// Run executes req to completion (or interruption) and persists the
// result and artifacts into the spool. The request must be normalized and
// validated. On ErrInterrupted, resumable checkpoints are on disk and a
// later Run of the same request continues from them — byte-identical to
// an uninterrupted run.
func (rn *Runner) Run(req *JobRequest) (*JobResult, error) {
	if rn.Fault.Fire("serve.panic") {
		panic("serve: injected job panic")
	}
	rn.Fault.Stall("serve.stall")

	jobSink, closeSink, err := rn.jobSink(req.ID)
	if err != nil {
		return nil, err
	}
	defer closeSink()

	l := lib.Default()
	d, err := designio.ReadJSON(bytes.NewReader(req.Design), l)
	if err != nil {
		return nil, fmt.Errorf("serve: job %s: %w", req.ID, err)
	}
	// Canonical design bytes key the model cache; raw request bytes may
	// differ in formatting without changing the design family.
	var canon bytes.Buffer
	if err := designio.WriteJSON(&canon, d); err != nil {
		return nil, fmt.Errorf("serve: job %s: %w", req.ID, err)
	}
	aug := req.AugmentVariants
	if aug < 0 {
		aug = 0 // every "no augmentation" spelling is one family
	}
	family := FamilyHash(canon.Bytes(), req.Seed, req.Epochs, aug)

	var budget *guard.Budget
	if req.DeadlineMS > 0 {
		budget = &guard.Budget{Wall: time.Duration(req.DeadlineMS) * time.Millisecond}
		budget.Start()
	}

	cfg := flow.DefaultConfig()
	cfg.Workers = req.Workers
	cfg.Obs = jobSink
	cfg.Budget = budget
	cfg.Fault = rn.Fault
	cfg.Corners = req.Corners

	var prepared *flow.Prepared
	if hasPlacement(d) {
		prepared, err = flow.PrepareKeepPlacement(d, l, cfg)
	} else {
		prepared, err = flow.Prepare(d, l, cfg)
	}
	if err != nil {
		return nil, fmt.Errorf("serve: job %s: %w", req.ID, err)
	}
	rep, timing, err := flow.SignoffTiming(prepared, prepared.Forest)
	if err != nil {
		return nil, fmt.Errorf("serve: job %s: %w", req.ID, err)
	}

	res := &JobResult{
		ID:              req.ID,
		Kind:            req.Kind,
		Design:          d.Name,
		Seed:            req.Seed,
		Baseline:        metricsOf(rep),
		BaselineCorners: rep.Corners,
	}

	finalForest := prepared.Forest
	if req.Kind == KindRefine && req.Shards > 0 {
		// Sharded incremental refinement: no evaluator and no training —
		// the windowed-STA loop replaces the GNN. Byte-identical at any
		// Shards/Workers value, so the artifacts stay a pure function of
		// the request minus its concurrency knobs.
		sopt := shard.DefaultOptions()
		sopt.Shards = req.Shards
		sopt.Workers = req.Workers
		sopt.Rounds = req.Iters
		sopt.Corners = req.Corners
		sres, err := shard.Refine(prepared, sopt)
		if err != nil {
			return nil, fmt.Errorf("serve: job %s: sharded refine: %w", req.ID, err)
		}
		res.Iterations = sres.Rounds
		res.EvalInitWNS, res.EvalBestWNS = sres.InitWNS, sres.WNS
		res.EvalInitTNS, res.EvalBestTNS = sres.InitTNS, sres.TNS

		// Like the GNN path, the final sign-off measurement runs
		// budget-free on the refined forest.
		finalPrep := *prepared
		finalCfg := prepared.Config
		finalCfg.Budget = nil
		finalPrep.Config = finalCfg
		rep2, err := flow.Signoff(&finalPrep, sres.Forest)
		if err != nil {
			return nil, fmt.Errorf("serve: job %s: %w", req.ID, err)
		}
		ref := metricsOf(rep2)
		res.Refined = &ref
		res.RefinedCorners = rep2.Corners
		finalForest = sres.Forest
	} else if req.Kind == KindTrain || req.Kind == KindRefine {
		smp := &train.Sample{
			Name:     d.Name,
			Train:    true,
			Prepared: prepared,
			Batch:    nil, // filled below
			Forest:   prepared.Forest,
			Labels:   gnn.Labels(timing),
			Baseline: rep,
		}
		smp.Batch, err = gnn.NewBatch(prepared.Design, prepared.Forest)
		if err != nil {
			return nil, fmt.Errorf("serve: job %s: %w", req.ID, err)
		}
		res.FamilyHash = family
		m, err := rn.model(req, family, smp, budget, jobSink)
		if err != nil {
			return nil, err
		}
		res.ModelHash = m.Hash()
		sc, err := train.Evaluate(m, smp)
		if err != nil {
			return nil, fmt.Errorf("serve: job %s: %w", req.ID, err)
		}
		res.R2All, res.R2Ends = sc.ArrivalAll, sc.ArrivalEnds

		if req.Kind == KindRefine {
			rres, err := rn.refine(req, m, smp, prepared, budget)
			if err != nil {
				return nil, err
			}
			res.Iterations = rres.Iterations
			res.ConvergedByRatio = rres.ConvergedByRatio
			res.EvalInitWNS, res.EvalBestWNS = rres.InitWNS, rres.BestWNS
			res.EvalInitTNS, res.EvalBestTNS = rres.InitTNS, rres.BestTNS
			res.Cutoff = rres.Cutoff
			res.Degraded = rres.Degraded
			res.Recoveries = rres.Recoveries

			// The final sign-off measurement always runs, budget-free: a
			// job whose budget expired mid-refinement still answers with
			// the sign-off of its best-so-far forest — degradation, not
			// an error.
			finalPrep := *prepared
			finalCfg := prepared.Config
			finalCfg.Budget = nil
			finalPrep.Config = finalCfg
			rep2, err := flow.Signoff(&finalPrep, rres.Forest)
			if err != nil {
				return nil, fmt.Errorf("serve: job %s: %w", req.ID, err)
			}
			ref := metricsOf(rep2)
			res.Refined = &ref
			res.RefinedCorners = rep2.Corners
			finalForest = rres.Forest
		}
		// A budget that expired during training (clean early stop, no
		// refine cutoff recorded) is still a degradation the caller must
		// see: the evaluator behind these numbers trained for fewer
		// epochs than asked.
		if reason, over := budget.ExceededWall(); over && res.Cutoff == "" {
			res.Cutoff = reason
			res.Degraded = true
		}
		if res.Degraded || res.Cutoff != "" {
			rn.Obs.Add("serve.jobs_degraded", 1)
		}
	}

	if err := guard.AtomicWriteFunc(rn.Spool.ForestPath(req.ID), func(w io.Writer) error {
		return designio.WriteForestJSON(w, finalForest)
	}); err != nil {
		return nil, fmt.Errorf("serve: job %s: %w", req.ID, err)
	}
	if err := rn.Spool.WriteResult(res, nil); err != nil {
		return nil, fmt.Errorf("serve: job %s: %w", req.ID, err)
	}
	return res, nil
}

// model returns the family's trained evaluator, training it through the
// cache's singleflight on a miss. An injected "serve.kill.train" stops
// training partway with its checkpoint on disk and surfaces
// ErrInterrupted; a corrupt training checkpoint is discarded (counted)
// and training restarts from scratch — byte-identical either way.
func (rn *Runner) model(req *JobRequest, family string, smp *train.Sample, budget *guard.Budget, jobSink *obs.Sink) (*gnn.Model, error) {
	build := func() (*gnn.Model, error) {
		samples := []*train.Sample{smp}
		if req.AugmentVariants > 0 {
			aug, err := train.Augment(smp, req.AugmentVariants, 10, req.Seed, req.Workers)
			if err != nil {
				return nil, fmt.Errorf("serve: job %s: %w", req.ID, err)
			}
			samples = append(samples, aug...)
		}
		m := gnn.NewModel(gnn.DefaultConfig(), req.Seed)
		topt := train.DefaultOptions()
		topt.Epochs = req.Epochs
		topt.Seed = req.Seed
		topt.Workers = req.Workers
		topt.Obs = jobSink
		topt.Budget = budget
		topt.Fault = rn.Fault
		ckpt := rn.Spool.TrainCkptPath(req.ID)
		topt.CheckpointPath = ckpt
		topt.Resume = fileExists(ckpt)

		interrupted := false
		if rn.Fault.Fire("serve.kill.train") {
			// Simulated process kill: run only half the epochs, leave the
			// checkpoint, report interruption. The resumed run finishes
			// the remaining epochs byte-identically.
			topt.Epochs = req.Epochs / 2
			if topt.Epochs < 1 {
				topt.Epochs = 1
			}
			interrupted = true
		}

		_, err := train.Train(m, samples, topt)
		var ce *guard.CorruptError
		if errors.As(err, &ce) {
			// A torn or tampered checkpoint must never poison the job:
			// discard it and train from scratch — the result is
			// byte-identical because training is deterministic.
			rn.Obs.Add("serve.ckpt_corrupt", 1)
			os.Remove(ckpt)
			topt.Resume = false
			m = gnn.NewModel(gnn.DefaultConfig(), req.Seed)
			_, err = train.Train(m, samples, topt)
		}
		if err != nil {
			return nil, fmt.Errorf("serve: job %s: train: %w", req.ID, err)
		}
		if interrupted {
			return nil, fmt.Errorf("serve: job %s: mid-train: %w", req.ID, ErrInterrupted)
		}
		return m, nil
	}
	if budget != nil {
		// Deadline jobs: read-only cache access. A budget may truncate
		// training mid-way (clean stop), and a truncated model must never
		// be persisted under the family key — see ModelCache.Cached.
		if m, ok := rn.Cache.Cached(family); ok {
			return m, nil
		}
		return build()
	}
	return rn.Cache.Get(family, build)
}

// refine runs the TSteiner loop with per-iteration checkpoints. An
// injected "serve.kill.refine" stops it partway (checkpoint on disk,
// ErrInterrupted); a corrupt refinement checkpoint is discarded (counted)
// and the loop restarts from the prepared forest.
func (rn *Runner) refine(req *JobRequest, m *gnn.Model, smp *train.Sample, prepared *flow.Prepared, budget *guard.Budget) (*core.Result, error) {
	ckpt := rn.Spool.RefineCkptPath(req.ID)
	opt := core.DefaultOptions()
	opt.N = req.Iters
	opt.CandidateLanes = req.Lanes
	opt.Budget = budget
	opt.Fault = rn.Fault
	opt.CheckpointPath = ckpt
	opt.Resume = fileExists(ckpt)
	if len(req.Corners) > 0 {
		opt.Corners = core.CornerTermsFor(req.Corners)
		opt.HoldGuard = true
	}

	interrupted := false
	if rn.Fault.Fire("serve.kill.refine") {
		opt.N = req.Iters / 2
		if opt.N < 1 {
			opt.N = 1
		}
		interrupted = true
	}

	run := func(o core.Options) (*core.Result, error) {
		ref, err := core.NewRefiner(m, smp.Batch, prepared, o)
		if err != nil {
			return nil, fmt.Errorf("serve: job %s: %w", req.ID, err)
		}
		return ref.Refine()
	}
	res, err := run(opt)
	var ce *guard.CorruptError
	if errors.As(err, &ce) {
		rn.Obs.Add("serve.ckpt_corrupt", 1)
		os.Remove(ckpt)
		opt.Resume = false
		res, err = run(opt)
	}
	if err != nil {
		return nil, fmt.Errorf("serve: job %s: refine: %w", req.ID, err)
	}
	if interrupted {
		return nil, fmt.Errorf("serve: job %s: mid-refine: %w", req.ID, ErrInterrupted)
	}
	return res, nil
}

// jobSink opens the job's NDJSON trace (truncating any earlier attempt's
// trace — the trace is a side channel, only the latest attempt's is
// kept).
func (rn *Runner) jobSink(id string) (*obs.Sink, func(), error) {
	// The daemon's admission path creates the job directory when it
	// spools the request; a bare Runner (CLI local mode, tests) has no
	// admission step, so Run must not assume it exists.
	if err := os.MkdirAll(rn.Spool.JobDir(id), 0o755); err != nil {
		return nil, nil, fmt.Errorf("serve: job %s: %w", id, err)
	}
	f, err := os.Create(rn.Spool.TracePath(id))
	if err != nil {
		return nil, nil, fmt.Errorf("serve: job %s: trace: %w", id, err)
	}
	sink := obs.New(f)
	return sink, func() { f.Close() }, nil
}

// metricsOf projects the deterministic columns out of a flow report.
func metricsOf(r *flow.Report) Metrics {
	return Metrics{
		WNS:           r.WNS,
		TNS:           r.TNS,
		Vios:          r.Vios,
		WirelengthDBU: r.WirelengthDBU,
		Vias:          r.Vias,
		DRVs:          r.DRVs,
		Overflow:      r.Overflow,
	}
}

// hasPlacement reports whether any cell carries a non-origin position
// (mirrors cmd/runflow's heuristic: such designs keep their placement).
func hasPlacement(d *netlist.Design) bool {
	if d.Die.Empty() || d.Die.Width() == 0 {
		return false
	}
	for ci := range d.Cells {
		p := d.Cells[ci].Pos
		if p.X != 0 || p.Y != 0 {
			return true
		}
	}
	return false
}

func fileExists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}
