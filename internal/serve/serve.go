// Package serve is tsteinerd: refinement-as-a-service over the repo's
// robustness substrates. A long-lived stdlib net/http daemon accepts
// designs as designio JSON, runs sign-off / train / refine jobs through a
// bounded work queue, and hands results plus per-job obs NDJSON traces
// back. The headline property is robustness — no request can crash the
// process, hang it, or make its results depend on load:
//
//   - Admission control: the queue is bounded; a full queue answers
//     429 with Retry-After instead of buffering unboundedly, and a
//     draining server answers 503 the same way.
//   - Per-job budgets: every job may carry a wall-clock deadline
//     (guard.Budget). Training and refinement degrade to best-so-far
//     with Result.Cutoff — a deadline is never a 500.
//   - Containment: a panicking job is caught as a *par.PanicError and
//     marked failed; the worker and the server keep running.
//   - Crash safety: requests are spooled in CRC-checksummed envelopes
//     before they are admitted, train/refine progress is checkpointed
//     (guard.WriteCheckpoint), and a restarted server re-enqueues every
//     non-terminal job it finds in the spool. A job killed mid-run
//     resumes from its checkpoint and produces artifacts byte-identical
//     to an uninterrupted run — the determinism invariant, extended to
//     the concurrent server (TestServeJobs* gates).
//   - Idempotency: job IDs are client-chosen; resubmitting an ID the
//     server already knows returns its current status instead of running
//     the job again, so a client retry storm never double-runs work.
//   - Train once, refine many: trained evaluators are cached in memory
//     and on disk, keyed by a design-family hash (canonical design bytes
//   - the training inputs), with singleflight so concurrent jobs of
//     one family train exactly once.
//
// Determinism note: job *artifacts* (result.json, forest.json) are pure
// functions of the request and are byte-identical at any queue depth,
// worker count, submission order, or kill/restart point. Status records,
// traces and metrics are side channels and carry wall-clock facts.
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"

	"tsteiner/internal/sta"
)

// Job kinds. Signoff runs the baseline pipeline (place if needed, Steiner,
// route, STA) and reports sign-off metrics. Train additionally fits the
// timing evaluator for the design family and caches it. Refine runs the
// full TSteiner loop — train (or reuse the cached evaluator), refine
// Steiner points, and re-run sign-off on the refined forest.
const (
	KindSignoff = "signoff"
	KindTrain   = "train"
	KindRefine  = "refine"
)

// Job states. Queued and Running are transient; Interrupted means the
// process died (or an injected kill fired) mid-job — the job is spooled
// with its checkpoints and will resume on the next server start. Done and
// Failed are terminal.
const (
	StateQueued      = "queued"
	StateRunning     = "running"
	StateInterrupted = "interrupted"
	StateDone        = "done"
	StateFailed      = "failed"
)

// ErrInterrupted marks a job stopped mid-run with resumable state on disk
// (the simulated process kill of the fault matrix). The server parks the
// job as StateInterrupted; a restart scan re-enqueues and resumes it.
var ErrInterrupted = errors.New("serve: job interrupted")

// JobRequest is the POST /jobs body. ID is the client-chosen idempotency
// key and spool directory name; Design is the designio design JSON,
// embedded verbatim.
type JobRequest struct {
	ID   string
	Kind string // KindSignoff | KindTrain | KindRefine

	// Design is the designio JSON of the design to operate on. Clients
	// building requests from files may set DesignFile locally; it must be
	// resolved (inlined into Design) before submission — the server
	// rejects requests that still reference a client-side path.
	Design     json.RawMessage
	DesignFile string `json:",omitempty"`

	// Seed drives every random choice of the job (0 = 2023, the CLI
	// default). Epochs/AugmentVariants shape evaluator training, Iters
	// and Lanes the refinement loop; zero values take the documented
	// defaults in Normalize.
	Seed            int64
	Epochs          int
	Iters           int
	Lanes           int
	AugmentVariants int

	// Workers bounds the job's internal parallel fan-outs
	// (0 = all CPUs). Results are byte-identical at any value.
	Workers int

	// Shards > 0 switches a refine job to the sharded incremental
	// refiner (internal/shard) instead of the GNN loop: no evaluator is
	// trained, Iters becomes the round budget, and the result is
	// byte-identical at any shard count. 0 (the default) keeps the GNN
	// refinement path.
	Shards int

	// DeadlineMS is the per-job wall-clock budget in milliseconds
	// (0 = unlimited). Training and refinement degrade to best-so-far
	// (JobResult.Cutoff); budget expiry during a flow phase fails the
	// job cleanly with a typed reason.
	DeadlineMS int64

	// Corners lists extra sign-off corners. When set, the job's sign-off
	// runs report the per-corner matrix (JobResult.BaselineCorners /
	// RefinedCorners), GNN refinement optimizes the matrix penalty under
	// the hold guard, and sharded refinement takes its round verdicts on
	// the matrix. Empty = typical corner only; corners do not enter the
	// model-family hash because training labels stay typical-corner.
	Corners []sta.Corner `json:",omitempty"`
}

// Normalize applies the documented defaults in place: Seed 0 → 2023,
// Epochs ≤ 0 → 60, Iters ≤ 0 → 25, AugmentVariants 0 → 2 (use a negative
// value for "no augmentation"). It must run before FamilyHash so that
// spelled-out defaults and omitted fields land in the same family.
func (r *JobRequest) Normalize() {
	if r.Seed == 0 {
		r.Seed = 2023
	}
	if r.Epochs <= 0 {
		r.Epochs = 60
	}
	if r.Iters <= 0 {
		r.Iters = 25
	}
	// A negative AugmentVariants means "no augmentation" and must stay
	// negative: Normalize runs again on the server after the client's
	// JSON roundtrip, so every mapping here has to be idempotent — if -1
	// collapsed to 0 it would re-normalize to the default 2 on arrival
	// and silently change the training recipe.
	if r.AugmentVariants == 0 {
		r.AugmentVariants = 2
	}
	if r.Workers < 0 {
		r.Workers = 1
	}
	if r.Lanes < 0 {
		r.Lanes = 0
	}
	if r.DeadlineMS < 0 {
		r.DeadlineMS = 0
	}
	if r.Shards < 0 {
		r.Shards = 0 // every "unsharded" spelling is the GNN path
	}
}

// maxima keeping one hostile request from monopolizing the server.
const (
	maxIDLen   = 64
	maxEpochs  = 1 << 20
	maxIters   = 1 << 20
	maxShards  = 1 << 12
	maxCorners = 8
)

// Validate rejects malformed requests with a descriptive error. The ID
// doubles as a spool directory name, so its charset is restricted and
// dot-only names (".", "..") are refused outright.
func (r *JobRequest) Validate() error {
	if r.ID == "" {
		return fmt.Errorf("serve: job ID is required")
	}
	if len(r.ID) > maxIDLen {
		return fmt.Errorf("serve: job ID longer than %d bytes", maxIDLen)
	}
	alnum := false
	for i := 0; i < len(r.ID); i++ {
		c := r.ID[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
			alnum = true
		case c == '.' || c == '_' || c == '-':
		default:
			return fmt.Errorf("serve: job ID %q: only [a-zA-Z0-9._-] allowed", r.ID)
		}
	}
	if !alnum {
		return fmt.Errorf("serve: job ID %q must contain a letter or digit", r.ID)
	}
	switch r.Kind {
	case KindSignoff, KindTrain, KindRefine:
	default:
		return fmt.Errorf("serve: unknown job kind %q (want %s|%s|%s)", r.Kind, KindSignoff, KindTrain, KindRefine)
	}
	if len(r.Design) == 0 {
		return fmt.Errorf("serve: job %s has no design", r.ID)
	}
	if r.DesignFile != "" {
		return fmt.Errorf("serve: job %s references a client-side design file; inline the design before submitting", r.ID)
	}
	if r.Epochs > maxEpochs || r.Iters > maxIters {
		return fmt.Errorf("serve: job %s exceeds the per-job work bounds (epochs %d, iters %d)", r.ID, r.Epochs, r.Iters)
	}
	if r.Shards > maxShards {
		return fmt.Errorf("serve: job %s asks for %d shards (max %d)", r.ID, r.Shards, maxShards)
	}
	if len(r.Corners) > maxCorners {
		return fmt.Errorf("serve: job %s asks for %d corners (max %d)", r.ID, len(r.Corners), maxCorners)
	}
	seen := make(map[string]bool, len(r.Corners))
	for _, c := range r.Corners {
		if err := c.Validate(); err != nil {
			return fmt.Errorf("serve: job %s: %w", r.ID, err)
		}
		if seen[c.Name] {
			return fmt.Errorf("serve: job %s: duplicate corner %q", r.ID, c.Name)
		}
		seen[c.Name] = true
	}
	return nil
}

// Metrics are the deterministic sign-off numbers of one flow run — the
// Table II columns, with wall-clock fields deliberately excluded so the
// record is byte-identical across runs.
type Metrics struct {
	WNS, TNS      float64
	Vios          int
	WirelengthDBU int64
	Vias          int
	DRVs          int
	Overflow      int
}

// JobResult is a job's deterministic outcome: a pure function of the
// request bytes. Anything wall-clock-shaped (runtimes, cache hit/miss,
// attempt counts) lives in JobStatus or the obs trace instead.
type JobResult struct {
	ID     string
	Kind   string
	Design string
	Seed   int64

	// Baseline is the sign-off of the unrefined design (every kind).
	Baseline Metrics
	// BaselineCorners is the baseline's multi-corner sign-off matrix
	// (requests with Corners set only).
	BaselineCorners []sta.CornerMetrics `json:",omitempty"`

	// Evaluator facts (train and refine kinds).
	ModelHash  string  `json:",omitempty"`
	R2All      float64 `json:",omitempty"`
	R2Ends     float64 `json:",omitempty"`
	FamilyHash string  `json:",omitempty"`

	// Refinement facts (refine kind).
	Refined *Metrics `json:",omitempty"`
	// RefinedCorners is the refined forest's multi-corner sign-off
	// matrix (refine requests with Corners set only).
	RefinedCorners   []sta.CornerMetrics `json:",omitempty"`
	Iterations       int                 `json:",omitempty"`
	ConvergedByRatio bool                `json:",omitempty"`
	EvalInitWNS      float64             `json:",omitempty"`
	EvalBestWNS      float64             `json:",omitempty"`
	EvalInitTNS      float64             `json:",omitempty"`
	EvalBestTNS      float64             `json:",omitempty"`

	// Degradation facts: a budget cutoff or exhausted numerical
	// recoveries returns the best solution so far, recorded here —
	// degradation is an answer, never an error.
	Cutoff     string `json:",omitempty"`
	Degraded   bool   `json:",omitempty"`
	Recoveries int    `json:",omitempty"`
}

// JobStatus is the GET /jobs/{id} body: the job's lifecycle state plus
// its result when terminal. Attempts counts run starts (resumes
// included), so it depends on kill history — status is not part of the
// byte-identity contract, the result is.
type JobStatus struct {
	ID       string
	Kind     string
	State    string
	Error    string `json:",omitempty"`
	Attempts int
	Result   *JobResult `json:",omitempty"`
}

// familyHashVersion tags the hash input so any change to the training
// recipe (augment geometry, evaluator config, learning rate) that is not
// captured by the hashed fields can invalidate old cache entries by
// bumping the tag.
const familyHashVersion = "tsteiner-family-v1"

// FamilyHash keys the model cache: a digest of the canonical design bytes
// and every training input that shapes the evaluator (seed, epochs,
// augmentation). Jobs that differ only in formatting of the design JSON,
// worker count, lanes, or deadline share a family — train once, refine
// many.
func FamilyHash(canonicalDesign []byte, seed int64, epochs, augmentVariants int) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s|%d|%d|%d|", familyHashVersion, seed, epochs, augmentVariants)
	h.Write(canonicalDesign)
	return hex.EncodeToString(h.Sum(nil))[:24]
}
