package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime/debug"
	"sort"
	"strconv"
	"sync"
	"time"

	"tsteiner/internal/guard"
	"tsteiner/internal/guard/fault"
	"tsteiner/internal/obs"
	"tsteiner/internal/par"
)

// Options configure a daemon.
type Options struct {
	// SpoolDir is the crash-safe job store (required).
	SpoolDir string
	// QueueDepth bounds the admission queue (jobs accepted but not yet
	// running). 0 = 8.
	QueueDepth int
	// JobWorkers is the number of jobs executed concurrently. 0 = 1 —
	// jobs are CPU-bound, and intra-job parallelism (JobRequest.Workers)
	// is usually the better lever on a small host.
	JobWorkers int
	// RetryAfter is the hint returned with 429/503 responses. 0 = 1s.
	RetryAfter time.Duration
	// DrainGrace bounds how long Close waits for in-flight jobs before
	// giving up on them (they stay resumable in the spool). 0 = 60s.
	DrainGrace time.Duration
	// MaxBodyBytes bounds a submitted request body. 0 = 64 MiB.
	MaxBodyBytes int64
	// Obs is the server-wide telemetry sink, also mounted at /metrics,
	// /healthz, /trace and /debug/pprof. May be nil.
	Obs *obs.Sink
	// Fault is the deterministic fault injector (nil in production).
	Fault *fault.Injector
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.QueueDepth <= 0 {
		out.QueueDepth = 8
	}
	if out.JobWorkers <= 0 {
		out.JobWorkers = 1
	}
	if out.RetryAfter <= 0 {
		out.RetryAfter = time.Second
	}
	if out.DrainGrace <= 0 {
		out.DrainGrace = 60 * time.Second
	}
	if out.MaxBodyBytes <= 0 {
		out.MaxBodyBytes = 64 << 20
	}
	return out
}

// job is one admitted request and its in-memory lifecycle. state/err/
// result/attempts are guarded by the server mutex; done is closed exactly
// once, on reaching a state no worker will touch again (terminal or
// interrupted).
type job struct {
	req  *JobRequest
	seq  int
	done chan struct{}

	state    string
	errMsg   string
	attempts int
	result   *JobResult
}

// Server is the tsteinerd daemon: spool + registry + bounded queue +
// workers + HTTP surface.
type Server struct {
	opt    Options
	spool  *Spool
	runner *Runner
	sink   *obs.Sink

	mu       sync.Mutex
	jobs     map[string]*job
	seq      int
	draining bool

	queue  chan *job
	stop   chan struct{}
	wg     sync.WaitGroup // workers + recovery feeder
	httpWG sync.WaitGroup
	ln     net.Listener
	srv    *http.Server
}

// New builds a server over its spool, recovers every non-terminal spooled
// job, and starts the workers — but does not listen; call Serve (or use
// Handler with an external listener) for the HTTP surface. Recovery is
// deterministic: survivors are re-enqueued in sorted ID order, terminal
// jobs are loaded with their CRC-checked results, and a job whose spooled
// request is torn is marked failed rather than guessed at.
func New(opt Options) (*Server, error) {
	sp, err := OpenSpool(opt.SpoolDir)
	if err != nil {
		return nil, err
	}
	o := opt.withDefaults()
	s := &Server{
		opt:    o,
		spool:  sp,
		runner: NewRunner(sp, o.Obs, o.Fault),
		sink:   o.Obs,
		jobs:   map[string]*job{},
		queue:  make(chan *job, o.QueueDepth),
		stop:   make(chan struct{}),
	}
	pending, err := s.scan()
	if err != nil {
		return nil, err
	}
	// Feed survivors from a goroutine: there may be more of them than
	// the queue holds, and workers only start draining it below.
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for _, jb := range pending {
			select {
			case s.queue <- jb:
			case <-s.stop:
				return
			}
		}
	}()
	for i := 0; i < o.JobWorkers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// scan rebuilds the registry from the spool. Trust order: a CRC-valid
// result.json means done; a status of "failed" means failed; anything
// else — including a torn status or a job killed while "running" — is a
// survivor to re-run. Re-running a finished job whose status was lost is
// byte-identical; trusting a torn record would not be.
func (s *Server) scan() ([]*job, error) {
	ids, err := s.spool.ListJobs()
	if err != nil {
		return nil, err
	}
	var pending []*job
	for _, id := range ids {
		req, err := s.spool.ReadRequest(id)
		if err != nil {
			s.sink.Add("serve.spool_corrupt", 1)
			jb := s.register(&JobRequest{ID: id})
			s.finish(jb, nil, fmt.Errorf("serve: job %s: spooled request unreadable: %w", id, err))
			continue
		}
		if req == nil {
			// A directory without a request record: admission crashed
			// before the CRC envelope landed. Nothing trustworthy to run.
			s.spool.Remove(id)
			continue
		}
		jb := s.register(req)
		if res, err := s.spool.ReadResult(id); err == nil && res != nil {
			st, _ := s.spool.ReadStatus(id)
			jb.state = StateDone
			jb.attempts = st.Attempts
			jb.result = res
			close(jb.done)
			continue
		}
		if st, ok := s.spool.ReadStatus(id); ok && st.State == StateFailed {
			jb.state = StateFailed
			jb.errMsg = st.Error
			jb.attempts = st.Attempts
			close(jb.done)
			continue
		}
		st, _ := s.spool.ReadStatus(id)
		jb.attempts = st.Attempts
		jb.state = StateQueued
		s.spool.WriteStatus(id, statusRecord{State: StateQueued, Attempts: jb.attempts})
		s.sink.Add("serve.resumed", 1)
		pending = append(pending, jb)
	}
	return pending, nil
}

// register adds a job to the registry (caller need not hold the lock).
func (s *Server) register(req *JobRequest) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	jb := &job{req: req, seq: s.seq, done: make(chan struct{}), state: StateQueued}
	s.jobs[req.ID] = jb
	return jb
}

// worker drains the queue until drain. One job failing, panicking or
// stalling never takes the worker down.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.stop:
			return
		case jb := <-s.queue:
			s.runOne(jb)
		}
	}
}

// runOne executes one job with panic containment and persists every state
// transition before it is visible in memory, so a kill between any two
// statements leaves the spool recoverable.
func (s *Server) runOne(jb *job) {
	s.mu.Lock()
	jb.state = StateRunning
	jb.attempts++
	attempts := jb.attempts
	s.mu.Unlock()
	s.spool.WriteStatus(jb.req.ID, statusRecord{State: StateRunning, Attempts: attempts})
	s.sink.Gauge("serve.queue_depth", float64(len(s.queue)))

	res, err := s.runContained(jb)
	s.finish(jb, res, err)
}

// runContained is the containment boundary: a panicking job comes back as
// a *par.PanicError, in the same shape the parallel substrate uses.
func (s *Server) runContained(jb *job) (res *JobResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			s.sink.Add("serve.panics", 1)
			err = &par.PanicError{Index: jb.seq, Value: r, Stack: debug.Stack()}
		}
	}()
	return s.runner.Run(jb.req)
}

// finish persists a job's terminal (or interrupted) state and wakes
// waiters. Interrupted jobs keep their done channel open on a live
// server only until finish marks them — they resume on the next server
// start, so for THIS process they are final: close done so waiters see
// the state instead of hanging.
func (s *Server) finish(jb *job, res *JobResult, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case err == nil:
		jb.state = StateDone
		jb.result = res
		s.sink.Add("serve.jobs_done", 1)
	case errors.Is(err, ErrInterrupted):
		jb.state = StateInterrupted
		jb.errMsg = err.Error()
		s.sink.Add("serve.jobs_interrupted", 1)
	default:
		jb.state = StateFailed
		jb.errMsg = err.Error()
		s.sink.Add("serve.jobs_failed", 1)
	}
	s.spool.WriteStatus(jb.req.ID, statusRecord{State: jb.state, Error: jb.errMsg, Attempts: jb.attempts})
	select {
	case <-jb.done:
	default:
		close(jb.done)
	}
}

// status snapshots a job's public view under the lock.
func (s *Server) status(jb *job) JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	return JobStatus{
		ID:       jb.req.ID,
		Kind:     jb.req.Kind,
		State:    jb.state,
		Error:    jb.errMsg,
		Attempts: jb.attempts,
		Result:   jb.result,
	}
}

// Handler returns the daemon's HTTP surface:
//
//	POST /jobs            submit (202; 200 on idempotent resubmit;
//	                      409 same ID, different payload; 429 queue
//	                      full + Retry-After; 503 draining + Retry-After)
//	GET  /jobs            all job statuses, sorted by ID
//	GET  /jobs/{id}       one status; ?wait=DUR long-polls for a
//	                      terminal state, bounded by a guard.Budget
//	GET  /jobs/{id}/forest  the Steiner-forest artifact (designio JSON)
//	GET  /jobs/{id}/trace   the job's NDJSON obs trace
//	/metrics /healthz /trace /debug/pprof/*  the obs surface
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/forest", s.handleForest)
	mux.HandleFunc("GET /jobs/{id}/trace", s.handleTraceFile)
	mux.Handle("/", obs.Handler(s.sink))
	return mux
}

func (s *Server) retryAfterSeconds() string {
	secs := int(s.opt.RetryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.opt.MaxBodyBytes)
	req := new(JobRequest)
	if err := json.NewDecoder(body).Decode(req); err != nil {
		http.Error(w, "serve: bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	req.Normalize()
	if err := req.Validate(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.sink.Add("serve.submits", 1)

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.sink.Add("serve.rejected_draining", 1)
		w.Header().Set("Retry-After", s.retryAfterSeconds())
		http.Error(w, "serve: draining", http.StatusServiceUnavailable)
		return
	}
	if existing, ok := s.jobs[req.ID]; ok {
		same := sameRequest(existing.req, req)
		s.mu.Unlock()
		if !same {
			http.Error(w, fmt.Sprintf("serve: job %s already exists with a different request", req.ID), http.StatusConflict)
			return
		}
		// Idempotent resubmit: report the existing job, run nothing.
		s.sink.Add("serve.deduped", 1)
		s.writeStatus(w, http.StatusOK, s.statusByID(req.ID))
		return
	}

	// Admission: spool first (crash-safe), then a non-blocking enqueue;
	// a full queue un-spools and turns the request away with a hint.
	if err := s.spool.WriteRequest(req, s.opt.Fault); err != nil {
		s.mu.Unlock()
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.seq++
	jb := &job{req: req, seq: s.seq, done: make(chan struct{}), state: StateQueued}
	select {
	case s.queue <- jb:
		s.jobs[req.ID] = jb
		s.spool.WriteStatus(req.ID, statusRecord{State: StateQueued})
		s.mu.Unlock()
		s.sink.Add("serve.admitted", 1)
		s.writeStatus(w, http.StatusAccepted, JobStatus{ID: req.ID, Kind: req.Kind, State: StateQueued})
	default:
		s.spool.Remove(req.ID)
		s.mu.Unlock()
		s.sink.Add("serve.rejected_full", 1)
		w.Header().Set("Retry-After", s.retryAfterSeconds())
		http.Error(w, fmt.Sprintf("serve: queue full (%d jobs)", s.opt.QueueDepth), http.StatusTooManyRequests)
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ids := make([]string, 0, len(s.jobs))
	for id := range s.jobs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]JobStatus, 0, len(ids))
	for _, id := range ids {
		jb := s.jobs[id]
		out = append(out, JobStatus{
			ID: jb.req.ID, Kind: jb.req.Kind, State: jb.state,
			Error: jb.errMsg, Attempts: jb.attempts, Result: jb.result,
		})
	}
	s.mu.Unlock()
	s.writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	jb := s.lookup(w, r)
	if jb == nil {
		return
	}
	if wq := r.URL.Query().Get("wait"); wq != "" {
		d, err := time.ParseDuration(wq)
		if err != nil || d < 0 {
			http.Error(w, "serve: wait must be a non-negative duration", http.StatusBadRequest)
			return
		}
		// The long-poll is bounded by a per-request budget bridged to
		// context cancellation — the handler can never hang past it.
		b := &guard.Budget{Wall: d}
		ctx, cancel := b.Context(r.Context())
		defer cancel()
		select {
		case <-jb.done:
		case <-ctx.Done():
		}
	}
	s.writeStatus(w, http.StatusOK, s.status(jb))
}

func (s *Server) handleForest(w http.ResponseWriter, r *http.Request) {
	jb := s.lookup(w, r)
	if jb == nil {
		return
	}
	st := s.status(jb)
	if st.State != StateDone {
		http.Error(w, fmt.Sprintf("serve: job %s is %s, artifact not ready", st.ID, st.State), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	http.ServeFile(w, r, s.spool.ForestPath(st.ID))
}

func (s *Server) handleTraceFile(w http.ResponseWriter, r *http.Request) {
	jb := s.lookup(w, r)
	if jb == nil {
		return
	}
	if _, err := os.Stat(s.spool.TracePath(jb.req.ID)); err != nil {
		http.Error(w, "serve: no trace recorded", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	http.ServeFile(w, r, s.spool.TracePath(jb.req.ID))
}

func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *job {
	id := r.PathValue("id")
	s.mu.Lock()
	jb := s.jobs[id]
	s.mu.Unlock()
	if jb == nil {
		http.Error(w, fmt.Sprintf("serve: unknown job %q", id), http.StatusNotFound)
		return nil
	}
	return jb
}

func (s *Server) statusByID(id string) JobStatus {
	s.mu.Lock()
	jb := s.jobs[id]
	s.mu.Unlock()
	if jb == nil {
		return JobStatus{ID: id}
	}
	return s.status(jb)
}

func (s *Server) writeStatus(w http.ResponseWriter, code int, st JobStatus) {
	s.writeJSON(w, code, st)
}

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(v)
}

// sameRequest compares two requests for idempotency purposes by their
// canonical JSON bytes (both already normalized).
func sameRequest(a, b *JobRequest) bool {
	ab, aerr := json.Marshal(a)
	bb, berr := json.Marshal(b)
	return aerr == nil && berr == nil && string(ab) == string(bb)
}

// Serve binds addr (host:port; port 0 picks one) and serves the Handler
// in the background until Close.
func (s *Server) Serve(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("serve: listen %s: %w", addr, err)
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.Handler()}
	s.httpWG.Add(1)
	go func() {
		defer s.httpWG.Done()
		s.srv.Serve(ln)
	}()
	return nil
}

// Addr returns the bound address ("" before Serve).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// URL returns the server's base URL ("" before Serve).
func (s *Server) URL() string {
	if s.ln == nil {
		return ""
	}
	return "http://" + s.Addr()
}

// Close drains gracefully: new submits are turned away with 503, workers
// finish their in-flight jobs (bounded by DrainGrace), still-queued jobs
// stay spooled as queued — the next server over this spool resumes them —
// and the HTTP listener shuts down last, so /metrics answers scrapes for
// the whole drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	s.mu.Unlock()

	close(s.stop)
	workersDone := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(workersDone)
	}()
	var drainErr error
	select {
	case <-workersDone:
	case <-time.After(s.opt.DrainGrace):
		drainErr = fmt.Errorf("serve: drain grace %s expired with jobs still running; they remain resumable in the spool", s.opt.DrainGrace)
	}

	if s.srv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		if err := s.srv.Shutdown(ctx); err != nil {
			s.srv.Close()
		}
		s.httpWG.Wait()
	}
	return drainErr
}
