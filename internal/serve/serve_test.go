package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"tsteiner/internal/designio"
	"tsteiner/internal/guard/fault"
	"tsteiner/internal/lib"
	"tsteiner/internal/obs"
	"tsteiner/internal/synth"
)

// designJSON generates a tiny seeded design and returns its designio
// bytes. Distinct seeds give distinct design families.
func designJSON(t *testing.T, seed int64) json.RawMessage {
	t.Helper()
	d, err := synth.Generate(synth.Spec{
		Name: fmt.Sprintf("srv%d", seed), Seed: seed,
		Cells: 30, Endpoints: 6, PIs: 3, Depth: 4, ClockNS: 1.0,
	}, lib.Default())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := designio.WriteJSON(&buf, d); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func cloneReq(r *JobRequest) *JobRequest {
	c := *r
	c.Design = append(json.RawMessage(nil), r.Design...)
	return &c
}

// matrixJobs is the job mix of the byte-identity gate: two refines of one
// family at different worker counts, a train of a second family, and a
// plain sign-off.
func matrixJobs(t *testing.T) []*JobRequest {
	dA := designJSON(t, 5)
	dB := designJSON(t, 9)
	return []*JobRequest{
		{ID: "a-refine-1", Kind: KindRefine, Design: dA, Seed: 7, Epochs: 4, Iters: 3, AugmentVariants: -1, Workers: 2},
		{ID: "a-refine-2", Kind: KindRefine, Design: dA, Seed: 7, Epochs: 4, Iters: 3, AugmentVariants: -1, Workers: 1},
		{ID: "b-train", Kind: KindTrain, Design: dB, Seed: 11, Epochs: 3, AugmentVariants: -1},
		{ID: "a-signoff", Kind: KindSignoff, Design: dA},
	}
}

// artifacts reads a job's byte-identity artifacts out of a spool.
func artifacts(t *testing.T, sp *Spool, id string) (result, forest []byte) {
	t.Helper()
	result, err := os.ReadFile(sp.resultPath(id))
	if err != nil {
		t.Fatalf("job %s: %v", id, err)
	}
	forest, err = os.ReadFile(sp.ForestPath(id))
	if err != nil {
		t.Fatalf("job %s: %v", id, err)
	}
	return result, forest
}

// runSerial runs the jobs one by one through a bare Runner in a fresh
// spool — the reference the concurrent server must match byte for byte.
func runSerial(t *testing.T, reqs []*JobRequest) (*Spool, map[string][2][]byte) {
	t.Helper()
	sp, err := OpenSpool(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rn := NewRunner(sp, nil, nil)
	ref := map[string][2][]byte{}
	for _, r := range reqs {
		c := cloneReq(r)
		c.Normalize()
		if err := c.Validate(); err != nil {
			t.Fatal(err)
		}
		if _, err := rn.Run(c); err != nil {
			t.Fatalf("serial %s: %v", c.ID, err)
		}
		res, forest := artifacts(t, sp, c.ID)
		ref[c.ID] = [2][]byte{res, forest}
	}
	return sp, ref
}

func startServer(t *testing.T, opt Options) *Server {
	t.Helper()
	if opt.SpoolDir == "" {
		opt.SpoolDir = t.TempDir()
	}
	s, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Serve("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func waitDone(t *testing.T, c *Client, id string) *JobStatus {
	t.Helper()
	st, err := c.Wait(id, 120*time.Second)
	if err != nil {
		t.Fatalf("wait %s: %v", id, err)
	}
	return st
}

func counterOf(s *obs.Sink, name string) int64 {
	for _, c := range s.Snapshot().Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// TestServeJobsConcurrentByteIdentical is the PR's hard gate: the same
// job mix, submitted concurrently to servers at different queue depths
// and worker counts, must produce result.json and forest.json artifacts
// byte-identical to the jobs run serially through a bare Runner.
func TestServeJobsConcurrentByteIdentical(t *testing.T) {
	reqs := matrixJobs(t)
	_, ref := runSerial(t, reqs)

	// The two refines of family A differ only in ID and worker count, so
	// their forests must already agree serially.
	if !bytes.Equal(ref["a-refine-1"][1], ref["a-refine-2"][1]) {
		t.Fatal("serial refines of one family disagree across worker counts")
	}

	for _, cfg := range []struct {
		workers, depth int
	}{
		{1, 2},
		{3, 8},
	} {
		t.Run(fmt.Sprintf("w%dq%d", cfg.workers, cfg.depth), func(t *testing.T) {
			s := startServer(t, Options{JobWorkers: cfg.workers, QueueDepth: cfg.depth})
			// Reversed submit order, all at once: arrival order and
			// scheduling must not show in the artifacts.
			var wg sync.WaitGroup
			for i := len(reqs) - 1; i >= 0; i-- {
				r := cloneReq(reqs[i])
				wg.Add(1)
				go func() {
					defer wg.Done()
					c := &Client{Base: s.URL(), Retries: 20, BaseDelay: 20 * time.Millisecond}
					if _, err := c.Submit(r); err != nil {
						t.Errorf("submit %s: %v", r.ID, err)
					}
				}()
			}
			wg.Wait()
			c := &Client{Base: s.URL()}
			for _, r := range reqs {
				st := waitDone(t, c, r.ID)
				if st.State != StateDone {
					t.Fatalf("job %s: state %s (error %q)", r.ID, st.State, st.Error)
				}
				res, forest := artifacts(t, s.spool, r.ID)
				if !bytes.Equal(res, ref[r.ID][0]) {
					t.Errorf("job %s: result.json differs from serial run", r.ID)
				}
				if !bytes.Equal(forest, ref[r.ID][1]) {
					t.Errorf("job %s: forest.json differs from serial run", r.ID)
				}
				// The client-visible artifact must be the spooled bytes.
				got, err := c.Forest(r.ID)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, forest) {
					t.Errorf("job %s: served forest differs from spooled artifact", r.ID)
				}
			}
		})
	}
}

// TestServeKillRestartResume kills jobs mid-train and mid-refine (the
// injected process kill: half the work done, checkpoint on disk,
// ErrInterrupted), restarts a server over the same spool, and requires
// the resumed jobs' artifacts to be byte-identical to never-interrupted
// serial runs.
func TestServeKillRestartResume(t *testing.T) {
	dA := designJSON(t, 5)
	dB := designJSON(t, 9)
	reqs := []*JobRequest{
		{ID: "kill-refine", Kind: KindRefine, Design: dA, Seed: 7, Epochs: 4, Iters: 3, AugmentVariants: -1},
		{ID: "kill-train", Kind: KindTrain, Design: dB, Seed: 11, Epochs: 4, AugmentVariants: -1},
	}
	_, ref := runSerial(t, reqs)

	spool := t.TempDir()
	inj := fault.New(1)
	inj.Arm("serve.kill.refine", 1)
	inj.Arm("serve.kill.train", 2) // consult 1 is kill-refine's own training
	sink := obs.New(io.Discard)
	s1 := startServer(t, Options{SpoolDir: spool, JobWorkers: 1, Fault: inj, Obs: sink})
	c := &Client{Base: s1.URL()}
	for _, r := range reqs {
		if _, err := c.Submit(cloneReq(r)); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range reqs {
		st := waitDone(t, c, r.ID)
		if st.State != StateInterrupted {
			t.Fatalf("job %s: want interrupted, got %s (error %q)", r.ID, st.State, st.Error)
		}
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart over the same spool, faults gone: the scan re-enqueues both
	// survivors and they resume from their checkpoints.
	sink2 := obs.New(io.Discard)
	s2 := startServer(t, Options{SpoolDir: spool, JobWorkers: 1, Obs: sink2})
	c2 := &Client{Base: s2.URL()}
	for _, r := range reqs {
		st := waitDone(t, c2, r.ID)
		if st.State != StateDone {
			t.Fatalf("resumed job %s: state %s (error %q)", r.ID, st.State, st.Error)
		}
		if st.Attempts < 2 {
			t.Errorf("resumed job %s: want >= 2 attempts, got %d", r.ID, st.Attempts)
		}
		res, forest := artifacts(t, s2.spool, r.ID)
		if !bytes.Equal(res, ref[r.ID][0]) {
			t.Errorf("job %s: resumed result.json differs from uninterrupted run", r.ID)
		}
		if !bytes.Equal(forest, ref[r.ID][1]) {
			t.Errorf("job %s: resumed forest.json differs from uninterrupted run", r.ID)
		}
	}
	if got := counterOf(sink2, "serve.resumed"); got != 2 {
		t.Errorf("serve.resumed = %d, want 2", got)
	}
}

// TestServeResumeCorruptCheckpoint truncates an interrupted job's
// refinement checkpoint before the restart: the server must detect the
// torn bytes (CRC), discard them, re-run the job from scratch and still
// produce byte-identical artifacts — a corrupt checkpoint costs work,
// never correctness.
func TestServeResumeCorruptCheckpoint(t *testing.T) {
	req := &JobRequest{ID: "corrupt-ckpt", Kind: KindRefine, Design: designJSON(t, 5),
		Seed: 7, Epochs: 3, Iters: 3, AugmentVariants: -1}
	_, ref := runSerial(t, []*JobRequest{req})

	spool := t.TempDir()
	inj := fault.New(1)
	inj.Arm("serve.kill.refine", 1)
	s1 := startServer(t, Options{SpoolDir: spool, Fault: inj})
	c := &Client{Base: s1.URL()}
	if _, err := c.Submit(cloneReq(req)); err != nil {
		t.Fatal(err)
	}
	if st := waitDone(t, c, req.ID); st.State != StateInterrupted {
		t.Fatalf("want interrupted, got %s (%s)", st.State, st.Error)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	ckpt := s1.spool.RefineCkptPath(req.ID)
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatalf("no refine checkpoint after interrupt: %v", err)
	}
	if err := os.WriteFile(ckpt, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	sink := obs.New(io.Discard)
	s2 := startServer(t, Options{SpoolDir: spool, Obs: sink})
	c2 := &Client{Base: s2.URL()}
	st := waitDone(t, c2, req.ID)
	if st.State != StateDone {
		t.Fatalf("want done, got %s (%s)", st.State, st.Error)
	}
	if got := counterOf(sink, "serve.ckpt_corrupt"); got == 0 {
		t.Error("corrupt checkpoint was not counted")
	}
	res, forest := artifacts(t, s2.spool, req.ID)
	if !bytes.Equal(res, ref[req.ID][0]) || !bytes.Equal(forest, ref[req.ID][1]) {
		t.Error("artifacts after corrupt-checkpoint recovery differ from clean run")
	}
}

// TestServeJobDeadlineDegrades stalls one refinement iteration past the
// job's budget: the job must come back done — best-so-far forest, Cutoff
// recorded — never failed.
func TestServeJobDeadlineDegrades(t *testing.T) {
	inj := fault.New(1)
	inj.ArmStall("core.stall", 2, 3*time.Second)
	s := startServer(t, Options{Fault: inj})
	c := &Client{Base: s.URL()}
	req := &JobRequest{ID: "deadline", Kind: KindRefine, Design: designJSON(t, 5),
		Seed: 7, Epochs: 2, Iters: 6, AugmentVariants: -1, DeadlineMS: 2000}
	if _, err := c.Submit(req); err != nil {
		t.Fatal(err)
	}
	st := waitDone(t, c, req.ID)
	if st.State != StateDone {
		t.Fatalf("deadline job: want done (degraded), got %s (%s)", st.State, st.Error)
	}
	if st.Result == nil || st.Result.Cutoff == "" {
		t.Fatalf("deadline job: no cutoff recorded: %+v", st.Result)
	}
	if st.Result.Iterations >= req.Iters {
		t.Errorf("deadline job ran all %d iterations despite the stall", st.Result.Iterations)
	}
	if st.Result.Refined == nil {
		t.Error("deadline job has no best-so-far sign-off")
	}
	if _, err := c.Forest(req.ID); err != nil {
		t.Errorf("best-so-far forest not served: %v", err)
	}
}

// TestServeJobQueueSaturation saturates a depth-1 queue behind a stalled
// worker: the direct submit must see 429 with Retry-After, and a client
// retrying with backoff must eventually land the job without double-
// running anything.
func TestServeJobQueueSaturation(t *testing.T) {
	inj := fault.New(1)
	inj.ArmStall("serve.stall", 1, 600*time.Millisecond)
	sink := obs.New(io.Discard)
	s := startServer(t, Options{QueueDepth: 1, JobWorkers: 1, Fault: inj, Obs: sink})
	d := designJSON(t, 5)

	c := &Client{Base: s.URL()}
	if _, err := c.Submit(&JobRequest{ID: "sat-1", Kind: KindSignoff, Design: d}); err != nil {
		t.Fatal(err)
	}
	// Give the worker a moment to pick up sat-1 (which then stalls),
	// freeing the queue slot for sat-2.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := c.Status("sat-1")
		if err != nil {
			t.Fatal(err)
		}
		if st.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sat-1 never started running (state %s)", st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := c.Submit(&JobRequest{ID: "sat-2", Kind: KindSignoff, Design: d}); err != nil {
		t.Fatal(err)
	}

	// Queue full: a raw POST is turned away with the protocol headers.
	body, _ := json.Marshal(&JobRequest{ID: "sat-3", Kind: KindSignoff, Design: d})
	resp, err := http.Post(s.URL()+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated submit: HTTP %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After hint")
	}

	// A retrying client waits out the saturation. The Sleep seam records
	// the backoff schedule (and sleeps a bounded real amount so the
	// stalled worker can drain meanwhile).
	var mu sync.Mutex
	var delays []time.Duration
	rc := &Client{
		Base: s.URL(), Retries: 60, BaseDelay: 20 * time.Millisecond, JitterSeed: 42,
		Sleep: func(d time.Duration) {
			mu.Lock()
			delays = append(delays, d)
			mu.Unlock()
			if d > 50*time.Millisecond {
				d = 50 * time.Millisecond
			}
			time.Sleep(d)
		},
	}
	if _, err := rc.Submit(&JobRequest{ID: "sat-3", Kind: KindSignoff, Design: d}); err != nil {
		t.Fatalf("retrying submit never landed: %v", err)
	}
	mu.Lock()
	if len(delays) == 0 {
		t.Error("retrying client recorded no backoff sleeps")
	}
	// The server hints Retry-After: 1s; with ±25% jitter every recorded
	// delay must be at least 750ms — the client honored the hint instead
	// of hammering.
	for _, d := range delays {
		if d < 750*time.Millisecond {
			t.Errorf("backoff %v shorter than the jittered Retry-After floor", d)
		}
	}
	mu.Unlock()

	for _, id := range []string{"sat-1", "sat-2", "sat-3"} {
		if st := waitDone(t, c, id); st.State != StateDone {
			t.Fatalf("job %s: %s (%s)", id, st.State, st.Error)
		}
	}
	if got := counterOf(sink, "serve.rejected_full"); got == 0 {
		t.Error("429s were not counted")
	}
	for _, id := range []string{"sat-1", "sat-2", "sat-3"} {
		st, err := c.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.Attempts != 1 {
			t.Errorf("job %s ran %d times, want exactly once", id, st.Attempts)
		}
	}
}

// TestServeJobRetryStormIdempotent fires many concurrent submits of one
// job ID: every submit succeeds, the job runs exactly once, and a
// same-ID submit with a different payload is refused with 409.
func TestServeJobRetryStormIdempotent(t *testing.T) {
	s := startServer(t, Options{QueueDepth: 4, JobWorkers: 2})
	d := designJSON(t, 5)
	req := &JobRequest{ID: "storm", Kind: KindSignoff, Design: d}

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := &Client{Base: s.URL(), Retries: 30, BaseDelay: 10 * time.Millisecond}
			if _, err := c.Submit(cloneReq(req)); err != nil {
				t.Errorf("storm submit: %v", err)
			}
		}()
	}
	wg.Wait()

	c := &Client{Base: s.URL()}
	st := waitDone(t, c, "storm")
	if st.State != StateDone {
		t.Fatalf("storm job: %s (%s)", st.State, st.Error)
	}
	if st.Attempts != 1 {
		t.Errorf("storm job ran %d times, want exactly once", st.Attempts)
	}

	// Same ID, different payload: a conflict, not a dedupe.
	conflict := cloneReq(req)
	conflict.Kind = KindTrain
	if _, err := c.Submit(conflict); err == nil || !strings.Contains(err.Error(), "409") {
		t.Errorf("conflicting resubmit: want 409, got %v", err)
	}
}

// TestServeJobPanicContained injects a panic into the first job: it must
// come back failed with the panic recorded, and the worker must survive
// to run the next job.
func TestServeJobPanicContained(t *testing.T) {
	inj := fault.New(1)
	inj.Arm("serve.panic", 1)
	sink := obs.New(io.Discard)
	s := startServer(t, Options{JobWorkers: 1, Fault: inj, Obs: sink})
	c := &Client{Base: s.URL()}
	d := designJSON(t, 5)

	if _, err := c.Submit(&JobRequest{ID: "boom", Kind: KindSignoff, Design: d}); err != nil {
		t.Fatal(err)
	}
	st := waitDone(t, c, "boom")
	if st.State != StateFailed {
		t.Fatalf("panicking job: want failed, got %s", st.State)
	}
	if !strings.Contains(st.Error, "panic") {
		t.Errorf("failure does not carry the panic: %q", st.Error)
	}
	if got := counterOf(sink, "serve.panics"); got != 1 {
		t.Errorf("serve.panics = %d, want 1", got)
	}

	if _, err := c.Submit(&JobRequest{ID: "after-boom", Kind: KindSignoff, Design: d}); err != nil {
		t.Fatal(err)
	}
	if st := waitDone(t, c, "after-boom"); st.State != StateDone {
		t.Fatalf("job after panic: %s (%s)", st.State, st.Error)
	}
}

// TestServeJobValidation exercises the protocol's refusal paths without
// running any job.
func TestServeJobValidation(t *testing.T) {
	s, err := New(Options{SpoolDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	h := s.Handler()

	post := func(body string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("POST", "/jobs", strings.NewReader(body))
		h.ServeHTTP(rec, req)
		return rec
	}
	for name, body := range map[string]string{
		"garbage":     "{not json",
		"no id":       `{"Kind":"signoff","Design":{}}`,
		"dotdot id":   `{"ID":"..","Kind":"signoff","Design":{}}`,
		"slash id":    `{"ID":"a/b","Kind":"signoff","Design":{}}`,
		"bad kind":    `{"ID":"x","Kind":"nope","Design":{}}`,
		"no design":   `{"ID":"x","Kind":"signoff"}`,
		"design file": `{"ID":"x","Kind":"signoff","Design":{},"DesignFile":"/etc/passwd"}`,
		"huge epochs": `{"ID":"x","Kind":"signoff","Design":{},"Epochs":99999999}`,
	} {
		if rec := post(body); rec.Code != http.StatusBadRequest {
			t.Errorf("%s: HTTP %d, want 400", name, rec.Code)
		}
	}

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/jobs/nope", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("unknown job: HTTP %d, want 404", rec.Code)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/jobs", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("list: HTTP %d, want 200", rec.Code)
	}

	// A draining server turns submits away with 503 + Retry-After.
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	rec = post(`{"ID":"x","Kind":"signoff","Design":{}}`)
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("draining submit: HTTP %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("503 without Retry-After hint")
	}
	s.mu.Lock()
	s.draining = false
	s.mu.Unlock()
}

// TestServeDrainKeepsQueuedJobsResumable closes a server while a job is
// still queued behind a stalled worker: the queued job must survive in
// the spool and run to completion on the next server.
func TestServeDrainKeepsQueuedJobsResumable(t *testing.T) {
	spool := t.TempDir()
	inj := fault.New(1)
	inj.ArmStall("serve.stall", 1, 400*time.Millisecond)
	s1 := startServer(t, Options{SpoolDir: spool, QueueDepth: 2, JobWorkers: 1, Fault: inj})
	c := &Client{Base: s1.URL()}
	d := designJSON(t, 5)
	if _, err := c.Submit(&JobRequest{ID: "drain-1", Kind: KindSignoff, Design: d}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(&JobRequest{ID: "drain-2", Kind: KindSignoff, Design: d}); err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := startServer(t, Options{SpoolDir: spool})
	c2 := &Client{Base: s2.URL()}
	for _, id := range []string{"drain-1", "drain-2"} {
		if st := waitDone(t, c2, id); st.State != StateDone {
			t.Fatalf("job %s after drain+restart: %s (%s)", id, st.State, st.Error)
		}
	}
}

// TestServeModelCacheTrainsOnce runs two refine jobs of one family on a
// two-worker server: the family's evaluator must be trained exactly once
// (singleflight), and both jobs must still match their serial reference.
func TestServeModelCacheTrainsOnce(t *testing.T) {
	dA := designJSON(t, 5)
	reqs := []*JobRequest{
		{ID: "fam-1", Kind: KindRefine, Design: dA, Seed: 7, Epochs: 3, Iters: 2, AugmentVariants: -1},
		{ID: "fam-2", Kind: KindRefine, Design: dA, Seed: 7, Epochs: 3, Iters: 2, AugmentVariants: -1},
	}
	_, ref := runSerial(t, reqs)

	sink := obs.New(io.Discard)
	s := startServer(t, Options{JobWorkers: 2, QueueDepth: 4, Obs: sink})
	c := &Client{Base: s.URL()}
	for _, r := range reqs {
		if _, err := c.Submit(cloneReq(r)); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range reqs {
		if st := waitDone(t, c, r.ID); st.State != StateDone {
			t.Fatalf("job %s: %s (%s)", r.ID, st.State, st.Error)
		}
		res, forest := artifacts(t, s.spool, r.ID)
		if !bytes.Equal(res, ref[r.ID][0]) || !bytes.Equal(forest, ref[r.ID][1]) {
			t.Errorf("job %s: cache-hit artifacts differ from serial reference", r.ID)
		}
	}
	if got := counterOf(sink, "serve.model_cache_misses"); got != 1 {
		t.Errorf("model trained %d times for one family, want 1", got)
	}
	if got := counterOf(sink, "serve.model_cache_hits"); got != 1 {
		t.Errorf("model cache hits = %d, want 1", got)
	}
}
