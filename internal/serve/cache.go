package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"tsteiner/internal/gnn"
	"tsteiner/internal/obs"
)

// ModelCache is the resident trained-evaluator cache: train once per
// design family, refine many. Lookup order is memory → disk → build, with
// singleflight so concurrent jobs of one family train exactly once — the
// waiters block on the leader's flight and share its model.
//
// Determinism: a cache hit hands out a clone of a model that a cache miss
// would have trained to the exact same bytes (training is deterministic
// in the request inputs), so hit-vs-miss — which DOES depend on load and
// arrival order — never shows in job artifacts. Every Get returns a
// private clone, so concurrent refiners never share live tensors.
type ModelCache struct {
	dir string
	obs *obs.Sink

	mu      sync.Mutex
	flights map[string]*flight
}

// flight is one family's build in progress (or completed, kept as the
// memory cache). err != nil flights are evicted by the next Get.
type flight struct {
	done chan struct{}
	m    *gnn.Model
	err  error
}

// NewModelCache opens the cache over a directory of saved models
// (normally <spool>/models). sink receives hit/miss/corrupt counters and
// may be nil.
func NewModelCache(dir string, sink *obs.Sink) *ModelCache {
	return &ModelCache{dir: dir, obs: sink, flights: map[string]*flight{}}
}

func (c *ModelCache) path(family string) string {
	return filepath.Join(c.dir, family+".json")
}

// Cached returns the family's model if it is already resident (waiting
// out an in-progress build) or validly persisted on disk, without ever
// building or registering one. Deadline-carrying jobs use this read-only
// path: they may benefit from a complete cached model, but must never
// write into the cache — their own training may have been truncated by
// the budget, and a truncated model cached under a full-epochs family key
// would poison every later job of the family.
func (c *ModelCache) Cached(family string) (*gnn.Model, bool) {
	c.mu.Lock()
	if fl, ok := c.flights[family]; ok {
		c.mu.Unlock()
		<-fl.done
		if fl.err == nil {
			c.obs.Add("serve.model_cache_hits", 1)
			return fl.m.Clone(), true
		}
		return nil, false
	}
	c.mu.Unlock()
	if m, err := gnn.Load(c.path(family)); err == nil {
		c.obs.Add("serve.model_cache_hits", 1)
		return m, true
	}
	return nil, false
}

// Get returns the family's model, building it at most once per process
// (and at most once ever, if the build persists its result): memory hit,
// then disk hit, then build. The returned model is always a private
// clone. A failed or interrupted build is not cached — the next Get for
// the family retries (resuming from the build's checkpoint, if it left
// one).
func (c *ModelCache) Get(family string, build func() (*gnn.Model, error)) (*gnn.Model, error) {
	c.mu.Lock()
	for {
		fl, ok := c.flights[family]
		if !ok {
			break
		}
		c.mu.Unlock()
		<-fl.done
		if fl.err == nil {
			c.obs.Add("serve.model_cache_hits", 1)
			return fl.m.Clone(), nil
		}
		// The leader failed; evict its flight (if still current) and
		// compete to rebuild.
		c.mu.Lock()
		if cur, ok := c.flights[family]; ok && cur == fl {
			delete(c.flights, family)
		}
	}

	// Disk hit: a model persisted by an earlier process. A corrupt file
	// is counted and treated as a miss — the cache must never poison a
	// job, and a rebuild overwrites it with valid bytes.
	if m, err := gnn.Load(c.path(family)); err == nil {
		fl := &flight{done: make(chan struct{}), m: m}
		close(fl.done)
		c.flights[family] = fl
		c.mu.Unlock()
		c.obs.Add("serve.model_cache_hits", 1)
		return m.Clone(), nil
	} else if !os.IsNotExist(err) {
		c.obs.Add("serve.model_cache_corrupt", 1)
	}

	fl := &flight{done: make(chan struct{})}
	c.flights[family] = fl
	c.mu.Unlock()
	c.obs.Add("serve.model_cache_misses", 1)

	m, err := build()
	if err == nil {
		if serr := m.Save(c.path(family)); serr != nil {
			err = fmt.Errorf("serve: persist model %s: %w", family, serr)
		}
	}
	fl.m, fl.err = m, err
	if err != nil {
		c.mu.Lock()
		if cur, ok := c.flights[family]; ok && cur == fl {
			delete(c.flights, family)
		}
		c.mu.Unlock()
		close(fl.done)
		return nil, err
	}
	close(fl.done)
	return m.Clone(), nil
}
