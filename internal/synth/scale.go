package synth

// Large-scale benchmark generation: the 10–100× designs of the sharded
// refinement experiments. A scaled design is `factor` seeded blocks of
// the base benchmark tiled into one flat netlist, with consecutive
// blocks stitched through dedicated pipeline registers (block k's
// stitch DFFs launch extra startpoint signals into block k+1). The
// stitch nets are exactly the kind of long cross-region connections
// that exercise shard boundary policies.
//
// The frozen generators are untouched: Generate, Benchmarks() and the
// per-benchmark seeds/clocks produce byte-identical designs with or
// without this file (gen_stable_test.go and scale_test.go pin digests
// on both sides).

import (
	"fmt"
	"math/rand"

	"tsteiner/internal/lib"
	"tsteiner/internal/netlist"
	"tsteiner/internal/par"
)

// ScaledName is the canonical name of a scaled benchmark ("spm_x10").
func ScaledName(base string, factor int) string {
	return fmt.Sprintf("%s_x%d", base, factor)
}

// GenerateScaled builds a factor× version of the base benchmark. Each
// block draws from its own seed (derived from the base seed with the
// same SplitMix64 stream split the parallel layer uses), so generation
// is deterministic in (base, factor) and blocks are decorrelated.
// factor == 1 is exactly Generate(base, l).
func GenerateScaled(base Spec, factor int, l *lib.Library) (*netlist.Design, error) {
	if factor < 1 {
		return nil, fmt.Errorf("synth: scale factor %d < 1", factor)
	}
	if factor == 1 {
		return Generate(base, l)
	}
	if base.Cells < 4 || base.Endpoints < 2 || base.PIs < 1 {
		return nil, fmt.Errorf("synth: degenerate spec %+v", base)
	}
	b := netlist.NewBuilder(ScaledName(base.Name, factor), l)
	if base.ClockNS > 0 {
		b.SetClockPeriod(base.ClockNS)
	} else {
		b.SetClockPeriod(l.ClockPeriod)
	}
	var imports []netlist.PinID
	for blk := 0; blk < factor; blk++ {
		rng := rand.New(rand.NewSource(par.Seed(base.Seed, blk)))
		exports, err := generateBlock(b, base, l, rng, fmt.Sprintf("b%d_", blk), imports, blk < factor-1)
		if err != nil {
			return nil, err
		}
		imports = exports
	}
	return b.Finish()
}

// generateBlock emits one base-sized block into the shared builder.
// imports are startpoint pins driven by the previous block's stitch
// registers; their nets are flushed by THIS block (each driver is
// connected exactly once). When stitch is set, the block also creates
// stitch registers whose D pins consume late block signals and whose Q
// pins are returned as the next block's imports.
func generateBlock(b *netlist.Builder, spec Spec, l *lib.Library, rng *rand.Rand, prefix string, imports []netlist.PinID, stitch bool) ([]netlist.PinID, error) {
	pos := spec.Endpoints / 8
	if pos < 2 {
		pos = 2
	}
	if pos > 64 {
		pos = 64
	}
	dffs := spec.Endpoints - pos
	comb := spec.Cells - dffs
	if comb < 2 {
		return nil, fmt.Errorf("synth: spec %q leaves %d combinational cells", spec.Name, comb)
	}

	piPins := make([]netlist.PinID, spec.PIs)
	for i := range piPins {
		piPins[i] = b.AddPI(fmt.Sprintf("%spi_%d", prefix, i))
	}
	poPins := make([]netlist.PinID, pos)
	for i := range poPins {
		poPins[i] = b.AddPO(fmt.Sprintf("%spo_%d", prefix, i), 0.008)
	}
	dffIDs := make([]netlist.CellID, dffs)
	for i := range dffIDs {
		dffIDs[i] = b.AddCell(fmt.Sprintf("%sr_%d", prefix, i), "DFF_X1")
	}

	g := &generator{
		rng:     rng,
		b:       b,
		spec:    spec,
		combNms: l.CombinationalNames(),
		lib:     l,
		prefix:  prefix,
	}
	start := make([]netlist.PinID, 0, len(piPins)+len(imports))
	start = append(start, piPins...)
	start = append(start, imports...)
	g.buildLogic(start, dffIDs, comb)

	// Stitch registers: created after the logic cloud so their D pins
	// can sample deep signals, but before the endpoint flush so the
	// sampled nets are still pending. Their Q pins stay dangling here —
	// the next block consumes (and flushes) them.
	var exports []netlist.PinID
	if stitch {
		nStitch := spec.PIs / 2
		if nStitch < 2 {
			nStitch = 2
		}
		if nStitch > 16 {
			nStitch = 16
		}
		n := len(g.signals)
		tail := n / 3
		if tail < 1 {
			tail = 1
		}
		for j := 0; j < nStitch; j++ {
			id := b.AddCell(fmt.Sprintf("%ss_%d", prefix, j), "DFF_X1")
			g.consume(n-1-g.rng.Intn(tail), g.dInput(id))
			exports = append(exports, g.cellOut(id))
		}
	}

	g.wireEndpoints(poPins, dffIDs)
	return exports, nil
}
