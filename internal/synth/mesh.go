package synth

import (
	"fmt"

	"tsteiner/internal/lib"
	"tsteiner/internal/netlist"
)

// MeshSpec parameterizes a systolic-array-style benchmark: a Rows×Cols
// grid of processing elements (PEs), each a small registered datapath
// receiving from its west and north neighbours — the structured,
// locality-heavy topology of accelerators, complementing the random-cone
// designs of Benchmarks(). Mesh designs stress the flow differently:
// nets are short and regular, timing paths are uniform, and congestion
// concentrates along the array seams.
type MeshSpec struct {
	Name       string
	Rows, Cols int
	// ClockNS is the timing constraint; PE depth is fixed (4 stages), so
	// the constraint sets the violation profile directly.
	ClockNS float64
}

// DefaultMesh returns an 8×8 array spec.
func DefaultMesh() MeshSpec {
	return MeshSpec{Name: "mesh8x8", Rows: 8, Cols: 8, ClockNS: 0.55}
}

// pe records one processing element's boundary pins.
type pe struct {
	westSinks  []netlist.PinID // input pins fed by the west neighbour
	northSinks []netlist.PinID // input pins fed by the north neighbour
	out        netlist.PinID   // registered output (Q)
}

// GenerateMesh builds the mesh benchmark.
func GenerateMesh(spec MeshSpec, l *lib.Library) (*netlist.Design, error) {
	if spec.Rows < 1 || spec.Cols < 1 {
		return nil, fmt.Errorf("synth: mesh %dx%d", spec.Rows, spec.Cols)
	}
	b := netlist.NewBuilder(spec.Name, l)
	if spec.ClockNS > 0 {
		b.SetClockPeriod(spec.ClockNS)
	}
	d := b.Design()

	// Build every PE's cells and internal nets first; inter-PE nets are
	// wired afterwards so each driver connects all its consumers at once.
	pes := make([][]pe, spec.Rows)
	for r := range pes {
		pes[r] = make([]pe, spec.Cols)
		for c := range pes[r] {
			pes[r][c] = buildPE(b, d, fmt.Sprintf("pe_%d_%d", r, c))
		}
	}

	// Boundary inputs.
	for r := 0; r < spec.Rows; r++ {
		pi := b.AddPI(fmt.Sprintf("w%d", r))
		b.Connect(pi, pes[r][0].westSinks...)
	}
	for c := 0; c < spec.Cols; c++ {
		pi := b.AddPI(fmt.Sprintf("n%d", c))
		b.Connect(pi, pes[0][c].northSinks...)
	}

	// Inter-PE nets: each PE output drives its east and south neighbours,
	// plus a primary output on the bottom row.
	for r := 0; r < spec.Rows; r++ {
		for c := 0; c < spec.Cols; c++ {
			var sinks []netlist.PinID
			if c+1 < spec.Cols {
				sinks = append(sinks, pes[r][c+1].westSinks...)
			}
			if r+1 < spec.Rows {
				sinks = append(sinks, pes[r+1][c].northSinks...)
			}
			if r == spec.Rows-1 {
				po := b.AddPO(fmt.Sprintf("s%d", c), 0.008)
				sinks = append(sinks, po)
			}
			b.Connect(pes[r][c].out, sinks...)
		}
	}

	return b.Finish()
}

// buildPE creates one processing element: xor/and mix of the two inputs,
// four logic stages deep, ending in a register. Every inter-PE net
// crosses a register boundary, the hallmark of systolic designs.
func buildPE(b *netlist.Builder, d *netlist.Design, name string) pe {
	x1 := b.AddCell(name+"_x1", "XOR2_X1")
	a1 := b.AddCell(name+"_a1", "AND2_X1")
	o1 := b.AddCell(name+"_o1", "OR2_X1")
	n1 := b.AddCell(name+"_n1", "NAND2_X1")
	mix := b.AddCell(name+"_m", "AOI21_X1")
	ff := b.AddCell(name+"_r", "DFF_X1")

	b.Connect(d.Cell(x1).OutputPin(), d.Cell(o1).InputPins()[0], d.Cell(n1).InputPins()[0])
	b.Connect(d.Cell(a1).OutputPin(), d.Cell(o1).InputPins()[1], d.Cell(n1).InputPins()[1])
	b.Connect(d.Cell(o1).OutputPin(), d.Cell(mix).InputPins()[0])
	b.Connect(d.Cell(n1).OutputPin(), d.Cell(mix).InputPins()[1], d.Cell(mix).InputPins()[2])
	b.Connect(d.Cell(mix).OutputPin(), d.Cell(ff).InputPins()[0])

	return pe{
		westSinks:  []netlist.PinID{d.Cell(x1).InputPins()[0], d.Cell(a1).InputPins()[0]},
		northSinks: []netlist.PinID{d.Cell(x1).InputPins()[1], d.Cell(a1).InputPins()[1]},
		out:        d.Cell(ff).OutputPin(),
	}
}
