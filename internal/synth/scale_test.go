package synth

import (
	"fmt"
	"hash/fnv"
	"math"
	"testing"

	"tsteiner/internal/lib"
	"tsteiner/internal/netlist"
)

// structuralDigest hashes everything generation decides — port/cell
// names, masters, pin caps and full net connectivity — so any drift in
// the generator's RNG stream or wiring shows up as a digest change.
func structuralDigest(d *netlist.Design) uint64 {
	h := fnv.New64a()
	w := func(s string) { h.Write([]byte(s)); h.Write([]byte{0}) }
	wu := func(v uint64) {
		var b [8]byte
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	w(d.Name)
	wu(math.Float64bits(d.ClockPeriod))
	for pi := range d.Pins {
		p := d.Pin(netlist.PinID(pi))
		w(p.Name)
		wu(uint64(p.Dir))
		wu(math.Float64bits(p.Cap))
	}
	for ci := range d.Cells {
		inst := d.Cell(netlist.CellID(ci))
		w(inst.Name)
		w(inst.Master.Name)
	}
	for ni := range d.Nets {
		net := d.Net(netlist.NetID(ni))
		w(net.Name)
		wu(uint64(int64(net.Driver)))
		for _, s := range net.Sinks {
			wu(uint64(int64(s)))
		}
	}
	return h.Sum64()
}

// Pinned digests: the frozen single-block benchmarks (which the scale
// knob must never disturb) and representative scaled designs. If a
// change to this package moves any of these values, seeded benchmark
// generation drifted and every calibrated clock and recorded experiment
// is invalid — do not update the constants without that intent.
const (
	digestSpm        = 0x6f3c0f42f2d2b0ed
	digestCic        = 0x0b6b4fa607744a68
	digestUsb        = 0xb0179506ea688341
	digestSpmX10     = 0x5da271498fe2903c
	digestSpmX4      = 0x04e603cbaf0183e3
	digestCicX3      = 0x5d4aa03fab335843
	statsSpmX10Cells = 2452
	statsSpmX10Ends  = 1362
)

func genScaled(t *testing.T, name string, factor int) *netlist.Design {
	t.Helper()
	d, err := GenerateScaled(mustSpec(t, name), factor, lib.Default())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("scaled design invalid: %v", err)
	}
	return d
}

// TestScaledGenStable pins the scaled generators the way
// gen_stable_test.go pins the base ones: exact structural digests.
func TestScaledGenStable(t *testing.T) {
	x10 := genScaled(t, "spm", 10)
	if got := structuralDigest(x10); got != digestSpmX10 {
		t.Fatalf("spm_x10 digest drifted: %#x", got)
	}
	st := x10.Stats()
	if st.CellNodes != statsSpmX10Cells || st.Endpoints != statsSpmX10Ends {
		t.Fatalf("spm_x10 stats drifted: %+v", st)
	}
	if got := structuralDigest(genScaled(t, "spm", 4)); got != digestSpmX4 {
		t.Fatalf("spm_x4 digest drifted: %#x", got)
	}
	if got := structuralDigest(genScaled(t, "cic_decimator", 3)); got != digestCicX3 {
		t.Fatalf("cic_decimator_x3 digest drifted: %#x", got)
	}
}

// TestScaleKnobCannotDriftBaseGeneration regenerates the frozen
// benchmarks and checks their exact digests: adding the scale knob (or
// any future generator work) must leave the seeded single-block designs
// byte-stable, and factor == 1 must be exactly the frozen generator.
func TestScaleKnobCannotDriftBaseGeneration(t *testing.T) {
	l := lib.Default()
	for _, tc := range []struct {
		name string
		want uint64
	}{
		{"spm", digestSpm},
		{"cic_decimator", digestCic},
		{"usb_cdc_core", digestUsb},
	} {
		d, err := Generate(mustSpec(t, tc.name), l)
		if err != nil {
			t.Fatal(err)
		}
		if got := structuralDigest(d); got != tc.want {
			t.Fatalf("%s base digest drifted: %#x", tc.name, got)
		}
		x1, err := GenerateScaled(mustSpec(t, tc.name), 1, l)
		if err != nil {
			t.Fatal(err)
		}
		if got := structuralDigest(x1); got != tc.want {
			t.Fatalf("%s: GenerateScaled(1) != Generate: %#x", tc.name, got)
		}
	}
}

// TestScaledGenDeterministic: same (base, factor) twice — identical
// digest (all randomness flows from the derived seeds).
func TestScaledGenDeterministic(t *testing.T) {
	a := structuralDigest(genScaled(t, "spm", 7))
	b := structuralDigest(genScaled(t, "spm", 7))
	if a != b {
		t.Fatalf("scaled generation not deterministic: %#x vs %#x", a, b)
	}
}

// TestScaledGenStitching: consecutive blocks must actually be
// connected (a net driven by one block's stitch register feeding the
// next block), otherwise sharded refinement has no boundary nets to
// manage.
func TestScaledGenStitching(t *testing.T) {
	d := genScaled(t, "spm", 3)
	crossNets := 0
	for ni := range d.Nets {
		net := d.Net(netlist.NetID(ni))
		if net.Driver == netlist.NoID {
			continue
		}
		drv := d.Pin(net.Driver)
		if drv.Cell == netlist.NoID {
			continue
		}
		name := d.Cell(drv.Cell).Name
		// Stitch registers are named b<k>_s_<j>.
		var blk, j int
		if n, _ := fmt.Sscanf(name, "b%d_s_%d", &blk, &j); n == 2 {
			crossNets++
		}
	}
	if crossNets == 0 {
		t.Fatal("no stitch nets found between blocks")
	}
}
