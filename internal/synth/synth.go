// Package synth generates synthetic gate-level benchmarks that stand in
// for the paper's ten OpenCores designs. Real netlists are unavailable in
// this environment, so the generator reproduces the *statistics that drive
// the experiments*: cell counts, timing-endpoint counts, register density,
// fanout distribution with a heavy tail, and logic depths deep enough to
// create negative slack under the default clock. Generation is fully
// deterministic given the spec's seed.
package synth

import (
	"fmt"
	"math/rand"

	"tsteiner/internal/lib"
	"tsteiner/internal/netlist"
)

// Spec parameterizes one synthetic benchmark.
type Spec struct {
	Name      string
	Seed      int64
	Cells     int     // total instance target (registers + combinational)
	Endpoints int     // timing endpoints target (register D pins + POs)
	PIs       int     // primary inputs
	Depth     int     // maximum logic depth between register stages
	ClockNS   float64 // clock period constraint (ns)
	Train     bool    // membership in the paper's training split
}

// Benchmarks returns the ten specs mirroring Table I of the paper: the
// upper six form the training set and the lower four the testing set.
// Cell and endpoint counts match the paper's "# Nodes Cell" and
// "# Endpoints" columns.
func Benchmarks() []Spec {
	return []Spec{
		{Name: "chacha", Seed: 101, Cells: 15700, Endpoints: 1972, PIs: 96, Depth: 26, ClockNS: 6.5, Train: true},
		{Name: "cic_decimator", Seed: 102, Cells: 781, Endpoints: 130, PIs: 24, Depth: 18, ClockNS: 1.55, Train: true},
		{Name: "APU", Seed: 103, Cells: 2897, Endpoints: 427, PIs: 40, Depth: 22, ClockNS: 2.9, Train: true},
		{Name: "des", Seed: 104, Cells: 14652, Endpoints: 2048, PIs: 128, Depth: 24, ClockNS: 6.5, Train: true},
		{Name: "jpeg_encoder", Seed: 105, Cells: 55264, Endpoints: 4420, PIs: 160, Depth: 30, ClockNS: 27.0, Train: true},
		{Name: "spm", Seed: 106, Cells: 238, Endpoints: 129, PIs: 16, Depth: 10, ClockNS: 0.3, Train: true},
		{Name: "aes_cipher", Seed: 107, Cells: 11532, Endpoints: 659, PIs: 128, Depth: 32, ClockNS: 11.0, Train: false},
		{Name: "picorv32a", Seed: 108, Cells: 13622, Endpoints: 1879, PIs: 64, Depth: 28, ClockNS: 7.0, Train: false},
		{Name: "usb_cdc_core", Seed: 109, Cells: 1642, Endpoints: 626, PIs: 32, Depth: 14, ClockNS: 0.7, Train: false},
		{Name: "des3", Seed: 110, Cells: 47410, Endpoints: 8872, PIs: 128, Depth: 26, ClockNS: 7.5, Train: false},
	}
}

// BenchmarkByName returns the spec with the given name.
func BenchmarkByName(name string) (Spec, error) {
	for _, s := range Benchmarks() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("synth: unknown benchmark %q", name)
}

// Scale returns a copy of the spec with cell/endpoint/PI counts multiplied
// by f (floored at small minimums), for fast tests and benches that keep
// the full experiment shape at reduced size.
func (s Spec) Scale(f float64) Spec {
	scale := func(v int, min int) int {
		n := int(float64(v) * f)
		if n < min {
			n = min
		}
		return n
	}
	s.Cells = scale(s.Cells, 40)
	s.Endpoints = scale(s.Endpoints, 8)
	s.PIs = scale(s.PIs, 4)
	return s
}

// Generate builds the benchmark described by the spec against the given
// library. The returned design is validated and acyclic; cell positions
// are not yet assigned (see internal/place).
func Generate(spec Spec, l *lib.Library) (*netlist.Design, error) {
	if spec.Cells < 4 || spec.Endpoints < 2 || spec.PIs < 1 {
		return nil, fmt.Errorf("synth: degenerate spec %+v", spec)
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	b := netlist.NewBuilder(spec.Name, l)
	if spec.ClockNS > 0 {
		b.SetClockPeriod(spec.ClockNS)
	} else {
		b.SetClockPeriod(l.ClockPeriod)
	}

	// Split endpoints between PO ports and register D pins. A modest PO
	// count keeps most endpoints register-bound, like the real designs.
	pos := spec.Endpoints / 8
	if pos < 2 {
		pos = 2
	}
	if pos > 64 {
		pos = 64
	}
	dffs := spec.Endpoints - pos
	comb := spec.Cells - dffs
	if comb < 2 {
		return nil, fmt.Errorf("synth: spec %q leaves %d combinational cells", spec.Name, comb)
	}

	// Ports and registers.
	piPins := make([]netlist.PinID, spec.PIs)
	for i := range piPins {
		piPins[i] = b.AddPI(fmt.Sprintf("pi_%d", i))
	}
	poPins := make([]netlist.PinID, pos)
	for i := range poPins {
		poPins[i] = b.AddPO(fmt.Sprintf("po_%d", i), 0.008)
	}
	dffIDs := make([]netlist.CellID, dffs)
	for i := range dffIDs {
		dffIDs[i] = b.AddCell(fmt.Sprintf("r_%d", i), "DFF_X1")
	}

	g := &generator{
		rng:     rng,
		b:       b,
		spec:    spec,
		combNms: l.CombinationalNames(),
		lib:     l,
	}
	g.buildLogic(piPins, dffIDs, comb)
	g.wireEndpoints(poPins, dffIDs)

	return b.Finish()
}

// signal is a driven output awaiting consumers.
type signal struct {
	pin    netlist.PinID
	fanout int
	depth  int // logic depth from the nearest startpoint
}

type generator struct {
	rng     *rand.Rand
	b       *netlist.Builder
	spec    Spec
	combNms []string
	lib     *lib.Library
	// prefix namespaces generated instance/test-point names. Empty for
	// the frozen single-block benchmarks (names must stay byte-stable);
	// GenerateScaled sets a per-block prefix so tiled blocks coexist in
	// one netlist.
	prefix string

	// signals in creation order; index order respects the DAG.
	signals []signal
	// hubs are designated high-fanout signal indices (reset/enable-like).
	hubs []int
	// pending maps each driver signal index to the sink pins collected so
	// far; nets are emitted once all consumers are known.
	pending map[int][]netlist.PinID
	// nStart is the count of startpoint signals (PIs + register outputs)
	// at the head of the signals slice.
	nStart int
}

// buildLogic creates the combinational cloud. Cells are created in
// sequence and each input consumes an earlier signal, so the result is a
// DAG by construction.
func (g *generator) buildLogic(piPins []netlist.PinID, dffIDs []netlist.CellID, comb int) {
	g.pending = make(map[int][]netlist.PinID)
	for _, p := range piPins {
		g.signals = append(g.signals, signal{pin: p})
	}
	for _, id := range dffIDs {
		g.signals = append(g.signals, signal{pin: g.cellOut(id)})
	}
	g.nStart = len(g.signals)
	// A few startpoints become hubs: broadcast-style signals with large
	// fanout, giving the heavy-tailed net-degree distribution that makes
	// Steiner construction non-trivial.
	nHubs := 2 + len(g.signals)/200
	for i := 0; i < nHubs; i++ {
		g.hubs = append(g.hubs, g.rng.Intn(len(g.signals)))
	}

	for i := 0; i < comb; i++ {
		master := g.combNms[g.rng.Intn(len(g.combNms))]
		cid := g.b.AddCell(fmt.Sprintf("%su_%d", g.prefix, i), master)
		inputs := g.cellInputs(cid)
		depth := 0
		for _, in := range inputs {
			src := g.pickSource()
			g.consume(src, in)
			if d := g.signals[src].depth; d > depth {
				depth = d
			}
		}
		g.signals = append(g.signals, signal{pin: g.cellOut(cid), depth: depth + 1})
	}
}

// pickSource chooses which existing signal feeds a new input pin. The
// candidate's logic depth is capped at spec.Depth−1 so the deepest cell
// output reaches exactly spec.Depth, keeping path depth independent of
// design size (real designs pipeline; depth does not grow with area).
func (g *generator) pickSource() int {
	n := len(g.signals)
	// Drain stale zero-fanout signals first so every output finds a
	// consumer and the leftover pool stays below the endpoint count.
	if idx, ok := g.oldestUnused(8); ok {
		return idx
	}
	for attempt := 0; attempt < 6; attempt++ {
		idx := g.pickCandidate(n)
		d := g.signals[idx].depth
		if d >= g.spec.Depth {
			continue // hard cap
		}
		// Soft governor: acceptance falls off past half of the depth
		// budget so chains taper and few signals get stuck at the cap
		// (stuck signals can only be absorbed by endpoints).
		soft := float64(g.spec.Depth) * 0.5
		if fd := float64(d); fd > soft {
			rejectP := 1.15 * (fd - soft) / (float64(g.spec.Depth) - soft)
			if g.rng.Float64() < rejectP {
				continue
			}
		}
		return idx
	}
	// Depth budget exhausted in the recent window: restart the cone from
	// a startpoint (a register output or PI), as a new pipeline stage.
	return g.rng.Intn(g.nStart)
}

func (g *generator) pickCandidate(n int) int {
	r := g.rng.Float64()
	switch {
	case r < 0.10 && len(g.hubs) > 0:
		// Hub broadcast.
		return g.hubs[g.rng.Intn(len(g.hubs))]
	case r < 0.25:
		// Uniform over history: long reconvergent fanout.
		return g.rng.Intn(n)
	default:
		// Recent window with geometric bias toward the newest signal,
		// building chains up to the depth cap.
		w := g.spec.Depth
		if w > n {
			w = n
		}
		off := int(g.rng.ExpFloat64() * float64(w) / 3.0)
		if off >= w {
			off = w - 1
		}
		return n - 1 - off
	}
}

// oldestUnused returns the oldest *shallow* signal with zero fanout if
// the count of such signals exceeds the threshold; this bounds the
// unconsumed pool. Signals already at the depth cap are deliberately
// skipped — feeding them into more logic would chain past the cap — and
// are instead absorbed by the endpoints in wireEndpoints.
func (g *generator) oldestUnused(threshold int) (int, bool) {
	count := 0
	first := -1
	// Only scan a bounded suffix; a full scan per pick would be
	// quadratic. Unconsumed shallow outputs accumulate in the most recent
	// window.
	lo := len(g.signals) - 8*threshold
	if lo < 0 {
		lo = 0
	}
	for i := lo; i < len(g.signals); i++ {
		s := &g.signals[i]
		if s.fanout == 0 && s.depth < g.spec.Depth {
			if first < 0 {
				first = i
			}
			count++
			if count > threshold {
				return first, true
			}
		}
	}
	return 0, false
}

func (g *generator) consume(srcIdx int, sink netlist.PinID) {
	g.signals[srcIdx].fanout++
	g.pending[srcIdx] = append(g.pending[srcIdx], sink)
}

// wireEndpoints connects register D pins and POs, preferring unconsumed
// signals so that every driven signal ends up with a net, then flushes all
// pending connections as nets.
func (g *generator) wireEndpoints(poPins []netlist.PinID, dffIDs []netlist.CellID) {
	endpoints := make([]netlist.PinID, 0, len(poPins)+len(dffIDs))
	for _, id := range dffIDs {
		endpoints = append(endpoints, g.dInput(id))
	}
	endpoints = append(endpoints, poPins...)
	g.rng.Shuffle(len(endpoints), func(i, j int) {
		endpoints[i], endpoints[j] = endpoints[j], endpoints[i]
	})

	// Collect unconsumed combinational outputs (ports may legally dangle;
	// register outputs that dangle become unused state bits, also legal in
	// the model but wasteful, so consume them too when possible).
	var unused []int
	for i, s := range g.signals {
		if s.fanout == 0 && !g.isPort(s.pin) {
			unused = append(unused, i)
		}
	}
	ei := 0
	for _, idx := range unused {
		if ei >= len(endpoints) {
			break
		}
		g.consume(idx, endpoints[ei])
		ei++
	}
	// Remaining endpoints sample late signals (deep paths reach the
	// registers, as in real pipelines).
	n := len(g.signals)
	for ; ei < len(endpoints); ei++ {
		tail := n / 3
		if tail < 1 {
			tail = 1
		}
		idx := n - 1 - g.rng.Intn(tail)
		// Never route a register's own Q straight back to its D through
		// zero logic by construction order; idx may still be a
		// startpoint, which is fine (a path of pure wire).
		g.consume(idx, endpoints[ei])
	}

	// Any still-unconsumed outputs (possible when unused > endpoints)
	// become extra test points so validation passes; this keeps the
	// endpoint count within a few of the target.
	extra := 0
	for i, s := range g.signals {
		if s.fanout == 0 && !g.isPort(s.pin) {
			po := g.b.AddPO(fmt.Sprintf("%stp_%d", g.prefix, extra), 0.004)
			extra++
			g.consume(i, po)
		}
	}

	// Flush nets in deterministic signal order.
	for i := range g.signals {
		sinks := g.pending[i]
		if len(sinks) == 0 {
			continue
		}
		g.b.Connect(g.signals[i].pin, sinks...)
	}
}

func (g *generator) cellOut(id netlist.CellID) netlist.PinID {
	return g.b.Design().Cell(id).OutputPin()
}

func (g *generator) cellInputs(id netlist.CellID) []netlist.PinID {
	return g.b.Design().Cell(id).InputPins()
}

// dInput returns the D pin of a register instance.
func (g *generator) dInput(id netlist.CellID) netlist.PinID {
	return g.b.Design().Cell(id).InputPins()[0]
}

func (g *generator) isPort(p netlist.PinID) bool {
	return g.b.Design().Pin(p).IsPort
}
