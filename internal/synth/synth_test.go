package synth

import (
	"testing"

	"tsteiner/internal/lib"
	"tsteiner/internal/netlist"
)

func TestBenchmarksTable(t *testing.T) {
	specs := Benchmarks()
	if len(specs) != 10 {
		t.Fatalf("want 10 benchmarks, got %d", len(specs))
	}
	train, test := 0, 0
	names := map[string]bool{}
	for _, s := range specs {
		if names[s.Name] {
			t.Errorf("duplicate benchmark %q", s.Name)
		}
		names[s.Name] = true
		if s.Train {
			train++
		} else {
			test++
		}
	}
	if train != 6 || test != 4 {
		t.Fatalf("split %d/%d want 6/4", train, test)
	}
	// Spot-check Table I cell counts.
	for _, c := range []struct {
		name  string
		cells int
		ends  int
	}{
		{"spm", 238, 129},
		{"jpeg_encoder", 55264, 4420},
		{"des3", 47410, 8872},
	} {
		s, err := BenchmarkByName(c.name)
		if err != nil {
			t.Fatal(err)
		}
		if s.Cells != c.cells || s.Endpoints != c.ends {
			t.Errorf("%s: cells=%d ends=%d want %d/%d", c.name, s.Cells, s.Endpoints, c.cells, c.ends)
		}
	}
	if _, err := BenchmarkByName("nope"); err == nil {
		t.Fatal("expected error for unknown benchmark")
	}
}

func TestGenerateSmall(t *testing.T) {
	l := lib.Default()
	spec, err := BenchmarkByName("spm")
	if err != nil {
		t.Fatal(err)
	}
	d, err := Generate(spec, l)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	st := d.Stats()
	if ratioOff(st.CellNodes, spec.Cells) > 0.05 {
		t.Errorf("cell count %d far from target %d", st.CellNodes, spec.Cells)
	}
	if ratioOff(st.Endpoints, spec.Endpoints) > 0.25 {
		t.Errorf("endpoint count %d far from target %d", st.Endpoints, spec.Endpoints)
	}
	if _, err := d.TopoOrder(); err != nil {
		t.Fatalf("TopoOrder: %v", err)
	}
}

func ratioOff(got, want int) float64 {
	r := float64(got)/float64(want) - 1
	if r < 0 {
		r = -r
	}
	return r
}

func TestGenerateDeterministic(t *testing.T) {
	l := lib.Default()
	spec, _ := BenchmarkByName("cic_decimator")
	a, err := Generate(spec, l)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec, l)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Cells) != len(b.Cells) || len(a.Nets) != len(b.Nets) || len(a.Pins) != len(b.Pins) {
		t.Fatal("generation not deterministic in sizes")
	}
	for i := range a.Nets {
		if a.Nets[i].Driver != b.Nets[i].Driver || len(a.Nets[i].Sinks) != len(b.Nets[i].Sinks) {
			t.Fatalf("net %d differs between runs", i)
		}
	}
}

func TestGenerateScaled(t *testing.T) {
	l := lib.Default()
	for _, spec := range Benchmarks() {
		small := spec.Scale(0.02)
		d, err := Generate(small, l)
		if err != nil {
			t.Fatalf("%s scaled: %v", spec.Name, err)
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("%s scaled validate: %v", spec.Name, err)
		}
		st := d.Stats()
		if st.Endpoints == 0 || st.NetEdges == 0 {
			t.Fatalf("%s scaled produced empty design: %+v", spec.Name, st)
		}
	}
}

func TestScaleFloors(t *testing.T) {
	s := Spec{Cells: 100, Endpoints: 10, PIs: 4, Depth: 8}
	tiny := s.Scale(0.0001)
	if tiny.Cells < 40 || tiny.Endpoints < 8 || tiny.PIs < 4 {
		t.Fatalf("Scale must floor: %+v", tiny)
	}
}

func TestFanoutDistributionHasTail(t *testing.T) {
	l := lib.Default()
	spec, _ := BenchmarkByName("APU")
	d, err := Generate(spec.Scale(0.5), l)
	if err != nil {
		t.Fatal(err)
	}
	max := 0
	total := 0
	for i := range d.Nets {
		f := len(d.Nets[i].Sinks)
		total += f
		if f > max {
			max = f
		}
	}
	avg := float64(total) / float64(len(d.Nets))
	if avg < 1.0 || avg > 4.0 {
		t.Errorf("average fanout %.2f outside realistic band", avg)
	}
	if max < 10 {
		t.Errorf("no high-fanout nets (max=%d); hub mechanism broken", max)
	}
}

func TestMultiPinNetsExist(t *testing.T) {
	// Steiner construction is only interesting with 3+ pin nets.
	l := lib.Default()
	spec, _ := BenchmarkByName("des")
	d, err := Generate(spec.Scale(0.1), l)
	if err != nil {
		t.Fatal(err)
	}
	multi := 0
	for i := range d.Nets {
		if d.Nets[i].NumPins() >= 3 {
			multi++
		}
	}
	if multi < len(d.Nets)/20 {
		t.Errorf("only %d of %d nets are multi-pin", multi, len(d.Nets))
	}
}

func TestLogicDepthCapped(t *testing.T) {
	// Combinational depth (cells per path) must respect spec.Depth
	// regardless of design size — the property that keeps arrival times
	// size-independent.
	l := lib.Default()
	for _, name := range []string{"spm", "APU", "usb_cdc_core"} {
		spec, err := BenchmarkByName(name)
		if err != nil {
			t.Fatal(err)
		}
		d, err := Generate(spec, l)
		if err != nil {
			t.Fatal(err)
		}
		order, err := d.TopoOrder()
		if err != nil {
			t.Fatal(err)
		}
		fanin := d.FaninEdges()
		// Depth in cell stages: count cell-arc traversals.
		depth := make(map[netlist.PinID]int)
		maxDepth := 0
		for _, pid := range order {
			p := d.Pin(pid)
			dv := 0
			for _, pred := range fanin[pid] {
				cand := depth[pred]
				// Crossing a cell arc (input→output of same cell) adds one
				// stage.
				if !p.IsPort && p.Dir == netlist.Output && d.Pin(pred).Cell == p.Cell {
					cand++
				}
				if cand > dv {
					dv = cand
				}
			}
			depth[pid] = dv
			if dv > maxDepth {
				maxDepth = dv
			}
		}
		if maxDepth > spec.Depth+1 {
			t.Errorf("%s: logic depth %d exceeds cap %d", name, maxDepth, spec.Depth)
		}
	}
}

func TestDegenerateSpecRejected(t *testing.T) {
	l := lib.Default()
	if _, err := Generate(Spec{Cells: 1, Endpoints: 1, PIs: 0}, l); err == nil {
		t.Fatal("degenerate spec accepted")
	}
}

func TestGenerateMesh(t *testing.T) {
	l := lib.Default()
	spec := DefaultMesh()
	d, err := GenerateMesh(spec, l)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// 8×8 PEs × 6 cells each.
	if want := spec.Rows * spec.Cols * 6; len(d.Cells) != want {
		t.Fatalf("cells=%d want %d", len(d.Cells), want)
	}
	// Endpoints: one D pin per PE plus the south POs.
	if want := spec.Rows*spec.Cols + spec.Cols; len(d.Endpoints()) != want {
		t.Fatalf("endpoints=%d want %d", len(d.Endpoints()), want)
	}
	if _, err := d.TopoOrder(); err != nil {
		t.Fatal(err)
	}
	if d.ClockPeriod != spec.ClockNS {
		t.Fatalf("clock %g want %g", d.ClockPeriod, spec.ClockNS)
	}
	// Degenerate specs rejected.
	if _, err := GenerateMesh(MeshSpec{Rows: 0, Cols: 3}, l); err == nil {
		t.Fatal("degenerate mesh accepted")
	}
}

func TestMeshThroughFullFlowViaSTA(t *testing.T) {
	// The mesh family must survive the whole substrate pipeline.
	l := lib.Default()
	d, err := GenerateMesh(MeshSpec{Name: "mesh4x4", Rows: 4, Cols: 4, ClockNS: 0.55}, l)
	if err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.CellNodes == 0 || st.Endpoints == 0 {
		t.Fatalf("empty mesh stats: %+v", st)
	}
	// Every PE-to-PE net is register-bounded: the startpoint count is
	// PIs + registers.
	wantStarts := len(d.PIs) + 16
	if got := len(d.Startpoints()); got != wantStarts {
		t.Fatalf("startpoints=%d want %d", got, wantStarts)
	}
}

func TestEndpointsMatchStats(t *testing.T) {
	l := lib.Default()
	spec, _ := BenchmarkByName("usb_cdc_core")
	d, err := Generate(spec.Scale(0.2), l)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(d.Endpoints()), d.Stats().Endpoints; got != want {
		t.Fatalf("Endpoints()=%d Stats=%d", got, want)
	}
	// Every endpoint must be reachable: connected to some net.
	for _, e := range d.Endpoints() {
		if d.Pin(e).Net == netlist.NoID {
			t.Errorf("endpoint %q unconnected", d.Pin(e).Name)
		}
	}
}
