package synth

import (
	"testing"
	"tsteiner/internal/lib"
)

func TestGenUnchangedByLibExtension(t *testing.T) {
	d, err := Generate(mustSpec(t, "spm"), lib.Default())
	if err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.CellNodes != 238 || st.Endpoints != 129 {
		t.Fatalf("generation drifted: %+v", st)
	}
}
func mustSpec(t *testing.T, n string) Spec {
	s, err := BenchmarkByName(n)
	if err != nil {
		t.Fatal(err)
	}
	return s
}
