// Package rc extracts RC networks for routed (or pre-routing) nets and
// evaluates Elmore wire delays and PERI-style slew degradation. Together
// with internal/sta it forms the "sign-off" oracle of this repository:
// timing measured on the post-routing interconnect, the role Cadence
// Innovus plays in the paper.
package rc

import (
	"fmt"
	"math"

	"tsteiner/internal/geom"
	"tsteiner/internal/grid"
	"tsteiner/internal/lib"
	"tsteiner/internal/netlist"
	"tsteiner/internal/route"
	"tsteiner/internal/rsmt"
)

// ln9 converts an Elmore time constant into a 10–90% slew estimate.
const ln9 = 2.1972245773362196

// NetRC is the extracted timing view of one net.
type NetRC struct {
	Net netlist.NetID
	// TotalCap is the capacitance the driver sees: all wire plus all sink
	// pin caps (pF).
	TotalCap float64
	// SinkDelay[i] is the Elmore delay (ns) from driver to net.Sinks[i],
	// excluding the driver cell's own delay.
	SinkDelay []float64
	// SinkSlewAdd[i] is the additional slew (ns) accumulated across the
	// wire to net.Sinks[i].
	SinkSlewAdd []float64
	// WireCap and WireRes summarize the net's interconnect (pF, kΩ).
	WireCap, WireRes float64
}

// Extract computes RC views for every net from the routed topology: each
// tree edge's resistance/capacitance follows its global-routing path
// (per-layer unit R/C times routed length, plus via resistance), giving
// the post-routing "sign-off" parasitics.
func Extract(d *netlist.Design, f *rsmt.Forest, g *grid.Grid, routes *route.Result, tech *lib.Library) ([]NetRC, error) {
	if len(f.Trees) != len(d.Nets) || len(routes.Routes) != len(d.Nets) {
		return nil, fmt.Errorf("rc: forest/routes/netlist size mismatch")
	}
	out := make([]NetRC, len(d.Nets))
	for ni := range d.Nets {
		nrc, err := ExtractNet(d, f.Trees[ni], g, &routes.Routes[ni], tech)
		if err != nil {
			return nil, err
		}
		out[ni] = nrc
	}
	return out, nil
}

// ExtractNet computes the post-routing RC view of a single net — the
// per-net body of Extract, exported so incremental flows can re-extract
// only the nets whose routing changed and splice the result into an
// existing RC vector with bit-identical values.
func ExtractNet(d *netlist.Design, tr *rsmt.Tree, g *grid.Grid, nr *route.NetRoute, tech *lib.Library) (NetRC, error) {
	edgeRC := make([]rcPair, len(tr.Edges))
	for _, er := range nr.Edges {
		e := tr.Edges[er.TreeEdge]
		from := tr.Nodes[e.A].Pos.Round()
		to := tr.Nodes[e.B].Pos.Round()
		edgeRC[er.TreeEdge] = routedEdgeRC(g, &er, from, to, tech)
	}
	return evalTree(d, tr, edgeRC, tech)
}

// ExtractTreeNet computes the pre-routing RC view of a single net (the
// per-net body of ExtractFromTrees) — used by windowed-STA tests and
// flows that move one net at a time before routing exists.
func ExtractTreeNet(d *netlist.Design, tr *rsmt.Tree, tech *lib.Library) (NetRC, error) {
	rAvg, cAvg := AvgLayerRC(tech)
	edgeRC := make([]rcPair, len(tr.Edges))
	for ei, e := range tr.Edges {
		l := geom.ManhattanDistF(tr.Nodes[e.A].Pos, tr.Nodes[e.B].Pos)
		edgeRC[ei] = rcPair{R: l*rAvg + 2*tech.ViaRes, C: l * cAvg}
	}
	return evalTree(d, tr, edgeRC, tech)
}

// ExtractFromTrees computes pre-routing RC views straight from Steiner
// tree geometry with an average layer mix — the early estimate available
// before global routing (used for baselines and tests).
func ExtractFromTrees(d *netlist.Design, f *rsmt.Forest, tech *lib.Library) ([]NetRC, error) {
	if len(f.Trees) != len(d.Nets) {
		return nil, fmt.Errorf("rc: forest/netlist size mismatch")
	}
	rAvg, cAvg := AvgLayerRC(tech)
	out := make([]NetRC, len(d.Nets))
	for ni := range d.Nets {
		tr := f.Trees[ni]
		edgeRC := make([]rcPair, len(tr.Edges))
		for ei, e := range tr.Edges {
			l := geom.ManhattanDistF(tr.Nodes[e.A].Pos, tr.Nodes[e.B].Pos)
			edgeRC[ei] = rcPair{R: l*rAvg + 2*tech.ViaRes, C: l * cAvg}
		}
		nrc, err := evalTree(d, tr, edgeRC, tech)
		if err != nil {
			return nil, err
		}
		out[ni] = nrc
	}
	return out, nil
}

// AvgLayerRC returns the mean unit resistance and capacitance over the
// routing layers (layer 0 excluded), the layer mix assumed before layer
// assignment exists.
func AvgLayerRC(tech *lib.Library) (r, c float64) {
	n := 0
	for l := 1; l < tech.Layers(); l++ {
		r += tech.LayerRes[l]
		c += tech.LayerCap[l]
		n++
	}
	if n == 0 {
		return 0, 0
	}
	return r / float64(n), c / float64(n)
}

type rcPair struct {
	R, C float64
}

// routedEdgeRC accumulates R/C along a routed edge's geometric path using
// the per-step layer assignment.
func routedEdgeRC(g *grid.Grid, er *route.EdgeRoute, from, to geom.Point, tech *lib.Library) rcPair {
	pts := route.GeomPathDBU(g, er, from, to)
	var rc rcPair
	rAvg, cAvg := AvgLayerRC(tech)
	for i := 0; i+1 < len(pts); i++ {
		l := float64(geom.ManhattanDist(pts[i], pts[i+1]))
		layer := -1
		if i < len(er.Layers) {
			layer = er.Layers[i]
		}
		if layer >= 1 && layer < tech.Layers() {
			rc.R += l * tech.LayerRes[layer]
			rc.C += l * tech.LayerCap[layer]
		} else {
			rc.R += l * rAvg
			rc.C += l * cAvg
		}
	}
	rc.R += float64(er.Vias) * tech.ViaRes
	return rc
}

// evalTree runs Elmore analysis on one tree given per-edge RC.
func evalTree(d *netlist.Design, tr *rsmt.Tree, edgeRC []rcPair, tech *lib.Library) (NetRC, error) {
	net := d.Net(tr.Net)
	n := len(tr.Nodes)

	// nodeCap: half of each incident edge's wire cap, plus sink pin cap.
	nodeCap := make([]float64, n)
	adj := make([][]int32, n) // neighbor via edge index
	edgeOf := make([][]int32, n)
	var wireCap, wireRes float64
	for ei, e := range tr.Edges {
		rc := edgeRC[ei]
		nodeCap[e.A] += rc.C / 2
		nodeCap[e.B] += rc.C / 2
		wireCap += rc.C
		wireRes += rc.R
		adj[e.A] = append(adj[e.A], e.B)
		adj[e.B] = append(adj[e.B], e.A)
		edgeOf[e.A] = append(edgeOf[e.A], int32(ei))
		edgeOf[e.B] = append(edgeOf[e.B], int32(ei))
	}
	for i := range tr.Nodes {
		nd := &tr.Nodes[i]
		if nd.Kind == rsmt.PinNode && nd.Pin != net.Driver {
			nodeCap[i] += d.Pin(nd.Pin).Cap
		}
	}

	// Post-order subtree capacitance and pre-order delays, iteratively
	// (trees can be deep on large nets).
	parent := make([]int32, n)
	parentEdge := make([]int32, n)
	order := make([]int32, 0, n)
	for i := range parent {
		parent[i] = -2
	}
	stack := []int32{0}
	parent[0] = -1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		order = append(order, u)
		for k, v := range adj[u] {
			if parent[v] == -2 {
				parent[v] = u
				parentEdge[v] = edgeOf[u][k]
				stack = append(stack, v)
			}
		}
	}
	if len(order) != n {
		return NetRC{}, fmt.Errorf("rc: net %s tree disconnected", net.Name)
	}

	subCap := make([]float64, n)
	copy(subCap, nodeCap)
	for i := n - 1; i >= 1; i-- {
		u := order[i]
		subCap[parent[u]] += subCap[u]
	}

	delay := make([]float64, n)
	for i := 1; i < n; i++ {
		u := order[i]
		delay[u] = delay[parent[u]] + edgeRC[parentEdge[u]].R*subCap[u]
	}

	// Collect per-sink results in net.Sinks order.
	sinkIdx := make(map[netlist.PinID]int32, len(net.Sinks))
	for i := range tr.Nodes {
		nd := &tr.Nodes[i]
		if nd.Kind == rsmt.PinNode && nd.Pin != net.Driver {
			sinkIdx[nd.Pin] = int32(i)
		}
	}
	out := NetRC{
		Net:      tr.Net,
		TotalCap: subCap[0],
		WireCap:  wireCap,
		WireRes:  wireRes,
	}
	out.SinkDelay = make([]float64, len(net.Sinks))
	out.SinkSlewAdd = make([]float64, len(net.Sinks))
	for si, pid := range net.Sinks {
		node, ok := sinkIdx[pid]
		if !ok {
			return NetRC{}, fmt.Errorf("rc: net %s sink %d missing from tree", net.Name, pid)
		}
		out.SinkDelay[si] = delay[node]
		out.SinkSlewAdd[si] = ln9 * delay[node]
	}
	return out, nil
}

// CombineSlew merges a driver output slew with the wire slew contribution
// using the root-sum-square (PERI) rule.
func CombineSlew(driverSlew, wireSlewAdd float64) float64 {
	return math.Sqrt(driverSlew*driverSlew + wireSlewAdd*wireSlewAdd)
}
