package rc

import (
	"math"
	"testing"

	"tsteiner/internal/geom"
	"tsteiner/internal/grid"
	"tsteiner/internal/lib"
	"tsteiner/internal/netlist"
	"tsteiner/internal/place"
	"tsteiner/internal/route"
	"tsteiner/internal/rsmt"
	"tsteiner/internal/synth"
)

func placeBox(xlo, ylo, xhi, yhi int) geom.BBox {
	return geom.BBox{XLo: xlo, YLo: ylo, XHi: xhi, YHi: yhi}
}

func pointXY(x, y int) geom.Point { return geom.Point{X: x, Y: y} }

func fixture(t *testing.T) (*netlist.Design, *rsmt.Forest, *grid.Grid, *route.Result, *lib.Library) {
	t.Helper()
	l := lib.Default()
	spec, err := synth.BenchmarkByName("spm")
	if err != nil {
		t.Fatal(err)
	}
	d, err := synth.Generate(spec, l)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := place.Place(d, place.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	f, err := rsmt.BuildAll(d, rsmt.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	g, err := grid.New(d.Die, 8, []int{4, 6, 6, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := route.Route(d, f, g, route.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return d, f, g, res, l
}

func TestExtractShapes(t *testing.T) {
	d, f, g, res, l := fixture(t)
	rcs, err := Extract(d, f, g, res, l)
	if err != nil {
		t.Fatal(err)
	}
	if len(rcs) != len(d.Nets) {
		t.Fatalf("%d RC views for %d nets", len(rcs), len(d.Nets))
	}
	for ni, nrc := range rcs {
		net := d.Net(netlist.NetID(ni))
		if len(nrc.SinkDelay) != len(net.Sinks) || len(nrc.SinkSlewAdd) != len(net.Sinks) {
			t.Fatalf("net %s: sink arrays wrong length", net.Name)
		}
		for si := range nrc.SinkDelay {
			if nrc.SinkDelay[si] < 0 {
				t.Fatalf("net %s sink %d negative delay", net.Name, si)
			}
			if nrc.SinkSlewAdd[si] < 0 {
				t.Fatalf("net %s sink %d negative slew", net.Name, si)
			}
		}
		if nrc.TotalCap <= 0 {
			t.Fatalf("net %s non-positive total cap", net.Name)
		}
		// Total cap covers at least the sink pin caps.
		var pinCap float64
		for _, s := range net.Sinks {
			pinCap += d.Pin(s).Cap
		}
		if nrc.TotalCap < pinCap-1e-12 {
			t.Fatalf("net %s: TotalCap %.6f below pin cap %.6f", net.Name, nrc.TotalCap, pinCap)
		}
	}
}

func TestElmoreHandTwoPin(t *testing.T) {
	// PI --- net ---> PO with known geometry: verify Elmore against a
	// hand computation. Wire R=r*L, C=c*L; Elmore = R*(C/2 + Cpin).
	l := lib.Default()
	b := netlist.NewBuilder("hand", l)
	pi := b.AddPI("i")
	po := b.AddPO("o", 0.02)
	b.Connect(pi, po)
	d, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	// Manual placement.
	d.Die = placeBox(0, 0, 100, 100)
	d.Pin(pi).Pos = pointXY(0, 0)
	d.Pin(po).Pos = pointXY(60, 0)

	f, err := rsmt.BuildAll(d, rsmt.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rcs, err := ExtractFromTrees(d, f, l)
	if err != nil {
		t.Fatal(err)
	}
	rAvg, cAvg := AvgLayerRC(l)
	L := 60.0
	R := L*rAvg + 2*l.ViaRes
	C := L * cAvg
	want := R * (C/2 + 0.02)
	got := rcs[0].SinkDelay[0]
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("Elmore=%g want %g", got, want)
	}
	if math.Abs(rcs[0].TotalCap-(C+0.02)) > 1e-12 {
		t.Fatalf("TotalCap=%g want %g", rcs[0].TotalCap, C+0.02)
	}
}

func TestElmoreMonotoneInLength(t *testing.T) {
	// Longer wire must have strictly larger Elmore delay.
	l := lib.Default()
	delayAt := func(dist int) float64 {
		b := netlist.NewBuilder("mono", l)
		pi := b.AddPI("i")
		po := b.AddPO("o", 0.02)
		b.Connect(pi, po)
		d, err := b.Finish()
		if err != nil {
			t.Fatal(err)
		}
		d.Die = placeBox(0, 0, 2000, 10)
		d.Pin(pi).Pos = pointXY(0, 0)
		d.Pin(po).Pos = pointXY(dist, 0)
		f, err := rsmt.BuildAll(d, rsmt.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		rcs, err := ExtractFromTrees(d, f, l)
		if err != nil {
			t.Fatal(err)
		}
		return rcs[0].SinkDelay[0]
	}
	prev := -1.0
	for _, dist := range []int{10, 50, 200, 800, 1600} {
		dl := delayAt(dist)
		if dl <= prev {
			t.Fatalf("Elmore not monotone at %d DBU", dist)
		}
		prev = dl
	}
}

func TestRoutedVsTreeExtraction(t *testing.T) {
	// Routed extraction must see wirelength >= tree extraction (routing
	// can only detour), reflected in wire cap.
	d, f, g, res, l := fixture(t)
	routed, err := Extract(d, f, g, res, l)
	if err != nil {
		t.Fatal(err)
	}
	early, err := ExtractFromTrees(d, f, l)
	if err != nil {
		t.Fatal(err)
	}
	var routedCap, earlyCap float64
	for ni := range routed {
		routedCap += routed[ni].WireCap
		earlyCap += early[ni].WireCap
	}
	// GCell rounding can shrink individual nets, but in aggregate routed
	// wire should not be dramatically below the tree estimate.
	if routedCap < 0.5*earlyCap {
		t.Fatalf("routed wire cap %.4f implausibly below early %.4f", routedCap, earlyCap)
	}
}

func TestCombineSlew(t *testing.T) {
	if got := CombineSlew(3, 4); math.Abs(got-5) > 1e-12 {
		t.Fatalf("CombineSlew(3,4)=%g want 5", got)
	}
	if got := CombineSlew(0.1, 0); got != 0.1 {
		t.Fatalf("CombineSlew with zero wire=%g", got)
	}
}

func TestExtractSizeMismatch(t *testing.T) {
	d, f, g, res, l := fixture(t)
	short := &rsmt.Forest{Trees: f.Trees[:1]}
	if _, err := Extract(d, short, g, res, l); err == nil {
		t.Fatal("mismatched forest accepted")
	}
	if _, err := ExtractFromTrees(d, short, l); err == nil {
		t.Fatal("mismatched forest accepted in tree extraction")
	}
}

func TestMovingSteinerChangesDelay(t *testing.T) {
	// The core premise of the paper: Steiner positions change sign-off
	// parasitics. Build a 3-sink net, move its Steiner point, verify the
	// Elmore delays respond.
	l := lib.Default()
	b := netlist.NewBuilder("steiner", l)
	pi := b.AddPI("i")
	po1 := b.AddPO("o1", 0.02)
	po2 := b.AddPO("o2", 0.02)
	po3 := b.AddPO("o3", 0.02)
	b.Connect(pi, po1, po2, po3)
	d, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	d.Die = placeBox(0, 0, 200, 200)
	d.Pin(pi).Pos = pointXY(0, 100)
	d.Pin(po1).Pos = pointXY(200, 0)
	d.Pin(po2).Pos = pointXY(200, 100)
	d.Pin(po3).Pos = pointXY(200, 200)
	f, err := rsmt.BuildAll(d, rsmt.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if f.Trees[0].SteinerCount() == 0 {
		t.Skip("construction found no Steiner point for this geometry")
	}
	before, err := ExtractFromTrees(d, f, l)
	if err != nil {
		t.Fatal(err)
	}
	xs, ys, idx := f.Trees[0].SteinerPositionsOfTree()
	for i := range xs {
		xs[i] += 40
		ys[i] += 15
	}
	f.Trees[0].SetPositionsOfTree(xs, ys, idx)
	after, err := ExtractFromTrees(d, f, l)
	if err != nil {
		t.Fatal(err)
	}
	changed := false
	for si := range before[0].SinkDelay {
		if math.Abs(before[0].SinkDelay[si]-after[0].SinkDelay[si]) > 1e-12 {
			changed = true
		}
	}
	if !changed {
		t.Fatal("moving the Steiner point left all sink delays unchanged")
	}
}
