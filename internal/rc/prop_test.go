package rc_test

import (
	"fmt"
	"math"
	"testing"

	"tsteiner/internal/check"
	"tsteiner/internal/lib"
	"tsteiner/internal/netlist"
	"tsteiner/internal/rc"
	"tsteiner/internal/rsmt"
)

var propCfg = check.Config{Cases: 8}

// buildRC generates, places and Steinerizes a random design, then
// extracts its parasitics.
func buildRC(spec check.DesignSpec) (*netlist.Design, *rsmt.Forest, []rc.NetRC, error) {
	d, err := spec.Build()
	if err != nil {
		return nil, nil, nil, err
	}
	f, err := rsmt.BuildAll(d, rsmt.DefaultOptions())
	if err != nil {
		return nil, nil, nil, err
	}
	rcs, err := rc.ExtractFromTrees(d, f, lib.Default())
	if err != nil {
		return nil, nil, nil, err
	}
	return d, f, rcs, nil
}

// TestPropRCPositiveFinite checks physical sanity on random designs:
// every net has positive total capacitance and non-negative, finite
// sink delays and slew contributions.
func TestPropRCPositiveFinite(t *testing.T) {
	check.RunCfg(t, propCfg, check.DesignSpecs(), func(spec check.DesignSpec) error {
		_, _, rcs, err := buildRC(spec)
		if err != nil {
			return err
		}
		for ni := range rcs {
			n := &rcs[ni]
			if !(n.TotalCap > 0) || math.IsInf(n.TotalCap, 0) {
				return fmt.Errorf("net %d: TotalCap %g", ni, n.TotalCap)
			}
			for si := range n.SinkDelay {
				if n.SinkDelay[si] < 0 || math.IsNaN(n.SinkDelay[si]) || math.IsInf(n.SinkDelay[si], 0) {
					return fmt.Errorf("net %d sink %d: delay %g", ni, si, n.SinkDelay[si])
				}
				if n.SinkSlewAdd[si] < 0 || math.IsNaN(n.SinkSlewAdd[si]) {
					return fmt.Errorf("net %d sink %d: slewAdd %g", ni, si, n.SinkSlewAdd[si])
				}
			}
		}
		return nil
	})
}

// translate shifts every pin, die corner and tree node by (dx, dy).
func translate(d *netlist.Design, f *rsmt.Forest, dx, dy int) {
	d.Die.XLo += dx
	d.Die.XHi += dx
	d.Die.YLo += dy
	d.Die.YHi += dy
	for i := range d.Pins {
		d.Pins[i].Pos.X += dx
		d.Pins[i].Pos.Y += dy
	}
	for ti := range f.Trees {
		for ni := range f.Trees[ti].Nodes {
			f.Trees[ti].Nodes[ni].Pos.X += float64(dx)
			f.Trees[ti].Nodes[ni].Pos.Y += float64(dy)
		}
	}
}

// transpose swaps the X and Y axes of the whole design and forest.
func transpose(d *netlist.Design, f *rsmt.Forest) {
	d.Die.XLo, d.Die.YLo = d.Die.YLo, d.Die.XLo
	d.Die.XHi, d.Die.YHi = d.Die.YHi, d.Die.XHi
	for i := range d.Pins {
		d.Pins[i].Pos.X, d.Pins[i].Pos.Y = d.Pins[i].Pos.Y, d.Pins[i].Pos.X
	}
	for ti := range f.Trees {
		for ni := range f.Trees[ti].Nodes {
			p := &f.Trees[ti].Nodes[ni].Pos
			p.X, p.Y = p.Y, p.X
		}
	}
}

func sameRC(a, b []rc.NetRC) error {
	for ni := range a {
		if a[ni].TotalCap != b[ni].TotalCap {
			return fmt.Errorf("net %d: TotalCap %.12g vs %.12g", ni, a[ni].TotalCap, b[ni].TotalCap)
		}
		for si := range a[ni].SinkDelay {
			if a[ni].SinkDelay[si] != b[ni].SinkDelay[si] {
				return fmt.Errorf("net %d sink %d: delay %.12g vs %.12g", ni, si, a[ni].SinkDelay[si], b[ni].SinkDelay[si])
			}
			if a[ni].SinkSlewAdd[si] != b[ni].SinkSlewAdd[si] {
				return fmt.Errorf("net %d sink %d: slewAdd %.12g vs %.12g", ni, si, a[ni].SinkSlewAdd[si], b[ni].SinkSlewAdd[si])
			}
		}
	}
	return nil
}

// TestPropElmoreTranslationInvariant: the pre-routing Elmore model
// depends only on edge lengths, so shifting the whole layout must keep
// every parasitic bit-identical.
func TestPropElmoreTranslationInvariant(t *testing.T) {
	g := check.Two(check.DesignSpecs(), check.Two(check.Int(-300, 300), check.Int(-300, 300)))
	check.RunCfg(t, propCfg, g, func(in check.Pair[check.DesignSpec, check.Pair[int, int]]) error {
		d, f, rcs, err := buildRC(in.A)
		if err != nil {
			return err
		}
		translate(d, f, in.B.A, in.B.B)
		moved, err := rc.ExtractFromTrees(d, f, lib.Default())
		if err != nil {
			return err
		}
		if err := sameRC(rcs, moved); err != nil {
			return fmt.Errorf("translation by (%d,%d) changed parasitics: %w", in.B.A, in.B.B, err)
		}
		return nil
	})
}

// TestPropElmoreTransposeInvariant: swapping the axes preserves every
// Manhattan edge length, and the averaged-layer model has no direction
// preference, so parasitics must be bit-identical under transpose.
func TestPropElmoreTransposeInvariant(t *testing.T) {
	check.RunCfg(t, propCfg, check.DesignSpecs(), func(spec check.DesignSpec) error {
		d, f, rcs, err := buildRC(spec)
		if err != nil {
			return err
		}
		transpose(d, f)
		flipped, err := rc.ExtractFromTrees(d, f, lib.Default())
		if err != nil {
			return err
		}
		if err := sameRC(rcs, flipped); err != nil {
			return fmt.Errorf("transpose changed parasitics: %w", err)
		}
		return nil
	})
}
