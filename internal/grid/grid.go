// Package grid models the 3D global-routing grid graph: the die is tiled
// into GCells; adjacent GCells are linked by routing edges with per-layer
// track capacities. Layers alternate preferred direction. The router
// operates on the aggregated 2D view (per-direction capacity) and a layer
// assignment step distributes 2D usage over the stack, the structure used
// by CUGR-class global routers.
package grid

import (
	"fmt"
	"math"

	"tsteiner/internal/geom"
)

// Dir is a routing direction.
type Dir uint8

// Routing directions.
const (
	Horiz Dir = iota
	Vert
)

// Grid is the global-routing graph.
type Grid struct {
	W, H      int // GCells per axis
	GCellSize int // DBU per GCell side
	Die       geom.BBox

	// LayerDir[l] is layer l's preferred direction. Layer 0 is the pin
	// layer and carries no routing capacity.
	LayerDir []Dir
	// LayerCap[l] is the track capacity per GCell edge on layer l.
	LayerCap []int

	// Aggregated per-direction capacities.
	capDir [2]int

	// 2D edge usage. useH[y*(W-1)+x] is the edge (x,y)→(x+1,y);
	// useV[y*W+x] is the edge (x,y)→(x,y+1).
	useH, useV []int32

	// Per-layer usage mirrors the 2D arrays after layer assignment.
	layerUseH, layerUseV [][]int32
}

// New builds a grid covering the die. gcellSize is the GCell side in DBU;
// layerCaps gives per-layer track capacity (index 0 is the pin layer and
// is forced to zero).
func New(die geom.BBox, gcellSize int, layerCaps []int) (*Grid, error) {
	if die.Empty() {
		return nil, fmt.Errorf("grid: empty die")
	}
	if gcellSize < 1 {
		return nil, fmt.Errorf("grid: gcell size %d < 1", gcellSize)
	}
	if len(layerCaps) < 3 {
		return nil, fmt.Errorf("grid: need at least 3 layers, got %d", len(layerCaps))
	}
	w := die.Width()/gcellSize + 1
	h := die.Height()/gcellSize + 1
	if w < 2 {
		w = 2
	}
	if h < 2 {
		h = 2
	}
	g := &Grid{
		W: w, H: h, GCellSize: gcellSize, Die: die,
		LayerCap: append([]int(nil), layerCaps...),
	}
	g.LayerCap[0] = 0
	g.LayerDir = make([]Dir, len(layerCaps))
	for l := range g.LayerDir {
		// Odd layers horizontal, even vertical (M1 pin layer unused).
		if l%2 == 1 {
			g.LayerDir[l] = Horiz
		} else {
			g.LayerDir[l] = Vert
		}
	}
	for l, c := range g.LayerCap {
		if c < 0 {
			return nil, fmt.Errorf("grid: negative capacity on layer %d", l)
		}
		g.capDir[g.LayerDir[l]] += c
	}
	if g.capDir[Horiz] == 0 || g.capDir[Vert] == 0 {
		return nil, fmt.Errorf("grid: a direction has zero total capacity")
	}
	g.useH = make([]int32, (w-1)*h)
	g.useV = make([]int32, w*(h-1))
	g.layerUseH = make([][]int32, len(layerCaps))
	g.layerUseV = make([][]int32, len(layerCaps))
	for l := range layerCaps {
		g.layerUseH[l] = make([]int32, (w-1)*h)
		g.layerUseV[l] = make([]int32, w*(h-1))
	}
	return g, nil
}

// GCellOf maps a DBU point to its GCell coordinates, clamped to the grid.
func (g *Grid) GCellOf(p geom.Point) (int, int) {
	x := (p.X - g.Die.XLo) / g.GCellSize
	y := (p.Y - g.Die.YLo) / g.GCellSize
	if x < 0 {
		x = 0
	}
	if x >= g.W {
		x = g.W - 1
	}
	if y < 0 {
		y = 0
	}
	if y >= g.H {
		y = g.H - 1
	}
	return x, y
}

// Center returns the DBU center of GCell (x, y).
func (g *Grid) Center(x, y int) geom.Point {
	return geom.Point{
		X: g.Die.XLo + x*g.GCellSize + g.GCellSize/2,
		Y: g.Die.YLo + y*g.GCellSize + g.GCellSize/2,
	}
}

// hIndex returns the index of horizontal edge (x,y)→(x+1,y), or -1.
func (g *Grid) hIndex(x, y int) int {
	if x < 0 || x >= g.W-1 || y < 0 || y >= g.H {
		return -1
	}
	return y*(g.W-1) + x
}

// vIndex returns the index of vertical edge (x,y)→(x,y+1), or -1.
func (g *Grid) vIndex(x, y int) int {
	if x < 0 || x >= g.W || y < 0 || y >= g.H-1 {
		return -1
	}
	return y*g.W + x
}

// UsageH returns the 2D usage of horizontal edge (x,y)→(x+1,y).
func (g *Grid) UsageH(x, y int) int {
	if i := g.hIndex(x, y); i >= 0 {
		return int(g.useH[i])
	}
	return 0
}

// UsageV returns the 2D usage of vertical edge (x,y)→(x,y+1).
func (g *Grid) UsageV(x, y int) int {
	if i := g.vIndex(x, y); i >= 0 {
		return int(g.useV[i])
	}
	return 0
}

// CapDir returns the aggregate per-edge capacity for a direction.
func (g *Grid) CapDir(d Dir) int { return g.capDir[d] }

// AddH adjusts usage on horizontal edge (x,y)→(x+1,y) by delta.
func (g *Grid) AddH(x, y int, delta int) {
	if i := g.hIndex(x, y); i >= 0 {
		g.useH[i] += int32(delta)
	}
}

// AddV adjusts usage on vertical edge (x,y)→(x,y+1) by delta.
func (g *Grid) AddV(x, y int, delta int) {
	if i := g.vIndex(x, y); i >= 0 {
		g.useV[i] += int32(delta)
	}
}

// CostH returns the routing cost of crossing horizontal edge (x,y)→(x+1,y)
// with the current usage: a unit base plus a smooth congestion penalty
// that grows exponentially once demand approaches capacity. Used as the
// A* edge weight.
func (g *Grid) CostH(x, y int) float64 { return edgeCost(g.UsageH(x, y), g.capDir[Horiz]) }

// CostV returns the routing cost of crossing vertical edge (x,y)→(x,y+1).
func (g *Grid) CostV(x, y int) float64 { return edgeCost(g.UsageV(x, y), g.capDir[Vert]) }

func edgeCost(usage, cap int) float64 {
	r := float64(usage+1) / float64(cap)
	// Below ~70% utilization the penalty is negligible; past capacity it
	// dominates, pushing the maze router around hot spots.
	return 1.0 + math.Exp(6.0*(r-1.0))
}

// OverflowH returns max(0, usage-capacity) for a horizontal edge.
func (g *Grid) OverflowH(x, y int) int { return overflow(g.UsageH(x, y), g.capDir[Horiz]) }

// OverflowV returns max(0, usage-capacity) for a vertical edge.
func (g *Grid) OverflowV(x, y int) int { return overflow(g.UsageV(x, y), g.capDir[Vert]) }

func overflow(usage, cap int) int {
	if usage > cap {
		return usage - cap
	}
	return 0
}

// TotalOverflow sums overflow over all 2D edges — the global congestion
// figure of merit.
func (g *Grid) TotalOverflow() int {
	sum := 0
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W-1; x++ {
			sum += g.OverflowH(x, y)
		}
	}
	for y := 0; y < g.H-1; y++ {
		for x := 0; x < g.W; x++ {
			sum += g.OverflowV(x, y)
		}
	}
	return sum
}

// MaxUtilization returns the highest usage/capacity ratio over all edges.
func (g *Grid) MaxUtilization() float64 {
	best := 0.0
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W-1; x++ {
			if r := float64(g.UsageH(x, y)) / float64(g.capDir[Horiz]); r > best {
				best = r
			}
		}
	}
	for y := 0; y < g.H-1; y++ {
		for x := 0; x < g.W; x++ {
			if r := float64(g.UsageV(x, y)) / float64(g.capDir[Vert]); r > best {
				best = r
			}
		}
	}
	return best
}

// CongestionAt returns the worst incident-edge utilization of the GCell
// containing p — the signal edge shifting uses to steer Steiner points
// away from hot spots.
func (g *Grid) CongestionAt(p geom.Point) float64 {
	x, y := g.GCellOf(p)
	best := 0.0
	consider := func(u, c int) {
		if c > 0 {
			if r := float64(u) / float64(c); r > best {
				best = r
			}
		}
	}
	consider(g.UsageH(x, y), g.capDir[Horiz])
	consider(g.UsageH(x-1, y), g.capDir[Horiz])
	consider(g.UsageV(x, y), g.capDir[Vert])
	consider(g.UsageV(x, y-1), g.capDir[Vert])
	return best
}

// ResetUsage clears all 2D and per-layer usage.
func (g *Grid) ResetUsage() {
	clear32 := func(a []int32) {
		for i := range a {
			a[i] = 0
		}
	}
	clear32(g.useH)
	clear32(g.useV)
	for l := range g.layerUseH {
		clear32(g.layerUseH[l])
		clear32(g.layerUseV[l])
	}
}

// LayerUsageH returns per-layer usage of a horizontal edge (for layer
// assignment and tests).
func (g *Grid) LayerUsageH(l, x, y int) int {
	if i := g.hIndex(x, y); i >= 0 {
		return int(g.layerUseH[l][i])
	}
	return 0
}

// LayerUsageV returns per-layer usage of a vertical edge.
func (g *Grid) LayerUsageV(l, x, y int) int {
	if i := g.vIndex(x, y); i >= 0 {
		return int(g.layerUseV[l][i])
	}
	return 0
}

// AssignLayerH books one track on the least-used suitable layer for a
// horizontal edge and returns the chosen layer.
func (g *Grid) AssignLayerH(x, y int) int {
	return g.assignLayer(Horiz, g.hIndex(x, y), g.layerUseH)
}

// AssignLayerV books one track on the least-used suitable layer for a
// vertical edge and returns the chosen layer.
func (g *Grid) AssignLayerV(x, y int) int {
	return g.assignLayer(Vert, g.vIndex(x, y), g.layerUseV)
}

// AssignLayerSticky books a track preferring the previous layer when it
// matches the step's direction and is below capacity, falling back to the
// least-used suitable layer. Cuts via counts on straight runs.
func (g *Grid) AssignLayerSticky(horiz bool, x, y, prev int) int {
	d := Vert
	idx := g.vIndex(x, y)
	use := g.layerUseV
	if horiz {
		d = Horiz
		idx = g.hIndex(x, y)
		use = g.layerUseH
	}
	if idx >= 0 && prev >= 1 && prev < len(g.LayerCap) &&
		g.LayerDir[prev] == d && g.LayerCap[prev] > 0 &&
		int(use[prev][idx]) < g.LayerCap[prev] {
		use[prev][idx]++
		return prev
	}
	return g.assignLayer(d, idx, use)
}

func (g *Grid) assignLayer(d Dir, idx int, use [][]int32) int {
	if idx < 0 {
		return -1
	}
	bestL := -1
	bestScore := math.MaxFloat64
	for l := 1; l < len(g.LayerCap); l++ {
		if g.LayerDir[l] != d || g.LayerCap[l] == 0 {
			continue
		}
		score := float64(use[l][idx]) / float64(g.LayerCap[l])
		if score < bestScore {
			bestScore = score
			bestL = l
		}
	}
	if bestL >= 0 {
		use[bestL][idx]++
	}
	return bestL
}

// StaticLayer returns the layer a static-mode route uses for one step:
// a pure function of the step's direction and track coordinate
// (round-robin over the suitable layers by track index), with no
// booking and no balancing state — so one net's layer assignment can
// never depend on another net's routing. This is what keeps
// incremental replay's changed-net set equal to the moved nets; the
// least-used balancer couples every net to every other through the
// usage arrays.
func (g *Grid) StaticLayer(horiz bool, x, y int) int {
	d, track := Vert, x // vertical runs cycle by column
	if horiz {
		d, track = Horiz, y // horizontal runs cycle by row
	}
	n := 0
	for l := 1; l < len(g.LayerCap); l++ {
		if g.LayerDir[l] == d && g.LayerCap[l] > 0 {
			n++
		}
	}
	if n == 0 {
		return -1
	}
	k := track % n
	if k < 0 {
		k += n
	}
	for l := 1; l < len(g.LayerCap); l++ {
		if g.LayerDir[l] == d && g.LayerCap[l] > 0 {
			if k == 0 {
				return l
			}
			k--
		}
	}
	return -1
}

// UnassignLayerH releases one previously booked track on layer l of a
// horizontal edge (incremental rip-up).
func (g *Grid) UnassignLayerH(l, x, y int) {
	if idx := g.hIndex(x, y); idx >= 0 && l >= 1 && l < len(g.LayerCap) && g.layerUseH[l][idx] > 0 {
		g.layerUseH[l][idx]--
	}
}

// UnassignLayerV releases one previously booked track on layer l of a
// vertical edge.
func (g *Grid) UnassignLayerV(l, x, y int) {
	if idx := g.vIndex(x, y); idx >= 0 && l >= 1 && l < len(g.LayerCap) && g.layerUseV[l][idx] > 0 {
		g.layerUseV[l][idx]--
	}
}
