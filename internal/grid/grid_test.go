package grid

import (
	"math"
	"testing"
	"testing/quick"

	"tsteiner/internal/geom"
)

func mk(t *testing.T) *Grid {
	t.Helper()
	g, err := New(geom.BBox{XLo: 0, YLo: 0, XHi: 80, YHi: 40}, 8, []int{4, 6, 6, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewDimensions(t *testing.T) {
	g := mk(t)
	if g.W != 11 || g.H != 6 {
		t.Fatalf("grid dims %dx%d want 11x6", g.W, g.H)
	}
	if g.LayerCap[0] != 0 {
		t.Fatal("pin layer must have zero capacity")
	}
	// Layers 1,3 horizontal; 2,4 vertical in a 5-layer stack.
	if g.CapDir(Horiz) != 6+5 || g.CapDir(Vert) != 6+5 {
		t.Fatalf("capDir H=%d V=%d", g.CapDir(Horiz), g.CapDir(Vert))
	}
}

func TestNewValidation(t *testing.T) {
	die := geom.BBox{XLo: 0, YLo: 0, XHi: 80, YHi: 40}
	if _, err := New(geom.EmptyBBox(), 8, []int{0, 4, 4}); err == nil {
		t.Fatal("empty die accepted")
	}
	if _, err := New(die, 0, []int{0, 4, 4}); err == nil {
		t.Fatal("zero gcell size accepted")
	}
	if _, err := New(die, 8, []int{0, 4}); err == nil {
		t.Fatal("two layers accepted")
	}
	if _, err := New(die, 8, []int{0, -1, 4}); err == nil {
		t.Fatal("negative capacity accepted")
	}
	if _, err := New(die, 8, []int{0, 0, 4}); err == nil {
		t.Fatal("zero-capacity direction accepted")
	}
}

func TestGCellOfClampsAndInverts(t *testing.T) {
	g := mk(t)
	x, y := g.GCellOf(geom.Point{X: 0, Y: 0})
	if x != 0 || y != 0 {
		t.Fatalf("origin maps to (%d,%d)", x, y)
	}
	x, y = g.GCellOf(geom.Point{X: 1000, Y: 1000})
	if x != g.W-1 || y != g.H-1 {
		t.Fatalf("far point not clamped: (%d,%d)", x, y)
	}
	x, y = g.GCellOf(geom.Point{X: -50, Y: -50})
	if x != 0 || y != 0 {
		t.Fatalf("negative point not clamped: (%d,%d)", x, y)
	}
	// A GCell's center maps back to the same GCell.
	f := func(gx, gy uint8) bool {
		cx := int(gx) % g.W
		cy := int(gy) % g.H
		px, py := g.GCellOf(g.Center(cx, cy))
		return px == cx && py == cy
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUsageAccounting(t *testing.T) {
	g := mk(t)
	if g.UsageH(2, 3) != 0 {
		t.Fatal("fresh grid has usage")
	}
	g.AddH(2, 3, 1)
	g.AddH(2, 3, 1)
	if g.UsageH(2, 3) != 2 {
		t.Fatalf("usage=%d want 2", g.UsageH(2, 3))
	}
	g.AddH(2, 3, -1)
	if g.UsageH(2, 3) != 1 {
		t.Fatalf("usage=%d want 1 after decrement", g.UsageH(2, 3))
	}
	g.AddV(0, 0, 5)
	if g.UsageV(0, 0) != 5 {
		t.Fatal("vertical usage broken")
	}
	// Out-of-range adds are silently ignored, reads return 0.
	g.AddH(-1, 0, 1)
	g.AddH(g.W-1, 0, 1) // no H edge leaving the last column
	if g.UsageH(-1, 0) != 0 || g.UsageH(g.W-1, 0) != 0 {
		t.Fatal("out-of-range edge usage leaked")
	}
}

func TestOverflowAndTotal(t *testing.T) {
	g := mk(t)
	capH := g.CapDir(Horiz)
	g.AddH(1, 1, capH) // exactly at capacity: no overflow
	if g.OverflowH(1, 1) != 0 {
		t.Fatal("at-capacity edge reports overflow")
	}
	g.AddH(1, 1, 3)
	if g.OverflowH(1, 1) != 3 {
		t.Fatalf("overflow=%d want 3", g.OverflowH(1, 1))
	}
	g.AddV(2, 2, g.CapDir(Vert)+1)
	if got := g.TotalOverflow(); got != 4 {
		t.Fatalf("TotalOverflow=%d want 4", got)
	}
}

func TestCostMonotoneInUsage(t *testing.T) {
	g := mk(t)
	prev := g.CostH(0, 0)
	if prev < 1 {
		t.Fatal("base cost below 1")
	}
	for i := 0; i < 2*g.CapDir(Horiz); i++ {
		g.AddH(0, 0, 1)
		c := g.CostH(0, 0)
		if c <= prev {
			t.Fatalf("cost not strictly increasing at usage %d", i+1)
		}
		prev = c
	}
	// Past capacity the penalty must be substantial.
	if prev < 10 {
		t.Fatalf("over-capacity cost %f too small to repel router", prev)
	}
}

func TestMaxUtilization(t *testing.T) {
	g := mk(t)
	if g.MaxUtilization() != 0 {
		t.Fatal("fresh grid has utilization")
	}
	g.AddV(3, 2, g.CapDir(Vert)/2)
	got := g.MaxUtilization()
	want := float64(g.CapDir(Vert)/2) / float64(g.CapDir(Vert))
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("MaxUtilization=%f want %f", got, want)
	}
}

func TestCongestionAt(t *testing.T) {
	g := mk(t)
	p := g.Center(4, 3)
	if g.CongestionAt(p) != 0 {
		t.Fatal("fresh congestion nonzero")
	}
	g.AddH(4, 3, g.CapDir(Horiz)) // full edge
	if got := g.CongestionAt(p); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("CongestionAt=%f want 1.0", got)
	}
	// Neighbor GCell (5,3) shares the loaded edge via its x-1 side.
	if got := g.CongestionAt(g.Center(5, 3)); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("neighbor CongestionAt=%f want 1.0", got)
	}
}

func TestResetUsage(t *testing.T) {
	g := mk(t)
	g.AddH(0, 0, 7)
	g.AddV(1, 1, 3)
	g.AssignLayerH(0, 0)
	g.ResetUsage()
	if g.UsageH(0, 0) != 0 || g.UsageV(1, 1) != 0 || g.TotalOverflow() != 0 {
		t.Fatal("ResetUsage left 2D usage")
	}
	for l := 0; l < len(g.LayerCap); l++ {
		if g.LayerUsageH(l, 0, 0) != 0 {
			t.Fatal("ResetUsage left layer usage")
		}
	}
}

func TestAssignLayerBalances(t *testing.T) {
	g := mk(t)
	counts := map[int]int{}
	for i := 0; i < 22; i++ {
		l := g.AssignLayerH(2, 2)
		if l < 0 {
			t.Fatal("no layer assigned")
		}
		if g.LayerDir[l] != Horiz {
			t.Fatalf("horizontal segment assigned to vertical layer %d", l)
		}
		counts[l]++
	}
	if len(counts) < 2 {
		t.Fatalf("assignment used only %d layer(s): %v", len(counts), counts)
	}
	// Usage proportional to capacity: layer 1 (cap 6) should carry at
	// least as much as layer 3 (cap 5).
	if counts[1] < counts[3] {
		t.Fatalf("balancing inverted: %v", counts)
	}
	// Vertical assignment picks vertical layers.
	if l := g.AssignLayerV(2, 2); g.LayerDir[l] != Vert {
		t.Fatalf("vertical segment on layer %d dir %v", l, g.LayerDir[l])
	}
	// Out-of-range edge yields -1.
	if l := g.AssignLayerH(g.W-1, 0); l != -1 {
		t.Fatalf("out-of-range assignment returned %d", l)
	}
}
