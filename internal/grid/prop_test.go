package grid_test

import (
	"fmt"
	"testing"

	"tsteiner/internal/check"
	"tsteiner/internal/geom"
	"tsteiner/internal/grid"
)

// demand is one random routing-usage deposit on a GCell edge.
type demand struct {
	Horiz bool
	X, Y  int
	Count int
}

func demands() check.Gen[[]demand] {
	one := check.Gen[demand]{
		Generate: func(r *check.RNG) demand {
			return demand{
				Horiz: r.Bool(),
				X:     r.Intn(1 << 16),
				Y:     r.Intn(1 << 16),
				Count: 1 + r.Intn(6),
			}
		},
	}
	return check.SliceOf(0, 60, one)
}

// apply deposits the demands, wrapping coordinates onto valid edges.
func apply(g *grid.Grid, ds []demand) {
	for _, d := range ds {
		if d.Horiz {
			g.AddH(d.X%(g.W-1), d.Y%g.H, d.Count)
		} else {
			g.AddV(d.X%g.W, d.Y%(g.H-1), d.Count)
		}
	}
}

// TestPropOverflowMonotoneUnderCapacity is the congestion metamorphic
// invariant: at fixed demand, adding track capacity can only reduce
// (never increase) every edge overflow, the total overflow, and the max
// utilization — and with overflow present, utilization exceeds 1.
func TestPropOverflowMonotoneUnderCapacity(t *testing.T) {
	die := geom.BBox{XLo: 0, YLo: 0, XHi: 79, YHi: 59}
	g := check.Two(demands(), check.Int(1, 8))
	check.Run(t, g, func(in check.Pair[[]demand, int]) error {
		ds, extra := in.A, in.B
		base, err := grid.New(die, 10, []int{0, 2, 2, 3, 3})
		if err != nil {
			return err
		}
		roomy, err := grid.New(die, 10, []int{0, 2 + extra, 2 + extra, 3 + extra, 3 + extra})
		if err != nil {
			return err
		}
		apply(base, ds)
		apply(roomy, ds)
		for y := 0; y < base.H; y++ {
			for x := 0; x < base.W-1; x++ {
				if roomy.OverflowH(x, y) > base.OverflowH(x, y) {
					return fmt.Errorf("H edge (%d,%d): +%d tracks raised overflow %d -> %d",
						x, y, extra, base.OverflowH(x, y), roomy.OverflowH(x, y))
				}
			}
		}
		for y := 0; y < base.H-1; y++ {
			for x := 0; x < base.W; x++ {
				if roomy.OverflowV(x, y) > base.OverflowV(x, y) {
					return fmt.Errorf("V edge (%d,%d): +%d tracks raised overflow %d -> %d",
						x, y, extra, base.OverflowV(x, y), roomy.OverflowV(x, y))
				}
			}
		}
		if roomy.TotalOverflow() > base.TotalOverflow() {
			return fmt.Errorf("+%d tracks raised total overflow %d -> %d",
				extra, base.TotalOverflow(), roomy.TotalOverflow())
		}
		if roomy.MaxUtilization() > base.MaxUtilization() {
			return fmt.Errorf("+%d tracks raised max utilization %.4f -> %.4f",
				extra, base.MaxUtilization(), roomy.MaxUtilization())
		}
		if base.TotalOverflow() > 0 && base.MaxUtilization() <= 1 {
			return fmt.Errorf("overflow %d present but max utilization %.4f ≤ 1",
				base.TotalOverflow(), base.MaxUtilization())
		}
		return nil
	})
}
