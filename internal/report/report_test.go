package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tbl := Table{
		Title:  "demo",
		Header: []string{"name", "value"},
	}
	tbl.AddRow("alpha", "1")
	tbl.AddRow("beta-long-name", "22")
	tbl.AddRow("— Average", "11.5")
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + header + separator + 2 rows + separator-before-summary + summary.
	if len(lines) != 7 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if lines[0] != "demo" {
		t.Fatalf("title line %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "name") {
		t.Fatalf("header line %q", lines[1])
	}
	// Column alignment: "value" column starts at the same offset in all rows.
	col := strings.Index(lines[1], "value")
	if got := strings.Index(lines[3], "1"); got != col {
		t.Fatalf("misaligned value column: %d vs %d\n%s", got, col, out)
	}
	// Separator emitted before the summary row.
	if !strings.HasPrefix(lines[5], "---") {
		t.Fatalf("missing summary separator:\n%s", out)
	}
}

func TestTableRenderNoTitle(t *testing.T) {
	tbl := Table{Header: []string{"a"}}
	tbl.AddRow("x")
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.HasPrefix(buf.String(), "\n") {
		t.Fatal("empty title should not emit a blank line")
	}
}

func TestFormatHelpers(t *testing.T) {
	if F(1.23456, 2) != "1.23" {
		t.Fatalf("F=%q", F(1.23456, 2))
	}
	if F(-0.5, 3) != "-0.500" {
		t.Fatalf("F=%q", F(-0.5, 3))
	}
	if I(42) != "42" {
		t.Fatalf("I=%q", I(42))
	}
}

func TestHistogramRender(t *testing.T) {
	var buf bytes.Buffer
	if err := Histogram(&buf, "dist", 0, 1, []int{1, 4, 2}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "dist\n") {
		t.Fatal("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines=%d:\n%s", len(lines), out)
	}
	// The largest bucket gets the longest bar.
	if strings.Count(lines[2], "#") != 40 {
		t.Fatalf("max bucket bar length wrong:\n%s", out)
	}
	if strings.Count(lines[1], "#") != 10 {
		t.Fatalf("proportional bar wrong:\n%s", out)
	}
}

func TestHistogramEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := Histogram(&buf, "empty", 0, 1, []int{0, 0}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "#") {
		t.Fatal("empty histogram should have no bars")
	}
}
