// Package report renders experiment results as aligned ASCII tables in
// the layout of the paper's Tables I–IV and textual summaries of the
// figures.
package report

import (
	"fmt"
	"io"
	"strings"

	"tsteiner/internal/sta"
)

// Table is a simple titled grid.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends one row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table with column alignment and a separator line
// before any row whose first cell begins with '—' (used for summary rows).
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(c, widths[i]))
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	total := len(widths)*2 - 2
	for _, wd := range widths {
		total += wd
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		if len(row) > 0 && strings.HasPrefix(row[0], "—") {
			b.WriteString(strings.Repeat("-", total))
			b.WriteByte('\n')
		}
		line(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// F formats a float with the given precision.
func F(v float64, prec int) string { return fmt.Sprintf("%.*f", prec, v) }

// I formats an int.
func I(v int) string { return fmt.Sprintf("%d", v) }

// CornerMatrix lays out a multi-corner sign-off matrix: one row per
// corner with its derating scales and that corner's sign-off metrics.
func CornerMatrix(title string, rows []sta.CornerMetrics) *Table {
	t := &Table{
		Title: title,
		Header: []string{"corner", "delay x", "slew x", "clock x",
			"WNS", "TNS", "vios", "WHS", "hold", "slew"},
	}
	for _, r := range rows {
		t.AddRow(r.Corner.Name,
			F(r.Corner.DelayScale, 2), F(r.Corner.SlewScale, 2), F(r.Corner.ClockScale, 2),
			F(r.WNS, 4), F(r.TNS, 4), I(r.Vios),
			F(r.WHS, 4), I(r.HoldVios), I(r.SlewVios))
	}
	return t
}

// Histogram renders a textual histogram: one line per bucket with a bar
// proportional to the count (the Fig. 2 distribution view).
func Histogram(w io.Writer, title string, lo, hi float64, counts []int) error {
	maxC := 0
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
	}
	var b strings.Builder
	b.WriteString(title)
	b.WriteByte('\n')
	n := len(counts)
	for i, c := range counts {
		bl := lo + (hi-lo)*float64(i)/float64(n)
		bh := lo + (hi-lo)*float64(i+1)/float64(n)
		bar := ""
		if maxC > 0 {
			bar = strings.Repeat("#", c*40/maxC)
		}
		fmt.Fprintf(&b, "[%6.3f, %6.3f) %4d %s\n", bl, bh, c, bar)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
