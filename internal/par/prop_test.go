package par_test

import (
	"fmt"
	"testing"

	"tsteiner/internal/check"
	"tsteiner/internal/par"
)

// TestPropMapMatchesSerialAnyWorkers is the determinism contract of the
// parallel layer under adversarial shapes: any worker count — including
// more workers than items and the zero-item edge case — must produce
// exactly the serial result, in order.
func TestPropMapMatchesSerialAnyWorkers(t *testing.T) {
	g := check.Two(check.SliceOf(0, 50, check.Int(-1000, 1000)), check.Int(1, 64))
	check.Run(t, g, func(in check.Pair[[]int, int]) error {
		items, workers := in.A, in.B
		fn := func(i int, v int) (int, error) { return v*3 + i, nil }
		want := make([]int, len(items))
		for i, v := range items {
			want[i], _ = fn(i, v)
		}
		got, err := par.Map(workers, items, fn)
		if err != nil {
			return err
		}
		if len(got) != len(want) {
			return fmt.Errorf("workers=%d items=%d: got %d results", workers, len(items), len(got))
		}
		for i := range want {
			if got[i] != want[i] {
				return fmt.Errorf("workers=%d: index %d got %d want %d", workers, i, got[i], want[i])
			}
		}
		// ForEach must visit every index exactly once.
		seen := make([]int32, len(items))
		if err := par.ForEach(workers, len(items), func(i int) error {
			seen[i]++
			return nil
		}); err != nil {
			return err
		}
		for i, c := range seen {
			if c != 1 {
				return fmt.Errorf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
		return nil
	})
}
