package par

import (
	"errors"
	"math/bits"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// recordingObserver is a race-clean PoolObserver for tests.
type recordingObserver struct {
	mu    sync.Mutex
	pools int
	tasks int
	busy  time.Duration
}

func (r *recordingObserver) ObservePool(workers, tasks int, busy []time.Duration, wall time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.pools++
	r.tasks += tasks
	for _, b := range busy {
		r.busy += b
	}
}

// withObserver installs o for the test and restores the nil observer after.
func withObserver(t *testing.T, o PoolObserver) {
	t.Helper()
	SetObserver(o)
	t.Cleanup(func() { SetObserver(nil) })
}

func TestObserverReceivesUtilization(t *testing.T) {
	for _, w := range []int{1, 4} {
		rec := &recordingObserver{}
		withObserver(t, rec)
		err := ForEach(w, 16, func(i int) error {
			time.Sleep(time.Millisecond)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		rec.mu.Lock()
		pools, tasks, busy := rec.pools, rec.tasks, rec.busy
		rec.mu.Unlock()
		if pools != 1 || tasks != 16 {
			t.Fatalf("workers=%d: pools=%d tasks=%d", w, pools, tasks)
		}
		if busy < 10*time.Millisecond {
			t.Fatalf("workers=%d: busy %v implausibly small for 16×1ms tasks", w, busy)
		}
	}
}

// TestObserverDoesNotChangeResults is the side-channel gate: Map output and
// error behavior are identical with and without an installed observer.
func TestObserverDoesNotChangeResults(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	fn := func(i, v int) (int, error) {
		if i == 37 {
			return 0, errors.New("task 37 failed")
		}
		return v * v, nil
	}
	run := func() ([]int, error) { return Map(4, items, fn) }
	base, baseErr := run()
	withObserver(t, &recordingObserver{})
	obs, obsErr := run()
	if (baseErr == nil) != (obsErr == nil) {
		t.Fatalf("error behavior changed: %v vs %v", baseErr, obsErr)
	}
	if len(base) != len(obs) {
		t.Fatalf("result length changed: %d vs %d", len(base), len(obs))
	}
	for i := range base {
		if base[i] != obs[i] {
			t.Fatalf("out[%d] changed: %d vs %d", i, base[i], obs[i])
		}
	}
}

// TestObserverConcurrentPools is the race gate for the worker-utilization
// collector: nested/concurrent parallel sections all report into one
// observer while the observer is being swapped. Run under `go test -race`.
func TestObserverConcurrentPools(t *testing.T) {
	rec := &recordingObserver{}
	withObserver(t, rec)
	var launched atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 20; k++ {
				launched.Add(1)
				_ = ForEach(3, 9, func(i int) error { return nil })
			}
		}()
	}
	// Concurrent SetObserver exercises the atomic swap path.
	for k := 0; k < 50; k++ {
		SetObserver(rec)
	}
	wg.Wait()
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if rec.pools != int(launched.Load()) {
		t.Fatalf("pools=%d launched=%d", rec.pools, launched.Load())
	}
	if rec.tasks != rec.pools*9 {
		t.Fatalf("tasks=%d want %d", rec.tasks, rec.pools*9)
	}
}

// TestSeedStatisticalSanity checks that SplitMix64-style per-index seeds
// are well spread: distinct, bit-balanced, and decorrelated between
// adjacent indices — the property MapSeeded relies on so neighboring tasks
// never share statistically similar streams.
func TestSeedStatisticalSanity(t *testing.T) {
	const n = 20000
	seen := make(map[int64]struct{}, n)
	bitOnes := make([]int, 64)
	adjPop := 0
	var meanAcc float64
	prev := int64(0)
	for i := 0; i < n; i++ {
		s := Seed(2023, i)
		if _, dup := seen[s]; dup {
			t.Fatalf("duplicate seed at index %d", i)
		}
		seen[s] = struct{}{}
		u := uint64(s)
		for b := 0; b < 64; b++ {
			if u&(1<<b) != 0 {
				bitOnes[b]++
			}
		}
		// Normalized position in [0,1): the mixed value as a fraction.
		meanAcc += float64(u) / (1 << 63) / 2
		if i > 0 {
			adjPop += bits.OnesCount64(u ^ uint64(prev))
		}
		prev = s
	}
	// Each output bit should be ~50% ones (binomial stddev ≈ 0.35%; allow 5σ).
	for b, ones := range bitOnes {
		frac := float64(ones) / n
		if frac < 0.47 || frac > 0.53 {
			t.Fatalf("bit %d biased: %.4f ones", b, frac)
		}
	}
	// Mean of the normalized values should sit near 0.5 (uniform spread).
	if mean := meanAcc / n; mean < 0.48 || mean > 0.52 {
		t.Fatalf("normalized seed mean %.4f not near 0.5", mean)
	}
	// Adjacent indices should differ in ~32 of 64 bits on average.
	if avg := float64(adjPop) / float64(n-1); avg < 28 || avg > 36 {
		t.Fatalf("adjacent-index hamming distance %.2f not near 32", avg)
	}
	// Different bases must not reuse the same stream.
	if Seed(1, 0) == Seed(2, 0) {
		t.Fatal("bases 1 and 2 collide at index 0")
	}
}
