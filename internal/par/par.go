// Package par is the repository's deterministic parallelism substrate: a
// bounded worker pool executing index-addressed tasks whose results are
// always collected in input order, so the output of a parallel stage is
// byte-identical for every worker count (including 1).
//
// Determinism contract — every caller must uphold two rules:
//
//  1. A task's result may depend only on its index and its input item,
//     never on which goroutine ran it or in what order tasks completed.
//  2. Any randomness inside a task must flow from a per-index seed
//     (Seed / MapSeeded), never from a stream shared across tasks.
//
// Under those rules Map(w, items, fn) is observationally identical to the
// serial loop for any w, which is what lets the experiment suite assert
// byte-identical table/figure output between workers=1 and workers=4.
package par

import (
	"fmt"
	"math/rand"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// PanicError is a task panic converted to an indexed error. The pool
// recovers every panic — in the serial path too, so behavior is identical
// at any worker count — and reports it through the normal error channel:
// lowest index wins, results are discarded, remaining tasks are cancelled,
// and no goroutine leaks. One poisoned net therefore fails its own
// parallel section cleanly instead of killing a whole experiment sweep.
type PanicError struct {
	Index int    // task index that panicked
	Value any    // the recovered panic value
	Stack []byte // stack captured at recovery
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("par: task %d panicked: %v", e.Index, e.Value)
}

// PoolObserver receives utilization telemetry for completed parallel
// sections: the worker count, the number of tasks issued (the section's
// queue depth), each worker's accumulated busy time (index-separated, so
// collection is race-free) and the section's wall-clock duration.
//
// Observation is a side channel only — it never influences scheduling or
// results — and the callback must be safe for concurrent use (nested
// parallel sections invoke it from multiple goroutines).
type PoolObserver interface {
	ObservePool(workers, tasks int, busy []time.Duration, wall time.Duration)
}

// observerBox wraps the interface so atomic.Value always stores one
// concrete type (including the nil observer).
type observerBox struct{ o PoolObserver }

var poolObserver atomic.Value // observerBox

// SetObserver installs the process-wide pool observer (nil uninstalls).
// When no observer is set, instrumentation costs one atomic load per
// ForEach call and nothing per task.
func SetObserver(o PoolObserver) { poolObserver.Store(observerBox{o}) }

func loadObserver() PoolObserver {
	if v := poolObserver.Load(); v != nil {
		return v.(observerBox).o
	}
	return nil
}

// Workers resolves a requested worker count: values <= 0 select
// runtime.GOMAXPROCS(0) (all available parallelism); 1 reproduces the
// serial execution path exactly.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEach runs fn(0..n-1) on min(Workers(workers), n) goroutines and
// returns the lowest-indexed error among the tasks that ran (nil if all
// succeeded). After a task fails, tasks not yet started are cancelled;
// with workers=1 that is exactly the serial loop's early exit. A task that
// panics is recovered and reported as a *PanicError under the same
// lowest-index-wins contract (at any worker count, including 1).
func ForEach(workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	fn = contained(fn)
	w := Workers(workers)
	if w > n {
		w = n
	}
	ob := loadObserver()
	if ob != nil {
		// Wrap fn with per-worker busy accounting. Timing is observation
		// only: it never reaches fn or the caller, so results stay
		// byte-identical with or without an observer installed.
		busy := make([]time.Duration, w)
		inner := fn
		t0 := time.Now()
		var err error
		if w == 1 {
			for i := 0; i < n; i++ {
				ts := time.Now()
				e := inner(i)
				busy[0] += time.Since(ts)
				if e != nil {
					err = e
					break
				}
			}
		} else {
			err = forEachWorkers(w, n, func(g, i int) error {
				ts := time.Now()
				e := inner(i)
				busy[g] += time.Since(ts)
				return e
			})
		}
		ob.ObservePool(w, n, busy, time.Since(t0))
		return err
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	return forEachWorkers(w, n, func(_, i int) error { return fn(i) })
}

// contained wraps a task so that a panic is recovered and converted to a
// *PanicError instead of unwinding the worker goroutine. Recovery sits
// innermost — inside the observer's timing wrapper — so telemetry still
// accounts the failed task's busy time.
func contained(fn func(i int) error) func(i int) error {
	return func(i int) (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = &PanicError{Index: i, Value: r, Stack: debug.Stack()}
			}
		}()
		return fn(i)
	}
}

// forEachWorkers is the shared parallel core of ForEach: w goroutines pull
// indices from an atomic counter and run fn(worker, index); the
// lowest-indexed error wins and cancels tasks not yet started.
func forEachWorkers(w, n int, fn func(worker, i int) error) error {
	var (
		next   atomic.Int64
		failed atomic.Bool
		mu     sync.Mutex
		errIdx = n
		first  error
		wg     sync.WaitGroup
	)
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if err := fn(g, i); err != nil {
					failed.Store(true)
					mu.Lock()
					if i < errIdx {
						errIdx, first = i, err
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	return first
}

// Map applies fn to every item on a bounded worker pool and returns the
// results in input order. fn receives the item's index so per-task state
// (seeds, labels) can be derived deterministically. On error the first
// (lowest-indexed) failure observed is returned and the results are
// discarded.
func Map[T, R any](workers int, items []T, fn func(i int, item T) (R, error)) ([]R, error) {
	out := make([]R, len(items))
	err := ForEach(workers, len(items), func(i int) error {
		r, err := fn(i, items[i])
		if err != nil {
			return err
		}
		out[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Seed derives a per-task RNG seed from (base, index) with a
// SplitMix64-style mix, so every task owns an independent, reproducible
// random stream regardless of worker count or completion order. Distinct
// indices under the same base never collide on the mixed stream.
func Seed(base int64, index int) int64 {
	z := uint64(base) + 0x9e3779b97f4a7c15*uint64(index+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// MapSeeded is Map with a fresh *rand.Rand per task, seeded from
// (baseSeed, index): the canonical shape for parallel randomized trials
// (random disturbance, perturbation augmentation) whose output must be
// byte-identical for any worker count.
func MapSeeded[T, R any](workers int, baseSeed int64, items []T, fn func(i int, item T, rng *rand.Rand) (R, error)) ([]R, error) {
	return Map(workers, items, func(i int, item T) (R, error) {
		return fn(i, item, rand.New(rand.NewSource(Seed(baseSeed, i))))
	})
}
