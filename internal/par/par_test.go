package par

import (
	"errors"
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestWorkersResolution(t *testing.T) {
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Fatal("non-positive request must resolve to at least one worker")
	}
	if Workers(1) != 1 || Workers(7) != 7 {
		t.Fatal("positive requests must pass through")
	}
}

func TestMapOrderedResults(t *testing.T) {
	items := make([]int, 257)
	for i := range items {
		items[i] = i * 3
	}
	for _, w := range []int{1, 2, 4, 16} {
		got, err := Map(w, items, func(i, item int) (int, error) {
			return item + i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != items[i]+i {
				t.Fatalf("workers=%d: out[%d]=%d want %d", w, i, v, items[i]+i)
			}
		}
	}
}

// TestMapMatchesSerialProperty asserts the determinism contract with
// testing/quick: for any item list and worker count, Map equals the serial
// loop element-for-element.
func TestMapMatchesSerialProperty(t *testing.T) {
	f := func(items []int64, workers uint8) bool {
		w := int(workers%8) + 1
		fn := func(i int, item int64) (int64, error) { return item*7 + int64(i), nil }
		par, err := Map(w, items, fn)
		if err != nil {
			return false
		}
		for i := range items {
			want, _ := fn(i, items[i])
			if par[i] != want {
				return false
			}
		}
		return len(par) == len(items)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestSeedStabilityProperty asserts per-index seed determinism: the same
// (base, index) always yields the same seed, and the per-task RNG streams
// of MapSeeded are identical for every worker count.
func TestSeedStabilityProperty(t *testing.T) {
	f := func(base int64, n uint8, workers uint8) bool {
		count := int(n%32) + 1
		items := make([]struct{}, count)
		draw := func(w int) ([]float64, error) {
			return MapSeeded(w, base, items, func(i int, _ struct{}, rng *rand.Rand) (float64, error) {
				return rng.Float64() + float64(i), nil
			})
		}
		serial, err := draw(1)
		if err != nil {
			return false
		}
		parallel, err := draw(int(workers%8) + 1)
		if err != nil {
			return false
		}
		for i := range serial {
			if serial[i] != parallel[i] {
				return false
			}
			if Seed(base, i) != Seed(base, i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSeedIndexSeparation(t *testing.T) {
	seen := map[int64]int{}
	for i := 0; i < 10000; i++ {
		s := Seed(42, i)
		if prev, dup := seen[s]; dup {
			t.Fatalf("seed collision between indices %d and %d", prev, i)
		}
		seen[s] = i
	}
}

func TestForEachErrorIsLowestIndexed(t *testing.T) {
	for _, w := range []int{1, 4} {
		err := ForEach(w, 64, func(i int) error {
			if i == 5 || i == 40 {
				return fmt.Errorf("task %d failed", i)
			}
			return nil
		})
		if err == nil {
			t.Fatalf("workers=%d: error swallowed", w)
		}
		if err.Error() != "task 5 failed" {
			t.Fatalf("workers=%d: got %q, want the lowest-indexed error", w, err)
		}
	}
}

func TestForEachCancelsAfterFailure(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int64
	err := ForEach(2, 100000, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v", err)
	}
	if n := ran.Load(); n == 100000 {
		t.Fatal("no cancellation: every task ran after the first failure")
	}
}

func TestMapEmptyAndSingle(t *testing.T) {
	out, err := Map(4, []int(nil), func(i, v int) (int, error) { return v, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("empty input: %v %v", out, err)
	}
	out, err = Map(4, []int{9}, func(i, v int) (int, error) { return v + 1, nil })
	if err != nil || len(out) != 1 || out[0] != 10 {
		t.Fatalf("single input: %v %v", out, err)
	}
}

func TestMapErrorDiscardsResults(t *testing.T) {
	out, err := Map(3, []int{1, 2, 3}, func(i, v int) (int, error) {
		if i == 2 {
			return 0, errors.New("late failure")
		}
		return v, nil
	})
	if err == nil || out != nil {
		t.Fatalf("partial results leaked: %v %v", out, err)
	}
}

// BenchmarkParMap measures pool overhead and scaling on a CPU-bound task.
func BenchmarkParMap(b *testing.B) {
	work := func(i int, seed int64) (float64, error) {
		rng := rand.New(rand.NewSource(seed + int64(i)))
		sum := 0.0
		for k := 0; k < 20000; k++ {
			sum += rng.Float64()
		}
		return sum, nil
	}
	items := make([]int64, 64)
	for i := range items {
		items[i] = int64(i)
	}
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Map(w, items, work); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
