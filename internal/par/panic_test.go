package par

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestPanicBecomesIndexedError: a panicking task must surface as a
// *PanicError carrying its index, at every worker count including the
// serial path.
func TestPanicBecomesIndexedError(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		err := ForEach(workers, 16, func(i int) error {
			if i == 9 {
				panic(fmt.Sprintf("boom at %d", i))
			}
			return nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: got %v, want *PanicError", workers, err)
		}
		if pe.Index != 9 {
			t.Fatalf("workers=%d: panic index %d, want 9", workers, pe.Index)
		}
		if !strings.Contains(pe.Error(), "boom at 9") {
			t.Fatalf("workers=%d: error %q lacks panic value", workers, pe.Error())
		}
		if len(pe.Stack) == 0 {
			t.Fatalf("workers=%d: no stack captured", workers)
		}
	}
}

// TestPanicLowestIndexWins: when several tasks panic (or mix panics with
// errors), the lowest-indexed failure is reported — the same contract as
// the plain error path.
func TestPanicLowestIndexWins(t *testing.T) {
	for _, workers := range []int{1, 4} {
		// All tasks fail; index 3 panics, the rest error.
		err := ForEach(workers, 8, func(i int) error {
			if i == 3 {
				panic("panicked")
			}
			return fmt.Errorf("plain error %d", i)
		})
		if err == nil {
			t.Fatalf("workers=%d: no error", workers)
		}
		// With workers=1 the serial loop stops at index 0's error; parallel
		// runs may reach later indices first but must still report the
		// lowest index among observed failures, which includes index 0
		// because every task fails and task 0 always runs.
		var pe *PanicError
		if errors.As(err, &pe) {
			t.Fatalf("workers=%d: got PanicError for index %d, want plain error 0", workers, pe.Index)
		}
		if err.Error() != "plain error 0" {
			t.Fatalf("workers=%d: got %q, want lowest-indexed failure", workers, err.Error())
		}
	}
	// Panic at index 0 wins over later errors.
	err := ForEach(4, 8, func(i int) error {
		if i == 0 {
			panic("first")
		}
		return fmt.Errorf("plain error %d", i)
	})
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Index != 0 {
		t.Fatalf("got %v, want *PanicError at index 0", err)
	}
}

// TestPanicDiscardsMapResults: Map must return nil results after a panic,
// exactly like the error path.
func TestPanicDiscardsMapResults(t *testing.T) {
	items := make([]int, 12)
	out, err := Map(4, items, func(i int, _ int) (int, error) {
		if i == 5 {
			panic("poison")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("no error")
	}
	if out != nil {
		t.Fatalf("results not discarded: %v", out)
	}
}

// TestPanicCancelsRemainingTasks: after a panic, tasks not yet started must
// be cancelled (same early-exit contract as errors).
func TestPanicCancelsRemainingTasks(t *testing.T) {
	var started atomic.Int64
	n := 1000
	err := ForEach(2, n, func(i int) error {
		started.Add(1)
		if i == 0 {
			panic("early")
		}
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v, want *PanicError", err)
	}
	if got := started.Load(); got == int64(n) {
		t.Fatalf("all %d tasks ran despite early panic", n)
	}
}

// TestPanicNoGoroutineLeak: worker goroutines must all exit after a
// panicking section.
func TestPanicNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for k := 0; k < 20; k++ {
		_ = ForEach(4, 32, func(i int) error {
			if i%7 == 3 {
				panic("leak probe")
			}
			return nil
		})
	}
	// Allow the runtime a moment to retire worker goroutines.
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before+2 || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Fatalf("goroutines grew %d -> %d", before, after)
	}
}

// TestPanicWithObserverStillContained: the observer's timing wrapper must
// not defeat recovery, and the pool callback still arrives.
func TestPanicWithObserverStillContained(t *testing.T) {
	rec := &recordingObserver{}
	withObserver(t, rec)
	err := ForEach(2, 8, func(i int) error {
		if i == 2 {
			panic("observed")
		}
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Index != 2 {
		t.Fatalf("got %v, want *PanicError at 2", err)
	}
	rec.mu.Lock()
	pools := rec.pools
	rec.mu.Unlock()
	if pools == 0 {
		t.Fatal("observer not invoked for panicking section")
	}
}
