package check

// Domain generators: the physical-design-shaped inputs the property
// suites share. check deliberately imports only the bottom of the
// dependency stack (geom, lib, netlist, synth, place) so the packages
// under test (rsmt, rc, sta, route, gnn, ...) can use it from their
// external test packages without import cycles.

import (
	"fmt"
	"math/rand"

	"tsteiner/internal/geom"
	"tsteiner/internal/lib"
	"tsteiner/internal/netlist"
	"tsteiner/internal/place"
	"tsteiner/internal/synth"
)

// PointIn generates points inside the (inclusive) box, shrinking each
// coordinate toward the box's lower corner.
func PointIn(b geom.BBox) Gen[geom.Point] {
	if b.Empty() {
		panic("check: PointIn with empty box")
	}
	return Gen[geom.Point]{
		Generate: func(r *RNG) geom.Point {
			return geom.Point{X: r.Range(b.XLo, b.XHi), Y: r.Range(b.YLo, b.YHi)}
		},
		Shrink: func(p geom.Point) []geom.Point {
			var out []geom.Point
			if p.X > b.XLo {
				out = append(out, geom.Point{X: b.XLo, Y: p.Y}, geom.Point{X: b.XLo + (p.X-b.XLo)/2, Y: p.Y})
			}
			if p.Y > b.YLo {
				out = append(out, geom.Point{X: p.X, Y: b.YLo}, geom.Point{X: p.X, Y: b.YLo + (p.Y-b.YLo)/2})
			}
			return out
		},
	}
}

// PointsIn generates point sets of size [minN, maxN] inside the box —
// the geometric shape of a net's pin terminals. Duplicates are allowed
// (co-located pins happen in real placements).
func PointsIn(b geom.BBox, minN, maxN int) Gen[[]geom.Point] {
	return SliceOf(minN, maxN, PointIn(b))
}

// RCTree is a random RC tree in parent-array form: node 0 is the root
// (driver); for every other node i, Parent[i] < i, EdgeR[i] is the
// resistance of the edge to its parent (kΩ) and Cap[i] the node's
// capacitance (pF). Cap[0] is the root's own capacitance.
type RCTree struct {
	Parent []int
	EdgeR  []float64
	Cap    []float64
}

// Nodes returns the node count.
func (t RCTree) Nodes() int { return len(t.Parent) }

// String keeps counterexample output compact.
func (t RCTree) String() string {
	return fmt.Sprintf("RCTree{n=%d parent=%v edgeR=%.4v cap=%.4v}", len(t.Parent), t.Parent, t.EdgeR, t.Cap)
}

// RCTrees generates random RC trees with 2..maxNodes nodes, random
// topology (uniform attachment) and positive R/C values. Shrinking
// drops the last node (always a valid tree thanks to Parent[i] < i)
// and zeroes toward small R/C.
func RCTrees(maxNodes int) Gen[RCTree] {
	if maxNodes < 2 {
		panic("check: RCTrees needs maxNodes >= 2")
	}
	return Gen[RCTree]{
		Generate: func(r *RNG) RCTree {
			n := r.Range(2, maxNodes)
			t := RCTree{
				Parent: make([]int, n),
				EdgeR:  make([]float64, n),
				Cap:    make([]float64, n),
			}
			t.Parent[0] = -1
			t.Cap[0] = 0.001 + r.Float64()*0.05
			for i := 1; i < n; i++ {
				t.Parent[i] = r.Intn(i)
				t.EdgeR[i] = 0.01 + r.Float64()*0.5
				t.Cap[i] = 0.001 + r.Float64()*0.05
			}
			return t
		},
		Shrink: func(t RCTree) []RCTree {
			if t.Nodes() <= 2 {
				return nil
			}
			n := t.Nodes() - 1
			return []RCTree{{
				Parent: append([]int(nil), t.Parent[:n]...),
				EdgeR:  append([]float64(nil), t.EdgeR[:n]...),
				Cap:    append([]float64(nil), t.Cap[:n]...),
			}}
		},
	}
}

// DesignSpec is the shrinkable parameterization of a generated design;
// Build turns it into a placed netlist deterministically.
type DesignSpec struct {
	Seed      int64
	Cells     int
	Endpoints int
	PIs       int
	Depth     int
	ClockNS   float64
}

// String keeps counterexample output compact.
func (s DesignSpec) String() string {
	return fmt.Sprintf("DesignSpec{seed=%d cells=%d endpoints=%d pis=%d depth=%d clock=%.3f}",
		s.Seed, s.Cells, s.Endpoints, s.PIs, s.Depth, s.ClockNS)
}

// Build generates and places the design described by the spec against
// the default library. Generation is a pure function of the spec, so a
// shrunk or replayed spec reproduces the identical design.
func (s DesignSpec) Build() (*netlist.Design, error) {
	d, err := synth.Generate(synth.Spec{
		Name:      fmt.Sprintf("prop_s%d_c%d", s.Seed, s.Cells),
		Seed:      s.Seed,
		Cells:     s.Cells,
		Endpoints: s.Endpoints,
		PIs:       s.PIs,
		Depth:     s.Depth,
		ClockNS:   s.ClockNS,
	}, lib.Default())
	if err != nil {
		return nil, err
	}
	if _, err := place.Place(d, place.DefaultOptions()); err != nil {
		return nil, err
	}
	return d, nil
}

// DesignSpecs generates small random design specs (tens of cells, a
// handful of endpoints) whose Build yields valid placed netlists —
// the canonical input for cross-stage properties (rsmt, rc, sta).
// Shrinking reduces cell count, depth and endpoints toward the minimum
// viable design.
func DesignSpecs() Gen[DesignSpec] {
	return Gen[DesignSpec]{
		Generate: func(r *RNG) DesignSpec {
			return DesignSpec{
				Seed:      r.Int63() % 1_000_000,
				Cells:     r.Range(40, 140),
				Endpoints: r.Range(8, 24),
				PIs:       r.Range(4, 12),
				Depth:     r.Range(5, 14),
				ClockNS:   0.2 + r.Float64()*3.0,
			}
		},
		Shrink: func(s DesignSpec) []DesignSpec {
			var out []DesignSpec
			if s.Cells > 40 {
				c := s
				c.Cells = 40 + (s.Cells-40)/2
				out = append(out, c)
			}
			if s.Depth > 5 {
				c := s
				c.Depth = s.Depth - 1
				out = append(out, c)
			}
			if s.Endpoints > 8 {
				c := s
				c.Endpoints = 8
				out = append(out, c)
			}
			return out
		},
	}
}

// Rand adapts the framework RNG into a math/rand source for APIs that
// take *rand.Rand (e.g. rsmt.Perturb), preserving seed determinism.
func (r *RNG) Rand() *rand.Rand { return rand.New(rand.NewSource(r.Int63())) }
