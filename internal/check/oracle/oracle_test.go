package oracle_test

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"tsteiner/internal/check"
	"tsteiner/internal/check/oracle"
	"tsteiner/internal/flow"
	"tsteiner/internal/geom"
	"tsteiner/internal/gnn"
	"tsteiner/internal/rc"
	"tsteiner/internal/sta"
	"tsteiner/internal/synth"
	"tsteiner/internal/tensor"
)

// oracleScale keeps every benchmark a few dozen to ~1k cells so the
// brute-force references stay fast while all ten designs are covered.
const oracleScale = 0.02

// benchNames returns the differential-test roster: all ten seeded
// benchmarks, trimmed to the four smallest under -short (the race-mode
// pass) to keep the gate quick.
func benchNames() []string {
	if testing.Short() {
		return []string{"spm", "cic_decimator", "usb_cdc_core", "APU"}
	}
	var names []string
	for _, s := range synth.Benchmarks() {
		names = append(names, s.Name)
	}
	return names
}

var (
	prepMu    sync.Mutex
	prepCache = map[string]*flow.Prepared{}
)

// prepared builds (and caches) the placed design + Steiner forest of a
// benchmark at oracle scale. Edge shifting is skipped so tree geometry
// is exactly what rsmt constructed (the shift trades wirelength for
// congestion, which would invalidate the optimality sandwich).
func prepared(t *testing.T, name string, scale float64) *flow.Prepared {
	t.Helper()
	key := fmt.Sprintf("%s@%g", name, scale)
	prepMu.Lock()
	defer prepMu.Unlock()
	if p, ok := prepCache[key]; ok {
		return p
	}
	cfg := flow.DefaultConfig()
	cfg.SkipEdgeShift = true
	p, err := flow.PrepareBenchmark(name, scale, cfg)
	if err != nil {
		t.Fatalf("prepare %s: %v", name, err)
	}
	prepCache[key] = p
	return p
}

func relDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	if m := math.Max(math.Abs(a), math.Abs(b)); m > 1 {
		return d / m
	}
	return d
}

// TestOracleRSMTExhaustive sandwiches every ≤5-pin production tree
// between the exact optimum (exhaustive Hanan enumeration) and the
// terminal MST: opt ≤ built ≤ MST, with HPWL as a lower-bound sanity
// check on the oracle itself, plus a near-optimality bound on the
// aggregate wirelength.
func TestOracleRSMTExhaustive(t *testing.T) {
	for _, name := range benchNames() {
		t.Run(name, func(t *testing.T) {
			p := prepared(t, name, oracleScale)
			var sumOpt, sumBuilt float64
			checked := 0
			for ni, tr := range p.Forest.Trees {
				net := p.Design.Net(tr.Net)
				terms := make([]geom.Point, 0, net.NumPins())
				terms = append(terms, p.Design.Pin(net.Driver).Pos)
				for _, s := range net.Sinks {
					terms = append(terms, p.Design.Pin(s).Pos)
				}
				opt, err := oracle.SteinerMinLength(terms)
				if err != nil {
					continue // > 5 distinct terminals: out of exact range
				}
				built := tr.WirelengthF()
				mst := oracle.MSTLength(terms)
				hpwl := geom.BBoxOf(terms).HalfPerimeter()
				if opt < hpwl {
					t.Fatalf("net %d: oracle optimum %d below HPWL %d", ni, opt, hpwl)
				}
				if built < float64(opt)-1e-6 {
					t.Fatalf("net %d: built wirelength %.3f beats the exact optimum %d — oracle or tree is wrong", ni, built, opt)
				}
				if built > float64(mst)+1e-6 {
					t.Fatalf("net %d: built wirelength %.3f exceeds terminal MST %d — construction regressed", ni, built, mst)
				}
				sumOpt += float64(opt)
				sumBuilt += built
				checked++
			}
			if checked == 0 {
				t.Fatal("no ≤5-pin nets checked")
			}
			if sumOpt > 0 {
				if ratio := sumBuilt / sumOpt; ratio > 1.05 {
					t.Fatalf("aggregate wirelength %.4f× the exact optimum over %d nets (want ≤ 1.05×)", ratio, checked)
				}
			}
			t.Logf("%s: %d nets sandwiched, aggregate ratio %.4f", name, checked, sumBuilt/sumOpt)
		})
	}
}

// TestOracleElmoreNaive recomputes every net's Elmore view with the
// O(n²) shared-path formula and compares it against rc's linear-time
// two-pass evaluation.
func TestOracleElmoreNaive(t *testing.T) {
	for _, name := range benchNames() {
		t.Run(name, func(t *testing.T) {
			p := prepared(t, name, oracleScale)
			rcs, err := rc.ExtractFromTrees(p.Design, p.Forest, p.Lib)
			if err != nil {
				t.Fatal(err)
			}
			for ni, tr := range p.Forest.Trees {
				totalCap, sinkDelay, sinkSlewAdd, err := oracle.NetElmore(p.Design, tr, p.Lib)
				if err != nil {
					t.Fatalf("net %d: %v", ni, err)
				}
				got := &rcs[ni]
				if relDiff(got.TotalCap, totalCap) > 1e-9 {
					t.Fatalf("net %d: TotalCap %.12g (rc) vs %.12g (naive)", ni, got.TotalCap, totalCap)
				}
				for si := range sinkDelay {
					if relDiff(got.SinkDelay[si], sinkDelay[si]) > 1e-9 {
						t.Fatalf("net %d sink %d: delay %.12g (rc) vs %.12g (naive)", ni, si, got.SinkDelay[si], sinkDelay[si])
					}
					if relDiff(got.SinkSlewAdd[si], sinkSlewAdd[si]) > 1e-9 {
						t.Fatalf("net %d sink %d: slewAdd %.12g (rc) vs %.12g (naive)", ni, si, got.SinkSlewAdd[si], sinkSlewAdd[si])
					}
				}
			}
		})
	}
}

// TestOracleSTALongestPath compares sta's single-pass PERT traversal
// against the fixpoint relaxation that uses no topological order.
func TestOracleSTALongestPath(t *testing.T) {
	for _, name := range benchNames() {
		t.Run(name, func(t *testing.T) {
			p := prepared(t, name, oracleScale)
			rcs, err := rc.ExtractFromTrees(p.Design, p.Forest, p.Lib)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sta.Run(p.Design, rcs)
			if err != nil {
				t.Fatal(err)
			}
			want, err := oracle.STAFixpoint(p.Design, rcs)
			if err != nil {
				t.Fatal(err)
			}
			for pid := range got.Arrival {
				if relDiff(got.Arrival[pid], want.Arrival[pid]) > 1e-9 {
					t.Fatalf("pin %d: arrival %.12g (sta) vs %.12g (fixpoint)", pid, got.Arrival[pid], want.Arrival[pid])
				}
				if relDiff(got.Slew[pid], want.Slew[pid]) > 1e-9 {
					t.Fatalf("pin %d: slew %.12g (sta) vs %.12g (fixpoint)", pid, got.Slew[pid], want.Slew[pid])
				}
			}
			if len(got.Endpoints) != len(want.Endpoints) {
				t.Fatalf("endpoint count %d vs %d", len(got.Endpoints), len(want.Endpoints))
			}
			for i := range got.Endpoints {
				if got.Endpoints[i] != want.Endpoints[i] {
					t.Fatalf("endpoint %d differs", i)
				}
				if relDiff(got.EndpointSlack[i], want.EndpointSlack[i]) > 1e-9 {
					t.Fatalf("endpoint %d: slack %.12g vs %.12g", i, got.EndpointSlack[i], want.EndpointSlack[i])
				}
			}
			if relDiff(got.WNS, want.WNS) > 1e-9 || relDiff(got.TNS, want.TNS) > 1e-9 || got.Vios != want.Vios {
				t.Fatalf("sign-off triple (%.12g, %.12g, %d) vs (%.12g, %.12g, %d)",
					got.WNS, got.TNS, got.Vios, want.WNS, want.TNS, want.Vios)
			}
		})
	}
}

// gradScale keeps the central-difference probe affordable: each probe
// is two full forward passes per sampled coordinate.
const gradScale = 0.005

// TestOracleBackpropCentralDifference checks the evaluator's full
// forward/backward pipeline: the backprop gradient of the summed
// endpoint-arrival loss w.r.t. Steiner coordinates must match
// symmetric finite differences through the entire model.
func TestOracleBackpropCentralDifference(t *testing.T) {
	for _, name := range benchNames() {
		t.Run(name, func(t *testing.T) {
			p := prepared(t, name, gradScale)
			b, err := gnn.NewBatch(p.Design, p.Forest)
			if err != nil {
				t.Fatal(err)
			}
			m := gnn.NewModel(gnn.DefaultConfig(), 7)
			xs0, ys0, _ := p.Forest.SteinerPositions()
			n := len(xs0)
			if n == 0 {
				t.Skip("no Steiner points at this scale")
			}
			z := append(append([]float64(nil), xs0...), ys0...)

			loss := func(w []float64) (float64, error) {
				tp := tensor.NewTape()
				xt, err := tensor.FromSlice(n, 1, append([]float64(nil), w[:n]...))
				if err != nil {
					return 0, err
				}
				yt, err := tensor.FromSlice(n, 1, append([]float64(nil), w[n:]...))
				if err != nil {
					return 0, err
				}
				tp.Constant(xt)
				tp.Constant(yt)
				pred, err := m.Forward(tp, b, xt, yt, false)
				if err != nil {
					return 0, err
				}
				l, err := tp.Sum(pred.EndpointArrival)
				if err != nil {
					return 0, err
				}
				return l.Data[0], nil
			}

			// Analytic gradient by backprop.
			tp := tensor.NewTape()
			xt, err := tensor.FromSlice(n, 1, append([]float64(nil), z[:n]...))
			if err != nil {
				t.Fatal(err)
			}
			yt, err := tensor.FromSlice(n, 1, append([]float64(nil), z[n:]...))
			if err != nil {
				t.Fatal(err)
			}
			tp.Leaf(xt)
			tp.Leaf(yt)
			xt.ZeroGrad()
			yt.ZeroGrad()
			pred, err := m.Forward(tp, b, xt, yt, false)
			if err != nil {
				t.Fatal(err)
			}
			l, err := tp.Sum(pred.EndpointArrival)
			if err != nil {
				t.Fatal(err)
			}
			if err := tp.Backward(l); err != nil {
				t.Fatal(err)
			}
			analytic := append(append([]float64(nil), xt.Grad...), yt.Grad...)

			// Sample coordinates across both axes; probe each with a
			// reduced-variable central difference through the full model.
			samples := 6
			if 2*n < samples {
				samples = 2 * n
			}
			idx := make([]int, samples)
			vals := make([]float64, samples)
			for s := 0; s < samples; s++ {
				idx[s] = s * (2 * n) / samples
				vals[s] = z[idx[s]]
			}
			reduced := func(v []float64) (float64, error) {
				w := append([]float64(nil), z...)
				for j, id := range idx {
					w[id] = v[j]
				}
				return loss(w)
			}
			numeric, err := oracle.CentralDiff(reduced, vals, 1e-4)
			if err != nil {
				t.Fatal(err)
			}
			for j, id := range idx {
				if d := math.Abs(numeric[j] - analytic[id]); d > 1e-5 {
					t.Fatalf("coord %d: backprop %.10g vs central-diff %.10g (|Δ|=%.3g)", id, analytic[id], numeric[j], d)
				}
			}
		})
	}
}

// TestPropOracleElmoreMonotone pins the reference Elmore oracle's own
// physics on random RC trees: delays are non-negative, non-decreasing
// along every root path, and monotone in every resistance and
// capacitance (the formula is a positive bilinear form).
func TestPropOracleElmoreMonotone(t *testing.T) {
	check.Run(t, check.RCTrees(16), func(tr check.RCTree) error {
		base := oracle.ElmoreNaive(tr.Parent, tr.EdgeR, tr.Cap)
		for v := range base {
			if base[v] < 0 {
				return fmt.Errorf("negative delay %g at node %d", base[v], v)
			}
			if p := tr.Parent[v]; p >= 0 && base[v] < base[p]-1e-12 {
				return fmt.Errorf("delay decreases from parent %d (%g) to child %d (%g)", p, base[p], v, base[v])
			}
		}
		// Bump one resistance and one capacitance: no delay may drop.
		n := tr.Nodes()
		r2 := append([]float64(nil), tr.EdgeR...)
		r2[1] += 0.5
		bumpedR := oracle.ElmoreNaive(tr.Parent, r2, tr.Cap)
		for v := range base {
			if bumpedR[v] < base[v]-1e-12 {
				return fmt.Errorf("raising a resistance lowered delay at node %d: %g -> %g", v, base[v], bumpedR[v])
			}
		}
		// Capacitance bump.
		c2 := append([]float64(nil), tr.Cap...)
		c2[n-1] += 0.05
		bumpedC := oracle.ElmoreNaive(tr.Parent, tr.EdgeR, c2)
		for v := range base {
			if bumpedC[v] < base[v]-1e-12 {
				return fmt.Errorf("raising a capacitance lowered delay at node %d: %g -> %g", v, base[v], bumpedC[v])
			}
		}
		return nil
	})
}
