// Package oracle holds brute-force reference implementations that the
// fast production code is differentially tested against. Each oracle
// favors obviousness over speed — exhaustive enumeration, quadratic
// recomputation, fixpoint iteration — so a disagreement with the
// production path almost certainly means the production path drifted.
//
// The pairings (exercised by the TestOracle* tests in this package):
//
//	SteinerMinLength  (exhaustive Hanan enumeration)  vs  internal/rsmt
//	NetElmore         (O(n²) shared-path Elmore)      vs  internal/rc
//	STAFixpoint       (relaxation until fixpoint)     vs  internal/sta
//	CentralDiff       (full-model finite differences) vs  internal/gnn + tensor backprop
package oracle

import (
	"fmt"
	"math"

	"tsteiner/internal/geom"
	"tsteiner/internal/lib"
	"tsteiner/internal/netlist"
	"tsteiner/internal/rc"
	"tsteiner/internal/rsmt"
	"tsteiner/internal/sta"
)

// MaxExactTerminals bounds SteinerMinLength's exhaustive enumeration:
// with n terminals the Hanan grid has ≤ n² candidates and an optimal
// tree needs ≤ n−2 Steiner points, so n = 5 keeps the subset count
// (≤ C(20,3)+C(20,2)+C(20,1)+1) trivially enumerable.
const MaxExactTerminals = 5

// SteinerMinLength returns the exact rectilinear Steiner minimum tree
// length of the terminal set by exhaustive enumeration: by Hanan's
// theorem an optimal RSMT embeds with all Steiner points on the Hanan
// grid, and needs at most n−2 of them, so minimizing the spanning-tree
// length over every such subset is exact. Duplicate terminals are
// ignored. Terminal counts above MaxExactTerminals return an error.
func SteinerMinLength(terms []geom.Point) (int, error) {
	uniq := dedupe(terms)
	n := len(uniq)
	if n > MaxExactTerminals {
		return 0, fmt.Errorf("oracle: %d distinct terminals exceeds exact limit %d", n, MaxExactTerminals)
	}
	if n <= 1 {
		return 0, nil
	}
	best := MSTLength(uniq)
	// Candidate Steiner positions: Hanan grid minus the terminals.
	existing := map[geom.Point]bool{}
	for _, p := range uniq {
		existing[p] = true
	}
	var cands []geom.Point
	for _, c := range geom.HananGrid(uniq) {
		if !existing[c] {
			cands = append(cands, c)
		}
	}
	maxExtra := n - 2
	pts := make([]geom.Point, n, n+maxExtra)
	copy(pts, uniq)
	var enumerate func(start, remaining int)
	enumerate = func(start, remaining int) {
		if l := MSTLength(pts); l < best {
			best = l
		}
		if remaining == 0 {
			return
		}
		for i := start; i < len(cands); i++ {
			pts = append(pts, cands[i])
			enumerate(i+1, remaining-1)
			pts = pts[:len(pts)-1]
		}
	}
	enumerate(0, maxExtra)
	return best, nil
}

// MSTLength returns the Manhattan minimum-spanning-tree length of the
// point set (Prim's algorithm) — the classic upper bound a Steiner
// construction must never exceed and the primitive the exhaustive
// enumeration minimizes.
func MSTLength(pts []geom.Point) int {
	n := len(pts)
	if n <= 1 {
		return 0
	}
	const inf = int(^uint(0) >> 1)
	dist := make([]int, n)
	inTree := make([]bool, n)
	for i := range dist {
		dist[i] = inf
	}
	dist[0] = 0
	total := 0
	for iter := 0; iter < n; iter++ {
		best, bestD := -1, inf
		for v := 0; v < n; v++ {
			if !inTree[v] && dist[v] < bestD {
				best, bestD = v, dist[v]
			}
		}
		inTree[best] = true
		total += bestD
		for v := 0; v < n; v++ {
			if !inTree[v] {
				if d := geom.ManhattanDist(pts[best], pts[v]); d < dist[v] {
					dist[v] = d
				}
			}
		}
	}
	return total
}

func dedupe(pts []geom.Point) []geom.Point {
	seen := map[geom.Point]bool{}
	var out []geom.Point
	for _, p := range pts {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

// ElmoreNaive computes per-node Elmore delays of an RC tree in
// parent-array form (root = node 0, Parent[0] = −1, EdgeR[i] is the
// resistance of the edge i→Parent[i], Cap[i] the node capacitance) by
// the textbook double sum: delay(v) = Σ_k Cap[k] · R_shared(v, k),
// where R_shared is the resistance of the common prefix of the two
// root paths. O(n²) path walks — no subtree-capacitance reuse, which
// is exactly what makes it an independent check of rc's linear-time
// two-pass evaluation.
func ElmoreNaive(parent []int, edgeR, nodeCap []float64) []float64 {
	n := len(parent)
	// Root path of every node as a set of edge indices (the edge of
	// node i is identified by i itself).
	paths := make([][]int, n)
	for v := 0; v < n; v++ {
		var rev []int
		for u := v; parent[u] >= 0; u = parent[u] {
			rev = append(rev, u)
		}
		path := make([]int, len(rev))
		for i := range rev {
			path[i] = rev[len(rev)-1-i]
		}
		paths[v] = path
	}
	sharedR := func(a, b int) float64 {
		pa, pb := paths[a], paths[b]
		r := 0.0
		for i := 0; i < len(pa) && i < len(pb) && pa[i] == pb[i]; i++ {
			r += edgeR[pa[i]]
		}
		return r
	}
	delay := make([]float64, n)
	for v := 0; v < n; v++ {
		for k := 0; k < n; k++ {
			delay[v] += nodeCap[k] * sharedR(v, k)
		}
	}
	return delay
}

// NetElmore is the brute-force counterpart of rc.ExtractFromTrees for
// one net: it rebuilds the pre-routing RC model (average-layer unit R/C
// per Manhattan length plus two via resistances per edge, half of each
// edge's capacitance on each endpoint, sink pin caps) and evaluates it
// with ElmoreNaive. Returned slices align with the net's Sinks order.
func NetElmore(d *netlist.Design, tr *rsmt.Tree, tech *lib.Library) (totalCap float64, sinkDelay, sinkSlewAdd []float64, err error) {
	net := d.Net(tr.Net)
	n := len(tr.Nodes)
	// Root the tree at node 0 by BFS.
	adj := tr.Adjacency()
	parent := make([]int, n)
	parentEdge := make([]int, n)
	for i := range parent {
		parent[i] = -2
	}
	parent[0] = -1
	queue := []int32{0}
	visited := 1
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if parent[v] == -2 {
				parent[v] = int(u)
				visited++
				queue = append(queue, v)
			}
		}
	}
	if visited != n {
		return 0, nil, nil, fmt.Errorf("oracle: net %s tree disconnected", net.Name)
	}
	// Per-node parent-edge R and node caps.
	rAvg, cAvg := rc.AvgLayerRC(tech)
	edgeR := make([]float64, n)
	nodeCap := make([]float64, n)
	for _, e := range tr.Edges {
		l := geom.ManhattanDistF(tr.Nodes[e.A].Pos, tr.Nodes[e.B].Pos)
		r := l*rAvg + 2*tech.ViaRes
		c := l * cAvg
		nodeCap[e.A] += c / 2
		nodeCap[e.B] += c / 2
		switch {
		case parent[e.A] == int(e.B):
			edgeR[e.A] = r
			parentEdge[e.A] = int(e.A)
		case parent[e.B] == int(e.A):
			edgeR[e.B] = r
			parentEdge[e.B] = int(e.B)
		default:
			return 0, nil, nil, fmt.Errorf("oracle: net %s edge (%d,%d) not parent-child", net.Name, e.A, e.B)
		}
	}
	for i := range tr.Nodes {
		nd := &tr.Nodes[i]
		if nd.Kind == rsmt.PinNode && nd.Pin != net.Driver {
			nodeCap[i] += d.Pin(nd.Pin).Cap
		}
	}
	for _, c := range nodeCap {
		totalCap += c
	}
	delay := ElmoreNaive(parent, edgeR, nodeCap)
	ln9 := math.Log(9)
	sinkDelay = make([]float64, len(net.Sinks))
	sinkSlewAdd = make([]float64, len(net.Sinks))
	for si, pid := range net.Sinks {
		node := -1
		for i := range tr.Nodes {
			if tr.Nodes[i].Kind == rsmt.PinNode && tr.Nodes[i].Pin == pid {
				node = i
				break
			}
		}
		if node < 0 {
			return 0, nil, nil, fmt.Errorf("oracle: net %s sink %d missing from tree", net.Name, pid)
		}
		sinkDelay[si] = delay[node]
		sinkSlewAdd[si] = ln9 * delay[node]
	}
	return totalCap, sinkDelay, sinkSlewAdd, nil
}

// Timing is the fixpoint STA result: forward annotations plus the
// sign-off triple, the subset of sta.Result the oracle cross-checks.
type Timing struct {
	Arrival []float64
	Slew    []float64

	Endpoints     []netlist.PinID
	EndpointSlack []float64

	WNS, TNS float64
	Vios     int
}

// STAFixpoint is the unoptimized longest-path STA: instead of one pass
// in topological order it sweeps every pin repeatedly, recomputing each
// arrival/slew from the current predecessor values, until a full sweep
// changes nothing — Bellman–Ford-style relaxation that needs no
// topological order at all. On a DAG of depth D it converges within D
// sweeps; exceeding the pin count indicates a cycle and fails.
func STAFixpoint(d *netlist.Design, rcs []rc.NetRC) (*Timing, error) {
	return STAFixpointCorner(d, rcs, sta.TypicalCorner())
}

// STAFixpointCorner is the corner-derated fixpoint reference: the same
// relaxation with every delay multiplied by DelayScale, every
// transition by SlewScale, and the clock constraint by ClockScale —
// mirroring the production derating independently, so a scaling
// mistake on either side breaks the differential test. The typical
// corner reproduces STAFixpoint bit for bit (multiplication by 1.0 is
// the IEEE-754 identity).
func STAFixpointCorner(d *netlist.Design, rcs []rc.NetRC, c sta.Corner) (*Timing, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if len(rcs) != len(d.Nets) {
		return nil, fmt.Errorf("oracle: %d RC views for %d nets", len(rcs), len(d.Nets))
	}
	n := d.NumPins()
	res := &Timing{
		Arrival: make([]float64, n),
		Slew:    make([]float64, n),
	}
	load := func(pid netlist.PinID) float64 {
		net := d.Pin(pid).Net
		if net == netlist.NoID {
			return 0
		}
		return rcs[net].TotalCap
	}
	// Boundary conditions, identical to sign-off STA's.
	for _, pid := range d.PIs {
		res.Slew[pid] = sta.PISlew * c.SlewScale
	}
	fixed := make([]bool, n) // boundary pins never recomputed
	for _, pid := range d.PIs {
		fixed[pid] = true
	}
	clockSlew := sta.ClockSlew * c.SlewScale
	for ci := range d.Cells {
		inst := d.Cell(netlist.CellID(ci))
		if !inst.Master.Sequential {
			continue
		}
		q := inst.OutputPin()
		arc := inst.Master.ArcFrom("CK")
		if arc == nil {
			return nil, fmt.Errorf("oracle: register %s lacks CK arc", inst.Name)
		}
		res.Arrival[q] = arc.Delay.Lookup(clockSlew, load(q)) * c.DelayScale
		res.Slew[q] = arc.Slew.Lookup(clockSlew, load(q)) * c.SlewScale
		fixed[q] = true
	}

	// Relax until a full sweep is a no-op.
	for sweep := 0; ; sweep++ {
		if sweep > n+1 {
			return nil, fmt.Errorf("oracle: fixpoint did not converge (cyclic timing graph?)")
		}
		changed := false
		for id := 0; id < n; id++ {
			pid := netlist.PinID(id)
			if fixed[pid] {
				continue
			}
			p := d.Pin(pid)
			var arr, slew float64
			switch {
			case p.Dir == netlist.Input:
				// Net sink (cell input or PO): pull from the driver.
				if p.Net == netlist.NoID {
					continue // floating clock pin
				}
				net := d.Net(p.Net)
				si := -1
				for i, s := range net.Sinks {
					if s == pid {
						si = i
					}
				}
				nrc := &rcs[p.Net]
				arr = res.Arrival[net.Driver] + nrc.SinkDelay[si]*c.DelayScale
				slew = rc.CombineSlew(res.Slew[net.Driver], nrc.SinkSlewAdd[si]*c.SlewScale)
			case p.Cell != netlist.NoID:
				// Combinational cell output: worst over input arcs.
				inst := d.Cell(p.Cell)
				ld := load(pid)
				worst := math.Inf(-1)
				worstSlew := 0.0
				for i, in := range inst.InputPins() {
					arc := inst.Master.ArcFrom(inst.Master.Inputs[i])
					if arc == nil {
						continue
					}
					if a := res.Arrival[in] + arc.Delay.Lookup(res.Slew[in], ld)*c.DelayScale; a > worst {
						worst = a
					}
					if s := arc.Slew.Lookup(res.Slew[in], ld) * c.SlewScale; s > worstSlew {
						worstSlew = s
					}
				}
				if math.IsInf(worst, -1) {
					return nil, fmt.Errorf("oracle: cell %s output has no timing arc", inst.Name)
				}
				arr, slew = worst, worstSlew
			default:
				continue // unconnected port
			}
			if arr != res.Arrival[pid] || slew != res.Slew[pid] {
				res.Arrival[pid] = arr
				res.Slew[pid] = slew
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	// Endpoint constraints and the sign-off triple.
	res.Endpoints = d.Endpoints()
	res.EndpointSlack = make([]float64, len(res.Endpoints))
	res.WNS = math.Inf(1)
	for i, e := range res.Endpoints {
		required := d.ClockPeriod * c.ClockScale
		if p := d.Pin(e); !p.IsPort {
			required -= d.Cell(p.Cell).Master.Setup * c.DelayScale
		}
		slack := required - res.Arrival[e]
		res.EndpointSlack[i] = slack
		if slack < res.WNS {
			res.WNS = slack
		}
		if slack < 0 {
			res.TNS += slack
			res.Vios++
		}
	}
	if len(res.Endpoints) == 0 {
		res.WNS = 0
	}
	return res, nil
}

// CentralDiff estimates the gradient of f at x by symmetric finite
// differences: g[i] = (f(x+εe_i) − f(x−εe_i)) / 2ε. x is restored
// after each probe. The full model sits inside f, so this checks the
// entire forward/backward pipeline, not individual ops.
func CentralDiff(f func(x []float64) (float64, error), x []float64, eps float64) ([]float64, error) {
	g := make([]float64, len(x))
	for i := range x {
		orig := x[i]
		x[i] = orig + eps
		fp, err := f(x)
		if err != nil {
			x[i] = orig
			return nil, err
		}
		x[i] = orig - eps
		fm, err := f(x)
		x[i] = orig
		if err != nil {
			return nil, err
		}
		g[i] = (fp - fm) / (2 * eps)
	}
	return g, nil
}
