package oracle_test

import (
	"fmt"
	"math"
	"testing"

	"tsteiner/internal/check"
	"tsteiner/internal/check/oracle"
	"tsteiner/internal/lib"
	"tsteiner/internal/rc"
	"tsteiner/internal/rsmt"
	"tsteiner/internal/sta"
)

// TestOracleMultiCornerSTA runs the full corner matrix on every
// benchmark and checks each corner's production traversal against the
// independently derated fixpoint reference, then pins backward
// compatibility: the typical corner must be bitwise identical to
// sta.Run — not merely close.
func TestOracleMultiCornerSTA(t *testing.T) {
	corners := sta.DefaultCorners()
	for _, name := range benchNames() {
		t.Run(name, func(t *testing.T) {
			p := prepared(t, name, oracleScale)
			rcs, err := rc.ExtractFromTrees(p.Design, p.Forest, p.Lib)
			if err != nil {
				t.Fatal(err)
			}
			results, err := sta.RunCorners(p.Design, rcs, corners)
			if err != nil {
				t.Fatal(err)
			}
			for ci, c := range corners {
				got := results[ci]
				want, err := oracle.STAFixpointCorner(p.Design, rcs, c)
				if err != nil {
					t.Fatal(err)
				}
				for pid := range got.Arrival {
					if relDiff(got.Arrival[pid], want.Arrival[pid]) > 1e-9 {
						t.Fatalf("%s pin %d: arrival %.12g (sta) vs %.12g (fixpoint)",
							c.Name, pid, got.Arrival[pid], want.Arrival[pid])
					}
					if relDiff(got.Slew[pid], want.Slew[pid]) > 1e-9 {
						t.Fatalf("%s pin %d: slew %.12g (sta) vs %.12g (fixpoint)",
							c.Name, pid, got.Slew[pid], want.Slew[pid])
					}
				}
				for i := range got.Endpoints {
					if relDiff(got.EndpointSlack[i], want.EndpointSlack[i]) > 1e-9 {
						t.Fatalf("%s endpoint %d: slack %.12g vs %.12g",
							c.Name, i, got.EndpointSlack[i], want.EndpointSlack[i])
					}
				}
				if relDiff(got.WNS, want.WNS) > 1e-9 || relDiff(got.TNS, want.TNS) > 1e-9 || got.Vios != want.Vios {
					t.Fatalf("%s sign-off triple (%.12g, %.12g, %d) vs (%.12g, %.12g, %d)",
						c.Name, got.WNS, got.TNS, got.Vios, want.WNS, want.TNS, want.Vios)
				}
			}

			// Backward compatibility: the typical row of the matrix is
			// bit-for-bit today's single-corner sign-off.
			single, err := sta.Run(p.Design, rcs)
			if err != nil {
				t.Fatal(err)
			}
			typ := results[1]
			if err := bitIdentical(typ, single); err != nil {
				t.Fatalf("typical corner vs sta.Run: %v", err)
			}
		})
	}
}

// TestPropMultiCornerTypicalIdentity is the seeded property variant of
// the backward-compatibility pin: on random designs, RunCorner at any
// all-ones corner (whatever its name) is bitwise identical to Run.
func TestPropMultiCornerTypicalIdentity(t *testing.T) {
	cfg := check.Config{Cases: 8}
	check.RunCfg(t, cfg, check.DesignSpecs(), func(spec check.DesignSpec) error {
		d, err := spec.Build()
		if err != nil {
			return err
		}
		f, err := rsmt.BuildAll(d, rsmt.DefaultOptions())
		if err != nil {
			return err
		}
		rcs, err := rc.ExtractFromTrees(d, f, lib.Default())
		if err != nil {
			return err
		}
		want, err := sta.Run(d, rcs)
		if err != nil {
			return err
		}
		got, err := sta.RunCorner(d, rcs, sta.Corner{Name: "unit", DelayScale: 1.0, SlewScale: 1.0, ClockScale: 1.0})
		if err != nil {
			return err
		}
		return bitIdentical(got, want)
	})
}

// bitIdentical compares every exported float annotation of two STA
// results for bit-equality.
func bitIdentical(got, want *sta.Result) error {
	vecs := []struct {
		label string
		a, b  []float64
	}{
		{"Arrival", got.Arrival, want.Arrival},
		{"Slew", got.Slew, want.Slew},
		{"ArrivalMin", got.ArrivalMin, want.ArrivalMin},
		{"Required", got.Required, want.Required},
		{"PinSlack", got.PinSlack, want.PinSlack},
		{"EndpointSlack", got.EndpointSlack, want.EndpointSlack},
		{"EndpointArrival", got.EndpointArrival, want.EndpointArrival},
	}
	for _, v := range vecs {
		if len(v.a) != len(v.b) {
			return fmt.Errorf("%s: length %d vs %d", v.label, len(v.a), len(v.b))
		}
		for i := range v.a {
			if math.Float64bits(v.a[i]) != math.Float64bits(v.b[i]) {
				return fmt.Errorf("%s[%d]: %.17g vs %.17g", v.label, i, v.a[i], v.b[i])
			}
		}
	}
	if math.Float64bits(got.WNS) != math.Float64bits(want.WNS) ||
		math.Float64bits(got.TNS) != math.Float64bits(want.TNS) ||
		got.Vios != want.Vios ||
		math.Float64bits(got.WHS) != math.Float64bits(want.WHS) ||
		got.HoldVios != want.HoldVios || got.SlewVios != want.SlewVios {
		return fmt.Errorf("summary metrics differ: (%v %v %d %v %d %d) vs (%v %v %d %v %d %d)",
			got.WNS, got.TNS, got.Vios, got.WHS, got.HoldVios, got.SlewVios,
			want.WNS, want.TNS, want.Vios, want.WHS, want.HoldVios, want.SlewVios)
	}
	return nil
}
