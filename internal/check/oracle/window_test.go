package oracle_test

import (
	"math"
	"math/rand"
	"testing"

	"tsteiner/internal/check/oracle"
	"tsteiner/internal/netlist"
	"tsteiner/internal/rc"
	"tsteiner/internal/rsmt"
	"tsteiner/internal/sta"
)

// TestOracleWindowedSTA is the differential gate for the windowed STA:
// on every seeded benchmark, random moved-net subsets are re-timed
// cone-only via sta.Retimer and the annotation must (a) be bit-identical
// to a from-scratch sta.Run on the new parasitics and (b) agree with
// the order-free STAFixpoint relaxation to the oracle tolerance.
// Trials chain — each windowed result becomes the next previous state —
// so stale annotations cannot hide.
func TestOracleWindowedSTA(t *testing.T) {
	for _, name := range benchNames() {
		t.Run(name, func(t *testing.T) {
			p := prepared(t, name, oracleScale)
			f := p.Forest.Clone()
			rcs, err := rc.ExtractFromTrees(p.Design, f, p.Lib)
			if err != nil {
				t.Fatal(err)
			}
			prev, err := sta.Run(p.Design, rcs)
			if err != nil {
				t.Fatal(err)
			}
			rt, err := sta.NewRetimer(p.Design)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(1000 + len(p.Design.Nets))))
			trials := 6
			if testing.Short() {
				trials = 3
			}
			for trial := 0; trial < trials; trial++ {
				// Move a random subset of nets (≤ ~8% so the windowed
				// path, not the full fallback, is what runs).
				k := 1 + rng.Intn(len(p.Design.Nets)/12+1)
				changed := make([]netlist.NetID, 0, k)
				seen := map[netlist.NetID]bool{}
				for len(changed) < k {
					ni := netlist.NetID(rng.Intn(len(p.Design.Nets)))
					if seen[ni] {
						continue
					}
					seen[ni] = true
					tr := f.Trees[ni]
					for i := range tr.Nodes {
						if tr.Nodes[i].Kind != rsmt.SteinerNode {
							continue
						}
						tr.Nodes[i].Pos.X += (rng.Float64() - 0.5) * 6
						tr.Nodes[i].Pos.Y += (rng.Float64() - 0.5) * 6
					}
					nrc, err := rc.ExtractTreeNet(p.Design, tr, p.Lib)
					if err != nil {
						t.Fatal(err)
					}
					rcs[ni] = nrc
					changed = append(changed, ni)
				}

				got, err := rt.Retime(prev, rcs, changed)
				if err != nil {
					t.Fatal(err)
				}

				// (a) bit-identity against the one-pass engine.
				want, err := sta.Run(p.Design, rcs)
				if err != nil {
					t.Fatal(err)
				}
				for pid := range want.Arrival {
					if math.Float64bits(got.Arrival[pid]) != math.Float64bits(want.Arrival[pid]) ||
						math.Float64bits(got.Slew[pid]) != math.Float64bits(want.Slew[pid]) ||
						math.Float64bits(got.Required[pid]) != math.Float64bits(want.Required[pid]) {
						t.Fatalf("trial %d pin %d: windowed (%.17g, %.17g, %.17g) vs full (%.17g, %.17g, %.17g)",
							trial, pid, got.Arrival[pid], got.Slew[pid], got.Required[pid],
							want.Arrival[pid], want.Slew[pid], want.Required[pid])
					}
				}
				if math.Float64bits(got.WNS) != math.Float64bits(want.WNS) ||
					math.Float64bits(got.TNS) != math.Float64bits(want.TNS) ||
					got.Vios != want.Vios {
					t.Fatalf("trial %d: windowed sign-off (%g, %g, %d) vs full (%g, %g, %d)",
						trial, got.WNS, got.TNS, got.Vios, want.WNS, want.TNS, want.Vios)
				}

				// (b) oracle agreement: the brute-force fixpoint
				// relaxation re-timed from scratch on the new parasitics.
				ora, err := oracle.STAFixpoint(p.Design, rcs)
				if err != nil {
					t.Fatal(err)
				}
				for pid := range ora.Arrival {
					if relDiff(got.Arrival[pid], ora.Arrival[pid]) > 1e-9 {
						t.Fatalf("trial %d pin %d: arrival %.12g (windowed) vs %.12g (fixpoint)",
							trial, pid, got.Arrival[pid], ora.Arrival[pid])
					}
					if relDiff(got.Slew[pid], ora.Slew[pid]) > 1e-9 {
						t.Fatalf("trial %d pin %d: slew %.12g (windowed) vs %.12g (fixpoint)",
							trial, pid, got.Slew[pid], ora.Slew[pid])
					}
				}
				for i := range ora.Endpoints {
					if got.Endpoints[i] != ora.Endpoints[i] {
						t.Fatalf("trial %d endpoint %d differs", trial, i)
					}
					if relDiff(got.EndpointSlack[i], ora.EndpointSlack[i]) > 1e-9 {
						t.Fatalf("trial %d endpoint %d: slack %.12g vs %.12g",
							trial, i, got.EndpointSlack[i], ora.EndpointSlack[i])
					}
				}
				if relDiff(got.WNS, ora.WNS) > 1e-9 || relDiff(got.TNS, ora.TNS) > 1e-9 || got.Vios != ora.Vios {
					t.Fatalf("trial %d: sign-off triple (%.12g, %.12g, %d) vs oracle (%.12g, %.12g, %d)",
						trial, got.WNS, got.TNS, got.Vios, ora.WNS, ora.TNS, ora.Vios)
				}

				prev = got
			}
		})
	}
}
