package check

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"tsteiner/internal/geom"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRNGRanges(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 1000; i++ {
		if v := r.Range(-3, 5); v < -3 || v > 5 {
			t.Fatalf("Range out of bounds: %d", v)
		}
		if v := r.Float64(); v < 0 || v >= 1 {
			t.Fatalf("Float64 out of bounds: %g", v)
		}
		if v := r.Intn(4); v < 0 || v >= 4 {
			t.Fatalf("Intn out of bounds: %d", v)
		}
	}
}

// TestCasesByteDeterministic pins the same-seed ⇒ same-cases contract:
// two runs with the same config must generate identical case values.
func TestCasesByteDeterministic(t *testing.T) {
	collect := func() []int {
		var vals []int
		RunCfg(t, Config{Cases: 50}, Int(0, 1<<30), func(v int) error {
			vals = append(vals, v)
			return nil
		})
		return vals
	}
	a, b := collect(), collect()
	if len(a) != 50 || len(b) != 50 {
		t.Fatalf("expected 50 cases, got %d and %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("case %d differs between identical runs: %d vs %d", i, a[i], b[i])
		}
	}
	// A different seed must change the sequence.
	var c []int
	RunCfg(t, Config{Cases: 50, Seed: 999}, Int(0, 1<<30), func(v int) error {
		c = append(c, v)
		return nil
	})
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different run seeds generated identical cases")
	}
}

// TestShrinkFindsMinimalInt drives the shrink loop directly: the
// property "v < 50" must shrink any failing value down to exactly 50.
func TestShrinkFindsMinimalInt(t *testing.T) {
	g := Int(0, 1000)
	prop := func(v int) error {
		if v >= 50 {
			return fmt.Errorf("v=%d >= 50", v)
		}
		return nil
	}
	for _, start := range []int{50, 51, 99, 500, 1000} {
		min, minErr, _ := shrinkLoop(g, prop, start, prop(start), 2000)
		if min != 50 {
			t.Fatalf("shrink from %d reached %d, want 50", start, min)
		}
		if minErr == nil {
			t.Fatal("minimal counterexample lost its error")
		}
	}
}

// TestShrinkSliceRespectsBounds checks slices never shrink below
// minLen and that a size-triggered failure shrinks to the threshold.
func TestShrinkSliceRespectsBounds(t *testing.T) {
	g := SliceOf(2, 40, Int(0, 9))
	prop := func(v []int) error {
		if len(v) >= 5 {
			return errors.New("too long")
		}
		return nil
	}
	start := make([]int, 40)
	min, _, _ := shrinkLoop(g, prop, start, prop(start), 2000)
	if len(min) != 5 {
		t.Fatalf("shrunk slice has %d elements, want 5", len(min))
	}
	// A property that always fails must still respect minLen.
	alwaysFail := func(v []int) error { return errors.New("no") }
	min, _, _ = shrinkLoop(g, alwaysFail, start, errors.New("no"), 2000)
	if len(min) < 2 {
		t.Fatalf("shrunk below minLen: %d", len(min))
	}
}

// TestRunCasePanicBecomesError verifies panicking properties are
// reported (with replay seed) instead of crashing the test binary.
func TestRunCasePanicBecomesError(t *testing.T) {
	g := Int(0, 10)
	err := runCase(g, func(v int) error { panic("boom") }, 123, 10)
	if err == nil {
		t.Fatal("panicking property reported success")
	}
	if !strings.Contains(err.Error(), "boom") || !strings.Contains(err.Error(), "seed") {
		t.Fatalf("unhelpful panic report: %v", err)
	}
}

// TestReplayEnv runs a single case addressed by TSTEINER_CHECK_SEED.
func TestReplayEnv(t *testing.T) {
	t.Setenv(EnvSeed, "0x1234")
	ran := 0
	var seen int
	RunCfg(t, Config{Cases: 64}, Int(0, 1<<20), func(v int) error {
		ran++
		seen = v
		return nil
	})
	if ran != 1 {
		t.Fatalf("replay ran %d cases, want 1", ran)
	}
	// The replayed case must equal a direct generation from that seed.
	want := Int(0, 1<<20).Generate(NewRNG(0x1234))
	if seen != want {
		t.Fatalf("replayed value %d != direct generation %d", seen, want)
	}
}

func TestCombinatorBounds(t *testing.T) {
	r := NewRNG(99)
	two := Two(Int(1, 3), Float(0.5, 1.5))
	for i := 0; i < 200; i++ {
		p := two.Generate(r)
		if p.A < 1 || p.A > 3 || p.B < 0.5 || p.B >= 1.5 {
			t.Fatalf("pair out of bounds: %+v", p)
		}
	}
	one := OneOf(Const(1), Const(2))
	for i := 0; i < 50; i++ {
		if v := one.Generate(r); v != 1 && v != 2 {
			t.Fatalf("OneOf produced %d", v)
		}
	}
	m := Map(Int(0, 5), func(v int) string { return strings.Repeat("x", v) })
	for i := 0; i < 20; i++ {
		if s := m.Generate(r); len(s) > 5 {
			t.Fatalf("mapped value too long: %q", s)
		}
	}
}

func TestDomainGenerators(t *testing.T) {
	box := geom.BBox{XLo: -5, YLo: 0, XHi: 20, YHi: 8}
	r := NewRNG(1)
	pg := PointIn(box)
	for i := 0; i < 300; i++ {
		if p := pg.Generate(r); !box.Contains(p) {
			t.Fatalf("point %v outside box", p)
		}
	}
	tg := RCTrees(12)
	for i := 0; i < 100; i++ {
		tree := tg.Generate(r)
		if tree.Nodes() < 2 || tree.Nodes() > 12 {
			t.Fatalf("tree size %d out of range", tree.Nodes())
		}
		if tree.Parent[0] != -1 {
			t.Fatal("root parent must be -1")
		}
		for i := 1; i < tree.Nodes(); i++ {
			if tree.Parent[i] < 0 || tree.Parent[i] >= i {
				t.Fatalf("node %d has invalid parent %d", i, tree.Parent[i])
			}
			if tree.EdgeR[i] <= 0 || tree.Cap[i] <= 0 {
				t.Fatal("non-positive R or C")
			}
		}
	}
	// Design specs build valid designs, and Build is deterministic.
	sg := DesignSpecs()
	spec := sg.Generate(NewRNG(5))
	d1, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := d1.Validate(); err != nil {
		t.Fatal(err)
	}
	d2, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(d1.Pins) != len(d2.Pins) {
		t.Fatal("Build not deterministic")
	}
	for i := range d1.Pins {
		if d1.Pins[i].Pos != d2.Pins[i].Pos {
			t.Fatal("placement not deterministic")
		}
	}
}
