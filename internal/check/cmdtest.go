package check

// Binary smoke-test helpers: compile a main package with the Go
// toolchain and run it with an exit-status assertion. Used by the
// cmd/* and examples smoke tests.

import (
	"flag"
	"io"
	"log"
	"os"
	"os/exec"
	"path"
	"path/filepath"
	"strings"
	"testing"
)

// GoBuild compiles the named main package into a test temp dir and
// returns the binary path. The build failing fails the test.
func GoBuild(t *testing.T, pkg string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), path.Base(pkg))
	cmd := exec.Command("go", "build", "-o", bin, pkg)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build %s: %v\n%s", pkg, err, out)
	}
	return bin
}

// RunOK executes bin with args in workDir, asserting exit status 0 and
// non-empty combined output; the output is returned for content checks.
func RunOK(t *testing.T, workDir, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Dir = workDir
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	if len(out) == 0 {
		t.Fatalf("%s %v: exit 0 but no output", filepath.Base(bin), args)
	}
	return string(out)
}

// RunFail executes bin with args, asserting a non-zero exit status —
// the misuse path (missing required flags, bad input) must not
// silently succeed. Returns combined output.
func RunFail(t *testing.T, workDir, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Dir = workDir
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("%s %v: expected failure, got exit 0\n%s", filepath.Base(bin), args, out)
	}
	return string(out)
}

// RunMain invokes a command's main function in-process: it chdirs into
// workDir, swaps os.Args and the global flag set (commands register
// their flags inside main, so a fresh flag.CommandLine per call avoids
// redefinition panics), redirects stdout, stderr and the log package
// into a pipe, and returns the combined output after mainFn finishes.
//
// Running in-process is what lets `go test -cover` attribute executed
// lines to the main package — an external binary contributes nothing
// to coverage. mainFn must return normally on the exercised path; keep
// misuse paths (log.Fatal, os.Exit) on the compiled-binary helpers.
func RunMain(t *testing.T, workDir string, mainFn func(), args ...string) string {
	t.Helper()
	oldArgs, oldFlag := os.Args, flag.CommandLine
	oldStdout, oldStderr := os.Stdout, os.Stderr
	oldWD, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(workDir); err != nil {
		t.Fatal(err)
	}
	os.Args = append([]string{oldArgs[0]}, args...)
	flag.CommandLine = flag.NewFlagSet(os.Args[0], flag.ExitOnError)
	os.Stdout, os.Stderr = w, w
	log.SetOutput(w)

	collected := make(chan string, 1)
	go func() {
		var b strings.Builder
		io.Copy(&b, r)
		collected <- b.String()
	}()
	defer func() {
		os.Args, flag.CommandLine = oldArgs, oldFlag
		os.Stdout, os.Stderr = oldStdout, oldStderr
		log.SetOutput(os.Stderr)
		w.Close() // idempotent; unblocks the reader if mainFn panicked
		if err := os.Chdir(oldWD); err != nil {
			t.Fatal(err)
		}
	}()
	mainFn()
	w.Close()
	return <-collected
}
