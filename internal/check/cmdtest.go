package check

// Binary smoke-test helpers: compile a main package with the Go
// toolchain and run it with an exit-status assertion. Used by the
// cmd/* and examples smoke tests.

import (
	"os/exec"
	"path"
	"path/filepath"
	"testing"
)

// GoBuild compiles the named main package into a test temp dir and
// returns the binary path. The build failing fails the test.
func GoBuild(t *testing.T, pkg string) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), path.Base(pkg))
	cmd := exec.Command("go", "build", "-o", bin, pkg)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build %s: %v\n%s", pkg, err, out)
	}
	return bin
}

// RunOK executes bin with args in workDir, asserting exit status 0 and
// non-empty combined output; the output is returned for content checks.
func RunOK(t *testing.T, workDir, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Dir = workDir
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	if len(out) == 0 {
		t.Fatalf("%s %v: exit 0 but no output", filepath.Base(bin), args)
	}
	return string(out)
}

// RunFail executes bin with args, asserting a non-zero exit status —
// the misuse path (missing required flags, bad input) must not
// silently succeed. Returns combined output.
func RunFail(t *testing.T, workDir, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Dir = workDir
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("%s %v: expected failure, got exit 0\n%s", filepath.Base(bin), args, out)
	}
	return string(out)
}
