package check

// Generic generator combinators. Shrinking conventions: numbers shrink
// toward the low end of their range, slices shrink by dropping chunks
// and then single elements, pairs shrink one side at a time.

// Const always generates v and never shrinks.
func Const[T any](v T) Gen[T] {
	return Gen[T]{Generate: func(*RNG) T { return v }}
}

// Int generates ints uniformly in [lo, hi], shrinking toward lo.
func Int(lo, hi int) Gen[int] {
	if hi < lo {
		panic("check: Int with hi < lo")
	}
	return Gen[int]{
		Generate: func(r *RNG) int { return r.Range(lo, hi) },
		Shrink: func(v int) []int {
			var out []int
			if v > lo {
				out = append(out, lo)
				if mid := lo + (v-lo)/2; mid != lo && mid != v {
					out = append(out, mid)
				}
				if v-1 != lo {
					out = append(out, v-1)
				}
			}
			return out
		},
	}
}

// Float generates float64s uniformly in [lo, hi), shrinking toward lo.
func Float(lo, hi float64) Gen[float64] {
	if hi < lo {
		panic("check: Float with hi < lo")
	}
	return Gen[float64]{
		Generate: func(r *RNG) float64 { return lo + r.Float64()*(hi-lo) },
		Shrink: func(v float64) []float64 {
			var out []float64
			if v > lo {
				out = append(out, lo)
				if mid := lo + (v-lo)/2; mid != lo && mid != v {
					out = append(out, mid)
				}
			}
			return out
		},
	}
}

// Bool generates coin flips; true shrinks to false.
func Bool() Gen[bool] {
	return Gen[bool]{
		Generate: func(r *RNG) bool { return r.Bool() },
		Shrink: func(v bool) []bool {
			if v {
				return []bool{false}
			}
			return nil
		},
	}
}

// OneOf picks uniformly among the given generators; values do not
// shrink across alternatives.
func OneOf[T any](gens ...Gen[T]) Gen[T] {
	if len(gens) == 0 {
		panic("check: OneOf with no generators")
	}
	return Gen[T]{
		Generate: func(r *RNG) T { return gens[r.Intn(len(gens))].Generate(r) },
	}
}

// Map transforms generated values. The mapped generator does not
// shrink (the inverse of f is unknown); prefer shrinking before
// mapping when minimal counterexamples matter.
func Map[A, B any](g Gen[A], f func(A) B) Gen[B] {
	return Gen[B]{Generate: func(r *RNG) B { return f(g.Generate(r)) }}
}

// Pair combines two generated values.
type Pair[A, B any] struct {
	A A
	B B
}

// Two generates pairs, shrinking one side at a time.
func Two[A, B any](ga Gen[A], gb Gen[B]) Gen[Pair[A, B]] {
	return Gen[Pair[A, B]]{
		Generate: func(r *RNG) Pair[A, B] {
			return Pair[A, B]{A: ga.Generate(r), B: gb.Generate(r)}
		},
		Shrink: func(v Pair[A, B]) []Pair[A, B] {
			var out []Pair[A, B]
			if ga.Shrink != nil {
				for _, a := range ga.Shrink(v.A) {
					out = append(out, Pair[A, B]{A: a, B: v.B})
				}
			}
			if gb.Shrink != nil {
				for _, b := range gb.Shrink(v.B) {
					out = append(out, Pair[A, B]{A: v.A, B: b})
				}
			}
			return out
		},
	}
}

// SliceOf generates slices with lengths in [minLen, maxLen]. Shrinking
// first halves the slice, then drops single elements, then shrinks
// individual elements in place — the classic QuickCheck order that
// reaches small counterexamples fast.
func SliceOf[T any](minLen, maxLen int, elem Gen[T]) Gen[[]T] {
	if minLen < 0 || maxLen < minLen {
		panic("check: SliceOf with invalid length bounds")
	}
	return Gen[[]T]{
		Generate: func(r *RNG) []T {
			n := r.Range(minLen, maxLen)
			out := make([]T, n)
			for i := range out {
				out[i] = elem.Generate(r)
			}
			return out
		},
		Shrink: func(v []T) [][]T {
			var out [][]T
			if len(v) > minLen {
				// Halve (keep the first half), respecting minLen.
				half := len(v) / 2
				if half < minLen {
					half = minLen
				}
				if half < len(v) {
					out = append(out, append([]T(nil), v[:half]...))
				}
				// Drop one element at a few positions.
				for _, i := range []int{0, len(v) / 2, len(v) - 1} {
					if len(v)-1 < minLen || i >= len(v) {
						break
					}
					c := make([]T, 0, len(v)-1)
					c = append(c, v[:i]...)
					c = append(c, v[i+1:]...)
					out = append(out, c)
				}
			}
			if elem.Shrink != nil {
				// Shrink a few individual elements in place.
				for _, i := range []int{0, len(v) / 2, len(v) - 1} {
					if i >= len(v) {
						break
					}
					for _, e := range elem.Shrink(v[i]) {
						c := append([]T(nil), v...)
						c[i] = e
						out = append(out, c)
						break // one candidate per position keeps fan-out bounded
					}
				}
			}
			return out
		},
	}
}
