package check

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"testing"

	"tsteiner/internal/geom"
)

func TestRNGPanicsAndAdapters(t *testing.T) {
	r := NewRNG(7)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Intn(0) did not panic")
			}
		}()
		r.Intn(0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Range(3, 2) did not panic")
			}
		}()
		r.Range(3, 2)
	}()
	// Bool must produce both outcomes over a short stream.
	seenT, seenF := false, false
	for i := 0; i < 64 && !(seenT && seenF); i++ {
		if r.Bool() {
			seenT = true
		} else {
			seenF = true
		}
	}
	if !seenT || !seenF {
		t.Error("Bool never varied over 64 draws")
	}
	// Rand adapts into math/rand deterministically per seed.
	a := NewRNG(11).Rand().Int63()
	b := NewRNG(11).Rand().Int63()
	if a != b {
		t.Errorf("Rand not seed-deterministic: %d != %d", a, b)
	}
}

// TestRunWrapper drives the default-config Run entry point with a
// passing property.
func TestRunWrapper(t *testing.T) {
	Run(t, Int(0, 9), func(v int) error {
		if v < 0 || v > 9 {
			return fmt.Errorf("out of range: %d", v)
		}
		return nil
	})
}

func TestBoolAndFloatShrink(t *testing.T) {
	bg := Bool()
	if got := bg.Shrink(true); len(got) != 1 || got[0] {
		t.Errorf("Shrink(true) = %v, want [false]", got)
	}
	if got := bg.Shrink(false); got != nil {
		t.Errorf("Shrink(false) = %v, want nil", got)
	}

	fg := Float(2, 8)
	for i := 0; i < 16; i++ {
		v := fg.Generate(NewRNG(uint64(i)))
		if v < 2 || v >= 8 {
			t.Fatalf("Float out of [2,8): %v", v)
		}
	}
	cands := fg.Shrink(6)
	if len(cands) == 0 || cands[0] != 2 {
		t.Errorf("Float.Shrink(6) = %v, want lo first", cands)
	}
	for _, c := range cands {
		if c >= 6 {
			t.Errorf("Float shrink candidate %v not smaller than 6", c)
		}
	}
	if got := fg.Shrink(2); got != nil {
		t.Errorf("Float.Shrink(lo) = %v, want nil", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Float(hi<lo) did not panic")
			}
		}()
		Float(3, 1)
	}()
}

func TestTwoShrinksOneSideAtATime(t *testing.T) {
	g := Two(Int(0, 10), Bool())
	v := g.Generate(NewRNG(5))
	if v.A < 0 || v.A > 10 {
		t.Fatalf("pair A out of range: %+v", v)
	}
	cands := g.Shrink(Pair[int, bool]{A: 6, B: true})
	var shrunkA, shrunkB bool
	for _, c := range cands {
		if c.A != 6 && c.B == true {
			shrunkA = true
		}
		if c.A == 6 && c.B == false {
			shrunkB = true
		}
		if c.A != 6 && c.B != true {
			t.Errorf("pair shrink moved both sides at once: %+v", c)
		}
	}
	if !shrunkA || !shrunkB {
		t.Errorf("pair shrink missing a side: A=%v B=%v from %v", shrunkA, shrunkB, cands)
	}
}

func TestOneOfPicksEveryAlternative(t *testing.T) {
	g := OneOf(Const(1), Const(2))
	seen := map[int]bool{}
	for i := 0; i < 64; i++ {
		seen[g.Generate(NewRNG(uint64(i)))] = true
	}
	if !seen[1] || !seen[2] {
		t.Errorf("OneOf alternatives seen: %v", seen)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("OneOf() did not panic")
			}
		}()
		OneOf[int]()
	}()
}

func TestSliceOfElementShrink(t *testing.T) {
	g := SliceOf(2, 6, Int(0, 9))
	cands := g.Shrink([]int{5, 7, 9})
	var droppedLen, shrunkElem bool
	for _, c := range cands {
		if len(c) < 3 {
			droppedLen = true
			if len(c) < 2 {
				t.Errorf("slice shrink violated minLen: %v", c)
			}
		} else {
			shrunkElem = true
		}
	}
	if !droppedLen || !shrunkElem {
		t.Errorf("slice shrink candidates incomplete: %v", cands)
	}
	// At minLen only in-place element shrinks remain.
	for _, c := range g.Shrink([]int{3, 4}) {
		if len(c) != 2 {
			t.Errorf("slice at minLen changed length: %v", c)
		}
	}
}

// TestShrinkBudgetExhaustion pins the MaxShrink bound: a generator
// whose candidates always keep failing must stop after exactly the
// budget, not loop forever.
func TestShrinkBudgetExhaustion(t *testing.T) {
	g := Gen[int]{
		Generate: func(r *RNG) int { return 1 << 20 },
		Shrink:   func(v int) []int { return []int{v - 1} }, // endless failing chain
	}
	alwaysFails := func(int) error { return errors.New("still failing") }
	const budget = 25
	min, minErr, steps := shrinkLoop(g, alwaysFails, 1<<20, errors.New("orig"), budget)
	if steps != budget {
		t.Errorf("shrinkLoop evaluated %d candidates, budget %d", steps, budget)
	}
	if min != 1<<20-budget {
		t.Errorf("shrunk value %d, want %d", min, 1<<20-budget)
	}
	if minErr == nil {
		t.Error("no error carried out of the shrink loop")
	}
	// The full runCase report mentions the tried-candidate count.
	err := runCase(g, alwaysFails, 42, budget)
	if err == nil || !strings.Contains(err.Error(), "candidate(s) tried") {
		t.Errorf("runCase report missing shrink info: %v", err)
	}
}

func TestGeneratorPanicIsCaptured(t *testing.T) {
	g := Gen[int]{Generate: func(r *RNG) int { panic("bad generator") }}
	err := runCase(g, func(int) error { return nil }, 1, 10)
	if err == nil || !strings.Contains(err.Error(), "generator panicked") {
		t.Errorf("generator panic not converted: %v", err)
	}
}

func TestFormatElidesHugeValues(t *testing.T) {
	huge := strings.Repeat("x", 5000)
	s := format(huge)
	if len(s) > 700 || !strings.Contains(s, "bytes total") {
		t.Errorf("format did not elide: %d bytes, suffix %q", len(s), s[len(s)-40:])
	}
}

// TestReplayEnvParsing covers the replay fast path: with the env seed
// set, RunCfg replays exactly one case instead of the whole sequence.
func TestReplayEnvParsing(t *testing.T) {
	calls := 0
	g := Gen[int]{Generate: func(r *RNG) int { calls++; return int(r.Uint64() % 100) }}
	t.Setenv(EnvSeed, "0x1234")
	RunCfg(t, Config{Cases: 64}, g, func(int) error { return nil })
	if calls != 1 {
		t.Errorf("replay ran %d cases, want 1", calls)
	}
}

func TestPointAndRCTreeGenerators(t *testing.T) {
	box := geom.BBox{XLo: 10, YLo: 20, XHi: 30, YHi: 40}
	pg := PointIn(box)
	p := pg.Generate(NewRNG(3))
	if p.X < 10 || p.X > 30 || p.Y < 20 || p.Y > 40 {
		t.Fatalf("point outside box: %+v", p)
	}
	for _, c := range pg.Shrink(geom.Point{X: 25, Y: 35}) {
		if c.X < 10 || c.Y < 20 {
			t.Errorf("shrink left the box: %+v", c)
		}
	}
	if got := pg.Shrink(geom.Point{X: 10, Y: 20}); got != nil {
		t.Errorf("corner point shrank: %v", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("PointIn(empty) did not panic")
			}
		}()
		PointIn(geom.BBox{XLo: 5, YLo: 5, XHi: 4, YHi: 4})
	}()

	pts := PointsIn(box, 2, 5).Generate(NewRNG(9))
	if len(pts) < 2 || len(pts) > 5 {
		t.Errorf("PointsIn length %d", len(pts))
	}

	tg := RCTrees(8)
	tree := tg.Generate(NewRNG(4))
	if tree.Nodes() < 2 || tree.Nodes() > 8 {
		t.Fatalf("tree size %d", tree.Nodes())
	}
	if s := tree.String(); !strings.Contains(s, "RCTree{") {
		t.Errorf("RCTree.String() = %q", s)
	}
	if tree.Nodes() > 2 {
		sh := tg.Shrink(tree)
		if len(sh) != 1 || sh[0].Nodes() != tree.Nodes()-1 {
			t.Errorf("RCTree shrink %v", sh)
		}
	}
	two := RCTree{Parent: []int{-1, 0}, EdgeR: []float64{0, 0.1}, Cap: []float64{0.01, 0.01}}
	if got := tg.Shrink(two); got != nil {
		t.Errorf("2-node tree shrank: %v", got)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("RCTrees(1) did not panic")
			}
		}()
		RCTrees(1)
	}()
}

func TestDesignSpecsShrinkAndBuild(t *testing.T) {
	g := DesignSpecs()
	s := g.Generate(NewRNG(2))
	if s.Cells < 40 || s.Cells > 140 {
		t.Fatalf("spec cells %d", s.Cells)
	}
	if str := s.String(); !strings.Contains(str, "DesignSpec{") {
		t.Errorf("String() = %q", str)
	}
	big := DesignSpec{Seed: 1, Cells: 100, Endpoints: 20, PIs: 6, Depth: 10, ClockNS: 1}
	cands := g.Shrink(big)
	if len(cands) != 3 {
		t.Fatalf("expected 3 shrink candidates (cells, depth, endpoints), got %v", cands)
	}
	minimal := DesignSpec{Seed: 1, Cells: 40, Endpoints: 8, PIs: 4, Depth: 5, ClockNS: 1}
	if got := g.Shrink(minimal); got != nil {
		t.Errorf("minimal spec shrank: %v", got)
	}
	d, err := minimal.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Cells) == 0 {
		t.Error("built design has no cells")
	}
	// Build is a pure function of the spec.
	d2, err := minimal.Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(d2.Cells) != len(d.Cells) || len(d2.Nets) != len(d.Nets) {
		t.Error("rebuilding the same spec changed the design")
	}
}

// TestRunMainInProcess drives a fake main through RunMain: flags must
// parse from the swapped os.Args, output from all three channels
// (stdout, stderr, log) must be captured, and the process-global state
// must be restored afterwards.
func TestRunMainInProcess(t *testing.T) {
	oldArgs := make([]string, len(os.Args))
	copy(oldArgs, os.Args)
	oldWD, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	fakeMain := func() {
		name := flag.String("name", "", "who to greet")
		flag.Parse()
		fmt.Printf("stdout: hello %s\n", *name)
		fmt.Fprintln(os.Stderr, "stderr: aside")
		log.Println("log: note")
		wd, _ := os.Getwd()
		fmt.Println("wd:", wd)
	}
	out := RunMain(t, dir, fakeMain, "-name", "prop")
	for _, want := range []string{"hello prop", "stderr: aside", "log: note", dir} {
		if !strings.Contains(out, want) {
			t.Errorf("captured output missing %q:\n%s", want, out)
		}
	}
	if wd, _ := os.Getwd(); wd != oldWD {
		t.Errorf("working directory not restored: %s", wd)
	}
	if len(os.Args) != len(oldArgs) || os.Args[0] != oldArgs[0] {
		t.Errorf("os.Args not restored: %v", os.Args)
	}
}

// TestCmdHelpers compiles the testdata tinycmd and drives both exit
// paths through the binary smoke-test helpers.
func TestCmdHelpers(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: shells out to go build")
	}
	bin := GoBuild(t, "./testdata/tinycmd")
	dir := t.TempDir()
	if out := RunOK(t, dir, bin); !strings.Contains(out, "ok") {
		t.Errorf("RunOK output %q", out)
	}
	if out := RunFail(t, dir, bin, "-fail"); !strings.Contains(out, "forced failure") {
		t.Errorf("RunFail output %q", out)
	}
}
