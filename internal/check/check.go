// Package check is the repository's seeded property-based testing
// mini-framework: SplitMix64-driven generator combinators, shrinking to
// minimal counterexamples, and replayable failures. It exists so the
// fast production code (rsmt, rc, sta, gnn, ...) can be pinned by
// metamorphic invariants and differentially tested against the
// brute-force reference oracles in check/oracle — the safety net that
// lets later refactors (sharding, caching, batching) move aggressively.
//
// Determinism contract: every case is a pure function of a case seed
// derived from (Config.Seed, case index) by a SplitMix64 mix, so the
// same seed always produces the same cases, byte for byte, regardless
// of worker count or test order. On failure the runner prints the case
// seed; re-running with TSTEINER_CHECK_SEED=<seed> replays exactly that
// case (shrinking included) in isolation.
package check

import (
	"fmt"
	"os"
	"strconv"
	"testing"
)

// EnvSeed is the environment variable that replays a single failing
// case: set it to the case seed printed by a failure report.
const EnvSeed = "TSTEINER_CHECK_SEED"

// RNG is a SplitMix64 generator — the only randomness source the
// framework uses. It is tiny, seedable, and splittable by construction
// (distinct seeds give independent streams), matching the repository's
// explicit-seed determinism rule.
type RNG struct{ state uint64 }

// NewRNG returns a generator seeded with s.
func NewRNG(s uint64) *RNG { return &RNG{state: s} }

// Uint64 returns the next value of the SplitMix64 stream.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Int63 returns a non-negative int64, usable as a math/rand seed.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Intn returns a uniform int in [0, n); n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("check: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Range returns a uniform int in [lo, hi] (inclusive).
func (r *RNG) Range(lo, hi int) int {
	if hi < lo {
		panic("check: Range with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns a fair coin flip.
func (r *RNG) Bool() bool { return r.Uint64()&1 == 1 }

// caseSeed mixes the run seed with a case index so each case owns an
// independent stream (same construction as par.Seed).
func caseSeed(base uint64, index int) uint64 {
	z := base + 0x9e3779b97f4a7c15*uint64(index+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Gen generates random values of T and optionally proposes simpler
// variants of a failing value.
type Gen[T any] struct {
	// Generate draws one value from the RNG. It must be a pure function
	// of the RNG stream.
	Generate func(r *RNG) T
	// Shrink returns candidate simplifications of v, simplest first.
	// nil (or an empty return) disables shrinking for this generator.
	Shrink func(v T) []T
}

// Config tunes a property run.
type Config struct {
	// Cases is the number of random cases (default 64).
	Cases int
	// Seed is the run seed (default DefaultSeed). Same seed ⇒ same cases.
	Seed uint64
	// MaxShrink bounds the number of shrink candidates evaluated after a
	// failure (default 400).
	MaxShrink int
}

// DefaultSeed is the run seed used when Config.Seed is zero, so every
// CI run executes the identical case sequence.
const DefaultSeed = 0x7473746e72 // "tstnr"

func (c Config) withDefaults() Config {
	if c.Cases <= 0 {
		c.Cases = 64
	}
	if c.Seed == 0 {
		c.Seed = DefaultSeed
	}
	if c.MaxShrink <= 0 {
		c.MaxShrink = 400
	}
	return c
}

// Run checks prop against Config default-sized random cases from g.
// prop returns nil for a satisfied case and a descriptive error for a
// violated one; panics inside Generate or prop are converted to
// failures with the same replay information.
func Run[T any](t *testing.T, g Gen[T], prop func(v T) error) {
	t.Helper()
	RunCfg(t, Config{}, g, prop)
}

// RunCfg is Run with explicit configuration.
func RunCfg[T any](t *testing.T, cfg Config, g Gen[T], prop func(v T) error) {
	t.Helper()
	cfg = cfg.withDefaults()

	if env := os.Getenv(EnvSeed); env != "" {
		seed, err := strconv.ParseUint(env, 0, 64)
		if err != nil {
			t.Fatalf("check: cannot parse %s=%q: %v", EnvSeed, env, err)
		}
		if err := runCase(g, prop, seed, cfg.MaxShrink); err != nil {
			t.Fatalf("check: replayed case failed (seed %#x):\n%v", seed, err)
		}
		t.Logf("check: replayed case passed (seed %#x)", seed)
		return
	}

	for i := 0; i < cfg.Cases; i++ {
		seed := caseSeed(cfg.Seed, i)
		if err := runCase(g, prop, seed, cfg.MaxShrink); err != nil {
			t.Fatalf("check: property failed on case %d of %d\n%v\nreplay: %s=%#x go test -run '%s'",
				i+1, cfg.Cases, err, EnvSeed, seed, t.Name())
		}
	}
}

// runCase generates and checks the single case addressed by seed,
// shrinking on failure. The returned error carries the original and
// minimal counterexamples.
func runCase[T any](g Gen[T], prop func(v T) error, seed uint64, maxShrink int) error {
	v, genErr := capture(func() T { return g.Generate(NewRNG(seed)) })
	if genErr != nil {
		return fmt.Errorf("generator panicked (seed %#x): %v", seed, genErr)
	}
	err := safeProp(prop, v)
	if err == nil {
		return nil
	}
	min, minErr, steps := shrinkLoop(g, prop, v, err, maxShrink)
	msg := fmt.Sprintf("seed %#x\noriginal: %s\n  error: %v", seed, format(v), err)
	if steps > 0 {
		msg += fmt.Sprintf("\nshrunk (%d candidate(s) tried): %s\n  error: %v", steps, format(min), minErr)
	}
	return fmt.Errorf("%s", msg)
}

// shrinkLoop greedily walks shrink candidates while they keep failing,
// returning the simplest failing value found, its error and the number
// of candidates evaluated.
func shrinkLoop[T any](g Gen[T], prop func(v T) error, v T, err error, budget int) (T, error, int) {
	if g.Shrink == nil {
		return v, err, 0
	}
	cur, curErr := v, err
	tried := 0
	for tried < budget {
		improved := false
		for _, cand := range g.Shrink(cur) {
			if tried >= budget {
				break
			}
			tried++
			if e := safeProp(prop, cand); e != nil {
				cur, curErr = cand, e
				improved = true
				break
			}
		}
		if !improved {
			break
		}
	}
	return cur, curErr, tried
}

// safeProp runs the property, converting a panic into an error so
// shrinking still works on panicking counterexamples.
func safeProp[T any](prop func(v T) error, v T) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("property panicked: %v", r)
		}
	}()
	return prop(v)
}

// capture runs f, converting a panic into an error.
func capture[T any](f func() T) (v T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%v", r)
		}
	}()
	return f(), nil
}

// format renders a counterexample compactly, eliding huge values.
func format(v any) string {
	s := fmt.Sprintf("%+v", v)
	const limit = 600
	if len(s) > limit {
		s = s[:limit] + fmt.Sprintf("... (%d bytes total)", len(s))
	}
	return s
}
