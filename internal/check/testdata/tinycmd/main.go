// Command tinycmd is a minimal binary the cmdtest helper tests compile
// and run: it succeeds with output by default and fails on -fail.
package main

import (
	"fmt"
	"os"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "-fail" {
		fmt.Fprintln(os.Stderr, "tinycmd: forced failure")
		os.Exit(1)
	}
	fmt.Println("tinycmd: ok")
}
