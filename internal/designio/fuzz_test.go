package designio_test

import (
	"bytes"
	"testing"

	"tsteiner/internal/designio"
	"tsteiner/internal/lib"
	"tsteiner/internal/synth"
)

// FuzzLoadDesign feeds arbitrary bytes to the design reader. Contract:
// no panic on any input, and every successfully decoded design must
// pass full structural validation — the loader may reject, but it may
// never emit a malformed netlist into the flow.
func FuzzLoadDesign(f *testing.F) {
	d, err := synth.Generate(synth.Spec{
		Name: "fuzz_seed", Seed: 11, Cells: 40, Endpoints: 8, PIs: 4, Depth: 5, ClockNS: 1.0,
	}, lib.Default())
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := designio.WriteJSON(&buf, d); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:buf.Len()/2])
	f.Add([]byte(`{"Name":"t","ClockNS":1,"Die":[0,0,100,100],` +
		`"Ports":[{"Name":"a","Dir":"in","Pos":{"X":0,"Y":0}},{"Name":"z","Dir":"out","Cap":0.01,"Pos":{"X":90,"Y":90}}],` +
		`"Cells":[{"Name":"u1","Master":"INV_X1","Pos":{"X":50,"Y":50}}],` +
		`"Nets":[{"Driver":"a","Sinks":["u1/A"]},{"Driver":"u1/Y","Sinks":["z"]}]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"Ports":[{"Name":"p","Dir":"sideways"}]}`))
	tech := lib.Default()
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := designio.ReadJSON(bytes.NewReader(data), tech)
		if err != nil {
			return
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("ReadJSON accepted input but produced an invalid design: %v", err)
		}
	})
}
