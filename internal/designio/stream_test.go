package designio

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tsteiner/internal/guard"
	"tsteiner/internal/lib"
	"tsteiner/internal/netlist"
	"tsteiner/internal/place"
	"tsteiner/internal/synth"
)

// tinyDesign is a hand-written minimal file exercising every section.
const tinyDesign = `{
 "Name": "tiny",
 "ClockNS": 1.5,
 "Die": [0, 0, 1000, 1000],
 "Ports": [
  {"Name": "a", "Dir": "in", "Cap": 0, "Pos": {"X": 10, "Y": 20}},
  {"Name": "y", "Dir": "out", "Cap": 0.008, "Pos": {"X": 900, "Y": 900}}
 ],
 "Cells": [
  {"Name": "u0", "Master": "INV_X1", "Pos": {"X": 500, "Y": 500}}
 ],
 "Nets": [
  {"Name": "n0", "Driver": "a", "Sinks": ["u0/A"]},
  {"Name": "n1", "Driver": "u0/Z", "Sinks": ["y"]}
 ]
}`

func roundTripEqual(t *testing.T, data []byte) {
	t.Helper()
	l := lib.Default()
	ds, err := StreamDesign(bytes.NewReader(data), l)
	if err != nil {
		t.Fatalf("StreamDesign: %v", err)
	}
	if err := ds.Validate(); err != nil {
		t.Fatalf("streamed design invalid: %v", err)
	}
	dw, err := ReadJSON(bytes.NewReader(data), l)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	var bs, bw bytes.Buffer
	if err := WriteJSON(&bs, ds); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&bw, dw); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bs.Bytes(), bw.Bytes()) {
		t.Fatal("streamed design differs from whole-file decode")
	}
}

// TestStreamMatchesWholeFile: on every benchmark-shaped design (and a
// scaled one), the streaming loader reconstructs exactly the design the
// whole-file loader does.
func TestStreamMatchesWholeFile(t *testing.T) {
	roundTripEqual(t, []byte(tinyDesign))

	l := lib.Default()
	for _, name := range []string{"spm", "cic_decimator"} {
		spec, err := synth.BenchmarkByName(name)
		if err != nil {
			t.Fatal(err)
		}
		d, err := synth.Generate(spec.Scale(0.2), l)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := place.Place(d, place.DefaultOptions()); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteJSON(&buf, d); err != nil {
			t.Fatal(err)
		}
		roundTripEqual(t, buf.Bytes())
	}

	spec, err := synth.BenchmarkByName("spm")
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := synth.GenerateScaled(spec, 3, l)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, scaled); err != nil {
		t.Fatal(err)
	}
	roundTripEqual(t, buf.Bytes())
}

// TestStreamRejectsOutOfOrder: section orders that would force the
// loader to buffer (Nets ahead of the pins they reference) are rejected
// with a typed *guard.CorruptError, not a misresolve or a panic.
func TestStreamRejectsOutOfOrder(t *testing.T) {
	l := lib.Default()
	cases := []struct{ name, body string }{
		{"nets-before-cells", `{"Name":"x","Nets":[],"Cells":[]}`},
		{"nets-before-ports", `{"Name":"x","Nets":[],"Ports":[]}`},
		{"name-after-cells", `{"Cells":[],"Name":"x"}`},
		{"duplicate-section", `{"Name":"x","Cells":[],"Cells":[]}`},
		{"truncated", tinyDesign[:len(tinyDesign)/2]},
		{"not-an-object", `[1,2,3]`},
		{"empty", ``},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := StreamDesign(strings.NewReader(tc.body), l)
			var ce *guard.CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("want *guard.CorruptError, got %v", err)
			}
		})
	}
}

// TestStreamDesignFile: the file wrapper works and stamps the path into
// corruption errors.
func TestStreamDesignFile(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	if err := os.WriteFile(good, []byte(tinyDesign), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := StreamDesignFile(good, lib.Default())
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "tiny" || len(d.Cells) != 1 || len(d.Nets) != 2 {
		t.Fatalf("unexpected design: %s %d cells %d nets", d.Name, len(d.Cells), len(d.Nets))
	}
	if d.ClockPeriod != 1.5 {
		t.Fatalf("clock %v", d.ClockPeriod)
	}
	if p := d.Cell(netlist.CellID(0)).Pos; p.X != 500 || p.Y != 500 {
		t.Fatalf("cell position not applied: %v", p)
	}

	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(tinyDesign[:40]), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = StreamDesignFile(bad, lib.Default())
	var ce *guard.CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("want *guard.CorruptError, got %v", err)
	}
	if ce.Path != bad {
		t.Fatalf("corrupt error path %q, want %q", ce.Path, bad)
	}
}

// FuzzStreamDesign: arbitrary bytes must never panic the streaming
// loader; on success the design validates and matches the whole-file
// decode byte-for-byte through WriteJSON.
func FuzzStreamDesign(f *testing.F) {
	f.Add([]byte(tinyDesign))
	f.Add([]byte(tinyDesign[:60]))
	f.Add([]byte(`{"Name":"x","Nets":[{"Driver":"nope","Sinks":[]}],"Cells":[]}`))
	f.Add([]byte(`{"Name":"x","Extra":{"deep":[{"a":1}]},"Ports":[],"Cells":[],"Nets":[]}`))
	f.Add([]byte(`{"Cells":[{"Name":"c","Master":"NOSUCH"}]}`))
	f.Add([]byte(`null`))
	l := lib.Default()
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := StreamDesign(bytes.NewReader(data), l)
		if err != nil {
			return // typed rejection is the contract; no panic is the test
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("stream accepted an invalid design: %v", err)
		}
		dw, err := ReadJSON(bytes.NewReader(data), l)
		if err != nil {
			t.Fatalf("stream accepted what ReadJSON rejects: %v", err)
		}
		var bs, bw bytes.Buffer
		if err := WriteJSON(&bs, d); err != nil {
			t.Fatal(err)
		}
		if err := WriteJSON(&bw, dw); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(bs.Bytes(), bw.Bytes()) {
			t.Fatal("streamed design differs from whole-file decode")
		}
	})
}
