package designio

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tsteiner/internal/guard"
	"tsteiner/internal/lib"
	"tsteiner/internal/rsmt"
)

// TestReadJSONRejectsTruncated: truncated design JSON surfaces as a
// *guard.CorruptError, not a partial decode.
func TestReadJSONRejectsTruncated(t *testing.T) {
	l := lib.Default()
	d := placedDesign(t, "spm", 1.0)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, d); err != nil {
		t.Fatal(err)
	}
	full := buf.String()
	for _, cut := range []int{len(full) / 3, len(full) / 2, len(full) - 2} {
		_, err := ReadJSON(strings.NewReader(full[:cut]), l)
		var ce *guard.CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("cut at %d: got %v, want *guard.CorruptError", cut, err)
		}
	}
}

// TestFileRoundTripAtomic: the file-level helpers write atomically and
// reject corruption with the path filled in.
func TestFileRoundTripAtomic(t *testing.T) {
	l := lib.Default()
	d := placedDesign(t, "spm", 1.0)
	dir := t.TempDir()
	dPath := filepath.Join(dir, "design.json")
	if err := WriteJSONFile(dPath, d); err != nil {
		t.Fatal(err)
	}
	d2, err := ReadJSONFile(dPath, l)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Stats() != d.Stats() {
		t.Fatal("design stats lost through file round trip")
	}

	f, err := rsmt.BuildAll(d, rsmt.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	fPath := filepath.Join(dir, "forest.json")
	if err := WriteForestJSONFile(fPath, f); err != nil {
		t.Fatal(err)
	}
	f2, err := ReadForestJSONFile(fPath, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(f2.Trees) != len(f.Trees) {
		t.Fatalf("forest has %d trees, want %d", len(f2.Trees), len(f.Trees))
	}

	// Corrupt both files: loads must fail typed, carrying the path.
	for _, p := range []string{dPath, fPath} {
		data, _ := os.ReadFile(p)
		if err := os.WriteFile(p, data[:len(data)/2], 0o644); err != nil {
			t.Fatal(err)
		}
	}
	_, err = ReadJSONFile(dPath, l)
	var ce *guard.CorruptError
	if !errors.As(err, &ce) || ce.Path != dPath {
		t.Fatalf("design corrupt: got %v, want *guard.CorruptError with path", err)
	}
	_, err = ReadForestJSONFile(fPath, d)
	if !errors.As(err, &ce) || ce.Path != fPath {
		t.Fatalf("forest corrupt: got %v, want *guard.CorruptError with path", err)
	}

	// No temp litter.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 2 {
		t.Fatalf("directory has %d entries, want 2", len(ents))
	}
}
