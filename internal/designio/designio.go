// Package designio serializes designs and Steiner forests: a JSON format
// that round-trips the full design (netlist, placement, constraints) and a
// structural-Verilog writer for interoperability with conventional EDA
// flows. Loading goes through netlist.Builder, so every file is
// re-validated on the way in.
package designio

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"tsteiner/internal/geom"
	"tsteiner/internal/guard"
	"tsteiner/internal/lib"
	"tsteiner/internal/netlist"
	"tsteiner/internal/rsmt"
)

// jsonPoint mirrors geom.Point.
type jsonPoint struct {
	X, Y int
}

// jsonPort is a primary input or output.
type jsonPort struct {
	Name string
	Dir  string // "in" | "out"
	Cap  float64
	Pos  jsonPoint
}

// jsonCell is a placed instance.
type jsonCell struct {
	Name   string
	Master string
	Pos    jsonPoint
}

// jsonNet names its pins: ports by port name, cell pins as "inst/PIN".
type jsonNet struct {
	Name   string
	Driver string
	Sinks  []string
}

// jsonDesign is the on-disk schema.
type jsonDesign struct {
	Name    string
	ClockNS float64
	Die     [4]int // XLo, YLo, XHi, YHi
	Ports   []jsonPort
	Cells   []jsonCell
	Nets    []jsonNet
}

// WriteJSON serializes d.
func WriteJSON(w io.Writer, d *netlist.Design) error {
	out := jsonDesign{
		Name:    d.Name,
		ClockNS: d.ClockPeriod,
		Die:     [4]int{d.Die.XLo, d.Die.YLo, d.Die.XHi, d.Die.YHi},
	}
	for _, pid := range d.PIs {
		p := d.Pin(pid)
		out.Ports = append(out.Ports, jsonPort{Name: p.Name, Dir: "in", Pos: jsonPoint{p.Pos.X, p.Pos.Y}})
	}
	for _, pid := range d.POs {
		p := d.Pin(pid)
		out.Ports = append(out.Ports, jsonPort{Name: p.Name, Dir: "out", Cap: p.Cap, Pos: jsonPoint{p.Pos.X, p.Pos.Y}})
	}
	for ci := range d.Cells {
		inst := d.Cell(netlist.CellID(ci))
		out.Cells = append(out.Cells, jsonCell{
			Name: inst.Name, Master: inst.Master.Name,
			Pos: jsonPoint{inst.Pos.X, inst.Pos.Y},
		})
	}
	for ni := range d.Nets {
		net := d.Net(netlist.NetID(ni))
		jn := jsonNet{Name: net.Name, Driver: pinRef(d, net.Driver)}
		for _, s := range net.Sinks {
			jn.Sinks = append(jn.Sinks, pinRef(d, s))
		}
		out.Nets = append(out.Nets, jn)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// pinRef names a pin for serialization.
func pinRef(d *netlist.Design, pid netlist.PinID) string {
	p := d.Pin(pid)
	if p.IsPort {
		return p.Name
	}
	return d.Cell(p.Cell).Name + "/" + d.MasterPinName(pid)
}

// WriteJSONFile serializes d to path atomically (temp file + rename), so
// a crash mid-write never leaves a truncated design file behind.
func WriteJSONFile(path string, d *netlist.Design) error {
	return guard.AtomicWriteFunc(path, func(w io.Writer) error { return WriteJSON(w, d) })
}

// ReadJSONFile loads a design from path; decode failures carry the path.
func ReadJSONFile(path string, l *lib.Library) (*netlist.Design, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	d, err := ReadJSON(f, l)
	if err != nil {
		if ce, ok := err.(*guard.CorruptError); ok && ce.Path == "" {
			ce.Path = path
		}
		return nil, err
	}
	return d, nil
}

// ReadJSON reconstructs a design against the given library, revalidating
// structure and reapplying placement. Truncated or malformed JSON is
// rejected with a *guard.CorruptError instead of a partial decode.
func ReadJSON(r io.Reader, l *lib.Library) (*netlist.Design, error) {
	var in jsonDesign
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, &guard.CorruptError{Path: "", Reason: "truncated or malformed design JSON", Err: err}
	}
	b := netlist.NewBuilder(in.Name, l)
	if in.ClockNS > 0 {
		b.SetClockPeriod(in.ClockNS)
	}
	b.SetDie(geom.BBox{XLo: in.Die[0], YLo: in.Die[1], XHi: in.Die[2], YHi: in.Die[3]})

	portPins := map[string]netlist.PinID{}
	portPos := map[netlist.PinID]geom.Point{}
	for _, jp := range in.Ports {
		var pid netlist.PinID
		switch jp.Dir {
		case "in":
			pid = b.AddPI(jp.Name)
		case "out":
			pid = b.AddPO(jp.Name, jp.Cap)
		default:
			return nil, fmt.Errorf("designio: port %q has direction %q", jp.Name, jp.Dir)
		}
		portPins[jp.Name] = pid
		portPos[pid] = geom.Point{X: jp.Pos.X, Y: jp.Pos.Y}
	}
	cellIDs := map[string]netlist.CellID{}
	cellPos := map[string]geom.Point{}
	for _, jc := range in.Cells {
		if _, dup := cellIDs[jc.Name]; dup {
			return nil, fmt.Errorf("designio: duplicate cell %q", jc.Name)
		}
		cellIDs[jc.Name] = b.AddCell(jc.Name, jc.Master)
		cellPos[jc.Name] = geom.Point{X: jc.Pos.X, Y: jc.Pos.Y}
	}
	d := b.Design()
	resolve := func(ref string) (netlist.PinID, error) {
		if pid, ok := portPins[ref]; ok {
			return pid, nil
		}
		slash := strings.IndexByte(ref, '/')
		if slash < 0 {
			return 0, fmt.Errorf("designio: unknown pin %q", ref)
		}
		cid, ok := cellIDs[ref[:slash]]
		if !ok {
			return 0, fmt.Errorf("designio: unknown cell in pin %q", ref)
		}
		inst := d.Cell(cid)
		want := ref[slash+1:]
		for i, in := range inst.Master.Inputs {
			if in == want {
				return inst.Pins[i], nil
			}
		}
		if inst.Master.Output == want {
			return inst.OutputPin(), nil
		}
		return 0, fmt.Errorf("designio: cell %q has no pin %q", ref[:slash], want)
	}
	for _, jn := range in.Nets {
		drv, err := resolve(jn.Driver)
		if err != nil {
			return nil, err
		}
		sinks := make([]netlist.PinID, 0, len(jn.Sinks))
		for _, sref := range jn.Sinks {
			s, err := resolve(sref)
			if err != nil {
				return nil, err
			}
			sinks = append(sinks, s)
		}
		b.Connect(drv, sinks...)
	}
	out, err := b.Finish()
	if err != nil {
		return nil, err
	}
	// Reapply placement.
	for name, pos := range cellPos {
		inst := out.Cell(cellIDs[name])
		inst.Pos = pos
		for _, pid := range inst.Pins {
			out.Pin(pid).Pos = pos
		}
	}
	for pid, pos := range portPos {
		out.Pin(pid).Pos = pos
	}
	return out, nil
}

// WriteVerilog emits a structural Verilog view of the design: ports,
// wires, and one instance per cell with named port connections. Net names
// are reused as wire names; the ideal clock is emitted as an input port
// feeding every register CK pin.
func WriteVerilog(w io.Writer, d *netlist.Design) error {
	var b strings.Builder
	fmt.Fprintf(&b, "module %s (\n", sanitize(d.Name))
	var portDecls []string
	for _, pid := range d.PIs {
		portDecls = append(portDecls, "  input "+sanitize(d.Pin(pid).Name))
	}
	hasSeq := false
	for ci := range d.Cells {
		if d.Cells[ci].Master.Sequential {
			hasSeq = true
			break
		}
	}
	if hasSeq {
		portDecls = append(portDecls, "  input clk")
	}
	for _, pid := range d.POs {
		portDecls = append(portDecls, "  output "+sanitize(d.Pin(pid).Name))
	}
	b.WriteString(strings.Join(portDecls, ",\n"))
	b.WriteString("\n);\n\n")

	// Wires: one per net whose driver is a cell output (port-driven nets
	// reuse the port name).
	netName := make([]string, len(d.Nets))
	for ni := range d.Nets {
		net := d.Net(netlist.NetID(ni))
		dp := d.Pin(net.Driver)
		if dp.IsPort {
			netName[ni] = sanitize(dp.Name)
			continue
		}
		netName[ni] = sanitize(net.Name)
		fmt.Fprintf(&b, " wire %s;\n", netName[ni])
	}
	b.WriteString("\n")

	for ci := range d.Cells {
		inst := d.Cell(netlist.CellID(ci))
		var conns []string
		for i, in := range inst.Master.Inputs {
			pid := inst.Pins[i]
			p := d.Pin(pid)
			switch {
			case inst.Master.Sequential && in == "CK":
				conns = append(conns, ".CK(clk)")
			case p.Net == netlist.NoID:
				conns = append(conns, fmt.Sprintf(".%s()", in))
			default:
				conns = append(conns, fmt.Sprintf(".%s(%s)", in, netName[p.Net]))
			}
		}
		out := inst.OutputPin()
		if net := d.Pin(out).Net; net != netlist.NoID {
			conns = append(conns, fmt.Sprintf(".%s(%s)", inst.Master.Output, netName[net]))
		} else {
			conns = append(conns, fmt.Sprintf(".%s()", inst.Master.Output))
		}
		fmt.Fprintf(&b, " %s %s (%s);\n", inst.Master.Name, sanitize(inst.Name), strings.Join(conns, ", "))
	}

	// Output assignments: PO sinks read their driving net.
	b.WriteString("\n")
	for _, pid := range d.POs {
		p := d.Pin(pid)
		if p.Net != netlist.NoID {
			fmt.Fprintf(&b, " assign %s = %s;\n", sanitize(p.Name), netName[p.Net])
		}
	}
	b.WriteString("endmodule\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func sanitize(name string) string {
	return strings.NewReplacer("/", "_", ".", "_", "-", "_", "[", "_", "]", "_").Replace(name)
}

// jsonForestNode / jsonForestTree form the forest schema.
type jsonForestNode struct {
	Kind int // 0 pin, 1 steiner
	Pin  int32
	X, Y float64
}

type jsonForestTree struct {
	Net   int32
	Nodes []jsonForestNode
	Edges [][2]int32
}

type jsonForest struct {
	Trees []jsonForestTree
}

// WriteForestJSONFile serializes a forest to path atomically.
func WriteForestJSONFile(path string, f *rsmt.Forest) error {
	return guard.AtomicWriteFunc(path, func(w io.Writer) error { return WriteForestJSON(w, f) })
}

// ReadForestJSONFile loads a forest from path; decode failures carry the
// path.
func ReadForestJSONFile(path string, d *netlist.Design) (*rsmt.Forest, error) {
	r, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	f, err := ReadForestJSON(r, d)
	if err != nil {
		if ce, ok := err.(*guard.CorruptError); ok && ce.Path == "" {
			ce.Path = path
		}
		return nil, err
	}
	return f, nil
}

// WriteForestJSON serializes a Steiner forest (checkpointing refined
// solutions).
func WriteForestJSON(w io.Writer, f *rsmt.Forest) error {
	out := jsonForest{}
	for _, tr := range f.Trees {
		jt := jsonForestTree{Net: int32(tr.Net)}
		for _, n := range tr.Nodes {
			jn := jsonForestNode{Pin: int32(n.Pin), X: n.Pos.X, Y: n.Pos.Y}
			if n.Kind == rsmt.SteinerNode {
				jn.Kind = 1
				jn.Pin = -1
			}
			jt.Nodes = append(jt.Nodes, jn)
		}
		for _, e := range tr.Edges {
			jt.Edges = append(jt.Edges, [2]int32{e.A, e.B})
		}
		out.Trees = append(out.Trees, jt)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// ReadForestJSON loads a forest and validates it against the design.
// Truncated or malformed JSON is rejected with a *guard.CorruptError.
func ReadForestJSON(r io.Reader, d *netlist.Design) (*rsmt.Forest, error) {
	var in jsonForest
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, &guard.CorruptError{Path: "", Reason: "truncated or malformed forest JSON", Err: err}
	}
	f := &rsmt.Forest{}
	for _, jt := range in.Trees {
		tr := &rsmt.Tree{Net: netlist.NetID(jt.Net)}
		for _, jn := range jt.Nodes {
			n := rsmt.Node{Pos: geom.FPoint{X: jn.X, Y: jn.Y}}
			if jn.Kind == 1 {
				n.Kind = rsmt.SteinerNode
			} else {
				n.Kind = rsmt.PinNode
				n.Pin = netlist.PinID(jn.Pin)
			}
			tr.Nodes = append(tr.Nodes, n)
		}
		for _, e := range jt.Edges {
			tr.Edges = append(tr.Edges, rsmt.Edge{A: e[0], B: e[1]})
		}
		f.Trees = append(f.Trees, tr)
	}
	// Trees must arrive in net order for the forest invariants.
	sort.Slice(f.Trees, func(i, j int) bool { return f.Trees[i].Net < f.Trees[j].Net })
	if err := f.Validate(d); err != nil {
		return nil, err
	}
	return f, nil
}
