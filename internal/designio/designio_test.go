package designio

import (
	"bytes"
	"strings"
	"testing"

	"tsteiner/internal/lib"
	"tsteiner/internal/netlist"
	"tsteiner/internal/place"
	"tsteiner/internal/rsmt"
	"tsteiner/internal/synth"
)

func placedDesign(t *testing.T, name string, scale float64) *netlist.Design {
	t.Helper()
	spec, err := synth.BenchmarkByName(name)
	if err != nil {
		t.Fatal(err)
	}
	d, err := synth.Generate(spec.Scale(scale), lib.Default())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := place.Place(d, place.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestJSONRoundTrip(t *testing.T) {
	l := lib.Default()
	d := placedDesign(t, "spm", 1.0)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, d); err != nil {
		t.Fatal(err)
	}
	d2, err := ReadJSON(&buf, l)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Name != d.Name || d2.ClockPeriod != d.ClockPeriod || d2.Die != d.Die {
		t.Fatal("header fields lost")
	}
	if len(d2.Cells) != len(d.Cells) || len(d2.Nets) != len(d.Nets) || len(d2.Pins) != len(d.Pins) {
		t.Fatalf("sizes differ: %d/%d cells, %d/%d nets, %d/%d pins",
			len(d2.Cells), len(d.Cells), len(d2.Nets), len(d.Nets), len(d2.Pins), len(d.Pins))
	}
	// Structure: same stats; placement preserved per cell name.
	if d.Stats() != d2.Stats() {
		t.Fatalf("stats differ: %+v vs %+v", d.Stats(), d2.Stats())
	}
	pos := map[string][2]int{}
	for ci := range d.Cells {
		pos[d.Cells[ci].Name] = [2]int{d.Cells[ci].Pos.X, d.Cells[ci].Pos.Y}
	}
	for ci := range d2.Cells {
		want := pos[d2.Cells[ci].Name]
		if d2.Cells[ci].Pos.X != want[0] || d2.Cells[ci].Pos.Y != want[1] {
			t.Fatalf("cell %s placement lost", d2.Cells[ci].Name)
		}
	}
	if err := d2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReadJSONErrors(t *testing.T) {
	l := lib.Default()
	cases := []string{
		`not json`,
		`{"Name":"x","Ports":[{"Name":"p","Dir":"sideways"}]}`,
		`{"Name":"x","Cells":[{"Name":"u1","Master":"INV_X1"},{"Name":"u1","Master":"INV_X1"}]}`,
		`{"Name":"x","Nets":[{"Name":"n","Driver":"ghost","Sinks":["gone"]}]}`,
		`{"Name":"x","Cells":[{"Name":"u1","Master":"INV_X1"}],"Nets":[{"Name":"n","Driver":"u1/NOPE","Sinks":[]}]}`,
	}
	for i, c := range cases {
		if _, err := ReadJSON(strings.NewReader(c), l); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestWriteVerilog(t *testing.T) {
	d := placedDesign(t, "spm", 1.0)
	var buf bytes.Buffer
	if err := WriteVerilog(&buf, d); err != nil {
		t.Fatal(err)
	}
	v := buf.String()
	if !strings.HasPrefix(v, "module spm (") {
		t.Fatalf("missing module header:\n%.120s", v)
	}
	if !strings.Contains(v, "endmodule") {
		t.Fatal("missing endmodule")
	}
	if !strings.Contains(v, "input clk") {
		t.Fatal("sequential design must expose clk port")
	}
	if !strings.Contains(v, ".CK(clk)") {
		t.Fatal("register clock pins must connect to clk")
	}
	// Every cell instantiated once.
	for ci := range d.Cells {
		name := d.Cells[ci].Name
		if !strings.Contains(v, " "+name+" (") {
			t.Fatalf("instance %s missing", name)
		}
	}
	// Output assigns exist.
	if !strings.Contains(v, "assign ") {
		t.Fatal("missing output assigns")
	}
}

func TestWriteVerilogCombinationalOnly(t *testing.T) {
	l := lib.Default()
	b := netlist.NewBuilder("comb", l)
	pi := b.AddPI("a")
	inv := b.AddCell("u1", "INV_X1")
	po := b.AddPO("z", 0.01)
	d0 := b.Design()
	b.Connect(pi, d0.Cell(inv).InputPins()[0])
	b.Connect(d0.Cell(inv).OutputPin(), po)
	d, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteVerilog(&buf, d); err != nil {
		t.Fatal(err)
	}
	v := buf.String()
	if strings.Contains(v, "input clk") {
		t.Fatal("register-free design must not expose clk")
	}
	if !strings.Contains(v, "INV_X1 u1 (") {
		t.Fatalf("instance missing:\n%s", v)
	}
}

func TestForestRoundTrip(t *testing.T) {
	d := placedDesign(t, "spm", 1.0)
	f, err := rsmt.BuildAll(d, rsmt.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Nudge some Steiner positions so we test non-integer round trips.
	xs, ys, idx := f.SteinerPositions()
	for i := range xs {
		xs[i] += 0.25
		ys[i] -= 0.75
	}
	if err := f.SetSteinerPositions(xs, ys, idx, d.Die); err != nil {
		t.Fatal(err)
	}
	// Clamping may have altered edge positions; compare against what the
	// forest actually holds.
	xs, ys, _ = f.SteinerPositions()

	var buf bytes.Buffer
	if err := WriteForestJSON(&buf, f); err != nil {
		t.Fatal(err)
	}
	f2, err := ReadForestJSON(&buf, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(f2.Trees) != len(f.Trees) {
		t.Fatal("tree count lost")
	}
	xs2, ys2, _ := f2.SteinerPositions()
	for i := range xs {
		if xs[i] != xs2[i] || ys[i] != ys2[i] {
			t.Fatalf("position %d lost in round trip", i)
		}
	}
}

func TestReadForestJSONRejectsForeign(t *testing.T) {
	d := placedDesign(t, "spm", 1.0)
	other := placedDesign(t, "cic_decimator", 1.0)
	f, err := rsmt.BuildAll(other, rsmt.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteForestJSON(&buf, f); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadForestJSON(&buf, d); err == nil {
		t.Fatal("foreign forest accepted")
	}
	if _, err := ReadForestJSON(strings.NewReader("nope"), d); err == nil {
		t.Fatal("garbage accepted")
	}
}
