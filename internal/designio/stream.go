package designio

// Streaming design loader: token-wise decoding of the same JSON schema
// WriteJSON emits, feeding netlist.Builder element by element. Unlike
// ReadJSON, the file's port/cell/net arrays are never materialized as a
// decoded DOM — peak memory is the design under construction plus one
// element — which is what makes 100× scaled designs loadable without
// holding the netlist twice. The price is a canonical section order
// (Name before the element sections, Ports and Cells before Nets —
// exactly the order WriteJSON produces); files that violate it are
// rejected with a typed *guard.CorruptError rather than silently
// mis-resolving pins.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"tsteiner/internal/geom"
	"tsteiner/internal/guard"
	"tsteiner/internal/lib"
	"tsteiner/internal/netlist"
)

// corrupt wraps a decode failure the way ReadJSON does.
func corrupt(reason string, err error) error {
	return &guard.CorruptError{Reason: reason, Err: err}
}

// streamState carries the builder plus the name→ID maps the Nets
// section needs for pin resolution.
type streamState struct {
	b        *netlist.Builder
	d        *netlist.Design
	portPins map[string]netlist.PinID
	portPos  map[netlist.PinID]geom.Point
	cellIDs  map[string]netlist.CellID
	cellPos  map[string]geom.Point
}

// StreamDesignFile streams a design from path; decode failures carry
// the path.
func StreamDesignFile(path string, l *lib.Library) (*netlist.Design, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	d, err := StreamDesign(f, l)
	if err != nil {
		if ce, ok := err.(*guard.CorruptError); ok && ce.Path == "" {
			ce.Path = path
		}
		return nil, err
	}
	return d, nil
}

// StreamDesign reconstructs a design from r without decoding the whole
// file at once. The result is identical to ReadJSON on the same bytes;
// every file StreamDesign accepts, ReadJSON also accepts.
func StreamDesign(r io.Reader, l *lib.Library) (*netlist.Design, error) {
	dec := json.NewDecoder(r)
	if err := expectDelim(dec, '{'); err != nil {
		return nil, err
	}
	st := &streamState{
		portPins: map[string]netlist.PinID{},
		portPos:  map[netlist.PinID]geom.Point{},
		cellIDs:  map[string]netlist.CellID{},
		cellPos:  map[string]geom.Point{},
	}
	name := ""
	clockNS := 0.0
	var die [4]int
	seen := map[string]bool{}
	for dec.More() {
		tok, err := dec.Token()
		if err != nil {
			return nil, corrupt("truncated or malformed design JSON", err)
		}
		key, ok := tok.(string)
		if !ok {
			return nil, corrupt("truncated or malformed design JSON", fmt.Errorf("designio: non-string object key %v", tok))
		}
		// encoding/json matches struct fields case-insensitively, so the
		// streaming loader must too — otherwise it would skip a section
		// ReadJSON consumes and the two decodes would diverge.
		for _, canon := range [...]string{"Name", "ClockNS", "Die", "Ports", "Cells", "Nets"} {
			if strings.EqualFold(key, canon) {
				key = canon
				break
			}
		}
		switch key {
		case "Name", "ClockNS", "Die", "Ports", "Cells", "Nets":
			if seen[key] {
				return nil, corrupt(fmt.Sprintf("duplicate %q section", key), nil)
			}
			seen[key] = true
		}
		switch key {
		case "Name":
			if st.b != nil {
				return nil, corrupt("Name section after element sections", nil)
			}
			if err := dec.Decode(&name); err != nil {
				return nil, corrupt("truncated or malformed design JSON", err)
			}
		case "ClockNS":
			if err := dec.Decode(&clockNS); err != nil {
				return nil, corrupt("truncated or malformed design JSON", err)
			}
		case "Die":
			if err := dec.Decode(&die); err != nil {
				return nil, corrupt("truncated or malformed design JSON", err)
			}
		case "Ports":
			if seen["Nets"] {
				return nil, corrupt("Ports section after Nets", nil)
			}
			st.ensureBuilder(name, l)
			if err := streamPorts(dec, st); err != nil {
				return nil, err
			}
		case "Cells":
			if seen["Nets"] {
				return nil, corrupt("Cells section after Nets", nil)
			}
			st.ensureBuilder(name, l)
			if err := streamCells(dec, st); err != nil {
				return nil, err
			}
		case "Nets":
			st.ensureBuilder(name, l)
			if err := streamNets(dec, st); err != nil {
				return nil, err
			}
		default:
			if err := skipValue(dec); err != nil {
				return nil, corrupt("truncated or malformed design JSON", err)
			}
		}
	}
	if err := expectDelim(dec, '}'); err != nil {
		return nil, err
	}
	st.ensureBuilder(name, l)
	if clockNS > 0 {
		st.b.SetClockPeriod(clockNS)
	}
	st.b.SetDie(geom.BBox{XLo: die[0], YLo: die[1], XHi: die[2], YHi: die[3]})
	out, err := st.b.Finish()
	if err != nil {
		return nil, err
	}
	// Reapply placement, exactly as ReadJSON does.
	for name, pos := range st.cellPos {
		inst := out.Cell(st.cellIDs[name])
		inst.Pos = pos
		for _, pid := range inst.Pins {
			out.Pin(pid).Pos = pos
		}
	}
	for pid, pos := range st.portPos {
		out.Pin(pid).Pos = pos
	}
	return out, nil
}

func (st *streamState) ensureBuilder(name string, l *lib.Library) {
	if st.b == nil {
		st.b = netlist.NewBuilder(name, l)
	}
}

func streamPorts(dec *json.Decoder, st *streamState) error {
	return streamArray(dec, func() error {
		var jp jsonPort
		if err := dec.Decode(&jp); err != nil {
			return corrupt("truncated or malformed design JSON", err)
		}
		var pid netlist.PinID
		switch jp.Dir {
		case "in":
			pid = st.b.AddPI(jp.Name)
		case "out":
			pid = st.b.AddPO(jp.Name, jp.Cap)
		default:
			return fmt.Errorf("designio: port %q has direction %q", jp.Name, jp.Dir)
		}
		st.portPins[jp.Name] = pid
		st.portPos[pid] = geom.Point{X: jp.Pos.X, Y: jp.Pos.Y}
		return nil
	})
}

func streamCells(dec *json.Decoder, st *streamState) error {
	return streamArray(dec, func() error {
		var jc jsonCell
		if err := dec.Decode(&jc); err != nil {
			return corrupt("truncated or malformed design JSON", err)
		}
		if _, dup := st.cellIDs[jc.Name]; dup {
			return fmt.Errorf("designio: duplicate cell %q", jc.Name)
		}
		st.cellIDs[jc.Name] = st.b.AddCell(jc.Name, jc.Master)
		st.cellPos[jc.Name] = geom.Point{X: jc.Pos.X, Y: jc.Pos.Y}
		return nil
	})
}

func streamNets(dec *json.Decoder, st *streamState) error {
	// Pin resolution needs every port and cell to exist already; a file
	// with Nets ahead of Ports/Cells cannot be streamed in one pass.
	st.d = st.b.Design()
	return streamArray(dec, func() error {
		var jn jsonNet
		if err := dec.Decode(&jn); err != nil {
			return corrupt("truncated or malformed design JSON", err)
		}
		drv, err := st.resolve(jn.Driver)
		if err != nil {
			return err
		}
		sinks := make([]netlist.PinID, 0, len(jn.Sinks))
		for _, sref := range jn.Sinks {
			s, err := st.resolve(sref)
			if err != nil {
				return err
			}
			sinks = append(sinks, s)
		}
		st.b.Connect(drv, sinks...)
		return nil
	})
}

// resolve mirrors ReadJSON's pin-reference resolution: a bare name is a
// port, "inst/PIN" is a cell pin.
func (st *streamState) resolve(ref string) (netlist.PinID, error) {
	if pid, ok := st.portPins[ref]; ok {
		return pid, nil
	}
	slash := strings.IndexByte(ref, '/')
	if slash < 0 {
		return 0, fmt.Errorf("designio: unknown pin %q", ref)
	}
	cid, ok := st.cellIDs[ref[:slash]]
	if !ok {
		return 0, fmt.Errorf("designio: unknown cell in pin %q", ref)
	}
	inst := st.d.Cell(cid)
	if inst.Master == nil {
		return 0, fmt.Errorf("designio: cell %q has no master", ref[:slash])
	}
	want := ref[slash+1:]
	for i, in := range inst.Master.Inputs {
		if in == want {
			return inst.Pins[i], nil
		}
	}
	if inst.Master.Output == want {
		return inst.OutputPin(), nil
	}
	return 0, fmt.Errorf("designio: cell %q has no pin %q", ref[:slash], want)
}

// streamArray consumes a JSON array, invoking el once per element.
func streamArray(dec *json.Decoder, el func() error) error {
	if err := expectDelim(dec, '['); err != nil {
		return err
	}
	for dec.More() {
		if err := el(); err != nil {
			return err
		}
	}
	return expectDelim(dec, ']')
}

// expectDelim consumes one token and requires it to be the delimiter.
func expectDelim(dec *json.Decoder, want json.Delim) error {
	tok, err := dec.Token()
	if err != nil {
		return corrupt("truncated or malformed design JSON", err)
	}
	if d, ok := tok.(json.Delim); !ok || d != want {
		return corrupt("truncated or malformed design JSON", fmt.Errorf("designio: expected %q, got %v", want, tok))
	}
	return nil
}

// skipValue discards the next JSON value (scalar, object or array).
func skipValue(dec *json.Decoder) error {
	tok, err := dec.Token()
	if err != nil {
		return err
	}
	d, ok := tok.(json.Delim)
	if !ok || (d != '{' && d != '[') {
		return nil
	}
	depth := 1
	for depth > 0 {
		tok, err := dec.Token()
		if err != nil {
			return err
		}
		if d, ok := tok.(json.Delim); ok {
			switch d {
			case '{', '[':
				depth++
			case '}', ']':
				depth--
			}
		}
	}
	return nil
}
