// Package exp implements the paper's experiments end to end: each table
// and figure of the evaluation section is a method on a Suite that lazily
// builds and caches the expensive shared state (baseline flow runs, the
// trained evaluator) so one process can regenerate everything.
package exp

import (
	"fmt"
	"math/rand"
	"sort"

	"tsteiner/internal/core"
	"tsteiner/internal/flow"
	"tsteiner/internal/gnn"
	"tsteiner/internal/metrics"
	"tsteiner/internal/rsmt"
	"tsteiner/internal/synth"
	"tsteiner/internal/train"
)

// Config parameterizes a full experiment run.
type Config struct {
	// Scale shrinks every benchmark (1.0 = the paper's sizes).
	Scale float64
	// Designs restricts the benchmark set (nil = all ten).
	Designs []string
	Flow    flow.Config
	GNN     gnn.Config
	Train   train.Options
	Refine  core.Options
	// AugmentVariants perturbed copies per training design teach the
	// evaluator the position→timing derivative.
	AugmentVariants int
	AugmentDist     float64
	// RandomTrials per design for the Fig. 2 / Fig. 5 random-move
	// experiments (the paper uses 10–50); LargeDesignTrials bounds the
	// two biggest designs.
	RandomTrials      int
	LargeDesignTrials int
	Seed              int64
	// Log receives progress lines (nil = silent).
	Log func(format string, args ...any)
}

// Default returns the full-scale configuration.
func Default() Config {
	return Config{
		Scale:             1.0,
		Flow:              flow.DefaultConfig(),
		GNN:               gnn.DefaultConfig(),
		Train:             train.DefaultOptions(),
		Refine:            core.DefaultOptions(),
		AugmentVariants:   2,
		AugmentDist:       10,
		RandomTrials:      10,
		LargeDesignTrials: 3,
		Seed:              2023,
	}
}

// Suite caches shared experiment state.
type Suite struct {
	cfg     Config
	specs   []synth.Spec
	samples map[string]*train.Sample
	model   *gnn.Model
	// tsRuns caches per-design TSteiner outcomes (shared by Tables II/IV
	// and Fig. 5).
	tsRuns map[string]*tsRun
	// randomRuns caches RandomMoves trials keyed by design and trial
	// count (shared by Fig. 2 and Fig. 5).
	randomRuns map[string]*randomRun
}

type randomRun struct {
	wns, tns []float64
}

type tsRun struct {
	refine *core.Result
	report *flow.Report
}

// NewSuite validates the config and resolves the benchmark list.
func NewSuite(cfg Config) (*Suite, error) {
	if cfg.Scale <= 0 || cfg.Scale > 1 {
		return nil, fmt.Errorf("exp: scale %g out of (0,1]", cfg.Scale)
	}
	all := synth.Benchmarks()
	var specs []synth.Spec
	if len(cfg.Designs) == 0 {
		specs = all
	} else {
		for _, want := range cfg.Designs {
			s, err := synth.BenchmarkByName(want)
			if err != nil {
				return nil, err
			}
			specs = append(specs, s)
		}
	}
	return &Suite{
		cfg:        cfg,
		specs:      specs,
		samples:    map[string]*train.Sample{},
		tsRuns:     map[string]*tsRun{},
		randomRuns: map[string]*randomRun{},
	}, nil
}

func (s *Suite) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		s.cfg.Log(format, args...)
	}
}

// Specs returns the active benchmark list.
func (s *Suite) Specs() []synth.Spec { return s.specs }

// Sample lazily builds the baseline flow record of one design.
func (s *Suite) Sample(name string) (*train.Sample, error) {
	if got, ok := s.samples[name]; ok {
		return got, nil
	}
	spec, err := synth.BenchmarkByName(name)
	if err != nil {
		return nil, err
	}
	s.logf("building baseline sample %s (scale %.2f)", name, s.cfg.Scale)
	smp, err := train.BuildSample(name, s.cfg.Scale, spec.Train, s.cfg.Flow)
	if err != nil {
		return nil, err
	}
	s.samples[name] = smp
	return smp, nil
}

// Model lazily trains the evaluator on the training split (plus perturbed
// augmentation variants).
func (s *Suite) Model() (*gnn.Model, error) {
	if s.model != nil {
		return s.model, nil
	}
	var all []*train.Sample
	for _, spec := range s.specs {
		smp, err := s.Sample(spec.Name)
		if err != nil {
			return nil, err
		}
		all = append(all, smp)
		if spec.Train && s.cfg.AugmentVariants > 0 {
			s.logf("augmenting %s with %d perturbed variants", spec.Name, s.cfg.AugmentVariants)
			aug, err := train.Augment(smp, s.cfg.AugmentVariants, s.cfg.AugmentDist, s.cfg.Seed+int64(len(all)))
			if err != nil {
				return nil, err
			}
			all = append(all, aug...)
		}
	}
	m := gnn.NewModel(s.cfg.GNN, s.cfg.Seed)
	opt := s.cfg.Train
	if opt.Verbose == nil && s.cfg.Log != nil {
		opt.Verbose = func(ep int, loss float64) {
			if ep%10 == 0 {
				s.logf("train epoch %d loss %.5f", ep, loss)
			}
		}
	}
	s.logf("training evaluator on %d samples", len(all))
	if _, err := train.Train(m, all, opt); err != nil {
		return nil, err
	}
	s.model = m
	return m, nil
}

// TSteiner lazily runs refinement + sign-off for one design.
func (s *Suite) TSteiner(name string) (*core.Result, *flow.Report, error) {
	if got, ok := s.tsRuns[name]; ok {
		return got.refine, got.report, nil
	}
	smp, err := s.Sample(name)
	if err != nil {
		return nil, nil, err
	}
	m, err := s.Model()
	if err != nil {
		return nil, nil, err
	}
	s.logf("refining %s", name)
	ref, err := core.NewRefiner(m, smp.Batch, smp.Prepared, s.cfg.Refine)
	if err != nil {
		return nil, nil, err
	}
	res, err := ref.Refine()
	if err != nil {
		return nil, nil, err
	}
	rep, err := flow.Signoff(smp.Prepared, res.Forest)
	if err != nil {
		return nil, nil, err
	}
	rep.TSteinerSec = res.RuntimeSec
	s.tsRuns[name] = &tsRun{refine: res, report: rep}
	return res, rep, nil
}

// randomTrials returns the trial count for a design (bounded for the two
// largest benchmarks).
func (s *Suite) randomTrials(spec synth.Spec) int {
	if spec.Cells >= 40000 && s.cfg.LargeDesignTrials > 0 {
		return s.cfg.LargeDesignTrials
	}
	return s.cfg.RandomTrials
}

// RandomMoves runs k random-disturbance sign-off trials for one design and
// returns the WNS and TNS ratios to the baseline (Fig. 2 / Fig. 5 data).
func (s *Suite) RandomMoves(name string, k int) (wnsRatios, tnsRatios []float64, err error) {
	key := fmt.Sprintf("%s/%d", name, k)
	if got, ok := s.randomRuns[key]; ok {
		return got.wns, got.tns, nil
	}
	smp, err := s.Sample(name)
	if err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(s.cfg.Seed + int64(len(name))))
	for trial := 0; trial < k; trial++ {
		f := smp.Prepared.Forest.Clone()
		rsmt.Perturb(f, rng, s.cfg.AugmentDist, smp.Prepared.Design.Die)
		rep, err := flow.Signoff(smp.Prepared, f)
		if err != nil {
			return nil, nil, err
		}
		wnsRatios = append(wnsRatios, metrics.Ratio(rep.WNS, smp.Baseline.WNS))
		tnsRatios = append(tnsRatios, metrics.Ratio(rep.TNS, smp.Baseline.TNS))
	}
	s.randomRuns[key] = &randomRun{wns: wnsRatios, tns: tnsRatios}
	return wnsRatios, tnsRatios, nil
}

// sortedNames returns the suite's design names, training split first (the
// paper's table order).
func (s *Suite) sortedNames() []string {
	specs := append([]synth.Spec(nil), s.specs...)
	sort.SliceStable(specs, func(i, j int) bool {
		if specs[i].Train != specs[j].Train {
			return specs[i].Train
		}
		return false // keep canonical order within each split
	})
	names := make([]string, len(specs))
	for i, sp := range specs {
		names[i] = sp.Name
	}
	return names
}
