// Package exp implements the paper's experiments end to end: each table
// and figure of the evaluation section is a method on a Suite that lazily
// builds and caches the expensive shared state (baseline flow runs, the
// trained evaluator) so one process can regenerate everything.
package exp

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"

	"tsteiner/internal/core"
	"tsteiner/internal/flow"
	"tsteiner/internal/gnn"
	"tsteiner/internal/metrics"
	"tsteiner/internal/obs"
	"tsteiner/internal/par"
	"tsteiner/internal/rsmt"
	"tsteiner/internal/synth"
	"tsteiner/internal/train"
)

// Config parameterizes a full experiment run.
type Config struct {
	// Scale shrinks every benchmark (1.0 = the paper's sizes).
	Scale float64
	// Designs restricts the benchmark set (nil = all ten).
	Designs []string
	Flow    flow.Config
	GNN     gnn.Config
	Train   train.Options
	Refine  core.Options
	// AugmentVariants perturbed copies per training design teach the
	// evaluator the position→timing derivative.
	AugmentVariants int
	AugmentDist     float64
	// RandomTrials per design for the Fig. 2 / Fig. 5 random-move
	// experiments (the paper uses 10–50); LargeDesignTrials bounds the
	// two biggest designs.
	RandomTrials      int
	LargeDesignTrials int
	Seed              int64
	// Workers bounds the goroutines used by the parallel stages (baseline
	// flow runs, augmentation labeling, random-move trials, per-design
	// TSteiner runs); 0 = GOMAXPROCS, 1 = serial. Every table and figure
	// is byte-identical for every worker count — Workers only changes the
	// wall clock.
	Workers int
	// Log receives progress lines (nil = silent).
	Log func(format string, args ...any)
	// Obs receives phase spans, refinement/training traces and worker
	// utilization for every experiment (nil = telemetry off). Propagated
	// into Flow.Obs and Train.Obs unless those are already set. A strict
	// side channel: tables and figures are byte-identical either way.
	Obs *obs.Sink
	// CheckpointDir, when non-empty, makes the suite write CRC-checksummed
	// checkpoints: one for evaluator training, one per design for the
	// TSteiner refinement runs. With Resume set, valid checkpoints found
	// there are restored — the suite's tables stay byte-identical to an
	// uninterrupted run.
	CheckpointDir string
	Resume        bool
}

// Default returns the full-scale configuration.
func Default() Config {
	return Config{
		Scale:             1.0,
		Flow:              flow.DefaultConfig(),
		GNN:               gnn.DefaultConfig(),
		Train:             train.DefaultOptions(),
		Refine:            core.DefaultOptions(),
		AugmentVariants:   2,
		AugmentDist:       10,
		RandomTrials:      10,
		LargeDesignTrials: 3,
		Seed:              2023,
	}
}

// Suite caches shared experiment state.
type Suite struct {
	cfg     Config
	specs   []synth.Spec
	samples map[string]*train.Sample
	model   *gnn.Model
	// tsRuns caches per-design TSteiner outcomes (shared by Tables II/IV
	// and Fig. 5).
	tsRuns map[string]*tsRun
	// randomRuns caches RandomMoves trials keyed by design and trial
	// count (shared by Fig. 2 and Fig. 5).
	randomRuns map[string]*randomRun
}

type randomRun struct {
	wns, tns []float64
}

type tsRun struct {
	refine *core.Result
	report *flow.Report
}

// NewSuite validates the config and resolves the benchmark list.
func NewSuite(cfg Config) (*Suite, error) {
	if cfg.Scale <= 0 || cfg.Scale > 1 {
		return nil, fmt.Errorf("exp: scale %g out of (0,1]", cfg.Scale)
	}
	if cfg.Flow.Workers == 0 {
		cfg.Flow.Workers = cfg.Workers
	}
	if cfg.Train.Workers == 0 {
		cfg.Train.Workers = cfg.Workers
	}
	if cfg.Flow.Obs == nil {
		cfg.Flow.Obs = cfg.Obs
	}
	if cfg.Train.Obs == nil {
		cfg.Train.Obs = cfg.Obs
	}
	if cfg.CheckpointDir != "" && cfg.Train.CheckpointPath == "" {
		cfg.Train.CheckpointPath = filepath.Join(cfg.CheckpointDir, "train.ckpt")
		cfg.Train.Resume = cfg.Resume
	}
	all := synth.Benchmarks()
	var specs []synth.Spec
	if len(cfg.Designs) == 0 {
		specs = all
	} else {
		for _, want := range cfg.Designs {
			s, err := synth.BenchmarkByName(want)
			if err != nil {
				return nil, err
			}
			specs = append(specs, s)
		}
	}
	return &Suite{
		cfg:        cfg,
		specs:      specs,
		samples:    map[string]*train.Sample{},
		tsRuns:     map[string]*tsRun{},
		randomRuns: map[string]*randomRun{},
	}, nil
}

func (s *Suite) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		s.cfg.Log(format, args...)
	}
}

// Specs returns the active benchmark list.
func (s *Suite) Specs() []synth.Spec { return s.specs }

// Sample lazily builds the baseline flow record of one design.
func (s *Suite) Sample(name string) (*train.Sample, error) {
	if got, ok := s.samples[name]; ok {
		return got, nil
	}
	spec, err := synth.BenchmarkByName(name)
	if err != nil {
		return nil, err
	}
	s.logf("building baseline sample %s (scale %.2f)", name, s.cfg.Scale)
	smp, err := train.BuildSample(name, s.cfg.Scale, spec.Train, s.cfg.Flow)
	if err != nil {
		return nil, err
	}
	s.samples[name] = smp
	return smp, nil
}

// BuildSamples builds the baseline flow records of the named designs on
// s.cfg.Workers goroutines (each design's flow run is independent, so the
// records are byte-identical for any worker count). Parallel tasks only
// compute; the cache writes happen serially afterwards.
func (s *Suite) BuildSamples(names []string) error {
	var missing []string
	for _, n := range names {
		if _, ok := s.samples[n]; !ok {
			missing = append(missing, n)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	s.logf("building %d baseline samples on %d workers", len(missing), par.Workers(s.cfg.Workers))
	built, err := par.Map(s.cfg.Workers, missing, func(_ int, name string) (*train.Sample, error) {
		spec, err := synth.BenchmarkByName(name)
		if err != nil {
			return nil, err
		}
		return train.BuildSample(name, s.cfg.Scale, spec.Train, s.cfg.Flow)
	})
	if err != nil {
		return err
	}
	for i, name := range missing {
		s.samples[name] = built[i]
	}
	return nil
}

// Model lazily trains the evaluator on the training split (plus perturbed
// augmentation variants).
func (s *Suite) Model() (*gnn.Model, error) {
	if s.model != nil {
		return s.model, nil
	}
	names := make([]string, len(s.specs))
	for i, spec := range s.specs {
		names[i] = spec.Name
	}
	if err := s.BuildSamples(names); err != nil {
		return nil, err
	}
	var all []*train.Sample
	for _, spec := range s.specs {
		smp, err := s.Sample(spec.Name)
		if err != nil {
			return nil, err
		}
		all = append(all, smp)
		if spec.Train && s.cfg.AugmentVariants > 0 {
			s.logf("augmenting %s with %d perturbed variants", spec.Name, s.cfg.AugmentVariants)
			aug, err := train.Augment(smp, s.cfg.AugmentVariants, s.cfg.AugmentDist, s.cfg.Seed+int64(len(all)), s.cfg.Workers)
			if err != nil {
				return nil, err
			}
			all = append(all, aug...)
		}
	}
	m := gnn.NewModel(s.cfg.GNN, s.cfg.Seed)
	opt := s.cfg.Train
	if opt.Verbose == nil && s.cfg.Log != nil {
		opt.Verbose = func(ep int, loss float64) {
			if ep%10 == 0 {
				s.logf("train epoch %d loss %.5f", ep, loss)
			}
		}
	}
	s.logf("training evaluator on %d samples", len(all))
	if _, err := train.Train(m, all, opt); err != nil {
		return nil, err
	}
	s.model = m
	return m, nil
}

// runTSteiner executes refinement + sign-off for one prepared sample using
// the given model. The model is used read-only in value terms, but Forward
// re-tapes its parameter tensors — concurrent callers must pass their own
// gnn.Model clone.
func (s *Suite) runTSteiner(smp *train.Sample, m *gnn.Model) (*tsRun, error) {
	opt := s.cfg.Refine
	if s.cfg.CheckpointDir != "" && opt.CheckpointPath == "" {
		// One checkpoint per design: refinement runs fan out in parallel
		// and must never share a file.
		opt.CheckpointPath = filepath.Join(s.cfg.CheckpointDir, "refine-"+smp.Name+".ckpt")
		opt.Resume = s.cfg.Resume
	}
	ref, err := core.NewRefiner(m, smp.Batch, smp.Prepared, opt)
	if err != nil {
		return nil, err
	}
	res, err := ref.Refine()
	if err != nil {
		return nil, err
	}
	rep, err := flow.Signoff(smp.Prepared, res.Forest)
	if err != nil {
		return nil, err
	}
	rep.TSteinerSec = res.RuntimeSec
	return &tsRun{refine: res, report: rep}, nil
}

// TSteiner lazily runs refinement + sign-off for one design.
func (s *Suite) TSteiner(name string) (*core.Result, *flow.Report, error) {
	if got, ok := s.tsRuns[name]; ok {
		return got.refine, got.report, nil
	}
	smp, err := s.Sample(name)
	if err != nil {
		return nil, nil, err
	}
	m, err := s.Model()
	if err != nil {
		return nil, nil, err
	}
	s.logf("refining %s", name)
	run, err := s.runTSteiner(smp, m)
	if err != nil {
		return nil, nil, err
	}
	s.tsRuns[name] = run
	return run.refine, run.report, nil
}

// BuildTSRuns runs refinement + sign-off for the named designs on
// s.cfg.Workers goroutines. Refinement is deterministic given the trained
// parameters and each task refines its own value-identical model clone, so
// the cached outcomes are byte-identical for any worker count. Parallel
// tasks only compute; the cache writes happen serially afterwards.
func (s *Suite) BuildTSRuns(names []string) error {
	var missing []string
	for _, n := range names {
		if _, ok := s.tsRuns[n]; !ok {
			missing = append(missing, n)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	if err := s.BuildSamples(missing); err != nil {
		return err
	}
	m, err := s.Model()
	if err != nil {
		return err
	}
	s.logf("refining %d designs on %d workers", len(missing), par.Workers(s.cfg.Workers))
	runs, err := par.Map(s.cfg.Workers, missing, func(_ int, name string) (*tsRun, error) {
		smp, ok := s.samples[name]
		if !ok {
			return nil, fmt.Errorf("exp: sample %s not prebuilt", name)
		}
		return s.runTSteiner(smp, m.Clone())
	})
	if err != nil {
		return err
	}
	for i, name := range missing {
		s.tsRuns[name] = runs[i]
	}
	return nil
}

// randomTrials returns the trial count for a design (bounded for the two
// largest benchmarks).
func (s *Suite) randomTrials(spec synth.Spec) int {
	if spec.Cells >= 40000 && s.cfg.LargeDesignTrials > 0 {
		return s.cfg.LargeDesignTrials
	}
	return s.cfg.RandomTrials
}

// RandomMoves runs k random-disturbance sign-off trials for one design and
// returns the WNS and TNS ratios to the baseline (Fig. 2 / Fig. 5 data).
func (s *Suite) RandomMoves(name string, k int) (wnsRatios, tnsRatios []float64, err error) {
	key := fmt.Sprintf("%s/%d", name, k)
	if got, ok := s.randomRuns[key]; ok {
		return got.wns, got.tns, nil
	}
	smp, err := s.Sample(name)
	if err != nil {
		return nil, nil, err
	}
	// The perturbed forests are drawn serially from one seeded stream (the
	// geometry matches the historical serial loop exactly); only the
	// independent sign-off runs fan out across workers, so the ratios are
	// byte-identical for any worker count.
	rng := rand.New(rand.NewSource(s.cfg.Seed + int64(len(name))))
	forests := make([]*rsmt.Forest, k)
	for trial := 0; trial < k; trial++ {
		f := smp.Prepared.Forest.Clone()
		rsmt.Perturb(f, rng, s.cfg.AugmentDist, smp.Prepared.Design.Die)
		forests[trial] = f
	}
	type ratios struct{ wns, tns float64 }
	out, err := par.Map(s.cfg.Workers, forests, func(_ int, f *rsmt.Forest) (ratios, error) {
		rep, err := flow.Signoff(smp.Prepared, f)
		if err != nil {
			return ratios{}, err
		}
		return ratios{
			wns: metrics.Ratio(rep.WNS, smp.Baseline.WNS),
			tns: metrics.Ratio(rep.TNS, smp.Baseline.TNS),
		}, nil
	})
	if err != nil {
		return nil, nil, err
	}
	for _, r := range out {
		wnsRatios = append(wnsRatios, r.wns)
		tnsRatios = append(tnsRatios, r.tns)
	}
	s.randomRuns[key] = &randomRun{wns: wnsRatios, tns: tnsRatios}
	return wnsRatios, tnsRatios, nil
}

// sortedNames returns the suite's design names, training split first (the
// paper's table order).
func (s *Suite) sortedNames() []string {
	specs := append([]synth.Spec(nil), s.specs...)
	sort.SliceStable(specs, func(i, j int) bool {
		if specs[i].Train != specs[j].Train {
			return specs[i].Train
		}
		return false // keep canonical order within each split
	})
	names := make([]string, len(specs))
	for i, sp := range specs {
		names[i] = sp.Name
	}
	return names
}
