package exp

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"tsteiner/internal/core"
	"tsteiner/internal/designio"
	"tsteiner/internal/flow"
	"tsteiner/internal/gnn"
	"tsteiner/internal/obs"
	"tsteiner/internal/par"
	"tsteiner/internal/train"
)

// runObsFlow executes a small end-to-end pipeline (baseline flow → train →
// refine → sign-off) and serializes every algorithmic output. Wall-clock
// fields (GRSec, ExtractSec, STASec, refinement RuntimeSec) are excluded —
// they differ between any two runs regardless of telemetry — as is the
// resolved Workers annotation; DRSec stays because the DR surrogate's
// runtime is modeled, not measured.
func runObsFlow(t *testing.T, workers int, sink *obs.Sink) string {
	t.Helper()
	cfg := flow.DefaultConfig()
	cfg.Workers = workers
	cfg.Obs = sink

	smp, err := train.BuildSample("spm", 1.0, true, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := gnn.NewModel(gnn.DefaultConfig(), 7)
	topt := train.Options{Epochs: 8, LR: 1e-2, Seed: 1, Workers: workers, Obs: sink}
	loss, err := train.Train(m, []*train.Sample{smp}, topt)
	if err != nil {
		t.Fatal(err)
	}
	ropt := core.DefaultOptions()
	ropt.N = 3
	ref, err := core.NewRefiner(m, smp.Batch, smp.Prepared, ropt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ref.Refine()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := flow.Signoff(smp.Prepared, res.Forest)
	if err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	serialize := func(tag string, r *flow.Report) {
		fmt.Fprintf(&b, "%s wns=%v tns=%v vios=%d wl=%d vias=%d drvs=%d ovf=%d drsec=%v whs=%v hold=%d slew=%d\n",
			tag, r.WNS, r.TNS, r.Vios, r.WirelengthDBU, r.Vias, r.DRVs,
			r.Overflow, r.DRSec, r.WHS, r.HoldVios, r.SlewVios)
	}
	serialize("baseline", smp.Baseline)
	serialize("refined", rep)
	fmt.Fprintf(&b, "loss=%v\nrefine init=(%v,%v) best=(%v,%v) iters=%d converged=%v\n",
		loss, res.InitWNS, res.InitTNS, res.BestWNS, res.BestTNS,
		res.Iterations, res.ConvergedByRatio)
	for i, h := range res.History {
		fmt.Fprintf(&b, "iter %d wns=%v tns=%v theta=%v accepted=%v\n",
			i, h.WNS, h.TNS, h.Theta, h.Accepted)
	}
	var fb bytes.Buffer
	if err := designio.WriteForestJSON(&fb, res.Forest); err != nil {
		t.Fatal(err)
	}
	b.Write(fb.Bytes())
	return b.String()
}

// TestObsServerByteIdentical extends the telemetry gate to the live
// observability surface: running the pipeline with an attached /metrics
// server being scraped concurrently must produce byte-identical
// algorithmic output to running with no telemetry at all. Serving is
// read-only (snapshots under the sink lock), so this holds at any
// scrape rate.
func TestObsServerByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: runs the spm pipeline twice")
	}
	sink := obs.New(io.Discard)
	sink.EnableRing(256)
	sv, err := obs.Serve("127.0.0.1:0", sink)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	scraped := make(chan int, 1)
	go func() {
		n := 0
		for {
			select {
			case <-stop:
				scraped <- n
				return
			default:
			}
			for _, ep := range []string{"/metrics", "/trace?n=20", "/healthz"} {
				resp, err := http.Get(sv.URL() + ep)
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					n++
				}
			}
		}
	}()

	par.SetObserver(sink)
	withServer := runObsFlow(t, 4, sink)
	par.SetObserver(nil)
	close(stop)
	if n := <-scraped; n == 0 {
		t.Fatal("scraper never reached the server")
	}
	if err := sv.Close(); err != nil {
		t.Fatalf("server close: %v", err)
	}

	without := runObsFlow(t, 4, nil)
	if withServer != without {
		t.Fatalf("serving /metrics changed algorithmic output:\n--- with server ---\n%s\n--- without ---\n%s",
			withServer, without)
	}
}

// TestObsDisabledByteIdentical is the telemetry determinism gate: the full
// pipeline must produce byte-identical algorithmic outputs with a live
// sink (including the par worker-utilization observer) and with the nil
// NopSink, at workers=1 and workers=4.
func TestObsDisabledByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: runs the spm pipeline four times")
	}
	results := map[string]string{}
	for _, w := range []int{1, 4} {
		var trace bytes.Buffer
		sink := obs.New(&trace)
		par.SetObserver(sink)
		results[fmt.Sprintf("on/w=%d", w)] = runObsFlow(t, w, sink)
		par.SetObserver(nil)
		if trace.Len() == 0 {
			t.Fatal("live sink captured no events")
		}
		results[fmt.Sprintf("off/w=%d", w)] = runObsFlow(t, w, nil)
	}
	want := results["off/w=1"]
	if want == "" {
		t.Fatal("empty serialized output")
	}
	for key, got := range results {
		if got != want {
			t.Fatalf("output of %s differs from off/w=1:\n--- %s ---\n%s\n--- off/w=1 ---\n%s",
				key, key, got, want)
		}
	}
}
