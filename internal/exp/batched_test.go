package exp

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"tsteiner/internal/core"
	"tsteiner/internal/designio"
	"tsteiner/internal/flow"
	"tsteiner/internal/gnn"
	"tsteiner/internal/train"
)

// runBatchedFlow runs the small end-to-end pipeline with both batched
// modes on: the trainer in batched gradient-accumulation mode (one fused
// ForwardBatch per sample group) and the refiner evaluating 4 line-search
// candidates per iteration as lanes of one fused forward. disableWS
// selects the sequential reference side: an allocating tape per
// evaluation and one forward per candidate.
func runBatchedFlow(t *testing.T, workers int, disableWS bool) string {
	t.Helper()
	cfg := flow.DefaultConfig()
	cfg.Workers = workers

	smp, err := train.BuildSample("spm", 1.0, true, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := gnn.NewModel(gnn.DefaultConfig(), 7)
	topt := train.Options{Epochs: 8, LR: 1e-2, Seed: 1, Workers: workers,
		Accumulate: true, BatchedAccumulate: true}
	loss, err := train.Train(m, []*train.Sample{smp}, topt)
	if err != nil {
		t.Fatal(err)
	}
	ropt := core.DefaultOptions()
	ropt.N = 3
	ropt.DisableWorkspace = disableWS
	ropt.CandidateLanes = 4
	ref, err := core.NewRefiner(m, smp.Batch, smp.Prepared, ropt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ref.Refine()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := flow.Signoff(smp.Prepared, res.Forest)
	if err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "refined wns=%v tns=%v vios=%d wl=%d vias=%d drvs=%d ovf=%d\n",
		rep.WNS, rep.TNS, rep.Vios, rep.WirelengthDBU, rep.Vias, rep.DRVs, rep.Overflow)
	fmt.Fprintf(&b, "loss=%v\nrefine init=(%v,%v) best=(%v,%v) iters=%d converged=%v\n",
		loss, res.InitWNS, res.InitTNS, res.BestWNS, res.BestTNS,
		res.Iterations, res.ConvergedByRatio)
	for i, h := range res.History {
		fmt.Fprintf(&b, "iter %d wns=%v tns=%v theta=%v accepted=%v lane=%d\n",
			i, h.WNS, h.TNS, h.Theta, h.Accepted, h.Lane)
	}
	var fb bytes.Buffer
	if err := designio.WriteForestJSON(&fb, res.Forest); err != nil {
		t.Fatal(err)
	}
	b.Write(fb.Bytes())
	return b.String()
}

// TestBatchReplayPipelineByteIdentical is the pipeline-level batched
// determinism gate: with batched accumulation in the trainer and
// 4-candidate lane evaluation in the refiner, the fused path and the
// sequential reference must produce byte-identical outputs — trained
// loss, per-iteration history including the chosen lane, sign-off
// metrics and final Steiner coordinates — at workers=1 and workers=4.
func TestBatchReplayPipelineByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: runs the spm pipeline four times")
	}
	results := map[string]string{}
	for _, w := range []int{1, 4} {
		results[fmt.Sprintf("ws/w=%d", w)] = runBatchedFlow(t, w, false)
		results[fmt.Sprintf("alloc/w=%d", w)] = runBatchedFlow(t, w, true)
	}
	want := results["alloc/w=1"]
	if want == "" {
		t.Fatal("empty serialized output")
	}
	for key, got := range results {
		if got != want {
			t.Fatalf("output of %s differs from alloc/w=1:\n--- %s ---\n%s\n--- alloc/w=1 ---\n%s",
				key, key, got, want)
		}
	}
}
