package exp

import (
	"fmt"
	"io"

	"tsteiner/internal/flow"
	"tsteiner/internal/report"
	"tsteiner/internal/sta"
)

// CornerMatrixRow compares baseline and TSteiner sign-off on one design
// at one corner of the fast/typical/slow matrix.
type CornerMatrixRow struct {
	Name     string
	Baseline sta.CornerMetrics
	TSteiner sta.CornerMetrics
}

// CornerMatrixResult is the multi-corner sign-off study: does the
// typical-corner-trained refinement hold up under derated sign-off?
// Rows are grouped by design, corners in fast/typical/slow order.
type CornerMatrixResult struct {
	Rows []CornerMatrixRow
}

// CornerMatrixStudy signs off each named design's baseline and refined
// forests at the standard corner matrix. Refinement itself is the
// cached single-corner run the paper's tables use — the study measures
// how its gains translate to the derated corners, not a multi-corner
// optimization.
func (s *Suite) CornerMatrixStudy(names []string) (*CornerMatrixResult, error) {
	corners := sta.DefaultCorners()
	if err := s.BuildTSRuns(names); err != nil {
		return nil, err
	}
	out := &CornerMatrixResult{}
	for _, name := range names {
		smp, err := s.Sample(name)
		if err != nil {
			return nil, err
		}
		res, _, err := s.TSteiner(name)
		if err != nil {
			return nil, err
		}
		// A corner-reporting copy of the prepared config; the cached
		// sample itself stays single-corner.
		prep := *smp.Prepared
		cfg := prep.Config
		cfg.Corners = corners
		prep.Config = cfg
		s.logf("corner sign-off %s", name)
		base, err := flow.Signoff(&prep, smp.Forest)
		if err != nil {
			return nil, err
		}
		ref, err := flow.Signoff(&prep, res.Forest)
		if err != nil {
			return nil, err
		}
		if len(base.Corners) != len(corners) || len(ref.Corners) != len(corners) {
			return nil, fmt.Errorf("exp: corner sign-off returned %d/%d rows, want %d",
				len(base.Corners), len(ref.Corners), len(corners))
		}
		for ci := range corners {
			out.Rows = append(out.Rows, CornerMatrixRow{
				Name:     name,
				Baseline: base.Corners[ci],
				TSteiner: ref.Corners[ci],
			})
		}
	}
	return out, nil
}

// Render writes the study as one table: per design × corner, the
// baseline and TSteiner sign-off triples plus the hold count at that
// corner.
func (r *CornerMatrixResult) Render(w io.Writer) error {
	t := report.Table{
		Title: "Multi-corner sign-off: baseline vs TSteiner (typical-corner-trained)",
		Header: []string{"Benchmark", "Corner",
			"base WNS", "base TNS", "base Vios", "base Hold",
			"ts WNS", "ts TNS", "ts Vios", "ts Hold"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Name, row.Baseline.Corner.Name,
			report.F(row.Baseline.WNS, 3), report.F(row.Baseline.TNS, 1),
			report.I(row.Baseline.Vios), report.I(row.Baseline.HoldVios),
			report.F(row.TSteiner.WNS, 3), report.F(row.TSteiner.TNS, 1),
			report.I(row.TSteiner.Vios), report.I(row.TSteiner.HoldVios))
	}
	return t.Render(w)
}
