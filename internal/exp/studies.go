package exp

import (
	"io"
	"math/rand"

	"tsteiner/internal/core"
	"tsteiner/internal/flow"
	"tsteiner/internal/gnn"
	"tsteiner/internal/metrics"
	"tsteiner/internal/par"
	"tsteiner/internal/rc"
	"tsteiner/internal/report"
	"tsteiner/internal/rsmt"
	"tsteiner/internal/sta"
	"tsteiner/internal/train"
)

// ---------- Early-vs-sign-off consistency study ----------
//
// The paper's introduction argues that early timing metrics (linear RC /
// path-length estimates available before routing) have "no consistency
// guarantee" with sign-off timing. This study quantifies that claim on
// our substrate: for each design, perturb Steiner geometry several times
// and correlate the pre-routing TNS estimate with the sign-off TNS.

// ConsistencyRow is one design's correlation record.
type ConsistencyRow struct {
	Name string
	// Correlation between early (tree-based) TNS and sign-off TNS over
	// the perturbation set.
	PearsonTNS float64
	Trials     int
}

// ConsistencyResult summarizes the study.
type ConsistencyResult struct {
	Rows []ConsistencyRow
	Avg  float64
}

// Consistency runs the study on the given designs with k perturbations
// each.
func (s *Suite) Consistency(designs []string, k int) (*ConsistencyResult, error) {
	out := &ConsistencyResult{}
	for _, name := range designs {
		smp, err := s.Sample(name)
		if err != nil {
			return nil, err
		}
		// Perturbations drawn serially from one seeded stream; the
		// independent early-estimate + sign-off pairs fan out across
		// workers (output is byte-identical for any worker count).
		rng := rand.New(rand.NewSource(s.cfg.Seed + 7777 + int64(len(name))))
		forests := make([]*rsmt.Forest, k)
		for trial := 0; trial < k; trial++ {
			f := smp.Prepared.Forest.Clone()
			rsmt.Perturb(f, rng, s.cfg.AugmentDist, smp.Prepared.Design.Die)
			forests[trial] = f
		}
		type pair struct{ early, signoff float64 }
		pairs, err := par.Map(s.cfg.Workers, forests, func(_ int, f *rsmt.Forest) (pair, error) {
			// Early estimate: STA over tree-geometry RC (no routing).
			rounded := f.Clone()
			rounded.RoundPositions()
			rcs, err := rc.ExtractFromTrees(smp.Prepared.Design, rounded, smp.Prepared.Lib)
			if err != nil {
				return pair{}, err
			}
			et, err := sta.Run(smp.Prepared.Design, rcs)
			if err != nil {
				return pair{}, err
			}
			// Sign-off: the full routed flow.
			rep, err := flow.Signoff(smp.Prepared, f)
			if err != nil {
				return pair{}, err
			}
			return pair{early: et.TNS, signoff: rep.TNS}, nil
		})
		if err != nil {
			return nil, err
		}
		var early, signoff []float64
		for _, p := range pairs {
			early = append(early, p.early)
			signoff = append(signoff, p.signoff)
		}
		p, err := metrics.Pearson(early, signoff)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, ConsistencyRow{Name: name, PearsonTNS: p, Trials: k})
		out.Avg += p
	}
	if len(out.Rows) > 0 {
		out.Avg /= float64(len(out.Rows))
	}
	return out, nil
}

// Render writes the study table.
func (r *ConsistencyResult) Render(w io.Writer) error {
	t := report.Table{
		Title:  "STUDY: correlation of pre-routing TNS estimate with sign-off TNS (under Steiner perturbation)",
		Header: []string{"Benchmark", "Pearson", "trials"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Name, report.F(row.PearsonTNS, 3), report.I(row.Trials))
	}
	t.AddRow("— Average", report.F(r.Avg, 3), "")
	return t.Render(w)
}

// ---------- Timing-driven routing study ----------
//
// This repo's router supports most-critical-net-first ordering (an
// extension beyond the CUGR-like baseline). The study measures its effect
// in isolation: same designs, same trees, routing order flipped.

// TDRouteRow compares routing orders on one design.
type TDRouteRow struct {
	Name                 string
	BaseWNS, BaseTNS     float64
	TDWNS, TDTNS         float64
	BaseWL, TDWL         int64
	BaseOverflow, TDOver int
}

// TDRouteResult is the study output.
type TDRouteResult struct {
	Rows []TDRouteRow
}

// TimingDrivenRoute reruns sign-off with criticality-ordered routing.
func (s *Suite) TimingDrivenRoute(designs []string) (*TDRouteResult, error) {
	out := &TDRouteResult{}
	for _, name := range designs {
		smp, err := s.Sample(name)
		if err != nil {
			return nil, err
		}
		// Re-prepare a flow view with timing-driven ordering enabled; the
		// design and forest are shared (Signoff does not mutate them).
		p2 := *smp.Prepared
		p2.Config.TimingDrivenRoute = true
		rep, err := flow.Signoff(&p2, smp.Prepared.Forest)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, TDRouteRow{
			Name:    name,
			BaseWNS: smp.Baseline.WNS, BaseTNS: smp.Baseline.TNS,
			TDWNS: rep.WNS, TDTNS: rep.TNS,
			BaseWL: smp.Baseline.WirelengthDBU, TDWL: rep.WirelengthDBU,
			BaseOverflow: smp.Baseline.Overflow, TDOver: rep.Overflow,
		})
	}
	return out, nil
}

// Render writes the study table.
func (r *TDRouteResult) Render(w io.Writer) error {
	t := report.Table{
		Title:  "STUDY: timing-driven net ordering in global routing",
		Header: []string{"Benchmark", "WNS", "TNS", "WNS'", "TNS'", "WL", "WL'"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Name,
			report.F(row.BaseWNS, 3), report.F(row.BaseTNS, 1),
			report.F(row.TDWNS, 3), report.F(row.TDTNS, 1),
			report.I(int(row.BaseWL)), report.I(int(row.TDWL)))
	}
	return t.Render(w)
}

// ---------- Steiner-awareness study ----------
//
// The paper's central modeling claim is that integrating Steiner trees
// into the evaluator ("no previous ML-driven pre-routing evaluator
// considered Steiner points") improves sign-off prediction. This study
// trains a second, Steiner-blind evaluator (no message passing, HPWL-only
// features — the reference-[13] class) on exactly the same samples and
// compares R².

// AwarenessRow is one design's two-model comparison.
type AwarenessRow struct {
	Name                string
	Train               bool
	FullAll, FullEnds   float64 // Steiner-aware R²
	BlindAll, BlindEnds float64 // netlist-only R²
}

// AwarenessResult compares the two evaluators.
type AwarenessResult struct {
	Rows []AwarenessRow
}

// SteinerAwareness trains the blind variant and evaluates both models.
func (s *Suite) SteinerAwareness() (*AwarenessResult, error) {
	full, err := s.Model()
	if err != nil {
		return nil, err
	}
	// Gather the same sample set used for the full model.
	var all []*train.Sample
	for _, spec := range s.specs {
		smp, err := s.Sample(spec.Name)
		if err != nil {
			return nil, err
		}
		all = append(all, smp)
	}
	blindCfg := s.cfg.GNN
	blindCfg.MPIters = 0
	blindCfg.NoSteinerFeatures = true
	blind := gnn.NewModel(blindCfg, s.cfg.Seed)
	s.logf("training Steiner-blind evaluator")
	if _, err := train.Train(blind, all, s.cfg.Train); err != nil {
		return nil, err
	}
	out := &AwarenessResult{}
	for _, smp := range all {
		fs, err := train.Evaluate(full, smp)
		if err != nil {
			return nil, err
		}
		bs, err := train.Evaluate(blind, smp)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, AwarenessRow{
			Name: smp.Name, Train: smp.Train,
			FullAll: fs.ArrivalAll, FullEnds: fs.ArrivalEnds,
			BlindAll: bs.ArrivalAll, BlindEnds: bs.ArrivalEnds,
		})
	}
	return out, nil
}

// Render writes the comparison table.
func (r *AwarenessResult) Render(w io.Writer) error {
	t := report.Table{
		Title:  "STUDY: Steiner-aware evaluator vs netlist-only evaluator (R², arrival-all / arrival-ends)",
		Header: []string{"Benchmark", "Split", "full-all", "full-ends", "blind-all", "blind-ends"},
	}
	for _, row := range r.Rows {
		split := "test"
		if row.Train {
			split = "train"
		}
		t.AddRow(row.Name, split,
			report.F(row.FullAll, 4), report.F(row.FullEnds, 4),
			report.F(row.BlindAll, 4), report.F(row.BlindEnds, 4))
	}
	return t.Render(w)
}

// ---------- Prior-work comparison: Prim–Dijkstra trees ----------
//
// The pre-learning state of the art ([3], [4]) optimizes path length at
// Steiner construction time. This study routes PD trees over an α sweep
// and compares their sign-off timing against the wirelength-driven
// construction and against TSteiner refinement on top of it.

// PDRow is one (design, α) flow outcome.
type PDRow struct {
	Name  string
	Label string // "rsmt", "pd α=x", "tsteiner"
	WNS   float64
	TNS   float64
	WL    int64
}

// PDResult is the prior-work comparison.
type PDResult struct {
	Rows []PDRow
}

// PDComparison runs the study for each design over the α sweep.
func (s *Suite) PDComparison(designs []string, alphas []float64) (*PDResult, error) {
	out := &PDResult{}
	for _, name := range designs {
		smp, err := s.Sample(name)
		if err != nil {
			return nil, err
		}
		out.Rows = append(out.Rows, PDRow{
			Name: name, Label: "rsmt (baseline)",
			WNS: smp.Baseline.WNS, TNS: smp.Baseline.TNS, WL: smp.Baseline.WirelengthDBU,
		})
		for _, a := range alphas {
			f, err := rsmt.BuildAllPD(smp.Prepared.Design, a, s.cfg.Flow.RSMT)
			if err != nil {
				return nil, err
			}
			rep, err := flow.Signoff(smp.Prepared, f)
			if err != nil {
				return nil, err
			}
			out.Rows = append(out.Rows, PDRow{
				Name: name, Label: pdLabel(a),
				WNS: rep.WNS, TNS: rep.TNS, WL: rep.WirelengthDBU,
			})
		}
		if _, rep, err := s.TSteiner(name); err == nil {
			out.Rows = append(out.Rows, PDRow{
				Name: name, Label: "tsteiner",
				WNS: rep.WNS, TNS: rep.TNS, WL: rep.WirelengthDBU,
			})
		} else {
			return nil, err
		}
		// Composition: TSteiner refinement on top of the first PD
		// construction — the refiner is construction-agnostic (it only
		// needs a forest and its batch).
		if len(alphas) > 0 {
			rep, err := s.refineForest(name, alphas[0])
			if err != nil {
				return nil, err
			}
			out.Rows = append(out.Rows, PDRow{
				Name: name, Label: pdLabel(alphas[0]) + " + tsteiner",
				WNS: rep.WNS, TNS: rep.TNS, WL: rep.WirelengthDBU,
			})
		}
	}
	return out, nil
}

// refineForest builds PD trees for a design, refines them with the
// trained evaluator, and signs off the result.
func (s *Suite) refineForest(name string, alpha float64) (*flow.Report, error) {
	smp, err := s.Sample(name)
	if err != nil {
		return nil, err
	}
	m, err := s.Model()
	if err != nil {
		return nil, err
	}
	f, err := rsmt.BuildAllPD(smp.Prepared.Design, alpha, s.cfg.Flow.RSMT)
	if err != nil {
		return nil, err
	}
	batch, err := gnn.NewBatch(smp.Prepared.Design, f)
	if err != nil {
		return nil, err
	}
	prep := *smp.Prepared
	prep.Forest = f
	ref, err := core.NewRefiner(m, batch, &prep, s.cfg.Refine)
	if err != nil {
		return nil, err
	}
	res, err := ref.Refine()
	if err != nil {
		return nil, err
	}
	return flow.Signoff(&prep, res.Forest)
}

func pdLabel(a float64) string { return "pd α=" + report.F(a, 2) }

// Render writes the comparison table.
func (r *PDResult) Render(w io.Writer) error {
	t := report.Table{
		Title:  "STUDY: prior-work comparison — PD timing-driven trees vs TSteiner",
		Header: []string{"Benchmark", "trees", "WNS", "TNS", "WL"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Name, row.Label, report.F(row.WNS, 3), report.F(row.TNS, 1), report.I(int(row.WL)))
	}
	return t.Render(w)
}
