package exp

import (
	"bytes"
	"testing"

	"tsteiner/internal/train"
)

// renderAll regenerates every deterministic table and figure of a suite and
// returns the concatenated rendering. Table IV is excluded on purpose: it
// prints measured wall-clock seconds, which differ run to run regardless of
// worker count.
func renderAll(t *testing.T, s *Suite) string {
	t.Helper()
	var buf bytes.Buffer
	t1, err := s.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if err := t1.Render(&buf); err != nil {
		t.Fatal(err)
	}
	t2, err := s.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if err := t2.Render(&buf); err != nil {
		t.Fatal(err)
	}
	t3, err := s.Table3()
	if err != nil {
		t.Fatal(err)
	}
	if err := t3.Render(&buf); err != nil {
		t.Fatal(err)
	}
	f2, err := s.Figure2()
	if err != nil {
		t.Fatal(err)
	}
	if err := f2.Render(&buf); err != nil {
		t.Fatal(err)
	}
	f5, err := s.Figure5()
	if err != nil {
		t.Fatal(err)
	}
	if err := f5.Render(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestParallelDeterminism is the regression gate for the parallel execution
// layer: a reduced-scale experiment run must render byte-identical tables
// and figures at workers=1 and workers=4.
func TestParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: runs the reduced experiment suite twice")
	}
	build := func(workers int) string {
		cfg := Default()
		cfg.Designs = []string{"spm", "usb_cdc_core"}
		cfg.AugmentVariants = 1
		cfg.RandomTrials = 2
		cfg.LargeDesignTrials = 1
		cfg.Train = train.Options{Epochs: 12, LR: 1e-2, Seed: 1}
		cfg.Workers = workers
		s, err := NewSuite(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return renderAll(t, s)
	}
	serial := build(1)
	parallel := build(4)
	if serial != parallel {
		t.Fatalf("experiment output differs between workers=1 and workers=4:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s", serial, parallel)
	}
}
