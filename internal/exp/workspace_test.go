package exp

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"tsteiner/internal/core"
	"tsteiner/internal/designio"
	"tsteiner/internal/flow"
	"tsteiner/internal/gnn"
	"tsteiner/internal/train"
)

// runWorkspaceFlow runs the small end-to-end pipeline with the trainer in
// gradient-accumulation mode (exercising the pooled clone/workspace reuse
// across workers) and the refiner either on the pooled workspace + memo
// path or on the allocating reference path, serializing every algorithmic
// output exactly like runObsFlow.
func runWorkspaceFlow(t *testing.T, workers int, disableWS bool) string {
	t.Helper()
	cfg := flow.DefaultConfig()
	cfg.Workers = workers

	smp, err := train.BuildSample("spm", 1.0, true, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m := gnn.NewModel(gnn.DefaultConfig(), 7)
	topt := train.Options{Epochs: 8, LR: 1e-2, Seed: 1, Workers: workers, Accumulate: true}
	loss, err := train.Train(m, []*train.Sample{smp}, topt)
	if err != nil {
		t.Fatal(err)
	}
	ropt := core.DefaultOptions()
	ropt.N = 3
	ropt.DisableWorkspace = disableWS
	ref, err := core.NewRefiner(m, smp.Batch, smp.Prepared, ropt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ref.Refine()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := flow.Signoff(smp.Prepared, res.Forest)
	if err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "refined wns=%v tns=%v vios=%d wl=%d vias=%d drvs=%d ovf=%d\n",
		rep.WNS, rep.TNS, rep.Vios, rep.WirelengthDBU, rep.Vias, rep.DRVs, rep.Overflow)
	fmt.Fprintf(&b, "loss=%v\nrefine init=(%v,%v) best=(%v,%v) iters=%d converged=%v\n",
		loss, res.InitWNS, res.InitTNS, res.BestWNS, res.BestTNS,
		res.Iterations, res.ConvergedByRatio)
	for i, h := range res.History {
		fmt.Fprintf(&b, "iter %d wns=%v tns=%v theta=%v accepted=%v\n",
			i, h.WNS, h.TNS, h.Theta, h.Accepted)
	}
	var fb bytes.Buffer
	if err := designio.WriteForestJSON(&fb, res.Forest); err != nil {
		t.Fatal(err)
	}
	b.Write(fb.Bytes())
	return b.String()
}

// TestWorkspaceForwardMatchesAllocating is the workspace determinism gate:
// the pooled (workspace + forward-memo) evaluation path and the
// allocating reference path must produce byte-identical pipeline outputs
// — metrics, per-iteration history and final Steiner coordinates — at
// workers=1 and workers=4.
func TestWorkspaceForwardMatchesAllocating(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: runs the spm pipeline four times")
	}
	results := map[string]string{}
	for _, w := range []int{1, 4} {
		results[fmt.Sprintf("ws/w=%d", w)] = runWorkspaceFlow(t, w, false)
		results[fmt.Sprintf("alloc/w=%d", w)] = runWorkspaceFlow(t, w, true)
	}
	want := results["alloc/w=1"]
	if want == "" {
		t.Fatal("empty serialized output")
	}
	for key, got := range results {
		if got != want {
			t.Fatalf("output of %s differs from alloc/w=1:\n--- %s ---\n%s\n--- alloc/w=1 ---\n%s",
				key, key, got, want)
		}
	}
}
