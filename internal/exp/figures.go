package exp

import (
	"io"

	"tsteiner/internal/metrics"
	"tsteiner/internal/report"
)

// ---------- Figure 2 ----------

// Figure2Result holds the distribution of sign-off TNS ratios under random
// Steiner disturbance (paper Fig. 2).
type Figure2Result struct {
	// PerDesign maps design name → TNS ratios (disturbed / original).
	PerDesign map[string][]float64
	// All flattens every trial.
	All []float64
	// Histogram over [Lo, Hi) with Bins buckets.
	Lo, Hi float64
	Counts []int
}

// Figure2 runs the random-disturbance experiment.
func (s *Suite) Figure2() (*Figure2Result, error) {
	out := &Figure2Result{PerDesign: map[string][]float64{}}
	for _, spec := range s.specs {
		k := s.randomTrials(spec)
		s.logf("figure 2: %d random trials on %s", k, spec.Name)
		_, tns, err := s.RandomMoves(spec.Name, k)
		if err != nil {
			return nil, err
		}
		out.PerDesign[spec.Name] = tns
		out.All = append(out.All, tns...)
	}
	out.Lo, out.Hi = 0.9, 1.1
	for _, v := range out.All {
		if v < out.Lo {
			out.Lo = v
		}
		if v > out.Hi {
			out.Hi = v
		}
	}
	out.Counts = metrics.Histogram(out.All, out.Lo, out.Hi, 12)
	return out, nil
}

// Render writes the histogram plus summary stats.
func (r *Figure2Result) Render(w io.Writer) error {
	if err := report.Histogram(w, "FIGURE 2: sign-off TNS ratio under random Steiner disturbance", r.Lo, r.Hi, r.Counts); err != nil {
		return err
	}
	t := report.Table{Header: []string{"stat", "value"}}
	t.AddRow("trials", report.I(len(r.All)))
	t.AddRow("mean ratio", report.F(metrics.Mean(r.All), 4))
	t.AddRow("p10", report.F(metrics.Quantile(r.All, 0.10), 4))
	t.AddRow("p90", report.F(metrics.Quantile(r.All, 0.90), 4))
	return t.Render(w)
}

// ---------- Figure 5 ----------

// Figure5Row compares TSteiner against the expected value of random moves
// on one design.
type Figure5Row struct {
	Name string
	// Ratios of the metric to the baseline flow (1.0 = unchanged; < 1 is
	// better for negative metrics).
	TSteinerWNS, TSteinerTNS float64
	RandomWNS, RandomTNS     float64 // expected value over trials
}

// Figure5Result mirrors the paper's Fig. 5 comparison.
type Figure5Result struct {
	Rows []Figure5Row
	// Averages over designs.
	AvgTSteinerWNS, AvgTSteinerTNS float64
	AvgRandomWNS, AvgRandomTNS     float64
}

// Figure5 runs TSteiner and the random-move expectation per design.
func (s *Suite) Figure5() (*Figure5Result, error) {
	names := make([]string, len(s.specs))
	for i, spec := range s.specs {
		names[i] = spec.Name
	}
	if err := s.BuildTSRuns(names); err != nil {
		return nil, err
	}
	out := &Figure5Result{}
	for _, spec := range s.specs {
		smp, err := s.Sample(spec.Name)
		if err != nil {
			return nil, err
		}
		_, rep, err := s.TSteiner(spec.Name)
		if err != nil {
			return nil, err
		}
		k := s.randomTrials(spec)
		s.logf("figure 5: %d random trials on %s", k, spec.Name)
		wns, tns, err := s.RandomMoves(spec.Name, k)
		if err != nil {
			return nil, err
		}
		row := Figure5Row{
			Name:        spec.Name,
			TSteinerWNS: metrics.Ratio(rep.WNS, smp.Baseline.WNS),
			TSteinerTNS: metrics.Ratio(rep.TNS, smp.Baseline.TNS),
			RandomWNS:   metrics.Mean(wns),
			RandomTNS:   metrics.Mean(tns),
		}
		out.Rows = append(out.Rows, row)
		out.AvgTSteinerWNS += row.TSteinerWNS
		out.AvgTSteinerTNS += row.TSteinerTNS
		out.AvgRandomWNS += row.RandomWNS
		out.AvgRandomTNS += row.RandomTNS
	}
	n := float64(len(out.Rows))
	out.AvgTSteinerWNS /= n
	out.AvgTSteinerTNS /= n
	out.AvgRandomWNS /= n
	out.AvgRandomTNS /= n
	return out, nil
}

// Render writes the comparison table.
func (r *Figure5Result) Render(w io.Writer) error {
	t := report.Table{
		Title:  "FIGURE 5: sign-off metric ratios — TSteiner vs expected random move",
		Header: []string{"Benchmark", "TS WNS", "TS TNS", "Rand WNS", "Rand TNS"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Name, report.F(row.TSteinerWNS, 3), report.F(row.TSteinerTNS, 3),
			report.F(row.RandomWNS, 3), report.F(row.RandomTNS, 3))
	}
	t.AddRow("— Average", report.F(r.AvgTSteinerWNS, 3), report.F(r.AvgTSteinerTNS, 3),
		report.F(r.AvgRandomWNS, 3), report.F(r.AvgRandomTNS, 3))
	return t.Render(w)
}
