package exp

import (
	"fmt"
	"io"

	"tsteiner/internal/metrics"
	"tsteiner/internal/obs"
	"tsteiner/internal/report"
	"tsteiner/internal/synth"
	"tsteiner/internal/train"
)

// ---------- Table I ----------

// Table1Row is one benchmark's statistics line.
type Table1Row struct {
	Name      string
	Train     bool
	CellNodes int
	Steiner   int
	NetEdges  int // Steiner-tree edges
	CellEdges int
	Endpoints int
}

// Table1Result mirrors the paper's Table I.
type Table1Result struct {
	Rows                  []Table1Row
	TotalTrain, TotalTest Table1Row
}

// Table1 builds benchmark statistics from the prepared designs.
func (s *Suite) Table1() (*Table1Result, error) {
	if err := s.BuildSamples(s.sortedNames()); err != nil {
		return nil, err
	}
	out := &Table1Result{}
	for _, name := range s.sortedNames() {
		smp, err := s.Sample(name)
		if err != nil {
			return nil, err
		}
		ds := smp.Prepared.Design.Stats()
		fs := smp.Prepared.Forest.Stats()
		row := Table1Row{
			Name:      name,
			Train:     smp.Train,
			CellNodes: ds.CellNodes,
			Steiner:   fs.SteinerNodes,
			NetEdges:  fs.TreeEdges,
			CellEdges: ds.CellEdges,
			Endpoints: ds.Endpoints,
		}
		out.Rows = append(out.Rows, row)
		acc := &out.TotalTest
		if row.Train {
			acc = &out.TotalTrain
		}
		acc.CellNodes += row.CellNodes
		acc.Steiner += row.Steiner
		acc.NetEdges += row.NetEdges
		acc.CellEdges += row.CellEdges
		acc.Endpoints += row.Endpoints
	}
	out.TotalTrain.Name = "Total Train"
	out.TotalTest.Name = "Total Test"
	return out, nil
}

// Render writes the table.
func (r *Table1Result) Render(w io.Writer) error {
	t := report.Table{
		Title:  "TABLE I: Benchmark statistics",
		Header: []string{"Benchmark", "Split", "#Cell", "#Steiner", "#NetEdges", "#CellEdges", "#Endpoints"},
	}
	for _, row := range r.Rows {
		split := "test"
		if row.Train {
			split = "train"
		}
		t.AddRow(row.Name, split, report.I(row.CellNodes), report.I(row.Steiner),
			report.I(row.NetEdges), report.I(row.CellEdges), report.I(row.Endpoints))
	}
	for _, tot := range []Table1Row{r.TotalTrain, r.TotalTest} {
		t.AddRow("— "+tot.Name, "", report.I(tot.CellNodes), report.I(tot.Steiner),
			report.I(tot.NetEdges), report.I(tot.CellEdges), report.I(tot.Endpoints))
	}
	return t.Render(w)
}

// ---------- Table II ----------

// FlowMetrics is one side (baseline or TSteiner) of a Table II row.
type FlowMetrics struct {
	WNS, TNS float64
	Vios     int
	WL       int64
	Vias     int
	DRV      int
}

// Table2Row compares the two flows on one design.
type Table2Row struct {
	Name               string
	Baseline, TSteiner FlowMetrics
}

// Table2Result mirrors the paper's Table II with average ratios.
type Table2Result struct {
	Rows []Table2Row
	// AvgRatio holds the TSteiner/baseline mean ratios in the order
	// WNS, TNS, Vios, WL, Vias, DRV (baseline ≡ 1.000).
	AvgRatio [6]float64
}

// Table2 runs baseline vs TSteiner sign-off for every design.
func (s *Suite) Table2() (*Table2Result, error) {
	if err := s.BuildTSRuns(s.sortedNames()); err != nil {
		return nil, err
	}
	out := &Table2Result{}
	var sums [6]float64
	for _, name := range s.sortedNames() {
		smp, err := s.Sample(name)
		if err != nil {
			return nil, err
		}
		_, rep, err := s.TSteiner(name)
		if err != nil {
			return nil, err
		}
		row := Table2Row{
			Name: name,
			Baseline: FlowMetrics{
				WNS: smp.Baseline.WNS, TNS: smp.Baseline.TNS, Vios: smp.Baseline.Vios,
				WL: smp.Baseline.WirelengthDBU, Vias: smp.Baseline.Vias, DRV: smp.Baseline.DRVs,
			},
			TSteiner: FlowMetrics{
				WNS: rep.WNS, TNS: rep.TNS, Vios: rep.Vios,
				WL: rep.WirelengthDBU, Vias: rep.Vias, DRV: rep.DRVs,
			},
		}
		out.Rows = append(out.Rows, row)
		sums[0] += metrics.Ratio(row.TSteiner.WNS, row.Baseline.WNS)
		sums[1] += metrics.Ratio(row.TSteiner.TNS, row.Baseline.TNS)
		sums[2] += metrics.Ratio(float64(row.TSteiner.Vios), float64(row.Baseline.Vios))
		sums[3] += metrics.Ratio(float64(row.TSteiner.WL), float64(row.Baseline.WL))
		sums[4] += metrics.Ratio(float64(row.TSteiner.Vias), float64(row.Baseline.Vias))
		sums[5] += metrics.Ratio(float64(row.TSteiner.DRV), float64(row.Baseline.DRV))
	}
	n := float64(len(out.Rows))
	for i := range sums {
		out.AvgRatio[i] = sums[i] / n
	}
	return out, nil
}

// Render writes the table.
func (r *Table2Result) Render(w io.Writer) error {
	t := report.Table{
		Title: "TABLE II: Sign-off results, baseline flow vs TSteiner flow",
		Header: []string{"Benchmark",
			"WNS", "TNS", "#Vios", "WL(e3)", "#Vias", "#DRV",
			"WNS'", "TNS'", "#Vios'", "WL'(e3)", "#Vias'", "#DRV'"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Name,
			report.F(row.Baseline.WNS, 3), report.F(row.Baseline.TNS, 1), report.I(row.Baseline.Vios),
			report.F(float64(row.Baseline.WL)/1e3, 1), report.I(row.Baseline.Vias), report.I(row.Baseline.DRV),
			report.F(row.TSteiner.WNS, 3), report.F(row.TSteiner.TNS, 1), report.I(row.TSteiner.Vios),
			report.F(float64(row.TSteiner.WL)/1e3, 1), report.I(row.TSteiner.Vias), report.I(row.TSteiner.DRV))
	}
	t.AddRow("— Average", "1.000", "1.000", "1.000", "1.0000", "1.0000", "1.000",
		report.F(r.AvgRatio[0], 3), report.F(r.AvgRatio[1], 3), report.F(r.AvgRatio[2], 3),
		report.F(r.AvgRatio[3], 4), report.F(r.AvgRatio[4], 4), report.F(r.AvgRatio[5], 3))
	return t.Render(w)
}

// ---------- Table III ----------

// Table3Row is one design's prediction scores.
type Table3Row struct {
	Name  string
	Train bool
	train.Scores
}

// Table3Result mirrors the paper's Table III.
type Table3Result struct {
	Rows              []Table3Row
	AvgTrain, AvgTest train.Scores
	NumTrain, NumTest int
}

// Table3 scores the trained evaluator on every design.
func (s *Suite) Table3() (*Table3Result, error) {
	m, err := s.Model()
	if err != nil {
		return nil, err
	}
	out := &Table3Result{}
	for _, name := range s.sortedNames() {
		smp, err := s.Sample(name)
		if err != nil {
			return nil, err
		}
		sc, err := train.Evaluate(m, smp)
		if err != nil {
			return nil, err
		}
		s.cfg.Obs.Event("train.eval",
			obs.KV{K: "design", V: name},
			obs.KV{K: "r2_all", V: sc.ArrivalAll}, obs.KV{K: "r2_ends", V: sc.ArrivalEnds})
		out.Rows = append(out.Rows, Table3Row{Name: name, Train: smp.Train, Scores: sc})
		if smp.Train {
			out.AvgTrain.ArrivalAll += sc.ArrivalAll
			out.AvgTrain.ArrivalEnds += sc.ArrivalEnds
			out.NumTrain++
		} else {
			out.AvgTest.ArrivalAll += sc.ArrivalAll
			out.AvgTest.ArrivalEnds += sc.ArrivalEnds
			out.NumTest++
		}
	}
	if out.NumTrain > 0 {
		out.AvgTrain.ArrivalAll /= float64(out.NumTrain)
		out.AvgTrain.ArrivalEnds /= float64(out.NumTrain)
	}
	if out.NumTest > 0 {
		out.AvgTest.ArrivalAll /= float64(out.NumTest)
		out.AvgTest.ArrivalEnds /= float64(out.NumTest)
	}
	return out, nil
}

// Render writes the table.
func (r *Table3Result) Render(w io.Writer) error {
	t := report.Table{
		Title:  "TABLE III: Sign-off timing prediction R²",
		Header: []string{"Benchmark", "Split", "arrival-all", "arrival-ends"},
	}
	for _, row := range r.Rows {
		split := "test"
		if row.Train {
			split = "train"
		}
		t.AddRow(row.Name, split, report.F(row.ArrivalAll, 4), report.F(row.ArrivalEnds, 4))
	}
	t.AddRow("— Avg. Train", "", report.F(r.AvgTrain.ArrivalAll, 4), report.F(r.AvgTrain.ArrivalEnds, 4))
	t.AddRow("— Avg. Test", "", report.F(r.AvgTest.ArrivalAll, 4), report.F(r.AvgTest.ArrivalEnds, 4))
	return t.Render(w)
}

// ---------- Table IV ----------

// Table4Row is one design's runtime breakdown.
type Table4Row struct {
	Name              string
	BaseTotal, BaseGR float64
	BaseDR            float64
	TSTotal, TSRefine float64
	TSGR, TSDR        float64
}

// Table4Result mirrors the paper's Table IV.
type Table4Result struct {
	Rows []Table4Row
	// Ratio averages: total, GR, DR of the TSteiner flow vs baseline.
	AvgTotalRatio, AvgGRRatio, AvgDRRatio float64
	// Workers is the resolved worker count the runs were measured under
	// (wall clock depends on it; every other table value does not).
	Workers int
}

// Table4 assembles the runtime breakdown from the Table II runs.
func (s *Suite) Table4() (*Table4Result, error) {
	if err := s.BuildTSRuns(s.sortedNames()); err != nil {
		return nil, err
	}
	out := &Table4Result{}
	var sT, sG, sD float64
	for _, name := range s.sortedNames() {
		smp, err := s.Sample(name)
		if err != nil {
			return nil, err
		}
		res, rep, err := s.TSteiner(name)
		if err != nil {
			return nil, err
		}
		out.Workers = rep.Workers
		row := Table4Row{
			Name:      name,
			BaseGR:    smp.Baseline.GRSec,
			BaseDR:    smp.Baseline.DRSec,
			BaseTotal: smp.Baseline.Total(),
			TSRefine:  res.RuntimeSec,
			TSGR:      rep.GRSec,
			TSDR:      rep.DRSec,
			TSTotal:   rep.Total(),
		}
		out.Rows = append(out.Rows, row)
		sT += metrics.Ratio(row.TSTotal, row.BaseTotal)
		sG += metrics.Ratio(row.TSGR, row.BaseGR)
		sD += metrics.Ratio(row.TSDR, row.BaseDR)
	}
	n := float64(len(out.Rows))
	out.AvgTotalRatio = sT / n
	out.AvgGRRatio = sG / n
	out.AvgDRRatio = sD / n
	return out, nil
}

// Render writes the table.
func (r *Table4Result) Render(w io.Writer) error {
	t := report.Table{
		Title: fmt.Sprintf("TABLE IV: Runtime breakdown (s); DR runtime is the surrogate model's; measured at %d worker(s)", r.Workers),
		Header: []string{"Benchmark", "Total", "GR", "DR",
			"Total'", "TSteiner", "GR'", "DR'"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Name,
			report.F(row.BaseTotal, 1), report.F(row.BaseGR, 1), report.F(row.BaseDR, 1),
			report.F(row.TSTotal, 1), report.F(row.TSRefine, 1), report.F(row.TSGR, 1), report.F(row.TSDR, 1))
	}
	t.AddRow("— Ratio Avg.", "1.000", "1.000", "1.000",
		report.F(r.AvgTotalRatio, 3), "", report.F(r.AvgGRRatio, 3), report.F(r.AvgDRRatio, 3))
	return t.Render(w)
}

// specByName is a small helper for tests.
func specByName(name string) synth.Spec {
	s, err := synth.BenchmarkByName(name)
	if err != nil {
		panic(fmt.Sprintf("unknown benchmark %s", name))
	}
	return s
}
