package exp

import (
	"bytes"
	"strings"
	"testing"

	"tsteiner/internal/gnn"
	"tsteiner/internal/tensor"
	"tsteiner/internal/train"
)

// miniSuite builds a fast suite: two small designs, reduced training.
func miniSuite(t *testing.T) *Suite {
	t.Helper()
	cfg := Default()
	cfg.Scale = 1.0
	cfg.Designs = []string{"spm", "usb_cdc_core"} // one train, one test design
	cfg.AugmentVariants = 1
	cfg.RandomTrials = 2
	cfg.LargeDesignTrials = 1
	cfg.Train = train.Options{Epochs: 40, LR: 1e-2, Seed: 1}
	s, err := NewSuite(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSuiteValidation(t *testing.T) {
	cfg := Default()
	cfg.Scale = 0
	if _, err := NewSuite(cfg); err == nil {
		t.Fatal("zero scale accepted")
	}
	cfg = Default()
	cfg.Designs = []string{"nope"}
	if _, err := NewSuite(cfg); err == nil {
		t.Fatal("unknown design accepted")
	}
	cfg = Default()
	s, err := NewSuite(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Specs()) != 10 {
		t.Fatalf("default suite has %d specs", len(s.Specs()))
	}
}

func TestSuiteSampleCaching(t *testing.T) {
	s := miniSuite(t)
	a, err := s.Sample("spm")
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Sample("spm")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("sample not cached")
	}
}

func TestTable1(t *testing.T) {
	s := miniSuite(t)
	r, err := s.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows=%d", len(r.Rows))
	}
	// Training rows come first.
	if !r.Rows[0].Train || r.Rows[1].Train {
		t.Fatal("train/test ordering broken")
	}
	if r.TotalTrain.CellNodes != r.Rows[0].CellNodes {
		t.Fatal("train total mismatch")
	}
	if r.TotalTest.CellNodes != r.Rows[1].CellNodes {
		t.Fatal("test total mismatch")
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "spm") || !strings.Contains(buf.String(), "Total Train") {
		t.Fatalf("render missing content:\n%s", buf.String())
	}
}

func TestTables234AndFigures(t *testing.T) {
	// One suite drives every remaining experiment so the expensive
	// model/training work happens once.
	s := miniSuite(t)

	t2, err := s.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(t2.Rows) != 2 {
		t.Fatalf("table2 rows=%d", len(t2.Rows))
	}
	for i, ratio := range t2.AvgRatio {
		if ratio <= 0 {
			t.Fatalf("avg ratio %d non-positive: %g", i, ratio)
		}
	}
	// WL should be within a few percent of baseline.
	if t2.AvgRatio[3] < 0.9 || t2.AvgRatio[3] > 1.1 {
		t.Errorf("WL ratio %g implausible", t2.AvgRatio[3])
	}

	t3, err := s.Table3()
	if err != nil {
		t.Fatal(err)
	}
	if t3.NumTrain != 1 || t3.NumTest != 1 {
		t.Fatalf("split %d/%d", t3.NumTrain, t3.NumTest)
	}
	if t3.AvgTrain.ArrivalAll < 0.5 {
		t.Errorf("train R²=%g too low", t3.AvgTrain.ArrivalAll)
	}

	t4, err := s.Table4()
	if err != nil {
		t.Fatal(err)
	}
	if len(t4.Rows) != 2 {
		t.Fatalf("table4 rows=%d", len(t4.Rows))
	}
	for _, row := range t4.Rows {
		if row.TSTotal < row.TSRefine {
			t.Fatal("total runtime below refinement runtime")
		}
		if row.BaseTotal <= 0 {
			t.Fatal("baseline runtime non-positive")
		}
	}

	f2, err := s.Figure2()
	if err != nil {
		t.Fatal(err)
	}
	if len(f2.All) != 4 { // 2 designs × 2 trials
		t.Fatalf("figure2 trials=%d", len(f2.All))
	}
	total := 0
	for _, c := range f2.Counts {
		total += c
	}
	if total != len(f2.All) {
		t.Fatal("histogram loses trials")
	}

	f5, err := s.Figure5()
	if err != nil {
		t.Fatal(err)
	}
	if len(f5.Rows) != 2 {
		t.Fatalf("figure5 rows=%d", len(f5.Rows))
	}
	for _, row := range f5.Rows {
		if row.TSteinerTNS <= 0 || row.RandomTNS <= 0 {
			t.Fatalf("non-positive ratios in %+v", row)
		}
	}

	// Rendering smoke tests.
	var buf bytes.Buffer
	for _, r := range []interface{ Render(w *bytes.Buffer) error }{} {
		_ = r
	}
	if err := t2.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if err := t3.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if err := t4.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if err := f2.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if err := f5.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"TABLE II", "TABLE III", "TABLE IV", "FIGURE 2", "FIGURE 5", "Average"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing %q", want)
		}
	}
}

func TestConsistencyStudy(t *testing.T) {
	s := miniSuite(t)
	r, err := s.Consistency([]string{"spm"}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 1 || r.Rows[0].Trials != 3 {
		t.Fatalf("rows=%+v", r.Rows)
	}
	if r.Rows[0].PearsonTNS < -1 || r.Rows[0].PearsonTNS > 1 {
		t.Fatalf("correlation %g out of range", r.Rows[0].PearsonTNS)
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Pearson") {
		t.Fatal("render broken")
	}
}

func TestPDComparison(t *testing.T) {
	s := miniSuite(t)
	r, err := s.PDComparison([]string{"spm"}, []float64{0.3, 0.7})
	if err != nil {
		t.Fatal(err)
	}
	// rsmt + 2 alphas + tsteiner + pd+tsteiner = 5 rows.
	if len(r.Rows) != 5 {
		t.Fatalf("rows=%d", len(r.Rows))
	}
	labels := map[string]bool{}
	for _, row := range r.Rows {
		labels[row.Label] = true
		if row.WL <= 0 {
			t.Fatalf("row %+v has no wirelength", row)
		}
	}
	for _, want := range []string{"rsmt (baseline)", "pd α=0.30", "pd α=0.70", "tsteiner", "pd α=0.30 + tsteiner"} {
		if !labels[want] {
			t.Fatalf("missing label %q in %v", want, labels)
		}
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestTimingDrivenRouteStudy(t *testing.T) {
	s := miniSuite(t)
	r, err := s.TimingDrivenRoute([]string{"spm", "usb_cdc_core"})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows=%d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.TDWL <= 0 || row.BaseWL <= 0 {
			t.Fatalf("missing wirelength in %+v", row)
		}
		ratio := float64(row.TDWL) / float64(row.BaseWL)
		if ratio < 0.8 || ratio > 1.2 {
			t.Fatalf("ordering changed WL implausibly: %g", ratio)
		}
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "timing-driven") {
		t.Fatal("render broken")
	}
}

func TestSteinerAwareness(t *testing.T) {
	s := miniSuite(t)
	r, err := s.SteinerAwareness()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows=%d", len(r.Rows))
	}
	for _, row := range r.Rows {
		for _, v := range []float64{row.FullAll, row.BlindAll} {
			if v > 1.000001 {
				t.Fatalf("R² above 1 in %+v", row)
			}
		}
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "blind-all") {
		t.Fatal("render broken")
	}
}

func TestNetlistOnlyModelIsPositionBlind(t *testing.T) {
	// The blind variant's predictions must not respond to Steiner moves.
	s := miniSuite(t)
	smp, err := s.Sample("spm")
	if err != nil {
		t.Fatal(err)
	}
	cfg := gnn.DefaultConfig()
	cfg.MPIters = 0
	cfg.NoSteinerFeatures = true
	m := gnn.NewModel(cfg, 3)
	pred := func(fx float64) float64 {
		f := smp.Prepared.Forest.Clone()
		xs, ys, idx := f.SteinerPositions()
		for i := range xs {
			xs[i] += fx
		}
		if err := f.SetSteinerPositions(xs, ys, idx, smp.Prepared.Design.Die); err != nil {
			t.Fatal(err)
		}
		tp := tensor.NewTape()
		x, y, err := smp.Batch.SteinerLeaves(tp, f)
		if err != nil {
			t.Fatal(err)
		}
		p, err := m.Forward(tp, smp.Batch, x, y, false)
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, v := range p.EndpointArrival.Data {
			sum += v
		}
		return sum
	}
	if a, b := pred(0), pred(9); a != b {
		t.Fatalf("blind model responded to Steiner movement: %g vs %g", a, b)
	}
}

func TestAblations(t *testing.T) {
	s := miniSuite(t)
	r, err := s.Ablations([]string{"spm"})
	if err != nil {
		t.Fatal(err)
	}
	wantVariants := len(ablationVariants())
	if len(r.Rows) != wantVariants {
		t.Fatalf("ablation rows=%d want %d", len(r.Rows), wantVariants)
	}
	seen := map[string]bool{}
	for _, row := range r.Rows {
		seen[row.Variant] = true
		if row.Iterations <= 0 {
			t.Fatalf("variant %s ran no iterations", row.Variant)
		}
	}
	if !seen["paper"] || !seen["fixed-theta"] {
		t.Fatal("missing expected variants")
	}
	var buf bytes.Buffer
	if err := r.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "ABLATIONS") {
		t.Fatal("ablation render broken")
	}
}
