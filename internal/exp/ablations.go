package exp

import (
	"io"

	"tsteiner/internal/core"
	"tsteiner/internal/flow"
	"tsteiner/internal/report"
)

// AblationRow records one refinement variant's outcome on one design.
type AblationRow struct {
	Design  string
	Variant string
	// Evaluator metrics before/after refinement.
	EvalInitTNS, EvalBestTNS float64
	// True sign-off metrics after routing the refined trees.
	TrueWNS, TrueTNS float64
	Iterations       int
	RuntimeSec       float64
}

// AblationResult compares the design choices DESIGN.md calls out:
// LSE smoothing, adaptive stepsize, best-solution tracking, and the
// Steiner message-passing depth.
type AblationResult struct {
	Rows []AblationRow
}

// ablationVariant names a configuration mutation.
type ablationVariant struct {
	name   string
	mutate func(o *core.Options)
}

func ablationVariants() []ablationVariant {
	return []ablationVariant{
		{"paper", func(o *core.Options) {}},
		{"sharp-smoothing", func(o *core.Options) { o.Gamma = 0.05 }},
		{"fixed-theta", func(o *core.Options) { o.FixedTheta = 4.0 }},
		{"always-accept", func(o *core.Options) { o.AlwaysAccept = true }},
		{"raw-gradient", func(o *core.Options) { o.RawGradient = true }},
	}
}

// Ablations runs every variant on the given designs (must be in the
// suite's benchmark set).
func (s *Suite) Ablations(designs []string) (*AblationResult, error) {
	m, err := s.Model()
	if err != nil {
		return nil, err
	}
	out := &AblationResult{}
	for _, name := range designs {
		smp, err := s.Sample(name)
		if err != nil {
			return nil, err
		}
		for _, v := range ablationVariants() {
			opt := s.cfg.Refine
			v.mutate(&opt)
			s.logf("ablation %s on %s", v.name, name)
			ref, err := core.NewRefiner(m, smp.Batch, smp.Prepared, opt)
			if err != nil {
				return nil, err
			}
			res, err := ref.Refine()
			if err != nil {
				return nil, err
			}
			rep, err := flow.Signoff(smp.Prepared, res.Forest)
			if err != nil {
				return nil, err
			}
			out.Rows = append(out.Rows, AblationRow{
				Design:      name,
				Variant:     v.name,
				EvalInitTNS: res.InitTNS,
				EvalBestTNS: res.BestTNS,
				TrueWNS:     rep.WNS,
				TrueTNS:     rep.TNS,
				Iterations:  res.Iterations,
				RuntimeSec:  res.RuntimeSec,
			})
		}
	}
	return out, nil
}

// AblationOne runs a single mutated refinement configuration on one design
// and signs off the result (the per-variant benchmark entry point).
func (s *Suite) AblationOne(design string, mutate func(*core.Options)) (*AblationRow, error) {
	m, err := s.Model()
	if err != nil {
		return nil, err
	}
	smp, err := s.Sample(design)
	if err != nil {
		return nil, err
	}
	opt := s.cfg.Refine
	mutate(&opt)
	ref, err := core.NewRefiner(m, smp.Batch, smp.Prepared, opt)
	if err != nil {
		return nil, err
	}
	res, err := ref.Refine()
	if err != nil {
		return nil, err
	}
	rep, err := flow.Signoff(smp.Prepared, res.Forest)
	if err != nil {
		return nil, err
	}
	return &AblationRow{
		Design:      design,
		Variant:     "custom",
		EvalInitTNS: res.InitTNS,
		EvalBestTNS: res.BestTNS,
		TrueWNS:     rep.WNS,
		TrueTNS:     rep.TNS,
		Iterations:  res.Iterations,
		RuntimeSec:  res.RuntimeSec,
	}, nil
}

// Render writes the ablation table.
func (r *AblationResult) Render(w io.Writer) error {
	t := report.Table{
		Title: "ABLATIONS: refinement variants (eval = model-predicted, true = routed sign-off)",
		Header: []string{"Design", "Variant", "evalTNS0", "evalTNS*",
			"trueWNS", "trueTNS", "iters", "sec"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Design, row.Variant,
			report.F(row.EvalInitTNS, 1), report.F(row.EvalBestTNS, 1),
			report.F(row.TrueWNS, 3), report.F(row.TrueTNS, 1),
			report.I(row.Iterations), report.F(row.RuntimeSec, 1))
	}
	return t.Render(w)
}
