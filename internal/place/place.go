// Package place assigns physical locations to cells and ports. It stands
// in for the commercial placement step of the paper's flow (Innovus): a
// connectivity-ordered serpentine seed placement followed by greedy
// HPWL-driven swap refinement. The result is legal by construction (one
// cell per site) and deterministic given the seed.
package place

import (
	"fmt"
	"math"
	"math/rand"

	"tsteiner/internal/geom"
	"tsteiner/internal/netlist"
)

// Options tunes the placer.
type Options struct {
	// Utilization is the fraction of sites occupied (0,1]; lower values
	// leave routing room.
	Utilization float64
	// SitePitch is the DBU spacing between adjacent sites in both axes.
	SitePitch int
	// SwapsPerCell scales the greedy refinement budget.
	SwapsPerCell int
	// Seed drives the refinement's randomness.
	Seed int64
	// Hilbert seeds sites along a Hilbert curve instead of the row
	// serpentine. A serpentine row spans the full die, so on a large die
	// a run of m connected cells is smeared into a side×(m/side) strip
	// and its nets stretch across the whole width; the Hilbert fill
	// keeps any m consecutive cells inside an O(√m)-diameter patch at
	// every die size, which is what keeps scaled (10–100×) designs
	// routable. Off by default: all recorded 1× benchmarks pin the
	// serpentine placement.
	Hilbert bool
}

// DefaultOptions returns placement settings used by all benchmarks.
func DefaultOptions() Options {
	return Options{Utilization: 0.55, SitePitch: 4, SwapsPerCell: 12, Seed: 1}
}

// Result reports placement quality.
type Result struct {
	Die       geom.BBox
	HPWLStart int64
	HPWLEnd   int64
	Sites     int // sites per side of the square site grid
}

// Place assigns positions to every cell and port of d in place and
// returns the placement report. The die is sized as a square site grid
// holding all cells at the requested utilization.
func Place(d *netlist.Design, opt Options) (*Result, error) {
	if opt.Utilization <= 0 || opt.Utilization > 1 {
		return nil, fmt.Errorf("place: utilization %g out of (0,1]", opt.Utilization)
	}
	if opt.SitePitch < 1 {
		return nil, fmt.Errorf("place: site pitch %d < 1", opt.SitePitch)
	}
	n := len(d.Cells)
	if n == 0 {
		return nil, fmt.Errorf("place: empty design")
	}
	side := int(math.Ceil(math.Sqrt(float64(n) / opt.Utilization)))
	if side < 2 {
		side = 2
	}
	die := geom.BBox{XLo: 0, YLo: 0, XHi: side * opt.SitePitch, YHi: side * opt.SitePitch}
	d.Die = die

	p := &placer{d: d, opt: opt, side: side, rng: rand.New(rand.NewSource(opt.Seed))}
	p.seed()
	start := p.totalHPWL()
	p.refine()
	end := p.totalHPWL()
	if opt.Hilbert {
		p.placePortsNear()
	} else {
		p.placePorts()
	}
	p.commitPinPositions()
	return &Result{Die: die, HPWLStart: start, HPWLEnd: end, Sites: side}, nil
}

type placer struct {
	d    *netlist.Design
	opt  Options
	side int
	rng  *rand.Rand

	// siteOf[c] is the linear site index of cell c; cellAt is the inverse
	// (netlist.NoID for empty sites).
	siteOf []int
	cellAt []netlist.CellID
	// netsOf[c] lists the nets incident to cell c.
	netsOf [][]netlist.NetID
}

func (p *placer) sitePos(site int) geom.Point {
	return geom.Point{
		X: (site % p.side) * p.opt.SitePitch,
		Y: (site / p.side) * p.opt.SitePitch,
	}
}

// seed orders cells by BFS over the net adjacency so connected cells are
// adjacent in the serpentine fill, then assigns sites row by row.
func (p *placer) seed() {
	d := p.d
	n := len(d.Cells)
	p.siteOf = make([]int, n)
	p.cellAt = make([]netlist.CellID, p.side*p.side)
	for i := range p.cellAt {
		p.cellAt[i] = netlist.NoID
	}
	p.netsOf = make([][]netlist.NetID, n)
	for ni := range d.Nets {
		net := d.Net(netlist.NetID(ni))
		touch := func(pid netlist.PinID) {
			if c := d.Pin(pid).Cell; c != netlist.NoID {
				p.netsOf[c] = append(p.netsOf[c], netlist.NetID(ni))
			}
		}
		touch(net.Driver)
		for _, s := range net.Sinks {
			touch(s)
		}
	}

	order := p.bfsOrder()
	sites := p.fillOrder()
	for i, c := range order {
		site := sites[i]
		p.siteOf[c] = site
		p.cellAt[site] = c
	}
}

// fillOrder enumerates all side² sites in the order cells are poured
// into them: row serpentine by default, Hilbert curve when requested.
func (p *placer) fillOrder() []int {
	out := make([]int, 0, p.side*p.side)
	if !p.opt.Hilbert {
		for i := 0; i < p.side*p.side; i++ {
			row := i / p.side
			col := i % p.side
			if row%2 == 1 {
				col = p.side - 1 - col // serpentine keeps neighbours close
			}
			out = append(out, row*p.side+col)
		}
		return out
	}
	// Walk the Hilbert curve of the next power-of-two square and keep
	// the points inside the die; skipping out-of-bounds points preserves
	// the curve order, so the locality guarantee survives the crop.
	n := 1
	for n < p.side {
		n *= 2
	}
	for d := 0; d < n*n; d++ {
		x, y := hilbertD2XY(n, d)
		if x < p.side && y < p.side {
			out = append(out, y*p.side+x)
		}
	}
	return out
}

// hilbertD2XY maps a distance along the Hilbert curve of an n×n grid
// (n a power of two) to grid coordinates.
func hilbertD2XY(n, d int) (x, y int) {
	for s := 1; s < n; s *= 2 {
		rx := 1 & (d / 2)
		ry := 1 & (d ^ rx)
		if ry == 0 {
			if rx == 1 {
				x = s - 1 - x
				y = s - 1 - y
			}
			x, y = y, x
		}
		x += s * rx
		y += s * ry
		d /= 4
	}
	return
}

// bfsOrder returns all cells in BFS order over net connectivity.
func (p *placer) bfsOrder() []netlist.CellID {
	d := p.d
	n := len(d.Cells)
	visited := make([]bool, n)
	order := make([]netlist.CellID, 0, n)
	var queue []netlist.CellID
	enqueue := func(c netlist.CellID) {
		if !visited[c] {
			visited[c] = true
			queue = append(queue, c)
		}
	}
	for start := 0; start < n; start++ {
		if visited[start] {
			continue
		}
		enqueue(netlist.CellID(start))
		for len(queue) > 0 {
			c := queue[0]
			queue = queue[1:]
			order = append(order, c)
			for _, ni := range p.netsOf[c] {
				net := d.Net(ni)
				if oc := d.Pin(net.Driver).Cell; oc != netlist.NoID {
					enqueue(oc)
				}
				for _, s := range net.Sinks {
					if oc := d.Pin(s).Cell; oc != netlist.NoID {
						enqueue(oc)
					}
				}
			}
		}
	}
	return order
}

// netHPWL computes a net's half-perimeter wirelength from current cell
// sites; port pins are not yet placed during refinement, so only cell pins
// contribute (ports are boundary-placed afterwards).
func (p *placer) netHPWL(ni netlist.NetID) int64 {
	d := p.d
	net := d.Net(ni)
	bb := geom.EmptyBBox()
	add := func(pid netlist.PinID) {
		if c := d.Pin(pid).Cell; c != netlist.NoID {
			bb = bb.Expand(p.sitePos(p.siteOf[c]))
		}
	}
	add(net.Driver)
	for _, s := range net.Sinks {
		add(s)
	}
	return int64(bb.HalfPerimeter())
}

func (p *placer) totalHPWL() int64 {
	var sum int64
	for ni := range p.d.Nets {
		sum += p.netHPWL(netlist.NetID(ni))
	}
	return sum
}

// refine performs greedy randomized swaps/moves accepted when the HPWL of
// incident nets improves.
func (p *placer) refine() {
	n := len(p.d.Cells)
	budget := n * p.opt.SwapsPerCell
	sites := p.side * p.side
	for it := 0; it < budget; it++ {
		c := netlist.CellID(p.rng.Intn(n))
		target := p.rng.Intn(sites)
		p.trySwap(c, target)
	}
}

// trySwap moves cell c to the target site (swapping with any occupant) if
// that does not increase the summed HPWL of affected nets.
func (p *placer) trySwap(c netlist.CellID, target int) {
	from := p.siteOf[c]
	if from == target {
		return
	}
	other := p.cellAt[target]

	affected := p.netsOf[c]
	if other != netlist.NoID {
		affected = append(append([]netlist.NetID(nil), affected...), p.netsOf[other]...)
	}
	before := p.hpwlOf(affected)

	p.apply(c, other, from, target)
	after := p.hpwlOf(affected)
	if after > before {
		p.apply(c, other, target, from) // revert
	}
}

// apply moves c to site `to`; if other is a cell it takes site `fromSite`.
func (p *placer) apply(c, other netlist.CellID, fromSite, to int) {
	p.siteOf[c] = to
	p.cellAt[to] = c
	p.cellAt[fromSite] = other
	if other != netlist.NoID {
		p.siteOf[other] = fromSite
	}
}

func (p *placer) hpwlOf(nets []netlist.NetID) int64 {
	var sum int64
	seen := map[netlist.NetID]bool{}
	for _, ni := range nets {
		if seen[ni] {
			continue
		}
		seen[ni] = true
		sum += p.netHPWL(ni)
	}
	return sum
}

// placePortsNear puts every port on the die-boundary point closest to
// the centroid of its net's placed cell pins. Index-spread ports (the
// default) are fine on a small die, but on a tiled design they hand
// each block a handful of die-spanning nets; projecting onto the
// nearest edge keeps a port next to the block it serves. Used only
// with the Hilbert fill — the 1× benchmarks pin the spread layout.
func (p *placer) placePortsNear() {
	d := p.d
	die := d.Die
	place := func(pid netlist.PinID) {
		port := d.Pin(pid)
		ni := port.Net
		if ni == netlist.NoID {
			port.Pos = geom.Point{X: die.XLo, Y: die.YLo}
			return
		}
		net := d.Net(ni)
		var sx, sy, n int
		add := func(q netlist.PinID) {
			if c := d.Pin(q).Cell; c != netlist.NoID {
				pt := p.sitePos(p.siteOf[c])
				sx += pt.X
				sy += pt.Y
				n++
			}
		}
		add(net.Driver)
		for _, s := range net.Sinks {
			add(s)
		}
		c := geom.Point{X: die.XLo, Y: die.YLo}
		if n > 0 {
			c = geom.Point{X: sx / n, Y: sy / n}
		}
		// Project onto the nearest edge; ties resolve in the fixed
		// left, right, bottom, top order so placement is deterministic.
		dl, dr := c.X-die.XLo, die.XHi-c.X
		db, dt := c.Y-die.YLo, die.YHi-c.Y
		switch {
		case dl <= dr && dl <= db && dl <= dt:
			c.X = die.XLo
		case dr <= db && dr <= dt:
			c.X = die.XHi
		case db <= dt:
			c.Y = die.YLo
		default:
			c.Y = die.YHi
		}
		port.Pos = die.Clamp(c)
	}
	for _, pid := range d.PIs {
		place(pid)
	}
	for _, pid := range d.POs {
		place(pid)
	}
}

// placePorts spreads PI pins along the left/top edges and PO pins along
// the right/bottom edges, in port order.
func (p *placer) placePorts() {
	d := p.d
	die := d.Die
	spread := func(pins []netlist.PinID, edgeA, edgeB func(i, n int) geom.Point) {
		n := len(pins)
		for i, pid := range pins {
			var pt geom.Point
			if i%2 == 0 {
				pt = edgeA(i, n)
			} else {
				pt = edgeB(i, n)
			}
			d.Pin(pid).Pos = die.Clamp(pt)
		}
	}
	w, h := die.Width(), die.Height()
	spread(d.PIs,
		func(i, n int) geom.Point { return geom.Point{X: die.XLo, Y: die.YLo + (i+1)*h/(n+1)} },
		func(i, n int) geom.Point { return geom.Point{X: die.XLo + (i+1)*w/(n+1), Y: die.YHi} },
	)
	spread(d.POs,
		func(i, n int) geom.Point { return geom.Point{X: die.XHi, Y: die.YLo + (i+1)*h/(n+1)} },
		func(i, n int) geom.Point { return geom.Point{X: die.XLo + (i+1)*w/(n+1), Y: die.YLo} },
	)
}

// commitPinPositions writes final cell positions to instances and their
// pins.
func (p *placer) commitPinPositions() {
	d := p.d
	for ci := range d.Cells {
		inst := d.Cell(netlist.CellID(ci))
		pos := p.sitePos(p.siteOf[ci])
		inst.Pos = pos
		for _, pid := range inst.Pins {
			d.Pin(pid).Pos = pos
		}
	}
}
