package place

import (
	"math"
	"testing"
)

// TestFillOrderPermutation: both fill modes enumerate every site exactly
// once, including non-power-of-two sides where the Hilbert curve is
// cropped to the die.
func TestFillOrderPermutation(t *testing.T) {
	for _, hilbert := range []bool{false, true} {
		for _, side := range []int{2, 3, 7, 16, 21, 67, 100} {
			p := &placer{opt: Options{Hilbert: hilbert}, side: side}
			order := p.fillOrder()
			if len(order) != side*side {
				t.Fatalf("hilbert=%v side=%d: %d sites enumerated", hilbert, side, len(order))
			}
			seen := make([]bool, side*side)
			for _, s := range order {
				if s < 0 || s >= side*side || seen[s] {
					t.Fatalf("hilbert=%v side=%d: site %d out of range or repeated", hilbert, side, s)
				}
				seen[s] = true
			}
		}
	}
}

// TestSerpentineFillUnchanged pins the default fill to the historical
// row serpentine: the 1× benchmark placements (and everything recorded
// on top of them) depend on it byte-for-byte.
func TestSerpentineFillUnchanged(t *testing.T) {
	side := 21
	p := &placer{opt: Options{}, side: side}
	order := p.fillOrder()
	for i, got := range order {
		row := i / side
		col := i % side
		if row%2 == 1 {
			col = side - 1 - col
		}
		if want := row*side + col; got != want {
			t.Fatalf("fill position %d: site %d, serpentine expects %d", i, got, want)
		}
	}
}

// TestHilbertFillLocality is the property the scaled designs rely on:
// any m consecutive fill positions stay inside an O(√m) patch, at every
// die size. The serpentine violates this as soon as m exceeds one row,
// which is exactly what made 100× designs unroutable.
func TestHilbertFillLocality(t *testing.T) {
	const window = 256
	for _, side := range []int{64, 212, 300} {
		p := &placer{opt: Options{Hilbert: true}, side: side}
		order := p.fillOrder()
		// A window of the uncropped curve spans O(√m); cropping to a
		// non-power-of-two die splices distant curve segments together,
		// so allow a few multiples — the serpentine fails this bound by
		// an order of magnitude (a 256-cell run spans a full 212-wide
		// row pair, half-perimeter ≈ side).
		limit := 6 * int(math.Sqrt(window))
		for start := 0; start+window <= len(order); start += window {
			xlo, ylo := side, side
			xhi, yhi := 0, 0
			for _, s := range order[start : start+window] {
				x, y := s%side, s/side
				xlo, xhi = min(xlo, x), max(xhi, x)
				ylo, yhi = min(ylo, y), max(yhi, y)
			}
			if hp := (xhi - xlo) + (yhi - ylo); hp > limit {
				t.Fatalf("side=%d window at %d spans half-perimeter %d > %d", side, start, hp, limit)
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
