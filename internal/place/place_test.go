package place

import (
	"testing"

	"tsteiner/internal/geom"
	"tsteiner/internal/lib"
	"tsteiner/internal/netlist"
	"tsteiner/internal/synth"
)

func genDesign(t *testing.T, name string, scale float64) *netlist.Design {
	t.Helper()
	spec, err := synth.BenchmarkByName(name)
	if err != nil {
		t.Fatal(err)
	}
	d, err := synth.Generate(spec.Scale(scale), lib.Default())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestPlaceBasics(t *testing.T) {
	d := genDesign(t, "spm", 1.0)
	res, err := Place(d, DefaultOptions())
	if err != nil {
		t.Fatalf("Place: %v", err)
	}
	if res.Die.Empty() {
		t.Fatal("die not set")
	}
	if d.Die != res.Die {
		t.Fatal("design die not updated")
	}
	// Every cell and port inside the die; pins co-located with cells.
	for ci := range d.Cells {
		inst := d.Cell(netlist.CellID(ci))
		if !d.Die.Contains(inst.Pos) {
			t.Fatalf("cell %s placed outside die at %v", inst.Name, inst.Pos)
		}
		for _, pid := range inst.Pins {
			if d.Pin(pid).Pos != inst.Pos {
				t.Fatalf("pin %s not co-located with cell", d.Pin(pid).Name)
			}
		}
	}
	for _, pid := range append(append([]netlist.PinID{}, d.PIs...), d.POs...) {
		if !d.Die.Contains(d.Pin(pid).Pos) {
			t.Fatalf("port %s outside die", d.Pin(pid).Name)
		}
	}
}

func TestPlaceLegality(t *testing.T) {
	d := genDesign(t, "cic_decimator", 1.0)
	if _, err := Place(d, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	seen := map[geom.Point]string{}
	for ci := range d.Cells {
		inst := d.Cell(netlist.CellID(ci))
		if prev, ok := seen[inst.Pos]; ok {
			t.Fatalf("cells %s and %s overlap at %v", prev, inst.Name, inst.Pos)
		}
		seen[inst.Pos] = inst.Name
	}
}

func TestPlaceImprovesHPWL(t *testing.T) {
	d := genDesign(t, "APU", 0.3)
	res, err := Place(d, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.HPWLEnd > res.HPWLStart {
		t.Fatalf("refinement worsened HPWL: %d -> %d", res.HPWLStart, res.HPWLEnd)
	}
	if res.HPWLEnd <= 0 {
		t.Fatal("final HPWL should be positive")
	}
}

func TestPlaceDeterministic(t *testing.T) {
	d1 := genDesign(t, "spm", 1.0)
	d2 := genDesign(t, "spm", 1.0)
	if _, err := Place(d1, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	if _, err := Place(d2, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	for ci := range d1.Cells {
		if d1.Cells[ci].Pos != d2.Cells[ci].Pos {
			t.Fatalf("cell %d placed differently across runs", ci)
		}
	}
}

func TestPlaceOptionValidation(t *testing.T) {
	d := genDesign(t, "spm", 1.0)
	bad := DefaultOptions()
	bad.Utilization = 0
	if _, err := Place(d, bad); err == nil {
		t.Fatal("zero utilization accepted")
	}
	bad = DefaultOptions()
	bad.Utilization = 1.5
	if _, err := Place(d, bad); err == nil {
		t.Fatal("utilization > 1 accepted")
	}
	bad = DefaultOptions()
	bad.SitePitch = 0
	if _, err := Place(d, bad); err == nil {
		t.Fatal("zero pitch accepted")
	}
}

func TestPlaceEmptyDesign(t *testing.T) {
	b := netlist.NewBuilder("empty", lib.Default())
	pi := b.AddPI("i")
	po := b.AddPO("o", 0.01)
	b.Connect(pi, po)
	d, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Place(d, DefaultOptions()); err == nil {
		t.Fatal("cell-less design should be rejected")
	}
}

func TestPortsOnBoundary(t *testing.T) {
	d := genDesign(t, "usb_cdc_core", 0.3)
	if _, err := Place(d, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	die := d.Die
	onEdge := func(p geom.Point) bool {
		return p.X == die.XLo || p.X == die.XHi || p.Y == die.YLo || p.Y == die.YHi
	}
	for _, pid := range append(append([]netlist.PinID{}, d.PIs...), d.POs...) {
		if !onEdge(d.Pin(pid).Pos) {
			t.Fatalf("port %s at %v not on die edge", d.Pin(pid).Name, d.Pin(pid).Pos)
		}
	}
}
