package train

import (
	"reflect"
	"testing"

	"tsteiner/internal/gnn"
)

// Augment must produce byte-identical variants (geometry and sign-off
// labels) no matter how many workers label them.
func TestAugmentWorkerCountInvariant(t *testing.T) {
	s := sample(t, "spm", 1.0, true)
	serial, err := Augment(s, 3, 10, 9, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Augment(s, 3, 10, 9, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("variant count %d vs %d", len(serial), len(parallel))
	}
	for k := range serial {
		if serial[k].Name != parallel[k].Name {
			t.Fatalf("variant %d name %q vs %q", k, serial[k].Name, parallel[k].Name)
		}
		if !reflect.DeepEqual(serial[k].Forest.Trees, parallel[k].Forest.Trees) {
			t.Fatalf("variant %d forest differs between worker counts", k)
		}
		if !reflect.DeepEqual(serial[k].Labels, parallel[k].Labels) {
			t.Fatalf("variant %d labels differ between worker counts", k)
		}
	}
}

// The gradient-accumulation training mode must land on byte-identical
// parameters for every worker count: the reduction order is the epoch
// permutation, not task completion order.
func TestAccumulateTrainWorkerCountInvariant(t *testing.T) {
	s := sample(t, "spm", 1.0, true)
	aug, err := Augment(s, 2, 10, 9, 1)
	if err != nil {
		t.Fatal(err)
	}
	samples := append([]*Sample{s}, aug...)

	trained := func(workers int) *gnn.Model {
		m := gnn.NewModel(gnn.DefaultConfig(), 5)
		opt := Options{Epochs: 8, LR: 1e-2, Seed: 1, Accumulate: true, Workers: workers}
		if _, err := Train(m, samples, opt); err != nil {
			t.Fatal(err)
		}
		return m
	}
	serial, parallel := trained(1), trained(4)
	sp, pp := serial.Params(), parallel.Params()
	for i := range sp {
		for j := range sp[i].Data {
			if sp[i].Data[j] != pp[i].Data[j] {
				t.Fatalf("param %d element %d differs: %g vs %g",
					i, j, sp[i].Data[j], pp[i].Data[j])
			}
		}
	}
}

// The accumulation mode is a different trajectory but must still learn.
func TestAccumulateTrainReducesLoss(t *testing.T) {
	s := sample(t, "spm", 1.0, true)
	m := gnn.NewModel(gnn.DefaultConfig(), 5)
	var losses []float64
	opt := Options{Epochs: 60, LR: 1e-2, Seed: 1, Accumulate: true, Workers: 2,
		Verbose: func(_ int, l float64) { losses = append(losses, l) }}
	final, err := Train(m, []*Sample{s}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if final >= losses[0] {
		t.Fatalf("accumulate training did not reduce loss: %g -> %g", losses[0], final)
	}
}
