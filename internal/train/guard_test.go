package train

import (
	"errors"
	"path/filepath"
	"testing"
	"time"

	"tsteiner/internal/gnn"
	"tsteiner/internal/guard"
	"tsteiner/internal/guard/fault"
)

func sameParams(t *testing.T, a, b *gnn.Model, label string) {
	t.Helper()
	pa, pb := a.Params(), b.Params()
	for i := range pa {
		for j := range pa[i].Data {
			if pa[i].Data[j] != pb[i].Data[j] {
				t.Fatalf("%s: param %d entry %d differs: %g vs %g", label, i, j, pa[i].Data[j], pb[i].Data[j])
			}
		}
	}
}

// TestTrainResumeByteIdentical: interrupt training after a prefix of
// epochs (checkpointing each), resume to the full epoch count, and require
// the final parameters to match an uninterrupted run exactly — in the
// sequential mode and in the accumulation mode at 1 and 4 workers.
func TestTrainResumeByteIdentical(t *testing.T) {
	s := sample(t, "spm", 1.0, true)
	const epochs = 10
	modes := []struct {
		name       string
		accumulate bool
		workers    int
	}{
		{"sequential", false, 1},
		{"accumulate-w1", true, 1},
		{"accumulate-w4", true, 4},
	}
	for _, mode := range modes {
		base := Options{Epochs: epochs, LR: 1e-2, Seed: 1, Accumulate: mode.accumulate, Workers: mode.workers}
		clean := gnn.NewModel(gnn.DefaultConfig(), 5)
		cleanLoss, err := Train(clean, []*Sample{s}, base)
		if err != nil {
			t.Fatalf("%s: %v", mode.name, err)
		}
		for _, cut := range []int{1, epochs / 2, epochs - 1} {
			path := filepath.Join(t.TempDir(), "train.ckpt")
			m := gnn.NewModel(gnn.DefaultConfig(), 5)
			iopt := base
			iopt.Epochs = cut
			iopt.CheckpointPath = path
			if _, err := Train(m, []*Sample{s}, iopt); err != nil {
				t.Fatalf("%s cut %d: %v", mode.name, cut, err)
			}
			// Resume into a FRESH model: everything must come from the
			// checkpoint, nothing from the interrupted process's memory.
			m2 := gnn.NewModel(gnn.DefaultConfig(), 5)
			ropt := base
			ropt.CheckpointPath = path
			ropt.Resume = true
			resLoss, err := Train(m2, []*Sample{s}, ropt)
			if err != nil {
				t.Fatalf("%s resume after %d: %v", mode.name, cut, err)
			}
			if resLoss != cleanLoss {
				t.Fatalf("%s resume after %d: final loss %g vs clean %g", mode.name, cut, resLoss, cleanLoss)
			}
			sameParams(t, clean, m2, mode.name)
		}
	}
}

// TestTrainNaNGuardRefusesPoisonedStep: a poisoned gradient surfaces as a
// *guard.NumericError and the refused step leaves the parameters exactly
// where the previous step put them.
func TestTrainNaNGuardRefusesPoisonedStep(t *testing.T) {
	s := sample(t, "spm", 1.0, true)
	const healthySteps = 4
	clean := gnn.NewModel(gnn.DefaultConfig(), 5)
	if _, err := Train(clean, []*Sample{s}, Options{Epochs: healthySteps, LR: 1e-2, Seed: 1}); err != nil {
		t.Fatal(err)
	}

	for _, accumulate := range []bool{false, true} {
		inj := fault.New(11)
		inj.Arm("train.nan", healthySteps+1)
		m := gnn.NewModel(gnn.DefaultConfig(), 5)
		_, err := Train(m, []*Sample{s}, Options{Epochs: 50, LR: 1e-2, Seed: 1, Accumulate: accumulate, Fault: inj})
		var ne *guard.NumericError
		if !errors.As(err, &ne) {
			t.Fatalf("accumulate=%v: got %v, want *guard.NumericError", accumulate, err)
		}
		// One sample per epoch step in both modes, so after 4 healthy
		// steps the poisoned 5th must leave params at the clean 4-step
		// state.
		sameParams(t, clean, m, "refused step")
	}
}

// TestTrainBudgetStopsAtEpochBoundary: an already-expired wall budget runs
// zero epochs and leaves the model untouched.
func TestTrainBudgetStopsAtEpochBoundary(t *testing.T) {
	s := sample(t, "spm", 1.0, true)
	m := gnn.NewModel(gnn.DefaultConfig(), 5)
	ref := gnn.NewModel(gnn.DefaultConfig(), 5)
	b := &guard.Budget{Wall: time.Nanosecond}
	b.Start()
	time.Sleep(time.Millisecond)
	epochs := 0
	_, err := Train(m, []*Sample{s}, Options{Epochs: 10, LR: 1e-2, Seed: 1, Budget: b,
		Verbose: func(int, float64) { epochs++ }})
	if err != nil {
		t.Fatal(err)
	}
	if epochs != 0 {
		t.Fatalf("expired budget still ran %d epochs", epochs)
	}
	sameParams(t, ref, m, "expired budget")
}

// TestTrainCorruptCheckpointFailsLoudly: damaged-at-rest and fault-torn
// checkpoints are both rejected with a *guard.CorruptError on resume.
func TestTrainCorruptCheckpointFailsLoudly(t *testing.T) {
	s := sample(t, "spm", 1.0, true)
	path := filepath.Join(t.TempDir(), "train.ckpt")

	inj := fault.New(3)
	inj.Arm("guard.ckpt.truncate", 3)
	m := gnn.NewModel(gnn.DefaultConfig(), 5)
	if _, err := Train(m, []*Sample{s}, Options{Epochs: 3, LR: 1e-2, Seed: 1, CheckpointPath: path, Fault: inj}); err != nil {
		t.Fatal(err)
	}
	m2 := gnn.NewModel(gnn.DefaultConfig(), 5)
	_, err := Train(m2, []*Sample{s}, Options{Epochs: 5, LR: 1e-2, Seed: 1, CheckpointPath: path, Resume: true})
	var ce *guard.CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("torn checkpoint: got %v, want *guard.CorruptError", err)
	}
}
