package train

import (
	"testing"

	"tsteiner/internal/gnn"
)

// TestGroupByBatch pins the grouping of the batched accumulation mode:
// partition by shared *gnn.Batch, group order = first appearance in the
// permutation, lane order = permutation order within the group.
func TestGroupByBatch(t *testing.T) {
	b1, b2 := &gnn.Batch{}, &gnn.Batch{}
	set := []*Sample{{Batch: b1}, {Batch: b2}, {Batch: b1}, {Batch: b2}, {Batch: b1}}
	groups := groupByBatch(set, []int{3, 0, 4, 1, 2})
	if len(groups) != 2 {
		t.Fatalf("got %d groups, want 2", len(groups))
	}
	if groups[0].batch != b2 || groups[1].batch != b1 {
		t.Fatal("group order is not first-seen order")
	}
	want0, want1 := []int{3, 1}, []int{0, 4, 2}
	for i, si := range want0 {
		if groups[0].sis[i] != si {
			t.Fatalf("group 0 lanes %v, want %v", groups[0].sis, want0)
		}
	}
	for i, si := range want1 {
		if groups[1].sis[i] != si {
			t.Fatalf("group 1 lanes %v, want %v", groups[1].sis, want1)
		}
	}
}

// The batched accumulation mode must land on byte-identical parameters
// for every worker count: group order is the permutation's first-seen
// order and each group's gradient is lane-reduced on its own tape, so
// neither scheduling nor pool contention can reorder a single addition.
func TestBatchedAccumulateWorkerCountInvariant(t *testing.T) {
	s := sample(t, "spm", 1.0, true)
	aug, err := Augment(s, 3, 10, 9, 1)
	if err != nil {
		t.Fatal(err)
	}
	samples := append([]*Sample{s}, aug...)

	trained := func(workers int) *gnn.Model {
		m := gnn.NewModel(gnn.DefaultConfig(), 5)
		opt := Options{Epochs: 8, LR: 1e-2, Seed: 1, Accumulate: true, BatchedAccumulate: true, Workers: workers}
		if _, err := Train(m, samples, opt); err != nil {
			t.Fatal(err)
		}
		return m
	}
	serial, parallel := trained(1), trained(4)
	sp, pp := serial.Params(), parallel.Params()
	for i := range sp {
		for j := range sp[i].Data {
			if sp[i].Data[j] != pp[i].Data[j] {
				t.Fatalf("param %d element %d differs: %g vs %g",
					i, j, sp[i].Data[j], pp[i].Data[j])
			}
		}
	}
}

// With every group a single lane, the fused loss graph degenerates to the
// per-sample one (ForwardBatch at K=1 is Forward, and the lane reduction
// is an identity copy), so batched accumulation must reproduce plain
// accumulation byte-for-byte.
func TestBatchedAccumulateSingleLaneMatchesAccumulate(t *testing.T) {
	s := sample(t, "spm", 1.0, true)
	trained := func(batched bool) *gnn.Model {
		m := gnn.NewModel(gnn.DefaultConfig(), 5)
		opt := Options{Epochs: 10, LR: 1e-2, Seed: 1, Accumulate: true, BatchedAccumulate: batched, Workers: 2}
		if _, err := Train(m, []*Sample{s}, opt); err != nil {
			t.Fatal(err)
		}
		return m
	}
	plain, batched := trained(false), trained(true)
	pp, bp := plain.Params(), batched.Params()
	for i := range pp {
		for j := range pp[i].Data {
			if pp[i].Data[j] != bp[i].Data[j] {
				t.Fatalf("param %d element %d differs: %g vs %g",
					i, j, pp[i].Data[j], bp[i].Data[j])
			}
		}
	}
}

// The batched accumulation trajectory must still learn.
func TestBatchedAccumulateReducesLoss(t *testing.T) {
	s := sample(t, "spm", 1.0, true)
	aug, err := Augment(s, 2, 10, 9, 1)
	if err != nil {
		t.Fatal(err)
	}
	samples := append([]*Sample{s}, aug...)
	m := gnn.NewModel(gnn.DefaultConfig(), 5)
	var losses []float64
	opt := Options{Epochs: 60, LR: 1e-2, Seed: 1, Accumulate: true, BatchedAccumulate: true, Workers: 2,
		Verbose: func(_ int, l float64) { losses = append(losses, l) }}
	final, err := Train(m, samples, opt)
	if err != nil {
		t.Fatal(err)
	}
	if final >= losses[0] {
		t.Fatalf("batched accumulate training did not reduce loss: %g -> %g", losses[0], final)
	}
}
