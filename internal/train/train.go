// Package train builds the evaluator's dataset and training loop: for each
// benchmark it runs the full baseline flow to obtain sign-off per-pin
// arrival times (the labels Innovus provides in the paper), then fits the
// GNN timing evaluator with Adam at the paper's learning rate, and scores
// R² on all pins and on endpoints only (Table III).
package train

import (
	"fmt"
	"math/rand"
	"time"

	"math"

	"tsteiner/internal/flow"
	"tsteiner/internal/gnn"
	"tsteiner/internal/guard"
	"tsteiner/internal/guard/fault"
	"tsteiner/internal/metrics"
	"tsteiner/internal/obs"
	"tsteiner/internal/par"
	"tsteiner/internal/rsmt"
	"tsteiner/internal/tensor"
)

// Sample is one design's training/testing record.
type Sample struct {
	Name     string
	Train    bool
	Prepared *flow.Prepared
	Batch    *gnn.Batch
	// Forest is the Steiner geometry this sample's labels were measured
	// on — the prepared forest for the base sample, a perturbed copy for
	// augmentation variants (same topology, different positions).
	Forest *rsmt.Forest
	// Labels are sign-off arrival times per pin; Baseline is the flow
	// report that produced them (reused as the Table II baseline).
	Labels   []float64
	Baseline *flow.Report
}

// BuildSample runs the baseline flow for one benchmark and packages it.
func BuildSample(name string, scale float64, train bool, cfg flow.Config) (*Sample, error) {
	p, err := flow.PrepareBenchmark(name, scale, cfg)
	if err != nil {
		return nil, err
	}
	rep, timing, err := flow.SignoffTiming(p, p.Forest)
	if err != nil {
		return nil, err
	}
	b, err := gnn.NewBatch(p.Design, p.Forest)
	if err != nil {
		return nil, err
	}
	return &Sample{
		Name:     name,
		Train:    train,
		Prepared: p,
		Batch:    b,
		Forest:   p.Forest,
		Labels:   gnn.Labels(timing),
		Baseline: rep,
	}, nil
}

// Augment derives `variants` additional training records from a base
// sample by randomly disturbing Steiner positions (within maxDist DBU) and
// re-running sign-off. This teaches the evaluator how timing responds to
// Steiner movement — exactly the derivative the refinement loop consumes —
// and prevents the optimizer from exploiting surrogate blind spots.
//
// The perturbed forests are drawn serially from one seeded stream (so the
// geometry is identical to the historical serial implementation), then the
// expensive sign-off labeling runs in parallel on `workers` goroutines
// (0 = GOMAXPROCS, 1 = serial). Each variant's flow run is independent, so
// the labels are byte-identical for every worker count.
func Augment(base *Sample, variants int, maxDist float64, seed int64, workers int) ([]*Sample, error) {
	rng := rand.New(rand.NewSource(seed))
	forests := make([]*rsmt.Forest, variants)
	for k := 0; k < variants; k++ {
		f := base.Prepared.Forest.Clone()
		rsmt.Perturb(f, rng, maxDist, base.Prepared.Design.Die)
		forests[k] = f
	}
	return par.Map(workers, forests, func(k int, f *rsmt.Forest) (*Sample, error) {
		_, timing, err := flow.SignoffTiming(base.Prepared, f)
		if err != nil {
			return nil, fmt.Errorf("train: augment %s #%d: %w", base.Name, k, err)
		}
		return &Sample{
			Name:     fmt.Sprintf("%s~%d", base.Name, k),
			Train:    base.Train,
			Prepared: base.Prepared,
			Batch:    base.Batch, // topology unchanged: batch is reusable
			Forest:   f,
			Labels:   gnn.Labels(timing),
		}, nil
	})
}

// Options tunes training.
type Options struct {
	Epochs int
	LR     float64 // paper: 5e-4
	Seed   int64
	// Workers bounds the goroutines used for parallel stages
	// (0 = GOMAXPROCS, 1 = serial). Training results never depend on
	// Workers: the sequential mode ignores it, and the accumulation mode
	// reduces per-sample gradients in a fixed order.
	Workers int
	// Accumulate switches from the sequential per-sample Adam trajectory
	// (the historical default, inherently serial because each step depends
	// on the previous parameters) to per-epoch gradient accumulation: all
	// per-sample gradients are computed in parallel against the same
	// parameters, summed in a fixed sample order, and applied as one Adam
	// step per epoch. A different (batch-style) trajectory, but one whose
	// result is byte-identical for every worker count.
	Accumulate bool
	// BatchedAccumulate (with Accumulate) fuses the per-sample forwards of
	// samples sharing a graph batch — Augment variants reuse the base
	// sample's batch — into one K-lane ForwardBatch per group, amortizing
	// the batch's structure tables, tape recording and op dispatch across
	// the group. The parameters join the fused tape as unbatched leaves,
	// so Backward hands each group's gradient back pre-summed over its
	// lanes; groups are then reduced in the permutation's first-seen
	// order. Yet another trajectory (group sums associate differently
	// than per-sample sums), but byte-identical for every worker count
	// (TestBatchedAccumulateWorkerCountInvariant is the gate).
	BatchedAccumulate bool
	// Verbose receives per-epoch losses when non-nil.
	Verbose func(epoch int, loss float64)
	// Obs receives the training span, per-epoch loss/grad-norm events and
	// counters (nil = telemetry off). A strict side channel: enabling it
	// never changes the trained parameters.
	Obs *obs.Sink

	// CheckpointPath, when non-empty, writes an atomic CRC-checksummed
	// snapshot of the trainer state (model parameters, Adam moments,
	// completed epochs) every CheckpointEvery epochs (default 1). With
	// Resume set, a valid checkpoint at that path is restored and training
	// continues from it — byte-identical to an uninterrupted run, because
	// the epoch-permutation RNG is fast-forwarded past the completed
	// epochs. A corrupt checkpoint is a *guard.CorruptError.
	CheckpointPath  string
	CheckpointEvery int
	Resume          bool

	// Budget bounds training by wall clock, checked at epoch boundaries:
	// on expiry the loop stops cleanly with the parameters of the last
	// completed epoch. nil = unlimited.
	Budget *guard.Budget

	// Fault is the deterministic fault injector (nil in production). The
	// "train.nan" site poisons one Adam step's reduced gradient, which the
	// finite-gradient guard must then refuse as a *guard.NumericError
	// without touching the parameters.
	Fault *fault.Injector
}

// DefaultOptions uses a learning rate scaled up from the paper's 5e-4 —
// this evaluator is far smaller than the paper's DGL model, and the higher
// rate converges to the same R² band in a fraction of the epochs.
func DefaultOptions() Options { return Options{Epochs: 150, LR: 5e-3, Seed: 1} }

// Train fits the model on the Train samples, minimizing the mean squared
// error of per-pin arrival prediction. Returns the final average loss.
func Train(m *gnn.Model, samples []*Sample, opt Options) (float64, error) {
	var trainSet []*Sample
	for _, s := range samples {
		if s.Train {
			trainSet = append(trainSet, s)
		}
	}
	if len(trainSet) == 0 {
		return 0, fmt.Errorf("train: no training samples")
	}
	if opt.Epochs <= 0 || opt.LR <= 0 {
		return 0, fmt.Errorf("train: bad options %+v", opt)
	}
	adam := tensor.NewAdam(opt.LR, m.Params())
	rng := rand.New(rand.NewSource(opt.Seed))
	span := opt.Obs.Start("train.train")
	defer span.End()
	opt.Budget.Start()
	every := opt.CheckpointEvery
	if every <= 0 {
		every = 1
	}
	startEp := 0
	last := 0.0
	if opt.Resume && opt.CheckpointPath != "" {
		st := new(trainState)
		ok, err := guard.ReadCheckpoint(opt.CheckpointPath, st)
		if err != nil {
			return 0, err
		}
		if ok {
			if st.Epoch < 0 {
				return 0, &guard.CorruptError{Path: opt.CheckpointPath, Reason: "negative epoch counter"}
			}
			if err := m.RestoreParams(st.Params); err != nil {
				return 0, &guard.CorruptError{Path: opt.CheckpointPath, Reason: "parameter shape mismatch", Err: err}
			}
			if err := adam.Restore(st.Adam); err != nil {
				return 0, &guard.CorruptError{Path: opt.CheckpointPath, Reason: "optimizer state mismatch", Err: err}
			}
			// Fast-forward the permutation stream past the completed
			// epochs, so the resumed trajectory is byte-identical to one
			// that was never interrupted.
			for ep := 0; ep < st.Epoch; ep++ {
				rng.Perm(len(trainSet))
			}
			startEp = st.Epoch
			last = st.Last
			opt.Obs.Add("train.resumes", 1)
			opt.Obs.Event("train.resume", obs.KV{K: "epoch", V: st.Epoch}, obs.KV{K: "path", V: opt.CheckpointPath})
		}
	}
	// wantGradSq gates the extra per-step gradient-norm reduction: it is
	// read-only arithmetic over already-computed gradients, so enabling
	// telemetry never changes the Adam trajectory.
	wantGradSq := opt.Obs.Enabled()
	// Pooled evaluation state, reused across epochs: the sequential
	// trajectory keeps one tensor workspace; the accumulation mode keeps
	// a pool of (clone, workspace) pairs plus per-slot gradient buffers.
	// Buffer reuse never changes results — workspace purity makes every
	// gradient a function of (parameters, sample) alone.
	var ws *tensor.Workspace
	var pool *accumPool
	if opt.Accumulate {
		pool = newAccumPool(m, len(trainSet))
	} else {
		ws = tensor.NewWorkspace()
	}
	for ep := startEp; ep < opt.Epochs; ep++ {
		if reason, over := opt.Budget.ExceededWall(); over {
			opt.Obs.Add("train.budget_cutoffs", 1)
			opt.Obs.Event("train.cutoff", obs.KV{K: "epoch", V: ep}, obs.KV{K: "reason", V: reason})
			break
		}
		epT0 := time.Now()
		order := rng.Perm(len(trainSet))
		epochLoss, epochGradSq := 0.0, 0.0
		if opt.Accumulate {
			accum := accumulateStep
			if opt.BatchedAccumulate {
				accum = accumulateStepBatched
			}
			loss, gradSq, err := accum(m, adam, trainSet, order, opt.Workers, wantGradSq, opt.Fault, pool)
			if err != nil {
				return 0, err
			}
			epochLoss = loss * float64(len(trainSet))
			epochGradSq = gradSq
		} else {
			for _, si := range order {
				s := trainSet[si]
				loss, gradSq, err := step(m, adam, s, ws, wantGradSq, opt.Fault)
				if err != nil {
					return 0, fmt.Errorf("train: %s: %w", s.Name, err)
				}
				epochLoss += loss
				epochGradSq += gradSq
			}
		}
		last = epochLoss / float64(len(trainSet))
		epochMS := float64(time.Since(epT0)) / float64(time.Millisecond)
		opt.Obs.Add("train.epochs", 1)
		opt.Obs.Observe("train.epoch_ms", epochMS)
		opt.Obs.Event("train.epoch",
			obs.KV{K: "epoch", V: ep}, obs.KV{K: "loss", V: last},
			obs.KV{K: "grad_norm", V: math.Sqrt(epochGradSq)},
			obs.KV{K: "dur_ms", V: epochMS})
		if opt.Verbose != nil {
			opt.Verbose(ep, last)
		}
		if opt.CheckpointPath != "" && (ep+1)%every == 0 {
			st := &trainState{Epoch: ep + 1, Params: m.SnapshotParams(), Adam: adam.Snapshot(), Last: last}
			if err := guard.WriteCheckpoint(opt.CheckpointPath, st, opt.Fault); err != nil {
				return 0, err
			}
		}
	}
	return last, nil
}

// trainState is the checkpointed trainer state: everything the loop carries
// across epochs except the permutation RNG, which is fast-forwarded
// deterministically on resume.
type trainState struct {
	Epoch  int
	Params [][]float64
	Adam   tensor.AdamState
	Last   float64
}

// guardGrads refuses a poisoned update: if any reduced gradient entry is
// non-finite, the Adam step must not run — the parameters stay exactly as
// they were. The "train.nan" fault site poisons one entry to prove it.
func guardGrads(params []*tensor.Tensor, inj *fault.Injector) error {
	if inj.Fire("train.nan") && len(params) > 0 && len(params[0].Grad) > 0 {
		params[0].Grad[0] = math.NaN()
	}
	for pi, p := range params {
		for _, g := range p.Grad {
			if math.IsNaN(g) || math.IsInf(g, 0) {
				return &guard.NumericError{Site: "train.step", Detail: fmt.Sprintf("non-finite gradient in parameter %d", pi)}
			}
		}
	}
	return nil
}

// evalScratch is one worker's reusable evaluation state: a model clone
// (tapes attach to parameter tensors, so clones are never shared) and a
// tensor workspace.
type evalScratch struct {
	clone *gnn.Model
	ws    *tensor.Workspace
}

// accumPool recycles evalScratch pairs and per-slot gradient buffers
// across accumulation epochs. The free list is a non-blocking buffered
// channel: a worker that finds it empty builds fresh scratch, so pool
// contention can change how many clones exist but never what any of them
// computes.
type accumPool struct {
	free chan *evalScratch
	// gradBufs[k] holds slot k's per-parameter gradient copies; slot k
	// is owned exclusively by the task at position k of the epoch's
	// permutation, then read by the fixed-order reduction.
	gradBufs [][][]float64
}

func newAccumPool(m *gnn.Model, nSlots int) *accumPool {
	p := &accumPool{free: make(chan *evalScratch, 16)}
	params := m.Params()
	p.gradBufs = make([][][]float64, nSlots)
	for k := range p.gradBufs {
		bufs := make([][]float64, len(params))
		for pi, pr := range params {
			bufs[pi] = make([]float64, pr.Len())
		}
		p.gradBufs[k] = bufs
	}
	return p
}

// get returns scratch whose clone carries m's current parameters and
// zeroed gradients.
func (p *accumPool) get(m *gnn.Model) *evalScratch {
	select {
	case sc := <-p.free:
		sc.clone.SyncParamsFrom(m)
		for _, pr := range sc.clone.Params() {
			pr.ZeroGrad()
		}
		return sc
	default:
		return &evalScratch{clone: m.Clone(), ws: tensor.NewWorkspace()}
	}
}

func (p *accumPool) put(sc *evalScratch) {
	select {
	case p.free <- sc:
	default:
	}
}

// accumulateStep computes every sample's gradient in parallel against the
// current parameters (each task on its own model clone, so tapes and
// gradient buffers are never shared), reduces the gradients in the fixed
// permutation order, and applies one Adam step. The reduction order — not
// task completion order — defines the floating-point sum, so the updated
// parameters are byte-identical for every worker count. When wantGradSq is
// set, the squared L2 norm of the reduced gradient is returned for
// telemetry (read-only; computed after the reduction, before the step).
func accumulateStep(m *gnn.Model, adam *tensor.Adam, trainSet []*Sample, order []int, workers int, wantGradSq bool, inj *fault.Injector, pool *accumPool) (float64, float64, error) {
	outs, err := par.Map(workers, order, func(k int, si int) (float64, error) {
		s := trainSet[si]
		sc := pool.get(m)
		loss, err := sampleGradInto(sc.ws.Tape(), sc.clone, s, pool.gradBufs[k])
		pool.put(sc)
		if err != nil {
			return 0, fmt.Errorf("train: %s: %w", s.Name, err)
		}
		return loss, nil
	})
	if err != nil {
		return 0, 0, err
	}
	adam.ZeroGrad()
	params := m.Params()
	total := 0.0
	for k := range outs { // fixed order: the epoch permutation
		total += outs[k]
		for pi, g := range pool.gradBufs[k] {
			p := params[pi]
			if p.Grad == nil {
				p.Grad = make([]float64, p.Len())
			}
			for j, v := range g {
				p.Grad[j] += v
			}
		}
	}
	if err := guardGrads(params, inj); err != nil {
		return 0, 0, err
	}
	gradSq := 0.0
	if wantGradSq {
		gradSq = paramGradSq(params)
	}
	adam.Step()
	return total / float64(len(order)), gradSq, nil
}

// batchGroup is one fused task of the batched accumulation mode: the
// samples (by train-set index, in permutation order) that share one graph
// batch, evaluated as lanes of a single forward.
type batchGroup struct {
	batch *gnn.Batch
	sis   []int
}

// groupByBatch partitions the epoch's permuted samples by shared
// *gnn.Batch, preserving the permutation's first-seen order — a
// deterministic function of the permutation alone, independent of
// workers (the map is lookup-only; group order comes from the slice).
func groupByBatch(trainSet []*Sample, order []int) []*batchGroup {
	var groups []*batchGroup
	byBatch := map[*gnn.Batch]*batchGroup{}
	for _, si := range order {
		b := trainSet[si].Batch
		g := byBatch[b]
		if g == nil {
			g = &batchGroup{batch: b}
			byBatch[b] = g
			groups = append(groups, g)
		}
		g.sis = append(g.sis, si)
	}
	return groups
}

// accumulateStepBatched is accumulateStep with one fused K-lane
// forward/backward per group of samples sharing a graph batch, instead of
// one forward per sample. Each group's gradient comes back pre-summed
// over its lanes (the parameters are unbatched leaves on the fused tape,
// so Backward accumulates the lanes in fixed lane order), and the
// cross-group reduction follows the permutation's first-seen group order
// — byte-identical at every worker count.
func accumulateStepBatched(m *gnn.Model, adam *tensor.Adam, trainSet []*Sample, order []int, workers int, wantGradSq bool, inj *fault.Injector, pool *accumPool) (float64, float64, error) {
	groups := groupByBatch(trainSet, order)
	outs, err := par.Map(workers, groups, func(k int, g *batchGroup) (float64, error) {
		sc := pool.get(m)
		loss, err := groupGradInto(sc.ws.Tape(), sc.clone, trainSet, g, pool.gradBufs[k])
		pool.put(sc)
		if err != nil {
			return 0, err
		}
		return loss, nil
	})
	if err != nil {
		return 0, 0, err
	}
	adam.ZeroGrad()
	params := m.Params()
	total := 0.0
	for k := range outs { // fixed order: first-seen group order
		total += outs[k]
		for pi, g := range pool.gradBufs[k] {
			p := params[pi]
			if p.Grad == nil {
				p.Grad = make([]float64, p.Len())
			}
			for j, v := range g {
				p.Grad[j] += v
			}
		}
	}
	if err := guardGrads(params, inj); err != nil {
		return 0, 0, err
	}
	gradSq := 0.0
	if wantGradSq {
		gradSq = paramGradSq(params)
	}
	adam.Step()
	return total / float64(len(order)), gradSq, nil
}

// groupGradInto runs one fused forward/backward over a group's samples —
// lane k carries sample k's Steiner coordinates and labels — and copies
// the group-summed per-parameter gradients into dst. Returns the sum of
// the group's per-sample MSE losses.
func groupGradInto(tp *tensor.Tape, m *gnn.Model, trainSet []*Sample, g *batchGroup, dst [][]float64) (float64, error) {
	lanes := len(g.sis)
	b := g.batch
	n := b.NSteiner
	nl := len(trainSet[g.sis[0]].Labels)
	cx := make([]float64, lanes*n)
	cy := make([]float64, lanes*n)
	labels := make([]float64, lanes*nl)
	for k, si := range g.sis {
		s := trainSet[si]
		if len(s.Labels) != nl {
			return 0, fmt.Errorf("train: %s: %d labels in a group expecting %d", s.Name, len(s.Labels), nl)
		}
		if err := b.FillSteinerCoords(s.Forest, cx[k*n:(k+1)*n], cy[k*n:(k+1)*n]); err != nil {
			return 0, fmt.Errorf("train: %s: %w", s.Name, err)
		}
		copy(labels[k*nl:(k+1)*nl], s.Labels)
	}
	bp, err := m.ForwardBatch(tp, b, lanes, cx, cy, true)
	if err != nil {
		return 0, err
	}
	lab, err := tp.CopyInLanes(lanes, nl, 1, labels)
	if err != nil {
		return 0, err
	}
	diff, err := tp.Sub(bp.Arrival, lab)
	if err != nil {
		return 0, err
	}
	sq, err := tp.Mul(diff, diff)
	if err != nil {
		return 0, err
	}
	sum, err := tp.Sum(sq) // per-lane 1×1: each lane's squared-error sum
	if err != nil {
		return 0, err
	}
	perLane, err := tp.Scale(sum, 1/float64(nl))
	if err != nil {
		return 0, err
	}
	if err := tensor.CheckFinite(perLane); err != nil {
		return 0, err
	}
	loss, err := tp.SumLanes(perLane)
	if err != nil {
		return 0, err
	}
	if err := tp.Backward(loss); err != nil {
		return 0, err
	}
	for i, p := range m.Params() {
		copy(dst[i], p.Grad)
	}
	return loss.Data[0], nil
}

// paramGradSq sums the squared gradient entries across parameters.
func paramGradSq(params []*tensor.Tensor) float64 {
	sq := 0.0
	for _, p := range params {
		for _, g := range p.Grad {
			sq += g * g
		}
	}
	return sq
}

// sampleGradInto runs one forward/backward on a sample and copies the
// per-parameter gradients (in Params() order) into dst — copies, because
// the model clone and its gradient buffers are recycled across tasks
// while dst survives until the epoch's reduction.
func sampleGradInto(tp *tensor.Tape, m *gnn.Model, s *Sample, dst [][]float64) (float64, error) {
	loss, err := sampleLoss(tp, m, s)
	if err != nil {
		return 0, err
	}
	if err := tp.Backward(loss); err != nil {
		return 0, err
	}
	for i, p := range m.Params() {
		copy(dst[i], p.Grad)
	}
	return loss.Data[0], nil
}

// sampleLoss builds the per-pin arrival MSE loss for one sample on tp.
func sampleLoss(tp *tensor.Tape, m *gnn.Model, s *Sample) (*tensor.Tensor, error) {
	xs, ys, err := s.Batch.SteinerLeaves(tp, s.Forest)
	if err != nil {
		return nil, err
	}
	pred, err := m.Forward(tp, s.Batch, xs, ys, true)
	if err != nil {
		return nil, err
	}
	labels, err := tp.Alias(len(s.Labels), 1, s.Labels)
	if err != nil {
		return nil, err
	}
	diff, err := tp.Sub(pred.Arrival, labels)
	if err != nil {
		return nil, err
	}
	sq, err := tp.Mul(diff, diff)
	if err != nil {
		return nil, err
	}
	sum, err := tp.Sum(sq)
	if err != nil {
		return nil, err
	}
	loss, err := tp.Scale(sum, 1/float64(len(s.Labels)))
	if err != nil {
		return nil, err
	}
	if err := tensor.CheckFinite(loss); err != nil {
		return nil, err
	}
	return loss, nil
}

// step runs one forward/backward/update on a sample and returns the loss,
// plus (when wantGradSq is set) the squared gradient norm of the step for
// telemetry. ws is the trainer's reused workspace; parameters are not
// workspace-owned, so their gradient buffers persist across resets.
func step(m *gnn.Model, adam *tensor.Adam, s *Sample, ws *tensor.Workspace, wantGradSq bool, inj *fault.Injector) (float64, float64, error) {
	tp := ws.Tape()
	adam.ZeroGrad()
	loss, err := sampleLoss(tp, m, s)
	if err != nil {
		return 0, 0, err
	}
	if err := tp.Backward(loss); err != nil {
		return 0, 0, err
	}
	if err := guardGrads(m.Params(), inj); err != nil {
		return 0, 0, err
	}
	gradSq := 0.0
	if wantGradSq {
		gradSq = paramGradSq(m.Params())
	}
	adam.Step()
	return loss.Data[0], gradSq, nil
}

// Scores holds the Table III numbers for one design.
type Scores struct {
	ArrivalAll  float64 // R² over all pins
	ArrivalEnds float64 // R² over endpoints only
}

// Evaluate scores a sample without touching gradients.
func Evaluate(m *gnn.Model, s *Sample) (Scores, error) {
	tp := tensor.NewTape()
	xs, ys, err := s.Batch.SteinerLeaves(tp, s.Forest)
	if err != nil {
		return Scores{}, err
	}
	pred, err := m.Forward(tp, s.Batch, xs, ys, false)
	if err != nil {
		return Scores{}, err
	}
	all, err := metrics.R2(s.Labels, pred.Arrival.Data)
	if err != nil {
		return Scores{}, err
	}
	var gEnds, yEnds []float64
	for i, e := range s.Batch.Endpoints {
		gEnds = append(gEnds, s.Labels[e])
		yEnds = append(yEnds, pred.EndpointArrival.Data[i])
	}
	ends, err := metrics.R2(gEnds, yEnds)
	if err != nil {
		return Scores{}, err
	}
	return Scores{ArrivalAll: all, ArrivalEnds: ends}, nil
}
