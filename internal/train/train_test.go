package train

import (
	"testing"

	"tsteiner/internal/flow"
	"tsteiner/internal/gnn"
)

func sample(t *testing.T, name string, scale float64, train bool) *Sample {
	t.Helper()
	s, err := BuildSample(name, scale, train, flow.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBuildSample(t *testing.T) {
	s := sample(t, "spm", 1.0, true)
	if len(s.Labels) != s.Prepared.Design.NumPins() {
		t.Fatalf("labels %d for %d pins", len(s.Labels), s.Prepared.Design.NumPins())
	}
	if s.Baseline == nil || s.Baseline.WNS >= 0 {
		t.Fatalf("baseline report missing or implausible: %+v", s.Baseline)
	}
	// Labels contain nonzero arrivals.
	nz := 0
	for _, v := range s.Labels {
		if v > 0 {
			nz++
		}
	}
	if nz < len(s.Labels)/4 {
		t.Fatalf("only %d of %d labels nonzero", nz, len(s.Labels))
	}
}

func TestTrainReducesLoss(t *testing.T) {
	s := sample(t, "spm", 1.0, true)
	m := gnn.NewModel(gnn.DefaultConfig(), 5)

	var losses []float64
	opt := Options{Epochs: 60, LR: 1e-2, Seed: 1, Verbose: func(_ int, l float64) {
		losses = append(losses, l)
	}}
	final, err := Train(m, []*Sample{s}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(losses) != opt.Epochs {
		t.Fatalf("verbose called %d times", len(losses))
	}
	if final >= losses[0] {
		t.Fatalf("training did not reduce loss: %g -> %g", losses[0], final)
	}
	if final > losses[0]*0.5 {
		t.Errorf("weak convergence: %g -> %g", losses[0], final)
	}
}

func TestTrainImprovesR2(t *testing.T) {
	s := sample(t, "spm", 1.0, true)
	m := gnn.NewModel(gnn.DefaultConfig(), 5)
	before, err := Evaluate(m, s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Train(m, []*Sample{s}, Options{Epochs: 120, LR: 1e-2, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	after, err := Evaluate(m, s)
	if err != nil {
		t.Fatal(err)
	}
	if after.ArrivalAll <= before.ArrivalAll {
		t.Fatalf("R² did not improve: %g -> %g", before.ArrivalAll, after.ArrivalAll)
	}
	if after.ArrivalAll < 0.7 {
		t.Errorf("train-set R²=%g too low after training", after.ArrivalAll)
	}
}

func TestTrainValidation(t *testing.T) {
	s := sample(t, "spm", 1.0, false) // test-only sample
	m := gnn.NewModel(gnn.DefaultConfig(), 5)
	if _, err := Train(m, []*Sample{s}, DefaultOptions()); err == nil {
		t.Fatal("training with no train samples accepted")
	}
	s.Train = true
	if _, err := Train(m, []*Sample{s}, Options{Epochs: 0, LR: 1e-3}); err == nil {
		t.Fatal("zero epochs accepted")
	}
	if _, err := Train(m, []*Sample{s}, Options{Epochs: 1, LR: 0}); err == nil {
		t.Fatal("zero LR accepted")
	}
}

func TestEvaluateGeneralizes(t *testing.T) {
	// Train on one small design, evaluate on another: R² on the unseen
	// design must beat the mean predictor (R² > 0), showing the evaluator
	// learns transferable physics, not a lookup table.
	tr := sample(t, "spm", 1.0, true)
	te := sample(t, "cic_decimator", 1.0, false)
	m := gnn.NewModel(gnn.DefaultConfig(), 5)
	if _, err := Train(m, []*Sample{tr}, Options{Epochs: 120, LR: 1e-2, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	sc, err := Evaluate(m, te)
	if err != nil {
		t.Fatal(err)
	}
	if sc.ArrivalAll <= 0 {
		t.Errorf("unseen-design R²=%g; evaluator failed to generalize", sc.ArrivalAll)
	}
}
