// Package drc is the detailed-routing surrogate standing in for
// TritonRoute. Full detailed routing needs track-level geometry and a
// design-rule deck that do not exist in this environment; what the
// experiments actually consume is the *coupling* between global-routing
// quality and detailed-routing outcomes. This package models exactly that
// coupling, deterministically:
//
//   - congestion hot spots (GCells over capacity, pin-dense GCells) turn
//     into design-rule violations (DRVs);
//   - congestion also costs detour wirelength and repair vias;
//   - detailed-routing runtime is dominated by DRV repair iterations, so
//     fewer violations mean faster detailed routing — the effect behind
//     the paper's Table IV speedup.
//
// All outputs are pure functions of the routed grid state and pin map, so
// flows comparing baseline vs. TSteiner see consistent, reproducible
// deltas.
package drc

import (
	"fmt"
	"math"

	"tsteiner/internal/grid"
	"tsteiner/internal/netlist"
	"tsteiner/internal/route"
)

// Options tunes the surrogate's coupling model.
type Options struct {
	// PinCapacityPerGCell is the pin count a GCell absorbs without
	// access-related violations.
	PinCapacityPerGCell int
	// DRVPerOverflow converts summed track overflow into expected DRVs.
	DRVPerOverflow float64
	// DRVPerExcessPin converts pin-capacity excess into expected DRVs.
	DRVPerExcessPin float64
	// DetourFactor scales congestion-driven detour wirelength.
	DetourFactor float64
	// Runtime model coefficients (modeled seconds).
	SecPerMMWire float64 // per 1e6 DBU of wire
	SecPerKVia   float64 // per 1000 vias
	SecPerDRV    float64 // per violation repair loop
	SecPerKPin   float64 // per 1000 pins (pin access)
}

// DefaultOptions returns coupling constants calibrated so full-scale
// benchmarks land in the same order of magnitude as the paper's Table IV.
func DefaultOptions() Options {
	return Options{
		PinCapacityPerGCell: 14,
		DRVPerOverflow:      0.010,
		DRVPerExcessPin:     0.020,
		DetourFactor:        0.03,
		SecPerMMWire:        28.0,
		SecPerKVia:          0.35,
		SecPerDRV:           2.2,
		SecPerKPin:          1.4,
	}
}

// Result is the detailed-routing report consumed by Table II/IV.
type Result struct {
	WirelengthDBU int64   // final routed wirelength
	Vias          int     // final via count
	DRVs          int     // design-rule violations remaining
	RuntimeSec    float64 // modeled detailed-routing runtime
}

// Run evaluates the surrogate on a globally routed design.
func Run(d *netlist.Design, g *grid.Grid, gr *route.Result, opt Options) (*Result, error) {
	if opt.PinCapacityPerGCell <= 0 {
		return nil, fmt.Errorf("drc: non-positive pin capacity")
	}
	// Pin density per GCell.
	pinCount := make([]int, g.W*g.H)
	for i := range d.Pins {
		x, y := g.GCellOf(d.Pins[i].Pos)
		pinCount[y*g.W+x]++
	}

	// Expected DRVs: overflow-driven plus pin-access-driven, concentrated
	// where both coincide (the cross term mirrors how pin-dense congested
	// tiles dominate real DRV maps).
	var drvExp float64
	var utilSum float64
	var utilCells int
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			of := 0
			if x < g.W-1 {
				of += g.OverflowH(x, y)
			}
			if x > 0 {
				of += g.OverflowH(x-1, y)
			}
			if y < g.H-1 {
				of += g.OverflowV(x, y)
			}
			if y > 0 {
				of += g.OverflowV(x, y-1)
			}
			excess := pinCount[y*g.W+x] - opt.PinCapacityPerGCell
			if excess < 0 {
				excess = 0
			}
			drvExp += opt.DRVPerOverflow * float64(of) / 2 // each edge seen from both sides
			drvExp += opt.DRVPerExcessPin * float64(excess)
			if of > 0 && excess > 0 {
				drvExp += 0.05 * math.Sqrt(float64(of)*float64(excess))
			}
			utilSum += g.CongestionAt(g.Center(x, y))
			utilCells++
		}
	}
	drvs := int(math.Round(drvExp))

	// Detour: congested regions cost extra jogs proportional to average
	// utilization, plus a fixed intra-GCell jog per sink pin.
	avgUtil := 0.0
	if utilCells > 0 {
		avgUtil = utilSum / float64(utilCells)
	}
	sinkPins := 0
	for ni := range d.Nets {
		sinkPins += len(d.Nets[ni].Sinks)
	}
	detour := float64(gr.WirelengthDBU) * opt.DetourFactor * avgUtil
	wl := gr.WirelengthDBU + int64(detour) + int64(2*sinkPins)

	// Vias: global-routing vias plus two repair vias per DRV fixed.
	vias := gr.Vias + 2*drvs

	rt := float64(wl)/1e6*opt.SecPerMMWire +
		float64(vias)/1e3*opt.SecPerKVia +
		float64(drvs)*opt.SecPerDRV +
		float64(len(d.Pins))/1e3*opt.SecPerKPin

	return &Result{
		WirelengthDBU: wl,
		Vias:          vias,
		DRVs:          drvs,
		RuntimeSec:    rt,
	}, nil
}
