package drc

import (
	"testing"

	"tsteiner/internal/grid"
	"tsteiner/internal/lib"
	"tsteiner/internal/netlist"
	"tsteiner/internal/place"
	"tsteiner/internal/route"
	"tsteiner/internal/rsmt"
	"tsteiner/internal/synth"
)

func fixture(t *testing.T, caps []int) (*netlist.Design, *grid.Grid, *route.Result) {
	t.Helper()
	spec, err := synth.BenchmarkByName("APU")
	if err != nil {
		t.Fatal(err)
	}
	d, err := synth.Generate(spec.Scale(0.3), lib.Default())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := place.Place(d, place.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	f, err := rsmt.BuildAll(d, rsmt.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	g, err := grid.New(d.Die, 8, caps)
	if err != nil {
		t.Fatal(err)
	}
	gr, err := route.Route(d, f, g, route.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return d, g, gr
}

func TestRunBasics(t *testing.T) {
	d, g, gr := fixture(t, []int{4, 6, 6, 5, 5})
	res, err := Run(d, g, gr, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.WirelengthDBU < gr.WirelengthDBU {
		t.Fatal("detailed wirelength below global wirelength")
	}
	if res.Vias < gr.Vias {
		t.Fatal("detailed vias below global vias")
	}
	if res.DRVs < 0 {
		t.Fatal("negative DRVs")
	}
	if res.RuntimeSec <= 0 {
		t.Fatal("non-positive runtime")
	}
}

func TestRunDeterministic(t *testing.T) {
	d, g, gr := fixture(t, []int{4, 6, 6, 5, 5})
	a, err := Run(d, g, gr, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(d, g, gr, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestMoreCongestionMoreDRVs(t *testing.T) {
	_, gTight, grTight := fixture(t, []int{0, 4, 4, 3, 3})
	dT, _, _ := fixture(t, []int{0, 4, 4, 3, 3})
	resTight, err := Run(dT, gTight, grTight, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	dL, gLoose, grLoose := fixture(t, []int{0, 12, 12, 10, 10})
	resLoose, err := Run(dL, gLoose, grLoose, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if resTight.DRVs <= resLoose.DRVs {
		t.Fatalf("tight grid DRVs (%d) should exceed loose grid DRVs (%d)",
			resTight.DRVs, resLoose.DRVs)
	}
	if resTight.RuntimeSec <= resLoose.RuntimeSec {
		t.Fatalf("tight grid runtime (%f) should exceed loose (%f)",
			resTight.RuntimeSec, resLoose.RuntimeSec)
	}
}

func TestDRVsScaleWithSecPerDRV(t *testing.T) {
	d, g, gr := fixture(t, []int{0, 4, 4, 3, 3})
	opt := DefaultOptions()
	base, err := Run(d, g, gr, opt)
	if err != nil {
		t.Fatal(err)
	}
	if base.DRVs == 0 {
		t.Skip("no DRVs in this configuration")
	}
	opt.SecPerDRV *= 2
	heavy, err := Run(d, g, gr, opt)
	if err != nil {
		t.Fatal(err)
	}
	wantDelta := float64(base.DRVs) * DefaultOptions().SecPerDRV
	gotDelta := heavy.RuntimeSec - base.RuntimeSec
	if diff := gotDelta - wantDelta; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("runtime delta %f want %f", gotDelta, wantDelta)
	}
}

func TestOptionValidation(t *testing.T) {
	d, g, gr := fixture(t, []int{4, 6, 6, 5, 5})
	opt := DefaultOptions()
	opt.PinCapacityPerGCell = 0
	if _, err := Run(d, g, gr, opt); err == nil {
		t.Fatal("zero pin capacity accepted")
	}
}
