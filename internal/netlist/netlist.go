// Package netlist defines the in-memory design model shared by every stage
// of the flow: cell instances bound to library masters, nets with a single
// driver and multiple sinks, and the pin-level timing graph with its two
// edge kinds (net edges: driver→sink; cell edges: input→output arc), the
// same heterogeneous structure the paper's netlist graph uses.
package netlist

import (
	"fmt"

	"tsteiner/internal/geom"
	"tsteiner/internal/lib"
)

// Identifiers are dense indices into the Design's slices so that per-pin
// state elsewhere in the flow can live in flat arrays.
type (
	// PinID indexes Design.Pins.
	PinID int32
	// CellID indexes Design.Cells.
	CellID int32
	// NetID indexes Design.Nets.
	NetID int32
)

// NoID marks an unset reference (a port's cell, an unconnected pin's net).
const NoID = -1

// Dir is the signal direction of a pin, seen from the pin's owner: a cell
// output pin and a primary-input port both *drive* nets, so both are Output.
type Dir uint8

// Pin directions.
const (
	Input Dir = iota
	Output
)

// Pin is one vertex of the timing graph.
type Pin struct {
	Name   string
	Cell   CellID // NoID for ports
	Net    NetID  // NoID while unconnected
	Dir    Dir
	IsPort bool
	// PortCap is the external load (pF) seen at a primary output, or the
	// pin capacitance of a cell input. Driver pins have zero cap.
	Cap float64
	// Pos is the placed location in DBU. Ports are placed on the die
	// boundary; cell pins share their instance's location (cells in this
	// model are point-sized at global-routing resolution).
	Pos geom.Point
}

// Inst is a placed instance of a library master.
type Inst struct {
	Name   string
	Master *lib.Cell
	// Pins lists the instance's pin IDs in master order: Inputs... then
	// the output pin last.
	Pins []PinID
	Pos  geom.Point
}

// OutputPin returns the instance's output pin ID.
func (c *Inst) OutputPin() PinID { return c.Pins[len(c.Pins)-1] }

// InputPins returns the instance's input pin IDs in master order.
func (c *Inst) InputPins() []PinID { return c.Pins[:len(c.Pins)-1] }

// Net connects one driver pin to one or more sink pins.
type Net struct {
	Name   string
	Driver PinID
	Sinks  []PinID
}

// NumPins returns the total pin count of the net including the driver.
func (n *Net) NumPins() int { return 1 + len(n.Sinks) }

// Design is a complete gate-level design: library binding, instances,
// nets, ports, and physical context (die area, clock constraint).
type Design struct {
	Name  string
	Lib   *lib.Library
	Cells []Inst
	Nets  []Net
	Pins  []Pin
	// PIs and POs are the primary input / output port pins.
	PIs, POs []PinID
	// Die is the placement/routing region in DBU.
	Die geom.BBox
	// ClockPeriod is the timing constraint (ns) for all paths.
	ClockPeriod float64
}

// Pin returns the pin record for id.
func (d *Design) Pin(id PinID) *Pin { return &d.Pins[id] }

// Cell returns the instance record for id.
func (d *Design) Cell(id CellID) *Inst { return &d.Cells[id] }

// Net returns the net record for id.
func (d *Design) Net(id NetID) *Net { return &d.Nets[id] }

// NumPins returns the number of pins in the design.
func (d *Design) NumPins() int { return len(d.Pins) }

// IsStartpoint reports whether pin id launches timing paths: a primary
// input or a register output (Q).
func (d *Design) IsStartpoint(id PinID) bool {
	p := d.Pin(id)
	if p.IsPort {
		return p.Dir == Output // PI drives into the design
	}
	if p.Dir != Output {
		return false
	}
	return d.Cell(p.Cell).Master.Sequential
}

// IsEndpoint reports whether pin id terminates timing paths: a primary
// output or a register data input (D).
func (d *Design) IsEndpoint(id PinID) bool {
	p := d.Pin(id)
	if p.IsPort {
		return p.Dir == Input // PO receives from the design
	}
	if p.Dir != Input {
		return false
	}
	inst := d.Cell(p.Cell)
	if !inst.Master.Sequential {
		return false
	}
	return d.pinMasterName(id) == "D"
}

// pinMasterName returns the master pin name ("A", "D", "CK", ...) of a
// cell pin.
func (d *Design) pinMasterName(id PinID) string {
	p := d.Pin(id)
	inst := d.Cell(p.Cell)
	for i, pid := range inst.Pins {
		if pid == id {
			if i == len(inst.Pins)-1 {
				return inst.Master.Output
			}
			return inst.Master.Inputs[i]
		}
	}
	return ""
}

// MasterPinName exposes pinMasterName for other packages (STA needs arc
// lookup by library pin name).
func (d *Design) MasterPinName(id PinID) string { return d.pinMasterName(id) }

// Endpoints returns all timing endpoints (register D pins and POs) in
// pin-ID order. The count matches the paper's "# Endpoints" column.
func (d *Design) Endpoints() []PinID {
	var out []PinID
	for id := range d.Pins {
		if d.IsEndpoint(PinID(id)) {
			out = append(out, PinID(id))
		}
	}
	return out
}

// Startpoints returns all timing startpoints (PIs and register Q pins).
func (d *Design) Startpoints() []PinID {
	var out []PinID
	for id := range d.Pins {
		if d.IsStartpoint(PinID(id)) {
			out = append(out, PinID(id))
		}
	}
	return out
}

// Stats summarizes the design for Table I reporting.
type Stats struct {
	CellNodes int // cell instances
	NetEdges  int // driver→sink edges over all signal nets
	CellEdges int // input→output timing arcs over all instances
	Endpoints int // timing path endpoints
}

// Stats computes the Table I statistics of the netlist (the Steiner-node
// count is added later, once trees are built).
func (d *Design) Stats() Stats {
	var s Stats
	s.CellNodes = len(d.Cells)
	for i := range d.Nets {
		s.NetEdges += len(d.Nets[i].Sinks)
	}
	for i := range d.Cells {
		m := d.Cells[i].Master
		if m.Sequential {
			s.CellEdges++ // CK→Q
		} else {
			s.CellEdges += len(m.Inputs)
		}
	}
	s.Endpoints = len(d.Endpoints())
	return s
}

// Validate checks structural invariants of the design and returns the
// first violation found:
//   - every net has a valid driver pin with Output direction,
//   - every sink is an Input pin and its Net back-reference matches,
//   - every cell input pin is connected to some net,
//   - pin/cell cross-references are consistent.
func (d *Design) Validate() error {
	for ni := range d.Nets {
		net := &d.Nets[ni]
		if net.Driver < 0 || int(net.Driver) >= len(d.Pins) {
			return fmt.Errorf("netlist: net %q has invalid driver", net.Name)
		}
		dp := d.Pin(net.Driver)
		if dp.Dir != Output {
			return fmt.Errorf("netlist: net %q driven by non-output pin %q", net.Name, dp.Name)
		}
		if dp.Net != NetID(ni) {
			return fmt.Errorf("netlist: driver %q of net %q has mismatched net ref", dp.Name, net.Name)
		}
		if len(net.Sinks) == 0 {
			return fmt.Errorf("netlist: net %q has no sinks", net.Name)
		}
		for _, s := range net.Sinks {
			if s < 0 || int(s) >= len(d.Pins) {
				return fmt.Errorf("netlist: net %q has invalid sink", net.Name)
			}
			sp := d.Pin(s)
			if sp.Dir != Input {
				return fmt.Errorf("netlist: net %q sink %q is not an input", net.Name, sp.Name)
			}
			if sp.Net != NetID(ni) {
				return fmt.Errorf("netlist: sink %q of net %q has mismatched net ref", sp.Name, net.Name)
			}
		}
	}
	for ci := range d.Cells {
		inst := &d.Cells[ci]
		want := len(inst.Master.Inputs) + 1
		if len(inst.Pins) != want {
			return fmt.Errorf("netlist: cell %q has %d pins, master %q wants %d",
				inst.Name, len(inst.Pins), inst.Master.Name, want)
		}
		for i, pid := range inst.Pins {
			p := d.Pin(pid)
			if p.Cell != CellID(ci) {
				return fmt.Errorf("netlist: pin %q cell back-reference broken", p.Name)
			}
			isOut := i == len(inst.Pins)-1
			if isOut && p.Dir != Output || !isOut && p.Dir != Input {
				return fmt.Errorf("netlist: pin %q direction mismatch", p.Name)
			}
			// Clock pins of registers may stay unconnected (ideal clock);
			// every other input must be driven.
			if !isOut && p.Net == NoID {
				if !(inst.Master.Sequential && inst.Master.Inputs[i] == "CK") {
					return fmt.Errorf("netlist: input pin %q unconnected", p.Name)
				}
			}
		}
	}
	return nil
}
