package netlist

import (
	"fmt"

	"tsteiner/internal/geom"
	"tsteiner/internal/lib"
)

// Builder constructs a Design incrementally. It is the single entry point
// used by the synthetic benchmark generator, the examples and the tests,
// so every design in the repository shares the same wiring conventions.
type Builder struct {
	d       *Design
	netSeq  int
	errOnce error
}

// NewBuilder starts a design bound to the given library.
func NewBuilder(name string, l *lib.Library) *Builder {
	return &Builder{d: &Design{
		Name:        name,
		Lib:         l,
		ClockPeriod: l.ClockPeriod,
	}}
}

func (b *Builder) addPin(p Pin) PinID {
	id := PinID(len(b.d.Pins))
	b.d.Pins = append(b.d.Pins, p)
	return id
}

// AddPI adds a primary input port. The returned pin drives nets.
func (b *Builder) AddPI(name string) PinID {
	id := b.addPin(Pin{Name: name, Cell: NoID, Net: NoID, Dir: Output, IsPort: true})
	b.d.PIs = append(b.d.PIs, id)
	return id
}

// AddPO adds a primary output port with the given external load (pF). The
// returned pin is a net sink and a timing endpoint.
func (b *Builder) AddPO(name string, cap float64) PinID {
	id := b.addPin(Pin{Name: name, Cell: NoID, Net: NoID, Dir: Input, IsPort: true, Cap: cap})
	b.d.POs = append(b.d.POs, id)
	return id
}

// AddCell instantiates a library master, creating its pins. Returns the
// new cell ID; pin IDs are recovered via the instance's Pins slice.
func (b *Builder) AddCell(name, master string) CellID {
	m, err := b.d.Lib.Cell(master)
	if err != nil {
		b.fail(err)
		// Fall back to any cell so construction can continue; Finish will
		// report the recorded error.
		for _, c := range b.d.Lib.Cells {
			m = c
			break
		}
	}
	cid := CellID(len(b.d.Cells))
	inst := Inst{Name: name, Master: m}
	for _, in := range m.Inputs {
		pid := b.addPin(Pin{
			Name: name + "/" + in,
			Cell: cid, Net: NoID, Dir: Input,
			Cap: m.InputCap[in],
		})
		inst.Pins = append(inst.Pins, pid)
	}
	out := b.addPin(Pin{Name: name + "/" + m.Output, Cell: cid, Net: NoID, Dir: Output})
	inst.Pins = append(inst.Pins, out)
	b.d.Cells = append(b.d.Cells, inst)
	return cid
}

// Connect creates a net from a driver pin to one or more sinks. The driver
// must be an Output-direction pin (cell output or PI); each sink an
// Input-direction pin (cell input or PO) not already connected.
func (b *Builder) Connect(driver PinID, sinks ...PinID) NetID {
	if len(sinks) == 0 {
		b.fail(fmt.Errorf("netlist: net from %q needs at least one sink", b.d.Pin(driver).Name))
		return NoID
	}
	nid := NetID(len(b.d.Nets))
	dp := b.d.Pin(driver)
	if dp.Dir != Output {
		b.fail(fmt.Errorf("netlist: %q cannot drive a net", dp.Name))
	}
	if dp.Net != NoID {
		b.fail(fmt.Errorf("netlist: driver %q already drives net %d", dp.Name, dp.Net))
	}
	dp.Net = nid
	net := Net{Name: fmt.Sprintf("n%d", b.netSeq), Driver: driver}
	b.netSeq++
	for _, s := range sinks {
		sp := b.d.Pin(s)
		if sp.Dir != Input {
			b.fail(fmt.Errorf("netlist: %q cannot be a net sink", sp.Name))
		}
		if sp.Net != NoID {
			b.fail(fmt.Errorf("netlist: sink %q already connected", sp.Name))
		}
		sp.Net = nid
		net.Sinks = append(net.Sinks, s)
	}
	b.d.Nets = append(b.d.Nets, net)
	return nid
}

// SetDie sets the placement/routing region.
func (b *Builder) SetDie(die geom.BBox) { b.d.Die = die }

// SetClockPeriod overrides the library default constraint.
func (b *Builder) SetClockPeriod(ns float64) { b.d.ClockPeriod = ns }

// Design returns the under-construction design for read access: callers
// wiring a netlist need to look up the pins of cells they just created.
// The returned pointer aliases the builder's state; mutate only through
// builder methods.
func (b *Builder) Design() *Design { return b.d }

func (b *Builder) fail(err error) {
	if b.errOnce == nil {
		b.errOnce = err
	}
}

// Finish validates and returns the constructed design.
func (b *Builder) Finish() (*Design, error) {
	if b.errOnce != nil {
		return nil, b.errOnce
	}
	if err := b.d.Validate(); err != nil {
		return nil, err
	}
	if _, err := b.d.TopoOrder(); err != nil {
		return nil, err
	}
	return b.d, nil
}

// TopoOrder returns all pins in a topological order of the timing graph
// (net edges driver→sink, cell arcs input→output for combinational cells;
// registers cut the graph: no D→Q edge). It returns an error if the design
// contains a combinational loop.
func (d *Design) TopoOrder() ([]PinID, error) {
	n := len(d.Pins)
	indeg := make([]int32, n)
	// Successor adjacency in compressed form.
	succCount := make([]int32, n)
	count := func(from PinID) { succCount[from]++ }
	d.forEachEdge(func(from, to PinID) {
		count(from)
		indeg[to]++
	})
	offsets := make([]int32, n+1)
	for i := 0; i < n; i++ {
		offsets[i+1] = offsets[i] + succCount[i]
	}
	succ := make([]PinID, offsets[n])
	fill := make([]int32, n)
	d.forEachEdge(func(from, to PinID) {
		succ[offsets[from]+fill[from]] = to
		fill[from]++
	})

	order := make([]PinID, 0, n)
	queue := make([]PinID, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, PinID(i))
		}
	}
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		order = append(order, p)
		for _, s := range succ[offsets[p]:offsets[p+1]] {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, s)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("netlist: combinational loop detected (%d of %d pins ordered)", len(order), n)
	}
	return order, nil
}

// forEachEdge visits every timing-graph edge once.
func (d *Design) forEachEdge(visit func(from, to PinID)) {
	for ni := range d.Nets {
		net := &d.Nets[ni]
		for _, s := range net.Sinks {
			visit(net.Driver, s)
		}
	}
	for ci := range d.Cells {
		inst := &d.Cells[ci]
		out := inst.OutputPin()
		if inst.Master.Sequential {
			// Only the CK→Q arc exists, and with an ideal clock the CK pin
			// has no predecessor; model the launch as a source at Q by
			// emitting no edge (Q starts a new path).
			continue
		}
		for _, in := range inst.InputPins() {
			visit(in, out)
		}
	}
}

// FanoutEdges returns, for each pin, the list of successor pins in the
// timing graph. Used by graph-construction code in the learning stack.
func (d *Design) FanoutEdges() [][]PinID {
	out := make([][]PinID, len(d.Pins))
	d.forEachEdge(func(from, to PinID) {
		out[from] = append(out[from], to)
	})
	return out
}

// FaninEdges returns, for each pin, the list of predecessor pins.
func (d *Design) FaninEdges() [][]PinID {
	in := make([][]PinID, len(d.Pins))
	d.forEachEdge(func(from, to PinID) {
		in[to] = append(in[to], from)
	})
	return in
}
