package netlist

import (
	"testing"

	"tsteiner/internal/geom"
	"tsteiner/internal/lib"
)

// buildChain makes PI -> INV -> INV -> PO, a minimal legal design.
func buildChain(t *testing.T) *Design {
	t.Helper()
	b := NewBuilder("chain", lib.Default())
	pi := b.AddPI("in")
	c1 := b.AddCell("u1", "INV_X1")
	c2 := b.AddCell("u2", "INV_X1")
	po := b.AddPO("out", 0.01)
	d := b.design()
	b.Connect(pi, d.Cell(c1).InputPins()[0])
	b.Connect(d.Cell(c1).OutputPin(), d.Cell(c2).InputPins()[0])
	b.Connect(d.Cell(c2).OutputPin(), po)
	b.SetDie(geom.BBox{XLo: 0, YLo: 0, XHi: 100, YHi: 100})
	out, err := b.Finish()
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return out
}

// design exposes the under-construction design to tests in this package.
func (b *Builder) design() *Design { return b.d }

func TestBuilderChain(t *testing.T) {
	d := buildChain(t)
	if len(d.Cells) != 2 || len(d.Nets) != 3 {
		t.Fatalf("got %d cells %d nets", len(d.Cells), len(d.Nets))
	}
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	s := d.Stats()
	if s.CellNodes != 2 || s.NetEdges != 3 || s.CellEdges != 2 || s.Endpoints != 1 {
		t.Fatalf("Stats=%+v", s)
	}
}

func TestTopoOrderRespectsEdges(t *testing.T) {
	d := buildChain(t)
	order, err := d.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[PinID]int, len(order))
	for i, p := range order {
		pos[p] = i
	}
	d.forEachEdge(func(from, to PinID) {
		if pos[from] >= pos[to] {
			t.Errorf("edge %q->%q violates topo order",
				d.Pin(from).Name, d.Pin(to).Name)
		}
	})
	if len(order) != d.NumPins() {
		t.Fatalf("order covers %d of %d pins", len(order), d.NumPins())
	}
}

func TestCombinationalLoopDetected(t *testing.T) {
	b := NewBuilder("loop", lib.Default())
	c1 := b.AddCell("u1", "INV_X1")
	c2 := b.AddCell("u2", "INV_X1")
	d := b.design()
	b.Connect(d.Cell(c1).OutputPin(), d.Cell(c2).InputPins()[0])
	b.Connect(d.Cell(c2).OutputPin(), d.Cell(c1).InputPins()[0])
	if _, err := b.Finish(); err == nil {
		t.Fatal("expected combinational-loop error")
	}
}

func TestRegisterCutsLoop(t *testing.T) {
	// INV feeding a DFF whose Q feeds back into the INV is sequential,
	// not a combinational loop, and must be accepted.
	b := NewBuilder("seqloop", lib.Default())
	inv := b.AddCell("u1", "INV_X1")
	dff := b.AddCell("r1", "DFF_X1")
	d := b.design()
	dPin := d.Cell(dff).InputPins()[0] // D
	b.Connect(d.Cell(inv).OutputPin(), dPin)
	b.Connect(d.Cell(dff).OutputPin(), d.Cell(inv).InputPins()[0])
	out, err := b.Finish()
	if err != nil {
		t.Fatalf("sequential loop rejected: %v", err)
	}
	if !out.IsEndpoint(dPin) {
		t.Error("DFF D pin should be an endpoint")
	}
	if !out.IsStartpoint(out.Cell(dff).OutputPin()) {
		t.Error("DFF Q pin should be a startpoint")
	}
}

func TestStartAndEndpoints(t *testing.T) {
	d := buildChain(t)
	starts := d.Startpoints()
	ends := d.Endpoints()
	if len(starts) != 1 || d.Pin(starts[0]).Name != "in" {
		t.Errorf("startpoints=%v", starts)
	}
	if len(ends) != 1 || d.Pin(ends[0]).Name != "out" {
		t.Errorf("endpoints=%v", ends)
	}
	// A combinational cell's pins are neither start- nor endpoints.
	u1out := d.Cell(0).OutputPin()
	if d.IsStartpoint(u1out) || d.IsEndpoint(u1out) {
		t.Error("INV output misclassified")
	}
}

func TestConnectErrors(t *testing.T) {
	l := lib.Default()

	t.Run("no sinks", func(t *testing.T) {
		b := NewBuilder("x", l)
		pi := b.AddPI("in")
		b.Connect(pi)
		if _, err := b.Finish(); err == nil {
			t.Fatal("expected error for sinkless net")
		}
	})
	t.Run("double drive", func(t *testing.T) {
		b := NewBuilder("x", l)
		pi := b.AddPI("in")
		po1 := b.AddPO("o1", 0.01)
		po2 := b.AddPO("o2", 0.01)
		b.Connect(pi, po1)
		b.Connect(pi, po2)
		if _, err := b.Finish(); err == nil {
			t.Fatal("expected error for driver reuse")
		}
	})
	t.Run("double sink", func(t *testing.T) {
		b := NewBuilder("x", l)
		pi1 := b.AddPI("i1")
		pi2 := b.AddPI("i2")
		po := b.AddPO("o", 0.01)
		b.Connect(pi1, po)
		b.Connect(pi2, po)
		if _, err := b.Finish(); err == nil {
			t.Fatal("expected error for sink reuse")
		}
	})
	t.Run("input as driver", func(t *testing.T) {
		b := NewBuilder("x", l)
		po := b.AddPO("o", 0.01)
		pi := b.AddPI("i")
		b.Connect(po, pi)
		if _, err := b.Finish(); err == nil {
			t.Fatal("expected error for input-direction driver")
		}
	})
	t.Run("unknown master", func(t *testing.T) {
		b := NewBuilder("x", l)
		b.AddCell("u1", "BOGUS_CELL")
		if _, err := b.Finish(); err == nil {
			t.Fatal("expected error for unknown master")
		}
	})
	t.Run("unconnected input", func(t *testing.T) {
		b := NewBuilder("x", l)
		c := b.AddCell("u1", "INV_X1")
		po := b.AddPO("o", 0.01)
		d := b.design()
		b.Connect(d.Cell(c).OutputPin(), po)
		if _, err := b.Finish(); err == nil {
			t.Fatal("expected error for floating input")
		}
	})
}

func TestUnconnectedClockAllowed(t *testing.T) {
	// Ideal-clock convention: a DFF's CK pin may float.
	b := NewBuilder("x", lib.Default())
	pi := b.AddPI("in")
	dff := b.AddCell("r1", "DFF_X1")
	po := b.AddPO("out", 0.01)
	d := b.design()
	b.Connect(pi, d.Cell(dff).InputPins()[0]) // D
	b.Connect(d.Cell(dff).OutputPin(), po)
	if _, err := b.Finish(); err != nil {
		t.Fatalf("floating CK rejected: %v", err)
	}
}

func TestFanoutFaninEdges(t *testing.T) {
	d := buildChain(t)
	fan := d.FanoutEdges()
	fin := d.FaninEdges()
	var fwd, bwd int
	for _, ss := range fan {
		fwd += len(ss)
	}
	for _, ss := range fin {
		bwd += len(ss)
	}
	if fwd != bwd {
		t.Fatalf("edge count mismatch: fanout %d fanin %d", fwd, bwd)
	}
	// chain: 3 net edges + 2 cell arcs = 5.
	if fwd != 5 {
		t.Fatalf("edges=%d want 5", fwd)
	}
	// Every fanout edge appears as a fanin edge.
	for from, ss := range fan {
		for _, to := range ss {
			found := false
			for _, f := range fin[to] {
				if f == PinID(from) {
					found = true
				}
			}
			if !found {
				t.Fatalf("edge %d->%d missing from fanin", from, to)
			}
		}
	}
}

func TestMasterPinName(t *testing.T) {
	d := buildChain(t)
	inst := d.Cell(0)
	if got := d.MasterPinName(inst.InputPins()[0]); got != "A" {
		t.Errorf("input master name=%q want A", got)
	}
	if got := d.MasterPinName(inst.OutputPin()); got != "Z" {
		t.Errorf("output master name=%q want Z", got)
	}
}

func TestNetNumPins(t *testing.T) {
	d := buildChain(t)
	for i := range d.Nets {
		n := d.Net(NetID(i))
		if n.NumPins() != 1+len(n.Sinks) {
			t.Errorf("net %s NumPins mismatch", n.Name)
		}
	}
}
