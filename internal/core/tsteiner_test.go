package core

import (
	"math"
	"testing"

	"tsteiner/internal/flow"
	"tsteiner/internal/gnn"
	"tsteiner/internal/train"
)

// fixture prepares a trained refiner on spm (small, violating design).
func fixture(t *testing.T) (*Refiner, *train.Sample) {
	t.Helper()
	s, err := train.BuildSample("spm", 1.0, true, flow.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := gnn.NewModel(gnn.DefaultConfig(), 5)
	if _, err := train.Train(m, []*train.Sample{s}, train.Options{Epochs: 120, LR: 1e-2, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	r, err := NewRefiner(m, s.Batch, s.Prepared, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return r, s
}

func TestHardMetrics(t *testing.T) {
	w, tn := hardMetrics([]float64{-1, 2, -3, 0.5})
	if w != -3 || tn != -4 {
		t.Fatalf("hardMetrics=(%g,%g) want (-3,-4)", w, tn)
	}
	w, tn = hardMetrics([]float64{1, 2})
	if w != 1 || tn != 0 {
		t.Fatalf("all-positive metrics=(%g,%g)", w, tn)
	}
	w, tn = hardMetrics(nil)
	if w != 0 || tn != 0 {
		t.Fatalf("empty metrics=(%g,%g)", w, tn)
	}
}

func TestRatioImproved(t *testing.T) {
	if !ratioImproved(-10, -8, 0.1) {
		t.Fatal("20%% improvement on -10 should trigger μ=0.1")
	}
	if ratioImproved(-10, -9.5, 0.1) {
		t.Fatal("5%% improvement should not trigger μ=0.1")
	}
	if ratioImproved(0, 1, 0.1) || ratioImproved(2, 3, 0.1) {
		t.Fatal("non-negative initial metric must not trigger")
	}
	if ratioImproved(-10, -11, 0.1) {
		t.Fatal("worsening must not trigger")
	}
}

func TestNewRefinerValidation(t *testing.T) {
	if _, err := NewRefiner(nil, nil, nil, DefaultOptions()); err == nil {
		t.Fatal("nil inputs accepted")
	}
	r, s := fixture(t)
	bad := DefaultOptions()
	bad.Gamma = 0
	if _, err := NewRefiner(r.Model, s.Batch, s.Prepared, bad); err == nil {
		t.Fatal("zero gamma accepted")
	}
	bad = DefaultOptions()
	bad.N = 0
	if _, err := NewRefiner(r.Model, s.Batch, s.Prepared, bad); err == nil {
		t.Fatal("zero iterations accepted")
	}
}

func TestGradientsNonZeroAndPenaltyDirection(t *testing.T) {
	r, _ := fixture(t)
	gx, gy, _, err := r.gradients(r.Prep.Forest, r.Opt.LambdaW, r.Opt.LambdaT)
	if err != nil {
		t.Fatal(err)
	}
	nz := 0
	for i := range gx {
		if gx[i] != 0 || gy[i] != 0 {
			nz++
		}
	}
	if nz == 0 {
		t.Fatal("penalty gradient is identically zero")
	}
}

func TestPenaltyConsistentWithSmoothedMetrics(t *testing.T) {
	// P = λw·w_γ + λt·t_γ with λ both negative: P must be positive for a
	// violating design (negative smoothed metrics times negative weights),
	// and descending the gradient must reduce P locally.
	r, _ := fixture(t)
	p0, err := r.Penalty(r.Prep.Forest)
	if err != nil {
		t.Fatal(err)
	}
	if p0 <= 0 {
		t.Fatalf("penalty %g should be positive on a violating design", p0)
	}
	gx, gy, err := r.Gradients(r.Prep.Forest)
	if err != nil {
		t.Fatal(err)
	}
	moved := r.Prep.Forest.Clone()
	xs, ys, idx := moved.SteinerPositions()
	const step = 1e-3
	for i := range xs {
		xs[i] -= step * gx[i]
		ys[i] -= step * gy[i]
	}
	if err := moved.SetSteinerPositions(xs, ys, idx, r.Prep.Design.Die); err != nil {
		t.Fatal(err)
	}
	p1, err := r.Penalty(moved)
	if err != nil {
		t.Fatal(err)
	}
	// Allow float-level noise: Manhattan |·| kinks on zero-length edges
	// make the landscape only piecewise smooth.
	if p1 > p0*(1+1e-9) {
		t.Fatalf("gradient descent step increased penalty: %g -> %g", p0, p1)
	}
}

func TestAdaptiveThetaPositive(t *testing.T) {
	r, _ := fixture(t)
	theta, err := r.adaptiveTheta(r.Prep.Forest)
	if err != nil {
		t.Fatal(err)
	}
	if theta <= 0 || math.IsInf(theta, 0) || math.IsNaN(theta) {
		t.Fatalf("theta=%g", theta)
	}
}

func TestRefineImprovesEvaluatedTiming(t *testing.T) {
	r, _ := fixture(t)
	res, err := r.Refine()
	if err != nil {
		t.Fatal(err)
	}
	if res.Forest == nil || len(res.History) == 0 {
		t.Fatal("empty result")
	}
	if res.BestWNS < res.InitWNS && res.BestTNS < res.InitTNS {
		t.Fatalf("refinement worsened both metrics: WNS %g->%g TNS %g->%g",
			res.InitWNS, res.BestWNS, res.InitTNS, res.BestTNS)
	}
	if res.BestWNS == res.InitWNS && res.BestTNS == res.InitTNS && res.Iterations == r.Opt.N {
		t.Log("warning: no evaluator-visible improvement found")
	}
	// The kept forest is valid and inside the die.
	if err := res.Forest.Validate(r.Prep.Design); err != nil {
		t.Fatal(err)
	}
	for _, tr := range res.Forest.Trees {
		for _, n := range tr.Nodes {
			p := n.Pos.Round()
			if !r.Prep.Design.Die.Contains(p) {
				t.Fatalf("node escaped die: %v", p)
			}
		}
	}
}

func TestRefineRespectsBestTracking(t *testing.T) {
	// Replays Algorithm 1's exact best-tracking semantics (lines 9–11):
	// when either metric beats the stored best, BOTH stored bests are
	// overwritten with the candidate's values.
	r, _ := fixture(t)
	res, err := r.Refine()
	if err != nil {
		t.Fatal(err)
	}
	bw, bt := res.InitWNS, res.InitTNS
	for _, h := range res.History {
		if h.WNS > bw || h.TNS > bt {
			if !h.Accepted {
				t.Fatal("improving candidate was rejected")
			}
			bw, bt = h.WNS, h.TNS
		}
	}
	if bw != res.BestWNS || bt != res.BestTNS {
		t.Fatalf("best tracking mismatch: (%g,%g) vs (%g,%g)", bw, bt, res.BestWNS, res.BestTNS)
	}
}

func TestRefineConvergenceStopsEarly(t *testing.T) {
	// With a trivially satisfied μ the loop must stop before N whenever
	// any improvement appears.
	r, _ := fixture(t)
	opt := DefaultOptions()
	opt.Mu = 1e-9
	r2, err := NewRefiner(r.Model, r.Batch, r.Prep, opt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r2.Refine()
	if err != nil {
		t.Fatal(err)
	}
	if res.ConvergedByRatio && res.Iterations == opt.N {
		t.Fatal("converged flag set only at budget exhaustion")
	}
	if res.BestWNS > res.InitWNS && !res.ConvergedByRatio {
		t.Fatal("improvement above μ=1e-9 did not trigger convergence")
	}
}

func TestRefineDoesNotMutatePreparedForest(t *testing.T) {
	r, _ := fixture(t)
	xs0, ys0, _ := r.Prep.Forest.SteinerPositions()
	if _, err := r.Refine(); err != nil {
		t.Fatal(err)
	}
	xs1, ys1, _ := r.Prep.Forest.SteinerPositions()
	for i := range xs0 {
		if xs0[i] != xs1[i] || ys0[i] != ys1[i] {
			t.Fatal("Refine mutated the prepared forest")
		}
	}
}

func TestRefineFixedThetaAblation(t *testing.T) {
	r, _ := fixture(t)
	opt := DefaultOptions()
	opt.FixedTheta = 4.0
	r2, err := NewRefiner(r.Model, r.Batch, r.Prep, opt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r2.Refine()
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range res.History {
		if h.Theta != 4.0 {
			t.Fatalf("fixed theta not honored: %g", h.Theta)
		}
	}
}

func TestRefineAlwaysAcceptAblation(t *testing.T) {
	r, _ := fixture(t)
	opt := DefaultOptions()
	opt.AlwaysAccept = true
	opt.Mu = 10 // never converge by ratio
	r2, err := NewRefiner(r.Model, r.Batch, r.Prep, opt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r2.Refine()
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range res.History {
		if !h.Accepted {
			t.Fatal("AlwaysAccept rejected a candidate")
		}
	}
}

func TestRefineDeterministic(t *testing.T) {
	r, _ := fixture(t)
	a, err := r.Refine()
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Refine()
	if err != nil {
		t.Fatal(err)
	}
	if a.BestWNS != b.BestWNS || a.BestTNS != b.BestTNS || a.Iterations != b.Iterations {
		t.Fatal("refinement not deterministic")
	}
}

func TestRefineRoundsAggregates(t *testing.T) {
	r, _ := fixture(t)
	single, err := r.Refine()
	if err != nil {
		t.Fatal(err)
	}
	multi, err := r.RefineRounds(2)
	if err != nil {
		t.Fatal(err)
	}
	if multi.Iterations < single.Iterations {
		t.Fatalf("2-round iterations %d < single-round %d", multi.Iterations, single.Iterations)
	}
	if len(multi.History) != multi.Iterations {
		t.Fatalf("history %d != iterations %d", len(multi.History), multi.Iterations)
	}
	// Round 2 starts where round 1 ended; bests never regress across the
	// aggregate (each round keeps its best-or-initial).
	if multi.BestTNS < single.BestTNS-1e-9 && multi.BestWNS < single.BestWNS-1e-9 {
		t.Fatalf("second round regressed both bests: (%g,%g) vs (%g,%g)",
			multi.BestWNS, multi.BestTNS, single.BestWNS, single.BestTNS)
	}
	if err := multi.Forest.Validate(r.Prep.Design); err != nil {
		t.Fatal(err)
	}
	if _, err := r.RefineRounds(0); err == nil {
		t.Fatal("zero rounds accepted")
	}
}

func TestSignoffAfterRefinement(t *testing.T) {
	// End-to-end: the refined forest must route and produce a sign-off
	// report; on spm the evaluator-guided result should not catastrophically
	// regress true TNS (allow small noise).
	r, s := fixture(t)
	res, err := r.Refine()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := flow.Signoff(s.Prepared, res.Forest)
	if err != nil {
		t.Fatal(err)
	}
	base := s.Baseline
	if rep.TNS < base.TNS*1.5 {
		t.Fatalf("refined TNS %g catastrophically worse than baseline %g", rep.TNS, base.TNS)
	}
}
