// Package core implements TSteiner, the paper's concurrent sign-off
// timing optimization via deep Steiner point refinement (Section III):
//
//   - the smoothed timing penalty P_γ = λ_w·w_γ + λ_t·t_γ over the
//     evaluator's predicted endpoint slacks, with Log-Sum-Exp replacing
//     the hard min in WNS and a softplus relaxation for TNS (Eq. 5–6);
//   - sign-off timing gradients (∇_Xs P, ∇_Ys P) via backward propagation
//     through the evaluator (Section III-A);
//   - the stochastic optimizer SO (Eq. 7) with the adaptive stepsize
//     scheme Adaptive_Theta (Eq. 8–9, a Barzilai–Borwein secant step);
//   - the concurrent refinement loop of Algorithm 1 with best-solution
//     tracking, λ escalation after iteration 5, movement clamped to the
//     grid boundary, and the auto-convergence rule (ratio μ).
package core

import (
	"fmt"
	"math"
	"time"

	"tsteiner/internal/flow"
	"tsteiner/internal/gnn"
	"tsteiner/internal/guard"
	"tsteiner/internal/guard/fault"
	"tsteiner/internal/obs"
	"tsteiner/internal/rsmt"
	"tsteiner/internal/tensor"
)

// Options are TSteiner's hyper-parameters; defaults follow Section IV-A.
type Options struct {
	LambdaW float64 // WNS weight λ_w (paper: −200)
	LambdaT float64 // TNS weight λ_t (paper: −2)
	Gamma   float64 // LSE smoothing temperature γ (paper: 10)
	Alpha   float64 // adaptive-stepsize probe scale α (paper: 5)
	Mu      float64 // converge ratio μ (paper: 0.1)
	N       int     // maximum optimization iterations

	Beta1, Beta2, Eps float64 // SO hyper-parameters (Eq. 7)

	// EscalateAfter/EscalateRate: from iteration EscalateAfter on, both λ
	// are increased by EscalateRate per iteration (paper: 5 and 1%).
	EscalateAfter int
	EscalateRate  float64

	// MaxMoveDBU clamps the per-iteration displacement of each coordinate.
	MaxMoveDBU float64

	// TrustRadiusDBU bounds each Steiner point's TOTAL displacement from
	// its initial position ("we constrain the largest moving distance
	// according to the width and length of the global routing grid
	// graph"). It also keeps the search inside the region where the
	// learned evaluator was fit, so surrogate gradients stay meaningful.
	TrustRadiusDBU float64

	// RawGradient switches SO from the Adam-normalized update of Eq. 7 to
	// a plain gradient step X' = X − θ·∇P. The Barzilai–Borwein stepsize
	// of Eq. 9 is the secant inverse-curvature estimate for exactly this
	// un-normalized form; with it, low-|gradient| (noise) points barely
	// move while critical points move up to the clamp, which transfers
	// far better through the discrete routing stage.
	RawGradient bool

	// Ablation switches (all false in the paper's configuration).
	FixedTheta   float64 // >0 disables Adaptive_Theta and uses this stepsize
	AlwaysAccept bool    // disables best-solution tracking/restore

	// MaxRecoveries bounds the numerical-recovery policy: when a penalty,
	// gradient or stepsize goes non-finite, the step is discarded, the
	// loop rolls back to the tracked best forest and halves θ, and retries
	// — up to this many times across the run, after which the refiner
	// returns the best solution so far with Result.Degraded set instead of
	// an error. The surrogate never corrupts the kept solution.
	MaxRecoveries int

	// Budget bounds the refinement loop (wall clock and/or iterations,
	// checked before every iteration). On expiry the loop stops and
	// returns the best solution so far with Result.Cutoff recording the
	// reason. nil = unlimited.
	Budget *guard.Budget

	// CheckpointPath, when non-empty, makes the loop write an atomic,
	// CRC-checksummed snapshot of its full state (positions, SO moments,
	// best solution, λ escalation, θ) every CheckpointEvery iterations
	// (default 1). With Resume set, a valid checkpoint at that path is
	// loaded and the run continues from it — byte-identical to a run that
	// was never interrupted. A corrupt checkpoint fails loudly with a
	// *guard.CorruptError; a missing one starts fresh.
	CheckpointPath  string
	CheckpointEvery int
	Resume          bool

	// Fault is the deterministic fault injector (nil in production, zero
	// overhead). Armed sites: "core.nan" poisons the iteration's gradient,
	// "core.stall" delays an iteration past a wall-clock budget, and
	// "core.corner.nan" poisons the first corner's derated slack in the
	// matrix penalty (multi-corner runs only).
	Fault *fault.Injector

	// Corners enables the multi-corner matrix penalty and accept rule:
	// P = Σ_c λ_c·P_γ(slack_c) with each corner's slack the affine
	// derating of the predicted typical slack, and the lexicographic
	// accept comparing worst-corner WNS then corner-summed TNS. Empty
	// preserves the single-corner algorithm byte-for-byte (see
	// corner.go).
	Corners []CornerTerm

	// HoldGuard adds the setup/hold co-optimization veto: a candidate
	// that passes the setup accept is re-checked with a tree-geometry
	// STA at the fastest corner and rejected if it has more hold
	// violations than the round's starting forest — setup moves must
	// not create hold violations. Off by default (costs one STA per
	// otherwise-accepted iteration).
	HoldGuard bool

	// DisableWorkspace selects the allocating reference evaluation path
	// instead of the pooled workspace + forward-memo path. Both are
	// byte-identical (the differential gate TestWorkspaceForwardMatches-
	// Allocating holds them together); the flag exists for that gate and
	// for the bench harness's before/after comparison.
	DisableWorkspace bool

	// CandidateLanes sets the number K of candidate steps evaluated per
	// iteration in one fused batched forward pass: lane 0 takes the full
	// SO step (exactly the single-candidate update) and lane k scales the
	// displacement by 2^-k — a backtracking line search along the SO
	// direction whose K evaluations share one amortized forward over the
	// batch's precomputed structure tables. The lane with the best hard
	// metrics (max WNS, ties by TNS, then lowest lane) becomes the
	// iteration's candidate and meets the usual accept rule. 0 or 1
	// preserves the single-candidate algorithm byte-for-byte. With
	// DisableWorkspace the same K candidates are evaluated by K
	// sequential forwards instead — byte-identical trajectories, no
	// batched kernels (the differential gate
	// TestBatchedRefineMatchesSequential holds the two together).
	CandidateLanes int
}

// DefaultOptions mirrors the paper's experiment settings.
func DefaultOptions() Options {
	return Options{
		LambdaW:        -200.0,
		LambdaT:        -2.0,
		Gamma:          10.0,
		Alpha:          5.0,
		Mu:             0.1,
		N:              25,
		Beta1:          0.9,
		Beta2:          0.999,
		Eps:            1e-8,
		EscalateAfter:  5,
		EscalateRate:   0.01,
		MaxMoveDBU:     8,
		TrustRadiusDBU: 12,
		MaxRecoveries:  3,
	}
}

// IterRecord traces one refinement iteration.
type IterRecord struct {
	WNS, TNS float64 // evaluated metrics of the chosen candidate
	Accepted bool
	Theta    float64
	// Lane is the chosen candidate's lane (step scale 2^-Lane) when
	// CandidateLanes > 1; always 0 on the single-candidate path.
	Lane int
}

// Result is the outcome of a refinement run.
type Result struct {
	Forest           *rsmt.Forest // refined Steiner trees (continuous positions)
	InitWNS, InitTNS float64      // evaluator metrics before refinement
	BestWNS, BestTNS float64      // evaluator metrics of the kept solution
	Iterations       int
	ConvergedByRatio bool
	RuntimeSec       float64
	History          []IterRecord

	// Degraded is set when the numerical-recovery budget was exhausted:
	// the returned forest is the tracked best solution, which is always
	// finite and valid, but the loop stopped early. Recoveries counts how
	// many non-finite steps were discarded (0 in a healthy run). Cutoff,
	// when non-empty, records why the budget stopped the loop.
	Degraded   bool
	Recoveries int
	Cutoff     string
}

// Refiner bundles the trained evaluator with a design's batch.
type Refiner struct {
	Model *gnn.Model
	Batch *gnn.Batch
	Prep  *flow.Prepared
	Opt   Options

	// sess is the lazily-built workspace evaluation session (one per
	// refiner, hence one per worker in parallel fan-outs).
	sess *evalSession
}

// NewRefiner validates inputs and builds a refiner.
func NewRefiner(m *gnn.Model, b *gnn.Batch, p *flow.Prepared, opt Options) (*Refiner, error) {
	if m == nil || b == nil || p == nil {
		return nil, fmt.Errorf("core: nil input")
	}
	if opt.Gamma <= 0 || opt.N <= 0 || opt.Alpha == 0 {
		return nil, fmt.Errorf("core: bad options %+v", opt)
	}
	if err := validateCornerTerms(opt.Corners); err != nil {
		return nil, err
	}
	return &Refiner{Model: m, Batch: b, Prep: p, Opt: opt}, nil
}

// sink returns the telemetry sink the refiner inherits from the flow
// config (nil = off). Telemetry is a side channel: nothing read from it
// ever feeds back into refinement.
func (r *Refiner) sink() *obs.Sink { return r.Prep.Config.Obs }

// evalMetrics runs a forward pass and returns hard (unsmoothed) WNS/TNS of
// the predicted endpoint slacks — the quantities Algorithm 1 compares.
func (r *Refiner) evalMetrics(f *rsmt.Forest) (wns, tns float64, err error) {
	r.sink().Add("core.evals", 1)
	if s := r.session(); s != nil {
		_, _, _, pred, err := s.forward(f)
		if err != nil {
			return 0, 0, err
		}
		wns, tns = r.metricsFromSlack(pred.Slack.Data)
		return wns, tns, nil
	}
	tp := tensor.NewTape()
	xs, ys, err := r.Batch.SteinerLeaves(tp, f)
	if err != nil {
		return 0, 0, err
	}
	pred, err := r.Model.Forward(tp, r.Batch, xs, ys, false)
	if err != nil {
		return 0, 0, err
	}
	wns, tns = r.metricsFromSlack(pred.Slack.Data)
	return wns, tns, nil
}

func hardMetrics(slack []float64) (wns, tns float64) {
	wns = math.Inf(1)
	for _, s := range slack {
		if s < wns {
			wns = s
		}
		if s < 0 {
			tns += s
		}
	}
	if len(slack) == 0 {
		wns = 0
	}
	return wns, tns
}

// gradients computes (∇_Xs P, ∇_Ys P) at the forest's current positions
// for the given λ weights (Section III-A), returning the penalty value of
// the forward pass as well (free for callers, logged by telemetry).
func (r *Refiner) gradients(f *rsmt.Forest, lw, lt float64) (gx, gy []float64, pval float64, err error) {
	r.sink().Add("core.grad_calls", 1)
	var tp *tensor.Tape
	var xs, ys *tensor.Tensor
	var pred *gnn.Prediction
	if s := r.session(); s != nil {
		// A memoized batched candidate pass may already hold the forward
		// at f's exact coordinates in one of its lanes; extracting the
		// lane's gradient there skips the whole forward.
		if gx, gy, pval, ok, lerr := s.laneGradients(f, lw, lt); ok || lerr != nil {
			return gx, gy, pval, lerr
		}
		tp, xs, ys, pred, err = s.forward(f)
		// Appending penalty ops and running Backward consume the
		// memoized tape: gradients accumulate, so it must not be
		// replayed (and callers may escalate λ between calls).
		s.invalidate()
	} else {
		tp = tensor.NewTape()
		xs, ys, err = r.Batch.SteinerLeaves(tp, f)
		if err == nil {
			pred, err = r.Model.Forward(tp, r.Batch, xs, ys, false)
		}
	}
	if err != nil {
		return nil, nil, 0, err
	}
	p, err := r.penalty(tp, pred, lw, lt)
	if err != nil {
		return nil, nil, 0, err
	}
	if err := tp.Backward(p); err != nil {
		return nil, nil, 0, err
	}
	// The returned slices are copies: workspace storage is reclaimed on
	// the next forward, and callers (adaptiveTheta, the NaN-recovery
	// fault site) hold and mutate them across further gradient calls.
	return append([]float64(nil), xs.Grad...), append([]float64(nil), ys.Grad...), p.Data[0], nil
}

// penalty builds P_γ = λ_w·w_γ + λ_t·t_γ on the tape (Eq. 4–6) from a
// prediction's slack — or the multi-corner matrix penalty when
// Options.Corners are configured.
func (r *Refiner) penalty(tp *tensor.Tape, pred *gnn.Prediction, lw, lt float64) (*tensor.Tensor, error) {
	return r.penaltyMatrixOn(tp, pred.Slack, lw, lt)
}

// penaltyOn builds the smoothed penalty directly on a slack tensor:
//
//	w_γ = −LSE(−s; γ)                (smooth min over endpoint slacks)
//	t_γ = −γ·Σ softplus(−s/γ)        (smooth Σ min(0, s))
//
// Every op is lane-transparent, so a K-lane slack yields a K-lane 1×1
// penalty whose lane k is bit-identical to the unbatched penalty of
// candidate k — the property the lane-granular gradient memo relies on.
func (r *Refiner) penaltyOn(tp *tensor.Tape, slack *tensor.Tensor, lw, lt float64) (*tensor.Tensor, error) {
	negS, err := tp.Scale(slack, -1)
	if err != nil {
		return nil, err
	}
	lse, err := tp.LSE(negS, r.Opt.Gamma)
	if err != nil {
		return nil, err
	}
	wGamma, err := tp.Scale(lse, -1)
	if err != nil {
		return nil, err
	}
	scaled, err := tp.Scale(slack, -1/r.Opt.Gamma)
	if err != nil {
		return nil, err
	}
	sp, err := tp.Softplus(scaled)
	if err != nil {
		return nil, err
	}
	spSum, err := tp.Sum(sp)
	if err != nil {
		return nil, err
	}
	tGamma, err := tp.Scale(spSum, -r.Opt.Gamma)
	if err != nil {
		return nil, err
	}
	wTerm, err := tp.Scale(wGamma, lw)
	if err != nil {
		return nil, err
	}
	tTerm, err := tp.Scale(tGamma, lt)
	if err != nil {
		return nil, err
	}
	return tp.Add(wTerm, tTerm)
}

// Penalty evaluates the smoothed timing penalty P_γ (Eq. 4–6) at a
// forest's current positions without computing gradients.
func (r *Refiner) Penalty(f *rsmt.Forest) (float64, error) {
	r.sink().Add("core.penalty_evals", 1)
	var tp *tensor.Tape
	var pred *gnn.Prediction
	var err error
	if s := r.session(); s != nil {
		tp, _, _, pred, err = s.forward(f)
		s.invalidate() // penalty ops dirty the tape
	} else {
		tp = tensor.NewTape()
		var xs, ys *tensor.Tensor
		xs, ys, err = r.Batch.SteinerLeaves(tp, f)
		if err == nil {
			pred, err = r.Model.Forward(tp, r.Batch, xs, ys, false)
		}
	}
	if err != nil {
		return 0, err
	}
	p, err := r.penalty(tp, pred, r.Opt.LambdaW, r.Opt.LambdaT)
	if err != nil {
		return 0, err
	}
	return p.Data[0], nil
}

// Gradients exposes the sign-off timing gradients at a forest's current
// positions under the configured λ weights — the quantity Fig. 3's
// backward pass produces. Useful for analysis tooling on top of the
// refiner.
func (r *Refiner) Gradients(f *rsmt.Forest) (gx, gy []float64, err error) {
	gx, gy, _, err = r.gradients(f, r.Opt.LambdaW, r.Opt.LambdaT)
	return gx, gy, err
}

// adaptiveTheta implements Adaptive_Theta (Eq. 8–9): probe a small move
// along the gradient and form the secant-quotient stepsize.
func (r *Refiner) adaptiveTheta(f *rsmt.Forest) (float64, error) {
	gx0, gy0, _, err := r.gradients(f, r.Opt.LambdaW, r.Opt.LambdaT)
	if err != nil {
		return 0, err
	}
	probe := f.Clone()
	xs, ys, idx := probe.SteinerPositions()
	for i := range xs {
		xs[i] += r.Opt.Alpha * gx0[i]
		ys[i] += r.Opt.Alpha * gy0[i]
	}
	if err := probe.SetSteinerPositions(xs, ys, idx, r.Prep.Design.Die); err != nil {
		return 0, err
	}
	gx1, gy1, _, err := r.gradients(probe, r.Opt.LambdaW, r.Opt.LambdaT)
	if err != nil {
		return 0, err
	}
	// θ = |ΔX|₂ / |Δ∇|₂ over the concatenated (X, Y) vector. Positions
	// may have been clamped, so measure the realized displacement.
	x0, y0, _ := f.SteinerPositions()
	x1, y1, _ := probe.SteinerPositions()
	var dPos, dGrad float64
	for i := range x0 {
		dx := x1[i] - x0[i]
		dy := y1[i] - y0[i]
		dPos += dx*dx + dy*dy
		ggx := gx1[i] - gx0[i]
		ggy := gy1[i] - gy0[i]
		dGrad += ggx*ggx + ggy*ggy
	}
	theta := math.Sqrt(dPos) / math.Sqrt(dGrad)
	if dGrad < 1e-30 || dPos < 1e-30 || !finite(theta) ||
		!finiteAll(gx0) || !finiteAll(gy0) || !finiteAll(gx1) || !finiteAll(gy1) {
		// Flat landscape — or a non-finite probe, which the secant
		// quotient must never propagate into the loop: fall back to a
		// GCell-scale stepsize so the first iterations still explore.
		r.sink().Add("core.theta_fallbacks", 1)
		return float64(r.Prep.Config.GCellSize), nil
	}
	return theta, nil
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

func finiteAll(vals []float64) bool {
	for _, v := range vals {
		if !finite(v) {
			return false
		}
	}
	return true
}

// Refine runs Algorithm 1 from the prepared forest and returns the
// refined forest (positions are continuous; callers round via
// flow.Signoff's post-processing).
func (r *Refiner) Refine() (*Result, error) {
	return r.refineFrom(r.Prep.Forest, r.Opt.CheckpointPath)
}

// RefineRounds runs successive refinement rounds, re-anchoring the trust
// region at each round's best solution — the simplest instance of the
// paper's future-work direction of extending Steiner refinement beyond a
// single pre-routing pass. Later rounds can escape the first round's
// movement bound while each individual step stays within the region where
// the evaluator is locally valid.
func (r *Refiner) RefineRounds(rounds int) (*Result, error) {
	if rounds < 1 {
		return nil, fmt.Errorf("core: rounds %d < 1", rounds)
	}
	start := r.Prep.Forest
	var agg *Result
	for k := 0; k < rounds; k++ {
		ckpt := r.Opt.CheckpointPath
		if ckpt != "" {
			ckpt = fmt.Sprintf("%s.r%d", ckpt, k)
		}
		res, err := r.refineFrom(start, ckpt)
		if err != nil {
			return nil, err
		}
		if agg == nil {
			agg = res
		} else {
			agg.History = append(agg.History, res.History...)
			agg.Iterations += res.Iterations
			agg.RuntimeSec += res.RuntimeSec
			agg.BestWNS = res.BestWNS
			agg.BestTNS = res.BestTNS
			agg.ConvergedByRatio = res.ConvergedByRatio
			agg.Forest = res.Forest
			agg.Degraded = agg.Degraded || res.Degraded
			agg.Recoveries += res.Recoveries
			agg.Cutoff = res.Cutoff
		}
		start = res.Forest
		// A spent budget stops the round sequence too: later rounds would
		// cut off immediately and pollute the aggregate history.
		if res.Cutoff != "" {
			break
		}
	}
	return agg, nil
}

// refineFrom runs Algorithm 1 anchored at the given starting forest,
// checkpointing loop state to ckptPath ("" = no checkpoints) and — when
// Options.Resume is set — continuing from a valid checkpoint found there.
func (r *Refiner) refineFrom(startForest *rsmt.Forest, ckptPath string) (*Result, error) {
	t0 := time.Now()
	span := r.sink().Start("core.refine")
	defer span.End()
	opt := r.Opt
	opt.Budget.Start()
	nVars := r.Batch.NSteiner
	mX := make([]float64, nVars)
	vX := make([]float64, nVars)
	mY := make([]float64, nVars)
	vY := make([]float64, nVars)
	// Trust-region anchors: the round's starting positions. The index is
	// shared by every forest in the loop (clones preserve topology).
	x0, y0, idx := startForest.SteinerPositions()

	every := opt.CheckpointEvery
	if every <= 0 {
		every = 1
	}
	var st *refineState
	if opt.Resume && ckptPath != "" {
		var err error
		st, err = r.readState(ckptPath, nVars)
		if err != nil {
			return nil, err
		}
	}

	res := &Result{}
	var cur, best *rsmt.Forest
	var theta, lw, lt float64
	startIter := 0
	if st != nil {
		// Resume: the loop state is exactly what the interrupted run
		// carried at iteration st.Iter, so continuing is byte-identical
		// to never having been interrupted.
		var err error
		if cur, err = r.forestAt(startForest, st.CurX, st.CurY); err != nil {
			return nil, err
		}
		if best, err = r.forestAt(startForest, st.BestX, st.BestY); err != nil {
			return nil, err
		}
		copy(mX, st.MX)
		copy(vX, st.VX)
		copy(mY, st.MY)
		copy(vY, st.VY)
		theta, lw, lt = st.Theta, st.LW, st.LT
		startIter = st.Iter
		res.InitWNS, res.InitTNS = st.InitWNS, st.InitTNS
		res.BestWNS, res.BestTNS = st.BestWNS, st.BestTNS
		res.History = st.History
		res.Iterations = st.Iter
		res.Recoveries = st.Recoveries
		res.ConvergedByRatio = st.Converged
		r.sink().Add("core.resumes", 1)
		r.sink().Event("core.resume", obs.KV{K: "iter", V: st.Iter}, obs.KV{K: "path", V: ckptPath})
	} else {
		cur = startForest.Clone()
		initWNS, initTNS, err := r.evalMetrics(cur)
		if err != nil {
			return nil, err
		}
		res.InitWNS, res.InitTNS = initWNS, initTNS
		res.BestWNS, res.BestTNS = initWNS, initTNS
		theta = opt.FixedTheta
		if theta <= 0 {
			theta, err = r.adaptiveTheta(cur)
			if err != nil {
				return nil, err
			}
		}
		lw, lt = opt.LambdaW, opt.LambdaT
		best = cur.Clone()
	}
	initWNS, initTNS := res.InitWNS, res.InitTNS
	recoveries := res.Recoveries

	// Hold-guard baseline: the round's starting hold-violation count at
	// the fastest corner. Derived from startForest (not the resumed
	// best) so interrupted and uninterrupted runs see the same veto.
	baseHold := 0
	if opt.HoldGuard {
		var err error
		if baseHold, err = r.holdVios(startForest); err != nil {
			return nil, err
		}
	}

	// Persistent per-loop storage, reused across iterations instead of
	// cloned: the candidate forest (SetSteinerPositions overwrites every
	// Steiner coordinate, and pin nodes are identical across clones), the
	// coordinate staging buffers the SO step mutates, and the staged
	// per-coordinate displacement.
	cand := startForest.Clone()
	xsBuf := make([]float64, nVars)
	ysBuf := make([]float64, nVars)
	dxBuf := make([]float64, nVars)
	dyBuf := make([]float64, nVars)
	// Multi-candidate staging (CandidateLanes ≥ 2): lane-major candidate
	// coordinate blocks, per-lane metrics, and the scratch forest that
	// realizes each lane's die clamp.
	K := opt.CandidateLanes
	if K < 1 {
		K = 1
	}
	var laneXs, laneYs, laneWNS, laneTNS []float64
	var scratch *rsmt.Forest
	if K > 1 {
		laneXs = make([]float64, K*nVars)
		laneYs = make([]float64, K*nVars)
		laneWNS = make([]float64, K)
		laneTNS = make([]float64, K)
		scratch = startForest.Clone()
	}

	for t := startIter; t < opt.N && !res.ConvergedByRatio; t++ {
		iterM0 := r.sink().Mallocs()
		iterT0 := time.Now()
		if reason, over := opt.Budget.Exceeded(t); over {
			res.Cutoff = reason
			r.sink().Add("core.budget_cutoffs", 1)
			r.sink().Event("core.cutoff", obs.KV{K: "iter", V: t}, obs.KV{K: "reason", V: reason})
			break
		}
		opt.Fault.Stall("core.stall")
		gx, gy, penalty, err := r.gradients(cur, lw, lt)
		if err != nil {
			return nil, err
		}
		if opt.Fault.Fire("core.nan") && len(gx) > 0 {
			gx[0] = math.NaN()
		}
		if !finite(penalty) || !finite(theta) || !finiteAll(gx) || !finiteAll(gy) {
			// Numerical recovery: discard the poisoned step, roll back to
			// the tracked best solution, shrink the stepsize and retry.
			// The best forest is only ever assigned finite, accepted
			// candidates, so rollback is always safe.
			recoveries++
			res.Recoveries = recoveries
			r.sink().Add("core.recoveries", 1)
			r.sink().Event("core.recover",
				obs.KV{K: "iter", V: t},
				obs.KV{K: "recoveries", V: recoveries},
				obs.KV{K: "theta", V: theta})
			if recoveries > opt.MaxRecoveries {
				res.Degraded = true
				break
			}
			if err := cur.CopyPositionsFrom(best); err != nil {
				return nil, err
			}
			if !finite(theta) {
				theta = float64(r.Prep.Config.GCellSize)
			} else {
				theta /= 2
			}
			t--
			continue
		}
		// The SO update is staged as a per-coordinate displacement first
		// (moments update, MaxMove clamp), then applied — at full scale on
		// the single-candidate path, at K geometric scales on the
		// multi-candidate path.
		// stepSq/clamped observe the update for telemetry only; they are
		// derived from the same deterministic arithmetic, never fed back.
		var stepSq float64
		var clamped int
		step := func(g, mAcc, vAcc, disp []float64) {
			for i := range disp {
				var d float64
				if opt.RawGradient {
					d = theta * g[i]
				} else {
					mAcc[i] = opt.Beta1*mAcc[i] + (1-opt.Beta1)*g[i]
					vAcc[i] = opt.Beta2*vAcc[i] + (1-opt.Beta2)*g[i]*g[i]
					d = theta * mAcc[i] / (math.Sqrt(vAcc[i]) + opt.Eps)
				}
				if opt.MaxMoveDBU > 0 {
					if d > opt.MaxMoveDBU {
						d = opt.MaxMoveDBU
						clamped++
					}
					if d < -opt.MaxMoveDBU {
						d = -opt.MaxMoveDBU
						clamped++
					}
				}
				disp[i] = d
				stepSq += d * d
			}
		}
		step(gx, mX, vX, dxBuf)
		step(gy, mY, vY, dyBuf)
		cur.CopySteinerPositionsInto(xsBuf, ysBuf)

		var wns, tns float64
		lane := 0
		if K > 1 {
			if err := r.stageCandidates(K, xsBuf, ysBuf, dxBuf, dyBuf, x0, y0, idx, scratch, laneXs, laneYs, &clamped); err != nil {
				return nil, err
			}
			if err := r.evalCandidates(K, laneXs, laneYs, laneWNS, laneTNS); err != nil {
				return nil, err
			}
			lane = chooseLane(laneWNS, laneTNS)
			wns, tns = laneWNS[lane], laneTNS[lane]
			if err := cand.SetSteinerPositions(laneXs[lane*nVars:(lane+1)*nVars], laneYs[lane*nVars:(lane+1)*nVars], idx, r.Prep.Design.Die); err != nil {
				return nil, err
			}
		} else {
			xs, ys := xsBuf, ysBuf
			for i := range xs {
				xs[i] -= dxBuf[i]
				ys[i] -= dyBuf[i]
			}
			if rr := opt.TrustRadiusDBU; rr > 0 {
				for i := range xs {
					cx := clampTo(xs[i], x0[i]-rr, x0[i]+rr)
					cy := clampTo(ys[i], y0[i]-rr, y0[i]+rr)
					if cx != xs[i] {
						clamped++
					}
					if cy != ys[i] {
						clamped++
					}
					xs[i], ys[i] = cx, cy
				}
			}
			if err := cand.SetSteinerPositions(xs, ys, idx, r.Prep.Design.Die); err != nil {
				return nil, err
			}
			wns, tns, err = r.evalMetrics(cand)
			if err != nil {
				return nil, err
			}
		}
		accepted := opt.AlwaysAccept || wns > res.BestWNS || tns > res.BestTNS
		if accepted && opt.HoldGuard && !opt.AlwaysAccept {
			// Setup/hold co-optimization: a setup win that mints new hold
			// violations at the fast corner is vetoed (Alg. 1's accept
			// becomes lexicographic over the matrix AND hold-safe).
			hv, herr := r.holdVios(cand)
			if herr != nil {
				return nil, herr
			}
			if hv > baseHold {
				accepted = false
				r.sink().Add("core.hold_rejects", 1)
			}
		}
		if accepted {
			if wns > res.BestWNS || tns > res.BestTNS {
				res.BestWNS = wns
				res.BestTNS = tns
				if err := best.CopyPositionsFrom(cand); err != nil {
					return nil, err
				}
			}
			// S_T^(t+1) ← candidate: swap the forests so the old cur
			// becomes next iteration's scratch candidate.
			cur, cand = cand, cur
		}
		// On rejection cur is kept: S_T^(t+1) ← S_T^(t) (Alg. 1 line 13).
		res.History = append(res.History, IterRecord{WNS: wns, TNS: tns, Accepted: accepted, Theta: theta, Lane: lane})
		res.Iterations = t + 1
		r.sink().Add("core.iterations", 1)
		var iterAllocs int64
		if r.sink().Enabled() {
			// Per-iteration allocation count — the quantity the workspace
			// path drives toward zero — and wall time, both into the
			// bucketed histograms so /metrics can serve tail latencies.
			// Telemetry only.
			iterAllocs = int64(r.sink().Mallocs() - iterM0)
			r.sink().Observe("core.iter_allocs", float64(iterAllocs))
			r.sink().Observe("core.iter_ms", float64(time.Since(iterT0))/float64(time.Millisecond))
		}
		r.sink().Event("core.iter",
			obs.KV{K: "iter", V: t + 1},
			obs.KV{K: "penalty", V: penalty},
			obs.KV{K: "wns", V: wns}, obs.KV{K: "tns", V: tns},
			obs.KV{K: "theta", V: theta},
			obs.KV{K: "step_norm", V: math.Sqrt(stepSq)},
			obs.KV{K: "clamped", V: clamped},
			obs.KV{K: "lane", V: lane},
			obs.KV{K: "accepted", V: accepted},
			obs.KV{K: "allocs", V: iterAllocs},
			obs.KV{K: "best_wns", V: res.BestWNS}, obs.KV{K: "best_tns", V: res.BestTNS})

		if t+1 >= opt.EscalateAfter {
			lw *= 1 + opt.EscalateRate
			lt *= 1 + opt.EscalateRate
		}

		if ratioImproved(initWNS, res.BestWNS, opt.Mu) || ratioImproved(initTNS, res.BestTNS, opt.Mu) {
			res.ConvergedByRatio = true
		}
		if ckptPath != "" && ((t+1)%every == 0 || res.ConvergedByRatio) {
			cx, cy, _ := cur.SteinerPositions()
			bx, by, _ := best.SteinerPositions()
			snap := &refineState{
				Iter: t + 1, Theta: theta, LW: lw, LT: lt,
				CurX: cx, CurY: cy, BestX: bx, BestY: by,
				MX: mX, VX: vX, MY: mY, VY: vY,
				InitWNS: initWNS, InitTNS: initTNS,
				BestWNS: res.BestWNS, BestTNS: res.BestTNS,
				History: res.History, Recoveries: recoveries,
				Converged: res.ConvergedByRatio,
			}
			if err := r.writeState(ckptPath, snap); err != nil {
				return nil, err
			}
		}
	}

	res.Forest = best
	res.RuntimeSec = time.Since(t0).Seconds()
	done := []obs.KV{
		{K: "iterations", V: res.Iterations},
		{K: "converged", V: res.ConvergedByRatio},
		{K: "init_wns", V: res.InitWNS}, {K: "best_wns", V: res.BestWNS},
		{K: "init_tns", V: res.InitTNS}, {K: "best_tns", V: res.BestTNS},
	}
	if r.sess != nil {
		st := r.sess.ws.Stats()
		done = append(done,
			obs.KV{K: "ws_grabs", V: st.Grabs},
			obs.KV{K: "ws_hits", V: st.Hits})
	}
	r.sink().Event("core.done", done...)
	return res, nil
}

// stageCandidates fills lane-major candidate coordinate blocks: lane k
// moves the base positions by the staged SO displacement scaled by 2^-k
// (lane 0 = the full step), then applies the trust-region clamp and — by
// routing the positions through the scratch forest — the die clamp, so
// each lane block holds exactly the coordinates the evaluator will see.
// The blocks double as SetSteinerPositions inputs because the batch's
// variable order is the forest's Steiner order (FillSteinerCoords
// verifies this on every call).
func (r *Refiner) stageCandidates(lanes int, baseX, baseY, dx, dy, x0, y0 []float64, idx []rsmt.SteinerRef, scratch *rsmt.Forest, laneXs, laneYs []float64, clamped *int) error {
	n := len(baseX)
	scale := 1.0
	for k := 0; k < lanes; k++ {
		lx := laneXs[k*n : (k+1)*n]
		ly := laneYs[k*n : (k+1)*n]
		for i := 0; i < n; i++ {
			lx[i] = baseX[i] - scale*dx[i]
			ly[i] = baseY[i] - scale*dy[i]
		}
		if rr := r.Opt.TrustRadiusDBU; rr > 0 {
			for i := 0; i < n; i++ {
				cx := clampTo(lx[i], x0[i]-rr, x0[i]+rr)
				cy := clampTo(ly[i], y0[i]-rr, y0[i]+rr)
				if cx != lx[i] {
					*clamped++
				}
				if cy != ly[i] {
					*clamped++
				}
				lx[i], ly[i] = cx, cy
			}
		}
		if err := scratch.SetSteinerPositions(lx, ly, idx, r.Prep.Design.Die); err != nil {
			return err
		}
		if err := r.Batch.FillSteinerCoords(scratch, lx, ly); err != nil {
			return err
		}
		scale *= 0.5
	}
	return nil
}

// evalCandidates produces the hard metrics of the staged candidates: one
// fused ForwardBatch over all lanes on the session path, K plain forwards
// on the allocating reference path — byte-identical per lane by the
// tensor package's lane contract.
func (r *Refiner) evalCandidates(lanes int, laneXs, laneYs, wns, tns []float64) error {
	r.sink().Add("core.evals", int64(lanes))
	if s := r.session(); s != nil {
		t0 := time.Now()
		bp, err := s.forwardBatch(lanes, laneXs, laneYs)
		if err != nil {
			return err
		}
		// Telemetry: lanes evaluated per batched pass and the amortized
		// per-candidate forward cost (side channel, never fed back).
		r.sink().Add("core.batch_lanes", int64(lanes))
		r.sink().Observe("gnn.batch_amortized_ns", float64(time.Since(t0).Nanoseconds())/float64(lanes))
		for k := 0; k < lanes; k++ {
			wns[k], tns[k] = r.metricsFromSlack(bp.LaneSlack(k))
		}
		return nil
	}
	n := r.Batch.NSteiner
	for k := 0; k < lanes; k++ {
		tp := tensor.NewTape()
		xs, ys, err := r.Batch.LeavesFromCoords(tp, laneXs[k*n:(k+1)*n], laneYs[k*n:(k+1)*n])
		if err != nil {
			return err
		}
		pred, err := r.Model.Forward(tp, r.Batch, xs, ys, false)
		if err != nil {
			return err
		}
		wns[k], tns[k] = r.metricsFromSlack(pred.Slack.Data)
	}
	return nil
}

// chooseLane picks the candidate Algorithm 1 tests against the best
// solution: maximum WNS, ties broken by maximum TNS, remaining ties by
// the lowest lane (the largest step). Non-finite metrics never displace
// finite ones, so a poisoned lane cannot win the selection.
func chooseLane(wns, tns []float64) int {
	best := 0
	for k := 1; k < len(wns); k++ {
		if laneBetter(wns[k], tns[k], wns[best], tns[best]) {
			best = k
		}
	}
	return best
}

func laneBetter(w1, t1, w0, t0 float64) bool {
	f1 := finite(w1) && finite(t1)
	f0 := finite(w0) && finite(t0)
	if f1 != f0 {
		return f1
	}
	if !f1 {
		return false
	}
	if w1 != w0 {
		return w1 > w0
	}
	return t1 > t0
}

func clampTo(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ratioImproved implements Algorithm 1 line 19: (init − best)/init > μ.
// With negative metrics this is the fractional improvement toward zero;
// non-negative, zero or non-finite initial metrics cannot trigger it (a
// NaN or ±Inf metric must never fake convergence), and a non-finite best
// metric never counts as an improvement.
func ratioImproved(init, best, mu float64) bool {
	if !finite(init) || !finite(best) || init >= 0 {
		return false
	}
	return (init-best)/init > mu
}
