// Package core implements TSteiner, the paper's concurrent sign-off
// timing optimization via deep Steiner point refinement (Section III):
//
//   - the smoothed timing penalty P_γ = λ_w·w_γ + λ_t·t_γ over the
//     evaluator's predicted endpoint slacks, with Log-Sum-Exp replacing
//     the hard min in WNS and a softplus relaxation for TNS (Eq. 5–6);
//   - sign-off timing gradients (∇_Xs P, ∇_Ys P) via backward propagation
//     through the evaluator (Section III-A);
//   - the stochastic optimizer SO (Eq. 7) with the adaptive stepsize
//     scheme Adaptive_Theta (Eq. 8–9, a Barzilai–Borwein secant step);
//   - the concurrent refinement loop of Algorithm 1 with best-solution
//     tracking, λ escalation after iteration 5, movement clamped to the
//     grid boundary, and the auto-convergence rule (ratio μ).
package core

import (
	"fmt"
	"math"
	"time"

	"tsteiner/internal/flow"
	"tsteiner/internal/gnn"
	"tsteiner/internal/guard"
	"tsteiner/internal/guard/fault"
	"tsteiner/internal/obs"
	"tsteiner/internal/rsmt"
	"tsteiner/internal/tensor"
)

// Options are TSteiner's hyper-parameters; defaults follow Section IV-A.
type Options struct {
	LambdaW float64 // WNS weight λ_w (paper: −200)
	LambdaT float64 // TNS weight λ_t (paper: −2)
	Gamma   float64 // LSE smoothing temperature γ (paper: 10)
	Alpha   float64 // adaptive-stepsize probe scale α (paper: 5)
	Mu      float64 // converge ratio μ (paper: 0.1)
	N       int     // maximum optimization iterations

	Beta1, Beta2, Eps float64 // SO hyper-parameters (Eq. 7)

	// EscalateAfter/EscalateRate: from iteration EscalateAfter on, both λ
	// are increased by EscalateRate per iteration (paper: 5 and 1%).
	EscalateAfter int
	EscalateRate  float64

	// MaxMoveDBU clamps the per-iteration displacement of each coordinate.
	MaxMoveDBU float64

	// TrustRadiusDBU bounds each Steiner point's TOTAL displacement from
	// its initial position ("we constrain the largest moving distance
	// according to the width and length of the global routing grid
	// graph"). It also keeps the search inside the region where the
	// learned evaluator was fit, so surrogate gradients stay meaningful.
	TrustRadiusDBU float64

	// RawGradient switches SO from the Adam-normalized update of Eq. 7 to
	// a plain gradient step X' = X − θ·∇P. The Barzilai–Borwein stepsize
	// of Eq. 9 is the secant inverse-curvature estimate for exactly this
	// un-normalized form; with it, low-|gradient| (noise) points barely
	// move while critical points move up to the clamp, which transfers
	// far better through the discrete routing stage.
	RawGradient bool

	// Ablation switches (all false in the paper's configuration).
	FixedTheta   float64 // >0 disables Adaptive_Theta and uses this stepsize
	AlwaysAccept bool    // disables best-solution tracking/restore

	// MaxRecoveries bounds the numerical-recovery policy: when a penalty,
	// gradient or stepsize goes non-finite, the step is discarded, the
	// loop rolls back to the tracked best forest and halves θ, and retries
	// — up to this many times across the run, after which the refiner
	// returns the best solution so far with Result.Degraded set instead of
	// an error. The surrogate never corrupts the kept solution.
	MaxRecoveries int

	// Budget bounds the refinement loop (wall clock and/or iterations,
	// checked before every iteration). On expiry the loop stops and
	// returns the best solution so far with Result.Cutoff recording the
	// reason. nil = unlimited.
	Budget *guard.Budget

	// CheckpointPath, when non-empty, makes the loop write an atomic,
	// CRC-checksummed snapshot of its full state (positions, SO moments,
	// best solution, λ escalation, θ) every CheckpointEvery iterations
	// (default 1). With Resume set, a valid checkpoint at that path is
	// loaded and the run continues from it — byte-identical to a run that
	// was never interrupted. A corrupt checkpoint fails loudly with a
	// *guard.CorruptError; a missing one starts fresh.
	CheckpointPath  string
	CheckpointEvery int
	Resume          bool

	// Fault is the deterministic fault injector (nil in production, zero
	// overhead). Armed sites: "core.nan" poisons the iteration's gradient,
	// "core.stall" delays an iteration past a wall-clock budget.
	Fault *fault.Injector

	// DisableWorkspace selects the allocating reference evaluation path
	// instead of the pooled workspace + forward-memo path. Both are
	// byte-identical (the differential gate TestWorkspaceForwardMatches-
	// Allocating holds them together); the flag exists for that gate and
	// for the bench harness's before/after comparison.
	DisableWorkspace bool
}

// DefaultOptions mirrors the paper's experiment settings.
func DefaultOptions() Options {
	return Options{
		LambdaW:        -200.0,
		LambdaT:        -2.0,
		Gamma:          10.0,
		Alpha:          5.0,
		Mu:             0.1,
		N:              25,
		Beta1:          0.9,
		Beta2:          0.999,
		Eps:            1e-8,
		EscalateAfter:  5,
		EscalateRate:   0.01,
		MaxMoveDBU:     8,
		TrustRadiusDBU: 12,
		MaxRecoveries:  3,
	}
}

// IterRecord traces one refinement iteration.
type IterRecord struct {
	WNS, TNS float64 // evaluated metrics of the candidate
	Accepted bool
	Theta    float64
}

// Result is the outcome of a refinement run.
type Result struct {
	Forest           *rsmt.Forest // refined Steiner trees (continuous positions)
	InitWNS, InitTNS float64      // evaluator metrics before refinement
	BestWNS, BestTNS float64      // evaluator metrics of the kept solution
	Iterations       int
	ConvergedByRatio bool
	RuntimeSec       float64
	History          []IterRecord

	// Degraded is set when the numerical-recovery budget was exhausted:
	// the returned forest is the tracked best solution, which is always
	// finite and valid, but the loop stopped early. Recoveries counts how
	// many non-finite steps were discarded (0 in a healthy run). Cutoff,
	// when non-empty, records why the budget stopped the loop.
	Degraded   bool
	Recoveries int
	Cutoff     string
}

// Refiner bundles the trained evaluator with a design's batch.
type Refiner struct {
	Model *gnn.Model
	Batch *gnn.Batch
	Prep  *flow.Prepared
	Opt   Options

	// sess is the lazily-built workspace evaluation session (one per
	// refiner, hence one per worker in parallel fan-outs).
	sess *evalSession
}

// NewRefiner validates inputs and builds a refiner.
func NewRefiner(m *gnn.Model, b *gnn.Batch, p *flow.Prepared, opt Options) (*Refiner, error) {
	if m == nil || b == nil || p == nil {
		return nil, fmt.Errorf("core: nil input")
	}
	if opt.Gamma <= 0 || opt.N <= 0 || opt.Alpha == 0 {
		return nil, fmt.Errorf("core: bad options %+v", opt)
	}
	return &Refiner{Model: m, Batch: b, Prep: p, Opt: opt}, nil
}

// sink returns the telemetry sink the refiner inherits from the flow
// config (nil = off). Telemetry is a side channel: nothing read from it
// ever feeds back into refinement.
func (r *Refiner) sink() *obs.Sink { return r.Prep.Config.Obs }

// evalMetrics runs a forward pass and returns hard (unsmoothed) WNS/TNS of
// the predicted endpoint slacks — the quantities Algorithm 1 compares.
func (r *Refiner) evalMetrics(f *rsmt.Forest) (wns, tns float64, err error) {
	r.sink().Add("core.evals", 1)
	if s := r.session(); s != nil {
		_, _, _, pred, err := s.forward(f)
		if err != nil {
			return 0, 0, err
		}
		wns, tns = hardMetrics(pred.Slack.Data)
		return wns, tns, nil
	}
	tp := tensor.NewTape()
	xs, ys, err := r.Batch.SteinerLeaves(tp, f)
	if err != nil {
		return 0, 0, err
	}
	pred, err := r.Model.Forward(tp, r.Batch, xs, ys, false)
	if err != nil {
		return 0, 0, err
	}
	wns, tns = hardMetrics(pred.Slack.Data)
	return wns, tns, nil
}

func hardMetrics(slack []float64) (wns, tns float64) {
	wns = math.Inf(1)
	for _, s := range slack {
		if s < wns {
			wns = s
		}
		if s < 0 {
			tns += s
		}
	}
	if len(slack) == 0 {
		wns = 0
	}
	return wns, tns
}

// gradients computes (∇_Xs P, ∇_Ys P) at the forest's current positions
// for the given λ weights (Section III-A), returning the penalty value of
// the forward pass as well (free for callers, logged by telemetry).
func (r *Refiner) gradients(f *rsmt.Forest, lw, lt float64) (gx, gy []float64, pval float64, err error) {
	r.sink().Add("core.grad_calls", 1)
	var tp *tensor.Tape
	var xs, ys *tensor.Tensor
	var pred *gnn.Prediction
	if s := r.session(); s != nil {
		tp, xs, ys, pred, err = s.forward(f)
		// Appending penalty ops and running Backward consume the
		// memoized tape: gradients accumulate, so it must not be
		// replayed (and callers may escalate λ between calls).
		s.invalidate()
	} else {
		tp = tensor.NewTape()
		xs, ys, err = r.Batch.SteinerLeaves(tp, f)
		if err == nil {
			pred, err = r.Model.Forward(tp, r.Batch, xs, ys, false)
		}
	}
	if err != nil {
		return nil, nil, 0, err
	}
	p, err := r.penalty(tp, pred, lw, lt)
	if err != nil {
		return nil, nil, 0, err
	}
	if err := tp.Backward(p); err != nil {
		return nil, nil, 0, err
	}
	// The returned slices are copies: workspace storage is reclaimed on
	// the next forward, and callers (adaptiveTheta, the NaN-recovery
	// fault site) hold and mutate them across further gradient calls.
	return append([]float64(nil), xs.Grad...), append([]float64(nil), ys.Grad...), p.Data[0], nil
}

// penalty builds P_γ = λ_w·w_γ + λ_t·t_γ on the tape (Eq. 4–6):
//
//	w_γ = −LSE(−s; γ)                (smooth min over endpoint slacks)
//	t_γ = −γ·Σ softplus(−s/γ)        (smooth Σ min(0, s))
func (r *Refiner) penalty(tp *tensor.Tape, pred *gnn.Prediction, lw, lt float64) (*tensor.Tensor, error) {
	negS, err := tp.Scale(pred.Slack, -1)
	if err != nil {
		return nil, err
	}
	lse, err := tp.LSE(negS, r.Opt.Gamma)
	if err != nil {
		return nil, err
	}
	wGamma, err := tp.Scale(lse, -1)
	if err != nil {
		return nil, err
	}
	scaled, err := tp.Scale(pred.Slack, -1/r.Opt.Gamma)
	if err != nil {
		return nil, err
	}
	sp, err := tp.Softplus(scaled)
	if err != nil {
		return nil, err
	}
	spSum, err := tp.Sum(sp)
	if err != nil {
		return nil, err
	}
	tGamma, err := tp.Scale(spSum, -r.Opt.Gamma)
	if err != nil {
		return nil, err
	}
	wTerm, err := tp.Scale(wGamma, lw)
	if err != nil {
		return nil, err
	}
	tTerm, err := tp.Scale(tGamma, lt)
	if err != nil {
		return nil, err
	}
	return tp.Add(wTerm, tTerm)
}

// Penalty evaluates the smoothed timing penalty P_γ (Eq. 4–6) at a
// forest's current positions without computing gradients.
func (r *Refiner) Penalty(f *rsmt.Forest) (float64, error) {
	r.sink().Add("core.penalty_evals", 1)
	var tp *tensor.Tape
	var pred *gnn.Prediction
	var err error
	if s := r.session(); s != nil {
		tp, _, _, pred, err = s.forward(f)
		s.invalidate() // penalty ops dirty the tape
	} else {
		tp = tensor.NewTape()
		var xs, ys *tensor.Tensor
		xs, ys, err = r.Batch.SteinerLeaves(tp, f)
		if err == nil {
			pred, err = r.Model.Forward(tp, r.Batch, xs, ys, false)
		}
	}
	if err != nil {
		return 0, err
	}
	p, err := r.penalty(tp, pred, r.Opt.LambdaW, r.Opt.LambdaT)
	if err != nil {
		return 0, err
	}
	return p.Data[0], nil
}

// Gradients exposes the sign-off timing gradients at a forest's current
// positions under the configured λ weights — the quantity Fig. 3's
// backward pass produces. Useful for analysis tooling on top of the
// refiner.
func (r *Refiner) Gradients(f *rsmt.Forest) (gx, gy []float64, err error) {
	gx, gy, _, err = r.gradients(f, r.Opt.LambdaW, r.Opt.LambdaT)
	return gx, gy, err
}

// adaptiveTheta implements Adaptive_Theta (Eq. 8–9): probe a small move
// along the gradient and form the secant-quotient stepsize.
func (r *Refiner) adaptiveTheta(f *rsmt.Forest) (float64, error) {
	gx0, gy0, _, err := r.gradients(f, r.Opt.LambdaW, r.Opt.LambdaT)
	if err != nil {
		return 0, err
	}
	probe := f.Clone()
	xs, ys, idx := probe.SteinerPositions()
	for i := range xs {
		xs[i] += r.Opt.Alpha * gx0[i]
		ys[i] += r.Opt.Alpha * gy0[i]
	}
	if err := probe.SetSteinerPositions(xs, ys, idx, r.Prep.Design.Die); err != nil {
		return 0, err
	}
	gx1, gy1, _, err := r.gradients(probe, r.Opt.LambdaW, r.Opt.LambdaT)
	if err != nil {
		return 0, err
	}
	// θ = |ΔX|₂ / |Δ∇|₂ over the concatenated (X, Y) vector. Positions
	// may have been clamped, so measure the realized displacement.
	x0, y0, _ := f.SteinerPositions()
	x1, y1, _ := probe.SteinerPositions()
	var dPos, dGrad float64
	for i := range x0 {
		dx := x1[i] - x0[i]
		dy := y1[i] - y0[i]
		dPos += dx*dx + dy*dy
		ggx := gx1[i] - gx0[i]
		ggy := gy1[i] - gy0[i]
		dGrad += ggx*ggx + ggy*ggy
	}
	theta := math.Sqrt(dPos) / math.Sqrt(dGrad)
	if dGrad < 1e-30 || dPos < 1e-30 || !finite(theta) ||
		!finiteAll(gx0) || !finiteAll(gy0) || !finiteAll(gx1) || !finiteAll(gy1) {
		// Flat landscape — or a non-finite probe, which the secant
		// quotient must never propagate into the loop: fall back to a
		// GCell-scale stepsize so the first iterations still explore.
		r.sink().Add("core.theta_fallbacks", 1)
		return float64(r.Prep.Config.GCellSize), nil
	}
	return theta, nil
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

func finiteAll(vals []float64) bool {
	for _, v := range vals {
		if !finite(v) {
			return false
		}
	}
	return true
}

// Refine runs Algorithm 1 from the prepared forest and returns the
// refined forest (positions are continuous; callers round via
// flow.Signoff's post-processing).
func (r *Refiner) Refine() (*Result, error) {
	return r.refineFrom(r.Prep.Forest, r.Opt.CheckpointPath)
}

// RefineRounds runs successive refinement rounds, re-anchoring the trust
// region at each round's best solution — the simplest instance of the
// paper's future-work direction of extending Steiner refinement beyond a
// single pre-routing pass. Later rounds can escape the first round's
// movement bound while each individual step stays within the region where
// the evaluator is locally valid.
func (r *Refiner) RefineRounds(rounds int) (*Result, error) {
	if rounds < 1 {
		return nil, fmt.Errorf("core: rounds %d < 1", rounds)
	}
	start := r.Prep.Forest
	var agg *Result
	for k := 0; k < rounds; k++ {
		ckpt := r.Opt.CheckpointPath
		if ckpt != "" {
			ckpt = fmt.Sprintf("%s.r%d", ckpt, k)
		}
		res, err := r.refineFrom(start, ckpt)
		if err != nil {
			return nil, err
		}
		if agg == nil {
			agg = res
		} else {
			agg.History = append(agg.History, res.History...)
			agg.Iterations += res.Iterations
			agg.RuntimeSec += res.RuntimeSec
			agg.BestWNS = res.BestWNS
			agg.BestTNS = res.BestTNS
			agg.ConvergedByRatio = res.ConvergedByRatio
			agg.Forest = res.Forest
			agg.Degraded = agg.Degraded || res.Degraded
			agg.Recoveries += res.Recoveries
			agg.Cutoff = res.Cutoff
		}
		start = res.Forest
		// A spent budget stops the round sequence too: later rounds would
		// cut off immediately and pollute the aggregate history.
		if res.Cutoff != "" {
			break
		}
	}
	return agg, nil
}

// refineFrom runs Algorithm 1 anchored at the given starting forest,
// checkpointing loop state to ckptPath ("" = no checkpoints) and — when
// Options.Resume is set — continuing from a valid checkpoint found there.
func (r *Refiner) refineFrom(startForest *rsmt.Forest, ckptPath string) (*Result, error) {
	t0 := time.Now()
	span := r.sink().Start("core.refine")
	defer span.End()
	opt := r.Opt
	opt.Budget.Start()
	nVars := r.Batch.NSteiner
	mX := make([]float64, nVars)
	vX := make([]float64, nVars)
	mY := make([]float64, nVars)
	vY := make([]float64, nVars)
	// Trust-region anchors: the round's starting positions. The index is
	// shared by every forest in the loop (clones preserve topology).
	x0, y0, idx := startForest.SteinerPositions()

	every := opt.CheckpointEvery
	if every <= 0 {
		every = 1
	}
	var st *refineState
	if opt.Resume && ckptPath != "" {
		var err error
		st, err = r.readState(ckptPath, nVars)
		if err != nil {
			return nil, err
		}
	}

	res := &Result{}
	var cur, best *rsmt.Forest
	var theta, lw, lt float64
	startIter := 0
	if st != nil {
		// Resume: the loop state is exactly what the interrupted run
		// carried at iteration st.Iter, so continuing is byte-identical
		// to never having been interrupted.
		var err error
		if cur, err = r.forestAt(startForest, st.CurX, st.CurY); err != nil {
			return nil, err
		}
		if best, err = r.forestAt(startForest, st.BestX, st.BestY); err != nil {
			return nil, err
		}
		copy(mX, st.MX)
		copy(vX, st.VX)
		copy(mY, st.MY)
		copy(vY, st.VY)
		theta, lw, lt = st.Theta, st.LW, st.LT
		startIter = st.Iter
		res.InitWNS, res.InitTNS = st.InitWNS, st.InitTNS
		res.BestWNS, res.BestTNS = st.BestWNS, st.BestTNS
		res.History = st.History
		res.Iterations = st.Iter
		res.Recoveries = st.Recoveries
		res.ConvergedByRatio = st.Converged
		r.sink().Add("core.resumes", 1)
		r.sink().Event("core.resume", obs.KV{K: "iter", V: st.Iter}, obs.KV{K: "path", V: ckptPath})
	} else {
		cur = startForest.Clone()
		initWNS, initTNS, err := r.evalMetrics(cur)
		if err != nil {
			return nil, err
		}
		res.InitWNS, res.InitTNS = initWNS, initTNS
		res.BestWNS, res.BestTNS = initWNS, initTNS
		theta = opt.FixedTheta
		if theta <= 0 {
			theta, err = r.adaptiveTheta(cur)
			if err != nil {
				return nil, err
			}
		}
		lw, lt = opt.LambdaW, opt.LambdaT
		best = cur.Clone()
	}
	initWNS, initTNS := res.InitWNS, res.InitTNS
	recoveries := res.Recoveries

	// Persistent per-loop storage, reused across iterations instead of
	// cloned: the candidate forest (SetSteinerPositions overwrites every
	// Steiner coordinate, and pin nodes are identical across clones) and
	// the coordinate staging buffers the SO step mutates.
	cand := startForest.Clone()
	xsBuf := make([]float64, nVars)
	ysBuf := make([]float64, nVars)

	for t := startIter; t < opt.N && !res.ConvergedByRatio; t++ {
		iterM0 := r.sink().Mallocs()
		if reason, over := opt.Budget.Exceeded(t); over {
			res.Cutoff = reason
			r.sink().Add("core.budget_cutoffs", 1)
			r.sink().Event("core.cutoff", obs.KV{K: "iter", V: t}, obs.KV{K: "reason", V: reason})
			break
		}
		opt.Fault.Stall("core.stall")
		gx, gy, penalty, err := r.gradients(cur, lw, lt)
		if err != nil {
			return nil, err
		}
		if opt.Fault.Fire("core.nan") && len(gx) > 0 {
			gx[0] = math.NaN()
		}
		if !finite(penalty) || !finite(theta) || !finiteAll(gx) || !finiteAll(gy) {
			// Numerical recovery: discard the poisoned step, roll back to
			// the tracked best solution, shrink the stepsize and retry.
			// The best forest is only ever assigned finite, accepted
			// candidates, so rollback is always safe.
			recoveries++
			res.Recoveries = recoveries
			r.sink().Add("core.recoveries", 1)
			r.sink().Event("core.recover",
				obs.KV{K: "iter", V: t},
				obs.KV{K: "recoveries", V: recoveries},
				obs.KV{K: "theta", V: theta})
			if recoveries > opt.MaxRecoveries {
				res.Degraded = true
				break
			}
			if err := cur.CopyPositionsFrom(best); err != nil {
				return nil, err
			}
			if !finite(theta) {
				theta = float64(r.Prep.Config.GCellSize)
			} else {
				theta /= 2
			}
			t--
			continue
		}
		cur.CopySteinerPositionsInto(xsBuf, ysBuf)
		xs, ys := xsBuf, ysBuf
		// stepSq/clamped observe the update for telemetry only; they are
		// derived from the same deterministic arithmetic, never fed back.
		var stepSq float64
		var clamped int
		step := func(pos, g, mAcc, vAcc []float64) {
			for i := range pos {
				var d float64
				if opt.RawGradient {
					d = theta * g[i]
				} else {
					mAcc[i] = opt.Beta1*mAcc[i] + (1-opt.Beta1)*g[i]
					vAcc[i] = opt.Beta2*vAcc[i] + (1-opt.Beta2)*g[i]*g[i]
					d = theta * mAcc[i] / (math.Sqrt(vAcc[i]) + opt.Eps)
				}
				if opt.MaxMoveDBU > 0 {
					if d > opt.MaxMoveDBU {
						d = opt.MaxMoveDBU
						clamped++
					}
					if d < -opt.MaxMoveDBU {
						d = -opt.MaxMoveDBU
						clamped++
					}
				}
				pos[i] -= d
				stepSq += d * d
			}
		}
		step(xs, gx, mX, vX)
		step(ys, gy, mY, vY)
		if rr := opt.TrustRadiusDBU; rr > 0 {
			for i := range xs {
				cx := clampTo(xs[i], x0[i]-rr, x0[i]+rr)
				cy := clampTo(ys[i], y0[i]-rr, y0[i]+rr)
				if cx != xs[i] {
					clamped++
				}
				if cy != ys[i] {
					clamped++
				}
				xs[i], ys[i] = cx, cy
			}
		}
		if err := cand.SetSteinerPositions(xs, ys, idx, r.Prep.Design.Die); err != nil {
			return nil, err
		}

		wns, tns, err := r.evalMetrics(cand)
		if err != nil {
			return nil, err
		}
		accepted := opt.AlwaysAccept || wns > res.BestWNS || tns > res.BestTNS
		if accepted {
			if wns > res.BestWNS || tns > res.BestTNS {
				res.BestWNS = wns
				res.BestTNS = tns
				if err := best.CopyPositionsFrom(cand); err != nil {
					return nil, err
				}
			}
			// S_T^(t+1) ← candidate: swap the forests so the old cur
			// becomes next iteration's scratch candidate.
			cur, cand = cand, cur
		}
		// On rejection cur is kept: S_T^(t+1) ← S_T^(t) (Alg. 1 line 13).
		res.History = append(res.History, IterRecord{WNS: wns, TNS: tns, Accepted: accepted, Theta: theta})
		res.Iterations = t + 1
		r.sink().Add("core.iterations", 1)
		if r.sink().Enabled() {
			// Per-iteration allocation count — the quantity this PR's
			// workspace path drives toward zero. Telemetry only.
			r.sink().Observe("core.iter_allocs", float64(r.sink().Mallocs()-iterM0))
		}
		r.sink().Event("core.iter",
			obs.KV{K: "iter", V: t + 1},
			obs.KV{K: "penalty", V: penalty},
			obs.KV{K: "wns", V: wns}, obs.KV{K: "tns", V: tns},
			obs.KV{K: "theta", V: theta},
			obs.KV{K: "step_norm", V: math.Sqrt(stepSq)},
			obs.KV{K: "clamped", V: clamped},
			obs.KV{K: "accepted", V: accepted},
			obs.KV{K: "best_wns", V: res.BestWNS}, obs.KV{K: "best_tns", V: res.BestTNS})

		if t+1 >= opt.EscalateAfter {
			lw *= 1 + opt.EscalateRate
			lt *= 1 + opt.EscalateRate
		}

		if ratioImproved(initWNS, res.BestWNS, opt.Mu) || ratioImproved(initTNS, res.BestTNS, opt.Mu) {
			res.ConvergedByRatio = true
		}
		if ckptPath != "" && ((t+1)%every == 0 || res.ConvergedByRatio) {
			cx, cy, _ := cur.SteinerPositions()
			bx, by, _ := best.SteinerPositions()
			snap := &refineState{
				Iter: t + 1, Theta: theta, LW: lw, LT: lt,
				CurX: cx, CurY: cy, BestX: bx, BestY: by,
				MX: mX, VX: vX, MY: mY, VY: vY,
				InitWNS: initWNS, InitTNS: initTNS,
				BestWNS: res.BestWNS, BestTNS: res.BestTNS,
				History: res.History, Recoveries: recoveries,
				Converged: res.ConvergedByRatio,
			}
			if err := r.writeState(ckptPath, snap); err != nil {
				return nil, err
			}
		}
	}

	res.Forest = best
	res.RuntimeSec = time.Since(t0).Seconds()
	done := []obs.KV{
		{K: "iterations", V: res.Iterations},
		{K: "converged", V: res.ConvergedByRatio},
		{K: "init_wns", V: res.InitWNS}, {K: "best_wns", V: res.BestWNS},
		{K: "init_tns", V: res.InitTNS}, {K: "best_tns", V: res.BestTNS},
	}
	if r.sess != nil {
		st := r.sess.ws.Stats()
		done = append(done,
			obs.KV{K: "ws_grabs", V: st.Grabs},
			obs.KV{K: "ws_hits", V: st.Hits})
	}
	r.sink().Event("core.done", done...)
	return res, nil
}

func clampTo(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ratioImproved implements Algorithm 1 line 19: (init − best)/init > μ.
// With negative metrics this is the fractional improvement toward zero;
// non-negative, zero or non-finite initial metrics cannot trigger it (a
// NaN or ±Inf metric must never fake convergence), and a non-finite best
// metric never counts as an improvement.
func ratioImproved(init, best, mu float64) bool {
	if !finite(init) || !finite(best) || init >= 0 {
		return false
	}
	return (init-best)/init > mu
}
