package core

import (
	"fmt"

	"tsteiner/internal/guard"
	"tsteiner/internal/rsmt"
)

// refineState is the checkpointed loop state of refineFrom — everything
// Algorithm 1 carries across iterations. Positions are stored as raw
// coordinate vectors; the tree topology is not serialized because it is
// re-derived deterministically from the starting forest on resume.
type refineState struct {
	Iter             int
	Theta            float64
	LW, LT           float64
	CurX, CurY       []float64
	BestX, BestY     []float64
	MX, VX           []float64
	MY, VY           []float64
	InitWNS, InitTNS float64
	BestWNS, BestTNS float64
	History          []IterRecord
	Recoveries       int
	Converged        bool
}

// writeState seals the loop state in a CRC-checksummed envelope and writes
// it atomically, so a crash mid-write can never leave a checkpoint that
// both exists and lies.
func (r *Refiner) writeState(path string, st *refineState) error {
	return guard.WriteCheckpoint(path, st, r.Opt.Fault)
}

// readState loads and validates a refinement checkpoint. A missing file
// returns (nil, nil) — a fresh start; a structurally inconsistent one (for
// a different design, or with mangled vectors) is a *guard.CorruptError:
// resuming the wrong state silently would violate the byte-identity
// contract in the worst possible way.
func (r *Refiner) readState(path string, nVars int) (*refineState, error) {
	st := new(refineState)
	ok, err := guard.ReadCheckpoint(path, st)
	if err != nil || !ok {
		return nil, err
	}
	vecs := []struct {
		name string
		v    []float64
	}{
		{"CurX", st.CurX}, {"CurY", st.CurY},
		{"BestX", st.BestX}, {"BestY", st.BestY},
		{"MX", st.MX}, {"VX", st.VX}, {"MY", st.MY}, {"VY", st.VY},
	}
	for _, w := range vecs {
		if len(w.v) != nVars {
			return nil, &guard.CorruptError{
				Path:   path,
				Reason: fmt.Sprintf("%s has %d entries, design has %d Steiner vars", w.name, len(w.v), nVars),
			}
		}
	}
	if st.Iter < 0 || st.Iter != len(st.History) {
		return nil, &guard.CorruptError{
			Path:   path,
			Reason: fmt.Sprintf("iteration counter %d inconsistent with %d history records", st.Iter, len(st.History)),
		}
	}
	return st, nil
}

// forestAt rebuilds a forest with the starting topology and the
// checkpointed coordinates.
func (r *Refiner) forestAt(startForest *rsmt.Forest, xs, ys []float64) (*rsmt.Forest, error) {
	f := startForest.Clone()
	_, _, idx := f.SteinerPositions()
	if err := f.SetSteinerPositions(xs, ys, idx, r.Prep.Design.Die); err != nil {
		return nil, err
	}
	return f, nil
}
