package core

import (
	"math"
	"strings"
	"testing"

	"tsteiner/internal/obs"
)

// TestBatchedRefineMatchesSequential is the differential gate for the
// multi-candidate refine loop: with CandidateLanes = 4, the fused
// batched evaluation path (workspace + ForwardBatch + lane-granular
// gradient memo) and the allocating sequential path (K plain forwards,
// fresh gradient tapes) must produce byte-identical trajectories —
// every history record, both best metrics, and the final coordinates.
func TestBatchedRefineMatchesSequential(t *testing.T) {
	r, _ := fixture(t)
	run := func(disableWS bool) *Result {
		opt := DefaultOptions()
		opt.CandidateLanes = 4
		opt.Mu = 10 // never converge by ratio: exercise every iteration
		opt.N = 12
		opt.DisableWorkspace = disableWS
		r2, err := NewRefiner(r.Model, r.Batch, r.Prep, opt)
		if err != nil {
			t.Fatal(err)
		}
		res, err := r2.Refine()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	batched := run(false)
	seq := run(true)

	if batched.InitWNS != seq.InitWNS || batched.InitTNS != seq.InitTNS {
		t.Fatalf("initial metrics diverge: (%v,%v) vs (%v,%v)",
			batched.InitWNS, batched.InitTNS, seq.InitWNS, seq.InitTNS)
	}
	if batched.BestWNS != seq.BestWNS || batched.BestTNS != seq.BestTNS {
		t.Fatalf("best metrics diverge: (%v,%v) vs (%v,%v)",
			batched.BestWNS, batched.BestTNS, seq.BestWNS, seq.BestTNS)
	}
	if batched.Iterations != seq.Iterations || len(batched.History) != len(seq.History) {
		t.Fatalf("iteration counts diverge: %d/%d vs %d/%d",
			batched.Iterations, len(batched.History), seq.Iterations, len(seq.History))
	}
	for i := range batched.History {
		b, s := batched.History[i], seq.History[i]
		if b != s {
			t.Fatalf("history[%d] diverges: %+v vs %+v", i, b, s)
		}
	}
	bx, by, _ := batched.Forest.SteinerPositions()
	sx, sy, _ := seq.Forest.SteinerPositions()
	for i := range bx {
		if bx[i] != sx[i] || by[i] != sy[i] {
			t.Fatalf("final coordinate %d diverges: (%v,%v) vs (%v,%v)", i, bx[i], by[i], sx[i], sy[i])
		}
	}
}

// TestCandidateLanesOnePreservesDefaultPath pins CandidateLanes ∈ {0, 1}
// to the single-candidate algorithm: both must run the exact default
// trajectory (no lane staging, no batched forward).
func TestCandidateLanesOnePreservesDefaultPath(t *testing.T) {
	r, _ := fixture(t)
	run := func(lanes int) *Result {
		opt := DefaultOptions()
		opt.CandidateLanes = lanes
		r2, err := NewRefiner(r.Model, r.Batch, r.Prep, opt)
		if err != nil {
			t.Fatal(err)
		}
		res, err := r2.Refine()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	def := run(0)
	one := run(1)
	if def.BestWNS != one.BestWNS || def.BestTNS != one.BestTNS || def.Iterations != one.Iterations {
		t.Fatalf("CandidateLanes=1 diverged from default: (%v,%v,%d) vs (%v,%v,%d)",
			one.BestWNS, one.BestTNS, one.Iterations, def.BestWNS, def.BestTNS, def.Iterations)
	}
	for i := range def.History {
		if def.History[i] != one.History[i] {
			t.Fatalf("history[%d] diverges: %+v vs %+v", i, def.History[i], one.History[i])
		}
		if one.History[i].Lane != 0 {
			t.Fatalf("single-candidate path recorded lane %d", one.History[i].Lane)
		}
	}
}

// TestBatchedRefineUsesLaneMemo asserts the lane-granular memo actually
// fires: after an accepted multi-candidate iteration, the next gradient
// request must be served from the batched tape (counter
// core.lane_memo_hits), and every batched evaluation must report its
// lane count (counter core.batch_lanes).
func TestBatchedRefineUsesLaneMemo(t *testing.T) {
	r, _ := fixture(t)
	sink := obs.New(nil)
	prep := *r.Prep
	prep.Config.Obs = sink
	opt := DefaultOptions()
	opt.CandidateLanes = 4
	opt.Mu = 10
	opt.N = 8
	r2, err := NewRefiner(r.Model, r.Batch, &prep, opt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r2.Refine()
	if err != nil {
		t.Fatal(err)
	}
	accepted := 0
	for _, h := range res.History {
		if h.Accepted {
			accepted++
		}
	}
	var sb strings.Builder
	if err := sink.WriteSummary(&sb); err != nil {
		t.Fatal(err)
	}
	summary := sb.String()
	if !strings.Contains(summary, "core.batch_lanes") {
		t.Fatalf("no core.batch_lanes counter in summary:\n%s", summary)
	}
	if accepted > 0 && !strings.Contains(summary, "core.lane_memo_hits") {
		t.Fatalf("%d accepted iterations but no lane memo hit:\n%s", accepted, summary)
	}
	if !strings.Contains(summary, "gnn.batch_amortized_ns") {
		t.Fatalf("no amortized-forward histogram in summary:\n%s", summary)
	}
}

func TestChooseLane(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		wns, tns []float64
		want     int
	}{
		{[]float64{-5, -3, -4}, []float64{-10, -10, -10}, 1},     // max WNS wins
		{[]float64{-5, -5, -5}, []float64{-10, -8, -9}, 1},       // WNS tie → max TNS
		{[]float64{-5, -5}, []float64{-10, -10}, 0},              // full tie → lowest lane
		{[]float64{nan, -7}, []float64{nan, -10}, 1},             // NaN never wins
		{[]float64{-7, nan}, []float64{-10, nan}, 0},             // NaN never displaces
		{[]float64{nan, nan}, []float64{nan, nan}, 0},            // all poisoned → lane 0
		{[]float64{-5, math.Inf(1)}, []float64{-10, -1}, 0},      // Inf treated as poisoned
		{[]float64{-5, -5}, []float64{-10, math.Inf(-1)}, 0},     // non-finite TNS too
		{[]float64{-9, -2, -2, -4}, []float64{-20, -6, -5, -8}, 2},
	}
	for i, c := range cases {
		if got := chooseLane(c.wns, c.tns); got != c.want {
			t.Fatalf("case %d: chooseLane=%d want %d", i, got, c.want)
		}
	}
}
