package core

import (
	"math"
	"testing"

	"tsteiner/internal/guard/fault"
	"tsteiner/internal/sta"
)

// TestMatrixMetrics pins the matrix accept pair against a hand
// computation: worst-corner WNS and corner-summed TNS under the affine
// corner-slack transform.
func TestMatrixMetrics(t *testing.T) {
	terms := []CornerTerm{
		{Corner: sta.TypicalCorner(), Lambda: 1},
		{Corner: sta.Corner{Name: "slow2x", DelayScale: 2, SlewScale: 1, ClockScale: 1}, Lambda: 1},
	}
	clock := 1.0
	slack := []float64{-0.5, 0.25}
	// typical: slacks (-0.5, 0.25) → wns −0.5, tns −0.5.
	// slow2x: s_c = 2s − T → (−2, −0.5) → wns −2, tns −2.5.
	wns, tns := matrixMetrics(slack, terms, clock)
	if wns != -2 || tns != -3 {
		t.Fatalf("matrixMetrics=(%g,%g), want (-2,-3)", wns, tns)
	}
	// Degenerate shapes keep the hardMetrics conventions.
	if w, tn := matrixMetrics(nil, terms, clock); w != 0 || tn != 0 {
		t.Fatalf("empty slack metrics=(%g,%g)", w, tn)
	}
	if w, tn := matrixMetrics(slack, nil, clock); w != 0 || tn != 0 {
		t.Fatalf("empty terms metrics=(%g,%g)", w, tn)
	}
}

// TestCornerTermsValidation: NewRefiner must reject corrupt matrix
// configurations (bad corner, duplicate names, non-finite weights).
func TestCornerTermsValidation(t *testing.T) {
	r, _ := fixture(t)
	bad := [][]CornerTerm{
		{{Corner: sta.Corner{Name: "", DelayScale: 1, SlewScale: 1, ClockScale: 1}, Lambda: 1}},
		{{Corner: sta.TypicalCorner(), Lambda: 1}, {Corner: sta.TypicalCorner(), Lambda: 1}},
		{{Corner: sta.TypicalCorner(), Lambda: math.NaN()}},
		{{Corner: sta.TypicalCorner(), Lambda: -1}},
	}
	for i, terms := range bad {
		opt := DefaultOptions()
		opt.Corners = terms
		if _, err := NewRefiner(r.Model, r.Batch, r.Prep, opt); err == nil {
			t.Fatalf("case %d: corrupt corner terms accepted", i)
		}
	}
}

// TestRefineCornerTypicalOnlyByteIdentical: a matrix of exactly the
// unit-weight typical corner must reproduce the single-corner
// refinement byte for byte — the backward-compatibility pin for the
// core layer.
func TestRefineCornerTypicalOnlyByteIdentical(t *testing.T) {
	r, _ := fixture(t)
	clean, err := refinerWith(t, r, guardOptions()).Refine()
	if err != nil {
		t.Fatal(err)
	}
	copt := guardOptions()
	copt.Corners = []CornerTerm{{Corner: sta.TypicalCorner(), Lambda: 1.0}}
	cornered, err := refinerWith(t, r, copt).Refine()
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, clean, cornered, "typical-matrix-vs-single")
}

// TestCornerPenaltyScalesExactly: with one typical term of weight 2
// the matrix penalty is Scale(P, 2) — exact in IEEE-754 — so Penalty()
// must return exactly twice the single-corner value.
func TestCornerPenaltyScalesExactly(t *testing.T) {
	r, _ := fixture(t)
	base, err := refinerWith(t, r, DefaultOptions()).Penalty(r.Prep.Forest)
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.Corners = []CornerTerm{{Corner: sta.TypicalCorner(), Lambda: 2.0}}
	doubled, err := refinerWith(t, r, opt).Penalty(r.Prep.Forest)
	if err != nil {
		t.Fatal(err)
	}
	if doubled != 2*base {
		t.Fatalf("matrix penalty %v != 2×single %v", doubled, 2*base)
	}
}

// TestRefineMultiCornerRuns: the full three-corner matrix refines
// without error, keeps finite matrix metrics, and never regresses the
// matrix WNS/TNS pair (the accept rule is lexicographic on it).
func TestRefineMultiCornerRuns(t *testing.T) {
	r, _ := fixture(t)
	opt := guardOptions()
	opt.Corners = DefaultCornerTerms()
	res, err := refinerWith(t, r, opt).Refine()
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations == 0 {
		t.Fatal("no iterations ran")
	}
	for _, v := range []float64{res.InitWNS, res.InitTNS, res.BestWNS, res.BestTNS} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("non-finite matrix metric in %+v", res)
		}
	}
	if res.BestWNS < res.InitWNS || (res.BestWNS == res.InitWNS && res.BestTNS < res.InitTNS) {
		t.Fatalf("matrix metrics regressed: (%g,%g) -> (%g,%g)",
			res.InitWNS, res.InitTNS, res.BestWNS, res.BestTNS)
	}
}

// TestHoldCornerSelection: the guard checks the minimum-DelayScale
// corner, falling back to the fast preset for single-corner runs.
func TestHoldCornerSelection(t *testing.T) {
	r, _ := fixture(t)
	if c := r.holdCorner(); c != sta.FastCorner() {
		t.Fatalf("single-corner hold corner %+v, want fast preset", c)
	}
	opt := DefaultOptions()
	opt.Corners = []CornerTerm{
		{Corner: sta.SlowCorner(), Lambda: 1},
		{Corner: sta.Corner{Name: "ff", DelayScale: 0.7, SlewScale: 0.8, ClockScale: 1}, Lambda: 1},
		{Corner: sta.TypicalCorner(), Lambda: 1},
	}
	r2 := refinerWith(t, r, opt)
	if c := r2.holdCorner(); c.Name != "ff" {
		t.Fatalf("hold corner %q, want the minimum-DelayScale corner ff", c.Name)
	}
}

// TestRefineHoldGuardNeverWorsensHold is the co-optimization contract:
// with the guard on, the kept solution can never have more fast-corner
// hold violations than the starting forest.
func TestRefineHoldGuardNeverWorsensHold(t *testing.T) {
	r, _ := fixture(t)
	opt := guardOptions()
	opt.Corners = DefaultCornerTerms()
	opt.HoldGuard = true
	rg := refinerWith(t, r, opt)
	base, err := rg.holdVios(r.Prep.Forest)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rg.Refine()
	if err != nil {
		t.Fatal(err)
	}
	final, err := rg.holdVios(res.Forest)
	if err != nil {
		t.Fatal(err)
	}
	if final > base {
		t.Fatalf("hold guard let violations rise: %d -> %d", base, final)
	}
}

// TestRefineMultiCornerNaNDegradesToBest extends the seeded fault
// matrix with the multi-corner case: persistent NaN injected into one
// corner's derated slack must exhaust the recovery budget and degrade
// that refinement to exactly the clean prefix's best-so-far — without
// poisoning the other corners' view of the kept solution.
func TestRefineMultiCornerNaNDegradesToBest(t *testing.T) {
	r, _ := fixture(t)
	const k = 3
	copt := guardOptions()
	copt.N = k
	copt.Corners = DefaultCornerTerms()
	clean, err := refinerWith(t, r, copt).Refine()
	if err != nil {
		t.Fatal(err)
	}

	fopt := guardOptions()
	fopt.Corners = DefaultCornerTerms()
	fopt.MaxRecoveries = 2
	inj := fault.New(7)
	// The site fires once per gradient build: two adaptive-θ probes,
	// then one per iteration — occurrence k+3 is iteration k's gradient.
	inj.ArmFrom("core.corner.nan", k+3)
	fopt.Fault = inj
	faulty, err := refinerWith(t, r, fopt).Refine()
	if err != nil {
		t.Fatalf("persistent corner fault surfaced as error: %v", err)
	}
	if !faulty.Degraded {
		t.Fatal("exhausted recoveries did not set Degraded")
	}
	sameResult(t, clean, faulty, "corner-degraded-equals-clean-prefix")

	// The kept solution stays finite at every corner of the matrix.
	for _, ct := range DefaultCornerTerms() {
		sopt := guardOptions()
		sopt.Corners = []CornerTerm{ct}
		rv := refinerWith(t, r, sopt)
		wns, tns, err := rv.evalMetrics(faulty.Forest)
		if err != nil {
			t.Fatal(err)
		}
		if !finite(wns) || !finite(tns) {
			t.Fatalf("corner %q poisoned: metrics (%g,%g)", ct.Corner.Name, wns, tns)
		}
	}
}
