package core

import (
	"tsteiner/internal/gnn"
	"tsteiner/internal/rsmt"
	"tsteiner/internal/tensor"
)

// evalSession is the refiner's workspace-backed evaluation state: one
// tensor arena reused across iterations plus a single-entry memo of the
// last forward pass, keyed by the exact Steiner coordinates. Algorithm 1
// evaluates a candidate (evalMetrics) and, when it is accepted, asks for
// gradients at the very same positions next iteration — the memo turns
// that second Forward into a lookup. Forward passes are deterministic
// functions of the coordinates, so replaying a cached tape is
// byte-identical to recomputing it.
//
// The memo may be consumed by at most one Backward (gradients accumulate
// into the cached leaves), and appending penalty ops dirties the tape, so
// both gradient and penalty evaluations invalidate it. A session belongs
// to one refiner and, like the model (see Model.Clone), must not be used
// from two goroutines: parallel refinement runs each own a session.
type evalSession struct {
	r  *Refiner
	ws *tensor.Workspace

	// curX/curY stage the forest's coordinates for the memo comparison.
	curX, curY []float64
	// Memoized forward pass (valid only until the next workspace reset).
	memoX, memoY []float64
	memoValid    bool
	tp           *tensor.Tape
	xs, ys       *tensor.Tensor
	pred         *gnn.Prediction

	// Batched candidate memo: the last ForwardBatch's tape with its
	// lane-major coordinates. laneGradients serves a gradient request
	// whose coordinates are bit-identical to one lane by appending the
	// penalty and backward-propagating a lane slice — the second forward
	// Algorithm 1 would otherwise pay at the accepted candidate's
	// positions. Shares the workspace with the unbatched memo, so at
	// most one of the two is valid at a time.
	bX, bY []float64
	bLanes int
	bTp    *tensor.Tape
	bp     *gnn.BatchPrediction
	bValid bool
}

func newEvalSession(r *Refiner) *evalSession {
	n := r.Batch.NSteiner
	return &evalSession{
		r:    r,
		ws:   tensor.NewWorkspace(),
		curX: make([]float64, n), curY: make([]float64, n),
		memoX: make([]float64, n), memoY: make([]float64, n),
	}
}

// session returns the refiner's lazily-built evaluation session, or nil
// when Options.DisableWorkspace selects the allocating reference path.
func (r *Refiner) session() *evalSession {
	if r.Opt.DisableWorkspace {
		return nil
	}
	if r.sess == nil {
		r.sess = newEvalSession(r)
	}
	return r.sess
}

// invalidate drops the memoized forward passes — unbatched and batched —
// (the workspace storage itself is reclaimed by the next forward's reset).
func (s *evalSession) invalidate() {
	s.memoValid = false
	s.tp, s.xs, s.ys, s.pred = nil, nil, nil, nil
	s.bValid = false
	s.bTp, s.bp = nil, nil
}

func sliceEq(a, b []float64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// forward returns the evaluator's forward pass at f's current positions,
// reusing the memoized tape when the coordinates are bit-identical to the
// previous call's.
func (s *evalSession) forward(f *rsmt.Forest) (*tensor.Tape, *tensor.Tensor, *tensor.Tensor, *gnn.Prediction, error) {
	if err := s.r.Batch.FillSteinerCoords(f, s.curX, s.curY); err != nil {
		return nil, nil, nil, nil, err
	}
	if s.memoValid && sliceEq(s.curX, s.memoX) && sliceEq(s.curY, s.memoY) {
		s.r.sink().Add("core.memo_hits", 1)
		return s.tp, s.xs, s.ys, s.pred, nil
	}
	s.invalidate()
	tp := s.ws.Tape()
	xs, ys, err := s.r.Batch.LeavesFromCoords(tp, s.curX, s.curY)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	pred, err := s.r.Model.Forward(tp, s.r.Batch, xs, ys, false)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	copy(s.memoX, s.curX)
	copy(s.memoY, s.curY)
	s.tp, s.xs, s.ys, s.pred = tp, xs, ys, pred
	s.memoValid = true
	return tp, xs, ys, pred, nil
}

// forwardBatch runs one fused K-lane forward at the staged candidate
// coordinates (lane-major), memoizing the tape so a following gradient
// request at one lane's exact coordinates can reuse it.
func (s *evalSession) forwardBatch(lanes int, laneXs, laneYs []float64) (*gnn.BatchPrediction, error) {
	s.invalidate()
	tp := s.ws.Tape()
	bp, err := s.r.Model.ForwardBatch(tp, s.r.Batch, lanes, laneXs, laneYs, false)
	if err != nil {
		return nil, err
	}
	n := lanes * s.r.Batch.NSteiner
	if cap(s.bX) < n {
		s.bX = make([]float64, n)
		s.bY = make([]float64, n)
	}
	s.bX, s.bY = s.bX[:n], s.bY[:n]
	copy(s.bX, laneXs)
	copy(s.bY, laneYs)
	s.bLanes, s.bTp, s.bp, s.bValid = lanes, tp, bp, true
	return bp, nil
}

// laneGradients serves a gradient request from the batched memo when f's
// coordinates are bit-identical to one memoized lane: the penalty is
// appended per-lane on the K-lane slack, a lane slice selects the
// matching candidate's scalar, and Backward leaves that candidate's
// exact gradient in its lane of the coordinate leaves (the other lanes
// receive exact zeros). ok reports whether the request was served; a
// miss falls back to a fresh forward.
func (s *evalSession) laneGradients(f *rsmt.Forest, lw, lt float64) (gx, gy []float64, pval float64, ok bool, err error) {
	if !s.bValid {
		return nil, nil, 0, false, nil
	}
	if err := s.r.Batch.FillSteinerCoords(f, s.curX, s.curY); err != nil {
		return nil, nil, 0, false, err
	}
	n := s.r.Batch.NSteiner
	lane := -1
	for k := 0; k < s.bLanes; k++ {
		if sliceEq(s.curX, s.bX[k*n:(k+1)*n]) && sliceEq(s.curY, s.bY[k*n:(k+1)*n]) {
			lane = k
			break
		}
	}
	if lane < 0 {
		return nil, nil, 0, false, nil
	}
	s.r.sink().Add("core.memo_hits", 1)
	s.r.sink().Add("core.lane_memo_hits", 1)
	tp, bp := s.bTp, s.bp
	// The memo is consumed either way: penalty ops dirty the tape and
	// Backward accumulates into its leaves.
	defer s.invalidate()
	p, err := s.r.penaltyMatrixOn(tp, bp.Slack, lw, lt)
	if err != nil {
		return nil, nil, 0, true, err
	}
	loss, err := tp.SliceLane(p, lane)
	if err != nil {
		return nil, nil, 0, true, err
	}
	if err := tp.Backward(loss); err != nil {
		return nil, nil, 0, true, err
	}
	// Copies: workspace storage is reclaimed on the next forward, and
	// callers hold the slices across further gradient calls.
	gx = append([]float64(nil), bp.Xs.LaneGrad(lane)...)
	gy = append([]float64(nil), bp.Ys.LaneGrad(lane)...)
	return gx, gy, loss.Data[0], true, nil
}
