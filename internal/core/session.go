package core

import (
	"tsteiner/internal/gnn"
	"tsteiner/internal/rsmt"
	"tsteiner/internal/tensor"
)

// evalSession is the refiner's workspace-backed evaluation state: one
// tensor arena reused across iterations plus a single-entry memo of the
// last forward pass, keyed by the exact Steiner coordinates. Algorithm 1
// evaluates a candidate (evalMetrics) and, when it is accepted, asks for
// gradients at the very same positions next iteration — the memo turns
// that second Forward into a lookup. Forward passes are deterministic
// functions of the coordinates, so replaying a cached tape is
// byte-identical to recomputing it.
//
// The memo may be consumed by at most one Backward (gradients accumulate
// into the cached leaves), and appending penalty ops dirties the tape, so
// both gradient and penalty evaluations invalidate it. A session belongs
// to one refiner and, like the model (see Model.Clone), must not be used
// from two goroutines: parallel refinement runs each own a session.
type evalSession struct {
	r  *Refiner
	ws *tensor.Workspace

	// curX/curY stage the forest's coordinates for the memo comparison.
	curX, curY []float64
	// Memoized forward pass (valid only until the next workspace reset).
	memoX, memoY []float64
	memoValid    bool
	tp           *tensor.Tape
	xs, ys       *tensor.Tensor
	pred         *gnn.Prediction
}

func newEvalSession(r *Refiner) *evalSession {
	n := r.Batch.NSteiner
	return &evalSession{
		r:    r,
		ws:   tensor.NewWorkspace(),
		curX: make([]float64, n), curY: make([]float64, n),
		memoX: make([]float64, n), memoY: make([]float64, n),
	}
}

// session returns the refiner's lazily-built evaluation session, or nil
// when Options.DisableWorkspace selects the allocating reference path.
func (r *Refiner) session() *evalSession {
	if r.Opt.DisableWorkspace {
		return nil
	}
	if r.sess == nil {
		r.sess = newEvalSession(r)
	}
	return r.sess
}

// invalidate drops the memoized forward pass (the workspace storage
// itself is reclaimed by the next forward's reset).
func (s *evalSession) invalidate() {
	s.memoValid = false
	s.tp, s.xs, s.ys, s.pred = nil, nil, nil, nil
}

func sliceEq(a, b []float64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// forward returns the evaluator's forward pass at f's current positions,
// reusing the memoized tape when the coordinates are bit-identical to the
// previous call's.
func (s *evalSession) forward(f *rsmt.Forest) (*tensor.Tape, *tensor.Tensor, *tensor.Tensor, *gnn.Prediction, error) {
	if err := s.r.Batch.FillSteinerCoords(f, s.curX, s.curY); err != nil {
		return nil, nil, nil, nil, err
	}
	if s.memoValid && sliceEq(s.curX, s.memoX) && sliceEq(s.curY, s.memoY) {
		s.r.sink().Add("core.memo_hits", 1)
		return s.tp, s.xs, s.ys, s.pred, nil
	}
	s.invalidate()
	tp := s.ws.Tape()
	xs, ys, err := s.r.Batch.LeavesFromCoords(tp, s.curX, s.curY)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	pred, err := s.r.Model.Forward(tp, s.r.Batch, xs, ys, false)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	copy(s.memoX, s.curX)
	copy(s.memoY, s.curY)
	s.tp, s.xs, s.ys, s.pred = tp, xs, ys, pred
	s.memoValid = true
	return tp, xs, ys, pred, nil
}
