package core

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"tsteiner/internal/guard"
	"tsteiner/internal/guard/fault"
)

// guardOptions is the base configuration for the fault/resume tests: a
// short, never-converging run so every test exercises a known number of
// iterations.
func guardOptions() Options {
	opt := DefaultOptions()
	opt.N = 5
	opt.Mu = 10 // never converge by ratio
	return opt
}

func refinerWith(t *testing.T, r *Refiner, opt Options) *Refiner {
	t.Helper()
	r2, err := NewRefiner(r.Model, r.Batch, r.Prep, opt)
	if err != nil {
		t.Fatal(err)
	}
	return r2
}

// sameResult asserts byte-identical refinement outcomes: metrics, history
// and the kept forest's exact coordinates. RuntimeSec and the robustness
// bookkeeping fields are excluded by design.
func sameResult(t *testing.T, a, b *Result, label string) {
	t.Helper()
	if a.InitWNS != b.InitWNS || a.InitTNS != b.InitTNS {
		t.Fatalf("%s: init metrics differ: (%g,%g) vs (%g,%g)", label, a.InitWNS, a.InitTNS, b.InitWNS, b.InitTNS)
	}
	if a.BestWNS != b.BestWNS || a.BestTNS != b.BestTNS {
		t.Fatalf("%s: best metrics differ: (%g,%g) vs (%g,%g)", label, a.BestWNS, a.BestTNS, b.BestWNS, b.BestTNS)
	}
	if a.Iterations != b.Iterations {
		t.Fatalf("%s: iterations %d vs %d", label, a.Iterations, b.Iterations)
	}
	if len(a.History) != len(b.History) {
		t.Fatalf("%s: history %d vs %d records", label, len(a.History), len(b.History))
	}
	for i := range a.History {
		if a.History[i] != b.History[i] {
			t.Fatalf("%s: history[%d] differs: %+v vs %+v", label, i, a.History[i], b.History[i])
		}
	}
	ax, ay, _ := a.Forest.SteinerPositions()
	bx, by, _ := b.Forest.SteinerPositions()
	if len(ax) != len(bx) {
		t.Fatalf("%s: forest sizes differ", label)
	}
	for i := range ax {
		if ax[i] != bx[i] || ay[i] != by[i] {
			t.Fatalf("%s: forest coordinate %d differs: (%g,%g) vs (%g,%g)", label, i, ax[i], ay[i], bx[i], by[i])
		}
	}
}

// TestRefineResumeByteIdentical is the checkpoint/resume contract: kill the
// loop after every possible iteration (via a deterministic iteration
// budget), resume from the checkpoint, and require the final result to be
// byte-identical to a run that was never interrupted.
func TestRefineResumeByteIdentical(t *testing.T) {
	r, _ := fixture(t)
	opt := guardOptions()
	clean, err := refinerWith(t, r, opt).Refine()
	if err != nil {
		t.Fatal(err)
	}
	if clean.Iterations != opt.N {
		t.Fatalf("clean run stopped at %d/%d iterations", clean.Iterations, opt.N)
	}
	for cut := 1; cut < opt.N; cut++ {
		path := filepath.Join(t.TempDir(), "refine.ckpt")
		iopt := opt
		iopt.CheckpointPath = path
		iopt.CheckpointEvery = 1
		iopt.Budget = &guard.Budget{MaxIters: cut}
		interrupted, err := refinerWith(t, r, iopt).Refine()
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if interrupted.Cutoff == "" || interrupted.Iterations != cut {
			t.Fatalf("cut %d: cutoff=%q iterations=%d", cut, interrupted.Cutoff, interrupted.Iterations)
		}
		ropt := opt
		ropt.CheckpointPath = path
		ropt.Resume = true
		resumed, err := refinerWith(t, r, ropt).Refine()
		if err != nil {
			t.Fatalf("resume after cut %d: %v", cut, err)
		}
		sameResult(t, clean, resumed, "resume after cut "+string(rune('0'+cut)))
		if resumed.Cutoff != "" || resumed.Degraded {
			t.Fatalf("cut %d: resumed run carries cutoff=%q degraded=%v", cut, resumed.Cutoff, resumed.Degraded)
		}
	}
}

// TestRefineResumeAfterCompletionIsIdentity: resuming a checkpoint of a
// finished run must return the same result without re-iterating.
func TestRefineResumeAfterCompletionIsIdentity(t *testing.T) {
	r, _ := fixture(t)
	path := filepath.Join(t.TempDir(), "refine.ckpt")
	opt := guardOptions()
	opt.CheckpointPath = path
	opt.CheckpointEvery = 1
	full, err := refinerWith(t, r, opt).Refine()
	if err != nil {
		t.Fatal(err)
	}
	opt.Resume = true
	again, err := refinerWith(t, r, opt).Refine()
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, full, again, "resume after completion")
}

// TestRefineNaNRecoveryTransient: a single injected NaN gradient is
// absorbed — the poisoned step is discarded, the loop rolls back to the
// best forest and finishes the full run without degradation.
func TestRefineNaNRecoveryTransient(t *testing.T) {
	r, _ := fixture(t)
	opt := guardOptions()
	inj := fault.New(7)
	inj.Arm("core.nan", 3)
	opt.Fault = inj
	res, err := refinerWith(t, r, opt).Refine()
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded {
		t.Fatal("transient NaN degraded the run")
	}
	if res.Recoveries != 1 {
		t.Fatalf("recoveries=%d, want 1", res.Recoveries)
	}
	if res.Iterations != opt.N {
		t.Fatalf("iterations=%d, want %d", res.Iterations, opt.N)
	}
	for i, h := range res.History {
		if math.IsNaN(h.WNS) || math.IsNaN(h.TNS) || math.IsNaN(h.Theta) {
			t.Fatalf("history[%d] carries a NaN: %+v", i, h)
		}
	}
	if err := res.Forest.Validate(r.Prep.Design); err != nil {
		t.Fatal(err)
	}
}

// TestRefinePersistentNaNDegradesToBest: with NaN injected on every
// gradient from iteration k+1 on, recovery retries exhaust and the refiner
// returns exactly the result a clean k-iteration run produces — flagged
// Degraded, never an error, never a poisoned coordinate.
func TestRefinePersistentNaNDegradesToBest(t *testing.T) {
	r, _ := fixture(t)
	const k = 3
	copt := guardOptions()
	copt.N = k
	clean, err := refinerWith(t, r, copt).Refine()
	if err != nil {
		t.Fatal(err)
	}

	fopt := guardOptions()
	fopt.MaxRecoveries = 2
	inj := fault.New(7)
	inj.ArmFrom("core.nan", k+1)
	fopt.Fault = inj
	faulty, err := refinerWith(t, r, fopt).Refine()
	if err != nil {
		t.Fatalf("persistent fault surfaced as error: %v", err)
	}
	if !faulty.Degraded {
		t.Fatal("exhausted recoveries did not set Degraded")
	}
	if faulty.Recoveries != fopt.MaxRecoveries+1 {
		t.Fatalf("recoveries=%d, want %d", faulty.Recoveries, fopt.MaxRecoveries+1)
	}
	sameResult(t, clean, faulty, "degraded-equals-clean-prefix")
}

// TestRefineBudgetWallClock: a stalled iteration trips the wall-clock
// budget at the next iteration boundary; the result is the best so far
// with the cutoff recorded, byte-identical to the clean run's prefix.
func TestRefineBudgetWallClock(t *testing.T) {
	r, _ := fixture(t)
	opt := guardOptions()
	clean, err := refinerWith(t, r, opt).Refine()
	if err != nil {
		t.Fatal(err)
	}

	bopt := guardOptions()
	inj := fault.New(1)
	inj.ArmStall("core.stall", 1, 250*time.Millisecond)
	bopt.Fault = inj
	bopt.Budget = &guard.Budget{Wall: 200 * time.Millisecond}
	res, err := refinerWith(t, r, bopt).Refine()
	if err != nil {
		t.Fatal(err)
	}
	if res.Cutoff == "" || !strings.Contains(res.Cutoff, "wall-clock") {
		t.Fatalf("cutoff=%q, want wall-clock reason", res.Cutoff)
	}
	if res.Iterations >= opt.N {
		t.Fatalf("wall budget did not stop the loop: %d iterations", res.Iterations)
	}
	for i, h := range res.History {
		if h != clean.History[i] {
			t.Fatalf("prefix history[%d] differs under budget: %+v vs %+v", i, h, clean.History[i])
		}
	}
	if err := res.Forest.Validate(r.Prep.Design); err != nil {
		t.Fatal(err)
	}
}

// TestRefineCorruptCheckpointFailsLoudly: a truncated checkpoint — whether
// damaged at rest or torn by an injected fault during the write — must
// surface as a *guard.CorruptError on resume, never a silent restart.
func TestRefineCorruptCheckpointFailsLoudly(t *testing.T) {
	r, _ := fixture(t)
	path := filepath.Join(t.TempDir(), "refine.ckpt")
	opt := guardOptions()
	opt.CheckpointPath = path
	opt.CheckpointEvery = 1
	opt.Budget = &guard.Budget{MaxIters: 2}
	if _, err := refinerWith(t, r, opt).Refine(); err != nil {
		t.Fatal(err)
	}

	// Damage at rest.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	ropt := guardOptions()
	ropt.CheckpointPath = path
	ropt.Resume = true
	_, err = refinerWith(t, r, ropt).Refine()
	var ce *guard.CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("truncated checkpoint: got %v, want *guard.CorruptError", err)
	}

	// Torn by fault injection during the write.
	inj := fault.New(3)
	inj.ArmFrom("guard.ckpt.truncate", 2)
	topt := guardOptions()
	topt.CheckpointPath = path
	topt.CheckpointEvery = 1
	topt.Budget = &guard.Budget{MaxIters: 2}
	topt.Fault = inj
	if _, err := refinerWith(t, r, topt).Refine(); err != nil {
		t.Fatal(err)
	}
	_, err = refinerWith(t, r, ropt).Refine()
	if !errors.As(err, &ce) {
		t.Fatalf("torn checkpoint write: got %v, want *guard.CorruptError", err)
	}
}

// TestRefineGuardsAreSideChannel: with guards configured but no fault, no
// budget pressure and no resume, results are byte-identical to a fully
// unguarded run.
func TestRefineGuardsAreSideChannel(t *testing.T) {
	r, _ := fixture(t)
	opt := guardOptions()
	plain, err := refinerWith(t, r, opt).Refine()
	if err != nil {
		t.Fatal(err)
	}
	gopt := guardOptions()
	gopt.CheckpointPath = filepath.Join(t.TempDir(), "refine.ckpt")
	gopt.CheckpointEvery = 2
	gopt.Budget = &guard.Budget{Wall: time.Hour, MaxIters: 10_000}
	gopt.Fault = fault.New(9) // armed with nothing
	guarded, err := refinerWith(t, r, gopt).Refine()
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, plain, guarded, "guards-as-side-channel")
	if guarded.Degraded || guarded.Recoveries != 0 || guarded.Cutoff != "" {
		t.Fatalf("healthy guarded run reports %+v", guarded)
	}
}

// TestRatioImprovedNonFinite: non-finite metrics must never fake (or
// permanently block) convergence — they simply do not trigger.
func TestRatioImprovedNonFinite(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	cases := [][2]float64{
		{nan, -5}, {-10, nan}, {-inf, -5}, {-10, -inf}, {-10, inf}, {nan, nan},
	}
	for _, c := range cases {
		if ratioImproved(c[0], c[1], 0.1) {
			t.Fatalf("ratioImproved(%g, %g) triggered", c[0], c[1])
		}
	}
	if !ratioImproved(-10, -8, 0.1) {
		t.Fatal("finite improvement regression")
	}
}
