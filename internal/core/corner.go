// Multi-corner sign-off for the refinement loop: the matrix penalty
// P = Σ_c λ_c·P_γ(slack_c) over corner-derated slack vectors, the
// matrix accept metrics (worst-corner WNS, corner-summed TNS), and the
// hold-guard veto that rejects setup moves creating hold violations.
//
// The evaluator predicts typical-corner endpoint slacks; each corner's
// slack vector is the affine rescaling sta.Corner.CornerSlack derives
// from the uniform derating (setup terms cancel exactly, slew coupling
// is first-order), so the whole matrix costs two extra tensor ops per
// corner and stays differentiable end to end. With Options.Corners
// empty every path below collapses to the single-corner algorithm
// byte-for-byte.
package core

import (
	"fmt"
	"math"

	"tsteiner/internal/rc"
	"tsteiner/internal/rsmt"
	"tsteiner/internal/sta"
	"tsteiner/internal/tensor"
)

// CornerTerm weighs one corner's smoothed penalty in the matrix
// penalty P = Σ_c λ_c·P_γ(slack_c).
type CornerTerm struct {
	Corner sta.Corner
	Lambda float64
}

// DefaultCornerTerms is the standard three-corner matrix: the slow
// (setup-critical) and typical corners at full weight, the fast corner
// at half weight — it mostly matters through the hold guard, which
// checks it exactly rather than through the smoothed penalty.
func DefaultCornerTerms() []CornerTerm {
	return []CornerTerm{
		{Corner: sta.FastCorner(), Lambda: 0.5},
		{Corner: sta.TypicalCorner(), Lambda: 1.0},
		{Corner: sta.SlowCorner(), Lambda: 1.0},
	}
}

// CornerTermsFor wraps plain corners as equally-weighted matrix terms
// — the cmd/serve layers' bridge from a -corners flag to refiner
// options.
func CornerTermsFor(corners []sta.Corner) []CornerTerm {
	out := make([]CornerTerm, len(corners))
	for i, c := range corners {
		out[i] = CornerTerm{Corner: c, Lambda: 1.0}
	}
	return out
}

// validateCornerTerms rejects terms that would corrupt the penalty:
// invalid corners, duplicate names, non-finite or negative weights.
func validateCornerTerms(terms []CornerTerm) error {
	seen := make(map[string]bool, len(terms))
	for _, ct := range terms {
		if err := ct.Corner.Validate(); err != nil {
			return err
		}
		if seen[ct.Corner.Name] {
			return fmt.Errorf("core: duplicate corner %q", ct.Corner.Name)
		}
		seen[ct.Corner.Name] = true
		if math.IsNaN(ct.Lambda) || math.IsInf(ct.Lambda, 0) || ct.Lambda < 0 {
			return fmt.Errorf("core: corner %q weight %v not finite and non-negative", ct.Corner.Name, ct.Lambda)
		}
	}
	return nil
}

// penaltyMatrixOn dispatches the penalty construction: single-corner
// runs build exactly the original P_γ; multi-corner runs build
// Σ_c λ_c·P_γ(slack_c) with each corner's slack derived on-tape by the
// affine transform (Scale + AddScalar are lane-transparent, so the
// batched candidate path keeps its per-lane bit-identity). The
// "core.corner.nan" fault site poisons the first corner's derated
// slack — and only that corner's — for the fault-matrix tests.
func (r *Refiner) penaltyMatrixOn(tp *tensor.Tape, slack *tensor.Tensor, lw, lt float64) (*tensor.Tensor, error) {
	if len(r.Opt.Corners) == 0 {
		return r.penaltyOn(tp, slack, lw, lt)
	}
	clockPeriod := r.Prep.Design.ClockPeriod
	var total *tensor.Tensor
	for ci, ct := range r.Opt.Corners {
		cs := slack
		var err error
		if !ct.Corner.IsTypical() {
			if cs, err = tp.Scale(slack, ct.Corner.DelayScale); err != nil {
				return nil, err
			}
			if cs, err = tp.AddScalar(cs, (ct.Corner.ClockScale-ct.Corner.DelayScale)*clockPeriod); err != nil {
				return nil, err
			}
		}
		if ci == 0 && r.Opt.Fault.Fire("core.corner.nan") {
			if cs, err = tp.AddScalar(cs, math.NaN()); err != nil {
				return nil, err
			}
		}
		p, err := r.penaltyOn(tp, cs, lw, lt)
		if err != nil {
			return nil, err
		}
		term, err := tp.Scale(p, ct.Lambda)
		if err != nil {
			return nil, err
		}
		if total == nil {
			total = term
		} else if total, err = tp.Add(total, term); err != nil {
			return nil, err
		}
	}
	return total, nil
}

// metricsFromSlack produces the hard metrics Algorithm 1's accept rule
// compares: plain (WNS, TNS) single-corner, or the matrix pair —
// worst-corner WNS and corner-summed TNS — when Corners are set, so
// the lexicographic accept optimizes the whole matrix at once.
func (r *Refiner) metricsFromSlack(slack []float64) (wns, tns float64) {
	if len(r.Opt.Corners) == 0 {
		return hardMetrics(slack)
	}
	return matrixMetrics(slack, r.Opt.Corners, r.Prep.Design.ClockPeriod)
}

// matrixMetrics evaluates the matrix accept pair from a typical-corner
// slack vector via the per-corner affine transform.
func matrixMetrics(slack []float64, terms []CornerTerm, clockPeriod float64) (wns, tns float64) {
	wns = math.Inf(1)
	for _, ct := range terms {
		cw := math.Inf(1)
		for _, s := range slack {
			sc := ct.Corner.CornerSlack(s, clockPeriod)
			if sc < cw {
				cw = sc
			}
			if sc < 0 {
				tns += sc
			}
		}
		if len(slack) == 0 {
			cw = 0
		}
		if cw < wns {
			wns = cw
		}
	}
	if len(terms) == 0 {
		wns = 0
	}
	return wns, tns
}

// holdCorner is the corner the hold guard checks: hold violations are
// worst where delays are shortest, so it picks the minimum-DelayScale
// configured corner (first on ties), or the fast preset when refining
// single-corner.
func (r *Refiner) holdCorner() sta.Corner {
	if len(r.Opt.Corners) == 0 {
		return sta.FastCorner()
	}
	best := r.Opt.Corners[0].Corner
	for _, ct := range r.Opt.Corners[1:] {
		if ct.Corner.DelayScale < best.DelayScale {
			best = ct.Corner
		}
	}
	return best
}

// holdVios counts hold violations of a forest under the hold corner
// using tree-geometry (pre-routing) parasitics — the same cheap
// extraction the evaluator's training labels come from, so the guard
// costs one STA, not a routing pass. Positions are rounded the way
// flow.Signoff rounds them before extraction.
func (r *Refiner) holdVios(f *rsmt.Forest) (int, error) {
	rounded := f.Clone()
	rounded.RoundPositions()
	rcs, err := rc.ExtractFromTrees(r.Prep.Design, rounded, r.Prep.Lib)
	if err != nil {
		return 0, err
	}
	T, err := sta.RunCorner(r.Prep.Design, rcs, r.holdCorner())
	if err != nil {
		return 0, err
	}
	return T.HoldVios, nil
}
