// Package flow wires the substrates into the paper's physical-design
// pipeline (Fig. 1): placement → Steiner construction (+ edge shifting) →
// [optional TSteiner refinement, applied by the caller] → global routing →
// detailed routing → RC extraction → sign-off STA. It is the oracle every
// experiment consults: given a design and a Steiner forest, Signoff
// returns the sign-off metrics the paper reports in Table II.
package flow

import (
	"fmt"
	"time"

	"tsteiner/internal/drc"
	"tsteiner/internal/grid"
	"tsteiner/internal/guard"
	"tsteiner/internal/guard/fault"
	"tsteiner/internal/lib"
	"tsteiner/internal/netlist"
	"tsteiner/internal/obs"
	"tsteiner/internal/par"
	"tsteiner/internal/place"
	"tsteiner/internal/rc"
	"tsteiner/internal/route"
	"tsteiner/internal/rsmt"
	"tsteiner/internal/sta"
	"tsteiner/internal/synth"
)

// Config collects the knobs of the full pipeline.
type Config struct {
	GCellSize int
	LayerCaps []int
	Place     place.Options
	RSMT      rsmt.Options
	Route     route.Options
	EdgeShift route.EdgeShiftOptions
	DRC       drc.Options
	// SkipEdgeShift disables the congestion-driven Steiner shift (the
	// paper's baseline always applies it; ablations may not).
	SkipEdgeShift bool
	// TimingDrivenRoute orders global routing most-critical-net-first
	// using a pre-routing STA pass (an extension beyond the CUGR-like
	// baseline; off by default to match the paper's flow).
	TimingDrivenRoute bool
	// Corners lists the sign-off corners to report beyond the typical
	// one: when non-empty, Signoff runs STA once per corner over the
	// same extraction and fills Report.Corners with the matrix. The
	// headline WNS/TNS/Vios stay the typical corner's, so single-corner
	// consumers are unaffected.
	Corners []sta.Corner
	// Workers bounds the goroutines used by parallel flow stages
	// (0 = GOMAXPROCS, 1 = serial). Results are byte-identical for every
	// worker count; it only affects wall clock.
	Workers int
	// Obs receives phase spans and counters (nil = telemetry off). A
	// strict side channel: enabling it never changes any flow output.
	Obs *obs.Sink
	// Budget bounds the pipeline by wall clock, checked at phase
	// boundaries (place, Steiner construction, routing, extraction, STA).
	// The flow has no meaningful partial result, so expiry fails cleanly
	// with a *guard.BudgetError naming the phase. nil = unlimited.
	Budget *guard.Budget
	// Fault is the deterministic fault injector (nil in production). The
	// "flow.stall" site delays a phase boundary, which is how the tests
	// push a run past its wall budget without real-time sleeps mid-phase.
	Fault *fault.Injector
}

// phaseGate is the phase-boundary guard: it applies any injected stall,
// then checks the wall budget. Both are single nil tests when no guard is
// armed, so the healthy path pays nothing.
func (cfg *Config) phaseGate(phase string) error {
	cfg.Fault.Stall("flow.stall")
	if reason, over := cfg.Budget.ExceededWall(); over {
		cfg.Obs.Add("flow.budget_cutoffs", 1)
		cfg.Obs.Event("flow.cutoff", obs.KV{K: "phase", V: phase}, obs.KV{K: "reason", V: reason})
		return &guard.BudgetError{Phase: phase, Reason: reason}
	}
	return nil
}

// DefaultConfig returns the pipeline settings used by every experiment.
func DefaultConfig() Config {
	return Config{
		GCellSize: 8,
		// Capacities sized so benchmark designs route below saturation
		// (peak utilization ≈ 1): real flows close timing in this regime,
		// and a saturated grid makes routing chaotically sensitive to
		// input geometry, drowning every optimization signal.
		LayerCaps: []int{0, 12, 12, 10, 10},
		Place:     place.DefaultOptions(),
		RSMT:      rsmt.DefaultOptions(),
		Route:     route.DefaultOptions(),
		EdgeShift: route.DefaultEdgeShiftOptions(),
		DRC:       drc.DefaultOptions(),
	}
}

// ScaledConfig returns the pipeline settings for scaled (10–100×)
// designs: DefaultConfig plus the Hilbert seed placement. The row
// serpentine the 1× benchmarks pin smears each tiled block across the
// full die width at large sides, saturating the routing grid; the
// Hilbert fill keeps blocks compact so scaled designs route in the
// same sub-saturation regime as the originals.
func ScaledConfig() Config {
	cfg := DefaultConfig()
	cfg.Place.Hilbert = true
	// A taller metal stack: block-level boundary ports and stitch nets
	// of a tiled design add traffic the 4-layer stack of the 1×
	// benchmarks cannot absorb, and chips this size carry more metal
	// for exactly that reason. Eight extra layers put 100× designs in
	// the same regime the 1× capacities were sized for (zero overflow,
	// zero maze reroutes): below saturation, rip-up-and-reroute — and
	// therefore the incremental replay every refinement round pays — is
	// empty, so the per-round cost is pure bookkeeping.
	caps := append([]int{}, cfg.LayerCaps...)
	for i := 0; i < 8; i++ {
		caps = append(caps, 10)
	}
	cfg.LayerCaps = caps
	return cfg
}

// Prepared is the pre-routing state handed to TSteiner: a placed design
// and its initial Steiner forest.
type Prepared struct {
	Design *netlist.Design
	Forest *rsmt.Forest
	Lib    *lib.Library
	Config Config
	// PrepSec is the wall-clock time spent in generation-independent
	// preparation (placement + Steiner construction + edge shifting).
	PrepSec float64
}

// PrepareBenchmark generates, places and Steinerizes a named benchmark at
// the given scale (1.0 = the paper's full size).
func PrepareBenchmark(name string, scale float64, cfg Config) (*Prepared, error) {
	spec, err := synth.BenchmarkByName(name)
	if err != nil {
		return nil, err
	}
	if scale != 1.0 {
		spec = spec.Scale(scale)
	}
	l := lib.Default()
	sp := cfg.Obs.Start("flow.synth")
	d, err := synth.Generate(spec, l)
	sp.End()
	if err != nil {
		return nil, err
	}
	return Prepare(d, l, cfg)
}

// Prepare places the design and builds its initial Steiner forest,
// applying congestion-driven edge shifting unless disabled.
func Prepare(d *netlist.Design, l *lib.Library, cfg Config) (*Prepared, error) {
	t0 := time.Now()
	root := cfg.Obs.Start("flow.prepare")
	defer root.End()
	cfg.Budget.Start()
	if err := cfg.phaseGate("place"); err != nil {
		return nil, err
	}
	sp := root.Child("place")
	_, err := place.Place(d, cfg.Place)
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("flow: place: %w", err)
	}
	if cfg.RSMT.Workers == 0 {
		cfg.RSMT.Workers = cfg.Workers
	}
	if err := cfg.phaseGate("rsmt"); err != nil {
		return nil, err
	}
	sp = root.Child("rsmt")
	f, err := rsmt.BuildAll(d, cfg.RSMT)
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("flow: steiner: %w", err)
	}
	if !cfg.SkipEdgeShift {
		g, err := grid.New(d.Die, cfg.GCellSize, cfg.LayerCaps)
		if err != nil {
			return nil, fmt.Errorf("flow: grid: %w", err)
		}
		sp = root.Child("edgeshift")
		route.EdgeShift(f, g, cfg.EdgeShift)
		sp.End()
	}
	return &Prepared{
		Design:  d,
		Forest:  f,
		Lib:     l,
		Config:  cfg,
		PrepSec: time.Since(t0).Seconds(),
	}, nil
}

// PrepareKeepPlacement builds the pre-routing state for a design that
// already carries a placement (e.g. loaded from JSON): it validates the
// die, builds Steiner trees over the existing positions and applies edge
// shifting, without running the placer.
func PrepareKeepPlacement(d *netlist.Design, l *lib.Library, cfg Config) (*Prepared, error) {
	t0 := time.Now()
	if d.Die.Empty() || d.Die.Width() == 0 || d.Die.Height() == 0 {
		return nil, fmt.Errorf("flow: design has no usable die for placement-preserving prepare")
	}
	root := cfg.Obs.Start("flow.prepare")
	defer root.End()
	cfg.Budget.Start()
	if cfg.RSMT.Workers == 0 {
		cfg.RSMT.Workers = cfg.Workers
	}
	if err := cfg.phaseGate("rsmt"); err != nil {
		return nil, err
	}
	sp := root.Child("rsmt")
	f, err := rsmt.BuildAll(d, cfg.RSMT)
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("flow: steiner: %w", err)
	}
	if !cfg.SkipEdgeShift {
		g, err := grid.New(d.Die, cfg.GCellSize, cfg.LayerCaps)
		if err != nil {
			return nil, fmt.Errorf("flow: grid: %w", err)
		}
		sp = root.Child("edgeshift")
		route.EdgeShift(f, g, cfg.EdgeShift)
		sp.End()
	}
	return &Prepared{
		Design:  d,
		Forest:  f,
		Lib:     l,
		Config:  cfg,
		PrepSec: time.Since(t0).Seconds(),
	}, nil
}

// Report is the sign-off outcome of one flow run: the Table II metrics
// plus the Table IV runtime breakdown.
type Report struct {
	// Sign-off timing (from STA over routed parasitics).
	WNS, TNS float64
	Vios     int
	// Detailed-routing solution quality.
	WirelengthDBU int64
	Vias          int
	DRVs          int
	// Runtime breakdown (seconds). GRSec, ExtractSec and STASec are
	// measured wall clock; DRSec is the surrogate's modeled runtime (see
	// internal/drc); TSteinerSec is filled by callers that ran refinement.
	// STASec includes the pre-routing STA pass when TimingDrivenRoute is
	// on, so the breakdown stays exhaustive.
	GRSec, DRSec, TSteinerSec float64
	ExtractSec, STASec        float64
	// Congestion figure of merit after global routing.
	Overflow int
	// Secondary sign-off checks (diagnostics; not part of the paper's
	// tables): worst hold slack, hold violations, max-transition
	// violations.
	WHS      float64
	HoldVios int
	SlewVios int
	// Corners holds the multi-corner sign-off matrix (one row per
	// Config.Corners entry, same order) when the run was configured for
	// it; empty otherwise. The headline metrics above are always the
	// typical corner's.
	Corners []sta.CornerMetrics
	// Workers records the resolved worker count the producing run was
	// configured with, so wall-clock numbers (Table IV) can be annotated
	// with the parallelism they were measured under.
	Workers int
}

// Total returns the total flow runtime represented by this report: every
// recorded phase, including the extraction and STA seconds that earlier
// versions silently dropped.
func (r *Report) Total() float64 {
	return r.GRSec + r.DRSec + r.ExtractSec + r.STASec + r.TSteinerSec
}

// Signoff routes the forest and measures sign-off timing. The forest is
// not modified: a rounded copy is routed, exactly like the paper's
// post-processing step ("final positions are rounded").
func Signoff(p *Prepared, f *rsmt.Forest) (*Report, error) {
	rep, _, err := SignoffTiming(p, f)
	return rep, err
}

// SignoffTiming is Signoff returning the full STA result as well, for
// callers that need per-pin arrivals (evaluator training labels).
func SignoffTiming(p *Prepared, f *rsmt.Forest) (*Report, *sta.Result, error) {
	d := p.Design
	cfg := p.Config
	root := cfg.Obs.Start("flow.signoff")
	defer root.End()
	cfg.Budget.Start()

	rounded := f.Clone()
	rounded.RoundPositions()

	var preStaSec float64
	routeOpt := cfg.Route
	if cfg.TimingDrivenRoute {
		if err := cfg.phaseGate("presta"); err != nil {
			return nil, nil, err
		}
		// Pre-routing STA over tree geometry yields per-net criticality
		// for most-critical-first net ordering.
		sp := root.Child("presta")
		t0 := time.Now()
		rcs, err := rc.ExtractFromTrees(d, rounded, p.Lib)
		if err != nil {
			sp.End()
			return nil, nil, fmt.Errorf("flow: pre-route extract: %w", err)
		}
		pre, err := sta.Run(d, rcs)
		preStaSec = time.Since(t0).Seconds()
		sp.End()
		if err != nil {
			return nil, nil, fmt.Errorf("flow: pre-route sta: %w", err)
		}
		cfg.Obs.Add("flow.sta_runs", 1)
		routeOpt.NetPriority = pre.NetCriticality(d)
	}

	if err := cfg.phaseGate("gr"); err != nil {
		return nil, nil, err
	}
	g, err := grid.New(d.Die, cfg.GCellSize, cfg.LayerCaps)
	if err != nil {
		return nil, nil, fmt.Errorf("flow: grid: %w", err)
	}
	sp := root.Child("gr")
	t0 := time.Now()
	grM0 := cfg.Obs.Mallocs()
	gr, err := route.Route(d, rounded, g, routeOpt)
	grSec := time.Since(t0).Seconds()
	sp.End()
	if err != nil {
		return nil, nil, fmt.Errorf("flow: global route: %w", err)
	}
	cfg.Obs.Add("flow.gr_runs", 1)
	cfg.Obs.Observe("flow.gr_overflow", float64(gr.Overflow))
	cfg.Obs.Observe("flow.gr_ms", grSec*1e3)
	if cfg.Obs.Enabled() {
		cfg.Obs.Observe("flow.gr_allocs", float64(cfg.Obs.Mallocs()-grM0))
	}

	if err := cfg.phaseGate("dr"); err != nil {
		return nil, nil, err
	}
	sp = root.Child("dr")
	dres, err := drc.Run(d, g, gr, cfg.DRC)
	sp.End()
	if err != nil {
		return nil, nil, fmt.Errorf("flow: detailed route: %w", err)
	}
	cfg.Obs.Add("flow.dr_runs", 1)
	cfg.Obs.Observe("flow.dr_drvs", float64(dres.DRVs))

	if err := cfg.phaseGate("extract"); err != nil {
		return nil, nil, err
	}
	sp = root.Child("extract")
	t0 = time.Now()
	rcs, err := rc.Extract(d, rounded, g, gr, p.Lib)
	extractSec := time.Since(t0).Seconds()
	sp.End()
	if err != nil {
		return nil, nil, fmt.Errorf("flow: extract: %w", err)
	}
	if err := cfg.phaseGate("sta"); err != nil {
		return nil, nil, err
	}
	sp = root.Child("sta")
	t0 = time.Now()
	staM0 := cfg.Obs.Mallocs()
	timing, err := sta.Run(d, rcs)
	staSec := time.Since(t0).Seconds()
	sp.End()
	if err != nil {
		return nil, nil, fmt.Errorf("flow: sta: %w", err)
	}
	cfg.Obs.Add("flow.sta_runs", 1)
	cfg.Obs.Observe("flow.sta_ms", staSec*1e3)
	if cfg.Obs.Enabled() {
		cfg.Obs.Observe("flow.sta_allocs", float64(cfg.Obs.Mallocs()-staM0))
	}
	var cornerRows []sta.CornerMetrics
	if len(cfg.Corners) > 0 {
		if err := cfg.phaseGate("sta_corners"); err != nil {
			return nil, nil, err
		}
		sp = root.Child("sta_corners")
		t0 = time.Now()
		cres, err := sta.RunCorners(d, rcs, cfg.Corners)
		staSec += time.Since(t0).Seconds()
		sp.End()
		if err != nil {
			return nil, nil, fmt.Errorf("flow: corner sta: %w", err)
		}
		cfg.Obs.Add("flow.sta_runs", int64(len(cfg.Corners)))
		cornerRows = make([]sta.CornerMetrics, len(cres))
		for i, cr := range cres {
			cornerRows[i] = cr.CornerSummary()
		}
	}
	rep := &Report{
		WNS:           timing.WNS,
		TNS:           timing.TNS,
		Vios:          timing.Vios,
		WirelengthDBU: dres.WirelengthDBU,
		Vias:          dres.Vias,
		DRVs:          dres.DRVs,
		GRSec:         grSec,
		DRSec:         dres.RuntimeSec,
		ExtractSec:    extractSec,
		STASec:        preStaSec + staSec,
		Overflow:      gr.Overflow,
		WHS:           timing.WHS,
		HoldVios:      timing.HoldVios,
		SlewVios:      timing.SlewVios,
		Corners:       cornerRows,
		Workers:       par.Workers(cfg.Workers),
	}
	cfg.Obs.Event("flow.signoff",
		obs.KV{K: "wns", V: rep.WNS}, obs.KV{K: "tns", V: rep.TNS},
		obs.KV{K: "vios", V: rep.Vios}, obs.KV{K: "wl_dbu", V: rep.WirelengthDBU},
		obs.KV{K: "vias", V: rep.Vias}, obs.KV{K: "drvs", V: rep.DRVs},
		obs.KV{K: "overflow", V: rep.Overflow})
	return rep, timing, nil
}
