package flow

import (
	"errors"
	"testing"
	"time"

	"tsteiner/internal/guard"
	"tsteiner/internal/guard/fault"
)

// TestSignoffBudgetFailsCleanly: an expired wall budget stops the pipeline
// at the next phase boundary with a typed error naming the phase.
func TestSignoffBudgetFailsCleanly(t *testing.T) {
	p, err := PrepareBenchmark("spm", 1.0, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b := &guard.Budget{Wall: time.Nanosecond}
	b.Start()
	time.Sleep(time.Millisecond)
	p.Config.Budget = b
	_, _, err = SignoffTiming(p, p.Forest)
	var be *guard.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("got %v, want *guard.BudgetError", err)
	}
	if be.Phase != "gr" {
		t.Fatalf("expired budget reached phase %q, want gr", be.Phase)
	}
}

// TestPrepareBudgetFailsCleanly: the prepare stages honor the budget too.
func TestPrepareBudgetFailsCleanly(t *testing.T) {
	b := &guard.Budget{Wall: time.Nanosecond}
	b.Start()
	time.Sleep(time.Millisecond)
	cfg := DefaultConfig()
	cfg.Budget = b
	_, err := PrepareBenchmark("spm", 1.0, cfg)
	var be *guard.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("got %v, want *guard.BudgetError", err)
	}
	if be.Phase != "place" {
		t.Fatalf("expired budget reached phase %q, want place", be.Phase)
	}
}

// TestSignoffStallTripsWallBudget: an injected stall at the first phase
// boundary pushes the run past its wall budget, so a later boundary cuts
// the run off — the mechanism a hung phase would trigger in production.
func TestSignoffStallTripsWallBudget(t *testing.T) {
	p, err := PrepareBenchmark("spm", 1.0, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.New(5)
	inj.ArmStall("flow.stall", 2, 250*time.Millisecond)
	p.Config.Fault = inj
	p.Config.Budget = &guard.Budget{Wall: 200 * time.Millisecond}
	_, _, err = SignoffTiming(p, p.Forest)
	var be *guard.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("got %v, want *guard.BudgetError", err)
	}
	if be.Phase != "dr" {
		t.Fatalf("cutoff at phase %q, want dr (the stalled boundary)", be.Phase)
	}
}
