package flow

import (
	"math"
	"testing"

	"tsteiner/internal/sta"
)

// TestSignoffCornerMatrix checks the flow-level corner wiring: a config
// with Corners set reports one row per corner, the typical row is
// bitwise identical to the headline metrics, and derated corners order
// as expected (slow never beats typical on WNS).
func TestSignoffCornerMatrix(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Corners = sta.DefaultCorners()
	p, err := PrepareBenchmark("spm", 1.0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Signoff(p, p.Forest)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Corners) != len(cfg.Corners) {
		t.Fatalf("got %d corner rows, want %d", len(rep.Corners), len(cfg.Corners))
	}
	var typ *sta.CornerMetrics
	for i := range rep.Corners {
		row := &rep.Corners[i]
		if row.Corner.Name != cfg.Corners[i].Name {
			t.Fatalf("row %d named %q, want %q", i, row.Corner.Name, cfg.Corners[i].Name)
		}
		if math.IsNaN(row.WNS) || math.IsNaN(row.TNS) {
			t.Fatalf("corner %s: non-finite sign-off", row.Corner.Name)
		}
		if row.Corner.Name == "typical" {
			typ = row
		}
	}
	if typ == nil {
		t.Fatal("no typical row")
	}
	// The typical corner is a pure 1.0-rescale: bitwise equal to the
	// headline single-corner sign-off.
	if typ.WNS != rep.WNS || typ.TNS != rep.TNS || typ.Vios != rep.Vios {
		t.Fatalf("typical row (%v,%v,%d) != headline (%v,%v,%d)",
			typ.WNS, typ.TNS, typ.Vios, rep.WNS, rep.TNS, rep.Vios)
	}
	var slow *sta.CornerMetrics
	for i := range rep.Corners {
		if rep.Corners[i].Corner.Name == "slow" {
			slow = &rep.Corners[i]
		}
	}
	if slow == nil {
		t.Fatal("no slow row")
	}
	if slow.WNS > typ.WNS {
		t.Fatalf("slow corner WNS %v better than typical %v", slow.WNS, typ.WNS)
	}
}

// TestSignoffNoCornersNoRows pins the default: no Corners configured,
// no corner rows reported.
func TestSignoffNoCornersNoRows(t *testing.T) {
	p, err := PrepareBenchmark("spm", 1.0, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Signoff(p, p.Forest)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Corners) != 0 {
		t.Fatalf("got %d corner rows without Corners configured", len(rep.Corners))
	}
}
