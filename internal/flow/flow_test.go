package flow

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"tsteiner/internal/obs"
	"tsteiner/internal/rsmt"
)

func TestPrepareBenchmark(t *testing.T) {
	p, err := PrepareBenchmark("spm", 1.0, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if p.Design == nil || p.Forest == nil || p.Lib == nil {
		t.Fatal("incomplete Prepared")
	}
	if err := p.Forest.Validate(p.Design); err != nil {
		t.Fatal(err)
	}
	if p.PrepSec < 0 {
		t.Fatal("negative prep time")
	}
}

func TestPrepareUnknownBenchmark(t *testing.T) {
	if _, err := PrepareBenchmark("nope", 1.0, DefaultConfig()); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestSignoffEndToEnd(t *testing.T) {
	p, err := PrepareBenchmark("spm", 1.0, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Signoff(p, p.Forest)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WNS >= 0 {
		t.Errorf("spm should violate timing, WNS=%g", rep.WNS)
	}
	if rep.Vios == 0 || rep.TNS >= 0 {
		t.Errorf("expected violations: %+v", rep)
	}
	if rep.WirelengthDBU <= 0 || rep.Vias <= 0 {
		t.Errorf("implausible routing metrics: %+v", rep)
	}
	if rep.DRSec <= 0 || rep.GRSec < 0 {
		t.Errorf("implausible runtimes: %+v", rep)
	}
	if rep.ExtractSec <= 0 || rep.STASec <= 0 {
		t.Errorf("extraction/STA phases not recorded: %+v", rep)
	}
	// Total must account for every recorded phase, not just GR+DR.
	want := rep.GRSec + rep.DRSec + rep.ExtractSec + rep.STASec + rep.TSteinerSec
	if tot := rep.Total(); tot != want {
		t.Errorf("Total()=%g drops phases: want %g", tot, want)
	}
}

func TestSignoffEmitsPhaseSpans(t *testing.T) {
	var trace bytes.Buffer
	cfg := DefaultConfig()
	cfg.Obs = obs.New(&trace)
	p, err := PrepareBenchmark("spm", 1.0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Signoff(p, p.Forest); err != nil {
		t.Fatal(err)
	}
	text := trace.String()
	for _, span := range []string{
		"flow.synth", "flow.prepare", "flow.prepare/place", "flow.prepare/rsmt",
		"flow.prepare/edgeshift", "flow.signoff", "flow.signoff/gr",
		"flow.signoff/dr", "flow.signoff/extract", "flow.signoff/sta",
	} {
		if !strings.Contains(text, `"name":"`+span+`"`) {
			t.Errorf("trace missing phase span %q", span)
		}
	}
}

func TestSignoffDoesNotMutateForest(t *testing.T) {
	p, err := PrepareBenchmark("spm", 1.0, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	xs, ys, _ := p.Forest.SteinerPositions()
	if _, err := Signoff(p, p.Forest); err != nil {
		t.Fatal(err)
	}
	xs2, ys2, _ := p.Forest.SteinerPositions()
	for i := range xs {
		if xs[i] != xs2[i] || ys[i] != ys2[i] {
			t.Fatal("Signoff mutated the forest")
		}
	}
}

func TestSignoffDeterministic(t *testing.T) {
	p1, err := PrepareBenchmark("cic_decimator", 1.0, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	a, err := Signoff(p1, p1.Forest)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := PrepareBenchmark("cic_decimator", 1.0, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Signoff(p2, p2.Forest)
	if err != nil {
		t.Fatal(err)
	}
	if a.WNS != b.WNS || a.TNS != b.TNS || a.Vios != b.Vios ||
		a.WirelengthDBU != b.WirelengthDBU || a.Vias != b.Vias || a.DRVs != b.DRVs {
		t.Fatalf("non-deterministic sign-off:\n%+v\n%+v", a, b)
	}
}

func TestPerturbationMovesSignoff(t *testing.T) {
	// Fig. 2 premise: disturbing Steiner points changes sign-off TNS.
	p, err := PrepareBenchmark("spm", 1.0, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	base, err := Signoff(p, p.Forest)
	if err != nil {
		t.Fatal(err)
	}
	changed := false
	for trial := 0; trial < 5 && !changed; trial++ {
		f := p.Forest.Clone()
		rsmt.Perturb(f, rand.New(rand.NewSource(int64(trial))), 24, p.Design.Die)
		rep, err := Signoff(p, f)
		if err != nil {
			t.Fatal(err)
		}
		if rep.TNS != base.TNS {
			changed = true
		}
	}
	if !changed {
		t.Fatal("random Steiner disturbance never changed sign-off TNS")
	}
}

func TestBadConfigErrors(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LayerCaps = []int{0, 4} // too few layers for the grid
	if _, err := PrepareBenchmark("spm", 1.0, cfg); err == nil {
		t.Fatal("two-layer config accepted")
	}
	cfg = DefaultConfig()
	cfg.GCellSize = 0
	if _, err := PrepareBenchmark("spm", 1.0, cfg); err == nil {
		t.Fatal("zero gcell size accepted")
	}
	cfg = DefaultConfig()
	cfg.Place.Utilization = -1
	if _, err := PrepareBenchmark("spm", 1.0, cfg); err == nil {
		t.Fatal("negative utilization accepted")
	}
}

func TestSkipEdgeShift(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SkipEdgeShift = true
	p, err := PrepareBenchmark("spm", 1.0, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Signoff(p, p.Forest); err != nil {
		t.Fatal(err)
	}
}

func TestTimingDrivenRoute(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TimingDrivenRoute = true
	p, err := PrepareBenchmark("usb_cdc_core", 0.5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Signoff(p, p.Forest)
	if err != nil {
		t.Fatal(err)
	}
	// Baseline comparison: same design without timing-driven ordering.
	cfg2 := DefaultConfig()
	p2, err := PrepareBenchmark("usb_cdc_core", 0.5, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := Signoff(p2, p2.Forest)
	if err != nil {
		t.Fatal(err)
	}
	// Both flows must complete and produce comparable wirelength; the
	// ordering change must not blow up routing.
	ratio := float64(rep.WirelengthDBU) / float64(rep2.WirelengthDBU)
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("timing-driven ordering changed WL implausibly: %g", ratio)
	}
}

func TestPrepareKeepPlacement(t *testing.T) {
	// Prepare normally, then re-prepare the already-placed design without
	// the placer: positions must be untouched and sign-off identical.
	p, err := PrepareBenchmark("spm", 1.0, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep1, err := Signoff(p, p.Forest)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := PrepareKeepPlacement(p.Design, p.Lib, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := Signoff(p2, p2.Forest)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.WNS != rep2.WNS || rep1.TNS != rep2.TNS || rep1.WirelengthDBU != rep2.WirelengthDBU {
		t.Fatalf("placement-preserving prepare diverged: %+v vs %+v", rep1, rep2)
	}
	// A design with no die is rejected.
	bad := *p.Design
	bad.Die = p.Design.Die
	bad.Die.XHi = bad.Die.XLo
	if _, err := PrepareKeepPlacement(&bad, p.Lib, DefaultConfig()); err == nil {
		t.Fatal("die-less design accepted")
	}
}

func TestSignoffTimingReturnsArrivals(t *testing.T) {
	p, err := PrepareBenchmark("spm", 1.0, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep, timing, err := SignoffTiming(p, p.Forest)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WNS != timing.WNS || rep.TNS != timing.TNS {
		t.Fatal("Report and sta.Result disagree")
	}
	if len(timing.Arrival) != p.Design.NumPins() {
		t.Fatal("missing per-pin arrivals")
	}
}
