package shard

import (
	"fmt"
	"sort"
	"time"

	"tsteiner/internal/flow"
	"tsteiner/internal/geom"
	"tsteiner/internal/grid"
	"tsteiner/internal/netlist"
	"tsteiner/internal/par"
	"tsteiner/internal/rc"
	"tsteiner/internal/route"
	"tsteiner/internal/rsmt"
	"tsteiner/internal/sta"
)

// maxConsecRejects stops a run that keeps proposing losing rounds even
// after step halving.
const maxConsecRejects = 3

type savedRC struct {
	net netlist.NetID
	rc  rc.NetRC
}

// Refine runs sharded incremental refinement on a prepared design. The
// input forest is not modified; the refined forest and final sign-off
// metrics are returned. See the package comment for the determinism
// contract; TestShardDeterminism enforces it.
func Refine(p *flow.Prepared, opt Options) (*Result, error) {
	d := p.Design
	cfg := p.Config
	if opt.Shards < 1 {
		opt.Shards = 1
	}
	if opt.StepFrac <= 0 {
		opt.StepFrac = DefaultOptions().StepFrac
	}
	corners, multi, err := cornerSet(opt.Corners)
	if err != nil {
		return nil, err
	}
	primary := primaryCorner(corners)
	holdIdx := holdCornerIdx(corners)
	root := cfg.Obs.Start("shard.refine")
	defer root.End()

	// Initial state: static-pattern route + full extraction + full STA.
	// Static patterns are what make every later round's incremental
	// reroute an exact replay.
	t0 := time.Now()
	cont := p.Forest.Clone()
	rnd := cont.Clone()
	rnd.RoundPositions()
	ropt := cfg.Route
	ropt.StaticPatterns = true

	g, err := grid.New(d.Die, cfg.GCellSize, cfg.LayerCaps)
	if err != nil {
		return nil, fmt.Errorf("shard: grid: %w", err)
	}
	sp := root.Child("init")
	prev, err := route.Route(d, rnd, g, ropt)
	if err != nil {
		sp.End()
		return nil, fmt.Errorf("shard: initial route: %w", err)
	}
	rcs, err := rc.Extract(d, rnd, g, prev, p.Lib)
	if err != nil {
		sp.End()
		return nil, fmt.Errorf("shard: initial extract: %w", err)
	}
	Ts, err := sta.RunCorners(d, rcs, corners)
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("shard: initial sta: %w", err)
	}
	// T is the primary corner's view — candidate selection and proposals
	// read its slacks; the verdict reads the whole matrix.
	T := Ts[primary]
	var rts []*sta.Retimer
	if !opt.Reference {
		rts = make([]*sta.Retimer, len(corners))
		for i, c := range corners {
			if rts[i], err = sta.NewCornerRetimer(d, c); err != nil {
				return nil, fmt.Errorf("shard: retimer: %w", err)
			}
		}
	}

	res := &Result{
		InitWNS: T.WNS, InitTNS: T.TNS, InitVios: T.Vios,
		InitSec: time.Since(t0).Seconds(),
	}
	if multi {
		res.InitCorners = cornerRows(Ts)
	}
	step := opt.StepFrac
	consecRejects := 0
	t1 := time.Now()

	for round := 0; round < opt.Rounds; round++ {
		// Round-start snapshot: candidate selection and proposals both
		// read only (cont, T, step); nothing below mutates them until
		// the round's verdict.
		region, boundary := strips(cont, d.Die.XLo, d.Die.XHi)
		cands := selectCandidates(d, cont, T, opt, boundary, round)
		if len(cands) == 0 {
			break
		}

		// Proposal fan-out: candidates grouped by partition strip, one
		// group per shard, groups in parallel. Per-net proposals are
		// pure, so the grouping is invisible in the output — the move
		// list is sorted into canonical (tree, node) order regardless.
		groups := make([][]candidate, opt.Shards)
		for _, c := range cands {
			gi := region[c.net] % opt.Shards
			groups[gi] = append(groups[gi], c)
		}
		moveGroups, err := par.Map(opt.Workers, groups, func(_ int, grp []candidate) ([]move, error) {
			var out []move
			for _, c := range grp {
				out = append(out, proposeNet(d, cont.Trees[c.net], T, int32(c.net), step)...)
			}
			return out, nil
		})
		if err != nil {
			return nil, fmt.Errorf("shard: proposals: %w", err)
		}
		var moves []move
		for _, mg := range moveGroups {
			moves = append(moves, mg...)
		}
		sort.Slice(moves, func(i, j int) bool {
			if moves[i].tree != moves[j].tree {
				return moves[i].tree < moves[j].tree
			}
			return moves[i].node < moves[j].node
		})
		if len(moves) == 0 {
			break // candidates with no movable Steiner point on the critical path
		}
		res.Rounds++

		// Candidate rounded forest — copy-on-write: only the trees with a
		// proposed move are cloned, the rest share rnd's (never-mutated)
		// trees, keeping this step proportional to the moved set rather
		// than the design. movedNets records the nets whose rounded
		// geometry actually changed (small steps often round back to the
		// same DBU).
		next := &rsmt.Forest{Trees: append([]*rsmt.Tree(nil), rnd.Trees...)}
		var movedNets []netlist.NetID
		curTree, curChanged := int32(-1), false
		flush := func() {
			if curChanged {
				movedNets = append(movedNets, netlist.NetID(curTree))
			}
		}
		for _, mv := range moves {
			if mv.tree != curTree {
				flush()
				curTree, curChanged = mv.tree, false
				next.Trees[mv.tree] = rnd.Trees[mv.tree].Clone()
			}
			np := d.Die.ClampF(geom.FPoint{X: mv.x, Y: mv.y}).Round().ToF()
			if np != next.Trees[mv.tree].Nodes[mv.node].Pos {
				next.Trees[mv.tree].Nodes[mv.node].Pos = np
				curChanged = true
			}
		}
		flush()

		// Evaluate the candidate state: incremental replay + windowed
		// re-time, or the full-pipeline Reference.
		var (
			resR    *route.Result
			T2s     []*sta.Result
			gNext   *grid.Grid
			rcs2    []rc.NetRC
			saved   []savedRC
			refresh []netlist.NetID
		)
		if opt.Reference {
			gNext, err = grid.New(d.Die, cfg.GCellSize, cfg.LayerCaps)
			if err != nil {
				return nil, fmt.Errorf("shard: grid: %w", err)
			}
			resR, err = route.Route(d, next, gNext, ropt)
			if err != nil {
				return nil, fmt.Errorf("shard: round %d route: %w", round, err)
			}
			rcs2, err = rc.Extract(d, next, gNext, resR, p.Lib)
			if err != nil {
				return nil, fmt.Errorf("shard: round %d extract: %w", round, err)
			}
			T2s, err = sta.RunCorners(d, rcs2, corners)
			if err != nil {
				return nil, fmt.Errorf("shard: round %d sta: %w", round, err)
			}
		} else {
			resR, _, err = route.Incremental(d, rnd, next, g, prev, ropt)
			if err != nil {
				return nil, fmt.Errorf("shard: round %d reroute: %w", round, err)
			}
			// RC must refresh both the nets whose realization changed
			// AND the nets whose rounded tree geometry moved within
			// their GCells — extraction reads exact DBU positions, so
			// the two sets differ.
			refresh = unionSorted(resR.ChangedNets, movedNets)
			saved = make([]savedRC, 0, len(refresh))
			for _, ni := range refresh {
				saved = append(saved, savedRC{net: ni, rc: rcs[ni]})
				rcs[ni], err = rc.ExtractNet(d, next.Trees[ni], g, &resR.Routes[ni], p.Lib)
				if err != nil {
					return nil, fmt.Errorf("shard: round %d extract net %d: %w", round, ni, err)
				}
			}
			T2s = make([]*sta.Result, len(corners))
			for ci := range corners {
				T2s[ci], err = rts[ci].Retime(Ts[ci], rcs, refresh)
				if err != nil {
					return nil, fmt.Errorf("shard: round %d retime: %w", round, err)
				}
			}
			res.RetimedNets += len(refresh)
		}

		// Global verdict on sign-off bits: both paths computed the same
		// per-corner WNS/TNS down to the last ulp, so they take the same
		// branch. A matrix win that worsens the hold count at the
		// min-DelayScale corner is vetoed (multi-corner runs only).
		accept := matrixBetter(T2s, Ts)
		if accept && multi && T2s[holdIdx].HoldVios > Ts[holdIdx].HoldVios {
			accept = false
			res.HoldRejects++
		}
		if accept {
			rnd, prev, Ts, T = next, resR, T2s, T2s[primary]
			if opt.Reference {
				g, rcs = gNext, rcs2
			}
			for _, mv := range moves {
				cont.Trees[mv.tree].Nodes[mv.node].Pos = d.Die.ClampF(geom.FPoint{X: mv.x, Y: mv.y})
			}
			res.Accepted++
			res.MovedNets += len(movedNets)
			consecRejects = 0
		} else {
			if !opt.Reference {
				// Roll the grid and routing state back by replaying to
				// the round-start geometry (exact: static replay is a
				// pure function of the forest), and restore the saved
				// RC entries.
				back, _, err := route.Incremental(d, next, rnd, g, resR, ropt)
				if err != nil {
					return nil, fmt.Errorf("shard: round %d rollback: %w", round, err)
				}
				prev = back
				for _, s := range saved {
					rcs[s.net] = s.rc
				}
			}
			res.Rejected++
			consecRejects++
			step *= 0.5
			if consecRejects >= maxConsecRejects {
				break
			}
		}
	}

	res.Forest = cont
	res.WNS, res.TNS, res.Vios = T.WNS, T.TNS, T.Vios
	if multi {
		res.Corners = cornerRows(Ts)
	}
	res.WirelengthDBU, res.Vias, res.Overflow = prev.WirelengthDBU, prev.Vias, prev.Overflow
	res.RefineSec = time.Since(t1).Seconds()
	return res, nil
}

// unionSorted merges two ascending NetID slices, deduplicating.
func unionSorted(a, b []netlist.NetID) []netlist.NetID {
	out := make([]netlist.NetID, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i] < b[j]):
			out = append(out, a[i])
			i++
		case i >= len(a) || b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}
