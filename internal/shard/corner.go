// Multi-corner sign-off for the sharded engine: every round's verdict
// is taken on the corner matrix — worst-corner WNS and corner-summed
// TNS, lexicographically — plus a hold non-regression veto at the
// minimum-DelayScale corner. With Options.Corners empty the matrix
// collapses to the single typical corner and every comparison below is
// bit-for-bit today's single-corner verdict.
package shard

import (
	"fmt"
	"math"

	"tsteiner/internal/sta"
)

// cornerSet normalizes Options.Corners: empty selects the single
// typical corner (multi=false disables the hold veto so the legacy
// path is untouched); otherwise the corners are validated here, before
// the expensive initial route.
func cornerSet(corners []sta.Corner) ([]sta.Corner, bool, error) {
	if len(corners) == 0 {
		return []sta.Corner{sta.TypicalCorner()}, false, nil
	}
	seen := make(map[string]bool, len(corners))
	for _, c := range corners {
		if err := c.Validate(); err != nil {
			return nil, false, fmt.Errorf("shard: %w", err)
		}
		if seen[c.Name] {
			return nil, false, fmt.Errorf("shard: duplicate corner %q", c.Name)
		}
		seen[c.Name] = true
	}
	return corners, true, nil
}

// primaryCorner picks the corner whose slacks drive candidate selection
// and proposals: the maximum-DelayScale (setup-critical) corner, first
// on ties. Single-corner runs resolve to index 0 — the typical corner.
func primaryCorner(corners []sta.Corner) int {
	best := 0
	for i, c := range corners[1:] {
		if c.DelayScale > corners[best].DelayScale {
			best = i + 1
		}
	}
	return best
}

// holdCornerIdx picks the corner the hold veto reads: minimum
// DelayScale (shortest paths race the clock hardest), first on ties.
func holdCornerIdx(corners []sta.Corner) int {
	best := 0
	for i, c := range corners[1:] {
		if c.DelayScale < corners[best].DelayScale {
			best = i + 1
		}
	}
	return best
}

// matrixSignoff collapses per-corner results into the accept pair:
// worst WNS over corners, TNS summed over corners. One corner yields
// exactly that corner's (WNS, TNS).
func matrixSignoff(rs []*sta.Result) (wns, tns float64) {
	wns = math.Inf(1)
	for _, r := range rs {
		if r.WNS < wns {
			wns = r.WNS
		}
		tns += r.TNS
	}
	return wns, tns
}

// matrixBetter is the lexicographic round verdict on the matrix pair.
// Identical in branch behavior to the single-corner comparison
// (including the NaN-rejects convention) when both slices hold one
// result.
func matrixBetter(next, cur []*sta.Result) bool {
	nw, nt := matrixSignoff(next)
	cw, ct := matrixSignoff(cur)
	if nw != cw {
		return nw > cw
	}
	return nt >= ct
}

// cornerRows summarizes per-corner results for the Result report.
func cornerRows(rs []*sta.Result) []sta.CornerMetrics {
	out := make([]sta.CornerMetrics, len(rs))
	for i, r := range rs {
		out[i] = r.CornerSummary()
	}
	return out
}
