package shard

import (
	"hash/fnv"
	"math"
	"testing"

	"tsteiner/internal/flow"
	"tsteiner/internal/lib"
	"tsteiner/internal/synth"
)

// prepScaled generates, places and Steinerizes a factor× spm.
func prepScaled(t testing.TB, factor int) *flow.Prepared {
	t.Helper()
	spec, err := synth.BenchmarkByName("spm")
	if err != nil {
		t.Fatal(err)
	}
	l := lib.Default()
	d, err := synth.GenerateScaled(spec, factor, l)
	if err != nil {
		t.Fatal(err)
	}
	p, err := flow.Prepare(d, l, flow.ScaledConfig())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// coordHash digests every node position of the refined forest (FNV-1a
// over the raw float bits), so two runs agree iff every coordinate is
// byte-identical.
func coordHash(r *Result) uint64 {
	h := fnv.New64a()
	var b [8]byte
	wu := func(v uint64) {
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	for _, tr := range r.Forest.Trees {
		for ni := range tr.Nodes {
			wu(math.Float64bits(tr.Nodes[ni].Pos.X))
			wu(math.Float64bits(tr.Nodes[ni].Pos.Y))
		}
	}
	return h.Sum64()
}

// fingerprint collapses every deterministic Result field into a
// comparable struct.
type fingerprint struct {
	coords           uint64
	wnsBits, tnsBits uint64
	initWNS, initTNS uint64
	vios             int
	wl               int64
	vias, overflow   int
	rounds, acc, rej int
	moved            int
}

func fp(r *Result) fingerprint {
	return fingerprint{
		coords:  coordHash(r),
		wnsBits: math.Float64bits(r.WNS), tnsBits: math.Float64bits(r.TNS),
		initWNS: math.Float64bits(r.InitWNS), initTNS: math.Float64bits(r.InitTNS),
		vios: r.Vios, wl: r.WirelengthDBU, vias: r.Vias, overflow: r.Overflow,
		rounds: r.Rounds, acc: r.Accepted, rej: r.Rejected, moved: r.MovedNets,
	}
}

func testOptions() Options {
	opt := DefaultOptions()
	opt.Rounds = 3
	opt.MaxMovesPerRound = 8
	// Admit every constrained net so the test always has work even when
	// the scaled design closes timing.
	opt.SlackThreshold = math.Inf(1)
	return opt
}

// TestShardDeterminism is the issue's acceptance gate: on a 10× design,
// the refined forest (coordinate hash) and every sign-off metric are
// byte-identical across shard counts {1,2,4} × worker counts {1,4},
// and across the incremental path vs the full-route/full-STA Reference.
func TestShardDeterminism(t *testing.T) {
	factor := 10
	if testing.Short() {
		factor = 3
	}
	p := prepScaled(t, factor)

	ref := testOptions()
	ref.Reference = true
	refRes, err := Refine(p, ref)
	if err != nil {
		t.Fatal(err)
	}
	want := fp(refRes)
	if refRes.Rounds == 0 {
		t.Fatal("refinement executed no rounds; the determinism test is vacuous")
	}

	shardCounts := []int{1, 2, 4}
	workerCounts := []int{1, 4}
	for _, shards := range shardCounts {
		for _, workers := range workerCounts {
			opt := testOptions()
			opt.Shards = shards
			opt.Workers = workers
			got, err := Refine(p, opt)
			if err != nil {
				t.Fatalf("shards=%d workers=%d: %v", shards, workers, err)
			}
			if g := fp(got); g != want {
				t.Fatalf("shards=%d workers=%d diverged:\n got %+v\nwant %+v", shards, workers, g, want)
			}
			if got.RetimedNets == 0 {
				t.Fatalf("shards=%d workers=%d: incremental path never re-timed a net", shards, workers)
			}
		}
	}
}

// TestShardBoundaryPoliciesDeterministic: Freeze and Alternate must be
// shard-invariant too (their candidate sets come from the fixed strip
// partition, not from Options.Shards).
func TestShardBoundaryPoliciesDeterministic(t *testing.T) {
	p := prepScaled(t, 2)
	for _, policy := range []BoundaryPolicy{Freeze, Alternate} {
		var want fingerprint
		for i, shards := range []int{1, 4} {
			opt := testOptions()
			opt.Shards = shards
			opt.Workers = 2
			opt.Boundary = policy
			got, err := Refine(p, opt)
			if err != nil {
				t.Fatalf("policy=%d shards=%d: %v", policy, shards, err)
			}
			if i == 0 {
				want = fp(got)
			} else if g := fp(got); g != want {
				t.Fatalf("policy=%d shards=%d diverged:\n got %+v\nwant %+v", policy, shards, g, want)
			}
		}
	}
}

// TestShardNeverRegresses: the global accept rule only ever keeps a
// round that holds or improves (WNS, TNS) lexicographically, so the
// final metrics can never be worse than the initial ones.
func TestShardNeverRegresses(t *testing.T) {
	p := prepScaled(t, 2)
	opt := testOptions()
	opt.Rounds = 5
	res, err := Refine(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.WNS < res.InitWNS {
		t.Fatalf("WNS regressed: %v -> %v", res.InitWNS, res.WNS)
	}
	if res.WNS == res.InitWNS && res.TNS < res.InitTNS {
		t.Fatalf("TNS regressed at equal WNS: %v -> %v", res.InitTNS, res.TNS)
	}
	if res.Accepted+res.Rejected != res.Rounds {
		t.Fatalf("round accounting broken: %d+%d != %d", res.Accepted, res.Rejected, res.Rounds)
	}
}

// TestShardInputForestUntouched: Refine must clone, not mutate, the
// prepared forest.
func TestShardInputForestUntouched(t *testing.T) {
	p := prepScaled(t, 2)
	before := p.Forest.Clone()
	if _, err := Refine(p, testOptions()); err != nil {
		t.Fatal(err)
	}
	for ti, tr := range p.Forest.Trees {
		for ni := range tr.Nodes {
			if tr.Nodes[ni].Pos != before.Trees[ti].Nodes[ni].Pos {
				t.Fatalf("input forest mutated at tree %d node %d", ti, ni)
			}
		}
	}
}
