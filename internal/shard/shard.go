// Package shard is the scaled-design refinement engine: spatially
// sharded, timing-driven Steiner refinement whose result is byte-
// identical for every shard count and worker count — and to an
// unsharded full-route/full-STA reference — by construction.
//
// The determinism argument has three legs:
//
//  1. Proposals are pure functions of the round-start snapshot. Every
//     candidate net's move is computed from the same frozen forest and
//     STA result, so grouping candidates into shards (and running the
//     groups through internal/par) changes wall clock only, never a
//     coordinate. The flattened move list is sorted before application.
//  2. The spatial partition is fixed. Boundary classification uses a
//     constant strip grid over the die, independent of Options.Shards,
//     so boundary policies select the same candidate sets at every
//     shard count.
//  3. Evaluation is exact. Static-pattern incremental routing replays
//     byte-identically to a from-scratch route, per-net RC extraction
//     is bitwise the full extraction, and windowed re-timing is bitwise
//     a full STA run — so the incremental path and the Reference path
//     reach the same accept/reject decisions on the same bits.
package shard

import (
	"math"
	"sort"

	"tsteiner/internal/netlist"
	"tsteiner/internal/rsmt"
	"tsteiner/internal/sta"
)

// BoundaryPolicy selects how nets whose trees span multiple partition
// strips participate in refinement.
type BoundaryPolicy int

const (
	// Owner refines every candidate net every round (a boundary net is
	// owned by the strip holding its bounding-box center). Safe here
	// because application is globally serialized after the parallel
	// proposal phase.
	Owner BoundaryPolicy = iota
	// Freeze never moves boundary nets.
	Freeze
	// Alternate refines interior nets on even rounds and boundary nets
	// on odd rounds, so the two classes never move in the same round.
	Alternate
)

// partitionStrips is the fixed vertical strip count of the spatial
// partition. Deliberately a constant rather than Options.Shards: the
// partition decides boundary-ness (and therefore candidate sets under
// Freeze/Alternate), which must not depend on how many shards execute
// the round.
const partitionStrips = 16

// Options configures a sharded refinement run.
type Options struct {
	// Shards is the number of concurrent proposal groups (<=1 serializes
	// into one group). Any value yields byte-identical results.
	Shards int
	// Workers bounds the goroutines of the proposal fan-out
	// (0 = GOMAXPROCS, 1 = serial); byte-identical at any value.
	Workers int
	// Rounds bounds the refinement rounds.
	Rounds int
	// MaxMovesPerRound caps the candidate nets refined per round (most
	// critical first).
	MaxMovesPerRound int
	// StepFrac is the initial step: each on-path Steiner node moves this
	// fraction of the way toward the midpoint of its path neighbors.
	// Halved after every rejected round.
	StepFrac float64
	// SlackThreshold admits nets whose worst sink slack is below it.
	SlackThreshold float64
	// Boundary selects the cross-strip net policy.
	Boundary BoundaryPolicy
	// Corners enables multi-corner sign-off: STA runs at every listed
	// corner, the round verdict compares worst-corner WNS then
	// corner-summed TNS, and an accepted round is vetoed if it raises
	// the hold-violation count at the minimum-DelayScale corner.
	// Candidate selection and proposals read the primary
	// (maximum-DelayScale) corner's slacks. Empty reproduces the
	// single-typical-corner engine byte for byte.
	Corners []sta.Corner
	// Reference switches to the unsharded oracle path: full re-route on
	// a fresh grid, full RC extraction and full STA every round. Slow,
	// but the sharded path must match it bit for bit.
	Reference bool
}

// DefaultOptions returns the refinement settings used by the scale
// experiments.
func DefaultOptions() Options {
	return Options{
		Shards:           1,
		Rounds:           8,
		MaxMovesPerRound: 32,
		StepFrac:         0.35,
		SlackThreshold:   0.05,
		Boundary:         Owner,
	}
}

// Result reports a refinement run. Every field except the timings is
// deterministic: identical across shard counts, worker counts and the
// Reference path.
type Result struct {
	// Forest is the refined continuous forest (the caller's input is not
	// modified).
	Forest *rsmt.Forest

	// Initial sign-off metrics (static-pattern routing of the input).
	InitWNS, InitTNS float64
	InitVios         int

	// Final sign-off metrics.
	WNS, TNS float64
	Vios     int
	// Final routing-solution quality.
	WirelengthDBU int64
	Vias          int
	Overflow      int

	// Per-corner sign-off rows (initial and final, in Options.Corners
	// order). Empty for single-corner runs. The headline WNS/TNS/Vios
	// above are the primary (maximum-DelayScale) corner's.
	InitCorners []sta.CornerMetrics
	Corners     []sta.CornerMetrics

	// Rounds executed, accept/reject split, and the number of nets whose
	// rounded geometry changed in accepted rounds.
	Rounds    int
	Accepted  int
	Rejected  int
	MovedNets int
	// HoldRejects counts matrix-winning rounds vetoed by the hold
	// non-regression check (multi-corner runs only).
	HoldRejects int

	// RetimedNets counts the nets re-extracted and re-timed across all
	// rounds — the workload the windowed path pays instead of
	// whole-design RC+STA. Zero in Reference mode (which always pays the
	// whole design).
	RetimedNets int

	// Wall-clock split (not deterministic): initial route+extract+STA
	// versus the refinement rounds.
	InitSec, RefineSec float64
}

// candidate is one net admitted to a round.
type candidate struct {
	net   netlist.NetID
	slack float64
}

// move relocates one Steiner node (continuous coordinates).
type move struct {
	tree, node int32
	x, y       float64
}

// strips computes, per net, the partition strip of the tree's
// bounding-box center and whether the tree spans more than one strip.
// Pure geometry over the round-start forest.
func strips(f *rsmt.Forest, xlo, xhi int) (region []int, boundary []bool) {
	region = make([]int, len(f.Trees))
	boundary = make([]bool, len(f.Trees))
	w := float64(xhi - xlo)
	if w <= 0 {
		return region, boundary
	}
	stripOf := func(x float64) int {
		s := int((x - float64(xlo)) / w * partitionStrips)
		if s < 0 {
			s = 0
		}
		if s >= partitionStrips {
			s = partitionStrips - 1
		}
		return s
	}
	for ti, tr := range f.Trees {
		lo, hi := math.Inf(1), math.Inf(-1)
		for ni := range tr.Nodes {
			x := tr.Nodes[ni].Pos.X
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		if len(tr.Nodes) == 0 {
			continue
		}
		region[ti] = stripOf((lo + hi) / 2)
		boundary[ti] = stripOf(lo) != stripOf(hi)
	}
	return region, boundary
}

// selectCandidates builds the round's capped, most-critical-first
// candidate list from the round-start STA result. Deterministic:
// sorted by (slack, net ID), never by map order.
func selectCandidates(d *netlist.Design, f *rsmt.Forest, T *sta.Result, opt Options, boundary []bool, round int) []candidate {
	var cands []candidate
	for ti, tr := range f.Trees {
		if tr.SteinerCount() == 0 {
			continue
		}
		switch opt.Boundary {
		case Freeze:
			if boundary[ti] {
				continue
			}
		case Alternate:
			if boundary[ti] != (round%2 == 1) {
				continue
			}
		}
		worst := math.Inf(1)
		for ni := range tr.Nodes {
			nd := &tr.Nodes[ni]
			if nd.Kind != rsmt.PinNode || int(nd.Pin) >= len(T.PinSlack) {
				continue
			}
			if nd.Pin == d.Net(tr.Net).Driver {
				continue
			}
			if s := T.PinSlack[nd.Pin]; s < worst {
				worst = s
			}
		}
		if worst < opt.SlackThreshold {
			cands = append(cands, candidate{net: netlist.NetID(ti), slack: worst})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].slack != cands[j].slack {
			return cands[i].slack < cands[j].slack
		}
		return cands[i].net < cands[j].net
	})
	if opt.MaxMovesPerRound > 0 && len(cands) > opt.MaxMovesPerRound {
		cands = cands[:opt.MaxMovesPerRound]
	}
	return cands
}

// proposeNet computes the moves for one net: walk the tree path from
// the driver (node 0) to the most critical sink and pull every on-path
// Steiner node a step toward the midpoint of its path neighbors. A
// pure function of (tree, STA snapshot, step) — no global state — which
// is what makes the proposal fan-out shard- and worker-invariant.
func proposeNet(d *netlist.Design, tr *rsmt.Tree, T *sta.Result, ti int32, step float64) []move {
	// Most critical sink node: min PinSlack, ties to the lower index.
	sink := int32(-1)
	worst := math.Inf(1)
	for ni := range tr.Nodes {
		nd := &tr.Nodes[ni]
		if nd.Kind != rsmt.PinNode || int(nd.Pin) >= len(T.PinSlack) {
			continue
		}
		if nd.Pin == d.Net(tr.Net).Driver {
			continue
		}
		if s := T.PinSlack[nd.Pin]; s < worst {
			worst = s
			sink = int32(ni)
		}
	}
	if sink <= 0 {
		return nil
	}
	// Parent pointers from node 0 by iterative DFS (deterministic:
	// adjacency order is edge order).
	adj := tr.Adjacency()
	parent := make([]int32, len(tr.Nodes))
	for i := range parent {
		parent[i] = -2
	}
	parent[0] = -1
	stack := []int32{0}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range adj[u] {
			if parent[v] == -2 {
				parent[v] = u
				stack = append(stack, v)
			}
		}
	}
	if parent[sink] == -2 {
		return nil
	}
	// Path driver → sink.
	var path []int32
	for u := sink; u != -1; u = parent[u] {
		path = append(path, u)
	}
	// path is sink→driver; orientation does not matter for midpoints.
	var out []move
	for i := 1; i+1 < len(path); i++ {
		n := path[i]
		if tr.Nodes[n].Kind != rsmt.SteinerNode {
			continue
		}
		a, b := tr.Nodes[path[i-1]].Pos, tr.Nodes[path[i+1]].Pos
		p := tr.Nodes[n].Pos
		out = append(out, move{
			tree: ti,
			node: n,
			x:    p.X + step*((a.X+b.X)/2-p.X),
			y:    p.Y + step*((a.Y+b.Y)/2-p.Y),
		})
	}
	return out
}
