package shard

import (
	"hash/fnv"
	"math"
	"testing"

	"tsteiner/internal/sta"
)

// cornerFP extends the deterministic fingerprint with the per-corner
// sign-off rows and the hold-veto count.
type cornerFP struct {
	base        fingerprint
	rows        uint64
	holdRejects int
}

func rowsHash(rows []sta.CornerMetrics) uint64 {
	h := fnv.New64a()
	var b [8]byte
	wu := func(v uint64) {
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	for _, r := range rows {
		h.Write([]byte(r.Corner.Name))
		wu(math.Float64bits(r.WNS))
		wu(math.Float64bits(r.TNS))
		wu(uint64(r.Vios))
		wu(math.Float64bits(r.WHS))
		wu(uint64(r.HoldVios))
		wu(uint64(r.SlewVios))
	}
	return h.Sum64()
}

func cfp(r *Result) cornerFP {
	h := fnv.New64a()
	var b [8]byte
	for _, v := range []uint64{rowsHash(r.InitCorners), rowsHash(r.Corners)} {
		for i := range b {
			b[i] = byte(v >> (8 * i))
		}
		h.Write(b[:])
	}
	return cornerFP{base: fp(r), rows: h.Sum64(), holdRejects: r.HoldRejects}
}

// TestShardMultiCornerDeterminism is the multi-corner acceptance gate:
// with the full fast/typical/slow matrix driving the verdict, the
// refined forest and every sign-off row — per corner — are
// byte-identical across shard counts {1,2,4} × worker counts {1,4} and
// across the incremental path vs the full-route/full-STA Reference.
func TestShardMultiCornerDeterminism(t *testing.T) {
	factor := 10
	if testing.Short() {
		factor = 3
	}
	p := prepScaled(t, factor)

	ref := testOptions()
	ref.Reference = true
	ref.Corners = sta.DefaultCorners()
	refRes, err := Refine(p, ref)
	if err != nil {
		t.Fatal(err)
	}
	want := cfp(refRes)
	if refRes.Rounds == 0 {
		t.Fatal("refinement executed no rounds; the determinism test is vacuous")
	}
	if len(refRes.InitCorners) != 3 || len(refRes.Corners) != 3 {
		t.Fatalf("corner rows missing: init=%d final=%d", len(refRes.InitCorners), len(refRes.Corners))
	}

	for _, shards := range []int{1, 2, 4} {
		for _, workers := range []int{1, 4} {
			opt := testOptions()
			opt.Shards = shards
			opt.Workers = workers
			opt.Corners = sta.DefaultCorners()
			got, err := Refine(p, opt)
			if err != nil {
				t.Fatalf("shards=%d workers=%d: %v", shards, workers, err)
			}
			if g := cfp(got); g != want {
				t.Fatalf("shards=%d workers=%d diverged:\n got %+v\nwant %+v", shards, workers, g, want)
			}
			if got.RetimedNets == 0 {
				t.Fatalf("shards=%d workers=%d: incremental path never re-timed a net", shards, workers)
			}
		}
	}
}

// TestShardMultiCornerNeverRegresses: the matrix verdict only keeps a
// round that holds or improves (worst-corner WNS, corner-summed TNS)
// lexicographically, and the hold veto keeps the min-DelayScale
// corner's hold count from growing.
func TestShardMultiCornerNeverRegresses(t *testing.T) {
	p := prepScaled(t, 2)
	opt := testOptions()
	opt.Rounds = 5
	opt.Corners = sta.DefaultCorners()
	res, err := Refine(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	iw, it := matrixOfRows(res.InitCorners)
	fw, ft := matrixOfRows(res.Corners)
	if fw < iw || (fw == iw && ft < it) {
		t.Fatalf("matrix metrics regressed: (%g,%g) -> (%g,%g)", iw, it, fw, ft)
	}
	if res.Corners[0].HoldVios > res.InitCorners[0].HoldVios {
		t.Fatalf("fast-corner hold violations grew: %d -> %d",
			res.InitCorners[0].HoldVios, res.Corners[0].HoldVios)
	}
	if res.Accepted+res.Rejected != res.Rounds {
		t.Fatalf("round accounting broken: %d+%d != %d", res.Accepted, res.Rejected, res.Rounds)
	}
}

func matrixOfRows(rows []sta.CornerMetrics) (wns, tns float64) {
	wns = math.Inf(1)
	for _, r := range rows {
		if r.WNS < wns {
			wns = r.WNS
		}
		tns += r.TNS
	}
	return wns, tns
}

// TestShardCornerTypicalOnlyMatchesLegacy: a Corners list of exactly
// the typical corner takes the same verdicts as the legacy
// single-corner engine (the matrix collapses and the hold veto can
// only fire on a genuine hold regression), so the refined coordinates
// and headline metrics must agree bit for bit.
func TestShardCornerTypicalOnlyMatchesLegacy(t *testing.T) {
	p := prepScaled(t, 2)
	legacy, err := Refine(p, testOptions())
	if err != nil {
		t.Fatal(err)
	}
	opt := testOptions()
	opt.Corners = []sta.Corner{sta.TypicalCorner()}
	got, err := Refine(p, opt)
	if err != nil {
		t.Fatal(err)
	}
	if got.HoldRejects != 0 {
		t.Fatalf("typical-only run vetoed %d rounds on hold", got.HoldRejects)
	}
	if g, w := fp(got), fp(legacy); g != w {
		t.Fatalf("typical-only diverged from legacy:\n got %+v\nwant %+v", g, w)
	}
	if len(got.Corners) != 1 || got.Corners[0].Corner.Name != sta.TypicalCorner().Name {
		t.Fatalf("corner rows wrong: %+v", got.Corners)
	}
}

// TestShardCornerValidation: corrupt corner lists fail fast, before any
// routing work.
func TestShardCornerValidation(t *testing.T) {
	p := prepScaled(t, 2)
	bad := [][]sta.Corner{
		{{Name: "", DelayScale: 1, SlewScale: 1, ClockScale: 1}},
		{{Name: "x", DelayScale: 0, SlewScale: 1, ClockScale: 1}},
		{sta.TypicalCorner(), sta.TypicalCorner()},
	}
	for i, cs := range bad {
		opt := testOptions()
		opt.Corners = cs
		if _, err := Refine(p, opt); err == nil {
			t.Fatalf("case %d: corrupt corner list accepted", i)
		}
	}
}
