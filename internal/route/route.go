// Package route implements the global router of the flow: every Steiner
// tree edge becomes a path on the GCell grid. Initial routing uses L/Z
// pattern routing against congestion-aware edge costs; overflowed paths
// are then ripped up and rerouted with an A* maze search; finally 2D paths
// are assigned to layers and via counts extracted. The structure mirrors
// CUGR's 2D-route-then-layer-assign organization.
package route

import (
	"fmt"
	"sort"

	"tsteiner/internal/geom"
	"tsteiner/internal/grid"
	"tsteiner/internal/netlist"
	"tsteiner/internal/rsmt"
)

// GP is a GCell coordinate.
type GP struct {
	X, Y int
}

// EdgeRoute is the routed realization of one Steiner tree edge: the GCell
// path from the edge's A node to its B node, with a layer per step.
type EdgeRoute struct {
	TreeEdge int  // index into the tree's Edges slice
	Cells    []GP // GCell path, len ≥ 1; len==1 means intra-GCell
	Layers   []int
	Vias     int
	// patched records that rip-up-and-reroute replaced the initial
	// pattern path, so Cells is no longer the pure function of the edge
	// endpoints that static-mode incremental replay could reuse.
	patched bool
}

// StepsDBU returns the routed length of the edge in DBU.
func (e *EdgeRoute) StepsDBU(gcellSize int) int {
	if len(e.Cells) <= 1 {
		return 0
	}
	return (len(e.Cells) - 1) * gcellSize
}

// NetRoute is the routed realization of one net.
type NetRoute struct {
	Net   netlist.NetID
	Edges []EdgeRoute
}

// Result is the output of global routing.
type Result struct {
	Routes []NetRoute // indexed by net
	// WirelengthDBU is the total routed wirelength.
	WirelengthDBU int64
	// Vias counts all layer changes plus pin escapes.
	Vias int
	// Overflow is the remaining 2D overflow after rip-up-and-reroute.
	Overflow int
	// MazeReroutes counts edges that needed maze routing.
	MazeReroutes int
	// ChangedNets lists, in ascending net-ID order, the nets whose final
	// realization (cells, layers or vias) differs from the previous
	// result. Populated only by static-mode Incremental; nil otherwise.
	// This is the exact set downstream RC extraction and windowed STA
	// must refresh.
	ChangedNets []netlist.NetID
}

// Options tunes the router.
type Options struct {
	// RRRRounds bounds rip-up-and-reroute iterations.
	RRRRounds int
	// MazeMargin inflates the maze-search window (GCells) around the
	// two endpoints.
	MazeMargin int
	// ZCandidates is the number of intermediate Z-pattern positions
	// probed per direction during pattern routing.
	ZCandidates int
	// NetPriority, when non-nil (one value per net, smaller = more
	// critical), orders initial routing most-critical-first so critical
	// nets claim uncongested resources — classic timing-driven global
	// routing. Nil keeps netlist order (the CUGR-like baseline).
	NetPriority []float64
	// ViaAwareLayers makes layer assignment sticky: consecutive
	// same-direction steps stay on the previous layer while it has
	// headroom, trading a little balance for far fewer vias. Off by
	// default (the recorded experiments use plain least-used balancing).
	ViaAwareLayers bool
	// StaticPatterns makes the initial pattern route a congestion-blind
	// pure function of the edge endpoints (a deterministic L whose
	// corner is picked by coordinate parity). Phase-1 grid usage then
	// depends only on the forest — not on net order or routing history —
	// which is what lets Incremental replay a routing exactly: under
	// this mode its result is byte-identical to a from-scratch Route of
	// the new forest. Used by the sharded refinement loop; the default
	// (congestion-probing) mode is unchanged.
	StaticPatterns bool
}

// DefaultOptions returns router settings used by the flow.
func DefaultOptions() Options {
	return Options{RRRRounds: 3, MazeMargin: 12, ZCandidates: 3}
}

// Route globally routes every tree of the forest on g. Steiner positions
// are read through their rounded integer coordinates.
func Route(d *netlist.Design, f *rsmt.Forest, g *grid.Grid, opt Options) (*Result, error) {
	if len(f.Trees) != len(d.Nets) {
		return nil, fmt.Errorf("route: forest/netlist mismatch")
	}
	if opt.RRRRounds < 0 {
		return nil, fmt.Errorf("route: negative RRR rounds")
	}
	if opt.NetPriority != nil && len(opt.NetPriority) != len(d.Nets) {
		return nil, fmt.Errorf("route: %d priorities for %d nets", len(opt.NetPriority), len(d.Nets))
	}
	r := &router{d: d, g: g, opt: opt}
	res := &Result{Routes: make([]NetRoute, len(f.Trees))}

	// Initial pattern routing; netlist order by default, most-critical
	// first when priorities are provided.
	netOrder := make([]int, len(f.Trees))
	for i := range netOrder {
		netOrder[i] = i
	}
	if opt.NetPriority != nil {
		sort.SliceStable(netOrder, func(a, b int) bool {
			return opt.NetPriority[netOrder[a]] < opt.NetPriority[netOrder[b]]
		})
	}
	for _, ti := range netOrder {
		tr := f.Trees[ti]
		nr := NetRoute{Net: tr.Net}
		for ei, e := range tr.Edges {
			a := r.gcellOfNode(tr, int(e.A))
			b := r.gcellOfNode(tr, int(e.B))
			path := r.patternRoute(a, b)
			r.commit(path, +1)
			nr.Edges = append(nr.Edges, EdgeRoute{TreeEdge: ei, Cells: path})
		}
		res.Routes[ti] = nr
	}

	// Rip-up and reroute congested paths.
	for round := 0; round < opt.RRRRounds; round++ {
		if g.TotalOverflow() == 0 {
			break // no overflowed grid edge ⇒ no victims; skip the O(wirelength) scan
		}
		victims := r.collectOverflowed(res)
		if len(victims) == 0 {
			break
		}
		for _, v := range victims {
			er := &res.Routes[v.net].Edges[v.edge]
			r.commit(er.Cells, -1)
			start := er.Cells[0]
			goal := er.Cells[len(er.Cells)-1]
			path := r.mazeRoute(start, goal)
			if path == nil {
				path = r.patternRoute(start, goal) // fall back, always succeeds
			} else {
				res.MazeReroutes++
			}
			r.commit(path, +1)
			er.Cells = path
			er.patched = true
		}
	}

	// Layer assignment and tallies.
	for ni := range res.Routes {
		for ei := range res.Routes[ni].Edges {
			er := &res.Routes[ni].Edges[ei]
			r.assignLayers(er)
			res.WirelengthDBU += int64(er.StepsDBU(g.GCellSize))
			res.Vias += er.Vias
		}
	}
	res.Overflow = g.TotalOverflow()
	return res, nil
}

type router struct {
	d   *netlist.Design
	g   *grid.Grid
	opt Options
}

func (r *router) gcellOfNode(tr *rsmt.Tree, idx int) GP {
	p := tr.Nodes[idx].Pos.Round()
	x, y := r.g.GCellOf(p)
	return GP{x, y}
}

// commit adjusts grid usage along a path by delta per step.
func (r *router) commit(path []GP, delta int) {
	for i := 0; i+1 < len(path); i++ {
		a, b := path[i], path[i+1]
		switch {
		case a.Y == b.Y && b.X == a.X+1:
			r.g.AddH(a.X, a.Y, delta)
		case a.Y == b.Y && b.X == a.X-1:
			r.g.AddH(b.X, a.Y, delta)
		case a.X == b.X && b.Y == a.Y+1:
			r.g.AddV(a.X, a.Y, delta)
		case a.X == b.X && b.Y == a.Y-1:
			r.g.AddV(a.X, b.Y, delta)
		}
	}
}

// pathCost sums current congestion costs along a candidate path.
func (r *router) pathCost(path []GP) float64 {
	var sum float64
	for i := 0; i+1 < len(path); i++ {
		a, b := path[i], path[i+1]
		if a.Y == b.Y {
			x := min(a.X, b.X)
			sum += r.g.CostH(x, a.Y)
		} else {
			y := min(a.Y, b.Y)
			sum += r.g.CostV(a.X, y)
		}
	}
	return sum
}

type victim struct {
	net, edge int
	overflow  int
}

// collectOverflowed lists routed edges that traverse at least one
// over-capacity grid edge, worst first.
func (r *router) collectOverflowed(res *Result) []victim {
	var out []victim
	for ni := range res.Routes {
		for ei := range res.Routes[ni].Edges {
			er := &res.Routes[ni].Edges[ei]
			of := r.pathOverflow(er.Cells)
			if of > 0 {
				out = append(out, victim{net: ni, edge: ei, overflow: of})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].overflow != out[j].overflow {
			return out[i].overflow > out[j].overflow
		}
		if out[i].net != out[j].net {
			return out[i].net < out[j].net
		}
		return out[i].edge < out[j].edge
	})
	return out
}

func (r *router) pathOverflow(path []GP) int {
	sum := 0
	for i := 0; i+1 < len(path); i++ {
		a, b := path[i], path[i+1]
		if a.Y == b.Y {
			sum += r.g.OverflowH(min(a.X, b.X), a.Y)
		} else {
			sum += r.g.OverflowV(a.X, min(a.Y, b.Y))
		}
	}
	return sum
}

// assignLayers maps each step of a routed edge onto a layer and counts
// vias: one per layer change along the path plus one pin-escape via at
// each end of a non-trivial path.
func (r *router) assignLayers(er *EdgeRoute) {
	n := len(er.Cells) - 1
	if n <= 0 {
		er.Layers = nil
		er.Vias = 0
		return
	}
	er.Layers = make([]int, n)
	prev := -1
	vias := 2 // escape vias at both endpoints
	for i := 0; i < n; i++ {
		a, b := er.Cells[i], er.Cells[i+1]
		horiz := a.Y == b.Y
		var l int
		if r.opt.StaticPatterns {
			// Static mode trades the balancer (and ViaAwareLayers) for
			// a per-step pure assignment: a net's layers depend only on
			// its own cells, which is what lets incremental replay skip
			// untouched nets entirely.
			l = r.g.StaticLayer(horiz, min(a.X, b.X), min(a.Y, b.Y))
		} else if r.opt.ViaAwareLayers && prev >= 0 {
			l = r.g.AssignLayerSticky(horiz, min(a.X, b.X), min(a.Y, b.Y), prev)
		} else if horiz {
			l = r.g.AssignLayerH(min(a.X, b.X), a.Y)
		} else {
			l = r.g.AssignLayerV(a.X, min(a.Y, b.Y))
		}
		er.Layers[i] = l
		if prev >= 0 && l != prev {
			vias++
		}
		prev = l
	}
	er.Vias = vias
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// geomPathDBU converts a GCell path to DBU points (cell centers), used by
// RC extraction. The first and last points are replaced by the actual
// endpoint positions so intra-GCell geometry is preserved.
func GeomPathDBU(g *grid.Grid, er *EdgeRoute, from, to geom.Point) []geom.Point {
	if len(er.Cells) <= 1 {
		return []geom.Point{from, to}
	}
	pts := make([]geom.Point, 0, len(er.Cells)+1)
	pts = append(pts, from)
	for _, c := range er.Cells[1 : len(er.Cells)-1] {
		pts = append(pts, g.Center(c.X, c.Y))
	}
	pts = append(pts, to)
	return pts
}
