package route

import (
	"testing"

	"tsteiner/internal/grid"
	"tsteiner/internal/lib"
	"tsteiner/internal/netlist"
	"tsteiner/internal/place"
	"tsteiner/internal/rsmt"
	"tsteiner/internal/synth"
)

// incrementalFixture routes a design, moves a few Steiner points by more
// than a GCell, and returns everything Incremental needs.
func incrementalFixture(t *testing.T) (*netlist.Design, *rsmt.Forest, *rsmt.Forest, *grid.Grid, *Result) {
	t.Helper()
	spec, err := synth.BenchmarkByName("cic_decimator")
	if err != nil {
		t.Fatal(err)
	}
	d, err := synth.Generate(spec, lib.Default())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := place.Place(d, place.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	oldF, err := rsmt.BuildAll(d, rsmt.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	g, err := grid.New(d.Die, 8, []int{0, 12, 12, 10, 10})
	if err != nil {
		t.Fatal(err)
	}
	prev, err := Route(d, oldF, g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Move every 5th Steiner point by two GCells.
	newF := oldF.Clone()
	xs, ys, idx := newF.SteinerPositions()
	for i := range xs {
		if i%5 == 0 {
			xs[i] += 16
			ys[i] -= 16
		}
	}
	if err := newF.SetSteinerPositions(xs, ys, idx, d.Die); err != nil {
		t.Fatal(err)
	}
	return d, oldF, newF, g, prev
}

func TestIncrementalReroutesOnlyChangedNets(t *testing.T) {
	d, oldF, newF, g, prev := incrementalFixture(t)
	res, nChanged, err := Incremental(d, oldF, newF, g, prev, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if nChanged == 0 {
		t.Skip("no net crossed a GCell boundary")
	}
	if nChanged >= len(d.Nets) {
		t.Fatalf("all %d nets marked changed", nChanged)
	}
	// Unchanged nets keep their previous routes verbatim; changed ones
	// cover all their tree edges.
	for ti := range newF.Trees {
		if len(res.Routes[ti].Edges) != len(newF.Trees[ti].Edges) {
			t.Fatalf("net %d lost edges", ti)
		}
	}
}

func TestIncrementalUsageConservation(t *testing.T) {
	// After Incremental, grid usage must equal the usage of committing
	// the merged result onto a fresh grid.
	d, oldF, newF, g, prev := incrementalFixture(t)
	res, _, err := Incremental(d, oldF, newF, g, prev, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	g2, err := grid.New(d.Die, 8, []int{0, 12, 12, 10, 10})
	if err != nil {
		t.Fatal(err)
	}
	r2 := &router{d: d, g: g2, opt: DefaultOptions()}
	for ni := range res.Routes {
		for ei := range res.Routes[ni].Edges {
			r2.commit(res.Routes[ni].Edges[ei].Cells, +1)
		}
	}
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W-1; x++ {
			if g.UsageH(x, y) != g2.UsageH(x, y) {
				t.Fatalf("H usage mismatch at (%d,%d): %d vs %d", x, y, g.UsageH(x, y), g2.UsageH(x, y))
			}
		}
	}
	for y := 0; y < g.H-1; y++ {
		for x := 0; x < g.W; x++ {
			if g.UsageV(x, y) != g2.UsageV(x, y) {
				t.Fatalf("V usage mismatch at (%d,%d)", x, y)
			}
		}
	}
}

func TestIncrementalMatchesFullRouteMetrics(t *testing.T) {
	// Incremental and a from-scratch route of newF won't be identical
	// (ordering differs), but wirelength must agree closely.
	d, oldF, newF, g, prev := incrementalFixture(t)
	res, _, err := Incremental(d, oldF, newF, g, prev, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	gFull, err := grid.New(d.Die, 8, []int{0, 12, 12, 10, 10})
	if err != nil {
		t.Fatal(err)
	}
	full, err := Route(d, newF, gFull, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(res.WirelengthDBU) / float64(full.WirelengthDBU)
	if ratio < 0.97 || ratio > 1.03 {
		t.Fatalf("incremental WL diverges from full route: ratio %g", ratio)
	}
}

func TestIncrementalNoChangeIsIdentity(t *testing.T) {
	d, oldF, _, g, prev := incrementalFixture(t)
	res, nChanged, err := Incremental(d, oldF, oldF.Clone(), g, prev, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if nChanged != 0 {
		t.Fatalf("identical forest marked %d nets changed", nChanged)
	}
	if res.WirelengthDBU != prev.WirelengthDBU || res.Vias != prev.Vias {
		t.Fatalf("identity update changed tallies")
	}
}

func TestIncrementalValidation(t *testing.T) {
	d, oldF, newF, g, prev := incrementalFixture(t)
	short := &rsmt.Forest{Trees: newF.Trees[:1]}
	if _, _, err := Incremental(d, oldF, short, g, prev, DefaultOptions()); err == nil {
		t.Fatal("mismatched forests accepted")
	}
}
