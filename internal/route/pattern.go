package route

// Pattern routing: candidate paths between two GCells restricted to L
// (one bend) and Z (two bends) shapes, evaluated against the current
// congestion costs. Always succeeds; used both for initial routing and as
// the fallback when maze search is window-limited.

// patternRoute returns the cheapest L/Z path from a to b under current
// grid costs.
func (r *router) patternRoute(a, b GP) []GP {
	if a == b {
		return []GP{a}
	}
	if a.X == b.X || a.Y == b.Y {
		return straight(a, b)
	}
	if r.opt.StaticPatterns {
		return staticLPath(a, b)
	}
	best := lPath(a, b, true) // horizontal first
	bestCost := r.pathCost(best)
	if alt := lPath(a, b, false); true {
		if c := r.pathCost(alt); c < bestCost {
			best, bestCost = alt, c
		}
	}
	// Z patterns: intermediate column (HVH) or row (VHV).
	k := r.opt.ZCandidates
	for i := 1; i <= k; i++ {
		if xm := a.X + (b.X-a.X)*i/(k+1); xm != a.X && xm != b.X {
			if p := zPathHVH(a, b, xm); p != nil {
				if c := r.pathCost(p); c < bestCost {
					best, bestCost = p, c
				}
			}
		}
		if ym := a.Y + (b.Y-a.Y)*i/(k+1); ym != a.Y && ym != b.Y {
			if p := zPathVHV(a, b, ym); p != nil {
				if c := r.pathCost(p); c < bestCost {
					best, bestCost = p, c
				}
			}
		}
	}
	return best
}

// staticLPath is the congestion-blind pattern choice of StaticPatterns
// mode: an L whose corner side is picked by the parity of the endpoint
// coordinate sum. A pure function of (a, b) — no grid state is read —
// while the parity split still statistically spreads elbows instead of
// stacking every bend on one side.
func staticLPath(a, b GP) []GP {
	return lPath(a, b, (a.X+a.Y+b.X+b.Y)&1 == 0)
}

// straight returns the unit-step path along a shared row or column.
func straight(a, b GP) []GP {
	path := []GP{a}
	cur := a
	for cur != b {
		cur = stepToward(cur, b)
		path = append(path, cur)
	}
	return path
}

func stepToward(cur, goal GP) GP {
	switch {
	case cur.X < goal.X:
		cur.X++
	case cur.X > goal.X:
		cur.X--
	case cur.Y < goal.Y:
		cur.Y++
	case cur.Y > goal.Y:
		cur.Y--
	}
	return cur
}

// lPath routes via corner (b.X, a.Y) when horizFirst, else (a.X, b.Y).
func lPath(a, b GP, horizFirst bool) []GP {
	var corner GP
	if horizFirst {
		corner = GP{b.X, a.Y}
	} else {
		corner = GP{a.X, b.Y}
	}
	path := straight(a, corner)
	rest := straight(corner, b)
	return append(path, rest[1:]...)
}

// zPathHVH routes a→(xm,a.Y)→(xm,b.Y)→b.
func zPathHVH(a, b GP, xm int) []GP {
	p1 := GP{xm, a.Y}
	p2 := GP{xm, b.Y}
	path := straight(a, p1)
	path = append(path, straight(p1, p2)[1:]...)
	path = append(path, straight(p2, b)[1:]...)
	return path
}

// zPathVHV routes a→(a.X,ym)→(b.X,ym)→b.
func zPathVHV(a, b GP, ym int) []GP {
	p1 := GP{a.X, ym}
	p2 := GP{b.X, ym}
	path := straight(a, p1)
	path = append(path, straight(p1, p2)[1:]...)
	path = append(path, straight(p2, b)[1:]...)
	return path
}
