package route

import (
	"testing"

	"tsteiner/internal/grid"
	"tsteiner/internal/lib"
	"tsteiner/internal/netlist"
	"tsteiner/internal/place"
	"tsteiner/internal/rsmt"
	"tsteiner/internal/synth"
)

func benchFixture(b *testing.B) (*netlist.Design, *rsmt.Forest) {
	b.Helper()
	spec, err := synth.BenchmarkByName("APU")
	if err != nil {
		b.Fatal(err)
	}
	d, err := synth.Generate(spec, lib.Default())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := place.Place(d, place.DefaultOptions()); err != nil {
		b.Fatal(err)
	}
	f, err := rsmt.BuildAll(d, rsmt.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	return d, f
}

func BenchmarkGlobalRoute(b *testing.B) {
	d, f := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := grid.New(d.Die, 8, []int{0, 12, 12, 10, 10})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Route(d, f, g, DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEdgeShift(b *testing.B) {
	d, f := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := grid.New(d.Die, 8, []int{0, 12, 12, 10, 10})
		if err != nil {
			b.Fatal(err)
		}
		fc := f.Clone()
		EdgeShift(fc, g, DefaultEdgeShiftOptions())
	}
}

func BenchmarkIncrementalReroute(b *testing.B) {
	d, f := benchFixture(b)
	g, err := grid.New(d.Die, 8, []int{0, 12, 12, 10, 10})
	if err != nil {
		b.Fatal(err)
	}
	prev, err := Route(d, f, g, DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	newF := f.Clone()
	xs, ys, idx := newF.SteinerPositions()
	for i := range xs {
		if i%7 == 0 {
			xs[i] += 16
		}
	}
	if err := newF.SetSteinerPositions(xs, ys, idx, d.Die); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _, err := Incremental(d, f, newF, g, prev, DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		// Restore: route back to the original forest so every iteration
		// starts from the same grid state.
		_, _, err = Incremental(d, newF, f, g, res, DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
	}
}
