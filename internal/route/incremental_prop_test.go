package route

import (
	"math"
	"math/rand"
	"testing"

	"tsteiner/internal/grid"
	"tsteiner/internal/lib"
	"tsteiner/internal/netlist"
	"tsteiner/internal/place"
	"tsteiner/internal/rsmt"
	"tsteiner/internal/synth"
)

// staticFixture prepares a routed design in StaticPatterns mode.
func staticFixture(t *testing.T, name string, scale float64) (*netlist.Design, *rsmt.Forest, *grid.Grid, *Result, Options) {
	t.Helper()
	spec, err := synth.BenchmarkByName(name)
	if err != nil {
		t.Fatal(err)
	}
	d, err := synth.Generate(spec.Scale(scale), lib.Default())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := place.Place(d, place.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	f, err := rsmt.BuildAll(d, rsmt.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.StaticPatterns = true
	g := newTestGrid(t, d)
	prev, err := Route(d, f, g, opt)
	if err != nil {
		t.Fatal(err)
	}
	return d, f, g, prev, opt
}

func newTestGrid(t *testing.T, d *netlist.Design) *grid.Grid {
	t.Helper()
	g, err := grid.New(d.Die, 8, []int{0, 12, 12, 10, 10})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// requireSameRouting fails unless two results are byte-identical:
// every edge's cells, layers and vias, the tallies, and the grid state
// they left behind.
func requireSameRouting(t *testing.T, got, want *Result, gGot, gWant *grid.Grid) {
	t.Helper()
	if len(got.Routes) != len(want.Routes) {
		t.Fatalf("route count %d vs %d", len(got.Routes), len(want.Routes))
	}
	for ni := range want.Routes {
		if routesDiffer(&got.Routes[ni], &want.Routes[ni]) {
			t.Fatalf("net %d realization differs from from-scratch route", ni)
		}
	}
	if got.WirelengthDBU != want.WirelengthDBU || got.Vias != want.Vias ||
		got.Overflow != want.Overflow || got.MazeReroutes != want.MazeReroutes {
		t.Fatalf("tallies differ: (%d, %d, %d, %d) vs (%d, %d, %d, %d)",
			got.WirelengthDBU, got.Vias, got.Overflow, got.MazeReroutes,
			want.WirelengthDBU, want.Vias, want.Overflow, want.MazeReroutes)
	}
	if gGot.W != gWant.W || gGot.H != gWant.H {
		t.Fatalf("grid shape differs")
	}
	for y := 0; y < gGot.H; y++ {
		for x := 0; x < gGot.W; x++ {
			if x+1 < gGot.W && gGot.UsageH(x, y) != gWant.UsageH(x, y) {
				t.Fatalf("usageH(%d,%d): %d vs %d", x, y, gGot.UsageH(x, y), gWant.UsageH(x, y))
			}
			if y+1 < gGot.H && gGot.UsageV(x, y) != gWant.UsageV(x, y) {
				t.Fatalf("usageV(%d,%d): %d vs %d", x, y, gGot.UsageV(x, y), gWant.UsageV(x, y))
			}
			for l := 1; l < len(gGot.LayerCap); l++ {
				if x+1 < gGot.W && gGot.LayerUsageH(l, x, y) != gWant.LayerUsageH(l, x, y) {
					t.Fatalf("layerUseH(%d,%d,%d) differs", l, x, y)
				}
				if y+1 < gGot.H && gGot.LayerUsageV(l, x, y) != gWant.LayerUsageV(l, x, y) {
					t.Fatalf("layerUseV(%d,%d,%d) differs", l, x, y)
				}
			}
		}
	}
}

// TestPropIncrementalStaticByteIdentity is the issue's routing
// property: in StaticPatterns mode, for seeded random subsets of moved
// nets, Incremental's result is byte-identical to a from-scratch Route
// of the new forest (including grid state). Rounds chain — each
// incremental result is the next previous state — so replay drift
// would compound and get caught.
func TestPropIncrementalStaticByteIdentity(t *testing.T) {
	for _, name := range []string{"spm", "cic_decimator"} {
		t.Run(name, func(t *testing.T) {
			d, oldF, g, prev, opt := staticFixture(t, name, 1.0)
			rng := rand.New(rand.NewSource(314))
			rounds := 6
			if testing.Short() {
				rounds = 3
			}
			for round := 0; round < rounds; round++ {
				newF := oldF.Clone()
				xs, ys, idx := newF.SteinerPositions()
				if len(xs) == 0 {
					t.Skip("no Steiner points to move")
				}
				// Move a random subset by a random whole number of
				// GCells (some moves stay inside the same GCell and
				// must be treated as unchanged).
				k := 1 + rng.Intn(len(xs)/4+1)
				for j := 0; j < k; j++ {
					i := rng.Intn(len(xs))
					xs[i] += float64((rng.Intn(7) - 3) * 8)
					ys[i] += float64((rng.Intn(7) - 3) * 8)
				}
				if err := newF.SetSteinerPositions(xs, ys, idx, d.Die); err != nil {
					t.Fatal(err)
				}

				got, nChanged, err := Incremental(d, oldF, newF, g, prev, opt)
				if err != nil {
					t.Fatal(err)
				}
				gFresh := newTestGrid(t, d)
				want, err := Route(d, newF, gFresh, opt)
				if err != nil {
					t.Fatal(err)
				}
				requireSameRouting(t, got, want, g, gFresh)

				// ChangedNets must be exactly the nets whose realization
				// moved, in ascending order, and cover at least the
				// GCell-crossing nets counted by nChanged.
				seen := map[netlist.NetID]bool{}
				for i, ni := range got.ChangedNets {
					if i > 0 && got.ChangedNets[i-1] >= ni {
						t.Fatalf("ChangedNets not strictly ascending")
					}
					seen[ni] = true
				}
				for ni := range got.Routes {
					if routesDiffer(&prev.Routes[ni], &got.Routes[ni]) != seen[netlist.NetID(ni)] {
						t.Fatalf("net %d: ChangedNets membership %v contradicts diff", ni, seen[netlist.NetID(ni)])
					}
				}
				if nChanged == 0 && len(got.ChangedNets) != 0 {
					t.Fatalf("no net crossed a GCell but %d nets changed", len(got.ChangedNets))
				}

				oldF, prev = newF, got
			}
		})
	}
}

// TestIncrementalStaticNoMoveIsIdentity: an incremental step with an
// identical forest must change nothing — no changed nets, identical
// tallies, identical grid.
func TestIncrementalStaticNoMoveIsIdentity(t *testing.T) {
	d, f, g, prev, opt := staticFixture(t, "spm", 1.0)
	got, nChanged, err := Incremental(d, f, f.Clone(), g, prev, opt)
	if err != nil {
		t.Fatal(err)
	}
	if nChanged != 0 || len(got.ChangedNets) != 0 {
		t.Fatalf("identity step reported %d/%d changed nets", nChanged, len(got.ChangedNets))
	}
	gFresh := newTestGrid(t, d)
	want, err := Route(d, f, gFresh, opt)
	if err != nil {
		t.Fatal(err)
	}
	requireSameRouting(t, got, want, g, gFresh)
}

// TestStaticPatternsArePure: the static pattern choice must be a pure
// function of the endpoints — identical paths regardless of the grid
// congestion state it is evaluated under.
func TestStaticPatternsArePure(t *testing.T) {
	d, f, g, _, opt := staticFixture(t, "spm", 0.5)
	r1 := &router{d: d, g: g, opt: opt} // congested grid (post-route)
	gFresh := newTestGrid(t, d)
	r2 := &router{d: d, g: gFresh, opt: opt} // empty grid
	rng := rand.New(rand.NewSource(9))
	_ = f
	for trial := 0; trial < 200; trial++ {
		a := GP{rng.Intn(g.W), rng.Intn(g.H)}
		b := GP{rng.Intn(g.W), rng.Intn(g.H)}
		p1 := r1.patternRoute(a, b)
		p2 := r2.patternRoute(a, b)
		if len(p1) != len(p2) {
			t.Fatalf("path length differs for %v→%v", a, b)
		}
		for i := range p1 {
			if p1[i] != p2[i] {
				t.Fatalf("static path differs for %v→%v at %d", a, b, i)
			}
		}
		// Manhattan-optimal: a static L never detours.
		wantLen := int(math.Abs(float64(a.X-b.X)) + math.Abs(float64(a.Y-b.Y)))
		if len(p1)-1 != wantLen {
			t.Fatalf("static path %v→%v has %d steps, want %d", a, b, len(p1)-1, wantLen)
		}
	}
}
