package route

import (
	"fmt"

	"tsteiner/internal/grid"
	"tsteiner/internal/netlist"
	"tsteiner/internal/rsmt"
)

// Incremental routing: after Steiner refinement, most nets' trees are
// unchanged at GCell granularity — only the nets whose nodes crossed a
// GCell boundary need new routes. Incremental rips up exactly those nets
// from the previous routing state and re-routes them under the current
// congestion, reusing everything else. This is the routing-side
// counterpart of TSteiner's "small runtime overhead" story: a refinement
// pass does not force a full re-route.

// Incremental updates prev (computed for oldF on g) into a routing of
// newF. The two forests must share topology (same trees, nodes and
// edges); only positions may differ. g must still hold prev's usage.
// Returns the new result and the number of re-routed nets.
func Incremental(d *netlist.Design, oldF, newF *rsmt.Forest, g *grid.Grid, prev *Result, opt Options) (*Result, int, error) {
	if len(oldF.Trees) != len(newF.Trees) || len(prev.Routes) != len(oldF.Trees) {
		return nil, 0, fmt.Errorf("route: incremental input size mismatch")
	}
	r := &router{d: d, g: g, opt: opt}

	changed := make([]bool, len(newF.Trees))
	nChanged := 0
	for ti := range newF.Trees {
		ot, nt := oldF.Trees[ti], newF.Trees[ti]
		if len(ot.Nodes) != len(nt.Nodes) || len(ot.Edges) != len(nt.Edges) {
			return nil, 0, fmt.Errorf("route: net %d topology differs", ti)
		}
		for ni := range nt.Nodes {
			ox, oy := g.GCellOf(ot.Nodes[ni].Pos.Round())
			nx, ny := g.GCellOf(nt.Nodes[ni].Pos.Round())
			if ox != nx || oy != ny {
				changed[ti] = true
				break
			}
		}
		if changed[ti] {
			nChanged++
		}
	}

	res := &Result{Routes: make([]NetRoute, len(newF.Trees)), MazeReroutes: prev.MazeReroutes}

	// Rip up changed nets: release 2D usage and per-layer bookings.
	for ti, tr := range newF.Trees {
		if !changed[ti] {
			res.Routes[ti] = prev.Routes[ti]
			continue
		}
		for ei := range prev.Routes[ti].Edges {
			er := &prev.Routes[ti].Edges[ei]
			r.commit(er.Cells, -1)
			r.unassignLayers(er)
		}
		_ = tr
	}

	// Re-route changed nets under current congestion and re-assign layers.
	for ti, tr := range newF.Trees {
		if !changed[ti] {
			continue
		}
		nr := NetRoute{Net: tr.Net}
		for ei, e := range tr.Edges {
			a := r.gcellOfNode(tr, int(e.A))
			b := r.gcellOfNode(tr, int(e.B))
			path := r.patternRoute(a, b)
			if r.pathOverflow(path) > 0 {
				if mp := r.mazeRoute(a, b); mp != nil {
					path = mp
					res.MazeReroutes++
				}
			}
			r.commit(path, +1)
			er := EdgeRoute{TreeEdge: ei, Cells: path}
			r.assignLayers(&er)
			nr.Edges = append(nr.Edges, er)
		}
		res.Routes[ti] = nr
	}

	// Recompute tallies over the merged result.
	for ni := range res.Routes {
		for ei := range res.Routes[ni].Edges {
			er := &res.Routes[ni].Edges[ei]
			res.WirelengthDBU += int64(er.StepsDBU(g.GCellSize))
			res.Vias += er.Vias
		}
	}
	res.Overflow = g.TotalOverflow()
	return res, nChanged, nil
}

// unassignLayers releases the per-layer bookings of a routed edge.
func (r *router) unassignLayers(er *EdgeRoute) {
	for i, l := range er.Layers {
		a, b := er.Cells[i], er.Cells[i+1]
		if a.Y == b.Y {
			r.g.UnassignLayerH(l, min(a.X, b.X), a.Y)
		} else {
			r.g.UnassignLayerV(l, a.X, min(a.Y, b.Y))
		}
	}
}
