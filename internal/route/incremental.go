package route

import (
	"fmt"

	"tsteiner/internal/grid"
	"tsteiner/internal/netlist"
	"tsteiner/internal/rsmt"
)

// Incremental routing: after Steiner refinement, most nets' trees are
// unchanged at GCell granularity — only the nets whose nodes crossed a
// GCell boundary need new routes. Incremental rips up exactly those nets
// from the previous routing state and re-routes them under the current
// congestion, reusing everything else. This is the routing-side
// counterpart of TSteiner's "small runtime overhead" story: a refinement
// pass does not force a full re-route.

// Incremental updates prev (computed for oldF on g) into a routing of
// newF. The two forests must share topology (same trees, nodes and
// edges); only positions may differ. g must still hold prev's usage.
// Returns the new result and the number of re-routed nets.
//
// In the default (congestion-probing) mode the re-route of a changed
// net sees the congestion history of prev, so the merged result is a
// good routing but not the routing a from-scratch Route of newF would
// produce. With opt.StaticPatterns the initial pattern stage is a pure
// function of the forest, and Incremental switches to an exact replay:
// the returned result is byte-identical to Route(d, newF, freshGrid,
// opt), while path construction is only paid for nets that moved (or
// were previously patched by rip-up-and-reroute). prev must itself
// have been produced in static mode (by Route or a previous
// Incremental) on the same options.
func Incremental(d *netlist.Design, oldF, newF *rsmt.Forest, g *grid.Grid, prev *Result, opt Options) (*Result, int, error) {
	changed, nChanged, err := changedNets(oldF, newF, g, prev)
	if err != nil {
		return nil, 0, err
	}
	if opt.StaticPatterns {
		res, err := replayStatic(d, newF, g, prev, opt, changed)
		return res, nChanged, err
	}
	r := &router{d: d, g: g, opt: opt}

	res := &Result{Routes: make([]NetRoute, len(newF.Trees)), MazeReroutes: prev.MazeReroutes}

	// Rip up changed nets: release 2D usage and per-layer bookings.
	for ti, tr := range newF.Trees {
		if !changed[ti] {
			res.Routes[ti] = prev.Routes[ti]
			continue
		}
		for ei := range prev.Routes[ti].Edges {
			er := &prev.Routes[ti].Edges[ei]
			r.commit(er.Cells, -1)
			r.unassignLayers(er)
		}
		_ = tr
	}

	// Re-route changed nets under current congestion and re-assign layers.
	for ti, tr := range newF.Trees {
		if !changed[ti] {
			continue
		}
		nr := NetRoute{Net: tr.Net}
		for ei, e := range tr.Edges {
			a := r.gcellOfNode(tr, int(e.A))
			b := r.gcellOfNode(tr, int(e.B))
			path := r.patternRoute(a, b)
			if r.pathOverflow(path) > 0 {
				if mp := r.mazeRoute(a, b); mp != nil {
					path = mp
					res.MazeReroutes++
				}
			}
			r.commit(path, +1)
			er := EdgeRoute{TreeEdge: ei, Cells: path}
			r.assignLayers(&er)
			nr.Edges = append(nr.Edges, er)
		}
		res.Routes[ti] = nr
	}

	// Recompute tallies over the merged result.
	for ni := range res.Routes {
		for ei := range res.Routes[ni].Edges {
			er := &res.Routes[ni].Edges[ei]
			res.WirelengthDBU += int64(er.StepsDBU(g.GCellSize))
			res.Vias += er.Vias
		}
	}
	res.Overflow = g.TotalOverflow()
	return res, nChanged, nil
}

// changedNets flags the nets whose tree nodes moved across a GCell
// boundary between oldF and newF (after rounding), validating that the
// two forests share topology.
func changedNets(oldF, newF *rsmt.Forest, g *grid.Grid, prev *Result) ([]bool, int, error) {
	if len(oldF.Trees) != len(newF.Trees) || len(prev.Routes) != len(oldF.Trees) {
		return nil, 0, fmt.Errorf("route: incremental input size mismatch")
	}
	changed := make([]bool, len(newF.Trees))
	nChanged := 0
	for ti := range newF.Trees {
		ot, nt := oldF.Trees[ti], newF.Trees[ti]
		if len(ot.Nodes) != len(nt.Nodes) || len(ot.Edges) != len(nt.Edges) {
			return nil, 0, fmt.Errorf("route: net %d topology differs", ti)
		}
		for ni := range nt.Nodes {
			ox, oy := g.GCellOf(ot.Nodes[ni].Pos.Round())
			nx, ny := g.GCellOf(nt.Nodes[ni].Pos.Round())
			if ox != nx || oy != ny {
				changed[ti] = true
				break
			}
		}
		if changed[ti] {
			nChanged++
		}
	}
	return changed, nChanged, nil
}

// replayStatic is the StaticPatterns incremental path: rebuild the
// phase-1 state from scratch semantics (possible because static initial
// paths are pure functions of edge endpoints), then replay rip-up/
// reroute and layer assignment exactly as Route would on a fresh grid.
// Unchanged nets whose initial path survived RRR reuse their previous
// Cells slices, so path construction is proportional to the moved set;
// the remaining work is linear integer bookkeeping.
func replayStatic(d *netlist.Design, newF *rsmt.Forest, g *grid.Grid, prev *Result, opt Options, changed []bool) (*Result, error) {
	r := &router{d: d, g: g, opt: opt}
	res := &Result{Routes: make([]NetRoute, len(newF.Trees))}

	// Phase 1: static pattern paths. Order-independent usage, so a
	// plain net-order sweep reproduces Route's phase-1 grid state even
	// when Route sorted by NetPriority.
	g.ResetUsage()
	for ti := range newF.Trees {
		tr := newF.Trees[ti]
		nr := NetRoute{Net: tr.Net, Edges: make([]EdgeRoute, len(tr.Edges))}
		for ei, e := range tr.Edges {
			var path []GP
			if !changed[ti] && !prev.Routes[ti].Edges[ei].patched {
				path = prev.Routes[ti].Edges[ei].Cells
			} else {
				a := r.gcellOfNode(tr, int(e.A))
				b := r.gcellOfNode(tr, int(e.B))
				path = r.patternRoute(a, b)
			}
			r.commit(path, +1)
			nr.Edges[ei] = EdgeRoute{TreeEdge: ei, Cells: path}
		}
		res.Routes[ti] = nr
	}

	// Rip-up and reroute, byte-for-byte the sequence Route runs: the
	// victim list is sorted deterministically and the grid state matches
	// a fresh route's, so the maze searches reproduce exactly.
	for round := 0; round < opt.RRRRounds; round++ {
		if g.TotalOverflow() == 0 {
			break // no overflowed grid edge ⇒ no victims; skip the O(wirelength) scan
		}
		victims := r.collectOverflowed(res)
		if len(victims) == 0 {
			break
		}
		for _, v := range victims {
			er := &res.Routes[v.net].Edges[v.edge]
			r.commit(er.Cells, -1)
			start := er.Cells[0]
			goal := er.Cells[len(er.Cells)-1]
			path := r.mazeRoute(start, goal)
			if path == nil {
				path = r.patternRoute(start, goal)
			} else {
				res.MazeReroutes++
			}
			r.commit(path, +1)
			er.Cells = path
			er.patched = true
		}
	}

	// Layer assignment in static mode is a pure per-step function of an
	// edge's cells (grid.StaticLayer), so an edge whose path slice was
	// reused verbatim keeps its previous layers and vias; only touched
	// edges recompute. This is what keeps ChangedNets — and therefore
	// the RC/STA refresh downstream — proportional to the moved set
	// instead of avalanching through a usage-balancing assignment.
	for ni := range res.Routes {
		for ei := range res.Routes[ni].Edges {
			er := &res.Routes[ni].Edges[ei]
			pe := &prev.Routes[ni].Edges[ei]
			if len(er.Cells) > 0 && len(pe.Cells) > 0 && &er.Cells[0] == &pe.Cells[0] {
				er.Layers, er.Vias = pe.Layers, pe.Vias
			} else {
				r.assignLayers(er)
			}
			res.WirelengthDBU += int64(er.StepsDBU(g.GCellSize))
			res.Vias += er.Vias
		}
	}
	res.Overflow = g.TotalOverflow()

	// Report the nets whose realization actually changed — the set
	// downstream RC/STA must refresh. Reused Cells slices make the
	// common case a pointer comparison.
	for ni := range res.Routes {
		if routesDiffer(&prev.Routes[ni], &res.Routes[ni]) {
			res.ChangedNets = append(res.ChangedNets, netlist.NetID(ni))
		}
	}
	return res, nil
}

// routesDiffer reports whether a net's realization (cells, layers or
// vias) differs between two results.
func routesDiffer(a, b *NetRoute) bool {
	if len(a.Edges) != len(b.Edges) {
		return true
	}
	for ei := range a.Edges {
		ea, eb := &a.Edges[ei], &b.Edges[ei]
		if ea.Vias != eb.Vias || len(ea.Cells) != len(eb.Cells) || len(ea.Layers) != len(eb.Layers) {
			return true
		}
		if len(ea.Cells) > 0 && &ea.Cells[0] != &eb.Cells[0] {
			for i := range ea.Cells {
				if ea.Cells[i] != eb.Cells[i] {
					return true
				}
			}
		}
		if len(ea.Layers) > 0 && &ea.Layers[0] != &eb.Layers[0] {
			for i := range ea.Layers {
				if ea.Layers[i] != eb.Layers[i] {
					return true
				}
			}
		}
	}
	return false
}

// unassignLayers releases the per-layer bookings of a routed edge.
func (r *router) unassignLayers(er *EdgeRoute) {
	for i, l := range er.Layers {
		a, b := er.Cells[i], er.Cells[i+1]
		if a.Y == b.Y {
			r.g.UnassignLayerH(l, min(a.X, b.X), a.Y)
		} else {
			r.g.UnassignLayerV(l, a.X, min(a.Y, b.Y))
		}
	}
}
