package route

import (
	"math"

	"tsteiner/internal/geom"
	"tsteiner/internal/grid"
	"tsteiner/internal/rsmt"
)

// Edge shifting (FastRoute-style): before routing, Steiner points are
// nudged to relieve estimated congestion. Demand is estimated
// probabilistically — each tree edge spreads half a track along each of
// its two L-shaped embeddings — and each Steiner node greedily moves to
// the neighbouring GCell position that minimizes expected congestion cost
// plus a wirelength term.

// demandMap accumulates fractional expected track demand per 2D grid edge.
type demandMap struct {
	g    *grid.Grid
	h, v []float64
}

func newDemandMap(g *grid.Grid) *demandMap {
	return &demandMap{
		g: g,
		h: make([]float64, (g.W-1)*g.H),
		v: make([]float64, g.W*(g.H-1)),
	}
}

func (m *demandMap) addH(x, y int, w float64) {
	if x >= 0 && x < m.g.W-1 && y >= 0 && y < m.g.H {
		m.h[y*(m.g.W-1)+x] += w
	}
}

func (m *demandMap) addV(x, y int, w float64) {
	if x >= 0 && x < m.g.W && y >= 0 && y < m.g.H-1 {
		m.v[y*m.g.W+x] += w
	}
}

func (m *demandMap) demandH(x, y int) float64 {
	if x >= 0 && x < m.g.W-1 && y >= 0 && y < m.g.H {
		return m.h[y*(m.g.W-1)+x]
	}
	return 0
}

func (m *demandMap) demandV(x, y int) float64 {
	if x >= 0 && x < m.g.W && y >= 0 && y < m.g.H-1 {
		return m.v[y*m.g.W+x]
	}
	return 0
}

// addLShapes spreads weight w/2 along each L embedding of segment a→b.
func (m *demandMap) addLShapes(a, b GP, w float64) {
	m.addLPath(a, b, true, w/2)
	m.addLPath(a, b, false, w/2)
}

func (m *demandMap) addLPath(a, b GP, horizFirst bool, w float64) {
	var corner GP
	if horizFirst {
		corner = GP{b.X, a.Y}
	} else {
		corner = GP{a.X, b.Y}
	}
	m.addStraight(a, corner, w)
	m.addStraight(corner, b, w)
}

func (m *demandMap) addStraight(a, b GP, w float64) {
	if a.Y == b.Y {
		lo, hi := min(a.X, b.X), maxi(a.X, b.X)
		for x := lo; x < hi; x++ {
			m.addH(x, a.Y, w)
		}
		return
	}
	lo, hi := min(a.Y, b.Y), maxi(a.Y, b.Y)
	for y := lo; y < hi; y++ {
		m.addV(a.X, y, w)
	}
}

// expectedCost estimates the congestion cost of segment a→b as the mean
// of its two L embeddings under current demand.
func (m *demandMap) expectedCost(a, b GP) float64 {
	return (m.lCost(a, b, true) + m.lCost(a, b, false)) / 2
}

func (m *demandMap) lCost(a, b GP, horizFirst bool) float64 {
	var corner GP
	if horizFirst {
		corner = GP{b.X, a.Y}
	} else {
		corner = GP{a.X, b.Y}
	}
	return m.straightCost(a, corner) + m.straightCost(corner, b)
}

func (m *demandMap) straightCost(a, b GP) float64 {
	var sum float64
	if a.Y == b.Y {
		capH := float64(m.g.CapDir(grid.Horiz))
		lo, hi := min(a.X, b.X), maxi(a.X, b.X)
		for x := lo; x < hi; x++ {
			sum += demandCost(m.demandH(x, a.Y), capH)
		}
		return sum
	}
	capV := float64(m.g.CapDir(grid.Vert))
	lo, hi := min(a.Y, b.Y), maxi(a.Y, b.Y)
	for y := lo; y < hi; y++ {
		sum += demandCost(m.demandV(a.X, y), capV)
	}
	return sum
}

func demandCost(demand, cap float64) float64 {
	return 1.0 + math.Exp(6.0*((demand+1)/cap-1.0))
}

// EdgeShiftOptions tunes the congestion-driven Steiner shift.
type EdgeShiftOptions struct {
	// MaxShift is the farthest move per node, in GCells.
	MaxShift int
	// Passes over all Steiner nodes.
	Passes int
}

// DefaultEdgeShiftOptions returns the settings used by the flow.
func DefaultEdgeShiftOptions() EdgeShiftOptions { return EdgeShiftOptions{MaxShift: 2, Passes: 2} }

// EdgeShift moves Steiner nodes of f to relieve estimated congestion on
// g; positions stay inside the die. Returns the number of nodes moved.
func EdgeShift(f *rsmt.Forest, g *grid.Grid, opt EdgeShiftOptions) int {
	if opt.MaxShift < 1 {
		opt.MaxShift = 1
	}
	if opt.Passes < 1 {
		opt.Passes = 1
	}
	m := newDemandMap(g)
	gcOf := func(p geom.FPoint) GP {
		x, y := g.GCellOf(p.Round())
		return GP{x, y}
	}
	// Seed the demand map with every tree edge.
	for _, tr := range f.Trees {
		for _, e := range tr.Edges {
			m.addLShapes(gcOf(tr.Nodes[e.A].Pos), gcOf(tr.Nodes[e.B].Pos), 1)
		}
	}

	moved := 0
	for pass := 0; pass < opt.Passes; pass++ {
		for _, tr := range f.Trees {
			adj := tr.Adjacency()
			for ni := range tr.Nodes {
				if tr.Nodes[ni].Kind != rsmt.SteinerNode {
					continue
				}
				if shiftNode(tr, ni, adj[ni], m, g, opt.MaxShift, gcOf) {
					moved++
				}
			}
		}
	}
	return moved
}

// shiftNode tries GCell-step moves of one Steiner node and applies the
// best improvement. Demand contributions of incident edges are moved with
// the node.
func shiftNode(tr *rsmt.Tree, ni int, nbrs []int32, m *demandMap, g *grid.Grid, maxShift int, gcOf func(geom.FPoint) GP) bool {
	cur := tr.Nodes[ni].Pos
	curGC := gcOf(cur)

	// Remove this node's incident demand while evaluating.
	for _, nb := range nbrs {
		m.addLShapes(curGC, gcOf(tr.Nodes[nb].Pos), -1)
	}
	score := func(gc GP) float64 {
		var sum float64
		for _, nb := range nbrs {
			ngc := gcOf(tr.Nodes[nb].Pos)
			sum += m.expectedCost(gc, ngc)
			// Wirelength term keeps moves honest: one unit per GCell of
			// detour, matching the base edge cost.
			sum += float64(absInt(gc.X-ngc.X) + absInt(gc.Y-ngc.Y))
		}
		return sum
	}
	bestGC := curGC
	bestScore := score(curGC)
	for _, dxy := range shiftDeltas(maxShift) {
		cand := GP{curGC.X + dxy[0], curGC.Y + dxy[1]}
		if cand.X < 0 || cand.X >= g.W || cand.Y < 0 || cand.Y >= g.H {
			continue
		}
		if s := score(cand); s < bestScore-1e-9 {
			bestScore = s
			bestGC = cand
		}
	}
	movedNode := bestGC != curGC
	if movedNode {
		c := g.Center(bestGC.X, bestGC.Y)
		tr.Nodes[ni].Pos = g.Die.ClampF(c.ToF())
	}
	for _, nb := range nbrs {
		m.addLShapes(bestGC, gcOf(tr.Nodes[nb].Pos), 1)
	}
	return movedNode
}

func shiftDeltas(maxShift int) [][2]int {
	var out [][2]int
	for d := 1; d <= maxShift; d++ {
		out = append(out, [2]int{d, 0}, [2]int{-d, 0}, [2]int{0, d}, [2]int{0, -d})
	}
	return out
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
