package route

import (
	"container/heap"
)

// Maze routing: congestion-aware A* over the GCell grid, restricted to a
// window around the endpoints so reroutes stay cheap even on large dies.
// Returns nil when no path exists inside the window (caller falls back to
// pattern routing).

type mazeNode struct {
	gp    GP
	cost  float64 // g-cost
	est   float64 // g + heuristic
	index int     // heap bookkeeping
}

type mazeHeap []*mazeNode

func (h mazeHeap) Len() int            { return len(h) }
func (h mazeHeap) Less(i, j int) bool  { return h[i].est < h[j].est }
func (h mazeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i]; h[i].index = i; h[j].index = j }
func (h *mazeHeap) Push(x interface{}) { n := x.(*mazeNode); n.index = len(*h); *h = append(*h, n) }
func (h *mazeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	item := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return item
}

// mazeRoute searches for the cheapest path from start to goal within the
// inflated bounding window.
func (r *router) mazeRoute(start, goal GP) []GP {
	m := r.opt.MazeMargin
	xlo := min(start.X, goal.X) - m
	xhi := maxi(start.X, goal.X) + m
	ylo := min(start.Y, goal.Y) - m
	yhi := maxi(start.Y, goal.Y) + m
	if xlo < 0 {
		xlo = 0
	}
	if ylo < 0 {
		ylo = 0
	}
	if xhi > r.g.W-1 {
		xhi = r.g.W - 1
	}
	if yhi > r.g.H-1 {
		yhi = r.g.H - 1
	}
	w := xhi - xlo + 1
	h := yhi - ylo + 1
	idx := func(p GP) int { return (p.Y-ylo)*w + (p.X - xlo) }

	const unvisited = -1
	dist := make([]float64, w*h)
	parent := make([]int32, w*h)
	closed := make([]bool, w*h)
	for i := range parent {
		parent[i] = unvisited
		dist[i] = -1
	}
	heur := func(p GP) float64 {
		dx := p.X - goal.X
		if dx < 0 {
			dx = -dx
		}
		dy := p.Y - goal.Y
		if dy < 0 {
			dy = -dy
		}
		return float64(dx + dy) // admissible: min edge cost > 1
	}

	open := &mazeHeap{}
	heap.Init(open)
	si := idx(start)
	dist[si] = 0
	parent[si] = int32(si)
	heap.Push(open, &mazeNode{gp: start, cost: 0, est: heur(start)})

	for open.Len() > 0 {
		cur := heap.Pop(open).(*mazeNode)
		ci := idx(cur.gp)
		if closed[ci] {
			continue
		}
		closed[ci] = true
		if cur.gp == goal {
			return reconstruct(parent, w, xlo, ylo, start, goal)
		}
		// Expand 4-neighbours inside the window.
		tryStep := func(np GP, edgeCost float64) {
			if np.X < xlo || np.X > xhi || np.Y < ylo || np.Y > yhi {
				return
			}
			ni := idx(np)
			if closed[ni] {
				return
			}
			nc := cur.cost + edgeCost
			if dist[ni] < 0 || nc < dist[ni] {
				dist[ni] = nc
				parent[ni] = int32(ci)
				heap.Push(open, &mazeNode{gp: np, cost: nc, est: nc + heur(np)})
			}
		}
		p := cur.gp
		tryStep(GP{p.X + 1, p.Y}, r.g.CostH(p.X, p.Y))
		tryStep(GP{p.X - 1, p.Y}, r.g.CostH(p.X-1, p.Y))
		tryStep(GP{p.X, p.Y + 1}, r.g.CostV(p.X, p.Y))
		tryStep(GP{p.X, p.Y - 1}, r.g.CostV(p.X, p.Y-1))
	}
	return nil
}

func reconstruct(parent []int32, w, xlo, ylo int, start, goal GP) []GP {
	toGP := func(i int32) GP { return GP{X: int(i)%w + xlo, Y: int(i)/w + ylo} }
	idx := func(p GP) int32 { return int32((p.Y-ylo)*w + (p.X - xlo)) }
	var rev []GP
	cur := idx(goal)
	for {
		rev = append(rev, toGP(cur))
		if toGP(cur) == start {
			break
		}
		cur = parent[cur]
	}
	// Reverse in place.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}
