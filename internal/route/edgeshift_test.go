package route

import (
	"math"
	"testing"

	"tsteiner/internal/geom"
	"tsteiner/internal/grid"
)

func demandFixture(t *testing.T) (*grid.Grid, *demandMap) {
	t.Helper()
	g, err := grid.New(geom.BBox{XLo: 0, YLo: 0, XHi: 160, YHi: 160}, 8, []int{0, 4, 4, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	return g, newDemandMap(g)
}

func TestDemandMapLShapeConservation(t *testing.T) {
	_, m := demandFixture(t)
	a, b := GP{2, 3}, GP{7, 9}
	m.addLShapes(a, b, 1)
	// Total demand added = full weight × Manhattan length: half on each L.
	var total float64
	for _, v := range m.h {
		total += v
	}
	for _, v := range m.v {
		total += v
	}
	man := float64(absInt(a.X-b.X) + absInt(a.Y-b.Y))
	if math.Abs(total-man) > 1e-9 {
		t.Fatalf("total demand %g want %g", total, man)
	}
	// Negative add cancels exactly.
	m.addLShapes(a, b, -1)
	for i, v := range m.h {
		if v != 0 {
			t.Fatalf("h[%d]=%g after cancel", i, v)
		}
	}
	for i, v := range m.v {
		if v != 0 {
			t.Fatalf("v[%d]=%g after cancel", i, v)
		}
	}
}

func TestDemandMapOutOfRangeIgnored(t *testing.T) {
	g, m := demandFixture(t)
	m.addH(-1, 0, 5)
	m.addH(g.W-1, 0, 5) // no H edge leaves the last column
	m.addV(0, g.H-1, 5)
	if m.demandH(-1, 0) != 0 || m.demandH(g.W-1, 0) != 0 || m.demandV(0, g.H-1) != 0 {
		t.Fatal("out-of-range demand leaked")
	}
}

func TestExpectedCostGrowsWithDemand(t *testing.T) {
	_, m := demandFixture(t)
	a, b := GP{1, 1}, GP{6, 1}
	base := m.expectedCost(a, b)
	// Load the straight row heavily.
	for x := 1; x < 6; x++ {
		m.addH(x, 1, 30)
	}
	loaded := m.expectedCost(a, b)
	if loaded <= base {
		t.Fatalf("expected cost did not grow: %g -> %g", base, loaded)
	}
}

func TestExpectedCostSymmetric(t *testing.T) {
	_, m := demandFixture(t)
	m.addLShapes(GP{3, 3}, GP{8, 8}, 2)
	a, b := GP{2, 5}, GP{9, 1}
	if math.Abs(m.expectedCost(a, b)-m.expectedCost(b, a)) > 1e-9 {
		t.Fatal("expected cost not symmetric")
	}
}

func TestShiftDeltas(t *testing.T) {
	ds := shiftDeltas(2)
	if len(ds) != 8 {
		t.Fatalf("deltas=%d want 8", len(ds))
	}
	seen := map[[2]int]bool{}
	for _, d := range ds {
		if d[0] != 0 && d[1] != 0 {
			t.Fatal("diagonal delta generated")
		}
		seen[d] = true
	}
	for _, want := range [][2]int{{1, 0}, {-2, 0}, {0, 2}, {0, -1}} {
		if !seen[want] {
			t.Fatalf("missing delta %v", want)
		}
	}
}
