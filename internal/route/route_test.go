package route

import (
	"testing"
	"testing/quick"

	"tsteiner/internal/geom"
	"tsteiner/internal/grid"
	"tsteiner/internal/lib"
	"tsteiner/internal/netlist"
	"tsteiner/internal/place"
	"tsteiner/internal/rsmt"
	"tsteiner/internal/synth"
)

func routedFixture(t *testing.T, name string, scale float64) (*netlist.Design, *rsmt.Forest, *grid.Grid, *Result) {
	t.Helper()
	spec, err := synth.BenchmarkByName(name)
	if err != nil {
		t.Fatal(err)
	}
	d, err := synth.Generate(spec.Scale(scale), lib.Default())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := place.Place(d, place.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	f, err := rsmt.BuildAll(d, rsmt.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	g, err := grid.New(d.Die, 8, []int{4, 6, 6, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Route(d, f, g, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return d, f, g, res
}

func TestRouteCoversAllEdges(t *testing.T) {
	d, f, _, res := routedFixture(t, "spm", 1.0)
	if len(res.Routes) != len(d.Nets) {
		t.Fatalf("routes for %d of %d nets", len(res.Routes), len(d.Nets))
	}
	for ti, tr := range f.Trees {
		if len(res.Routes[ti].Edges) != len(tr.Edges) {
			t.Fatalf("net %d: %d of %d tree edges routed", ti, len(res.Routes[ti].Edges), len(tr.Edges))
		}
	}
}

func TestRoutedPathsAreContinuousAndEndCorrect(t *testing.T) {
	d, f, g, res := routedFixture(t, "cic_decimator", 1.0)
	_ = d
	for ti, tr := range f.Trees {
		for _, er := range res.Routes[ti].Edges {
			e := tr.Edges[er.TreeEdge]
			ax, ay := g.GCellOf(tr.Nodes[e.A].Pos.Round())
			bx, by := g.GCellOf(tr.Nodes[e.B].Pos.Round())
			first := er.Cells[0]
			last := er.Cells[len(er.Cells)-1]
			if first != (GP{ax, ay}) || last != (GP{bx, by}) {
				t.Fatalf("net %d edge %d: path endpoints %v..%v want %v..%v",
					ti, er.TreeEdge, first, last, GP{ax, ay}, GP{bx, by})
			}
			for i := 0; i+1 < len(er.Cells); i++ {
				a, b := er.Cells[i], er.Cells[i+1]
				man := absInt(a.X-b.X) + absInt(a.Y-b.Y)
				if man != 1 {
					t.Fatalf("net %d: non-unit step %v->%v", ti, a, b)
				}
			}
		}
	}
}

func TestUsageMatchesRoutes(t *testing.T) {
	// Re-committing every route onto a fresh grid must reproduce the 2D
	// usage of the routed grid exactly (conservation of accounting).
	d, _, g, res := routedFixture(t, "spm", 1.0)
	g2, err := grid.New(d.Die, 8, []int{4, 6, 6, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	r2 := &router{d: d, g: g2, opt: DefaultOptions()}
	for ni := range res.Routes {
		for ei := range res.Routes[ni].Edges {
			r2.commit(res.Routes[ni].Edges[ei].Cells, +1)
		}
	}
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W-1; x++ {
			if g.UsageH(x, y) != g2.UsageH(x, y) {
				t.Fatalf("H usage mismatch at (%d,%d): %d vs %d", x, y, g.UsageH(x, y), g2.UsageH(x, y))
			}
		}
	}
	for y := 0; y < g.H-1; y++ {
		for x := 0; x < g.W; x++ {
			if g.UsageV(x, y) != g2.UsageV(x, y) {
				t.Fatalf("V usage mismatch at (%d,%d)", x, y)
			}
		}
	}
}

func TestLayerAssignmentConsistent(t *testing.T) {
	_, _, g, res := routedFixture(t, "spm", 1.0)
	for ni := range res.Routes {
		for _, er := range res.Routes[ni].Edges {
			if len(er.Cells) <= 1 {
				if er.Vias != 0 || len(er.Layers) != 0 {
					t.Fatalf("trivial edge has layers/vias")
				}
				continue
			}
			if len(er.Layers) != len(er.Cells)-1 {
				t.Fatalf("layers %d for %d steps", len(er.Layers), len(er.Cells)-1)
			}
			for i, l := range er.Layers {
				a, b := er.Cells[i], er.Cells[i+1]
				if l <= 0 || l >= len(g.LayerCap) {
					t.Fatalf("invalid layer %d", l)
				}
				horiz := a.Y == b.Y
				if horiz && g.LayerDir[l] != grid.Horiz || !horiz && g.LayerDir[l] != grid.Vert {
					t.Fatalf("step direction/layer mismatch")
				}
			}
			if er.Vias < 2 {
				t.Fatalf("non-trivial edge has %d vias, want >= 2 escapes", er.Vias)
			}
		}
	}
}

func TestRouteReducesOverflowVsNoRRR(t *testing.T) {
	// With rip-up-and-reroute the final overflow must not exceed the
	// overflow of pure pattern routing.
	build := func(rounds int) int {
		spec, _ := synth.BenchmarkByName("APU")
		d, err := synth.Generate(spec.Scale(0.4), lib.Default())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := place.Place(d, place.DefaultOptions()); err != nil {
			t.Fatal(err)
		}
		f, err := rsmt.BuildAll(d, rsmt.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		// Moderate capacities: local hot spots exist but the grid is not
		// globally saturated (in full saturation rip-up detours can only
		// add demand, and no router can reduce total overflow).
		g, err := grid.New(d.Die, 8, []int{0, 6, 6, 5, 5})
		if err != nil {
			t.Fatal(err)
		}
		opt := DefaultOptions()
		opt.RRRRounds = rounds
		res, err := Route(d, f, g, opt)
		if err != nil {
			t.Fatal(err)
		}
		return res.Overflow
	}
	base := build(0)
	rrr := build(3)
	if rrr > base {
		t.Fatalf("RRR worsened overflow: %d -> %d", base, rrr)
	}
}

func TestWirelengthLowerBound(t *testing.T) {
	// Routed wirelength in GCell steps must be at least the GCell-space
	// Manhattan distance for every edge.
	_, f, g, res := routedFixture(t, "cic_decimator", 1.0)
	for ti, tr := range f.Trees {
		for _, er := range res.Routes[ti].Edges {
			e := tr.Edges[er.TreeEdge]
			ax, ay := g.GCellOf(tr.Nodes[e.A].Pos.Round())
			bx, by := g.GCellOf(tr.Nodes[e.B].Pos.Round())
			man := absInt(ax-bx) + absInt(ay-by)
			if steps := len(er.Cells) - 1; steps < man {
				t.Fatalf("path shorter than Manhattan distance: %d < %d", steps, man)
			}
		}
	}
}

func TestPatternRouteShapes(t *testing.T) {
	g, err := grid.New(geom.BBox{XLo: 0, YLo: 0, XHi: 160, YHi: 160}, 8, []int{0, 4, 4, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	r := &router{g: g, opt: DefaultOptions()}
	p := r.patternRoute(GP{1, 1}, GP{1, 1})
	if len(p) != 1 {
		t.Fatalf("self route len=%d", len(p))
	}
	p = r.patternRoute(GP{1, 1}, GP{6, 1})
	if len(p) != 6 {
		t.Fatalf("straight route len=%d want 6", len(p))
	}
	p = r.patternRoute(GP{1, 1}, GP{5, 4})
	if got, want := len(p)-1, 4+3; got != want {
		t.Fatalf("L route steps=%d want %d", got, want)
	}
}

func TestMazeRouteAvoidsCongestion(t *testing.T) {
	g, err := grid.New(geom.BBox{XLo: 0, YLo: 0, XHi: 160, YHi: 160}, 8, []int{0, 4, 4, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	// Saturate the straight row between the endpoints.
	for x := 2; x < 10; x++ {
		g.AddH(x, 5, 2*g.CapDir(grid.Horiz))
	}
	r := &router{g: g, opt: DefaultOptions()}
	path := r.mazeRoute(GP{2, 5}, GP{10, 5})
	if path == nil {
		t.Fatal("maze route failed")
	}
	// The path must leave row 5 to dodge the wall.
	offRow := false
	for _, p := range path {
		if p.Y != 5 {
			offRow = true
		}
	}
	if !offRow {
		t.Fatal("maze route ploughed through saturated row")
	}
}

func TestMazeRouteWindowBound(t *testing.T) {
	g, err := grid.New(geom.BBox{XLo: 0, YLo: 0, XHi: 800, YHi: 800}, 8, []int{0, 4, 4, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	r := &router{g: g, opt: Options{RRRRounds: 1, MazeMargin: 2, ZCandidates: 1}}
	path := r.mazeRoute(GP{10, 10}, GP{40, 40})
	if path == nil {
		t.Fatal("maze route in clean window failed")
	}
	for _, p := range path {
		if p.X < 8 || p.X > 42 || p.Y < 8 || p.Y > 42 {
			t.Fatalf("path escaped window at %v", p)
		}
	}
}

func TestGeomPathDBU(t *testing.T) {
	g, err := grid.New(geom.BBox{XLo: 0, YLo: 0, XHi: 160, YHi: 160}, 8, []int{0, 4, 4, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	er := &EdgeRoute{Cells: []GP{{1, 1}, {2, 1}, {3, 1}}}
	from := geom.Point{X: 9, Y: 9}
	to := geom.Point{X: 30, Y: 12}
	pts := GeomPathDBU(g, er, from, to)
	if pts[0] != from || pts[len(pts)-1] != to {
		t.Fatal("endpoints not preserved")
	}
	if len(pts) != 3 { // from + 1 interior + to
		t.Fatalf("len=%d want 3", len(pts))
	}
	// Trivial edge keeps direct segment.
	triv := &EdgeRoute{Cells: []GP{{1, 1}}}
	pts = GeomPathDBU(g, triv, from, to)
	if len(pts) != 2 {
		t.Fatalf("trivial path len=%d", len(pts))
	}
}

func TestEdgeShiftReducesEstimatedCongestion(t *testing.T) {
	spec, _ := synth.BenchmarkByName("APU")
	d, err := synth.Generate(spec.Scale(0.4), lib.Default())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := place.Place(d, place.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	f, err := rsmt.BuildAll(d, rsmt.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	g, err := grid.New(d.Die, 8, []int{0, 3, 3, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	moved := EdgeShift(f, g, DefaultEdgeShiftOptions())
	if moved == 0 {
		t.Skip("no shifts on this instance")
	}
	if err := f.Validate(d); err != nil {
		t.Fatalf("edge shifting broke the forest: %v", err)
	}
	// All nodes still inside the die.
	for _, tr := range f.Trees {
		for _, n := range tr.Nodes {
			p := n.Pos.Round()
			if !d.Die.Contains(p) {
				t.Fatalf("node escaped die: %v", p)
			}
		}
	}
}

func TestViaAwareLayersReduceVias(t *testing.T) {
	count := func(viaAware bool) int {
		spec, _ := synth.BenchmarkByName("cic_decimator")
		d, err := synth.Generate(spec, lib.Default())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := place.Place(d, place.DefaultOptions()); err != nil {
			t.Fatal(err)
		}
		f, err := rsmt.BuildAll(d, rsmt.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		g, err := grid.New(d.Die, 8, []int{0, 6, 6, 5, 5})
		if err != nil {
			t.Fatal(err)
		}
		opt := DefaultOptions()
		opt.ViaAwareLayers = viaAware
		res, err := Route(d, f, g, opt)
		if err != nil {
			t.Fatal(err)
		}
		// Layer/direction consistency must hold in both modes.
		for ni := range res.Routes {
			for _, er := range res.Routes[ni].Edges {
				for i, l := range er.Layers {
					a, b := er.Cells[i], er.Cells[i+1]
					horiz := a.Y == b.Y
					if horiz && g.LayerDir[l] != grid.Horiz || !horiz && g.LayerDir[l] != grid.Vert {
						t.Fatal("sticky assignment broke direction/layer invariant")
					}
				}
			}
		}
		return res.Vias
	}
	plain := count(false)
	sticky := count(true)
	if sticky > plain {
		t.Fatalf("via-aware assignment increased vias: %d -> %d", plain, sticky)
	}
	if sticky == plain {
		t.Log("via counts equal; sticky mode had no opportunity on this design")
	}
}

func TestNetPriorityOrdering(t *testing.T) {
	d, f, g, _ := routedFixture(t, "spm", 1.0)
	g.ResetUsage()
	opt := DefaultOptions()
	// Wrong-length priorities are rejected.
	opt.NetPriority = []float64{1, 2}
	if _, err := Route(d, f, g, opt); err == nil {
		t.Fatal("short priority slice accepted")
	}
	// Correct-length priorities route fine and produce a complete result.
	opt.NetPriority = make([]float64, len(d.Nets))
	for i := range opt.NetPriority {
		opt.NetPriority[i] = float64(len(d.Nets) - i) // reverse order
	}
	g.ResetUsage()
	res, err := Route(d, f, g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Routes) != len(d.Nets) {
		t.Fatal("priority routing lost nets")
	}
	for ti := range f.Trees {
		if len(res.Routes[ti].Edges) != len(f.Trees[ti].Edges) {
			t.Fatalf("net %d incomplete under priority ordering", ti)
		}
	}
}

func TestCommitUncommitConservation(t *testing.T) {
	// Property: committing any random rectilinear path and then
	// uncommitting it restores the grid exactly.
	g, err := grid.New(geom.BBox{XLo: 0, YLo: 0, XHi: 400, YHi: 400}, 8, []int{0, 4, 4, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	r := &router{g: g, opt: DefaultOptions()}
	f := func(ax, ay, bx, by uint8, seed int64) bool {
		a := GP{int(ax) % g.W, int(ay) % g.H}
		b := GP{int(bx) % g.W, int(by) % g.H}
		path := r.patternRoute(a, b)
		r.commit(path, +1)
		after := g.TotalOverflow() // just touch state
		_ = after
		r.commit(path, -1)
		// Every edge must be back to zero.
		for y := 0; y < g.H; y++ {
			for x := 0; x < g.W-1; x++ {
				if g.UsageH(x, y) != 0 {
					return false
				}
			}
		}
		for y := 0; y < g.H-1; y++ {
			for x := 0; x < g.W; x++ {
				if g.UsageV(x, y) != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPatternRouteLengthProperty(t *testing.T) {
	// Property: every pattern route is rectilinear, connected and at
	// least Manhattan-length; L routes are exactly Manhattan-length.
	g, err := grid.New(geom.BBox{XLo: 0, YLo: 0, XHi: 400, YHi: 400}, 8, []int{0, 4, 4, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	r := &router{g: g, opt: DefaultOptions()}
	f := func(ax, ay, bx, by uint8) bool {
		a := GP{int(ax) % g.W, int(ay) % g.H}
		b := GP{int(bx) % g.W, int(by) % g.H}
		path := r.patternRoute(a, b)
		if path[0] != a || path[len(path)-1] != b {
			return false
		}
		man := absInt(a.X-b.X) + absInt(a.Y-b.Y)
		steps := len(path) - 1
		// L and Z patterns are all monotone: exactly Manhattan length.
		return steps == man
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRouteValidation(t *testing.T) {
	d, f, g, _ := routedFixture(t, "spm", 1.0)
	g.ResetUsage()
	short := &rsmt.Forest{Trees: f.Trees[:1]}
	if _, err := Route(d, short, g, DefaultOptions()); err == nil {
		t.Fatal("mismatched forest accepted")
	}
	opt := DefaultOptions()
	opt.RRRRounds = -1
	if _, err := Route(d, f, g, opt); err == nil {
		t.Fatal("negative RRR rounds accepted")
	}
}
