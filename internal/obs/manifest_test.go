package obs

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"testing"
)

func TestManifestCollectFlagsSorted(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	fs.String("zeta", "z", "")
	fs.Int("alpha", 3, "")
	fs.Bool("mid", true, "")
	if err := fs.Parse([]string{"-alpha", "7"}); err != nil {
		t.Fatal(err)
	}
	m := NewManifest("test")
	m.CollectFlags(fs)
	if len(m.Flags) != 3 {
		t.Fatalf("collected %d flags, want 3", len(m.Flags))
	}
	if !sort.SliceIsSorted(m.Flags, func(i, j int) bool { return m.Flags[i].Name < m.Flags[j].Name }) {
		t.Fatalf("flags not sorted: %+v", m.Flags)
	}
	if m.Flags[0].Name != "alpha" || m.Flags[0].Value != "7" {
		t.Fatalf("parsed value not captured: %+v", m.Flags[0])
	}
	if m.GoVersion != runtime.Version() || m.OS != runtime.GOOS {
		t.Fatalf("runtime provenance missing: %+v", m)
	}
}

func TestManifestWriteNextTo(t *testing.T) {
	dir := t.TempDir()
	artifact := filepath.Join(dir, "results_table1.txt")
	m := NewManifest("experiments")
	m.Seed = 2023
	m.Workers = 4
	m.LibFingerprint = "abc123"
	if err := m.WriteNextTo(artifact); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(artifact + ".manifest.json")
	if err != nil {
		t.Fatal(err)
	}
	if raw[len(raw)-1] != '\n' {
		t.Fatal("manifest JSON lacks trailing newline")
	}
	var got Manifest
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if got.Tool != "experiments" || got.Seed != 2023 || got.Workers != 4 || got.LibFingerprint != "abc123" {
		t.Fatalf("round-trip mismatch: %+v", got)
	}
	// omitempty keeps absent provenance out of the record.
	if strings.Contains(string(raw), "model") {
		t.Fatalf("empty model hash serialized: %s", raw)
	}
}

func TestManifestEmitFirstEvent(t *testing.T) {
	var buf strings.Builder
	s := New(&buf)
	m := NewManifest("tsteiner")
	m.Seed = 7
	m.Emit(s)
	s.Event("later", KV{K: "x", V: 1})
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) < 2 {
		t.Fatalf("trace: %q", buf.String())
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first["ev"] != "manifest" || first["tool"] != "tsteiner" || first["seed"] != float64(7) {
		t.Fatalf("first event is not the manifest: %v", first)
	}
	// Emitting into a nil sink must be a no-op, not a panic.
	m.Emit(nil)
}
