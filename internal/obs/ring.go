package obs

// eventRing is a bounded ring of the most recent NDJSON trace lines. It
// backs the /trace endpoint: a live run can be inspected without tailing
// (or even having) a trace file. All access happens under Sink.mu.
type eventRing struct {
	buf   []string
	next  int
	total int64
}

func (r *eventRing) add(line string) {
	r.buf[r.next] = line
	r.next = (r.next + 1) % len(r.buf)
	r.total++
}

// last returns up to n of the most recent lines, oldest first.
func (r *eventRing) last(n int) []string {
	stored := len(r.buf)
	if r.total < int64(stored) {
		stored = int(r.total)
	}
	if n > stored {
		n = stored
	}
	if n <= 0 {
		return nil
	}
	out := make([]string, 0, n)
	start := (r.next - n + len(r.buf)) % len(r.buf)
	for i := 0; i < n; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	return out
}

// DefaultRingSize is the ring capacity Setup uses when -obs-listen
// enables the trace endpoint.
const DefaultRingSize = 4096

// EnableRing attaches a bounded in-memory buffer of the most recent n
// trace lines to the sink (idempotent; n<=0 uses DefaultRingSize). Events
// are rendered into the ring even when no -obs-out stream is configured,
// so /trace works on server-only runs.
func (s *Sink) EnableRing(n int) {
	if s == nil {
		return
	}
	if n <= 0 {
		n = DefaultRingSize
	}
	s.mu.Lock()
	if s.ring == nil {
		s.ring = &eventRing{buf: make([]string, n)}
	}
	s.mu.Unlock()
}

// RecentEvents returns up to n of the most recent NDJSON trace lines,
// oldest first. Nil when the ring is not enabled.
func (s *Sink) RecentEvents(n int) []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ring == nil {
		return nil
	}
	return s.ring.last(n)
}
