// Package export renders telemetry snapshots in the Prometheus text
// exposition format (version 0.0.4) and owns the fixed-log-bucket
// histogram scheme shared by the live sink, the exit summary and the
// offline trace analyzer (cmd/tracestat).
//
// The package is a leaf: it imports nothing from the repository, so
// internal/obs can depend on it (Sink.Snapshot returns *Snapshot) without
// a cycle, and cmd/tracestat can rebuild byte-compatible histograms from
// an NDJSON trace using the same buckets.
//
// Determinism contract: WriteText output is a pure function of the
// snapshot — every section and every series within a section is sorted by
// name, float formatting is strconv-exact, and bucket boundaries are
// compile-time constants. Two snapshots with equal values render to
// identical bytes, which is what the golden-file test pins.
package export

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// The bucket scheme: NumBuckets geometric buckets with upper bounds
// BucketBase·2^i. Bucket i counts samples v with upper(i-1) < v ≤
// upper(i); values ≤ BucketBase (including zero and negatives) land in
// bucket 0, and values above the last finite bound are counted only by
// Count (the implicit +Inf bucket). The range BucketBase·[2^0, 2^59]
// spans 1 µs to ~6.7 days when the unit is milliseconds, and 10^-3 to
// ~5.8·10^14 for dimensionless series (allocation counts, overflow),
// which covers every quantity the sink observes.
const (
	NumBuckets = 60
	BucketBase = 1e-3
)

// BucketUpper returns the inclusive upper bound of bucket i.
func BucketUpper(i int) float64 {
	return BucketBase * math.Pow(2, float64(i))
}

// BucketIndex returns the bucket for v, or -1 when v exceeds the last
// finite bound (such samples count only toward the +Inf bucket).
func BucketIndex(v float64) int {
	if !(v > BucketBase) { // NaN, zero, negatives and tiny values
		return 0
	}
	i := int(math.Ceil(math.Log2(v / BucketBase)))
	// Log rounding can land one bucket low at exact boundaries; correct
	// upward so the invariant v <= BucketUpper(i) holds.
	for i < NumBuckets && v > BucketUpper(i) {
		i++
	}
	if i >= NumBuckets {
		return -1
	}
	return i
}

// Hist is one fixed-log-bucket histogram. Buckets is allocated on first
// Observe and always has NumBuckets entries; Count may exceed the bucket
// total when samples overflowed the last finite bound.
type Hist struct {
	Name     string
	Count    int64
	Sum      float64
	Min, Max float64
	Buckets  []int64
}

// Observe adds one sample.
func (h *Hist) Observe(v float64) {
	if h.Count == 0 {
		h.Min, h.Max = v, v
	}
	h.Count++
	h.Sum += v
	if v < h.Min {
		h.Min = v
	}
	if v > h.Max {
		h.Max = v
	}
	if h.Buckets == nil {
		h.Buckets = make([]int64, NumBuckets)
	}
	if i := BucketIndex(v); i >= 0 {
		h.Buckets[i]++
	}
}

// Mean returns the arithmetic mean (0 for an empty histogram).
func (h *Hist) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Quantile estimates the q-quantile (q in [0,1]) from the buckets by
// linear interpolation inside the bucket holding the rank, clamped to the
// exact observed [Min, Max]. With one sample it returns that sample. The
// estimate is deterministic: it depends only on the bucket counts.
func (h *Hist) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min
	}
	if q >= 1 {
		return h.Max
	}
	rank := q * float64(h.Count)
	var cum float64
	for i, c := range h.Buckets {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank <= next {
			lo := 0.0
			if i > 0 {
				lo = BucketUpper(i - 1)
			}
			hi := BucketUpper(i)
			v := lo + (hi-lo)*(rank-cum)/float64(c)
			return math.Max(h.Min, math.Min(h.Max, v))
		}
		cum = next
	}
	// Rank beyond the finite buckets: overflow samples.
	return h.Max
}

// Counter, Gauge and Span are the remaining snapshot series, plain data
// so the package stays leaf.
type Counter struct {
	Name  string
	Value int64
}

type Gauge struct {
	Name  string
	Value float64
}

type Span struct {
	Name     string
	Count    int64
	TotalSec float64
	MaxSec   float64
}

// Snapshot is one consistent copy of a sink's aggregates, taken under the
// sink's lock. All slices are sorted by name.
type Snapshot struct {
	UptimeSec     float64
	Events        int64
	DroppedWrites int64
	Counters      []Counter
	Gauges        []Gauge
	Spans         []Span
	Hists         []Hist
}

// Sort orders every series slice by name; WriteText calls it, so callers
// constructing snapshots by hand need not.
func (s *Snapshot) Sort() {
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Spans, func(i, j int) bool { return s.Spans[i].Name < s.Spans[j].Name })
	sort.Slice(s.Hists, func(i, j int) bool { return s.Hists[i].Name < s.Hists[j].Name })
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func fnum(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteText renders the snapshot as a Prometheus text-format exposition.
// Series order is deterministic: fixed family order, names sorted within
// each family, buckets ascending with a trailing +Inf.
func WriteText(w io.Writer, s *Snapshot) error {
	var b strings.Builder
	family := func(name, help, typ string) {
		b.WriteString("# HELP ")
		b.WriteString(name)
		b.WriteByte(' ')
		b.WriteString(help)
		b.WriteString("\n# TYPE ")
		b.WriteString(name)
		b.WriteByte(' ')
		b.WriteString(typ)
		b.WriteByte('\n')
	}
	named := func(metric, name string, value string) {
		b.WriteString(metric)
		b.WriteString(`{name="`)
		b.WriteString(escapeLabel(name))
		b.WriteString(`"} `)
		b.WriteString(value)
		b.WriteByte('\n')
	}

	family("tsteiner_obs_uptime_seconds", "Seconds since the telemetry sink was created.", "gauge")
	fmt.Fprintf(&b, "tsteiner_obs_uptime_seconds %s\n", fnum(s.UptimeSec))
	family("tsteiner_obs_events_total", "Trace events recorded by the sink.", "counter")
	fmt.Fprintf(&b, "tsteiner_obs_events_total %d\n", s.Events)
	family("tsteiner_obs_dropped_trace_writes_total", "NDJSON trace lines lost to stream write errors.", "counter")
	fmt.Fprintf(&b, "tsteiner_obs_dropped_trace_writes_total %d\n", s.DroppedWrites)

	s.Sort()
	if len(s.Counters) > 0 {
		family("tsteiner_counter_total", "Monotonic sink counters, keyed by name.", "counter")
		for _, c := range s.Counters {
			named("tsteiner_counter_total", c.Name, strconv.FormatInt(c.Value, 10))
		}
	}
	if len(s.Gauges) > 0 {
		family("tsteiner_gauge", "Last-value sink gauges, keyed by name.", "gauge")
		for _, g := range s.Gauges {
			named("tsteiner_gauge", g.Name, fnum(g.Value))
		}
	}
	if len(s.Spans) > 0 {
		family("tsteiner_span_count", "Completed spans per name.", "counter")
		for _, sp := range s.Spans {
			named("tsteiner_span_count", sp.Name, strconv.FormatInt(sp.Count, 10))
		}
		family("tsteiner_span_seconds_total", "Cumulative span wall time per name.", "counter")
		for _, sp := range s.Spans {
			named("tsteiner_span_seconds_total", sp.Name, fnum(sp.TotalSec))
		}
		family("tsteiner_span_seconds_max", "Longest single span per name.", "gauge")
		for _, sp := range s.Spans {
			named("tsteiner_span_seconds_max", sp.Name, fnum(sp.MaxSec))
		}
	}
	if len(s.Hists) > 0 {
		family("tsteiner_hist", "Fixed-log-bucket sink histograms, keyed by name.", "histogram")
		for hi := range s.Hists {
			h := &s.Hists[hi]
			// Emit buckets cumulatively up to the one covering Max, then
			// +Inf; trailing empty buckets carry no information.
			last := BucketIndex(h.Max)
			if last < 0 {
				last = NumBuckets - 1
			}
			var cum int64
			for i := 0; i <= last && i < len(h.Buckets); i++ {
				cum += h.Buckets[i]
				fmt.Fprintf(&b, "tsteiner_hist_bucket{name=%q,le=%q} %d\n",
					escapeLabel(h.Name), fnum(BucketUpper(i)), cum)
			}
			fmt.Fprintf(&b, "tsteiner_hist_bucket{name=%q,le=\"+Inf\"} %d\n", escapeLabel(h.Name), h.Count)
			named("tsteiner_hist_sum", h.Name, fnum(h.Sum))
			named("tsteiner_hist_count", h.Name, strconv.FormatInt(h.Count, 10))
		}
		family("tsteiner_hist_min", "Smallest observed sample per histogram.", "gauge")
		for _, h := range s.Hists {
			named("tsteiner_hist_min", h.Name, fnum(h.Min))
		}
		family("tsteiner_hist_max", "Largest observed sample per histogram.", "gauge")
		for _, h := range s.Hists {
			named("tsteiner_hist_max", h.Name, fnum(h.Max))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// ValidateText parses a text exposition and returns the number of sample
// lines. It checks the line grammar (comments are HELP/TYPE, samples are
// name{labels} value), that every value parses as a float, and that
// histogram bucket series are cumulative. It is the assertion behind the
// verify.sh scrape gate and the /metrics tests.
func ValidateText(r io.Reader) (samples int, err error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	lastBucket := map[string]int64{} // histogram name → previous cumulative count
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			f := strings.Fields(line)
			if len(f) < 4 || (f[1] != "HELP" && f[1] != "TYPE") {
				return samples, fmt.Errorf("line %d: malformed comment %q", lineNo, line)
			}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			return samples, fmt.Errorf("line %d: no value separator in %q", lineNo, line)
		}
		series, value := line[:sp], line[sp+1:]
		v, perr := strconv.ParseFloat(value, 64)
		if perr != nil && value != "+Inf" && value != "-Inf" && value != "NaN" {
			return samples, fmt.Errorf("line %d: bad value %q", lineNo, value)
		}
		name := series
		if i := strings.IndexByte(series, '{'); i >= 0 {
			if !strings.HasSuffix(series, "}") {
				return samples, fmt.Errorf("line %d: unterminated label set in %q", lineNo, series)
			}
			name = series[:i]
		}
		if !validMetricName(name) {
			return samples, fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
		}
		if name == "tsteiner_hist_bucket" && perr == nil {
			key := bucketKey(series)
			if prev, ok := lastBucket[key]; ok && int64(v) < prev {
				return samples, fmt.Errorf("line %d: non-cumulative bucket series %q", lineNo, series)
			}
			lastBucket[key] = int64(v)
		}
		samples++
	}
	if err := sc.Err(); err != nil {
		return samples, err
	}
	if samples == 0 {
		return 0, fmt.Errorf("exposition contains no samples")
	}
	return samples, nil
}

// bucketKey extracts the name label from a bucket series so cumulativity
// is checked per histogram.
func bucketKey(series string) string {
	const tag = `name="`
	i := strings.Index(series, tag)
	if i < 0 {
		return series
	}
	rest := series[i+len(tag):]
	if j := strings.IndexByte(rest, '"'); j >= 0 {
		return rest[:j]
	}
	return series
}

func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}
