package export

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestBucketScheme pins the log-bucket invariants every consumer (live
// sink, exit summary, tracestat) relies on: values at or below the base
// land in bucket 0, each bucket's upper bound is inclusive, and samples
// beyond the last finite bound report -1 (the implicit +Inf bucket).
func TestBucketScheme(t *testing.T) {
	for _, v := range []float64{-5, 0, 1e-9, BucketBase} {
		if got := BucketIndex(v); got != 0 {
			t.Errorf("BucketIndex(%g) = %d, want 0", v, got)
		}
	}
	if got := BucketIndex(math.NaN()); got != 0 {
		t.Errorf("BucketIndex(NaN) = %d, want 0", got)
	}
	// Exact boundaries are inclusive: v == BucketUpper(i) must land in i.
	for i := 0; i < NumBuckets; i++ {
		v := BucketUpper(i)
		if got := BucketIndex(v); got != i {
			t.Errorf("BucketIndex(BucketUpper(%d)=%g) = %d, want %d", i, v, got, i)
		}
	}
	// Any in-range sample must satisfy upper(i-1) < v <= upper(i).
	for v := 2 * BucketBase; v < BucketUpper(NumBuckets-1); v *= 1.7 {
		i := BucketIndex(v)
		if i < 0 {
			t.Fatalf("BucketIndex(%g) overflowed inside the finite range", v)
		}
		if v > BucketUpper(i) {
			t.Errorf("v=%g above its bucket's bound: bucket %d upper %g", v, i, BucketUpper(i))
		}
		if i > 0 && v <= BucketUpper(i-1) {
			t.Errorf("v=%g belongs in a lower bucket than %d", v, i)
		}
	}
	if got := BucketIndex(BucketUpper(NumBuckets-1) * 1.01); got != -1 {
		t.Errorf("overflow sample: BucketIndex = %d, want -1", got)
	}
}

func TestHistQuantile(t *testing.T) {
	var empty Hist
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %g, want 0", got)
	}

	var one Hist
	one.Observe(42)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := one.Quantile(q); got != 42 {
			t.Errorf("single-sample Quantile(%g) = %g, want 42", q, got)
		}
	}

	var h Hist
	for v := 1.0; v <= 1000; v++ {
		h.Observe(v)
	}
	p50, p95, p99 := h.Quantile(0.5), h.Quantile(0.95), h.Quantile(0.99)
	if !(p50 <= p95 && p95 <= p99) {
		t.Errorf("quantiles not monotone: p50=%g p95=%g p99=%g", p50, p95, p99)
	}
	for q, got := range map[float64]float64{0.5: p50, 0.95: p95, 0.99: p99} {
		if got < h.Min || got > h.Max {
			t.Errorf("Quantile(%g) = %g outside [%g, %g]", q, got, h.Min, h.Max)
		}
	}
	// Log buckets are coarse, but the estimate must stay in the right
	// ballpark: p50 of uniform 1..1000 is 500, bucket width at that
	// magnitude is 2x.
	if p50 < 250 || p50 > 1000 {
		t.Errorf("p50 = %g wildly off for uniform 1..1000", p50)
	}

	var of Hist
	of.Observe(1)
	of.Observe(BucketUpper(NumBuckets-1) * 10) // counts only toward +Inf
	if of.Count != 2 {
		t.Fatalf("Count = %d, want 2", of.Count)
	}
	if got := of.Quantile(0.99); got != of.Max {
		t.Errorf("overflow quantile = %g, want Max %g", got, of.Max)
	}
}

// goldenSnapshot is a fixed snapshot covering every family, label
// escaping and bucket overflow — the input the golden file pins.
func goldenSnapshot() *Snapshot {
	h1 := Hist{Name: "core.iter_ms"}
	for _, v := range []float64{0.5, 1.25, 2.5, 40, 41, 1e15} {
		h1.Observe(v)
	}
	h2 := Hist{Name: `quo"te\slash`}
	h2.Observe(3.5)
	return &Snapshot{
		UptimeSec:     12.5,
		Events:        42,
		DroppedWrites: 3,
		Counters: []Counter{
			{Name: "par.tasks", Value: 128},
			{Name: "core.iterations", Value: 25},
		},
		Gauges: []Gauge{{Name: "train.loss", Value: 0.125}},
		Spans: []Span{
			{Name: "flow.signoff/gr", Count: 4, TotalSec: 1.5, MaxSec: 0.5},
			{Name: "flow.signoff", Count: 4, TotalSec: 2, MaxSec: 0.75},
		},
		Hists: []Hist{h1, h2},
	}
}

func TestWriteTextGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteText(&buf, goldenSnapshot()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "exposition.golden")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/obs/export -update` to record)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}

	// The golden exposition must itself pass the validator.
	n, err := ValidateText(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("golden exposition invalid: %v", err)
	}
	if n == 0 {
		t.Fatal("golden exposition has no samples")
	}
}

// TestWriteTextDeterministic: rendering is order-insensitive — a snapshot
// with shuffled series renders byte-identically, because WriteText sorts.
func TestWriteTextDeterministic(t *testing.T) {
	render := func(s *Snapshot) string {
		var b bytes.Buffer
		if err := WriteText(&b, s); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	a := render(goldenSnapshot())
	sh := goldenSnapshot()
	for i, j := 0, len(sh.Counters)-1; i < j; i, j = i+1, j-1 {
		sh.Counters[i], sh.Counters[j] = sh.Counters[j], sh.Counters[i]
	}
	for i, j := 0, len(sh.Hists)-1; i < j; i, j = i+1, j-1 {
		sh.Hists[i], sh.Hists[j] = sh.Hists[j], sh.Hists[i]
	}
	if b := render(sh); a != b {
		t.Fatal("shuffled snapshot rendered differently")
	}
}

func TestValidateTextRejects(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"comments only":  "# HELP x y\n# TYPE x counter\n",
		"garbage line":   "tsteiner_counter_total{name=\"a\"} 1\nnot a metric line\n",
		"bad value":      "tsteiner_gauge{name=\"a\"} twelve\n",
		"bad name":       "9leading_digit 1\n",
		"open label set": "tsteiner_gauge{name=\"a\" 1\n",
		"non-cumulative buckets": "tsteiner_hist_bucket{name=\"h\",le=\"1\"} 5\n" +
			"tsteiner_hist_bucket{name=\"h\",le=\"2\"} 3\n",
		"malformed comment": "# NOPE foo bar\n",
	}
	for name, in := range cases {
		if _, err := ValidateText(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ValidateText accepted %q", name, in)
		}
	}
	// Distinct histograms keep independent cumulative chains.
	ok := "tsteiner_hist_bucket{name=\"a\",le=\"1\"} 5\n" +
		"tsteiner_hist_bucket{name=\"b\",le=\"1\"} 2\n" +
		"tsteiner_hist_bucket{name=\"a\",le=\"+Inf\"} 5\n"
	if n, err := ValidateText(strings.NewReader(ok)); err != nil || n != 3 {
		t.Errorf("per-histogram chains: n=%d err=%v", n, err)
	}
}
