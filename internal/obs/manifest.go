package obs

// Run manifests: a provenance record describing exactly which
// configuration produced an artifact. Every artifact-writing command
// builds one after flag parsing, emits it as the first trace event, and
// writes it atomically next to each artifact (<artifact>.manifest.json),
// so a recorded number — a results table, a checkpoint, a benchmark
// baseline — is always attributable to its seeds, flags, toolchain and
// model.

import (
	"flag"
	"runtime"
	"sort"
	"strings"

	"tsteiner/internal/guard"
)

// FlagValue is one resolved command-line flag (post-parse value, default
// included), kept as an ordered slice so manifest JSON is deterministic.
type FlagValue struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// Manifest records the provenance of one run. Fields the producing
// command cannot know (ModelHash before training finishes) stay empty
// until set; WriteNextTo serializes whatever is known at write time.
type Manifest struct {
	Tool      string `json:"tool"`
	GoVersion string `json:"go_version"`
	OS        string `json:"os"`
	Arch      string `json:"arch"`
	// Seed/Workers/Lanes are the reproducibility-critical knobs, hoisted
	// out of Flags so consumers need not parse flag strings. Workers is
	// the resolved count (0 → GOMAXPROCS applied).
	Seed    int64 `json:"seed"`
	Workers int   `json:"workers"`
	Lanes   int   `json:"lanes"`
	// LibFingerprint/ModelHash pin the cell library and the evaluator
	// parameters the run used (lib.Fingerprint / gnn.Model.Hash).
	LibFingerprint string `json:"lib_fingerprint,omitempty"`
	ModelHash      string `json:"model_hash,omitempty"`
	// Flags is the full parsed flag set, sorted by name.
	Flags []FlagValue `json:"flags,omitempty"`
}

// NewManifest starts a manifest for the named tool with the build
// environment filled in.
func NewManifest(tool string) *Manifest {
	return &Manifest{
		Tool:      tool,
		GoVersion: runtime.Version(),
		OS:        runtime.GOOS,
		Arch:      runtime.GOARCH,
	}
}

// CollectFlags snapshots every flag of fs (parsed values, defaults
// included) sorted by name. Call after fs.Parse.
func (m *Manifest) CollectFlags(fs *flag.FlagSet) {
	m.Flags = m.Flags[:0]
	fs.VisitAll(func(f *flag.Flag) {
		m.Flags = append(m.Flags, FlagValue{Name: f.Name, Value: f.Value.String()})
	})
	sort.Slice(m.Flags, func(i, j int) bool { return m.Flags[i].Name < m.Flags[j].Name })
}

// Emit writes the manifest as one trace event. Commands call it directly
// after Setup, before any instrumented work, so it is the first event of
// the trace and shows up in the ring buffer and tracestat.
func (m *Manifest) Emit(s *Sink) {
	if s == nil {
		return
	}
	var fl strings.Builder
	for i, f := range m.Flags {
		if i > 0 {
			fl.WriteByte(' ')
		}
		fl.WriteString(f.Name)
		fl.WriteByte('=')
		fl.WriteString(f.Value)
	}
	s.Event("manifest",
		KV{K: "tool", V: m.Tool},
		KV{K: "go", V: m.GoVersion},
		KV{K: "os", V: m.OS}, KV{K: "arch", V: m.Arch},
		KV{K: "seed", V: m.Seed},
		KV{K: "workers", V: m.Workers}, KV{K: "lanes", V: m.Lanes},
		KV{K: "lib", V: m.LibFingerprint}, KV{K: "model", V: m.ModelHash},
		KV{K: "flags", V: fl.String()})
}

// WriteFile writes the manifest as indented JSON via guard's atomic
// write, so a crash mid-write never leaves a truncated manifest.
func (m *Manifest) WriteFile(path string) error {
	return guard.AtomicWriteJSON(path, m)
}

// WriteNextTo writes the manifest beside an artifact, at
// <artifact>.manifest.json.
func (m *Manifest) WriteNextTo(artifactPath string) error {
	return m.WriteFile(artifactPath + ".manifest.json")
}
