package obs

import (
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"tsteiner/internal/obs/export"
)

func get(t *testing.T, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func TestServeEndpoints(t *testing.T) {
	s := New(nil)
	s.EnableRing(16)
	s.Add("core.iterations", 3)
	s.Gauge("train.loss", 0.5)
	s.Observe("core.iter_ms", 1.5)
	s.Start("flow.signoff").End()
	for i := 0; i < 5; i++ {
		s.Event("tick", KV{K: "i", V: i})
	}

	sv, err := Serve("127.0.0.1:0", s)
	if err != nil {
		t.Fatal(err)
	}
	defer sv.Close()
	base := sv.URL()

	code, body, _ := get(t, base+"/healthz")
	if code != 200 || body != "ok\n" {
		t.Fatalf("/healthz: %d %q", code, body)
	}

	code, body, hdr := get(t, base+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics: HTTP %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	n, err := export.ValidateText(strings.NewReader(body))
	if err != nil {
		t.Fatalf("/metrics exposition invalid: %v\n%s", err, body)
	}
	for _, want := range []string{
		`tsteiner_counter_total{name="core.iterations"} 3`,
		`tsteiner_gauge{name="train.loss"} 0.5`,
		`tsteiner_span_count{name="flow.signoff"} 1`,
		`tsteiner_hist_count{name="core.iter_ms"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics (%d samples) lacks %q", n, want)
		}
	}

	code, body, hdr = get(t, base+"/trace?n=3")
	if code != 200 || hdr.Get("Content-Type") != "application/x-ndjson" {
		t.Fatalf("/trace: %d %q", code, hdr.Get("Content-Type"))
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	if len(lines) != 3 || !strings.Contains(lines[2], `"i":4`) {
		t.Fatalf("/trace?n=3 returned %d lines, newest %q", len(lines), lines[len(lines)-1])
	}

	if code, _, _ := get(t, base+"/trace?n=bogus"); code != 400 {
		t.Fatalf("/trace?n=bogus: HTTP %d, want 400", code)
	}
	if code, _, _ := get(t, base+"/trace?n=-1"); code != 400 {
		t.Fatalf("/trace?n=-1: HTTP %d, want 400", code)
	}
	if code, _, _ := get(t, base+"/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("/debug/pprof/cmdline: HTTP %d", code)
	}
}

// TestServeNilSink: a server over a nil sink still answers its probes
// with valid payloads.
func TestServeNilSink(t *testing.T) {
	sv, err := Serve("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sv.Close()
	code, body, _ := get(t, sv.URL()+"/healthz")
	if code != 200 || body != "ok\n" {
		t.Fatalf("/healthz: %d %q", code, body)
	}
	code, body, _ = get(t, sv.URL()+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics: HTTP %d", code)
	}
	if _, err := export.ValidateText(strings.NewReader(body)); err != nil {
		t.Fatalf("nil-sink exposition invalid: %v", err)
	}
	if code, _, _ := get(t, sv.URL()+"/trace"); code != 200 {
		t.Fatalf("/trace: HTTP %d", code)
	}
}

// TestConcurrentScrapes hammers /metrics and /trace from several
// goroutines while the sink is being written — the race detector is the
// assertion (verify.sh runs this package under -race).
func TestConcurrentScrapes(t *testing.T) {
	s := New(io.Discard)
	s.EnableRing(64)
	sv, err := Serve("127.0.0.1:0", s)
	if err != nil {
		t.Fatal(err)
	}
	defer sv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(sv.URL() + "/metrics")
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
				resp, err = http.Get(sv.URL() + "/trace?n=10")
				if err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
	}
	deadline := time.Now().Add(300 * time.Millisecond)
	for i := 0; time.Now().Before(deadline); i++ {
		sp := s.Start("work")
		s.Add("ops", 1)
		s.Observe("v", float64(i))
		s.Event("tick", KV{K: "i", V: i})
		sp.End()
	}
	close(stop)
	wg.Wait()
	if s.Snapshot().Events == 0 {
		t.Fatal("no events recorded during scrape storm")
	}
}

// TestConcurrentScrapesDuringShutdown closes the server while scrapers
// are mid-flight and the sink is still being written: shutdown must be
// race-free (the detector is the assertion), in-flight scrapes must
// finish or fail with a connection error — never a hang — and the
// listener must actually be gone afterwards.
func TestConcurrentScrapesDuringShutdown(t *testing.T) {
	s := New(io.Discard)
	s.EnableRing(64)
	sv, err := Serve("127.0.0.1:0", s)
	if err != nil {
		t.Fatal(err)
	}
	url := sv.URL()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Errors are expected once the listener closes; the
				// scraper just keeps hammering until told to stop.
				if resp, err := http.Get(url + "/metrics"); err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}()
	}
	// Writers keep mutating the sink across the shutdown boundary.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			s.Add("shutdown.ops", 1)
			s.Event("tick", KV{K: "i", V: i})
		}
	}()

	time.Sleep(50 * time.Millisecond) // let the storm ramp up
	if err := sv.Close(); err != nil {
		t.Fatalf("close during scrape storm: %v", err)
	}
	close(stop)
	wg.Wait()

	if _, err := http.Get(url + "/metrics"); err == nil {
		t.Fatal("listener still answering after Close")
	}
}
