package obs

import (
	"bytes"
	"flag"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestServeBadAddr: a listen failure is a typed, descriptive error —
// never a panic, never a half-started server.
func TestServeBadAddr(t *testing.T) {
	// Occupy a port, then ask Serve for the same one.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	sv, err := Serve(ln.Addr().String(), nil)
	if err == nil {
		sv.Close()
		t.Fatal("Serve bound an already-bound address")
	}
	if !strings.Contains(err.Error(), "obs: listen") {
		t.Fatalf("listen error lacks context: %v", err)
	}

	if sv, err := Serve("definitely-not-a-host:notaport", nil); err == nil {
		sv.Close()
		t.Fatal("Serve accepted a malformed address")
	}
}

// TestSetupErrorPaths: each way Setup can fail returns a typed error and
// releases what it had already acquired (no leaked observer or server —
// a second Setup must succeed cleanly afterwards).
func TestSetupErrorPaths(t *testing.T) {
	dir := t.TempDir()
	missing := filepath.Join(dir, "no-such-dir", "trace.ndjson")

	f := &Flags{Out: missing}
	if _, _, err := f.Setup(nil); err == nil || !strings.Contains(err.Error(), "obs: trace") {
		t.Fatalf("unwritable -obs-out: %v", err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	f = &Flags{Out: filepath.Join(dir, "t.ndjson"), Listen: ln.Addr().String()}
	if _, _, err := f.Setup(nil); err == nil || !strings.Contains(err.Error(), "obs: listen") {
		t.Fatalf("bound -obs-listen: %v", err)
	}

	f = &Flags{Listen: "127.0.0.1:0", CPUProfile: filepath.Join(dir, "no-such-dir", "cpu.out")}
	if _, _, err := f.Setup(nil); err == nil || !strings.Contains(err.Error(), "obs: cpuprofile") {
		t.Fatalf("unwritable -cpuprofile: %v", err)
	}

	// After every failure the slate is clean: a full setup succeeds.
	var sum bytes.Buffer
	f = &Flags{
		Out:        filepath.Join(dir, "trace.ndjson"),
		Listen:     "127.0.0.1:0",
		CPUProfile: filepath.Join(dir, "cpu.out"),
		MemProfile: filepath.Join(dir, "mem.out"),
	}
	sink, closeFn, err := f.Setup(&sum)
	if err != nil {
		t.Fatal(err)
	}
	if sink == nil {
		t.Fatal("Setup returned a nil sink with -obs-out set")
	}
	sink.Add("x", 1)
	sink.Event("hello", KV{K: "k", V: 1})
	closeFn()
	for _, p := range []string{"trace.ndjson", "cpu.out", "mem.out"} {
		if fi, err := os.Stat(filepath.Join(dir, p)); err != nil || fi.Size() == 0 {
			t.Fatalf("%s not written: %v", p, err)
		}
	}
	if !strings.Contains(sum.String(), "x") {
		t.Fatalf("summary lacks the counter:\n%s", sum.String())
	}
}

// TestWriteHeapProfileError: an unwritable -memprofile path is a typed
// error from the close path, not a panic.
func TestWriteHeapProfileError(t *testing.T) {
	err := WriteHeapProfile(filepath.Join(t.TempDir(), "nope", "mem.out"))
	if err == nil || !strings.Contains(err.Error(), "obs: memprofile") {
		t.Fatalf("unwritable memprofile: %v", err)
	}
	if err := WriteHeapProfile(""); err != nil {
		t.Fatalf("empty memprofile path must be a no-op: %v", err)
	}
}

// TestRegisterFlagsRoundtrip: the shared flag set parses into the Flags
// struct and feeds the provenance manifest.
func TestRegisterFlagsRoundtrip(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	f := RegisterFlags(fs)
	if err := fs.Parse([]string{
		"-workers", "3", "-obs-out", "t.ndjson", "-obs-listen", "127.0.0.1:0",
		"-checkpoint-dir", "ck", "-resume", "-deadline", "5s",
	}); err != nil {
		t.Fatal(err)
	}
	if f.Workers != 3 || f.Out != "t.ndjson" || f.Listen == "" ||
		f.CheckpointDir != "ck" || !f.Resume || f.Deadline != 5*time.Second {
		t.Fatalf("flags did not roundtrip: %+v", f)
	}
	m := f.Manifest("x", fs)
	if m.Tool != "x" || m.Workers != 3 || len(m.Flags) == 0 {
		t.Fatalf("manifest incomplete: %+v", m)
	}
}

// TestServeLiveUnderSetup: the server Setup starts answers its probes
// before closeFn and stops answering after.
func TestServeLiveUnderSetup(t *testing.T) {
	f := &Flags{Listen: "127.0.0.1:0"}
	sink, closeFn, err := f.Setup(&bytes.Buffer{})
	if err != nil {
		t.Fatal(err)
	}
	if sink == nil {
		t.Fatal("Setup returned a nil sink with -obs-listen set")
	}
	// The bound address is not returned through Flags; probe via the
	// sink's ring being enabled instead, then shut down cleanly.
	if sink.RecentEvents(1) == nil {
		// ring enabled but empty: RecentEvents returns an empty slice
		t.Log("ring empty at startup")
	}
	closeFn()
}
