package obs

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// TestSpanDoubleEnd: the second End is a no-op that reports the duration
// the first one recorded — one aggregate entry, one span_end trace line.
func TestSpanDoubleEnd(t *testing.T) {
	var buf strings.Builder
	s := New(&buf)
	sp := s.Start("phase")
	d1 := sp.End()
	time.Sleep(time.Millisecond)
	d2 := sp.End()
	if d1 != d2 {
		t.Fatalf("second End returned %v, want the first duration %v", d2, d1)
	}
	snap := s.Snapshot()
	if len(snap.Spans) != 1 || snap.Spans[0].Count != 1 {
		t.Fatalf("double End leaked into aggregates: %+v", snap.Spans)
	}
	if n := strings.Count(buf.String(), `"ev":"span_end"`); n != 1 {
		t.Fatalf("trace has %d span_end lines, want 1:\n%s", n, buf.String())
	}
	var nilSpan *Span
	if d := nilSpan.End(); d != 0 {
		t.Fatalf("nil span End = %v, want 0", d)
	}
}

type failWriter struct{ fails int }

func (w *failWriter) Write(p []byte) (int, error) {
	w.fails++
	return 0, errors.New("disk full")
}

// TestDroppedWrites: a failing trace stream must not lose aggregates or
// crash the run — the loss is counted and surfaced in the summary.
func TestDroppedWrites(t *testing.T) {
	fw := &failWriter{}
	s := New(fw)
	s.Event("a", KV{K: "x", V: 1})
	s.Start("p").End()
	if got := s.DroppedWrites(); got != 3 { // event + span_start + span_end
		t.Fatalf("DroppedWrites = %d, want 3", got)
	}
	snap := s.Snapshot()
	if snap.DroppedWrites != 3 || snap.Events != 3 {
		t.Fatalf("snapshot dropped=%d events=%d, want 3/3", snap.DroppedWrites, snap.Events)
	}
	if len(snap.Spans) != 1 {
		t.Fatal("span aggregate lost alongside the stream write")
	}
	var sum strings.Builder
	if err := s.WriteSummary(&sum); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sum.String(), "WARNING: 3 trace events were dropped") {
		t.Fatalf("summary does not surface dropped writes:\n%s", sum.String())
	}
}

func TestEventRing(t *testing.T) {
	s := New(nil)
	if got := s.RecentEvents(10); got != nil {
		t.Fatalf("ring disabled but RecentEvents = %v", got)
	}
	s.EnableRing(4)
	s.EnableRing(99) // idempotent: capacity stays 4
	for i := 0; i < 10; i++ {
		s.Event("tick", KV{K: "i", V: i})
	}
	all := s.RecentEvents(100)
	if len(all) != 4 {
		t.Fatalf("ring holds %d events, want capacity 4", len(all))
	}
	// Oldest first: ticks 6..9 survive.
	for i, line := range all {
		if !strings.Contains(line, `"i":`+string(rune('6'+i))) {
			t.Fatalf("ring order wrong at %d: %q", i, line)
		}
	}
	last2 := s.RecentEvents(2)
	if len(last2) != 2 || !strings.Contains(last2[1], `"i":9`) {
		t.Fatalf("RecentEvents(2) = %v", last2)
	}
	if got := s.RecentEvents(0); got != nil {
		t.Fatalf("RecentEvents(0) = %v, want nil", got)
	}

	var nilSink *Sink
	nilSink.EnableRing(8)
	if got := nilSink.RecentEvents(5); got != nil {
		t.Fatalf("nil sink RecentEvents = %v", got)
	}
}

// TestSnapshotIsolated: a snapshot is a deep copy — mutating its bucket
// slices must not corrupt the live histograms.
func TestSnapshotIsolated(t *testing.T) {
	s := New(nil)
	s.Observe("h", 1.0)
	snap := s.Snapshot()
	if len(snap.Hists) != 1 || snap.Hists[0].Count != 1 {
		t.Fatalf("snapshot hists: %+v", snap.Hists)
	}
	for i := range snap.Hists[0].Buckets {
		snap.Hists[0].Buckets[i] = 999
	}
	s.Observe("h", 1.0)
	if got := s.Snapshot().Hists[0]; got.Count != 2 {
		t.Fatalf("live histogram corrupted by snapshot mutation: %+v", got)
	}
	var total int64
	for _, c := range s.Snapshot().Hists[0].Buckets {
		total += c
	}
	if total != 2 {
		t.Fatalf("bucket total = %d, want 2", total)
	}
}
