package obs

// The live observability surface: a stdlib net/http handler bundle over a
// *Sink. Everything served here is read-only telemetry — handlers take
// snapshots under the sink lock and never write back, so serving cannot
// change algorithmic output (the exp server-on/off byte-identity gate
// holds this).

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"tsteiner/internal/obs/export"
)

// Handler returns the observability mux for a sink:
//
//	/metrics        Prometheus text exposition of all aggregates
//	/healthz        liveness probe ("ok")
//	/trace?n=K      the most recent K NDJSON trace events (ring buffer)
//	/debug/pprof/*  the standard runtime profiles
//
// The sink may be nil; the endpoints then serve empty-but-valid payloads,
// so a misconfigured server still answers its probes.
func Handler(s *Sink) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := export.WriteText(w, s.Snapshot()); err != nil {
			// The snapshot is already rendered in memory; an error here
			// means the client went away — nothing to do.
			return
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		n := 100
		if q := r.URL.Query().Get("n"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v < 0 {
				http.Error(w, "trace: n must be a non-negative integer", http.StatusBadRequest)
				return
			}
			n = v
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		for _, line := range s.RecentEvents(n) {
			io.WriteString(w, line)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a live observability endpoint bound to a TCP address. Close
// shuts it down gracefully (in-flight scrapes finish, bounded by
// shutdownGrace).
type Server struct {
	srv  *http.Server
	ln   net.Listener
	done chan error
}

const shutdownGrace = 2 * time.Second

// Serve binds addr (host:port; port 0 picks a free one) and serves the
// Handler bundle in a background goroutine until Close.
func Serve(addr string, s *Sink) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: Handler(s)}
	sv := &Server{srv: srv, ln: ln, done: make(chan error, 1)}
	go func() {
		err := srv.Serve(ln)
		if err == http.ErrServerClosed {
			err = nil
		}
		sv.done <- err
	}()
	return sv, nil
}

// Addr returns the bound address (useful with ":0").
func (sv *Server) Addr() string { return sv.ln.Addr().String() }

// URL returns the server's http base URL.
func (sv *Server) URL() string { return "http://" + sv.Addr() }

// Close gracefully shuts the server down: the listener stops accepting,
// in-flight requests get shutdownGrace to complete, stragglers are cut.
func (sv *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	if err := sv.srv.Shutdown(ctx); err != nil {
		sv.srv.Close()
	}
	return <-sv.done
}
