// Package obs is the repository's deterministic telemetry layer: spans,
// counters, gauges and histograms that observe the flow without touching
// it. Every instrumented call site holds a *Sink that may be nil — the nil
// sink is the default "NopSink" and makes every method a no-op behind a
// single nil check, so hot paths pay nothing when telemetry is off.
//
// Determinism contract — telemetry is a side channel only:
//
//  1. No algorithmic output may ever read a value back out of a sink.
//     Wall-clock durations exist only in the emitted trace and the exit
//     summary; the flow, the refiner and the trainer produce byte-identical
//     results with telemetry enabled or disabled, at any worker count
//     (exp.TestObsDisabledByteIdentical is the gate).
//  2. All collectors are race-clean: spans/counters are guarded by one
//     mutex, per-worker busy accounting in internal/par is index-separated,
//     and the sink may be shared by concurrent goroutines.
//
// A sink aggregates in memory (for the exit summary) and, when constructed
// with a writer, additionally streams every event as one NDJSON line:
//
//	{"t":12.345,"ev":"span_end","span":3,"name":"flow.signoff/gr","dur_ms":41.2}
//
// Field order within a line is fixed by the call site, so a trace is
// structurally reproducible even though its timing values are not.
package obs

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"tsteiner/internal/obs/export"
)

// KV is one ordered key/value pair of a trace event. Values may be
// string, bool, int, int64, float64 or fmt.Stringer.
type KV struct {
	K string
	V any
}

// Sink collects telemetry. The zero value is unusable; construct with New.
// A nil *Sink is the no-op sink: every method returns immediately.
type Sink struct {
	mu    sync.Mutex
	w     io.Writer // NDJSON stream; nil = aggregate only
	ring  *eventRing
	epoch time.Time
	seq   int64 // span id allocator

	counters map[string]int64
	gauges   map[string]float64
	hists    map[string]*export.Hist
	spans    map[string]*spanAgg
	events   int64
	// droppedWrites counts NDJSON lines the stream writer refused
	// (io.WriteString error). The events still reach the aggregates and
	// the ring; the count is surfaced by WriteSummary and /metrics so a
	// silently failing trace file is visible.
	droppedWrites int64
}

type spanAgg struct {
	count int64
	total time.Duration
	max   time.Duration
}

// New returns a live sink. w receives the NDJSON event stream and may be
// nil to aggregate for the summary only.
func New(w io.Writer) *Sink {
	return &Sink{
		w:        w,
		epoch:    time.Now(),
		counters: map[string]int64{},
		gauges:   map[string]float64{},
		hists:    map[string]*export.Hist{},
		spans:    map[string]*spanAgg{},
	}
}

// Enabled reports whether the sink records anything (false for nil).
func (s *Sink) Enabled() bool { return s != nil }

// Mallocs returns the process's cumulative heap-allocation count
// (runtime.MemStats.Mallocs), or 0 for a disabled sink — deltas around a
// phase give its allocation cost. Like every sink reading it is telemetry
// only, and the ReadMemStats stop-the-world cost is paid only when a sink
// is attached.
func (s *Sink) Mallocs() uint64 {
	if s == nil {
		return 0
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs
}

// Span is one timed region. A nil *Span (from a nil sink) is inert.
type Span struct {
	sink *Sink
	name string
	id   int64
	t0   time.Time
	// ended/dur guard against double-End (both mutated under sink.mu):
	// the second and every later End is a no-op returning the duration
	// the first one recorded.
	ended bool
	dur   time.Duration
}

// Start opens a root span. The returned span must be closed with End;
// nested regions hang off it via Child, which joins names with '/' so the
// summary groups a phase under its parent ("flow.signoff/gr").
func (s *Sink) Start(name string) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	s.seq++
	id := s.seq
	s.emitLocked("span_start", []KV{{"span", id}, {"name", name}})
	s.mu.Unlock()
	return &Span{sink: s, name: name, id: id, t0: time.Now()}
}

// Child opens a sub-span named parent/name.
func (sp *Span) Child(name string) *Span {
	if sp == nil {
		return nil
	}
	return sp.sink.Start(sp.name + "/" + name)
}

// End closes the span, records its monotonic duration and returns it.
// Ending a span twice is safe: later calls record nothing and return the
// duration captured by the first End.
func (sp *Span) End() time.Duration {
	if sp == nil {
		return 0
	}
	d := time.Since(sp.t0)
	s := sp.sink
	s.mu.Lock()
	if sp.ended {
		d = sp.dur
		s.mu.Unlock()
		return d
	}
	sp.ended = true
	sp.dur = d
	ag := s.spans[sp.name]
	if ag == nil {
		ag = &spanAgg{}
		s.spans[sp.name] = ag
	}
	ag.count++
	ag.total += d
	if d > ag.max {
		ag.max = d
	}
	s.emitLocked("span_end", []KV{
		{"span", sp.id}, {"name", sp.name}, {"dur_ms", ms(d)},
	})
	s.mu.Unlock()
	return d
}

// Add increments a monotonic counter.
func (s *Sink) Add(name string, delta int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.counters[name] += delta
	s.mu.Unlock()
}

// Gauge records the latest value of a named quantity.
func (s *Sink) Gauge(name string, v float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.gauges[name] = v
	s.mu.Unlock()
}

// Observe adds one sample to a named histogram (count/mean/min/max).
func (s *Sink) Observe(name string, v float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.observeLocked(name, v)
	s.mu.Unlock()
}

func (s *Sink) observeLocked(name string, v float64) {
	h := s.hists[name]
	if h == nil {
		h = &export.Hist{Name: name}
		s.hists[name] = h
	}
	h.Observe(v)
}

// Event emits one structured NDJSON line with the given ordered fields.
func (s *Sink) Event(ev string, kv ...KV) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.emitLocked(ev, kv)
	s.mu.Unlock()
}

// ObservePool implements internal/par's PoolObserver: one callback per
// completed parallel section with per-worker busy time. Utilization is
// Σbusy / (workers · wall) — 1.0 means every worker was busy for the whole
// section.
func (s *Sink) ObservePool(workers, tasks int, busy []time.Duration, wall time.Duration) {
	if s == nil {
		return
	}
	var sum time.Duration
	for _, b := range busy {
		sum += b
	}
	util := 0.0
	if wall > 0 && workers > 0 {
		util = float64(sum) / (float64(workers) * float64(wall))
	}
	s.mu.Lock()
	s.counters["par.pools"]++
	s.counters["par.tasks"] += int64(tasks)
	s.observeLocked("par.pool_tasks", float64(tasks))
	s.observeLocked("par.pool_workers", float64(workers))
	s.observeLocked("par.pool_util", util)
	for _, b := range busy {
		s.observeLocked("par.worker_busy_ms", ms(b))
	}
	s.emitLocked("par.pool", []KV{
		{"workers", workers}, {"tasks", tasks},
		{"busy_ms", ms(sum)}, {"wall_ms", ms(wall)}, {"util", util},
	})
	s.mu.Unlock()
}

// emitLocked writes one NDJSON line to the stream and the ring buffer;
// the caller holds s.mu. A stream write error does not abort the run —
// the line is counted as dropped and the count surfaces in the exit
// summary and on /metrics.
func (s *Sink) emitLocked(ev string, kv []KV) {
	s.events++
	if s.w == nil && s.ring == nil {
		return
	}
	var b strings.Builder
	b.WriteString(`{"t":`)
	b.WriteString(strconv.FormatFloat(ms(time.Since(s.epoch)), 'f', 3, 64))
	b.WriteString(`,"ev":`)
	b.WriteString(strconv.Quote(ev))
	for _, f := range kv {
		b.WriteByte(',')
		b.WriteString(strconv.Quote(f.K))
		b.WriteByte(':')
		writeJSONValue(&b, f.V)
	}
	b.WriteString("}\n")
	line := b.String()
	if s.ring != nil {
		s.ring.add(line)
	}
	if s.w != nil {
		if _, err := io.WriteString(s.w, line); err != nil {
			s.droppedWrites++
		}
	}
}

// DroppedWrites reports how many trace lines were lost to stream write
// errors (0 for a disabled sink).
func (s *Sink) DroppedWrites() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.droppedWrites
}

// Snapshot copies every aggregate under the lock into a sorted
// export.Snapshot — the input of the Prometheus exposition, taken
// consistently while concurrent instrumentation continues.
func (s *Sink) Snapshot() *export.Snapshot {
	if s == nil {
		return &export.Snapshot{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := &export.Snapshot{
		UptimeSec:     time.Since(s.epoch).Seconds(),
		Events:        s.events,
		DroppedWrites: s.droppedWrites,
		Counters:      make([]export.Counter, 0, len(s.counters)),
		Gauges:        make([]export.Gauge, 0, len(s.gauges)),
		Spans:         make([]export.Span, 0, len(s.spans)),
		Hists:         make([]export.Hist, 0, len(s.hists)),
	}
	for name, v := range s.counters {
		snap.Counters = append(snap.Counters, export.Counter{Name: name, Value: v})
	}
	for name, v := range s.gauges {
		snap.Gauges = append(snap.Gauges, export.Gauge{Name: name, Value: v})
	}
	for name, ag := range s.spans {
		snap.Spans = append(snap.Spans, export.Span{
			Name: name, Count: ag.count,
			TotalSec: ag.total.Seconds(), MaxSec: ag.max.Seconds(),
		})
	}
	for _, h := range s.hists {
		hc := *h
		hc.Buckets = append([]int64(nil), h.Buckets...)
		snap.Hists = append(snap.Hists, hc)
	}
	snap.Sort()
	return snap
}

func writeJSONValue(b *strings.Builder, v any) {
	switch x := v.(type) {
	case string:
		b.WriteString(strconv.Quote(x))
	case bool:
		b.WriteString(strconv.FormatBool(x))
	case int:
		b.WriteString(strconv.Itoa(x))
	case int64:
		b.WriteString(strconv.FormatInt(x, 10))
	case float64:
		if x != x || x > 1e308 || x < -1e308 { // NaN/±Inf are not JSON
			b.WriteString(strconv.Quote(strconv.FormatFloat(x, 'g', -1, 64)))
			return
		}
		b.WriteString(strconv.FormatFloat(x, 'g', -1, 64))
	case fmt.Stringer:
		b.WriteString(strconv.Quote(x.String()))
	default:
		b.WriteString(strconv.Quote(fmt.Sprint(x)))
	}
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// WriteSummary renders the human-readable exit summary: aggregated spans,
// counters, gauges and histograms, each section sorted by name.
func (s *Sink) WriteSummary(w io.Writer) error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var b strings.Builder
	fmt.Fprintf(&b, "telemetry summary (%d events)\n", s.events)

	if len(s.spans) > 0 {
		b.WriteString("\nspans\n")
		rows := make([][]string, 0, len(s.spans))
		for name, ag := range s.spans {
			rows = append(rows, []string{
				name, strconv.FormatInt(ag.count, 10),
				fmt.Sprintf("%.3f", ag.total.Seconds()),
				fmt.Sprintf("%.3f", ag.max.Seconds()),
			})
		}
		writeAligned(&b, []string{"name", "count", "total_s", "max_s"}, rows)
	}
	if len(s.counters) > 0 {
		b.WriteString("\ncounters\n")
		rows := make([][]string, 0, len(s.counters))
		for name, v := range s.counters {
			rows = append(rows, []string{name, strconv.FormatInt(v, 10)})
		}
		writeAligned(&b, []string{"name", "value"}, rows)
	}
	if len(s.gauges) > 0 {
		b.WriteString("\ngauges\n")
		rows := make([][]string, 0, len(s.gauges))
		for name, v := range s.gauges {
			rows = append(rows, []string{name, fmt.Sprintf("%g", v)})
		}
		writeAligned(&b, []string{"name", "value"}, rows)
	}
	if len(s.hists) > 0 {
		b.WriteString("\nhistograms\n")
		rows := make([][]string, 0, len(s.hists))
		for name, h := range s.hists {
			rows = append(rows, []string{
				name, strconv.FormatInt(h.Count, 10),
				fmt.Sprintf("%.4g", h.Mean()), fmt.Sprintf("%.4g", h.Min),
				fmt.Sprintf("%.4g", h.Quantile(0.5)), fmt.Sprintf("%.4g", h.Quantile(0.95)),
				fmt.Sprintf("%.4g", h.Quantile(0.99)), fmt.Sprintf("%.4g", h.Max),
			})
		}
		writeAligned(&b, []string{"name", "count", "mean", "min", "p50", "p95", "p99", "max"}, rows)
	}
	if s.droppedWrites > 0 {
		fmt.Fprintf(&b, "\nWARNING: %d trace events were dropped (stream write errors)\n", s.droppedWrites)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeAligned renders rows (sorted by first column) under a header with
// two-space column alignment — the same visual shape as internal/report,
// reimplemented here so obs stays dependency-free.
func writeAligned(b *strings.Builder, header []string, rows [][]string) {
	sort.Slice(rows, func(i, j int) bool { return rows[i][0] < rows[j][0] })
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	line(header)
	for _, r := range rows {
		line(r)
	}
}
