package obs

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"tsteiner/internal/par"
)

// Flags holds the observability/robustness/parallelism flags shared by
// every command, registered once through RegisterFlags instead of being
// copy-pasted into each main. The robustness fields are plain values (a
// directory, a bool, a duration): each main builds its own guard.Budget
// from Deadline so obs stays a leaf dependency.
type Flags struct {
	Workers    int
	Out        string
	CPUProfile string
	MemProfile string

	// Listen is the -obs-listen address: when non-empty, Setup starts a
	// live observability server (/metrics, /healthz, /trace, pprof) for
	// the duration of the run. It implies a sink (aggregate-only when
	// -obs-out is unset) with the trace ring buffer enabled.
	Listen string

	// CheckpointDir/Resume/Deadline are the fault-tolerance knobs: where
	// to write CRC-checksummed train/refine checkpoints, whether to resume
	// from them, and the process-wide wall-clock budget (0 = unlimited).
	CheckpointDir string
	Resume        bool
	Deadline      time.Duration
}

// RegisterFlags defines -workers, -obs-out, -cpuprofile, -memprofile,
// -checkpoint-dir, -resume and -deadline on fs (use flag.CommandLine in a
// main). Workers defaults to 0 = all CPUs, which par.Workers resolves
// exactly like the historical GOMAXPROCS default.
func RegisterFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.IntVar(&f.Workers, "workers", 0,
		"parallel workers (0 = all CPUs, 1 = serial; results are byte-identical at any value)")
	fs.StringVar(&f.Out, "obs-out", "",
		"write an NDJSON telemetry trace to this path and print a summary at exit")
	fs.StringVar(&f.Listen, "obs-listen", "",
		"serve /metrics, /healthz, /trace and /debug/pprof on this host:port while the run is live (port 0 picks one)")
	fs.StringVar(&f.CPUProfile, "cpuprofile", "", "write a CPU profile to this path")
	fs.StringVar(&f.MemProfile, "memprofile", "", "write a heap profile to this path at exit")
	fs.StringVar(&f.CheckpointDir, "checkpoint-dir", "",
		"write atomic CRC-checksummed training/refinement checkpoints into this directory")
	fs.BoolVar(&f.Resume, "resume", false,
		"resume from checkpoints in -checkpoint-dir; the resumed run is byte-identical to an uninterrupted one")
	fs.DurationVar(&f.Deadline, "deadline", 0,
		"wall-clock budget (0 = unlimited): refinement stops with its best solution so far, flow phases fail cleanly")
	return f
}

// Setup activates everything the parsed flags request: it opens the trace
// sink (nil when neither -obs-out nor -obs-listen is set — the no-op
// default), registers it as the par worker-utilization observer, starts
// the live observability server when -obs-listen is set (ring buffer
// enabled, bound address logged to stderr), and starts the CPU profile.
// The returned close function shuts the server down gracefully, stops
// profiling, writes the heap profile, unregisters the observer, prints
// the telemetry summary to summaryTo (stderr when nil) and closes the
// trace file; call it exactly once, at exit.
func (f *Flags) Setup(summaryTo io.Writer) (*Sink, func(), error) {
	if summaryTo == nil {
		summaryTo = os.Stderr
	}
	var (
		sink     *Sink
		traceOut *os.File
		server   *Server
	)
	if f.Out != "" {
		var err error
		traceOut, err = os.Create(f.Out)
		if err != nil {
			return nil, nil, fmt.Errorf("obs: trace: %w", err)
		}
		sink = New(traceOut)
	} else if f.Listen != "" {
		sink = New(nil) // aggregate-only: /metrics and /trace still work
	}
	if sink != nil {
		par.SetObserver(sink)
	}
	if f.Listen != "" {
		sink.EnableRing(DefaultRingSize)
		var err error
		server, err = Serve(f.Listen, sink)
		if err != nil {
			par.SetObserver(nil)
			if traceOut != nil {
				traceOut.Close()
			}
			return nil, nil, err
		}
		fmt.Fprintf(os.Stderr, "obs: serving /metrics, /healthz, /trace and /debug/pprof on http://%s\n", server.Addr())
	}
	stopCPU, err := StartCPUProfile(f.CPUProfile)
	if err != nil {
		if server != nil {
			server.Close()
		}
		if sink != nil {
			par.SetObserver(nil)
		}
		if traceOut != nil {
			traceOut.Close()
		}
		return nil, nil, err
	}
	closeFn := func() {
		stopCPU()
		if err := WriteHeapProfile(f.MemProfile); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
		if server != nil {
			if err := server.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "obs: server shutdown:", err)
			}
		}
		if sink != nil {
			par.SetObserver(nil)
			if err := sink.WriteSummary(summaryTo); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}
		if traceOut != nil {
			traceOut.Close()
		}
	}
	return sink, closeFn, nil
}

// Manifest builds the provenance record for a command using these shared
// flags: the tool name, build environment, the resolved worker count and
// the full parsed flag set. Call after fs.Parse; the command fills in
// Seed/Lanes and the library/model hashes it knows.
func (f *Flags) Manifest(tool string, fs *flag.FlagSet) *Manifest {
	m := NewManifest(tool)
	m.Workers = par.Workers(f.Workers)
	m.CollectFlags(fs)
	return m
}
