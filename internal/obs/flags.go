package obs

import (
	"flag"
	"fmt"
	"io"
	"os"

	"tsteiner/internal/par"
)

// Flags holds the observability/parallelism flags shared by every command,
// registered once through RegisterFlags instead of being copy-pasted into
// each main.
type Flags struct {
	Workers    int
	Out        string
	CPUProfile string
	MemProfile string
}

// RegisterFlags defines -workers, -obs-out, -cpuprofile and -memprofile on
// fs (use flag.CommandLine in a main). Workers defaults to 0 = all CPUs,
// which par.Workers resolves exactly like the historical GOMAXPROCS
// default.
func RegisterFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.IntVar(&f.Workers, "workers", 0,
		"parallel workers (0 = all CPUs, 1 = serial; results are byte-identical at any value)")
	fs.StringVar(&f.Out, "obs-out", "",
		"write an NDJSON telemetry trace to this path and print a summary at exit")
	fs.StringVar(&f.CPUProfile, "cpuprofile", "", "write a CPU profile to this path")
	fs.StringVar(&f.MemProfile, "memprofile", "", "write a heap profile to this path at exit")
	return f
}

// Setup activates everything the parsed flags request: it opens the trace
// sink (nil when -obs-out is unset — the no-op default), registers it as
// the par worker-utilization observer, and starts the CPU profile. The
// returned close function stops profiling, writes the heap profile,
// unregisters the observer, prints the telemetry summary to summaryTo
// (stderr when nil) and closes the trace file; call it exactly once, at
// exit.
func (f *Flags) Setup(summaryTo io.Writer) (*Sink, func(), error) {
	if summaryTo == nil {
		summaryTo = os.Stderr
	}
	var (
		sink     *Sink
		traceOut *os.File
	)
	if f.Out != "" {
		var err error
		traceOut, err = os.Create(f.Out)
		if err != nil {
			return nil, nil, fmt.Errorf("obs: trace: %w", err)
		}
		sink = New(traceOut)
		par.SetObserver(sink)
	}
	stopCPU, err := StartCPUProfile(f.CPUProfile)
	if err != nil {
		if traceOut != nil {
			traceOut.Close()
		}
		return nil, nil, err
	}
	closeFn := func() {
		stopCPU()
		if err := WriteHeapProfile(f.MemProfile); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
		if sink != nil {
			par.SetObserver(nil)
			if err := sink.WriteSummary(summaryTo); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}
		if traceOut != nil {
			traceOut.Close()
		}
	}
	return sink, closeFn, nil
}
