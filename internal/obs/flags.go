package obs

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"tsteiner/internal/par"
)

// Flags holds the observability/robustness/parallelism flags shared by
// every command, registered once through RegisterFlags instead of being
// copy-pasted into each main. The robustness fields are plain values (a
// directory, a bool, a duration): each main builds its own guard.Budget
// from Deadline so obs stays a leaf dependency.
type Flags struct {
	Workers    int
	Out        string
	CPUProfile string
	MemProfile string

	// CheckpointDir/Resume/Deadline are the fault-tolerance knobs: where
	// to write CRC-checksummed train/refine checkpoints, whether to resume
	// from them, and the process-wide wall-clock budget (0 = unlimited).
	CheckpointDir string
	Resume        bool
	Deadline      time.Duration
}

// RegisterFlags defines -workers, -obs-out, -cpuprofile, -memprofile,
// -checkpoint-dir, -resume and -deadline on fs (use flag.CommandLine in a
// main). Workers defaults to 0 = all CPUs, which par.Workers resolves
// exactly like the historical GOMAXPROCS default.
func RegisterFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.IntVar(&f.Workers, "workers", 0,
		"parallel workers (0 = all CPUs, 1 = serial; results are byte-identical at any value)")
	fs.StringVar(&f.Out, "obs-out", "",
		"write an NDJSON telemetry trace to this path and print a summary at exit")
	fs.StringVar(&f.CPUProfile, "cpuprofile", "", "write a CPU profile to this path")
	fs.StringVar(&f.MemProfile, "memprofile", "", "write a heap profile to this path at exit")
	fs.StringVar(&f.CheckpointDir, "checkpoint-dir", "",
		"write atomic CRC-checksummed training/refinement checkpoints into this directory")
	fs.BoolVar(&f.Resume, "resume", false,
		"resume from checkpoints in -checkpoint-dir; the resumed run is byte-identical to an uninterrupted one")
	fs.DurationVar(&f.Deadline, "deadline", 0,
		"wall-clock budget (0 = unlimited): refinement stops with its best solution so far, flow phases fail cleanly")
	return f
}

// Setup activates everything the parsed flags request: it opens the trace
// sink (nil when -obs-out is unset — the no-op default), registers it as
// the par worker-utilization observer, and starts the CPU profile. The
// returned close function stops profiling, writes the heap profile,
// unregisters the observer, prints the telemetry summary to summaryTo
// (stderr when nil) and closes the trace file; call it exactly once, at
// exit.
func (f *Flags) Setup(summaryTo io.Writer) (*Sink, func(), error) {
	if summaryTo == nil {
		summaryTo = os.Stderr
	}
	var (
		sink     *Sink
		traceOut *os.File
	)
	if f.Out != "" {
		var err error
		traceOut, err = os.Create(f.Out)
		if err != nil {
			return nil, nil, fmt.Errorf("obs: trace: %w", err)
		}
		sink = New(traceOut)
		par.SetObserver(sink)
	}
	stopCPU, err := StartCPUProfile(f.CPUProfile)
	if err != nil {
		if traceOut != nil {
			traceOut.Close()
		}
		return nil, nil, err
	}
	closeFn := func() {
		stopCPU()
		if err := WriteHeapProfile(f.MemProfile); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
		if sink != nil {
			par.SetObserver(nil)
			if err := sink.WriteSummary(summaryTo); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}
		if traceOut != nil {
			traceOut.Close()
		}
	}
	return sink, closeFn, nil
}
