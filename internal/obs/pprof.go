package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPUProfile begins a CPU profile at path and returns a stop function
// that ends the profile and closes the file. An empty path is a no-op.
func StartCPUProfile(path string) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: cpuprofile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: cpuprofile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeapProfile writes an allocation profile to path (after a GC, so
// the numbers reflect live memory). An empty path is a no-op.
func WriteHeapProfile(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: memprofile: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("obs: memprofile: %w", err)
	}
	return nil
}
