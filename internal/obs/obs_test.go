package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilSinkIsNoOp(t *testing.T) {
	var s *Sink
	if s.Enabled() {
		t.Fatal("nil sink reports enabled")
	}
	sp := s.Start("root")
	sp.Child("leaf").End()
	if d := sp.End(); d != 0 {
		t.Fatalf("nil span duration %v", d)
	}
	s.Add("c", 1)
	s.Gauge("g", 2)
	s.Observe("h", 3)
	s.Event("ev", KV{K: "k", V: "v"})
	s.ObservePool(2, 4, []time.Duration{1, 2}, 3)
	if err := s.WriteSummary(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

// TestTraceIsParseableNDJSON feeds every emitter and checks each line is
// valid JSON with the fixed envelope fields.
func TestTraceIsParseableNDJSON(t *testing.T) {
	var buf bytes.Buffer
	s := New(&buf)
	root := s.Start("flow.signoff")
	gr := root.Child("gr")
	gr.End()
	root.End()
	s.Add("flow.sta_runs", 2)
	s.Gauge("depth", 3.5)
	s.Observe("flow.gr_overflow", 7)
	s.Event("core.iter",
		KV{K: "iter", V: 1}, KV{K: "wns", V: -0.25}, KV{K: "accepted", V: true},
		KV{K: "design", V: `sp"m`}, KV{K: "wl", V: int64(123)})
	s.ObservePool(2, 8, []time.Duration{time.Millisecond, 2 * time.Millisecond}, 3*time.Millisecond)

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) < 6 {
		t.Fatalf("expected ≥6 trace lines, got %d:\n%s", len(lines), buf.String())
	}
	events := map[string]int{}
	for _, ln := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("line is not JSON: %q: %v", ln, err)
		}
		if _, ok := m["t"].(float64); !ok {
			t.Fatalf("line missing numeric t: %q", ln)
		}
		ev, ok := m["ev"].(string)
		if !ok {
			t.Fatalf("line missing ev: %q", ln)
		}
		events[ev]++
	}
	for _, want := range []string{"span_start", "span_end", "core.iter", "par.pool"} {
		if events[want] == 0 {
			t.Fatalf("no %s event in trace: %v", want, events)
		}
	}
	// Child span names join with '/': reconstructable hierarchy.
	if !strings.Contains(buf.String(), `"name":"flow.signoff/gr"`) {
		t.Fatalf("child span path missing:\n%s", buf.String())
	}
}

func TestEventEncodesSpecialFloats(t *testing.T) {
	var buf bytes.Buffer
	s := New(&buf)
	s.Event("x", KV{K: "nan", V: math.NaN()}, KV{K: "inf", V: math.Inf(1)})
	for _, ln := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(ln), &m); err != nil {
			t.Fatalf("NaN/Inf broke JSON: %q: %v", ln, err)
		}
	}
}

func TestSummaryAggregates(t *testing.T) {
	s := New(nil) // aggregate-only sink
	for i := 0; i < 3; i++ {
		sp := s.Start("phase")
		time.Sleep(time.Millisecond)
		sp.End()
	}
	s.Add("counter.a", 5)
	s.Add("counter.a", 2)
	s.Gauge("gauge.b", 1.25)
	s.Observe("hist.c", 1)
	s.Observe("hist.c", 3)
	var out bytes.Buffer
	if err := s.WriteSummary(&out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"phase", "counter.a  7", "gauge.b  1.25", "hist.c"} {
		if !strings.Contains(text, want) {
			t.Fatalf("summary missing %q:\n%s", want, text)
		}
	}
	s.mu.Lock()
	ag := s.spans["phase"]
	s.mu.Unlock()
	if ag == nil || ag.count != 3 || ag.total <= 0 || ag.max > ag.total {
		t.Fatalf("span aggregate wrong: %+v", ag)
	}
	h := s.hists["hist.c"]
	if h.Count != 2 || h.Min != 1 || h.Max != 3 || h.Sum != 4 {
		t.Fatalf("hist aggregate wrong: %+v", h)
	}
}

// TestSinkConcurrentUse hammers one sink from many goroutines; run under
// -race this is the collector's cleanliness gate.
func TestSinkConcurrentUse(t *testing.T) {
	var buf bytes.Buffer
	s := New(&buf)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sp := s.Start("span")
				s.Add("n", 1)
				s.Observe("h", float64(i))
				s.Event("ev", KV{K: "g", V: g}, KV{K: "i", V: i})
				s.ObservePool(2, 2, []time.Duration{1, 2}, 4)
				sp.End()
			}
		}(g)
	}
	wg.Wait()
	s.mu.Lock()
	n := s.counters["n"]
	s.mu.Unlock()
	if n != 8*200 {
		t.Fatalf("lost counter increments: %d", n)
	}
	for _, ln := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if !json.Valid([]byte(ln)) {
			t.Fatalf("interleaved/corrupt trace line: %q", ln)
		}
	}
}
