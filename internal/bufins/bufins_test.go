package bufins

import (
	"testing"

	"tsteiner/internal/lib"
	"tsteiner/internal/netlist"
	"tsteiner/internal/place"
	"tsteiner/internal/rc"
	"tsteiner/internal/rsmt"
	"tsteiner/internal/sta"
	"tsteiner/internal/synth"
)

func hubDesign(t *testing.T) *netlist.Design {
	t.Helper()
	spec, err := synth.BenchmarkByName("APU")
	if err != nil {
		t.Fatal(err)
	}
	d, err := synth.Generate(spec.Scale(0.4), lib.Default())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := place.Place(d, place.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	return d
}

func maxFanout(d *netlist.Design) int {
	m := 0
	for ni := range d.Nets {
		if f := len(d.Nets[ni].Sinks); f > m {
			m = f
		}
	}
	return m
}

func TestInsertBoundsFanout(t *testing.T) {
	d := hubDesign(t)
	if maxFanout(d) <= 16 {
		t.Skip("fixture has no high-fanout nets")
	}
	out, st, err := Insert(d, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := maxFanout(out); got > 16 {
		t.Fatalf("max fanout %d after buffering", got)
	}
	if st.NetsBuffered == 0 || st.BuffersInserted == 0 {
		t.Fatalf("stats empty: %+v", st)
	}
	// Buffers were added; everything else preserved.
	if len(out.Cells) != len(d.Cells)+st.BuffersInserted {
		t.Fatalf("cell count %d want %d+%d", len(out.Cells), len(d.Cells), st.BuffersInserted)
	}
	if len(out.PIs) != len(d.PIs) || len(out.POs) != len(d.POs) {
		t.Fatal("ports lost")
	}
	// All cells placed inside the die.
	for ci := range out.Cells {
		if !out.Die.Contains(out.Cells[ci].Pos) {
			t.Fatalf("cell %s outside die", out.Cells[ci].Name)
		}
	}
}

func TestInsertPreservesEndpointCount(t *testing.T) {
	d := hubDesign(t)
	out, _, err := Insert(d, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(out.Endpoints()), len(d.Endpoints()); got != want {
		t.Fatalf("endpoints %d want %d", got, want)
	}
}

func TestInsertImprovesTiming(t *testing.T) {
	// Buffering the hub nets must reduce the worst arrival: the monster
	// loads are split across buffer stages.
	d := hubDesign(t)
	tns := func(dd *netlist.Design) (float64, float64) {
		f, err := rsmt.BuildAll(dd, rsmt.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		rcs, err := rc.ExtractFromTrees(dd, f, dd.Lib)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sta.Run(dd, rcs)
		if err != nil {
			t.Fatal(err)
		}
		return res.WNS, res.TNS
	}
	w0, t0 := tns(d)
	out, _, err := Insert(d, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	w1, t1 := tns(out)
	if w1 < w0 {
		t.Fatalf("buffering worsened WNS: %g -> %g", w0, w1)
	}
	if t1 < t0 {
		t.Fatalf("buffering worsened TNS: %g -> %g", t0, t1)
	}
	if w1 == w0 && t1 == t0 {
		t.Fatal("buffering changed nothing")
	}
}

func TestInsertNoOpOnLowFanout(t *testing.T) {
	l := lib.Default()
	b := netlist.NewBuilder("small", l)
	pi := b.AddPI("i")
	po := b.AddPO("o", 0.01)
	b.Connect(pi, po)
	d, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	out, st, err := Insert(d, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if st.NetsBuffered != 0 || st.BuffersInserted != 0 {
		t.Fatalf("buffered a low-fanout design: %+v", st)
	}
	if len(out.Cells) != 0 {
		t.Fatal("cells appeared from nowhere")
	}
}

func TestInsertValidation(t *testing.T) {
	d := hubDesign(t)
	if _, _, err := Insert(d, Options{MaxFanout: 1, BufferMaster: "BUF_X4"}); err == nil {
		t.Fatal("fanout bound 1 accepted")
	}
	if _, _, err := Insert(d, Options{MaxFanout: 8, BufferMaster: "NOPE"}); err == nil {
		t.Fatal("unknown buffer master accepted")
	}
}

func TestDeepRecursiveBuffering(t *testing.T) {
	// A net with fanout > MaxFanout² needs a second buffer level.
	l := lib.Default()
	b := netlist.NewBuilder("wide", l)
	pi := b.AddPI("i")
	var sinks []netlist.PinID
	for i := 0; i < 30; i++ {
		sinks = append(sinks, b.AddPO("o"+string(rune('a'+i%26))+string(rune('0'+i/26)), 0.01))
	}
	b.Connect(pi, sinks...)
	d, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	out, st, err := Insert(d, Options{MaxFanout: 4, BufferMaster: "BUF_X2"})
	if err != nil {
		t.Fatal(err)
	}
	if maxFanout(out) > 4 {
		t.Fatalf("fanout bound violated: %d", maxFanout(out))
	}
	// 30 sinks at fanout 4 → 8 leaf buffers → 2 mid buffers → driver.
	if st.BuffersInserted < 10 {
		t.Fatalf("expected two buffer levels, inserted %d", st.BuffersInserted)
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := out.TopoOrder(); err != nil {
		t.Fatal(err)
	}
}
