// Package bufins implements fanout-driven buffer insertion: nets whose
// sink count exceeds a threshold are rewired through a balanced tree of
// buffers, each buffer serving a geographically clustered group of sinks.
// High-fanout broadcast nets (reset/enable-style hubs) dominate the delay
// profile of unbuffered netlists; this transform is the standard synthesis
// remedy and pairs naturally with TSteiner (buffered nets have smaller
// trees for the refiner to move).
//
// The transform produces a new design via netlist.Builder, so the result
// is re-validated structurally; the original design is untouched.
package bufins

import (
	"fmt"
	"sort"

	"tsteiner/internal/geom"
	"tsteiner/internal/netlist"
)

// Options tunes the transform.
type Options struct {
	// MaxFanout triggers buffering for nets with more sinks than this
	// and bounds the fanout of every inserted buffer.
	MaxFanout int
	// BufferMaster is the library cell used for inserted buffers.
	BufferMaster string
}

// DefaultOptions uses the strong buffer from the extended library.
func DefaultOptions() Options { return Options{MaxFanout: 16, BufferMaster: "BUF_X4"} }

// Stats reports what the transform did.
type Stats struct {
	NetsBuffered    int
	BuffersInserted int
	TreeDepthMax    int
}

// Insert returns a buffered copy of the design. Cell and port placement is
// preserved; inserted buffers are placed at the median of their sink
// cluster (clamped to the die).
func Insert(d *netlist.Design, opt Options) (*netlist.Design, *Stats, error) {
	if opt.MaxFanout < 2 {
		return nil, nil, fmt.Errorf("bufins: max fanout %d < 2", opt.MaxFanout)
	}
	if _, err := d.Lib.Cell(opt.BufferMaster); err != nil {
		return nil, nil, err
	}

	b := netlist.NewBuilder(d.Name, d.Lib)
	b.SetClockPeriod(d.ClockPeriod)
	b.SetDie(d.Die)

	// Recreate ports and cells; remember the pin mapping.
	pinMap := make([]netlist.PinID, len(d.Pins))
	for i := range pinMap {
		pinMap[i] = netlist.NoID
	}
	for _, pid := range d.PIs {
		np := b.AddPI(d.Pin(pid).Name)
		pinMap[pid] = np
	}
	for _, pid := range d.POs {
		np := b.AddPO(d.Pin(pid).Name, d.Pin(pid).Cap)
		pinMap[pid] = np
	}
	nd := b.Design()
	for ci := range d.Cells {
		inst := d.Cell(netlist.CellID(ci))
		ncid := b.AddCell(inst.Name, inst.Master.Name)
		for k, pid := range inst.Pins {
			pinMap[pid] = nd.Cell(ncid).Pins[k]
		}
	}

	st := &Stats{}
	bufSeq := 0
	for ni := range d.Nets {
		net := d.Net(netlist.NetID(ni))
		driver := pinMap[net.Driver]
		sinks := make([]netlist.PinID, len(net.Sinks))
		oldSinks := make([]netlist.PinID, len(net.Sinks))
		for i, s := range net.Sinks {
			sinks[i] = pinMap[s]
			oldSinks[i] = s
		}
		if len(sinks) <= opt.MaxFanout {
			b.Connect(driver, sinks...)
			continue
		}
		st.NetsBuffered++
		depth := bufferNet(b, d, opt, driver, sinks, oldSinks, &bufSeq, st)
		if depth > st.TreeDepthMax {
			st.TreeDepthMax = depth
		}
	}

	out, err := b.Finish()
	if err != nil {
		return nil, nil, fmt.Errorf("bufins: rebuild: %w", err)
	}

	// Restore placement: copy positions by name; place buffers at their
	// recorded cluster medians.
	posByName := map[string]geom.Point{}
	for ci := range d.Cells {
		posByName[d.Cells[ci].Name] = d.Cells[ci].Pos
	}
	portPos := map[string]geom.Point{}
	for i := range d.Pins {
		if d.Pins[i].IsPort {
			portPos[d.Pins[i].Name] = d.Pins[i].Pos
		}
	}
	for ci := range out.Cells {
		inst := out.Cell(netlist.CellID(ci))
		pos, ok := posByName[inst.Name]
		if !ok {
			continue // buffer: placed below
		}
		inst.Pos = pos
		for _, pid := range inst.Pins {
			out.Pin(pid).Pos = pos
		}
	}
	for i := range out.Pins {
		if out.Pins[i].IsPort {
			out.Pins[i].Pos = portPos[out.Pins[i].Name]
		}
	}
	// Buffer placement: median of the positions of the sinks it drives.
	placeBuffers(out, d.Die)

	return out, st, nil
}

// bufferNet splits one net's sinks into clusters of ≤MaxFanout, inserting
// one buffer per cluster (recursively, so buffer counts themselves respect
// the fanout bound). Returns the buffer-tree depth.
func bufferNet(b *netlist.Builder, orig *netlist.Design, opt Options,
	driver netlist.PinID, sinks, oldSinks []netlist.PinID, seq *int, st *Stats) int {

	// Cluster sinks by position: sort by Morton-ish key (x-major) and
	// chunk. Simple and deterministic; clusters are spatially coherent
	// because the sort groups nearby x bands.
	order := make([]int, len(sinks))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, c int) bool {
		pa := orig.Pin(oldSinks[order[a]]).Pos
		pc := orig.Pin(oldSinks[order[c]]).Pos
		if pa.X != pc.X {
			return pa.X < pc.X
		}
		return pa.Y < pc.Y
	})

	nd := b.Design()
	var level []netlist.PinID // buffer output pins of this level
	depth := 1
	for start := 0; start < len(order); start += opt.MaxFanout {
		end := start + opt.MaxFanout
		if end > len(order) {
			end = len(order)
		}
		name := fmt.Sprintf("fbuf_%d", *seq)
		*seq++
		st.BuffersInserted++
		cid := b.AddCell(name, opt.BufferMaster)
		var cluster []netlist.PinID
		for _, oi := range order[start:end] {
			cluster = append(cluster, sinks[oi])
		}
		b.Connect(nd.Cell(cid).OutputPin(), cluster...)
		level = append(level, nd.Cell(cid).InputPins()[0])
	}
	// If the buffer inputs themselves exceed the bound, recurse (rare:
	// needs fanout > MaxFanout²).
	if len(level) > opt.MaxFanout {
		// The buffer inputs' positions are unknown pre-placement; reuse
		// a round-robin clustering for the next level.
		depth += bufferLevel(b, opt, driver, level, seq, st)
		return depth
	}
	b.Connect(driver, level...)
	return depth
}

// bufferLevel groups already-created buffer inputs under more buffers.
func bufferLevel(b *netlist.Builder, opt Options, driver netlist.PinID, inputs []netlist.PinID, seq *int, st *Stats) int {
	nd := b.Design()
	depth := 1
	for {
		var next []netlist.PinID
		for start := 0; start < len(inputs); start += opt.MaxFanout {
			end := start + opt.MaxFanout
			if end > len(inputs) {
				end = len(inputs)
			}
			name := fmt.Sprintf("fbuf_%d", *seq)
			*seq++
			st.BuffersInserted++
			cid := b.AddCell(name, opt.BufferMaster)
			b.Connect(nd.Cell(cid).OutputPin(), inputs[start:end]...)
			next = append(next, nd.Cell(cid).InputPins()[0])
		}
		if len(next) <= opt.MaxFanout {
			b.Connect(driver, next...)
			return depth
		}
		inputs = next
		depth++
	}
}

// placeBuffers assigns each unplaced buffer the median position of its
// direct sinks, processing in reverse topological order so downstream
// buffers are placed before the buffers that feed them.
func placeBuffers(d *netlist.Design, die geom.BBox) {
	order, err := d.TopoOrder()
	if err != nil {
		return // validated design cannot be cyclic; defensive
	}
	// Reverse order: sinks before drivers.
	for oi := len(order) - 1; oi >= 0; oi-- {
		pid := order[oi]
		p := d.Pin(pid)
		if p.IsPort || p.Dir != netlist.Output {
			continue
		}
		inst := d.Cell(p.Cell)
		if inst.Pos != (geom.Point{}) || !isBuffer(inst.Name) {
			continue
		}
		net := p.Net
		if net == netlist.NoID {
			continue
		}
		var pts []geom.Point
		for _, s := range d.Net(net).Sinks {
			pts = append(pts, d.Pin(s).Pos)
		}
		pos := die.Clamp(geom.Median(pts))
		inst.Pos = pos
		for _, ip := range inst.Pins {
			d.Pin(ip).Pos = pos
		}
	}
}

func isBuffer(name string) bool {
	return len(name) > 5 && name[:5] == "fbuf_"
}
