package sta

import (
	"testing"

	"tsteiner/internal/grid"
	"tsteiner/internal/lib"
	"tsteiner/internal/place"
	"tsteiner/internal/rc"
	"tsteiner/internal/route"
	"tsteiner/internal/rsmt"
	"tsteiner/internal/synth"
)

func BenchmarkSTARun(b *testing.B) {
	l := lib.Default()
	spec, err := synth.BenchmarkByName("APU")
	if err != nil {
		b.Fatal(err)
	}
	d, err := synth.Generate(spec, l)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := place.Place(d, place.DefaultOptions()); err != nil {
		b.Fatal(err)
	}
	f, err := rsmt.BuildAll(d, rsmt.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	g, err := grid.New(d.Die, 8, []int{0, 12, 12, 10, 10})
	if err != nil {
		b.Fatal(err)
	}
	gr, err := route.Route(d, f, g, route.DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	rcs, err := rc.Extract(d, f, g, gr, l)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(d, rcs); err != nil {
			b.Fatal(err)
		}
	}
}
