// Windowed (incremental) STA: after a refinement move changes the
// parasitics of a small set of nets, only the fanout cones of those
// nets can change arrival/slew, and only the fanin cones of the
// affected pins can change required times. Retime re-traverses exactly
// those cones, pruning propagation the moment a pin's recomputed
// annotation is bit-identical to its previous value.
//
// Contract (asserted by TestOracleWindowedSTA / TestProp*): given a
// previous Result for parasitics rcs0 and a new rcs that differs from
// rcs0 only on the nets listed in changed, Retime returns a Result
// byte-identical to sta.Run(d, rcs). This holds because Retime shares
// the per-pin forward/backward kernels with Run (forwardPin,
// backwardMin, regBoundary) and recomputes the cheap O(n) global scans
// (endpoint metrics, slew and hold checks, pin slack) with the same
// helpers Run uses — no floating-point operation is reassociated.
//
// Fallback to full: when the changed set covers a large fraction of
// the design (≥ fullFrac of nets), the bookkeeping of windowed
// propagation costs more than it saves and Retime simply calls Run —
// the result is bitwise the same either way, so the switch is purely a
// performance decision.
package sta

import (
	"fmt"
	"math"

	"tsteiner/internal/netlist"
	"tsteiner/internal/rc"
)

// fullFrac is the changed-net fraction above which Retime falls back
// to a full Run.
const fullFrac = 0.25

// Retimer caches the design's timing-graph shape (topological order,
// adjacency, endpoint index) so repeated windowed re-timings pay only
// for the cones they touch.
type Retimer struct {
	d       *netlist.Design
	corner  Corner
	order   []netlist.PinID
	topoIdx []int32
	fanout  [][]netlist.PinID
	fanin   [][]netlist.PinID
	// endpointIdx maps a pin to its position in Endpoints(), or -1.
	endpointIdx []int32
	// scratch, reused across Retime calls (single-goroutine use only).
	inQueue []bool
	heap    []netlist.PinID
}

// NewRetimer builds the cached traversal structures for d at the
// typical (identity) corner.
func NewRetimer(d *netlist.Design) (*Retimer, error) {
	return NewCornerRetimer(d, TypicalCorner())
}

// NewCornerRetimer builds a Retimer whose windowed re-timings apply
// the corner's derating; Retime is then bitwise equal to a full
// RunCorner at the same corner (the kernels are shared).
func NewCornerRetimer(d *netlist.Design, c Corner) (*Retimer, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	order, err := d.TopoOrder()
	if err != nil {
		return nil, err
	}
	n := d.NumPins()
	rt := &Retimer{
		d:           d,
		corner:      c,
		order:       order,
		topoIdx:     make([]int32, n),
		fanout:      d.FanoutEdges(),
		fanin:       d.FaninEdges(),
		endpointIdx: make([]int32, n),
		inQueue:     make([]bool, n),
	}
	for i, pid := range order {
		rt.topoIdx[pid] = int32(i)
	}
	for i := range rt.endpointIdx {
		rt.endpointIdx[i] = -1
	}
	for i, e := range d.Endpoints() {
		rt.endpointIdx[e] = int32(i)
	}
	return rt, nil
}

// Retime produces the timing annotation for parasitics rcs, given a
// previous annotation prev that is valid for parasitics identical to
// rcs on every net NOT listed in changed. prev is not modified. The
// returned Result is byte-identical to Run(d, rcs).
func (rt *Retimer) Retime(prev *Result, rcs []rc.NetRC, changed []netlist.NetID) (*Result, error) {
	d := rt.d
	if len(rcs) != len(d.Nets) {
		return nil, fmt.Errorf("sta: %d RC views for %d nets", len(rcs), len(d.Nets))
	}
	if prev.Corner != rt.corner {
		return nil, fmt.Errorf("sta: retimer corner %q given a %q-corner result", rt.corner.Name, prev.Corner.Name)
	}
	if len(changed) == 0 {
		return prev, nil
	}
	for _, ni := range changed {
		if ni < 0 || int(ni) >= len(d.Nets) {
			return nil, fmt.Errorf("sta: changed net %d out of range", ni)
		}
	}
	if float64(len(changed)) >= fullFrac*float64(len(d.Nets)) {
		return run(d, rcs, rt.corner)
	}

	res := prev.clone()

	// Forward pass: seed the drivers and sinks of every changed net,
	// then sweep dirty pins in topological order. A sink of a changed
	// net must be recomputed unconditionally (its SinkDelay/SinkSlewAdd
	// changed even if the driver's annotation did not); a driver must
	// be recomputed because its load (the net's TotalCap) changed.
	rt.heap = rt.heap[:0]
	for _, ni := range changed {
		net := d.Net(ni)
		if net.Driver != netlist.NoID {
			drv := d.Pin(net.Driver)
			if !(drv.IsPort && drv.Dir == netlist.Output) {
				rt.push(net.Driver, true)
			}
		}
		for _, s := range net.Sinks {
			rt.push(s, true)
		}
	}
	// fwdChanged records pins whose forward annotation actually moved;
	// they seed the backward pass.
	var fwdChanged []netlist.PinID
	for len(rt.heap) > 0 {
		pid := rt.pop(true)
		oldA := res.Arrival[pid]
		oldAM := res.ArrivalMin[pid]
		oldS := res.Slew[pid]
		oldP := res.argmaxPred[pid]
		p := d.Pin(pid)
		if p.Cell != netlist.NoID && p.Dir == netlist.Output && d.Cell(p.Cell).Master.Sequential {
			// Register launch point: boundary recompute (load-only).
			if err := regBoundary(d, rcs, res, d.Cell(p.Cell)); err != nil {
				return nil, err
			}
		} else if err := forwardPin(d, rcs, res, pid); err != nil {
			return nil, err
		}
		if sameBits(oldA, res.Arrival[pid]) && sameBits(oldAM, res.ArrivalMin[pid]) &&
			sameBits(oldS, res.Slew[pid]) && oldP == res.argmaxPred[pid] {
			continue // cone pruned: nothing downstream can change
		}
		fwdChanged = append(fwdChanged, pid)
		for _, s := range rt.fanout[pid] {
			rt.push(s, true)
		}
	}

	// Global scans are O(n) with no per-net state: recompute them with
	// the exact helpers Run uses.
	endpointMetrics(d, res)
	slewChecks(d, res)
	holdChecks(d, res)

	// Backward pass. A pin's required time must be recomputed when any
	// input of its formula changed: its own slew (cell-arc delay), the
	// SinkDelay of a net it drives, the load of the cell output it
	// feeds, its endpoint constraint (arrival moved), or — via
	// propagation — a successor's required time.
	rt.heap = rt.heap[:0]
	for _, pid := range fwdChanged {
		rt.push(pid, false)
	}
	for _, ni := range changed {
		net := d.Net(ni)
		if net.Driver == netlist.NoID {
			continue
		}
		rt.push(net.Driver, false)
		drv := d.Pin(net.Driver)
		if drv.Cell != netlist.NoID {
			inst := d.Cell(drv.Cell)
			if !inst.Master.Sequential {
				for _, in := range inst.InputPins() {
					rt.push(in, false)
				}
			}
		}
	}
	for len(rt.heap) > 0 {
		pid := rt.pop(false)
		old := res.Required[pid]
		res.Required[pid] = math.Inf(1)
		if ei := rt.endpointIdx[pid]; ei >= 0 {
			res.Required[pid] = res.EndpointSlack[ei] + res.Arrival[pid] // = constraint
		}
		backwardMin(d, rcs, res, pid)
		if sameBits(old, res.Required[pid]) {
			continue
		}
		for _, pred := range rt.fanin[pid] {
			rt.push(pred, false)
		}
	}

	for i := range res.PinSlack {
		res.PinSlack[i] = res.Required[i] - res.Arrival[i]
	}
	return res, nil
}

// clone deep-copies the per-pin annotation arrays; the endpoint-aligned
// slices are rebuilt from scratch by endpointMetrics.
func (r *Result) clone() *Result {
	c := &Result{
		Corner:      r.Corner,
		Arrival:     append([]float64(nil), r.Arrival...),
		Slew:        append([]float64(nil), r.Slew...),
		ArrivalMin:  append([]float64(nil), r.ArrivalMin...),
		Required:    append([]float64(nil), r.Required...),
		PinSlack:    append([]float64(nil), r.PinSlack...),
		argmaxPred:  append([]netlist.PinID(nil), r.argmaxPred...),
		Endpoints:   r.Endpoints,
		WNS:         r.WNS,
		TNS:         r.TNS,
		Vios:        r.Vios,
		WHS:         r.WHS,
		HoldVios:    r.HoldVios,
		SlewVios:    r.SlewVios,
		MaxSlewSeen: r.MaxSlewSeen,
	}
	c.EndpointSlack = append([]float64(nil), r.EndpointSlack...)
	c.EndpointArrival = append([]float64(nil), r.EndpointArrival...)
	return c
}

// sameBits compares two floats for bit-identity (so NaN == NaN and
// +0 != -0 — the pruning test must be exact, not numeric).
func sameBits(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// push enqueues pid into the worklist heap unless already queued.
// forward selects min-topo-index ordering; the backward pass uses
// max-topo-index (reverse topological) ordering.
func (rt *Retimer) push(pid netlist.PinID, forward bool) {
	if rt.inQueue[pid] {
		return
	}
	rt.inQueue[pid] = true
	rt.heap = append(rt.heap, pid)
	i := len(rt.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !rt.before(rt.heap[i], rt.heap[parent], forward) {
			break
		}
		rt.heap[i], rt.heap[parent] = rt.heap[parent], rt.heap[i]
		i = parent
	}
}

// pop removes the next pin in traversal order from the worklist heap.
func (rt *Retimer) pop(forward bool) netlist.PinID {
	top := rt.heap[0]
	rt.inQueue[top] = false
	last := len(rt.heap) - 1
	rt.heap[0] = rt.heap[last]
	rt.heap = rt.heap[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < len(rt.heap) && rt.before(rt.heap[l], rt.heap[best], forward) {
			best = l
		}
		if r < len(rt.heap) && rt.before(rt.heap[r], rt.heap[best], forward) {
			best = r
		}
		if best == i {
			break
		}
		rt.heap[i], rt.heap[best] = rt.heap[best], rt.heap[i]
		i = best
	}
	return top
}

func (rt *Retimer) before(a, b netlist.PinID, forward bool) bool {
	if forward {
		return rt.topoIdx[a] < rt.topoIdx[b]
	}
	return rt.topoIdx[a] > rt.topoIdx[b]
}
