// Package sta is the static timing analysis engine: given a design and
// extracted net parasitics it propagates arrival times and slews through
// the timing graph (PERT traversal), applies clock constraints at the
// endpoints, and reports slack, WNS, TNS and violation counts — the
// sign-off metrics the paper optimizes.
package sta

import (
	"fmt"
	"math"

	"tsteiner/internal/netlist"
	"tsteiner/internal/rc"
)

// Default boundary conditions.
const (
	// PISlew is the transition assumed at primary inputs (ns).
	PISlew = 0.02
	// ClockSlew is the transition assumed at register clock pins (ns).
	ClockSlew = 0.03
	// PIDriveRes is the source resistance (kΩ) modeled for primary-input
	// drivers; exported for the RC package's driver model consumers.
	PIDriveRes = 2.0
)

// Result holds the full timing annotation of a design.
type Result struct {
	// Corner records the derating the annotation was computed under;
	// Run produces the typical (identity) corner.
	Corner Corner

	// Arrival and Slew are per-pin (ns); pins unreachable from any
	// startpoint keep zero arrival.
	Arrival []float64
	Slew    []float64
	// ArrivalMin is the earliest arrival per pin (min over fanin), used
	// for hold checks.
	ArrivalMin []float64

	// Endpoints lists the design's timing endpoints; EndpointSlack and
	// EndpointArrival align with it.
	Endpoints       []netlist.PinID
	EndpointSlack   []float64
	EndpointArrival []float64

	// WNS is min slack over endpoints, TNS the sum of negative slacks,
	// Vios the count of violating endpoints (paper Eq. 1).
	WNS, TNS float64
	Vios     int

	// Hold (min-delay) analysis at register D pins: WHS is the worst hold
	// slack (earliest arrival minus hold requirement) and HoldVios the
	// violating register count. With an ideal clock, positive cell delays
	// keep these healthy; they guard against degenerate zero-delay paths.
	WHS      float64
	HoldVios int

	// SlewVios counts pins whose transition exceeds the library's
	// max-transition rule; MaxSlewSeen is the worst transition observed.
	SlewVios    int
	MaxSlewSeen float64

	// Required and PinSlack annotate every pin: the latest allowed
	// arrival (from backward propagation of endpoint constraints) and
	// required − arrival. Pins on no constrained path carry +Inf required
	// time and +Inf slack.
	Required []float64
	PinSlack []float64

	// argmaxPred records, per pin, the predecessor realizing its arrival
	// (for critical-path extraction).
	argmaxPred []netlist.PinID
}

// Run performs the PERT traversal at the typical (identity) corner.
// rcs must be indexed by net ID (as produced by the rc package).
func Run(d *netlist.Design, rcs []rc.NetRC) (*Result, error) {
	return run(d, rcs, TypicalCorner())
}

// run is the corner-parameterized PERT traversal shared by Run,
// RunCorner and RunCorners. Every derating is a plain multiplication,
// so the typical corner (all scales exactly 1.0) cannot perturb a
// single bit of the annotation.
func run(d *netlist.Design, rcs []rc.NetRC, c Corner) (*Result, error) {
	if len(rcs) != len(d.Nets) {
		return nil, fmt.Errorf("sta: %d RC views for %d nets", len(rcs), len(d.Nets))
	}
	order, err := d.TopoOrder()
	if err != nil {
		return nil, err
	}
	n := d.NumPins()
	res := &Result{
		Corner:     c,
		Arrival:    make([]float64, n),
		Slew:       make([]float64, n),
		ArrivalMin: make([]float64, n),
		argmaxPred: make([]netlist.PinID, n),
	}
	for i := range res.argmaxPred {
		res.argmaxPred[i] = netlist.NoID
	}
	// Boundary conditions at startpoints.
	for _, pid := range d.PIs {
		res.Slew[pid] = PISlew * c.SlewScale
	}
	for ci := range d.Cells {
		inst := d.Cell(netlist.CellID(ci))
		if !inst.Master.Sequential {
			continue
		}
		if err := regBoundary(d, rcs, res, inst); err != nil {
			return nil, err
		}
	}

	// Forward propagation in topological order.
	for _, pid := range order {
		if err := forwardPin(d, rcs, res, pid); err != nil {
			return nil, err
		}
	}

	endpointMetrics(d, res)
	slewChecks(d, res)
	holdChecks(d, res)

	// Backward propagation of required times: every pin learns the
	// latest arrival that still meets all downstream endpoint
	// constraints; per-pin slack follows. Used for criticality-driven net
	// ordering and diagnostics.
	res.Required = make([]float64, n)
	for i := range res.Required {
		res.Required[i] = math.Inf(1)
	}
	for i, e := range res.Endpoints {
		res.Required[e] = res.EndpointSlack[i] + res.Arrival[e] // = constraint
	}
	for oi := len(order) - 1; oi >= 0; oi-- {
		backwardMin(d, rcs, res, order[oi])
	}
	res.PinSlack = make([]float64, n)
	for i := range res.PinSlack {
		res.PinSlack[i] = res.Required[i] - res.Arrival[i]
	}
	return res, nil
}

// regBoundary applies the CK→Q launch boundary condition at one
// register: the clock-to-output arc evaluated at the ideal clock slew
// and the Q net's extracted load.
func regBoundary(d *netlist.Design, rcs []rc.NetRC, res *Result, inst *netlist.Inst) error {
	q := inst.OutputPin()
	arc := inst.Master.ArcFrom("CK")
	if arc == nil {
		return fmt.Errorf("sta: register %s lacks CK arc", inst.Name)
	}
	load := driverLoad(d, rcs, q)
	clockSlew := ClockSlew * res.Corner.SlewScale
	res.Arrival[q] = arc.Delay.Lookup(clockSlew, load) * res.Corner.DelayScale
	res.ArrivalMin[q] = res.Arrival[q]
	res.Slew[q] = arc.Slew.Lookup(clockSlew, load) * res.Corner.SlewScale
	return nil
}

// forwardPin recomputes the forward annotation (arrival, earliest
// arrival, slew, argmax predecessor) of one pin from its predecessors'
// already-final values. It is the single forward kernel shared by the
// full traversal in Run and the windowed re-traversal in Retime, which
// keeps the two bit-identical by construction.
func forwardPin(d *netlist.Design, rcs []rc.NetRC, res *Result, pid netlist.PinID) error {
	p := d.Pin(pid)
	switch {
	case p.IsPort && p.Dir == netlist.Output:
		// PI: boundary condition already set.
	case p.Dir == netlist.Input:
		// Net sink: pull from the driving net.
		if p.Net == netlist.NoID {
			return nil // floating clock pin
		}
		net := d.Net(p.Net)
		si := sinkIndex(net, pid)
		nrc := &rcs[p.Net]
		wireDelay := nrc.SinkDelay[si] * res.Corner.DelayScale
		res.Arrival[pid] = res.Arrival[net.Driver] + wireDelay
		res.ArrivalMin[pid] = res.ArrivalMin[net.Driver] + wireDelay
		res.Slew[pid] = rc.CombineSlew(res.Slew[net.Driver], nrc.SinkSlewAdd[si]*res.Corner.SlewScale)
		res.argmaxPred[pid] = net.Driver
	default:
		// Cell output pin.
		inst := d.Cell(p.Cell)
		if inst.Master.Sequential {
			return nil // CK→Q handled as boundary condition
		}
		load := driverLoad(d, rcs, pid)
		worst := math.Inf(-1)
		earliest := math.Inf(1)
		worstSlew := 0.0
		var worstPred netlist.PinID = netlist.NoID
		for i, in := range inst.InputPins() {
			arc := inst.Master.ArcFrom(inst.Master.Inputs[i])
			if arc == nil {
				continue
			}
			delay := arc.Delay.Lookup(res.Slew[in], load) * res.Corner.DelayScale
			a := res.Arrival[in] + delay
			if a > worst {
				worst = a
				worstPred = in
			}
			if am := res.ArrivalMin[in] + delay; am < earliest {
				earliest = am
			}
			if s := arc.Slew.Lookup(res.Slew[in], load) * res.Corner.SlewScale; s > worstSlew {
				worstSlew = s
			}
		}
		if math.IsInf(worst, -1) {
			return fmt.Errorf("sta: cell %s output has no timing arc", inst.Name)
		}
		res.Arrival[pid] = worst
		res.ArrivalMin[pid] = earliest
		res.Slew[pid] = worstSlew
		res.argmaxPred[pid] = worstPred
	}
	return nil
}

// endpointMetrics applies the clock constraint at every endpoint and
// rebuilds the global setup metrics (slack vector, WNS, TNS, violation
// count) from the current arrivals.
func endpointMetrics(d *netlist.Design, res *Result) {
	res.Endpoints = d.Endpoints()
	res.EndpointSlack = make([]float64, len(res.Endpoints))
	res.EndpointArrival = make([]float64, len(res.Endpoints))
	res.WNS = math.Inf(1)
	res.TNS = 0
	res.Vios = 0
	for i, e := range res.Endpoints {
		required := d.ClockPeriod * res.Corner.ClockScale
		p := d.Pin(e)
		if !p.IsPort {
			required -= d.Cell(p.Cell).Master.Setup * res.Corner.DelayScale
		}
		slack := required - res.Arrival[e]
		res.EndpointSlack[i] = slack
		res.EndpointArrival[i] = res.Arrival[e]
		if slack < res.WNS {
			res.WNS = slack
		}
		if slack < 0 {
			res.TNS += slack
			res.Vios++
		}
	}
	if len(res.Endpoints) == 0 {
		res.WNS = 0
	}
}

// slewChecks scans every pin's transition against the library
// max-transition rule.
func slewChecks(d *netlist.Design, res *Result) {
	res.MaxSlewSeen = 0
	res.SlewVios = 0
	if limit := d.Lib.MaxSlew; limit > 0 {
		for _, s := range res.Slew {
			if s > res.MaxSlewSeen {
				res.MaxSlewSeen = s
			}
			if s > limit {
				res.SlewVios++
			}
		}
	}
}

// holdChecks runs the min-delay analysis at register D pins: the
// earliest data arrival must not beat the hold window after the (ideal,
// zero-skew) capturing edge.
func holdChecks(d *netlist.Design, res *Result) {
	res.WHS = math.Inf(1)
	res.HoldVios = 0
	for ci := range d.Cells {
		inst := d.Cell(netlist.CellID(ci))
		if !inst.Master.Sequential {
			continue
		}
		dPin := inst.InputPins()[0]
		if d.Pin(dPin).Net == netlist.NoID {
			continue
		}
		hs := res.ArrivalMin[dPin] - inst.Master.Hold*res.Corner.DelayScale
		if hs < res.WHS {
			res.WHS = hs
		}
		if hs < 0 {
			res.HoldVios++
		}
	}
	if math.IsInf(res.WHS, 1) {
		res.WHS = 0
	}
}

// backwardMin lowers res.Required[pid] by the pin's outgoing timing
// edges (net edges for a driver pin, the cell arc for a comb input
// pin), assuming every successor's required time is already final. The
// single backward kernel shared by Run and Retime.
func backwardMin(d *netlist.Design, rcs []rc.NetRC, res *Result, pid netlist.PinID) {
	p := d.Pin(pid)
	// Net edges out of a driver pin.
	if p.Dir == netlist.Output && p.Net != netlist.NoID {
		net := d.Net(p.Net)
		nrc := &rcs[p.Net]
		for si, s := range net.Sinks {
			if r := res.Required[s] - nrc.SinkDelay[si]*res.Corner.DelayScale; r < res.Required[pid] {
				res.Required[pid] = r
			}
		}
	}
	// Cell arc out of an input pin.
	if p.Dir == netlist.Input && p.Cell != netlist.NoID {
		inst := d.Cell(p.Cell)
		if !inst.Master.Sequential {
			if arc := inst.Master.ArcFrom(d.MasterPinName(pid)); arc != nil {
				out := inst.OutputPin()
				delay := arc.Delay.Lookup(res.Slew[pid], driverLoad(d, rcs, out)) * res.Corner.DelayScale
				if r := res.Required[out] - delay; r < res.Required[pid] {
					res.Required[pid] = r
				}
			}
		}
	}
}

// NetCriticality returns, per net, the worst pin slack among the net's
// pins — smaller (more negative) means more timing-critical. Used to
// order nets for timing-driven routing.
func (r *Result) NetCriticality(d *netlist.Design) []float64 {
	out := make([]float64, len(d.Nets))
	for ni := range d.Nets {
		net := d.Net(netlist.NetID(ni))
		worst := r.PinSlack[net.Driver]
		for _, s := range net.Sinks {
			if r.PinSlack[s] < worst {
				worst = r.PinSlack[s]
			}
		}
		out[ni] = worst
	}
	return out
}

// driverLoad returns the load a driver pin sees: its net's total cap, or
// zero for an unconnected output.
func driverLoad(d *netlist.Design, rcs []rc.NetRC, pid netlist.PinID) float64 {
	net := d.Pin(pid).Net
	if net == netlist.NoID {
		return 0
	}
	return rcs[net].TotalCap
}

func sinkIndex(net *netlist.Net, pid netlist.PinID) int {
	for i, s := range net.Sinks {
		if s == pid {
			return i
		}
	}
	return -1
}

// CriticalPath walks back from the worst endpoint through the arrival
// argmax predecessors, returning the pin sequence from startpoint to
// endpoint.
func (r *Result) CriticalPath(d *netlist.Design) []netlist.PinID {
	if len(r.Endpoints) == 0 {
		return nil
	}
	worst := 0
	for i := range r.Endpoints {
		if r.EndpointSlack[i] < r.EndpointSlack[worst] {
			worst = i
		}
	}
	var rev []netlist.PinID
	cur := r.Endpoints[worst]
	for cur != netlist.NoID {
		rev = append(rev, cur)
		cur = r.argmaxPred[cur]
	}
	out := make([]netlist.PinID, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// Metrics is the compact sign-off summary used in tables.
type Metrics struct {
	WNS, TNS float64
	Vios     int
}

// Metrics extracts the summary triple.
func (r *Result) Metrics() Metrics {
	return Metrics{WNS: r.WNS, TNS: r.TNS, Vios: r.Vios}
}
