package sta

import (
	"math"
	"math/rand"
	"testing"

	"tsteiner/internal/lib"
	"tsteiner/internal/netlist"
	"tsteiner/internal/place"
	"tsteiner/internal/rc"
	"tsteiner/internal/rsmt"
	"tsteiner/internal/synth"
)

// windowFixture builds a placed benchmark with pre-routing parasitics —
// the cheapest substrate on which Retime and Run can be compared
// bit-for-bit (moving a Steiner point changes exactly one net's RC).
type windowFixture struct {
	d    *netlist.Design
	f    *rsmt.Forest
	l    *lib.Library
	rcs  []rc.NetRC
	full *Result
}

func newWindowFixture(t *testing.T, name string, scale float64) *windowFixture {
	t.Helper()
	l := lib.Default()
	spec, err := synth.BenchmarkByName(name)
	if err != nil {
		t.Fatal(err)
	}
	d, err := synth.Generate(spec.Scale(scale), l)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := place.Place(d, place.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	f, err := rsmt.BuildAll(d, rsmt.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rcs, err := rc.ExtractFromTrees(d, f, l)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Run(d, rcs)
	if err != nil {
		t.Fatal(err)
	}
	return &windowFixture{d: d, f: f, l: l, rcs: rcs, full: full}
}

// jitterNet perturbs every Steiner node of one tree and re-extracts
// just that net's RC view. Returns false if the net has no movable
// node (its RC cannot change).
func (fx *windowFixture) jitterNet(t *testing.T, ni netlist.NetID, rng *rand.Rand) bool {
	t.Helper()
	tr := fx.f.Trees[ni]
	moved := false
	for i := range tr.Nodes {
		if tr.Nodes[i].Kind != rsmt.SteinerNode {
			continue
		}
		tr.Nodes[i].Pos.X += (rng.Float64() - 0.5) * 4
		tr.Nodes[i].Pos.Y += (rng.Float64() - 0.5) * 4
		moved = true
	}
	if !moved {
		return false
	}
	nrc, err := rc.ExtractTreeNet(fx.d, tr, fx.l)
	if err != nil {
		t.Fatal(err)
	}
	fx.rcs[ni] = nrc
	return true
}

// requireBitIdentical fails unless two results agree bit-for-bit on
// every annotation, including the unexported critical-path
// predecessors.
func requireBitIdentical(t *testing.T, got, want *Result) {
	t.Helper()
	cmpVec := func(label string, a, b []float64) {
		if len(a) != len(b) {
			t.Fatalf("%s: length %d vs %d", label, len(a), len(b))
		}
		for i := range a {
			if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
				t.Fatalf("%s[%d]: %x (%.17g) vs %x (%.17g)", label, i,
					math.Float64bits(a[i]), a[i], math.Float64bits(b[i]), b[i])
			}
		}
	}
	cmpVec("Arrival", got.Arrival, want.Arrival)
	cmpVec("Slew", got.Slew, want.Slew)
	cmpVec("ArrivalMin", got.ArrivalMin, want.ArrivalMin)
	cmpVec("Required", got.Required, want.Required)
	cmpVec("PinSlack", got.PinSlack, want.PinSlack)
	cmpVec("EndpointSlack", got.EndpointSlack, want.EndpointSlack)
	cmpVec("EndpointArrival", got.EndpointArrival, want.EndpointArrival)
	if len(got.Endpoints) != len(want.Endpoints) {
		t.Fatalf("endpoint count %d vs %d", len(got.Endpoints), len(want.Endpoints))
	}
	for i := range got.Endpoints {
		if got.Endpoints[i] != want.Endpoints[i] {
			t.Fatalf("Endpoints[%d]: %d vs %d", i, got.Endpoints[i], want.Endpoints[i])
		}
	}
	for i := range got.argmaxPred {
		if got.argmaxPred[i] != want.argmaxPred[i] {
			t.Fatalf("argmaxPred[%d]: %d vs %d", i, got.argmaxPred[i], want.argmaxPred[i])
		}
	}
	if math.Float64bits(got.WNS) != math.Float64bits(want.WNS) ||
		math.Float64bits(got.TNS) != math.Float64bits(want.TNS) ||
		got.Vios != want.Vios ||
		math.Float64bits(got.WHS) != math.Float64bits(want.WHS) ||
		got.HoldVios != want.HoldVios ||
		got.SlewVios != want.SlewVios ||
		math.Float64bits(got.MaxSlewSeen) != math.Float64bits(want.MaxSlewSeen) {
		t.Fatalf("summary metrics differ: (%v %v %d %v %d %d %v) vs (%v %v %d %v %d %d %v)",
			got.WNS, got.TNS, got.Vios, got.WHS, got.HoldVios, got.SlewVios, got.MaxSlewSeen,
			want.WNS, want.TNS, want.Vios, want.WHS, want.HoldVios, want.SlewVios, want.MaxSlewSeen)
	}
}

// TestPropWindowedSingleNetMove is the seeded property from the issue:
// after any single-net move, a cone-only re-time is bit-identical to a
// from-scratch sta run. Trials chain (each Retime output becomes the
// next previous state), so stale-cache bugs accumulate and get caught.
func TestPropWindowedSingleNetMove(t *testing.T) {
	for _, name := range []string{"spm", "cic_decimator"} {
		t.Run(name, func(t *testing.T) {
			fx := newWindowFixture(t, name, 1.0)
			rt, err := NewRetimer(fx.d)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(911))
			prev := fx.full
			trials := 40
			if testing.Short() {
				trials = 10
			}
			for trial := 0; trial < trials; trial++ {
				ni := netlist.NetID(rng.Intn(len(fx.d.Nets)))
				if !fx.jitterNet(t, ni, rng) {
					continue
				}
				got, err := rt.Retime(prev, fx.rcs, []netlist.NetID{ni})
				if err != nil {
					t.Fatal(err)
				}
				want, err := Run(fx.d, fx.rcs)
				if err != nil {
					t.Fatal(err)
				}
				requireBitIdentical(t, got, want)
				prev = got
			}
		})
	}
}

// TestWindowedSubsetMoves drives Retime with multi-net change sets,
// including nets that did not actually change (allowed by the
// contract) — still bit-identical to the full run.
func TestWindowedSubsetMoves(t *testing.T) {
	fx := newWindowFixture(t, "spm", 1.0)
	rt, err := NewRetimer(fx.d)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	prev := fx.full
	for trial := 0; trial < 12; trial++ {
		k := 1 + rng.Intn(len(fx.d.Nets)/12+1)
		changed := make([]netlist.NetID, 0, k)
		seen := map[netlist.NetID]bool{}
		for len(changed) < k {
			ni := netlist.NetID(rng.Intn(len(fx.d.Nets)))
			if seen[ni] {
				continue
			}
			seen[ni] = true
			fx.jitterNet(t, ni, rng) // pin-only nets stay listed but unchanged
			changed = append(changed, ni)
		}
		got, err := rt.Retime(prev, fx.rcs, changed)
		if err != nil {
			t.Fatal(err)
		}
		want, err := Run(fx.d, fx.rcs)
		if err != nil {
			t.Fatal(err)
		}
		requireBitIdentical(t, got, want)
		prev = got
	}
}

// TestWindowedFullFallback exercises the ≥ fullFrac escape hatch: a
// change set covering most nets must still produce the exact full-run
// result (it falls back to Run internally).
func TestWindowedFullFallback(t *testing.T) {
	fx := newWindowFixture(t, "spm", 0.5)
	rt, err := NewRetimer(fx.d)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	changed := make([]netlist.NetID, 0, len(fx.d.Nets))
	for ni := range fx.d.Nets {
		fx.jitterNet(t, netlist.NetID(ni), rng)
		changed = append(changed, netlist.NetID(ni))
	}
	got, err := rt.Retime(fx.full, fx.rcs, changed)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(fx.d, fx.rcs)
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, got, want)

	// Empty change set: the previous annotation is already the answer.
	same, err := rt.Retime(want, fx.rcs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if same != want {
		t.Fatal("empty change set must return the previous result")
	}
}
