package sta

import (
	"math"
	"testing"

	"tsteiner/internal/geom"
	"tsteiner/internal/grid"
	"tsteiner/internal/lib"
	"tsteiner/internal/netlist"
	"tsteiner/internal/place"
	"tsteiner/internal/rc"
	"tsteiner/internal/route"
	"tsteiner/internal/rsmt"
	"tsteiner/internal/synth"
)

// signoff runs the full substrate pipeline on a benchmark and returns the
// design plus its timing result.
func signoff(t *testing.T, name string, scale float64) (*netlist.Design, *Result) {
	t.Helper()
	l := lib.Default()
	spec, err := synth.BenchmarkByName(name)
	if err != nil {
		t.Fatal(err)
	}
	d, err := synth.Generate(spec.Scale(scale), l)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := place.Place(d, place.DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	f, err := rsmt.BuildAll(d, rsmt.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	g, err := grid.New(d.Die, 8, []int{4, 6, 6, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	gres, err := route.Route(d, f, g, route.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rcs, err := rc.Extract(d, f, g, gres, l)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(d, rcs)
	if err != nil {
		t.Fatal(err)
	}
	return d, res
}

func TestRunProducesConsistentMetrics(t *testing.T) {
	d, res := signoff(t, "spm", 1.0)
	if len(res.Endpoints) != len(d.Endpoints()) {
		t.Fatalf("endpoint count mismatch")
	}
	// WNS = min slack; TNS = sum of negatives; Vios = count of negatives.
	wns := math.Inf(1)
	tns := 0.0
	vios := 0
	for _, s := range res.EndpointSlack {
		if s < wns {
			wns = s
		}
		if s < 0 {
			tns += s
			vios++
		}
	}
	if math.Abs(wns-res.WNS) > 1e-12 || math.Abs(tns-res.TNS) > 1e-9 || vios != res.Vios {
		t.Fatalf("metrics inconsistent: got WNS=%g TNS=%g Vios=%d want %g/%g/%d",
			res.WNS, res.TNS, res.Vios, wns, tns, vios)
	}
	m := res.Metrics()
	if m.WNS != res.WNS || m.TNS != res.TNS || m.Vios != res.Vios {
		t.Fatal("Metrics() mismatch")
	}
}

func TestArrivalMonotoneAlongNets(t *testing.T) {
	d, res := signoff(t, "cic_decimator", 1.0)
	for ni := range d.Nets {
		net := d.Net(netlist.NetID(ni))
		for _, s := range net.Sinks {
			if res.Arrival[s] < res.Arrival[net.Driver]-1e-12 {
				t.Fatalf("arrival decreased across net %s", net.Name)
			}
		}
	}
}

func TestArrivalMonotoneThroughCells(t *testing.T) {
	d, res := signoff(t, "cic_decimator", 1.0)
	for ci := range d.Cells {
		inst := d.Cell(netlist.CellID(ci))
		if inst.Master.Sequential {
			continue
		}
		out := inst.OutputPin()
		for _, in := range inst.InputPins() {
			if res.Arrival[out] < res.Arrival[in]-1e-12 {
				t.Fatalf("arrival decreased through cell %s", inst.Name)
			}
		}
	}
}

func TestHandComputedChain(t *testing.T) {
	// PI -> INV -> PO with zero-length wires: delays reduce to pure LUT
	// lookups that we can reproduce by hand.
	l := lib.Default()
	b := netlist.NewBuilder("hand", l)
	pi := b.AddPI("i")
	inv := b.AddCell("u1", "INV_X1")
	po := b.AddPO("o", 0.02)
	bd := b.Design()
	b.Connect(pi, bd.Cell(inv).InputPins()[0])
	b.Connect(bd.Cell(inv).OutputPin(), po)
	d, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	d.Die = geom.BBox{XLo: 0, YLo: 0, XHi: 10, YHi: 10}
	// All pins at the same point: zero wire.
	for i := range d.Pins {
		d.Pins[i].Pos = geom.Point{X: 5, Y: 5}
	}
	f, err := rsmt.BuildAll(d, rsmt.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rcs, err := rc.ExtractFromTrees(d, f, l)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(d, rcs)
	if err != nil {
		t.Fatal(err)
	}

	master := l.MustCell("INV_X1")
	aPin := bd.Cell(inv).InputPins()[0]
	// Wire a (pi->A) has zero length but two via resistances; load on pi
	// is A's pin cap; delays on zero-length wire are zero cap * R = small.
	loadInv := rcs[d.Pin(bd.Cell(inv).OutputPin()).Net].TotalCap
	arc := master.ArcFrom("A")
	wantOut := res.Arrival[aPin] + arc.Delay.Lookup(res.Slew[aPin], loadInv)
	gotOut := res.Arrival[bd.Cell(inv).OutputPin()]
	if math.Abs(gotOut-wantOut) > 1e-9 {
		t.Fatalf("INV output arrival=%g want %g", gotOut, wantOut)
	}
	// Endpoint slack = period - arrival(po).
	if len(res.Endpoints) != 1 || res.Endpoints[0] != po {
		t.Fatalf("endpoints=%v", res.Endpoints)
	}
	wantSlack := d.ClockPeriod - res.Arrival[po]
	if math.Abs(res.EndpointSlack[0]-wantSlack) > 1e-12 {
		t.Fatalf("slack=%g want %g", res.EndpointSlack[0], wantSlack)
	}
}

func TestRegisterSetupReducesRequired(t *testing.T) {
	// Same logic ending at a DFF D pin: required time is period - setup.
	l := lib.Default()
	b := netlist.NewBuilder("reg", l)
	pi := b.AddPI("i")
	dff := b.AddCell("r1", "DFF_X1")
	po := b.AddPO("o", 0.01)
	bd := b.Design()
	b.Connect(pi, bd.Cell(dff).InputPins()[0])
	b.Connect(bd.Cell(dff).OutputPin(), po)
	d, err := b.Finish()
	if err != nil {
		t.Fatal(err)
	}
	d.Die = geom.BBox{XLo: 0, YLo: 0, XHi: 10, YHi: 10}
	for i := range d.Pins {
		d.Pins[i].Pos = geom.Point{X: 2, Y: 2}
	}
	f, _ := rsmt.BuildAll(d, rsmt.DefaultOptions())
	rcs, _ := rc.ExtractFromTrees(d, f, l)
	res, err := Run(d, rcs)
	if err != nil {
		t.Fatal(err)
	}
	dPin := bd.Cell(dff).InputPins()[0]
	var dSlack float64
	found := false
	for i, e := range res.Endpoints {
		if e == dPin {
			dSlack = res.EndpointSlack[i]
			found = true
		}
	}
	if !found {
		t.Fatal("D pin not an endpoint")
	}
	want := d.ClockPeriod - l.MustCell("DFF_X1").Setup - res.Arrival[dPin]
	if math.Abs(dSlack-want) > 1e-12 {
		t.Fatalf("D slack=%g want %g", dSlack, want)
	}
	// Q launches a fresh path: its arrival is the CK->Q delay, positive
	// and far below the D arrival + anything.
	q := bd.Cell(dff).OutputPin()
	if res.Arrival[q] <= 0 {
		t.Fatal("Q arrival should be positive (CK->Q delay)")
	}
}

func TestCriticalPathEndsAtWorstEndpoint(t *testing.T) {
	d, res := signoff(t, "spm", 1.0)
	path := res.CriticalPath(d)
	if len(path) < 2 {
		t.Fatalf("critical path too short: %d", len(path))
	}
	last := path[len(path)-1]
	worstSlack := math.Inf(1)
	var worstPin netlist.PinID
	for i, e := range res.Endpoints {
		if res.EndpointSlack[i] < worstSlack {
			worstSlack = res.EndpointSlack[i]
			worstPin = e
		}
	}
	if last != worstPin {
		t.Fatalf("critical path ends at %s, worst endpoint is %s",
			d.Pin(last).Name, d.Pin(worstPin).Name)
	}
	// Path must start at a startpoint and arrivals must be nondecreasing.
	if !d.IsStartpoint(path[0]) {
		t.Fatalf("critical path starts at non-startpoint %s", d.Pin(path[0]).Name)
	}
	for i := 1; i < len(path); i++ {
		if res.Arrival[path[i]] < res.Arrival[path[i-1]]-1e-12 {
			t.Fatal("arrival decreases along critical path")
		}
	}
}

func TestDesignsHaveNegativeSlack(t *testing.T) {
	// The benchmark generator must produce designs with timing violations
	// (otherwise there is nothing for TSteiner to optimize).
	_, res := signoff(t, "spm", 1.0)
	if res.WNS >= 0 {
		t.Fatalf("spm has WNS=%g; expected violations", res.WNS)
	}
	if res.Vios == 0 || res.TNS >= 0 {
		t.Fatalf("expected violations, got Vios=%d TNS=%g", res.Vios, res.TNS)
	}
}

func TestSlewsPositiveAndGrowAlongWires(t *testing.T) {
	d, res := signoff(t, "cic_decimator", 1.0)
	for pid := range d.Pins {
		if res.Slew[pid] < 0 {
			t.Fatalf("negative slew at pin %d", pid)
		}
	}
	// Across a net, sink slew is the RSS of driver slew and the wire
	// contribution, so it can never shrink.
	for ni := range d.Nets {
		net := d.Net(netlist.NetID(ni))
		for _, s := range net.Sinks {
			if res.Slew[s] < res.Slew[net.Driver]-1e-12 {
				t.Fatalf("slew shrank across net %s", net.Name)
			}
		}
	}
	// Startpoint boundary conditions.
	for _, pid := range d.PIs {
		if res.Slew[pid] != PISlew {
			t.Fatalf("PI slew %g want %g", res.Slew[pid], PISlew)
		}
		if res.Arrival[pid] != 0 {
			t.Fatalf("PI arrival %g want 0", res.Arrival[pid])
		}
	}
}

func TestHeavierLoadSlowsDriver(t *testing.T) {
	// Same chain, two different PO loads: heavier load must increase the
	// arrival at the endpoint.
	build := func(load float64) float64 {
		l := lib.Default()
		b := netlist.NewBuilder("load", l)
		pi := b.AddPI("i")
		inv := b.AddCell("u1", "INV_X1")
		po := b.AddPO("o", load)
		bd := b.Design()
		b.Connect(pi, bd.Cell(inv).InputPins()[0])
		b.Connect(bd.Cell(inv).OutputPin(), po)
		d, err := b.Finish()
		if err != nil {
			t.Fatal(err)
		}
		d.Die = geom.BBox{XLo: 0, YLo: 0, XHi: 10, YHi: 10}
		for i := range d.Pins {
			d.Pins[i].Pos = geom.Point{X: 1, Y: 1}
		}
		f, _ := rsmt.BuildAll(d, rsmt.DefaultOptions())
		rcs, _ := rc.ExtractFromTrees(d, f, l)
		res, err := Run(d, rcs)
		if err != nil {
			t.Fatal(err)
		}
		return res.Arrival[po]
	}
	light := build(0.005)
	heavy := build(0.2)
	if heavy <= light {
		t.Fatalf("heavier load should be slower: %g vs %g", heavy, light)
	}
}

func TestRequiredTimesAndPinSlack(t *testing.T) {
	d, res := signoff(t, "spm", 1.0)
	if len(res.Required) != d.NumPins() || len(res.PinSlack) != d.NumPins() {
		t.Fatal("per-pin annotations missing")
	}
	// Endpoint pins: required equals the constraint, pin slack equals the
	// endpoint slack.
	for i, e := range res.Endpoints {
		if math.Abs(res.PinSlack[e]-res.EndpointSlack[i]) > 1e-9 {
			t.Fatalf("endpoint %d pin slack %g != endpoint slack %g",
				e, res.PinSlack[e], res.EndpointSlack[i])
		}
	}
	// The global minimum pin slack over constrained pins equals WNS: the
	// critical path carries constant slack.
	minSlack := math.Inf(1)
	for i := range res.PinSlack {
		if !math.IsInf(res.Required[i], 1) && res.PinSlack[i] < minSlack {
			minSlack = res.PinSlack[i]
		}
	}
	if math.Abs(minSlack-res.WNS) > 1e-9 {
		t.Fatalf("min pin slack %g != WNS %g", minSlack, res.WNS)
	}
	// Feasibility: along every net edge, required[driver] ≤ required[sink]
	// − wire delay (required times are consistent).
	// (Verified structurally by the relaxation; spot-check a few nets.)
	for ni := 0; ni < len(d.Nets) && ni < 50; ni++ {
		net := d.Net(netlist.NetID(ni))
		if math.IsInf(res.Required[net.Driver], 1) {
			continue
		}
		for _, s := range net.Sinks {
			if res.Required[net.Driver] > res.Required[s]+1e-9 {
				// driver required is min over sinks minus delay ≤ sink required
				// since delays are non-negative.
				t.Fatalf("net %s: required inversion", net.Name)
			}
		}
	}
}

func TestSlewChecks(t *testing.T) {
	d, res := signoff(t, "APU", 0.5)
	if res.MaxSlewSeen <= 0 {
		t.Fatal("no slews observed")
	}
	// Count manually against the library rule.
	manual := 0
	for _, s := range res.Slew {
		if s > d.Lib.MaxSlew {
			manual++
		}
	}
	if manual != res.SlewVios {
		t.Fatalf("SlewVios=%d manual=%d", res.SlewVios, manual)
	}
	// APU carries unbuffered hub nets, so max-transition violations are
	// expected — exactly what real sign-off reports pre-buffering.
	if res.SlewVios == 0 {
		t.Log("no slew violations on this instance (unexpected but legal)")
	}
}

func TestMinArrivalAndHold(t *testing.T) {
	d, res := signoff(t, "usb_cdc_core", 0.5)
	// Min arrival never exceeds max arrival.
	for pid := range d.Pins {
		if res.ArrivalMin[pid] > res.Arrival[pid]+1e-12 {
			t.Fatalf("pin %d: min arrival %g > max arrival %g",
				pid, res.ArrivalMin[pid], res.Arrival[pid])
		}
	}
	// With an ideal clock and positive stage delays our designs meet
	// hold: WHS must be non-negative and no hold violations reported.
	if res.WHS < 0 || res.HoldVios != 0 {
		t.Fatalf("unexpected hold violations: WHS=%g vios=%d", res.WHS, res.HoldVios)
	}
	// For a register fed directly by another register's Q through logic,
	// the min path includes at least one cell delay, so WHS comfortably
	// exceeds the hold time's negation.
	if res.WHS == 0 && len(d.Cells) > 0 {
		t.Log("WHS exactly zero: no registers with connected D pins?")
	}
}

func TestNetCriticality(t *testing.T) {
	d, res := signoff(t, "spm", 1.0)
	crit := res.NetCriticality(d)
	if len(crit) != len(d.Nets) {
		t.Fatal("wrong length")
	}
	// The most critical net must carry the WNS.
	minCrit := math.Inf(1)
	for _, c := range crit {
		if c < minCrit {
			minCrit = c
		}
	}
	if math.Abs(minCrit-res.WNS) > 1e-9 {
		t.Fatalf("most critical net slack %g != WNS %g", minCrit, res.WNS)
	}
}

func TestRunSizeMismatch(t *testing.T) {
	d, _ := signoff(t, "spm", 1.0)
	if _, err := Run(d, nil); err == nil {
		t.Fatal("nil RC slice accepted")
	}
}
