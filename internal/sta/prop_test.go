package sta_test

import (
	"fmt"
	"math"
	"testing"

	"tsteiner/internal/check"
	"tsteiner/internal/lib"
	"tsteiner/internal/netlist"
	"tsteiner/internal/rc"
	"tsteiner/internal/rsmt"
	"tsteiner/internal/sta"
)

var propCfg = check.Config{Cases: 8}

func timed(spec check.DesignSpec) (*netlist.Design, []rc.NetRC, *sta.Result, error) {
	d, err := spec.Build()
	if err != nil {
		return nil, nil, nil, err
	}
	f, err := rsmt.BuildAll(d, rsmt.DefaultOptions())
	if err != nil {
		return nil, nil, nil, err
	}
	rcs, err := rc.ExtractFromTrees(d, f, lib.Default())
	if err != nil {
		return nil, nil, nil, err
	}
	res, err := sta.Run(d, rcs)
	if err != nil {
		return nil, nil, nil, err
	}
	return d, rcs, res, nil
}

// TestPropSignoffConsistency checks the paper's Eq. 1 aggregates are
// internally consistent on random designs: WNS is the worst endpoint
// slack, TNS sums exactly the negative slacks, Vios counts them, and a
// negative WNS implies at least one violation.
func TestPropSignoffConsistency(t *testing.T) {
	check.RunCfg(t, propCfg, check.DesignSpecs(), func(spec check.DesignSpec) error {
		_, _, res, err := timed(spec)
		if err != nil {
			return err
		}
		if len(res.Endpoints) == 0 {
			return fmt.Errorf("design has no timing endpoints")
		}
		minSlack := math.Inf(1)
		tns := 0.0
		vios := 0
		for _, s := range res.EndpointSlack {
			if math.IsNaN(s) {
				return fmt.Errorf("NaN endpoint slack")
			}
			if s < minSlack {
				minSlack = s
			}
			if s < 0 {
				tns += s
				vios++
			}
		}
		if res.WNS != minSlack {
			return fmt.Errorf("WNS %.12g != min endpoint slack %.12g", res.WNS, minSlack)
		}
		if math.Abs(res.TNS-tns) > 1e-9 {
			return fmt.Errorf("TNS %.12g != Σ negative slacks %.12g", res.TNS, tns)
		}
		if res.Vios != vios {
			return fmt.Errorf("Vios %d != count of negative slacks %d", res.Vios, vios)
		}
		if res.WNS < 0 && res.Vios < 1 {
			return fmt.Errorf("WNS %.12g < 0 but no violations counted", res.WNS)
		}
		// Per-pin slack at an endpoint can only be tighter than (or equal
		// to) the endpoint's own slack: downstream constraints may add.
		for i, e := range res.Endpoints {
			if res.PinSlack[e] > res.EndpointSlack[i]+1e-9 {
				return fmt.Errorf("endpoint %d: pin slack %.12g looser than endpoint slack %.12g",
					i, res.PinSlack[e], res.EndpointSlack[i])
			}
		}
		return nil
	})
}

// TestPropClockPeriodMonotone relaxes the clock: arrivals are untouched
// and required times shift by exactly the added period, so every
// endpoint slack must grow by that delta and violations cannot rise.
func TestPropClockPeriodMonotone(t *testing.T) {
	g := check.Two(check.DesignSpecs(), check.Float(0.1, 2.5))
	check.RunCfg(t, propCfg, g, func(in check.Pair[check.DesignSpec, float64]) error {
		d, rcs, base, err := timed(in.A)
		if err != nil {
			return err
		}
		delta := in.B
		d.ClockPeriod += delta
		relaxed, err := sta.Run(d, rcs)
		if err != nil {
			return err
		}
		for i := range base.EndpointSlack {
			want := base.EndpointSlack[i] + delta
			if math.Abs(relaxed.EndpointSlack[i]-want) > 1e-9 {
				return fmt.Errorf("endpoint %d: slack %.12g + %.12g != %.12g after relaxing clock",
					i, base.EndpointSlack[i], delta, relaxed.EndpointSlack[i])
			}
		}
		if relaxed.Vios > base.Vios {
			return fmt.Errorf("relaxing the clock by %.3f raised violations %d -> %d", delta, base.Vios, relaxed.Vios)
		}
		if relaxed.WNS < base.WNS {
			return fmt.Errorf("relaxing the clock lowered WNS %.12g -> %.12g", base.WNS, relaxed.WNS)
		}
		return nil
	})
}

// TestPropCornerMonotone is the corner-scaling property from the
// multi-corner issue: on random designs, derating is monotone — the
// slow corner's arrival at every reachable pin dominates typical,
// which dominates fast (delays scale up and the delay tables are
// monotone in slew), and the setup summaries order the same way:
// WNS_slow ≤ WNS_typ ≤ WNS_fast.
func TestPropCornerMonotone(t *testing.T) {
	check.RunCfg(t, propCfg, check.DesignSpecs(), func(spec check.DesignSpec) error {
		d, rcs, typ, err := timed(spec)
		if err != nil {
			return err
		}
		results, err := sta.RunCorners(d, rcs, sta.DefaultCorners()) // fast, typical, slow
		if err != nil {
			return err
		}
		fast, slow := results[0], results[2]
		for i := range typ.Arrival {
			if fast.Arrival[i] > typ.Arrival[i]+1e-12 || typ.Arrival[i] > slow.Arrival[i]+1e-12 {
				return fmt.Errorf("pin %d: arrivals not monotone fast %.12g / typ %.12g / slow %.12g",
					i, fast.Arrival[i], typ.Arrival[i], slow.Arrival[i])
			}
		}
		if slow.WNS > typ.WNS+1e-12 || typ.WNS > fast.WNS+1e-12 {
			return fmt.Errorf("WNS not monotone: slow %.12g / typ %.12g / fast %.12g",
				slow.WNS, typ.WNS, fast.WNS)
		}
		// The embedded typical result must be the identity analysis.
		for i := range typ.EndpointSlack {
			if math.Float64bits(results[1].EndpointSlack[i]) != math.Float64bits(typ.EndpointSlack[i]) {
				return fmt.Errorf("typical corner diverged from sta.Run at endpoint %d", i)
			}
		}
		return nil
	})
}
