// Corner-derated sign-off: a Corner rescales one extraction's delays,
// transitions and clock constraint uniformly, so fast/slow/typical
// analyses are pure rescalings of the same parasitics rather than
// separate extractions. The typical corner is all-ones, which makes
// RunCorner(d, rcs, TypicalCorner()) bitwise identical to Run(d, rcs):
// IEEE-754 multiplication by exactly 1.0 is the identity on every
// finite, infinite and signed-zero operand, so no floating-point
// result can move. TestOracleMultiCornerSTA pins both properties.
package sta

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"tsteiner/internal/netlist"
	"tsteiner/internal/rc"
)

// Corner is a derating corner: every cell-arc and interconnect delay is
// multiplied by DelayScale, every transition (boundary slews included)
// by SlewScale, and the clock period by ClockScale. Setup and hold
// constraints scale with DelayScale — they are cell delays too.
type Corner struct {
	Name       string
	DelayScale float64
	SlewScale  float64
	ClockScale float64
}

// TypicalCorner is the identity corner: RunCorner with it is bitwise
// identical to Run.
func TypicalCorner() Corner {
	return Corner{Name: "typical", DelayScale: 1.0, SlewScale: 1.0, ClockScale: 1.0}
}

// FastCorner derates toward the fast process/voltage/temperature
// extreme: shorter delays, crisper transitions, same clock. Setup gets
// easier and hold gets harder — the corner that catches hold escapes.
func FastCorner() Corner {
	return Corner{Name: "fast", DelayScale: 0.85, SlewScale: 0.90, ClockScale: 1.0}
}

// SlowCorner derates toward the slow extreme: longer delays, degraded
// transitions, same clock. The setup-critical corner.
func SlowCorner() Corner {
	return Corner{Name: "slow", DelayScale: 1.15, SlewScale: 1.10, ClockScale: 1.0}
}

// DefaultCorners is the standard three-corner sign-off matrix in
// analysis order: fast, typical, slow.
func DefaultCorners() []Corner {
	return []Corner{FastCorner(), TypicalCorner(), SlowCorner()}
}

// IsTypical reports whether the corner is the identity rescaling.
func (c Corner) IsTypical() bool {
	return c.DelayScale == 1.0 && c.SlewScale == 1.0 && c.ClockScale == 1.0
}

// Validate rejects corners that would corrupt the analysis: scales must
// be positive and finite, and the name non-empty (results are keyed on
// it in reports).
func (c Corner) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("sta: corner with empty name")
	}
	for _, s := range []struct {
		name string
		v    float64
	}{{"DelayScale", c.DelayScale}, {"SlewScale", c.SlewScale}, {"ClockScale", c.ClockScale}} {
		if !(s.v > 0) || math.IsInf(s.v, 1) {
			return fmt.Errorf("sta: corner %q: %s %v not in (0, +Inf)", c.Name, s.name, s.v)
		}
	}
	return nil
}

// ParseCorners parses a -corners flag value: a comma-separated list of
// preset names ("fast", "typical", "slow"), the shorthand "default"
// for the full three-corner matrix, or custom corners spelled
// "name:delayScale:slewScale:clockScale".
func ParseCorners(spec string) ([]Corner, error) {
	var out []Corner
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		switch tok {
		case "":
			return nil, fmt.Errorf("sta: empty corner in spec %q", spec)
		case "default":
			out = append(out, DefaultCorners()...)
		case "fast":
			out = append(out, FastCorner())
		case "typical":
			out = append(out, TypicalCorner())
		case "slow":
			out = append(out, SlowCorner())
		default:
			parts := strings.Split(tok, ":")
			if len(parts) != 4 {
				return nil, fmt.Errorf("sta: corner %q: want a preset name or name:delay:slew:clock", tok)
			}
			c := Corner{Name: parts[0]}
			for i, dst := range []*float64{&c.DelayScale, &c.SlewScale, &c.ClockScale} {
				v, err := strconv.ParseFloat(parts[i+1], 64)
				if err != nil {
					return nil, fmt.Errorf("sta: corner %q: bad scale %q: %w", tok, parts[i+1], err)
				}
				*dst = v
			}
			if err := c.Validate(); err != nil {
				return nil, err
			}
			out = append(out, c)
		}
	}
	if err := validateCorners(out); err != nil {
		return nil, err
	}
	return out, nil
}

// validateCorners checks each corner and rejects duplicate names (the
// matrix is keyed on them).
func validateCorners(corners []Corner) error {
	if len(corners) == 0 {
		return fmt.Errorf("sta: empty corner list")
	}
	seen := make(map[string]bool, len(corners))
	for _, c := range corners {
		if err := c.Validate(); err != nil {
			return err
		}
		if seen[c.Name] {
			return fmt.Errorf("sta: duplicate corner name %q", c.Name)
		}
		seen[c.Name] = true
	}
	return nil
}

// RunCorner performs the PERT traversal with the corner's derating
// applied uniformly. RunCorner(d, rcs, TypicalCorner()) is bitwise
// identical to Run(d, rcs).
func RunCorner(d *netlist.Design, rcs []rc.NetRC, c Corner) (*Result, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return run(d, rcs, c)
}

// RunCorners analyzes the same parasitics at every corner, returning
// one Result per corner in input order. Deterministic by construction:
// corners are independent and analyzed sequentially.
func RunCorners(d *netlist.Design, rcs []rc.NetRC, corners []Corner) ([]*Result, error) {
	if err := validateCorners(corners); err != nil {
		return nil, err
	}
	out := make([]*Result, len(corners))
	for i, c := range corners {
		r, err := run(d, rcs, c)
		if err != nil {
			return nil, fmt.Errorf("sta: corner %q: %w", c.Name, err)
		}
		out[i] = r
	}
	return out, nil
}

// CornerMetrics is the compact per-corner sign-off summary used in
// corner-matrix tables and job results.
type CornerMetrics struct {
	Corner   Corner
	WNS, TNS float64
	Vios     int
	WHS      float64
	HoldVios int
	SlewVios int
}

// CornerSummary extracts the matrix-row summary from a corner Result.
func (r *Result) CornerSummary() CornerMetrics {
	return CornerMetrics{
		Corner: r.Corner,
		WNS:    r.WNS, TNS: r.TNS, Vios: r.Vios,
		WHS: r.WHS, HoldVios: r.HoldVios, SlewVios: r.SlewVios,
	}
}

// CornerSlack maps a typical-corner endpoint slack to the corner's
// slack under the uniform derating, for the common same-setup
// approximation used by the differentiable matrix penalty:
//
//	slack_c = ClockScale·T − DelayScale·arrival_typ − DelayScale·setup
//	        = DelayScale·slack_typ + (ClockScale − DelayScale)·T
//
// exact when slew-dependent table lookups are linear in the derating
// (the affine model of lib.NewLUTFromModel at matched slews); an
// upper-level approximation otherwise. The core refiner uses it to
// derive per-corner penalties from one predicted slack vector.
func (c Corner) CornerSlack(slackTyp, clockPeriod float64) float64 {
	return c.DelayScale*slackTyp + (c.ClockScale-c.DelayScale)*clockPeriod
}
