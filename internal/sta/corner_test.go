package sta

import (
	"math/rand"
	"testing"

	"tsteiner/internal/netlist"
)

// TestCornerTypicalBitIdentical pins backward compatibility: RunCorner
// at the identity corner (and the single-entry RunCorners) must be
// bitwise identical to Run on the same parasitics.
func TestCornerTypicalBitIdentical(t *testing.T) {
	fx := newWindowFixture(t, "spm", 1.0)
	got, err := RunCorner(fx.d, fx.rcs, TypicalCorner())
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, got, fx.full)

	multi, err := RunCorners(fx.d, fx.rcs, []Corner{TypicalCorner()})
	if err != nil {
		t.Fatal(err)
	}
	if len(multi) != 1 {
		t.Fatalf("RunCorners returned %d results for 1 corner", len(multi))
	}
	requireBitIdentical(t, multi[0], fx.full)
}

// TestCornerRunCornersOrdered: RunCorners returns one result per
// corner in input order, each bitwise identical to a standalone
// RunCorner at that corner.
func TestCornerRunCornersOrdered(t *testing.T) {
	fx := newWindowFixture(t, "cic_decimator", 1.0)
	corners := DefaultCorners()
	multi, err := RunCorners(fx.d, fx.rcs, corners)
	if err != nil {
		t.Fatal(err)
	}
	if len(multi) != len(corners) {
		t.Fatalf("RunCorners returned %d results for %d corners", len(multi), len(corners))
	}
	for i, c := range corners {
		if multi[i].Corner != c {
			t.Fatalf("result %d carries corner %q, want %q", i, multi[i].Corner.Name, c.Name)
		}
		want, err := RunCorner(fx.d, fx.rcs, c)
		if err != nil {
			t.Fatal(err)
		}
		requireBitIdentical(t, multi[i], want)
	}
}

// TestCornerRetimerMatchesFullRun extends the windowed-STA contract to
// derated corners: chained single-net moves re-timed by a per-corner
// Retimer must stay bit-identical to a from-scratch RunCorner.
func TestCornerRetimerMatchesFullRun(t *testing.T) {
	for _, c := range []Corner{FastCorner(), SlowCorner()} {
		t.Run(c.Name, func(t *testing.T) {
			fx := newWindowFixture(t, "spm", 1.0)
			rt, err := NewCornerRetimer(fx.d, c)
			if err != nil {
				t.Fatal(err)
			}
			prev, err := RunCorner(fx.d, fx.rcs, c)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(1303))
			trials := 20
			if testing.Short() {
				trials = 6
			}
			for trial := 0; trial < trials; trial++ {
				ni := netlist.NetID(rng.Intn(len(fx.d.Nets)))
				if !fx.jitterNet(t, ni, rng) {
					continue
				}
				got, err := rt.Retime(prev, fx.rcs, []netlist.NetID{ni})
				if err != nil {
					t.Fatal(err)
				}
				want, err := RunCorner(fx.d, fx.rcs, c)
				if err != nil {
					t.Fatal(err)
				}
				requireBitIdentical(t, got, want)
				prev = got
			}
		})
	}
}

// TestCornerRetimerRejectsMismatch: feeding a typical-corner result to
// a derated Retimer must be a typed error, not a silently wrong
// annotation.
func TestCornerRetimerRejectsMismatch(t *testing.T) {
	fx := newWindowFixture(t, "spm", 0.5)
	rt, err := NewCornerRetimer(fx.d, SlowCorner())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Retime(fx.full, fx.rcs, []netlist.NetID{0}); err == nil {
		t.Fatal("corner-mismatched Retime succeeded")
	}
}

// TestCornerValidate covers the corner sanity checks and the
// duplicate-name rejection in RunCorners.
func TestCornerValidate(t *testing.T) {
	bad := []Corner{
		{Name: "", DelayScale: 1, SlewScale: 1, ClockScale: 1},
		{Name: "z", DelayScale: 0, SlewScale: 1, ClockScale: 1},
		{Name: "z", DelayScale: 1, SlewScale: -2, ClockScale: 1},
		{Name: "z", DelayScale: 1, SlewScale: 1},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("corner %+v validated", c)
		}
	}
	for _, c := range DefaultCorners() {
		if err := c.Validate(); err != nil {
			t.Fatalf("preset %q failed validation: %v", c.Name, err)
		}
	}
	if !TypicalCorner().IsTypical() || FastCorner().IsTypical() {
		t.Fatal("IsTypical misclassifies the presets")
	}

	fx := newWindowFixture(t, "spm", 0.5)
	if _, err := RunCorners(fx.d, fx.rcs, []Corner{FastCorner(), FastCorner()}); err == nil {
		t.Fatal("duplicate corner names accepted")
	}
	if _, err := RunCorners(fx.d, fx.rcs, nil); err == nil {
		t.Fatal("empty corner list accepted")
	}
}

// TestParseCorners covers the -corners flag grammar.
func TestParseCorners(t *testing.T) {
	got, err := ParseCorners("fast, typical ,slow")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != FastCorner() || got[1] != TypicalCorner() || got[2] != SlowCorner() {
		t.Fatalf("preset list parsed to %+v", got)
	}
	got, err = ParseCorners("default")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("default parsed to %d corners", len(got))
	}
	got, err = ParseCorners("hot:1.2:1.05:0.95")
	if err != nil {
		t.Fatal(err)
	}
	want := Corner{Name: "hot", DelayScale: 1.2, SlewScale: 1.05, ClockScale: 0.95}
	if len(got) != 1 || got[0] != want {
		t.Fatalf("custom corner parsed to %+v, want %+v", got, want)
	}
	for _, bad := range []string{"", "warm", "hot:1.2:1.05", "hot:x:1:1", "hot:0:1:1", "fast,,slow", "fast,fast"} {
		if _, err := ParseCorners(bad); err == nil {
			t.Fatalf("ParseCorners(%q) succeeded", bad)
		}
	}
}
