package bench

import (
	"flag"
	"fmt"
	"os"
	"testing"

	"tsteiner/internal/tensor"
)

var (
	benchGate = flag.Bool("benchgate", false,
		"run the allocs/op regression gate against the committed BENCH_refine.json")
	benchUpdate = flag.Bool("benchupdate", false,
		"re-measure the pinned workload and rewrite BENCH_refine.json")
)

func newWorkload(tb testing.TB, workers int) *Workload {
	tb.Helper()
	w, err := NewWorkload(workers)
	if err != nil {
		tb.Fatal(err)
	}
	return w
}

// BenchmarkRefineLoop measures the pooled (workspace + forward-memo)
// refine loop end to end — the paper's Algorithm 1 on the pinned workload.
func BenchmarkRefineLoop(b *testing.B) {
	w := newWorkload(b, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.RunRefine(false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRefineLoopAllocating measures the allocating reference path
// (Options.DisableWorkspace), the before side of the pooling comparison.
func BenchmarkRefineLoopAllocating(b *testing.B) {
	w := newWorkload(b, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.RunRefine(true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGNNForward measures one evaluator forward pass on a reused
// workspace tape — the inner kernel of every refine iteration.
func BenchmarkGNNForward(b *testing.B) {
	w := newWorkload(b, 1)
	ws := tensor.NewWorkspace()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tp := ws.Tape()
		xs, ys, err := w.Batch.SteinerLeaves(tp, w.Prepared.Forest)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := w.Model.Forward(tp, w.Batch, xs, ys, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSTA measures one full sign-off STA pass over pre-extracted
// parasitics of the pinned workload.
func BenchmarkSTA(b *testing.B) {
	w := newWorkload(b, 1)
	st, err := w.PrepareSTA()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// TestBenchReplayByteIdentical is the replay gate: the pinned workload's
// refine outcome — metrics, iteration count and the FNV digest of the
// final Steiner coordinates — must be identical between the pooled and
// allocating paths, across worker counts, and equal to the committed
// baseline. Runs in short mode so verify.sh always exercises it.
func TestBenchReplayByteIdentical(t *testing.T) {
	outcomes := map[string]*RefineOutcome{}
	for _, c := range []struct {
		key       string
		workers   int
		disableWS bool
	}{
		{"ws/w=1", 1, false},
		{"ws/w=4", 4, false},
		{"alloc/w=1", 1, true},
	} {
		out, err := newWorkload(t, c.workers).RunRefine(c.disableWS)
		if err != nil {
			t.Fatalf("%s: %v", c.key, err)
		}
		outcomes[c.key] = out
	}
	want := outcomes["alloc/w=1"]
	for key, got := range outcomes {
		if *got != *want {
			t.Errorf("%s outcome %+v != alloc/w=1 %+v", key, *got, *want)
		}
	}

	path, err := BaselinePath()
	if err != nil {
		t.Fatal(err)
	}
	base, err := LoadBaseline(path)
	if os.IsNotExist(err) {
		t.Skipf("no committed baseline at %s; record one with -benchupdate", path)
	}
	if err != nil {
		t.Fatal(err)
	}
	if base.Workload != WorkloadName || base.Scale != WorkloadScale ||
		base.ModelSeed != ModelSeed || base.Iters != RefineIters {
		t.Fatalf("baseline pins %s@%v seed=%d iters=%d, harness pins %s@%v seed=%d iters=%d: re-record",
			base.Workload, base.Scale, base.ModelSeed, base.Iters,
			WorkloadName, WorkloadScale, ModelSeed, RefineIters)
	}
	if *want != base.Metrics {
		t.Errorf("refine outcome %+v != recorded baseline %+v", *want, base.Metrics)
	}
}

// measure runs fn under testing.Benchmark and returns its cost record.
func measure(fn func(b *testing.B)) Record {
	r := testing.Benchmark(fn)
	return Record{
		NsOp:     float64(r.NsPerOp()),
		BytesOp:  r.AllocedBytesPerOp(),
		AllocsOp: r.AllocsPerOp(),
	}
}

// TestBenchAllocGate is the allocation-regression gate verify.sh runs
// with -benchgate. It re-measures the refine loop and fails when the
// pooled path's allocs/op regress more than 10% over the committed
// baseline, or when pooling stops cutting allocations by at least half
// relative to the allocating reference path.
func TestBenchAllocGate(t *testing.T) {
	if !*benchGate {
		t.Skip("allocation gate disabled; enable with -benchgate")
	}
	path, err := BaselinePath()
	if err != nil {
		t.Fatal(err)
	}
	base, err := LoadBaseline(path)
	if err != nil {
		t.Fatalf("gate needs a committed baseline: %v", err)
	}
	rec, ok := base.Benchmarks["refine_loop"]
	if !ok {
		t.Fatalf("baseline %s has no refine_loop record", path)
	}
	pooled := measure(BenchmarkRefineLoop)
	allocating := measure(BenchmarkRefineLoopAllocating)
	t.Logf("refine_loop pooled: %+v (baseline %+v), allocating: %+v", pooled, rec, allocating)
	if limit := rec.AllocsOp + rec.AllocsOp/10; pooled.AllocsOp > limit {
		t.Errorf("pooled refine loop allocs/op regressed: %d > %d (baseline %d +10%%)",
			pooled.AllocsOp, limit, rec.AllocsOp)
	}
	if pooled.AllocsOp*2 > allocating.AllocsOp {
		t.Errorf("pooling no longer halves allocations: pooled %d vs allocating %d allocs/op",
			pooled.AllocsOp, allocating.AllocsOp)
	}
}

// TestBenchUpdateBaseline re-measures every pinned benchmark and rewrites
// BENCH_refine.json. Run it after intentional performance changes:
// go test ./internal/bench -run TestBenchUpdateBaseline -benchupdate
func TestBenchUpdateBaseline(t *testing.T) {
	if !*benchUpdate {
		t.Skip("baseline recorder disabled; enable with -benchupdate")
	}
	out, err := newWorkload(t, 1).RunRefine(false)
	if err != nil {
		t.Fatal(err)
	}
	base := &Baseline{
		Workload:  WorkloadName,
		Scale:     WorkloadScale,
		ModelSeed: ModelSeed,
		Iters:     RefineIters,
		Benchmarks: map[string]Record{
			"refine_loop":            measure(BenchmarkRefineLoop),
			"refine_loop_allocating": measure(BenchmarkRefineLoopAllocating),
			"gnn_forward":            measure(BenchmarkGNNForward),
			"sta":                    measure(BenchmarkSTA),
		},
		Metrics: *out,
	}
	path, err := BaselinePath()
	if err != nil {
		t.Fatal(err)
	}
	if err := base.Write(path); err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(path)
	fmt.Printf("recorded %s:\n%s", path, raw)
}
