package bench

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"testing"

	"tsteiner/internal/tensor"
)

var (
	benchGate = flag.Bool("benchgate", false,
		"run the allocs/op regression gate against the committed BENCH_refine.json")
	benchUpdate = flag.Bool("benchupdate", false,
		"re-measure the pinned workload and rewrite BENCH_refine.json")
)

func newWorkload(tb testing.TB, workers int) *Workload {
	tb.Helper()
	w, err := NewWorkload(workers)
	if err != nil {
		tb.Fatal(err)
	}
	return w
}

// BenchmarkRefineLoop measures the pooled (workspace + forward-memo)
// refine loop end to end — the paper's Algorithm 1 on the pinned workload.
func BenchmarkRefineLoop(b *testing.B) {
	w := newWorkload(b, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.RunRefine(false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRefineLoopAllocating measures the allocating reference path
// (Options.DisableWorkspace), the before side of the pooling comparison.
func BenchmarkRefineLoopAllocating(b *testing.B) {
	w := newWorkload(b, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.RunRefine(true); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGNNForward measures one evaluator forward pass on a reused
// workspace tape — the inner kernel of every refine iteration.
func BenchmarkGNNForward(b *testing.B) {
	w := newWorkload(b, 1)
	ws := tensor.NewWorkspace()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tp := ws.Tape()
		xs, ys, err := w.Batch.SteinerLeaves(tp, w.Prepared.Forest)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := w.Model.Forward(tp, w.Batch, xs, ys, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGNNForwardBatched measures one fused BatchLanes-candidate
// forward pass on a reused workspace tape — the batched inner kernel of
// the multi-candidate refine iteration. Divide by BatchLanes for the
// per-candidate cost (measureLanes and the baseline recorder do).
func BenchmarkGNNForwardBatched(b *testing.B) {
	w := newWorkload(b, 1)
	cx, cy, err := w.CandidateCoords(BatchLanes)
	if err != nil {
		b.Fatal(err)
	}
	ws := tensor.NewWorkspace()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tp := ws.Tape()
		if _, err := w.Model.ForwardBatch(tp, w.Batch, BatchLanes, cx, cy, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGNNForwardSequentialLanes is the before side of the batching
// comparison: the same BatchLanes candidates evaluated by K sequential
// forwards, one fresh tape per candidate — exactly the refine loop's
// sequential reference path (the DisableWorkspace branch the batched
// replay gate holds byte-identical to the fused path).
func BenchmarkGNNForwardSequentialLanes(b *testing.B) {
	w := newWorkload(b, 1)
	cx, cy, err := w.CandidateCoords(BatchLanes)
	if err != nil {
		b.Fatal(err)
	}
	n := w.Batch.NSteiner
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := 0; k < BatchLanes; k++ {
			tp := tensor.NewTape()
			xs, ys, err := w.Batch.LeavesFromCoords(tp, cx[k*n:(k+1)*n], cy[k*n:(k+1)*n])
			if err != nil {
				b.Fatal(err)
			}
			if _, err := w.Model.Forward(tp, w.Batch, xs, ys, false); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkRefineBatched measures the multi-candidate refine loop:
// BatchLanes line-search candidates per iteration, one fused forward
// each iteration plus the lane-granular gradient memo.
func BenchmarkRefineBatched(b *testing.B) {
	w := newWorkload(b, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.RunRefineBatched(false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSTA measures one full sign-off STA pass over pre-extracted
// parasitics of the pinned workload.
func BenchmarkSTA(b *testing.B) {
	w := newWorkload(b, 1)
	st, err := w.PrepareSTA()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := st.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// TestBenchReplayByteIdentical is the replay gate: the pinned workload's
// refine outcome — metrics, iteration count and the FNV digest of the
// final Steiner coordinates — must be identical between the pooled and
// allocating paths, across worker counts, and equal to the committed
// baseline. Runs in short mode so verify.sh always exercises it.
func TestBenchReplayByteIdentical(t *testing.T) {
	outcomes := map[string]*RefineOutcome{}
	for _, c := range []struct {
		key       string
		workers   int
		disableWS bool
	}{
		{"ws/w=1", 1, false},
		{"ws/w=4", 4, false},
		{"alloc/w=1", 1, true},
	} {
		out, err := newWorkload(t, c.workers).RunRefine(c.disableWS)
		if err != nil {
			t.Fatalf("%s: %v", c.key, err)
		}
		outcomes[c.key] = out
	}
	want := outcomes["alloc/w=1"]
	for key, got := range outcomes {
		if *got != *want {
			t.Errorf("%s outcome %+v != alloc/w=1 %+v", key, *got, *want)
		}
	}

	path, err := BaselinePath()
	if err != nil {
		t.Fatal(err)
	}
	base, err := LoadBaseline(path)
	if os.IsNotExist(err) {
		t.Skipf("no committed baseline at %s; record one with -benchupdate", path)
	}
	if err != nil {
		t.Fatal(err)
	}
	if base.Workload != WorkloadName || base.Scale != WorkloadScale ||
		base.ModelSeed != ModelSeed || base.Iters != RefineIters {
		t.Fatalf("baseline pins %s@%v seed=%d iters=%d, harness pins %s@%v seed=%d iters=%d: re-record",
			base.Workload, base.Scale, base.ModelSeed, base.Iters,
			WorkloadName, WorkloadScale, ModelSeed, RefineIters)
	}
	if *want != base.Metrics {
		t.Errorf("refine outcome %+v != recorded baseline %+v", *want, base.Metrics)
	}
}

// TestBatchReplayByteIdentical is the batched replay gate: the
// multi-candidate refine outcome must be identical between the fused
// ForwardBatch path and the sequential-forwards reference, across worker
// counts, and equal to the committed baseline's metrics_batched.
func TestBatchReplayByteIdentical(t *testing.T) {
	outcomes := map[string]*RefineOutcome{}
	for _, c := range []struct {
		key       string
		workers   int
		disableWS bool
	}{
		{"ws/w=1", 1, false},
		{"ws/w=4", 4, false},
		{"alloc/w=1", 1, true},
	} {
		out, err := newWorkload(t, c.workers).RunRefineBatched(c.disableWS)
		if err != nil {
			t.Fatalf("%s: %v", c.key, err)
		}
		outcomes[c.key] = out
	}
	want := outcomes["alloc/w=1"]
	for key, got := range outcomes {
		if *got != *want {
			t.Errorf("%s batched outcome %+v != alloc/w=1 %+v", key, *got, *want)
		}
	}

	path, err := BaselinePath()
	if err != nil {
		t.Fatal(err)
	}
	base, err := LoadBaseline(path)
	if os.IsNotExist(err) {
		t.Skipf("no committed baseline at %s; record one with -benchupdate", path)
	}
	if err != nil {
		t.Fatal(err)
	}
	if base.MetricsBatched == (RefineOutcome{}) {
		t.Skipf("baseline %s predates batched metrics; re-record with -benchupdate", path)
	}
	if *want != base.MetricsBatched {
		t.Errorf("batched refine outcome %+v != recorded baseline %+v", *want, base.MetricsBatched)
	}
}

// measure runs fn under testing.Benchmark and returns its cost record.
func measure(fn func(b *testing.B)) Record {
	r := testing.Benchmark(fn)
	return Record{
		NsOp:     float64(r.NsPerOp()),
		BytesOp:  r.AllocedBytesPerOp(),
		AllocsOp: r.AllocsPerOp(),
	}
}

// measureLanes runs a batched benchmark and normalizes every cost to per
// candidate — total divided by lanes, with the lane count recorded — so
// the entry stays comparable to its unbatched counterpart and across
// batch sizes.
func measureLanes(fn func(b *testing.B), lanes int) Record {
	r := measure(fn)
	return Record{
		NsOp:     r.NsOp / float64(lanes),
		BytesOp:  r.BytesOp / int64(lanes),
		AllocsOp: r.AllocsOp / int64(lanes),
		Lanes:    lanes,
	}
}

// TestBenchAllocGate is the allocation-regression gate verify.sh runs
// with -benchgate. It re-measures the refine loop and fails when the
// pooled path's allocs/op regress more than 10% over the committed
// baseline, or when pooling stops cutting allocations by at least half
// relative to the allocating reference path.
func TestBenchAllocGate(t *testing.T) {
	if !*benchGate {
		t.Skip("allocation gate disabled; enable with -benchgate")
	}
	path, err := BaselinePath()
	if err != nil {
		t.Fatal(err)
	}
	base, err := LoadBaseline(path)
	if err != nil {
		t.Fatalf("gate needs a committed baseline: %v", err)
	}
	if _, ok := base.Benchmarks["refine_loop"]; !ok {
		t.Fatalf("baseline %s has no refine_loop record", path)
	}
	pooled := measure(BenchmarkRefineLoop)
	allocating := measure(BenchmarkRefineLoopAllocating)
	t.Logf("refine_loop pooled: %+v (baseline %+v), allocating: %+v",
		pooled, base.Benchmarks["refine_loop"], allocating)
	if err := base.CheckAllocGate(pooled, allocating); err != nil {
		t.Error(err)
	}

	if brec, ok := base.Benchmarks["refine_batched"]; ok {
		batched := measureLanes(BenchmarkRefineBatched, BatchLanes)
		t.Logf("refine_batched (per candidate): %+v (baseline %+v)", batched, brec)
		if err := base.CheckBatchedAllocGate(batched); err != nil {
			t.Error(err)
		}
	}

	// Live regression canary for the batching speedup. The committed
	// baseline carries the >=1.5x per-candidate claim (recorded under
	// quiet conditions and re-checked statically by
	// TestBatchedBaselineMargin); here the sequential side's GC timing
	// swings by ~15% run to run, so the live floor is 1.3x — low enough
	// not to flake, high enough to catch the fused path genuinely losing
	// its advantage.
	fused := measureLanes(BenchmarkGNNForwardBatched, BatchLanes)
	seq := measureLanes(BenchmarkGNNForwardSequentialLanes, BatchLanes)
	t.Logf("gnn forward per candidate: fused %.0f ns vs sequential %.0f ns (%.2fx)",
		fused.NsOp, seq.NsOp, seq.NsOp/fused.NsOp)
	if err := CheckBatchedMargin(fused, seq, 1.3); err != nil {
		t.Error(err)
	}
}

// TestBatchedBaselineMargin pins the batching acceptance claim against
// the committed baseline: the recorded fused per-candidate forward must
// be at least 1.5x cheaper than the recorded sequential reference
// (K fresh-tape forwards over the same candidates). Deterministic — it
// reads BENCH_refine.json, it does not re-measure — so it runs in every
// `go test ./...`; the recorder enforces the same margin at record time.
func TestBatchedBaselineMargin(t *testing.T) {
	path, err := BaselinePath()
	if err != nil {
		t.Fatal(err)
	}
	base, err := LoadBaseline(path)
	if os.IsNotExist(err) {
		t.Skipf("no committed baseline at %s; record one with -benchupdate", path)
	}
	if err != nil {
		t.Fatal(err)
	}
	switch err := base.CheckBaselineMargin(); {
	case errors.Is(err, ErrMissingRecord):
		t.Skipf("baseline %s predates batched records; re-record with -benchupdate", path)
	case errors.Is(err, ErrStaleBaseline):
		t.Fatalf("%v: re-record", err)
	case err != nil:
		t.Error(err)
	}
}

// TestBenchUpdateBaseline re-measures every pinned benchmark and rewrites
// BENCH_refine.json. Run it after intentional performance changes:
// go test ./internal/bench -run TestBenchUpdateBaseline -benchupdate
func TestBenchUpdateBaseline(t *testing.T) {
	if !*benchUpdate {
		t.Skip("baseline recorder disabled; enable with -benchupdate")
	}
	w := newWorkload(t, 1)
	out, err := w.RunRefine(false)
	if err != nil {
		t.Fatal(err)
	}
	outBatched, err := w.RunRefineBatched(false)
	if err != nil {
		t.Fatal(err)
	}
	fused := measureLanes(BenchmarkGNNForwardBatched, BatchLanes)
	seq := measureLanes(BenchmarkGNNForwardSequentialLanes, BatchLanes)
	if fused.NsOp*1.5 > seq.NsOp {
		t.Fatalf("refusing to record a baseline below the 1.5x batched margin: "+
			"fused %.0f ns/candidate vs sequential %.0f (%.2fx) — re-run on a quiet machine",
			fused.NsOp, seq.NsOp, seq.NsOp/fused.NsOp)
	}
	base := &Baseline{
		Workload:  WorkloadName,
		Scale:     WorkloadScale,
		ModelSeed: ModelSeed,
		Iters:     RefineIters,
		Benchmarks: map[string]Record{
			"refine_loop":            measure(BenchmarkRefineLoop),
			"refine_loop_allocating": measure(BenchmarkRefineLoopAllocating),
			"refine_batched":         measureLanes(BenchmarkRefineBatched, BatchLanes),
			"gnn_forward":            measure(BenchmarkGNNForward),
			"gnn_forward_batched":    fused,
			"gnn_forward_sequential": seq,
			"sta":                    measure(BenchmarkSTA),
		},
		Metrics:        *out,
		MetricsBatched: *outBatched,
	}
	path, err := BaselinePath()
	if err != nil {
		t.Fatal(err)
	}
	if err := base.Write(path); err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(path)
	fmt.Printf("recorded %s:\n%s", path, raw)
}
