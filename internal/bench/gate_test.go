package bench

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// syntheticBaseline builds a baseline whose records make the gate pass
// for the given measurements; tests then perturb one side at a time.
func syntheticBaseline() *Baseline {
	return &Baseline{
		Workload: WorkloadName, Scale: WorkloadScale,
		ModelSeed: ModelSeed, Iters: RefineIters,
		Benchmarks: map[string]Record{
			"refine_loop":            {NsOp: 1e6, BytesOp: 4096, AllocsOp: 100},
			"refine_batched":         {NsOp: 5e5, BytesOp: 2048, AllocsOp: 50, Lanes: BatchLanes},
			"gnn_forward_batched":    {NsOp: 1000, AllocsOp: 10, Lanes: BatchLanes},
			"gnn_forward_sequential": {NsOp: 2000, AllocsOp: 40, Lanes: BatchLanes},
		},
	}
}

// TestAllocGateFailureBranches: each way the alloc gate can fail is a
// typed error, not a panic and not a silent pass.
func TestAllocGateFailureBranches(t *testing.T) {
	b := syntheticBaseline()
	pooled := Record{AllocsOp: 100}
	allocating := Record{AllocsOp: 300}
	if err := b.CheckAllocGate(pooled, allocating); err != nil {
		t.Fatalf("clean gate failed: %v", err)
	}

	// Pooled allocs/op above baseline +10%.
	if err := b.CheckAllocGate(Record{AllocsOp: 111}, allocating); !errors.Is(err, ErrAllocRegression) {
		t.Fatalf("regressed allocs/op: got %v, want ErrAllocRegression", err)
	}
	// Boundary: exactly +10% passes.
	if err := b.CheckAllocGate(Record{AllocsOp: 110}, allocating); err != nil {
		t.Fatalf("allocs/op at the +10%% limit rejected: %v", err)
	}
	// Pooling no longer halves allocations.
	if err := b.CheckAllocGate(pooled, Record{AllocsOp: 150}); !errors.Is(err, ErrPoolingMargin) {
		t.Fatalf("lost pooling margin: got %v, want ErrPoolingMargin", err)
	}
	// Missing baseline record.
	delete(b.Benchmarks, "refine_loop")
	if err := b.CheckAllocGate(pooled, allocating); !errors.Is(err, ErrMissingRecord) {
		t.Fatalf("missing refine_loop: got %v, want ErrMissingRecord", err)
	}
}

// TestBatchedGateFailureBranches covers the per-candidate batched gate
// and the live margin check.
func TestBatchedGateFailureBranches(t *testing.T) {
	b := syntheticBaseline()
	if err := b.CheckBatchedAllocGate(Record{AllocsOp: 50}); err != nil {
		t.Fatalf("clean batched gate failed: %v", err)
	}
	if err := b.CheckBatchedAllocGate(Record{AllocsOp: 56}); !errors.Is(err, ErrAllocRegression) {
		t.Fatalf("regressed batched allocs/op: got %v, want ErrAllocRegression", err)
	}
	delete(b.Benchmarks, "refine_batched")
	if err := b.CheckBatchedAllocGate(Record{AllocsOp: 50}); !errors.Is(err, ErrMissingRecord) {
		t.Fatalf("missing refine_batched: got %v, want ErrMissingRecord", err)
	}

	if err := CheckBatchedMargin(Record{NsOp: 1000}, Record{NsOp: 1500}, 1.3); err != nil {
		t.Fatalf("1.5x margin rejected at 1.3x floor: %v", err)
	}
	if err := CheckBatchedMargin(Record{NsOp: 1000}, Record{NsOp: 1200}, 1.3); !errors.Is(err, ErrBatchMargin) {
		t.Fatalf("lost batch margin: got %v, want ErrBatchMargin", err)
	}
}

// TestBaselineMarginFailureBranches: the static baseline check reports
// missing records, stale lane pins and a sub-1.5x recorded margin as
// distinct typed errors.
func TestBaselineMarginFailureBranches(t *testing.T) {
	b := syntheticBaseline()
	if err := b.CheckBaselineMargin(); err != nil {
		t.Fatalf("clean baseline margin failed: %v", err)
	}

	b.Benchmarks["gnn_forward_batched"] = Record{NsOp: 1500, Lanes: BatchLanes}
	if err := b.CheckBaselineMargin(); !errors.Is(err, ErrBatchMargin) {
		t.Fatalf("sub-1.5x recorded margin: got %v, want ErrBatchMargin", err)
	}

	b.Benchmarks["gnn_forward_batched"] = Record{NsOp: 1000, Lanes: BatchLanes + 1}
	if err := b.CheckBaselineMargin(); !errors.Is(err, ErrStaleBaseline) {
		t.Fatalf("stale lane pin: got %v, want ErrStaleBaseline", err)
	}

	delete(b.Benchmarks, "gnn_forward_sequential")
	b.Benchmarks["gnn_forward_batched"] = Record{NsOp: 1000, Lanes: BatchLanes}
	if err := b.CheckBaselineMargin(); !errors.Is(err, ErrMissingRecord) {
		t.Fatalf("missing batched records: got %v, want ErrMissingRecord", err)
	}
}

// TestLoadBaselineErrors: a corrupt or absent baseline file is a
// descriptive error, never a partial Baseline.
func TestLoadBaselineErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := LoadBaseline(filepath.Join(dir, "absent.json")); !os.IsNotExist(err) {
		t.Fatalf("absent baseline: got %v, want IsNotExist", err)
	}
	bad := filepath.Join(dir, "corrupt.json")
	if err := os.WriteFile(bad, []byte(`{"workload": `), 0o644); err != nil {
		t.Fatal(err)
	}
	if b, err := LoadBaseline(bad); err == nil || b != nil {
		t.Fatalf("corrupt baseline decoded: %+v, %v", b, err)
	}
}
