// Package bench is the repository's benchmark-regression harness. It pins
// one fixed seeded workload (the spm benchmark with an untrained seed-7
// evaluator), exposes deterministic measurement entry points for the three
// hot paths the paper's flow spends its time in — the refine loop, a GNN
// forward pass, and sign-off STA — and records their ns/op, B/op and
// allocs/op together with the refine metrics in BENCH_refine.json at the
// repository root.
//
// The committed baseline serves two gates:
//
//   - TestBenchReplayByteIdentical re-runs the workload (pooled and
//     allocating evaluation paths, several worker counts) and requires the
//     refine metrics and final Steiner coordinates to be byte-identical to
//     each other and to the recorded baseline.
//   - TestBenchAllocGate (enabled with -benchgate, wired into verify.sh)
//     re-measures allocs/op and fails when the pooled refine loop regresses
//     more than 10% over the baseline, or stops being at least 2x leaner
//     than the allocating reference path.
//   - TestBatchReplayByteIdentical does the same replay for the
//     BatchLanes-candidate refine loop: fused ForwardBatch vs sequential
//     forwards, across worker counts, against metrics_batched.
//   - TestBatchedBaselineMargin statically holds the committed
//     gnn_forward_batched record to >=1.5x less per-candidate time than
//     gnn_forward_sequential; the recorder enforces the margin when the
//     baseline is rewritten, and the alloc gate re-measures it live with
//     a noise-tolerant 1.3x floor.
//
// Refresh the baseline after intentional changes with
// `go test ./internal/bench -run TestBenchUpdateBaseline -benchupdate`.
package bench

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"path/filepath"

	"tsteiner/internal/core"
	"tsteiner/internal/flow"
	"tsteiner/internal/gnn"
	"tsteiner/internal/grid"
	"tsteiner/internal/lib"
	"tsteiner/internal/obs"
	"tsteiner/internal/rc"
	"tsteiner/internal/route"
	"tsteiner/internal/sta"
)

// Workload parameters. These pin the seeded benchmark the baseline was
// recorded on; changing any of them requires re-recording BENCH_refine.json.
const (
	WorkloadName  = "spm"
	WorkloadScale = 1.0
	ModelSeed     = 7
	RefineIters   = 6
	BaselineFile  = "BENCH_refine.json"

	// BatchLanes pins the candidate count K of the batched benchmarks and
	// of the batched replay gate: one fused ForwardBatch evaluates
	// BatchLanes candidate coordinate sets against the shared graph
	// structure. Batched records in BENCH_refine.json are normalized to
	// per-candidate cost (divided by BatchLanes, with the lane count
	// recorded) so entries stay comparable across batch sizes.
	BatchLanes = 4
)

// Workload is the fixed seeded benchmark state shared by every
// measurement: a prepared design, its evaluator batch and a seeded model.
type Workload struct {
	Prepared *flow.Prepared
	Batch    *gnn.Batch
	Model    *gnn.Model
}

// NewWorkload builds the pinned workload. Workers only bounds parallel
// fan-outs; every measured quantity is byte-identical at any value.
func NewWorkload(workers int) (*Workload, error) {
	cfg := flow.DefaultConfig()
	cfg.Workers = workers
	p, err := flow.PrepareBenchmark(WorkloadName, WorkloadScale, cfg)
	if err != nil {
		return nil, err
	}
	bt, err := gnn.NewBatch(p.Design, p.Forest)
	if err != nil {
		return nil, err
	}
	return &Workload{Prepared: p, Batch: bt, Model: gnn.NewModel(gnn.DefaultConfig(), ModelSeed)}, nil
}

// RefineOutcome is the algorithmic output of one refine run — everything
// the replay gate compares. CoordHash is an FNV-1a digest over the raw
// bits of the final Steiner coordinates, so "byte-identical coordinates"
// is a single comparable value.
type RefineOutcome struct {
	InitWNS    float64 `json:"init_wns"`
	InitTNS    float64 `json:"init_tns"`
	BestWNS    float64 `json:"best_wns"`
	BestTNS    float64 `json:"best_tns"`
	Iterations int     `json:"iterations"`
	Converged  bool    `json:"converged"`
	CoordHash  string  `json:"coord_hash"`
}

// RunRefine runs the pinned refine loop on a fresh refiner and returns
// its outcome. disableWS selects the allocating reference path.
func (w *Workload) RunRefine(disableWS bool) (*RefineOutcome, error) {
	opt := core.DefaultOptions()
	opt.N = RefineIters
	opt.DisableWorkspace = disableWS
	return w.runRefine(opt)
}

// RunRefineBatched runs the pinned refine loop with CandidateLanes =
// BatchLanes: each iteration evaluates BatchLanes line-search candidates
// in one fused forward (or, with disableWS, in BatchLanes sequential
// forwards — the byte-identical reference side of the batched replay
// gate).
func (w *Workload) RunRefineBatched(disableWS bool) (*RefineOutcome, error) {
	opt := core.DefaultOptions()
	opt.N = RefineIters
	opt.DisableWorkspace = disableWS
	opt.CandidateLanes = BatchLanes
	return w.runRefine(opt)
}

func (w *Workload) runRefine(opt core.Options) (*RefineOutcome, error) {
	r, err := core.NewRefiner(w.Model, w.Batch, w.Prepared, opt)
	if err != nil {
		return nil, err
	}
	res, err := r.Refine()
	if err != nil {
		return nil, err
	}
	xs, ys, _ := res.Forest.SteinerPositions()
	return &RefineOutcome{
		InitWNS:    res.InitWNS,
		InitTNS:    res.InitTNS,
		BestWNS:    res.BestWNS,
		BestTNS:    res.BestTNS,
		Iterations: res.Iterations,
		Converged:  res.ConvergedByRatio,
		CoordHash:  coordHash(xs, ys),
	}, nil
}

// CandidateCoords stages `lanes` deterministic candidate coordinate sets
// around the prepared forest's Steiner positions, lane-major: lane k
// shifts every point by k·(+7.5, −4.25) DBU — distinct per-lane inputs,
// as the refine loop's line search produces.
func (w *Workload) CandidateCoords(lanes int) (xs, ys []float64, err error) {
	n := w.Batch.NSteiner
	xs = make([]float64, lanes*n)
	ys = make([]float64, lanes*n)
	if err := w.Batch.FillSteinerCoords(w.Prepared.Forest, xs[:n], ys[:n]); err != nil {
		return nil, nil, err
	}
	for k := 1; k < lanes; k++ {
		for i := 0; i < n; i++ {
			xs[k*n+i] = xs[i] + float64(k)*7.5
			ys[k*n+i] = ys[i] - float64(k)*4.25
		}
	}
	return xs, ys, nil
}

func coordHash(xs, ys []float64) string {
	h := fnv.New64a()
	var buf [8]byte
	for _, s := range [][]float64{xs, ys} {
		for _, v := range s {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			h.Write(buf[:])
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// STAState is the once-per-workload routing/extraction state feeding the
// STA benchmark, so the measured loop is the timer alone.
type STAState struct {
	w   *Workload
	rcs []rc.NetRC
}

// PrepareSTA routes and extracts the workload's initial forest.
func (w *Workload) PrepareSTA() (*STAState, error) {
	d := w.Prepared.Design
	cfg := w.Prepared.Config
	rounded := w.Prepared.Forest.Clone()
	rounded.RoundPositions()
	g, err := grid.New(d.Die, cfg.GCellSize, cfg.LayerCaps)
	if err != nil {
		return nil, err
	}
	gr, err := route.Route(d, rounded, g, cfg.Route)
	if err != nil {
		return nil, err
	}
	rcs, err := rc.Extract(d, rounded, g, gr, w.Prepared.Lib)
	if err != nil {
		return nil, err
	}
	return &STAState{w: w, rcs: rcs}, nil
}

// Run performs one full sign-off STA pass over the extracted parasitics.
func (s *STAState) Run() (*sta.Result, error) {
	return sta.Run(s.w.Prepared.Design, s.rcs)
}

// Record is one benchmark's measured cost. For batched benchmarks Lanes
// is the candidate count K and the costs are normalized per candidate
// (total divided by K), keeping records comparable across batch sizes;
// unbatched records leave Lanes at zero.
type Record struct {
	NsOp     float64 `json:"ns_op"`
	BytesOp  int64   `json:"bytes_op"`
	AllocsOp int64   `json:"allocs_op"`
	Lanes    int     `json:"lanes,omitempty"`
}

// Baseline is the committed shape of BENCH_refine.json.
type Baseline struct {
	Workload   string            `json:"workload"`
	Scale      float64           `json:"scale"`
	ModelSeed  int               `json:"model_seed"`
	Iters      int               `json:"refine_iters"`
	Benchmarks map[string]Record `json:"benchmarks"`
	Metrics    RefineOutcome     `json:"metrics"`
	// MetricsBatched is the outcome of the BatchLanes-candidate refine
	// run — the reference the batched replay gate compares against.
	MetricsBatched RefineOutcome `json:"metrics_batched"`
}

// BaselinePath locates BENCH_refine.json at the repository root by
// walking up from the working directory to the module root.
func BaselinePath() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return filepath.Join(dir, BaselineFile), nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("bench: no go.mod above working directory")
		}
		dir = parent
	}
}

// LoadBaseline reads the committed baseline.
func LoadBaseline(path string) (*Baseline, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(raw, &b); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	return &b, nil
}

// Write serializes the baseline with stable key order (encoding/json
// sorts map keys) so re-recording produces minimal diffs. A provenance
// manifest is written beside the baseline so every recorded number stays
// attributable to the exact workload configuration that produced it.
func (b *Baseline) Write(path string) error {
	raw, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
		return err
	}
	m := obs.NewManifest("bench-update")
	m.Seed = ModelSeed
	m.Lanes = BatchLanes
	m.LibFingerprint = lib.Default().Fingerprint()
	m.ModelHash = gnn.NewModel(gnn.DefaultConfig(), ModelSeed).Hash()
	return m.WriteNextTo(path)
}
