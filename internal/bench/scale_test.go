package bench

import (
	"flag"
	"fmt"
	"os"
	"testing"
)

var (
	benchScale = flag.Bool("benchscale", false,
		"run the live sub-linearity gate (re-measures the 1x and 100x scale points)")
	benchScaleUpdate = flag.Bool("benchscaleupdate", false,
		"re-measure every scale point and rewrite BENCH_scale.json")
)

// TestScaleBaselineSubLinear is the deterministic half of the scale gate:
// the committed BENCH_scale.json must show per-round wall time growing
// sub-linearly in design size. For every factor above 1x, the per-round
// cost ratio must stay under half the cell-count ratio, and at the top
// factor a refinement round must be cheaper than the one-off full
// pipeline (init) at that scale — otherwise the incremental engine is
// buying nothing. Reads the committed record only; it never re-measures,
// so it runs in every `go test ./...`.
func TestScaleBaselineSubLinear(t *testing.T) {
	path, err := ScalePath()
	if err != nil {
		t.Fatal(err)
	}
	base, err := LoadScale(path)
	if os.IsNotExist(err) {
		t.Skipf("no committed scale baseline at %s; record one with -benchscaleupdate", path)
	}
	if err != nil {
		t.Fatal(err)
	}
	if base.Workload != ScaleWorkload || base.Shards != ScaleShards || base.Rounds != ScaleRounds {
		t.Fatalf("baseline pins %s shards=%d rounds=%d, harness pins %s shards=%d rounds=%d: re-record",
			base.Workload, base.Shards, base.Rounds, ScaleWorkload, ScaleShards, ScaleRounds)
	}
	assertSubLinear(t, entriesOf(t, base))
}

// TestBenchScaleGate is the live half (verify.sh runs it with
// -benchscale): re-measure the smallest and largest scale points on this
// machine and hold the same sub-linearity bound on fresh numbers.
func TestBenchScaleGate(t *testing.T) {
	if !*benchScale {
		t.Skip("scale gate disabled; enable with -benchscale")
	}
	small, err := RunScale(ScaleFactors[0], ScaleShards, 0)
	if err != nil {
		t.Fatal(err)
	}
	big, err := RunScale(ScaleFactors[len(ScaleFactors)-1], ScaleShards, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("live 1x: %+v", *small)
	t.Logf("live %dx: %+v", big.Factor, *big)
	assertSubLinear(t, []*ScaleEntry{small, big})
}

// entriesOf resolves the pinned factors out of a baseline, failing on a
// missing or round-starved record.
func entriesOf(t *testing.T, base *ScaleBaseline) []*ScaleEntry {
	t.Helper()
	out := make([]*ScaleEntry, 0, len(ScaleFactors))
	for _, f := range ScaleFactors {
		e := base.Entry(f)
		if e == nil {
			t.Fatalf("baseline has no %dx entry; re-record with -benchscaleupdate", f)
		}
		out = append(out, e)
	}
	return out
}

// assertSubLinear holds the scale claim over a set of entries sorted by
// factor: entries[0] is the reference point. Three legs, from strongest
// to weakest:
//
//  1. The refresh set is scale-free: the number of nets the windowed STA
//     re-times per run must stay within a constant factor of the 1×
//     reference, even though the design grew 100×. This is the
//     deterministic heart of the claim (an O(design) refresh would show
//     up as a 100× ratio here, far outside the bound).
//  2. Per-round wall time grows sub-linearly in cell count relative to
//     the reference — the replay's O(design) bookkeeping has a far
//     smaller constant than routing, extraction and STA.
//  3. At every scaled factor a refinement round costs less wall time
//     than the one-off full pipeline (init) at the same scale —
//     otherwise the incremental engine buys nothing.
func assertSubLinear(t *testing.T, entries []*ScaleEntry) {
	t.Helper()
	ref := entries[0]
	if ref.Rounds != ScaleRounds || ref.PerRoundSec <= 0 || ref.RetimedNets <= 0 {
		t.Fatalf("reference entry executed %d rounds (per-round %.4fs, retimed %d); the scale claim is vacuous",
			ref.Rounds, ref.PerRoundSec, ref.RetimedNets)
	}
	for _, e := range entries[1:] {
		if e.Rounds != ScaleRounds {
			t.Errorf("%dx executed %d rounds, want %d", e.Factor, e.Rounds, ScaleRounds)
			continue
		}
		cellRatio := float64(e.Cells) / float64(ref.Cells)
		timeRatio := e.PerRoundSec / ref.PerRoundSec
		workRatio := float64(e.RetimedNets) / float64(ref.RetimedNets)
		t.Logf("%dx: cells x%.1f, per-round time x%.1f (%.4fs vs %.4fs), retimed x%.1f (%d vs %d)",
			e.Factor, cellRatio, timeRatio, e.PerRoundSec, ref.PerRoundSec, workRatio, e.RetimedNets, ref.RetimedNets)
		if workRatio > 4 {
			t.Errorf("%dx: retimed-net count grew x%.1f over the reference (bound x4): the refresh set is scaling with the design",
				e.Factor, workRatio)
		}
		if timeRatio >= cellRatio {
			t.Errorf("%dx per-round time is not sub-linear: grew x%.1f against x%.1f cells",
				e.Factor, timeRatio, cellRatio)
		}
		if e.PerRoundSec >= e.InitSec {
			t.Errorf("%dx: a refinement round (%.4fs) costs as much as the full pipeline (%.4fs); the incremental engine buys nothing",
				e.Factor, e.PerRoundSec, e.InitSec)
		}
	}
}

// TestBenchScaleUpdateBaseline re-measures every pinned factor and
// rewrites BENCH_scale.json:
// go test ./internal/bench -run TestBenchScaleUpdateBaseline -benchscaleupdate -timeout 30m
func TestBenchScaleUpdateBaseline(t *testing.T) {
	if !*benchScaleUpdate {
		t.Skip("scale recorder disabled; enable with -benchscaleupdate")
	}
	base := &ScaleBaseline{Workload: ScaleWorkload, Shards: ScaleShards, Rounds: ScaleRounds}
	for _, f := range ScaleFactors {
		e, err := RunScale(f, ScaleShards, 0)
		if err != nil {
			t.Fatalf("%dx: %v", f, err)
		}
		t.Logf("%dx: %+v", f, *e)
		base.Entries = append(base.Entries, *e)
	}
	path, err := ScalePath()
	if err != nil {
		t.Fatal(err)
	}
	if err := base.Write(path); err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(path)
	fmt.Printf("recorded %s:\n%s", path, raw)
}
