package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"tsteiner/internal/flow"
	"tsteiner/internal/lib"
	"tsteiner/internal/shard"
	"tsteiner/internal/synth"
)

// Scale-experiment parameters. These pin the workload BENCH_scale.json
// was recorded on: the spm benchmark tiled to 1x/10x/100x and refined
// through the sharded incremental engine. Changing any of them requires
// re-recording with -benchscaleupdate.
const (
	ScaleFile     = "BENCH_scale.json"
	ScaleWorkload = "spm"
	ScaleRounds   = 3
	ScaleShards   = 4
)

// ScaleFactors are the recorded design sizes.
var ScaleFactors = []int{1, 10, 100}

// ScaleEntry is one recorded scale point. The wall-clock columns are the
// point of the record: InitSec is the unavoidable linear cost (place,
// Steinerize, full route + extract + STA once), PerRoundSec the
// incremental cost the windowed path pays per refinement round.
type ScaleEntry struct {
	Factor      int     `json:"factor"`
	Cells       int     `json:"cells"`
	Nets        int     `json:"nets"`
	Endpoints   int     `json:"endpoints"`
	InitSec     float64 `json:"init_sec"`
	PerRoundSec float64 `json:"per_round_sec"`
	Rounds      int     `json:"rounds"`
	MovedNets   int     `json:"moved_nets"`
	RetimedNets int     `json:"retimed_nets"`
}

// ScaleBaseline is the committed shape of BENCH_scale.json.
type ScaleBaseline struct {
	Workload string       `json:"workload"`
	Shards   int          `json:"shards"`
	Rounds   int          `json:"rounds"`
	Entries  []ScaleEntry `json:"entries"`
}

// RunScale prepares a factor-times-tiled ScaleWorkload and refines it
// through the sharded engine, returning the measured scale point. The
// infinite slack threshold admits every net so each factor executes the
// full ScaleRounds rounds — the per-round time is measured on real work.
func RunScale(factor, shards, workers int) (*ScaleEntry, error) {
	spec, err := synth.BenchmarkByName(ScaleWorkload)
	if err != nil {
		return nil, err
	}
	l := lib.Default()
	d, err := synth.GenerateScaled(spec, factor, l)
	if err != nil {
		return nil, err
	}
	cfg := flow.ScaledConfig()
	cfg.Workers = workers
	p, err := flow.Prepare(d, l, cfg)
	if err != nil {
		return nil, err
	}
	opt := shard.DefaultOptions()
	opt.Shards = shards
	opt.Workers = workers
	opt.Rounds = ScaleRounds
	opt.SlackThreshold = math.Inf(1)
	res, err := shard.Refine(p, opt)
	if err != nil {
		return nil, err
	}
	per := 0.0
	if res.Rounds > 0 {
		per = res.RefineSec / float64(res.Rounds)
	}
	return &ScaleEntry{
		Factor:      factor,
		Cells:       len(d.Cells),
		Nets:        len(d.Nets),
		Endpoints:   len(d.Endpoints()),
		InitSec:     res.InitSec,
		PerRoundSec: per,
		Rounds:      res.Rounds,
		MovedNets:   res.MovedNets,
		RetimedNets: res.RetimedNets,
	}, nil
}

// ScalePath locates BENCH_scale.json at the repository root.
func ScalePath() (string, error) {
	p, err := BaselinePath()
	if err != nil {
		return "", err
	}
	return filepath.Join(filepath.Dir(p), ScaleFile), nil
}

// LoadScale reads the committed scale baseline.
func LoadScale(path string) (*ScaleBaseline, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b ScaleBaseline
	if err := json.Unmarshal(raw, &b); err != nil {
		return nil, fmt.Errorf("bench: %s: %w", path, err)
	}
	return &b, nil
}

// Write serializes the scale baseline with a trailing newline, matching
// the other committed BENCH files.
func (b *ScaleBaseline) Write(path string) error {
	raw, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// Entry returns the recorded point for a factor, or nil.
func (b *ScaleBaseline) Entry(factor int) *ScaleEntry {
	for i := range b.Entries {
		if b.Entries[i].Factor == factor {
			return &b.Entries[i]
		}
	}
	return nil
}
